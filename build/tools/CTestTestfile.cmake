# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/systolize" "list")
set_tests_properties(cli_list PROPERTIES  PASS_REGULAR_EXPRESSION "Kung-Leiserson" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build/tools/systolize" "report" "matmul2")
set_tests_properties(cli_report PROPERTIES  PASS_REGULAR_EXPRESSION "process space basis" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_emit_paper "/root/repo/build/tools/systolize" "emit" "polyprod1")
set_tests_properties(cli_emit_paper PROPERTIES  PASS_REGULAR_EXPRESSION "recover a, col" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_emit_occam "/root/repo/build/tools/systolize" "emit" "polyprod1" "--syntax=occam")
set_tests_properties(cli_emit_occam PROPERTIES  PASS_REGULAR_EXPRESSION "CHAN OF INT" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_emit_c "/root/repo/build/tools/systolize" "emit" "matmul1" "--syntax=c")
set_tests_properties(cli_emit_c PROPERTIES  PASS_REGULAR_EXPRESSION "recv\\(b_chan" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_verifies "/root/repo/build/tools/systolize" "run" "matmul2" "--n=4")
set_tests_properties(cli_run_verifies PROPERTIES  PASS_REGULAR_EXPRESSION "verify: OK" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_partitioned "/root/repo/build/tools/systolize" "run" "polyprod2" "--n=8" "--partition=2")
set_tests_properties(cli_run_partitioned PROPERTIES  PASS_REGULAR_EXPRESSION "physical processors: 2" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_sa_file "/root/repo/build/tools/systolize" "run" "/root/repo/designs/convolution.sa" "--n=6" "--m=2")
set_tests_properties(cli_run_sa_file PROPERTIES  PASS_REGULAR_EXPRESSION "verify: OK" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;36;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_design "/root/repo/build/tools/systolize" "report" "nonsense")
set_tests_properties(cli_unknown_design PROPERTIES  PASS_REGULAR_EXPRESSION "unknown design" WILL_FAIL "FALSE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;41;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_graph "/root/repo/build/tools/systolize" "graph" "polyprod1" "--n=3")
set_tests_properties(cli_graph PROPERTIES  PASS_REGULAR_EXPRESSION "digraph systolic" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;45;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule "/root/repo/build/tools/systolize" "schedule" "polyprod2" "--n=4")
set_tests_properties(cli_schedule PROPERTIES  PASS_REGULAR_EXPRESSION "peak parallelism" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;49;add_test;/root/repo/tools/CMakeLists.txt;0;")
