file(REMOVE_RECURSE
  "CMakeFiles/systolize_cli.dir/systolize_cli.cpp.o"
  "CMakeFiles/systolize_cli.dir/systolize_cli.cpp.o.d"
  "systolize"
  "systolize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolize_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
