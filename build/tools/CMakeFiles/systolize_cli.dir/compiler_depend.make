# Empty compiler generated dependencies file for systolize_cli.
# This may be replaced when dependencies are built.
