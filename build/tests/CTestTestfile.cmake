# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_numeric[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_ast[1]_include.cmake")
include("/root/repo/build/tests/test_loopnest[1]_include.cmake")
include("/root/repo/build/tests/test_systolic[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_scheme[1]_include.cmake")
