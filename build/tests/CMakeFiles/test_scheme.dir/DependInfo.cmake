
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/scheme/scheme_test_util.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/scheme_test_util.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/scheme_test_util.cpp.o.d"
  "/root/repo/tests/scheme/test_cs_equals_ps.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_cs_equals_ps.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_cs_equals_ps.cpp.o.d"
  "/root/repo/tests/scheme/test_design_sweep.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_design_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_design_sweep.cpp.o.d"
  "/root/repo/tests/scheme/test_extension_designs.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_extension_designs.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_extension_designs.cpp.o.d"
  "/root/repo/tests/scheme/test_io_layout.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_io_layout.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_io_layout.cpp.o.d"
  "/root/repo/tests/scheme/test_matmul_design1.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_matmul_design1.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_matmul_design1.cpp.o.d"
  "/root/repo/tests/scheme/test_matmul_design2.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_matmul_design2.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_matmul_design2.cpp.o.d"
  "/root/repo/tests/scheme/test_polyprod_design1.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_polyprod_design1.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_polyprod_design1.cpp.o.d"
  "/root/repo/tests/scheme/test_polyprod_design2.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_polyprod_design2.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_polyprod_design2.cpp.o.d"
  "/root/repo/tests/scheme/test_process_space.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_process_space.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_process_space.cpp.o.d"
  "/root/repo/tests/scheme/test_report.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_report.cpp.o.d"
  "/root/repo/tests/scheme/test_schedule.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_schedule.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_schedule.cpp.o.d"
  "/root/repo/tests/scheme/test_symbolic_quotient.cpp" "tests/CMakeFiles/test_scheme.dir/scheme/test_symbolic_quotient.cpp.o" "gcc" "tests/CMakeFiles/test_scheme.dir/scheme/test_symbolic_quotient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/systolize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
