file(REMOVE_RECURSE
  "CMakeFiles/test_scheme.dir/scheme/scheme_test_util.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/scheme_test_util.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_cs_equals_ps.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_cs_equals_ps.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_design_sweep.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_design_sweep.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_extension_designs.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_extension_designs.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_io_layout.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_io_layout.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_matmul_design1.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_matmul_design1.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_matmul_design2.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_matmul_design2.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_polyprod_design1.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_polyprod_design1.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_polyprod_design2.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_polyprod_design2.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_process_space.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_process_space.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_report.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_report.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_schedule.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_schedule.cpp.o.d"
  "CMakeFiles/test_scheme.dir/scheme/test_symbolic_quotient.cpp.o"
  "CMakeFiles/test_scheme.dir/scheme/test_symbolic_quotient.cpp.o.d"
  "test_scheme"
  "test_scheme.pdb"
  "test_scheme[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
