file(REMOVE_RECURSE
  "CMakeFiles/test_symbolic.dir/symbolic/test_affine_expr.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_affine_expr.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_fourier_motzkin.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_fourier_motzkin.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_guard.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_guard.cpp.o.d"
  "CMakeFiles/test_symbolic.dir/symbolic/test_piecewise.cpp.o"
  "CMakeFiles/test_symbolic.dir/symbolic/test_piecewise.cpp.o.d"
  "test_symbolic"
  "test_symbolic.pdb"
  "test_symbolic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
