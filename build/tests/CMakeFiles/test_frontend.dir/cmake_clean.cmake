file(REMOVE_RECURSE
  "CMakeFiles/test_frontend.dir/frontend/test_guarded_body.cpp.o"
  "CMakeFiles/test_frontend.dir/frontend/test_guarded_body.cpp.o.d"
  "CMakeFiles/test_frontend.dir/frontend/test_lexer.cpp.o"
  "CMakeFiles/test_frontend.dir/frontend/test_lexer.cpp.o.d"
  "CMakeFiles/test_frontend.dir/frontend/test_parser.cpp.o"
  "CMakeFiles/test_frontend.dir/frontend/test_parser.cpp.o.d"
  "CMakeFiles/test_frontend.dir/frontend/test_sa_files.cpp.o"
  "CMakeFiles/test_frontend.dir/frontend/test_sa_files.cpp.o.d"
  "test_frontend"
  "test_frontend.pdb"
  "test_frontend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
