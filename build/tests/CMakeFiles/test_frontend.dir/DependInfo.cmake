
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/frontend/test_guarded_body.cpp" "tests/CMakeFiles/test_frontend.dir/frontend/test_guarded_body.cpp.o" "gcc" "tests/CMakeFiles/test_frontend.dir/frontend/test_guarded_body.cpp.o.d"
  "/root/repo/tests/frontend/test_lexer.cpp" "tests/CMakeFiles/test_frontend.dir/frontend/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/test_frontend.dir/frontend/test_lexer.cpp.o.d"
  "/root/repo/tests/frontend/test_parser.cpp" "tests/CMakeFiles/test_frontend.dir/frontend/test_parser.cpp.o" "gcc" "tests/CMakeFiles/test_frontend.dir/frontend/test_parser.cpp.o.d"
  "/root/repo/tests/frontend/test_sa_files.cpp" "tests/CMakeFiles/test_frontend.dir/frontend/test_sa_files.cpp.o" "gcc" "tests/CMakeFiles/test_frontend.dir/frontend/test_sa_files.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/systolize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
