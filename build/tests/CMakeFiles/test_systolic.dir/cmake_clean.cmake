file(REMOVE_RECURSE
  "CMakeFiles/test_systolic.dir/systolic/test_array_spec.cpp.o"
  "CMakeFiles/test_systolic.dir/systolic/test_array_spec.cpp.o.d"
  "CMakeFiles/test_systolic.dir/systolic/test_dependence.cpp.o"
  "CMakeFiles/test_systolic.dir/systolic/test_dependence.cpp.o.d"
  "CMakeFiles/test_systolic.dir/systolic/test_theorems.cpp.o"
  "CMakeFiles/test_systolic.dir/systolic/test_theorems.cpp.o.d"
  "test_systolic"
  "test_systolic.pdb"
  "test_systolic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
