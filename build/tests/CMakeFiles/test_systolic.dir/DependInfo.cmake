
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/systolic/test_array_spec.cpp" "tests/CMakeFiles/test_systolic.dir/systolic/test_array_spec.cpp.o" "gcc" "tests/CMakeFiles/test_systolic.dir/systolic/test_array_spec.cpp.o.d"
  "/root/repo/tests/systolic/test_dependence.cpp" "tests/CMakeFiles/test_systolic.dir/systolic/test_dependence.cpp.o" "gcc" "tests/CMakeFiles/test_systolic.dir/systolic/test_dependence.cpp.o.d"
  "/root/repo/tests/systolic/test_theorems.cpp" "tests/CMakeFiles/test_systolic.dir/systolic/test_theorems.cpp.o" "gcc" "tests/CMakeFiles/test_systolic.dir/systolic/test_theorems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/systolize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
