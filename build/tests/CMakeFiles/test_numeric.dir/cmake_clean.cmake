file(REMOVE_RECURSE
  "CMakeFiles/test_numeric.dir/numeric/test_int_vec.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/test_int_vec.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/test_matrices.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/test_matrices.cpp.o.d"
  "CMakeFiles/test_numeric.dir/numeric/test_rational.cpp.o"
  "CMakeFiles/test_numeric.dir/numeric/test_rational.cpp.o.d"
  "test_numeric"
  "test_numeric.pdb"
  "test_numeric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
