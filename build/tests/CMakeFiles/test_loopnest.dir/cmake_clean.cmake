file(REMOVE_RECURSE
  "CMakeFiles/test_loopnest.dir/loopnest/test_loop_nest.cpp.o"
  "CMakeFiles/test_loopnest.dir/loopnest/test_loop_nest.cpp.o.d"
  "CMakeFiles/test_loopnest.dir/loopnest/test_validate.cpp.o"
  "CMakeFiles/test_loopnest.dir/loopnest/test_validate.cpp.o.d"
  "test_loopnest"
  "test_loopnest.pdb"
  "test_loopnest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loopnest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
