# Empty compiler generated dependencies file for test_loopnest.
# This may be replaced when dependencies are built.
