file(REMOVE_RECURSE
  "CMakeFiles/bench_polyprod.dir/bench_polyprod.cpp.o"
  "CMakeFiles/bench_polyprod.dir/bench_polyprod.cpp.o.d"
  "bench_polyprod"
  "bench_polyprod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_polyprod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
