# Empty compiler generated dependencies file for bench_polyprod.
# This may be replaced when dependencies are built.
