file(REMOVE_RECURSE
  "CMakeFiles/bench_generation_spectrum.dir/bench_generation_spectrum.cpp.o"
  "CMakeFiles/bench_generation_spectrum.dir/bench_generation_spectrum.cpp.o.d"
  "bench_generation_spectrum"
  "bench_generation_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generation_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
