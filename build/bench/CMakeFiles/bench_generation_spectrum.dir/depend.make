# Empty dependencies file for bench_generation_spectrum.
# This may be replaced when dependencies are built.
