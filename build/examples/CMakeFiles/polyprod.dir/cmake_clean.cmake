file(REMOVE_RECURSE
  "CMakeFiles/polyprod.dir/polyprod.cpp.o"
  "CMakeFiles/polyprod.dir/polyprod.cpp.o.d"
  "polyprod"
  "polyprod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyprod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
