# Empty compiler generated dependencies file for polyprod.
# This may be replaced when dependencies are built.
