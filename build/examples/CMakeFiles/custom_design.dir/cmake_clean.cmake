file(REMOVE_RECURSE
  "CMakeFiles/custom_design.dir/custom_design.cpp.o"
  "CMakeFiles/custom_design.dir/custom_design.cpp.o.d"
  "custom_design"
  "custom_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
