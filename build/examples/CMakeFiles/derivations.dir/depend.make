# Empty dependencies file for derivations.
# This may be replaced when dependencies are built.
