file(REMOVE_RECURSE
  "CMakeFiles/derivations.dir/derivations.cpp.o"
  "CMakeFiles/derivations.dir/derivations.cpp.o.d"
  "derivations"
  "derivations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derivations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
