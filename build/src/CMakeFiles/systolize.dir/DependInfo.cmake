
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/builder.cpp" "src/CMakeFiles/systolize.dir/ast/builder.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/ast/builder.cpp.o.d"
  "/root/repo/src/ast/node.cpp" "src/CMakeFiles/systolize.dir/ast/node.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/ast/node.cpp.o.d"
  "/root/repo/src/ast/print_c.cpp" "src/CMakeFiles/systolize.dir/ast/print_c.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/ast/print_c.cpp.o.d"
  "/root/repo/src/ast/print_occam.cpp" "src/CMakeFiles/systolize.dir/ast/print_occam.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/ast/print_occam.cpp.o.d"
  "/root/repo/src/ast/print_paper.cpp" "src/CMakeFiles/systolize.dir/ast/print_paper.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/ast/print_paper.cpp.o.d"
  "/root/repo/src/baseline/runtime_generation.cpp" "src/CMakeFiles/systolize.dir/baseline/runtime_generation.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/baseline/runtime_generation.cpp.o.d"
  "/root/repo/src/baseline/sequential.cpp" "src/CMakeFiles/systolize.dir/baseline/sequential.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/baseline/sequential.cpp.o.d"
  "/root/repo/src/designs/catalog.cpp" "src/CMakeFiles/systolize.dir/designs/catalog.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/designs/catalog.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/CMakeFiles/systolize.dir/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/systolize.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/loopnest/loop_nest.cpp" "src/CMakeFiles/systolize.dir/loopnest/loop_nest.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/loopnest/loop_nest.cpp.o.d"
  "/root/repo/src/loopnest/stream.cpp" "src/CMakeFiles/systolize.dir/loopnest/stream.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/loopnest/stream.cpp.o.d"
  "/root/repo/src/loopnest/validate.cpp" "src/CMakeFiles/systolize.dir/loopnest/validate.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/loopnest/validate.cpp.o.d"
  "/root/repo/src/numeric/int_matrix.cpp" "src/CMakeFiles/systolize.dir/numeric/int_matrix.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/numeric/int_matrix.cpp.o.d"
  "/root/repo/src/numeric/int_vec.cpp" "src/CMakeFiles/systolize.dir/numeric/int_vec.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/numeric/int_vec.cpp.o.d"
  "/root/repo/src/numeric/rat_matrix.cpp" "src/CMakeFiles/systolize.dir/numeric/rat_matrix.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/numeric/rat_matrix.cpp.o.d"
  "/root/repo/src/numeric/rat_vec.cpp" "src/CMakeFiles/systolize.dir/numeric/rat_vec.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/numeric/rat_vec.cpp.o.d"
  "/root/repo/src/numeric/rational.cpp" "src/CMakeFiles/systolize.dir/numeric/rational.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/numeric/rational.cpp.o.d"
  "/root/repo/src/runtime/host.cpp" "src/CMakeFiles/systolize.dir/runtime/host.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/runtime/host.cpp.o.d"
  "/root/repo/src/runtime/instantiate.cpp" "src/CMakeFiles/systolize.dir/runtime/instantiate.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/runtime/instantiate.cpp.o.d"
  "/root/repo/src/runtime/metrics.cpp" "src/CMakeFiles/systolize.dir/runtime/metrics.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/runtime/metrics.cpp.o.d"
  "/root/repo/src/runtime/network.cpp" "src/CMakeFiles/systolize.dir/runtime/network.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/runtime/network.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/systolize.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/runtime/scheduler.cpp.o.d"
  "/root/repo/src/scheme/buffers.cpp" "src/CMakeFiles/systolize.dir/scheme/buffers.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/scheme/buffers.cpp.o.d"
  "/root/repo/src/scheme/compiler.cpp" "src/CMakeFiles/systolize.dir/scheme/compiler.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/scheme/compiler.cpp.o.d"
  "/root/repo/src/scheme/first_last.cpp" "src/CMakeFiles/systolize.dir/scheme/first_last.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/scheme/first_last.cpp.o.d"
  "/root/repo/src/scheme/increment.cpp" "src/CMakeFiles/systolize.dir/scheme/increment.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/scheme/increment.cpp.o.d"
  "/root/repo/src/scheme/io_comm.cpp" "src/CMakeFiles/systolize.dir/scheme/io_comm.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/scheme/io_comm.cpp.o.d"
  "/root/repo/src/scheme/io_layout.cpp" "src/CMakeFiles/systolize.dir/scheme/io_layout.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/scheme/io_layout.cpp.o.d"
  "/root/repo/src/scheme/process_space.cpp" "src/CMakeFiles/systolize.dir/scheme/process_space.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/scheme/process_space.cpp.o.d"
  "/root/repo/src/scheme/propagation.cpp" "src/CMakeFiles/systolize.dir/scheme/propagation.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/scheme/propagation.cpp.o.d"
  "/root/repo/src/scheme/report.cpp" "src/CMakeFiles/systolize.dir/scheme/report.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/scheme/report.cpp.o.d"
  "/root/repo/src/scheme/schedule.cpp" "src/CMakeFiles/systolize.dir/scheme/schedule.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/scheme/schedule.cpp.o.d"
  "/root/repo/src/symbolic/affine_expr.cpp" "src/CMakeFiles/systolize.dir/symbolic/affine_expr.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/symbolic/affine_expr.cpp.o.d"
  "/root/repo/src/symbolic/affine_point.cpp" "src/CMakeFiles/systolize.dir/symbolic/affine_point.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/symbolic/affine_point.cpp.o.d"
  "/root/repo/src/symbolic/fourier_motzkin.cpp" "src/CMakeFiles/systolize.dir/symbolic/fourier_motzkin.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/symbolic/fourier_motzkin.cpp.o.d"
  "/root/repo/src/symbolic/guard.cpp" "src/CMakeFiles/systolize.dir/symbolic/guard.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/symbolic/guard.cpp.o.d"
  "/root/repo/src/symbolic/symbol.cpp" "src/CMakeFiles/systolize.dir/symbolic/symbol.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/symbolic/symbol.cpp.o.d"
  "/root/repo/src/systolic/array_spec.cpp" "src/CMakeFiles/systolize.dir/systolic/array_spec.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/systolic/array_spec.cpp.o.d"
  "/root/repo/src/systolic/dependence.cpp" "src/CMakeFiles/systolize.dir/systolic/dependence.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/systolic/dependence.cpp.o.d"
  "/root/repo/src/systolic/flow.cpp" "src/CMakeFiles/systolize.dir/systolic/flow.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/systolic/flow.cpp.o.d"
  "/root/repo/src/systolic/step_place.cpp" "src/CMakeFiles/systolize.dir/systolic/step_place.cpp.o" "gcc" "src/CMakeFiles/systolize.dir/systolic/step_place.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
