# Empty compiler generated dependencies file for systolize.
# This may be replaced when dependencies are built.
