file(REMOVE_RECURSE
  "libsystolize.a"
)
