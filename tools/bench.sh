#!/usr/bin/env bash
# Benchmark driver: build the Release configuration and record the
# end-to-end runtime benchmarks into BENCH_runtime.json at the repo root.
# Each invocation appends one run entry {label, commit, date, benchmarks}
# so the file accumulates a perf trajectory across PRs. The suite covers
# the end-to-end pipeline (BM_EndToEnd_*), the raw substrate
# (BM_SubstrateRelayChain), and plan construction (BM_PlanBuild_* vs
# BM_PlanExpand_*, plus the BM_ColdSizeSweep_* serving-loop pair — see
# docs/performance.md "Plan templates").
#
# usage: tools/bench.sh [label] [extra benchmark args...]
#   label defaults to the current commit's short hash.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
label="${1:-$(git -C "${repo}" rev-parse --short HEAD)}"
shift || true

build="${repo}/build-bench"
# -DSYSTOLIZE_WERROR=OFF: GCC 12 emits a -Wrestrict false positive in
# symbolic/symbol.cpp under -O3 that would otherwise fail the build.
cmake -B "${build}" -S "${repo}" \
  -DCMAKE_BUILD_TYPE=Release -DSYSTOLIZE_WERROR:BOOL=OFF
cmake --build "${build}" -j "${jobs}" --target bench_endtoend

raw="$(mktemp)"
trap 'rm -f "${raw}"' EXIT
"${build}/bench/bench_endtoend" \
  --benchmark_format=json --benchmark_min_time=0.2 "$@" > "${raw}"

python3 - "$raw" "${repo}/BENCH_runtime.json" "${label}" <<'PY'
import json, subprocess, sys
raw_path, out_path, label = sys.argv[1], sys.argv[2], sys.argv[3]
with open(raw_path) as f:
    raw = json.load(f)
entry = {
    "label": label,
    "commit": subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True).stdout.strip(),
    "date": raw.get("context", {}).get("date", ""),
    "benchmarks": [
        {
            "name": b["name"],
            "real_time_ns": b["real_time"],
            "cpu_time_ns": b["cpu_time"],
            "iterations": b["iterations"],
        }
        for b in raw.get("benchmarks", [])
    ],
}
try:
    with open(out_path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {"runs": []}
doc["runs"].append(entry)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"recorded {len(entry['benchmarks'])} benchmarks as '{label}' "
      f"in {out_path}")
PY
