#!/usr/bin/env bash
# Benchmark driver: build the Release configuration and record the
# end-to-end runtime benchmarks into BENCH_runtime.json at the repo root.
# Each invocation appends one run entry {label, commit, date, benchmarks}
# so the file accumulates a perf trajectory across PRs. The suite covers
# the end-to-end pipeline (BM_EndToEnd_*), the raw substrate
# (BM_SubstrateRelayChain), and plan construction (BM_PlanBuild_* vs
# BM_PlanExpand_*, plus the BM_ColdSizeSweep_* serving-loop pair — see
# docs/performance.md "Plan templates").
#
# usage: tools/bench.sh [label] [extra benchmark args...]
#   label defaults to the current commit's short hash.
#        tools/bench.sh --compare <labelA> <labelB> [threshold-pct] [regex]
#   pure-data mode: no build, no run — diff two recorded runs from
#   BENCH_runtime.json on the benchmarks they share (optionally filtered
#   by a name regex) and exit non-zero if any real_time regresses by more
#   than threshold-pct (default 10) going from labelA (baseline) to
#   labelB (candidate). Duplicate labels resolve to the latest recorded
#   run; the pseudo-label "latest" resolves to the most recent run of any
#   label. Exit codes: 0 clean, 1 regression found, 2 usage or data error
#   (unknown label, missing/corrupt BENCH_runtime.json) — a gate can tell
#   "comparison failed to run" apart from "comparison found a regression".
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

if [ "${1:-}" = "--compare" ]; then
  [ $# -ge 3 ] || { echo "usage: tools/bench.sh --compare <labelA> <labelB> [threshold-pct] [regex]" >&2; exit 2; }
  python3 - "${repo}/BENCH_runtime.json" "$2" "$3" "${4:-10}" "${5:-}" <<'PY'
import json, re, sys
path, label_a, label_b, threshold = sys.argv[1], sys.argv[2], sys.argv[3], float(sys.argv[4])
name_filter = sys.argv[5]

def die(msg):
    # Usage/data problems exit 2 so CI can tell "the comparison could not
    # run" apart from "the comparison ran and found a regression" (1).
    print(f"bench compare: {msg}", file=sys.stderr)
    sys.exit(2)

try:
    with open(path) as f:
        doc = json.load(f)
except FileNotFoundError:
    die(f"{path} does not exist (record a run first: tools/bench.sh <label>)")
except json.JSONDecodeError as e:
    die(f"{path} is not valid JSON: {e}")

def run_for(label):
    # "latest" resolves to the most recently recorded run regardless of
    # label, so CI can gate "recorded baseline vs whatever ran last".
    if label == "latest":
        if not doc.get("runs"):
            die(f"no runs recorded in {path}")
        return {b["name"]: b["real_time_ns"]
                for b in doc["runs"][-1]["benchmarks"]}
    matches = [r for r in doc.get("runs", []) if r.get("label") == label]
    if not matches:
        known = ", ".join(sorted({r.get("label", "?") for r in doc.get("runs", [])}))
        die(f"no run labelled '{label}' in {path} (known: {known})")
    return {b["name"]: b["real_time_ns"] for b in matches[-1]["benchmarks"]}

base, cand = run_for(label_a), run_for(label_b)
shared = sorted(set(base) & set(cand))
if name_filter:
    shared = [n for n in shared if re.search(name_filter, n)]
if not shared:
    die(f"runs '{label_a}' and '{label_b}' share no benchmarks"
        + (f" matching /{name_filter}/" if name_filter else ""))
regressions = 0
print(f"{'benchmark':50s} {label_a:>14s} {label_b:>14s}  delta")
for name in shared:
    a, b = base[name], cand[name]
    pct = (b - a) / a * 100.0 if a > 0 else 0.0
    flag = ""
    if pct > threshold:
        flag = f"  REGRESSION (>{threshold:g}%)"
        regressions += 1
    print(f"{name:50s} {a:12.0f}ns {b:12.0f}ns {pct:+6.1f}%{flag}")
print(f"{len(shared)} shared benchmarks; {regressions} regression(s) "
      f"beyond {threshold:g}% going {label_a} -> {label_b}")
sys.exit(1 if regressions else 0)
PY
  exit $?
fi

label="${1:-$(git -C "${repo}" rev-parse --short HEAD)}"
shift || true

build="${repo}/build-bench"
# -DSYSTOLIZE_WERROR=OFF: GCC 12 emits a -Wrestrict false positive in
# symbolic/symbol.cpp under -O3 that would otherwise fail the build.
cmake -B "${build}" -S "${repo}" \
  -DCMAKE_BUILD_TYPE=Release -DSYSTOLIZE_WERROR:BOOL=OFF
cmake --build "${build}" -j "${jobs}" --target bench_endtoend

raw="$(mktemp)"
trap 'rm -f "${raw}"' EXIT
"${build}/bench/bench_endtoend" \
  --benchmark_format=json --benchmark_min_time=0.2 "$@" > "${raw}"

python3 - "$raw" "${repo}/BENCH_runtime.json" "${label}" <<'PY'
import json, subprocess, sys
raw_path, out_path, label = sys.argv[1], sys.argv[2], sys.argv[3]
with open(raw_path) as f:
    raw = json.load(f)
entry = {
    "label": label,
    "commit": subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True).stdout.strip(),
    "date": raw.get("context", {}).get("date", ""),
    "benchmarks": [
        {
            "name": b["name"],
            "real_time_ns": b["real_time"],
            "cpu_time_ns": b["cpu_time"],
            "iterations": b["iterations"],
        }
        for b in raw.get("benchmarks", [])
    ],
}
try:
    with open(out_path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {"runs": []}
doc["runs"].append(entry)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"recorded {len(entry['benchmarks'])} benchmarks as '{label}' "
      f"in {out_path}")
PY
