// systolize — command-line front end.
//
//   systolize list
//   systolize report <design | file.sa>
//   systolize emit   <design | file.sa> [--syntax=paper|occam|c]
//   systolize run    <design | file.sa> [--n=N] [--m=M] [--capacity=K]
//                    [--merge-buffers] [--partition=G] [--no-verify]
//                    [--inject=PLAN] [--watchdog-rounds=N]
//                    [--watchdog-blocked=N] [--deadlock-report]
//                    [--plan-cache-bytes=N]
//   systolize graph  <design | file.sa> [--n=N] [--m=M]     (Graphviz dot)
//   systolize schedule <design | file.sa> [--n=N] [--m=M]   (space-time table)
//   systolize verify <design | file.sa | all> [--n=N] [--m=M] [--capacity=K]
//                    [--merge-buffers] [--partition=G]
//                    [--format=text|json] [--allow=rule,rule...]
//   systolize analyze <design | file.sa> [--sizes=4,8] [--m=M]
//                    [--format=text|json]              (static cost report)
//   systolize explore <design | file.sa> [--coeff-range=K] [--sizes=4]
//                    [--top=N] [--moving-only] [--same-projection]
//                    [--export=FILE] [--format=text|json]
//
// <design> is a catalog name (see `systolize list`); anything containing a
// '.' or '/' is treated as a .sa file path.
//
// `verify` runs the static plan verifier (docs/static-analysis.md): spec,
// program and plan-level rules, zero scheduler rounds. It exits non-zero
// iff any error-severity finding remains; --allow downgrades the named
// rules (or whole categories, e.g. "guard") to info.
//
// --inject takes the fault-plan syntax of FaultPlan::parse (';'-separated
// directives, e.g. "seed=42;stall=0.1:4;delay=0.05:3" or
// "kill@comp:(1)=2"); see docs/fault-model.md. --deadlock-report prints
// the machine-readable JSON forensics payload when a run stalls.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "analysis/cost.hpp"
#include "analysis/verify.hpp"
#include "ast/builder.hpp"
#include "ast/print.hpp"
#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "frontend/parser.hpp"
#include "frontend/render.hpp"
#include "fuzz/fuzz.hpp"
#include "runtime/instantiate.hpp"
#include "systolic/enumerate.hpp"
#include "scheme/compiler.hpp"
#include "scheme/report.hpp"
#include "scheme/schedule.hpp"
#include "service/client.hpp"
#include "service/executor.hpp"
#include "service/server.hpp"

namespace {

using namespace systolize;

int usage() {
  std::cerr <<
      "usage:\n"
      "  systolize help\n"
      "  systolize list\n"
      "  systolize report <design | file.sa>\n"
      "  systolize emit   <design | file.sa> [--syntax=paper|occam|c]\n"
      "  systolize run    <design | file.sa> [--n=N] [--m=M] [--capacity=K]\n"
      "                   [--merge-buffers] [--partition=G] [--no-verify]\n"
      "                   [--inject=PLAN] [--watchdog-rounds=N]\n"
      "                   [--watchdog-blocked=N] [--deadlock-report]\n"
      "                   [--threads=N] [--plan-cache-bytes=N]\n"
      "                   [--round-budget=N] [--wall-timeout-ms=N]\n"
      "                   [--backend=interp|bytecode] [--batch=N]\n"
      "  systolize graph  <design | file.sa> [--n=N] [--m=M]\n"
      "  systolize schedule <design | file.sa> [--n=N] [--m=M]\n"
      "  systolize verify <design | file.sa | all> [--n=N] [--m=M]\n"
      "                   [--capacity=K] [--merge-buffers] [--partition=G]\n"
      "                   [--format=text|json] [--allow=rule,rule...]\n"
      "  systolize analyze <design | file.sa> [--sizes=4,8] [--m=M]\n"
      "                   [--capacity=K] [--merge-buffers] [--partition=G]\n"
      "                   [--format=text|json]\n"
      "  systolize explore <design | file.sa> [--coeff-range=K]\n"
      "                   [--sizes=4] [--m=M] [--top=N] [--moving-only]\n"
      "                   [--same-projection] [--export=FILE]\n"
      "                   [--format=text|json]\n"
      "  systolize fuzz   [--seed=S] [--count=N] [--no-shrink]\n"
      "                   [--corpus-dir=DIR] [--keep-rejects] [--replay]\n"
      "                   [--mutate-rate=P] [--coeff-range=K] [--threads=N]\n"
      "                   [--batch=N] [--format=text|json]\n"
      "  systolize serve  --socket=PATH [--workers=N] [--queue-depth=N]\n"
      "                   [--tenant-cap=N] [--round-budget=N]\n"
      "                   [--wall-timeout-ms=N] [--max-retries=N]\n"
      "                   [--plan-cache-bytes=N]\n"
      "  systolize client --socket=PATH --op=OP [--design=NAME] [--n=N]\n"
      "                   [--m=M] [--tenant=T] [--inject=PLAN] [--verify]\n"
      "                   [--round-budget=N] [--wall-timeout-ms=N]\n"
      "                   [--fail-attempts=N] [--count=N] [--retry]\n"
      "                   [--backend=interp|bytecode] [--batch=N]\n"
      "\n"
      "see `systolize help` for exit codes and the serve protocol.\n";
  return 2;
}

int cmd_help() {
  std::cout <<
      "systolize — systolizing-compilation-scheme toolchain.\n"
      "\n"
      "exit codes (run, client and serve commands):\n"
      "  0  success — the run completed (and verified, unless --no-verify)\n"
      "  1  classified error — compile/validation failure, injected-fault\n"
      "     deadlock, differential-verify mismatch; details on stderr, and\n"
      "     with --deadlock-report the forensic JSON on stdout\n"
      "  2  usage error — unknown command or flag\n"
      "  3  timeout — the watchdog round budget (--round-budget) or the\n"
      "     wall-clock deadline (--wall-timeout-ms) expired before the run\n"
      "     finished; rerun with a larger budget or inspect the partial\n"
      "     forensics\n"
      "\n"
      "one-shot deadlines:\n"
      "  --round-budget=N     abort the run after N scheduler rounds\n"
      "                       (cooperative rounds are the runtime's time\n"
      "                       base, so this bounds livelock deterministically)\n"
      "  --wall-timeout-ms=N  abort the run N milliseconds after it starts\n"
      "                       (checked at round boundaries — a wedged run is\n"
      "                       cancelled cleanly, with forensics)\n"
      "\n"
      "differential fuzzing (docs/static-analysis.md):\n"
      "  systolize fuzz samples random Appendix-A loop nests plus compatible\n"
      "  (step, place) designs and cross-checks the static verifier against\n"
      "  every execution backend (interp fast path, instrumented, threaded\n"
      "  work-stealing, bytecode solo and batched) and the sequential\n"
      "  baseline. Exit 0 = the oracles agreed on every sample.\n"
      "  --seed=S         campaign seed; sample #i is a pure function of\n"
      "                   (S, i), so any sample replays in isolation and the\n"
      "                   same seed always yields the same samples and\n"
      "                   verdicts\n"
      "  --count=N        number of samples (default 100)\n"
      "  --no-shrink      write findings un-minimized (default: greedy\n"
      "                   structural shrinking toward a fixpoint first)\n"
      "  --corpus-dir=DIR reproducer directory (default designs/fuzz-corpus);\n"
      "                   disagreements are written there as .sa files with\n"
      "                   the seed, index, probe sizes and finding embedded\n"
      "                   as comments\n"
      "  --keep-rejects   also write (shrunk) reproducers for consistent\n"
      "                   static rejections — seeds the corpus with verifier\n"
      "                   counterexamples\n"
      "  --replay         re-run the differential oracle on every .sa file\n"
      "                   under --corpus-dir instead of generating; exit 1\n"
      "                   if any reproducer still witnesses a disagreement\n"
      "  --mutate-rate=P  percent of samples given one deliberate breakage\n"
      "                   (default 20), to test verifier/runtime agreement\n"
      "\n"
      "daemon mode (docs/service.md):\n"
      "  systolize serve  — long-running compile-and-run daemon on a Unix\n"
      "                     socket; newline-delimited JSON requests, shared\n"
      "                     plan cache, admission control, per-request\n"
      "                     deadlines, graceful SIGTERM drain (exit 0)\n"
      "  systolize client — send requests to a running daemon; prints one\n"
      "                     response JSON line per request\n";
  return 0;
}

Design load_design(const std::string& what) {
  if (what.find('.') == std::string::npos &&
      what.find('/') == std::string::npos) {
    return design_by_name(what);
  }
  std::ifstream in(what);
  if (!in) {
    raise(ErrorKind::Parse, "cannot open '" + what + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return frontend::parse_design(buf.str());
}

struct Options {
  Int n = 8;
  Int m = 3;
  Int capacity = 0;
  Int partition = 0;
  bool merge_buffers = false;
  bool verify = true;
  std::string syntax = "paper";
  std::string inject;            ///< FaultPlan::parse syntax; empty = none
  Int watchdog_rounds = 0;       ///< 0 = unbounded
  Int watchdog_blocked = 0;      ///< 0 = unbounded
  bool deadlock_report = false;  ///< print JSON forensics on stall
  Int threads = 0;               ///< >1 = sharded parallel run
  std::string backend;           ///< "", "interp" or "bytecode"
  Int batch = 1;                 ///< problem instances per dispatch
  Int plan_cache_bytes = -1;     ///< >=0: attach a budgeted PlanCache
  bool verify_plan = false;      ///< run: static verification gate first
  std::string format = "text";   ///< verify: text | json
  std::string allow;             ///< verify: comma-separated rule ids
  Int round_budget = 0;          ///< run/client: scheduler-round deadline
  Int wall_timeout_ms = 0;       ///< run/client: wall-clock deadline
  // --- serve / client ---
  std::string socket;            ///< Unix-domain socket path
  Int workers = 4;
  Int queue_depth = 64;
  Int tenant_cap = 16;
  Int max_retries = 2;
  std::string op = "run";        ///< client: request op
  std::string design_name;       ///< client: design catalog name
  std::string tenant;            ///< client: admission bucket
  Int fail_attempts = 0;         ///< client: transient-failure test hook
  Int count = 1;                 ///< client: pipelined request count
  bool retry = false;            ///< client: honor retry-after hints
  bool client_verify = false;    ///< client: differential-check runs
  // --- analyze / explore ---
  std::string sizes_list;        ///< comma-separated probe sizes
  Int coeff_range = 1;           ///< explore: coefficients in [-K, K]
  Int top = 10;                  ///< explore: ranked table length
  bool moving_only = false;      ///< explore: no stationary streams
  bool same_projection = false;  ///< explore: keep the seed's null.place
  std::string export_path;       ///< explore: write the winner as .sa
  // --- fuzz ---
  std::uint64_t seed = 20260808;     ///< campaign seed
  bool count_set = false;            ///< --count given (fuzz defaults to 100)
  bool fuzz_shrink = true;           ///< minimize findings before writing
  std::string corpus_dir = "designs/fuzz-corpus";
  bool keep_rejects = false;         ///< corpus-ify consistent rejects too
  bool replay = false;               ///< re-run the corpus instead
  Int mutate_rate = 20;              ///< deliberate-breakage percentage
};

bool parse_flag(const std::string& arg, Options& opt) {
  auto value_of = [&arg](const std::string& prefix) -> std::string {
    return arg.substr(prefix.size());
  };
  if (arg.rfind("--n=", 0) == 0) {
    opt.n = std::stoll(value_of("--n="));
  } else if (arg.rfind("--m=", 0) == 0) {
    opt.m = std::stoll(value_of("--m="));
  } else if (arg.rfind("--capacity=", 0) == 0) {
    opt.capacity = std::stoll(value_of("--capacity="));
  } else if (arg.rfind("--partition=", 0) == 0) {
    opt.partition = std::stoll(value_of("--partition="));
  } else if (arg == "--merge-buffers") {
    opt.merge_buffers = true;
  } else if (arg == "--no-verify") {
    opt.verify = false;
  } else if (arg.rfind("--syntax=", 0) == 0) {
    opt.syntax = value_of("--syntax=");
  } else if (arg.rfind("--inject=", 0) == 0) {
    opt.inject = value_of("--inject=");
  } else if (arg.rfind("--watchdog-rounds=", 0) == 0) {
    opt.watchdog_rounds = std::stoll(value_of("--watchdog-rounds="));
  } else if (arg.rfind("--watchdog-blocked=", 0) == 0) {
    opt.watchdog_blocked = std::stoll(value_of("--watchdog-blocked="));
  } else if (arg == "--deadlock-report") {
    opt.deadlock_report = true;
  } else if (arg.rfind("--threads=", 0) == 0) {
    opt.threads = std::stoll(value_of("--threads="));
  } else if (arg.rfind("--backend=", 0) == 0) {
    opt.backend = value_of("--backend=");
  } else if (arg.rfind("--batch=", 0) == 0) {
    opt.batch = std::stoll(value_of("--batch="));
  } else if (arg.rfind("--plan-cache-bytes=", 0) == 0) {
    opt.plan_cache_bytes = std::stoll(value_of("--plan-cache-bytes="));
  } else if (arg == "--verify-plan") {
    opt.verify_plan = true;
  } else if (arg.rfind("--format=", 0) == 0) {
    opt.format = value_of("--format=");
  } else if (arg.rfind("--allow=", 0) == 0) {
    opt.allow = value_of("--allow=");
  } else if (arg.rfind("--round-budget=", 0) == 0) {
    opt.round_budget = std::stoll(value_of("--round-budget="));
  } else if (arg.rfind("--wall-timeout-ms=", 0) == 0) {
    opt.wall_timeout_ms = std::stoll(value_of("--wall-timeout-ms="));
  } else if (arg.rfind("--socket=", 0) == 0) {
    opt.socket = value_of("--socket=");
  } else if (arg.rfind("--workers=", 0) == 0) {
    opt.workers = std::stoll(value_of("--workers="));
  } else if (arg.rfind("--queue-depth=", 0) == 0) {
    opt.queue_depth = std::stoll(value_of("--queue-depth="));
  } else if (arg.rfind("--tenant-cap=", 0) == 0) {
    opt.tenant_cap = std::stoll(value_of("--tenant-cap="));
  } else if (arg.rfind("--max-retries=", 0) == 0) {
    opt.max_retries = std::stoll(value_of("--max-retries="));
  } else if (arg.rfind("--op=", 0) == 0) {
    opt.op = value_of("--op=");
  } else if (arg.rfind("--design=", 0) == 0) {
    opt.design_name = value_of("--design=");
  } else if (arg.rfind("--tenant=", 0) == 0) {
    opt.tenant = value_of("--tenant=");
  } else if (arg.rfind("--fail-attempts=", 0) == 0) {
    opt.fail_attempts = std::stoll(value_of("--fail-attempts="));
  } else if (arg.rfind("--count=", 0) == 0) {
    opt.count = std::stoll(value_of("--count="));
    opt.count_set = true;
  } else if (arg.rfind("--seed=", 0) == 0) {
    opt.seed = std::stoull(value_of("--seed="));
  } else if (arg == "--no-shrink") {
    opt.fuzz_shrink = false;
  } else if (arg.rfind("--corpus-dir=", 0) == 0) {
    opt.corpus_dir = value_of("--corpus-dir=");
  } else if (arg == "--keep-rejects") {
    opt.keep_rejects = true;
  } else if (arg == "--replay") {
    opt.replay = true;
  } else if (arg.rfind("--mutate-rate=", 0) == 0) {
    opt.mutate_rate = std::stoll(value_of("--mutate-rate="));
  } else if (arg == "--retry") {
    opt.retry = true;
  } else if (arg == "--verify") {
    opt.client_verify = true;
  } else if (arg.rfind("--sizes=", 0) == 0) {
    opt.sizes_list = value_of("--sizes=");
  } else if (arg.rfind("--coeff-range=", 0) == 0) {
    opt.coeff_range = std::stoll(value_of("--coeff-range="));
  } else if (arg.rfind("--top=", 0) == 0) {
    opt.top = std::stoll(value_of("--top="));
  } else if (arg == "--moving-only") {
    opt.moving_only = true;
  } else if (arg == "--same-projection") {
    opt.same_projection = true;
  } else if (arg.rfind("--export=", 0) == 0) {
    opt.export_path = value_of("--export=");
  } else {
    return false;
  }
  return true;
}

Env sizes_of(const Design& design, const Options& opt) {
  Env sizes;
  for (const Symbol& s : design.nest.sizes()) {
    if (s.name() == "m") {
      sizes["m"] = Rational(opt.m);
    } else {
      sizes[s.name()] = Rational(opt.n);
    }
  }
  return sizes;
}

int cmd_list() {
  for (const Design& d : all_designs()) {
    std::cout << d.nest.name() << ": " << d.description << "\n";
  }
  std::cout << "\ncatalog names:";
  for (const std::string& name : catalog_names()) std::cout << " " << name;
  std::cout << "\n";
  return 0;
}

int cmd_report(const Design& design) {
  CompiledProgram prog = compile(design.nest, design.spec);
  std::cout << derivation_report(prog, design.nest, design.spec);
  return 0;
}

int cmd_emit(const Design& design, const Options& opt) {
  CompiledProgram prog = compile(design.nest, design.spec);
  auto tree = ast::build_ast(prog, design.nest);
  if (opt.syntax == "paper") {
    std::cout << ast::to_paper_notation(*tree);
  } else if (opt.syntax == "occam") {
    std::cout << ast::to_occam(*tree);
  } else if (opt.syntax == "c") {
    std::cout << ast::to_c(*tree);
  } else {
    std::cerr << "unknown syntax '" << opt.syntax << "'\n";
    return 2;
  }
  return 0;
}

int cmd_graph(const Design& design, const Options& opt) {
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_of(design, opt);
  NetworkGraph graph;
  InstantiateOptions iopt;
  iopt.network = &graph;
  IndexedStore store = make_initial_store(
      design.nest, sizes,
      [](const std::string&, const IntVec&) { return 0; });
  (void)execute(prog, design.nest, sizes, store, iopt);
  std::cout << to_dot(graph);
  return 0;
}

int cmd_schedule(const Design& design, const Options& opt) {
  Env sizes = sizes_of(design, opt);
  Schedule s = derive_schedule(design.nest, design.spec, sizes);
  std::cout << "span = " << s.span() << " steps, peak parallelism = "
            << s.max_width() << "\n";
  if (design.nest.depth() == 2) {
    CompiledProgram prog = compile(design.nest, design.spec);
    std::cout << render_schedule_1d(s, prog.ps.min.evaluate(sizes),
                                    prog.ps.max.evaluate(sizes));
  } else {
    std::cout << "parallelism profile per step:\n";
    for (Int t = s.min_step; t <= s.max_step; ++t) {
      std::cout << "  step " << t << ": " << s.width_at(t) << "\n";
    }
  }
  return 0;
}

bool parse_backend(const std::string& name, Backend* out) {
  if (name.empty() || name == "auto") {
    *out = Backend::Auto;
  } else if (name == "interp") {
    *out = Backend::Interp;
  } else if (name == "bytecode") {
    *out = Backend::Bytecode;
  } else {
    return false;
  }
  return true;
}

/// Instance `b` of a batch: instance 0 is exactly the historical single-
/// run seeding, later instances are deterministically perturbed so lanes
/// carry genuinely different data.
IndexedStore seeded_store(const Design& design, const Env& sizes, Int b) {
  return make_initial_store(
      design.nest, sizes, [b](const std::string& var, const IntVec& p) {
        Value h = var.empty() ? 1 : var[0];
        for (std::size_t i = 0; i < p.dim(); ++i) h = h * 31 + p[i];
        return (h + 13 * b) % 23 - 11;
      });
}

int cmd_run(const Design& design, const Options& opt) {
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_of(design, opt);

  IndexedStore store = seeded_store(design, sizes, 0);
  IndexedStore expected = store;

  InstantiateOptions iopt;
  if (!parse_backend(opt.backend, &iopt.backend)) {
    std::cerr << "unknown backend '" << opt.backend
              << "' (expected interp or bytecode)\n";
    return 2;
  }
  if (opt.batch < 1) {
    std::cerr << "--batch needs a positive instance count\n";
    return 2;
  }
  iopt.channel_capacity = opt.capacity;
  iopt.merge_internal_buffers = opt.merge_buffers;
  if (opt.partition > 0) {
    std::vector<Int> comps(design.nest.depth() - 1, opt.partition);
    iopt.partition_grid = IntVec(comps);
  }
  FaultPlan plan;
  if (!opt.inject.empty()) {
    plan = FaultPlan::parse(opt.inject);
    iopt.faults = &plan;
    std::cout << "inject: " << plan.to_string() << "\n";
  }
  iopt.watchdog.max_rounds = opt.watchdog_rounds;
  iopt.watchdog.max_blocked_rounds = opt.watchdog_blocked;
  // --round-budget is the service-style spelling of a run deadline in the
  // runtime's own time base; it rides the same watchdog as
  // --watchdog-rounds (the tighter of the two wins).
  if (opt.round_budget > 0 &&
      (iopt.watchdog.max_rounds == 0 ||
       opt.round_budget < iopt.watchdog.max_rounds)) {
    iopt.watchdog.max_rounds = opt.round_budget;
  }
  // --wall-timeout-ms arms a deadline timer whose token the scheduler
  // polls at round boundaries; expiry raises Error(Timeout) → exit 3.
  service::DeadlineTimer deadline;
  if (opt.wall_timeout_ms > 0) {
    deadline.arm(opt.wall_timeout_ms);
    iopt.watchdog.cancel = deadline.token();
    iopt.watchdog.cancel_kind = ErrorKind::Timeout;
    iopt.watchdog.cancel_reason = "wall-clock deadline of " +
                                  std::to_string(opt.wall_timeout_ms) +
                                  "ms exceeded";
  }
  if (opt.threads > 0) iopt.threads = static_cast<unsigned>(opt.threads);
  // --plan-cache-bytes=N: route plan construction through the two-stage
  // template pipeline with an N-byte plan budget (small budgets keep the
  // template but evict expanded plans aggressively).
  std::unique_ptr<PlanCache> cache;
  if (opt.plan_cache_bytes >= 0) {
    cache = std::make_unique<PlanCache>(
        static_cast<std::size_t>(opt.plan_cache_bytes));
    iopt.plan_cache = cache.get();
  }
  iopt.verify_plan = opt.verify_plan;

  if (opt.batch > 1) {
    const std::size_t batch = static_cast<std::size_t>(opt.batch);
    if (iopt.faults != nullptr) {
      // Faults are per-instance by nature: replay each instance through
      // the instrumented engine with its own derived fault seed, and
      // report one verdict per instance instead of failing the batch.
      int worst = 0;
      for (std::size_t b = 0; b < batch; ++b) {
        FaultPlan instance_plan = FaultPlan::parse(opt.inject);
        instance_plan.set_seed(instance_plan.seed() + b);
        InstantiateOptions per = iopt;
        per.faults = &instance_plan;
        IndexedStore bstore =
            seeded_store(design, sizes, static_cast<Int>(b));
        IndexedStore bexpected = bstore;
        try {
          RunMetrics m = execute(prog, design.nest, sizes, bstore, per);
          std::string verdict = "ok";
          if (opt.verify) {
            run_sequential(design.nest, sizes, bexpected);
            for (const Stream& s : design.nest.streams()) {
              if (bstore.elements(s.name()) !=
                  bexpected.elements(s.name())) {
                verdict = "verify-failed stream " + s.name();
                worst = std::max(worst, 1);
              }
            }
          }
          std::cout << "instance " << b << ": " << verdict
                    << " faults=" << m.faults_injected
                    << " makespan=" << m.makespan << "\n";
        } catch (const Error& e) {
          const std::string what = e.what();
          std::cout << "instance " << b << ": error ["
                    << error_kind_name(e.kind()) << "] "
                    << what.substr(0, what.find('\n')) << "\n";
          worst = std::max(worst, e.kind() == ErrorKind::Timeout ? 3 : 1);
        }
      }
      deadline.disarm();
      return worst;
    }
    std::vector<IndexedStore> stores;
    stores.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      stores.push_back(seeded_store(design, sizes, static_cast<Int>(b)));
    }
    RunMetrics metrics =
        execute_batch(prog, design.nest, sizes, stores.data(), batch, iopt);
    deadline.disarm();
    std::cout << metrics.to_string() << "\n";
    if (opt.verify) {
      for (std::size_t b = 0; b < batch; ++b) {
        IndexedStore bexpected =
            seeded_store(design, sizes, static_cast<Int>(b));
        run_sequential(design.nest, sizes, bexpected);
        for (const Stream& s : design.nest.streams()) {
          if (stores[b].elements(s.name()) !=
              bexpected.elements(s.name())) {
            std::cout << "VERIFY FAILED for instance " << b << " stream "
                      << s.name() << "\n";
            return 1;
          }
        }
      }
      std::cout << "verify: OK (all " << batch
                << " instances match sequential execution)\n";
    }
    return 0;
  }

  RunMetrics metrics = execute(prog, design.nest, sizes, store, iopt);
  deadline.disarm();
  std::cout << metrics.to_string() << "\n";
  if (opt.partition > 0) {
    std::cout << "physical processors: " << metrics.physical_processors
              << "\n";
  }

  if (opt.verify) {
    run_sequential(design.nest, sizes, expected);
    for (const Stream& s : design.nest.streams()) {
      if (store.elements(s.name()) != expected.elements(s.name())) {
        std::cout << "VERIFY FAILED for stream " << s.name() << "\n";
        return 1;
      }
    }
    std::cout << "verify: OK (matches sequential execution)\n";
  }
  return 0;
}

/// The full static pipeline on one design: spec rules; when those pass,
/// compile and run the program rules; when those pass too, intern the
/// plan at the requested sizes/shape and run the plan rules. Compile or
/// interning failures become findings instead of aborting the sweep.
VerifyReport verify_one(const Design& design, const std::string& label,
                        const Options& opt) {
  VerifyReport rep;
  rep.design = label;
  verify_spec_into(rep, design.nest, design.spec);
  if (rep.errors() == 0) {
    try {
      CompiledProgram prog = compile(design.nest, design.spec);
      verify_program_into(rep, prog, design.nest);
      if (rep.errors() == 0) {
        verify_loading_cover_into(rep, prog, design.nest,
                                  sizes_of(design, opt));
      }
      if (rep.errors() == 0) {
        PlanShape shape;
        shape.channel_capacity = opt.capacity;
        shape.merge_internal_buffers = opt.merge_buffers;
        if (opt.partition > 0) {
          std::vector<Int> comps(design.nest.depth() - 1, opt.partition);
          shape.partition_grid = IntVec(comps);
        }
        auto plan = build_plan(prog, design.nest, sizes_of(design, opt),
                               shape);
        verify_plan_into(rep, *plan);
      }
    } catch (const Error& e) {
      rep.add("compile.error", Severity::Error, design.nest.name(),
              std::string(error_kind_name(e.kind())) + ": " + e.what(),
              e.diagnostic());
    }
  }
  // --allow downgrades (exact rule ids or whole categories).
  std::istringstream allow(opt.allow);
  std::string rule;
  while (std::getline(allow, rule, ',')) {
    if (!rule.empty()) rep.allow(rule);
  }
  return rep;
}

int cmd_verify(const std::string& what, const Options& opt) {
  std::vector<VerifyReport> reports;
  if (what == "all") {
    // Catalog names, not nest names — several designs share a nest.
    for (const char* name :
         {"polyprod1", "polyprod2", "polyprod3", "matmul1", "matmul2",
          "matmul3", "matmul4", "convolution", "correlation"}) {
      reports.push_back(verify_one(design_by_name(name), name, opt));
    }
  } else {
    reports.push_back(verify_one(load_design(what), what, opt));
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const VerifyReport& rep : reports) {
    errors += rep.errors();
    warnings += rep.warnings();
  }
  if (opt.format == "json") {
    if (what == "all") {
      std::cout << '[';
      for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i != 0) std::cout << ',';
        std::cout << reports[i].to_json();
      }
      std::cout << "]\n";
    } else {
      std::cout << reports.front().to_json() << "\n";
    }
  } else if (opt.format == "text") {
    for (const VerifyReport& rep : reports) {
      std::cout << rep.to_string() << "\n";
    }
    if (what == "all") {
      std::cout << "verified " << reports.size() << " design(s): " << errors
                << " error(s), " << warnings << " warning(s)\n";
    }
  } else {
    std::cerr << "unknown format '" << opt.format << "'\n";
    return 2;
  }
  return errors == 0 ? 0 : 1;
}

/// --sizes=4,8 → one Env per listed value (every size symbol gets the
/// value, except "m" which keeps --m, matching sizes_of). Defaults to
/// 4 and 8 for analyze, 4 for explore (the caller passes the default).
std::vector<Env> probe_sizes(const Design& design, const Options& opt,
                             const std::string& fallback) {
  std::vector<Env> envs;
  std::string list = opt.sizes_list.empty() ? fallback : opt.sizes_list;
  std::istringstream in(list);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const Int value = std::stoll(item);
    Env env;
    for (const Symbol& s : design.nest.sizes()) {
      env[s.name()] = s.name() == "m" ? Rational(opt.m) : Rational(value);
    }
    envs.push_back(std::move(env));
  }
  if (envs.empty()) {
    raise(ErrorKind::Validation, "--sizes needs at least one value");
  }
  return envs;
}

PlanShape shape_of_options(const Design& design, const Options& opt) {
  PlanShape shape;
  shape.channel_capacity = opt.capacity;
  shape.merge_internal_buffers = opt.merge_buffers;
  if (opt.partition > 0) {
    std::vector<Int> comps(design.nest.depth() - 1, opt.partition);
    shape.partition_grid = IntVec(comps);
  }
  return shape;
}

/// Static cost report. Verifier-first: a broken design yields its
/// findings (exit 1), never a crash — the cost model only runs on specs
/// the verifier proves clean at spec and program level.
int cmd_analyze(const std::string& what, const Options& opt) {
  const Design design = load_design(what);
  VerifyReport rep;
  rep.design = what;
  verify_spec_into(rep, design.nest, design.spec);
  std::vector<Env> envs = probe_sizes(design, opt, "4,8");
  CostReport cost;
  if (rep.errors() == 0) {
    try {
      const CompiledProgram prog = compile(design.nest, design.spec);
      verify_program_into(rep, prog, design.nest);
      if (rep.errors() == 0) {
        cost = analyze_cost(prog, design.nest, envs,
                            shape_of_options(design, opt));
      }
    } catch (const Error& e) {
      rep.add("compile.error", Severity::Error, design.nest.name(),
              std::string(error_kind_name(e.kind())) + ": " + e.what(),
              e.diagnostic());
    }
  }
  if (rep.errors() > 0) {
    if (opt.format == "json") {
      std::cout << rep.to_json() << "\n";
    } else {
      std::cout << rep.to_string() << "\n";
    }
    return 1;
  }
  if (opt.format == "json") {
    std::cout << cost.to_json() << "\n";
  } else if (opt.format == "text") {
    std::cout << cost.to_string();
  } else {
    std::cerr << "unknown format '" << opt.format << "'\n";
    return 2;
  }
  return 0;
}

/// Design-space search over the seed design's loop nest.
int cmd_explore(const std::string& what, const Options& opt) {
  const Design design = load_design(what);

  // A broken seed reports its findings instead of searching: the nest the
  // search would cover is only trustworthy when the seed's own spec rules
  // hold (stream ranks, dependence directions).
  VerifyReport rep = verify_spec(design.nest, design.spec);
  if (rep.errors() > 0) {
    if (opt.format == "json") {
      std::cout << rep.to_json() << "\n";
    } else {
      std::cout << rep.to_string() << "\n";
    }
    return 1;
  }

  EnumerateOptions eopt;
  eopt.coeff_range = opt.coeff_range;
  eopt.sizes = probe_sizes(design, opt, "4");
  eopt.top_k = static_cast<std::size_t>(opt.top);
  eopt.moving_only = opt.moving_only;
  eopt.same_projection = opt.same_projection;
  const ExploreResult result =
      enumerate_designs(design.nest, &design.spec, eopt);

  if (opt.format == "json") {
    std::cout << "{\"design\":\"" << design.nest.name() << "\",\"survivors\":"
              << result.stats.survivors << ",\"enumerated\":"
              << result.stats.enumerated << ",\"ranked\":[";
    for (std::size_t i = 0; i < result.ranked.size(); ++i) {
      const ExploreCandidate& c = result.ranked[i];
      if (i != 0) std::cout << ',';
      std::cout << "{\"rank\":" << (i + 1) << ",\"step\":\""
                << frontend::lin_expr_text(c.step.coeffs(), design.nest)
                << "\",\"place\":\""
                << frontend::place_text(c.place.matrix(), design.nest)
                << "\",\"seed\":" << (c.matches_seed ? "true" : "false")
                << ",\"cost\":" << c.cost.to_json() << '}';
    }
    std::cout << "]}\n";
  } else if (opt.format == "text") {
    std::cout << "explore " << design.nest.name() << " (seed: step "
              << frontend::lin_expr_text(design.spec.step().coeffs(),
                                         design.nest)
              << ", place "
              << frontend::place_text(design.spec.place().matrix(),
                                      design.nest)
              << ")\n"
              << result.stats.to_string() << "\n";
    for (std::size_t i = 0; i < result.ranked.size(); ++i) {
      const ExploreCandidate& c = result.ranked[i];
      const CostMetrics& m = c.cost.at.back().metrics;
      std::cout << "  #" << (i + 1) << (c.matches_seed ? " [seed]" : "")
                << " step " << frontend::lin_expr_text(c.step.coeffs(),
                                                       design.nest)
                << "  place "
                << frontend::place_text(c.place.matrix(), design.nest)
                << "\n     makespan=" << m.makespan << " processes="
                << m.processes << " (comp=" << m.comp << " io=" << m.io
                << " buffer=" << m.buffer << ") channels=" << m.channels
                << " soak<=" << m.soak_max << " drain<=" << m.drain_max
                << " imbalance=" << m.imbalance.to_string() << "\n";
    }
  } else {
    std::cerr << "unknown format '" << opt.format << "'\n";
    return 2;
  }

  if (result.ranked.empty()) {
    std::cerr << "no verifier-clean candidate survived the search\n";
    return 1;
  }
  if (!opt.export_path.empty()) {
    const ExploreCandidate& winner = result.ranked.front();
    ArraySpec winner_spec(winner.step, winner.place, winner.loading);
    std::ofstream out(opt.export_path);
    if (!out) {
      raise(ErrorKind::Io, "cannot write '" + opt.export_path + "'");
    }
    out << frontend::render_design(
        design.nest, winner_spec,
        "Exported by `systolize explore " + what + "`: rank 1 of " +
            std::to_string(result.stats.survivors) +
            " verifier-clean candidate(s).");
    std::cout << "exported rank-1 design to " << opt.export_path << "\n";
  }
  return 0;
}

int cmd_serve(const Options& opt) {
  service::ServerConfig cfg;
  cfg.socket_path = opt.socket;
  cfg.workers = static_cast<std::size_t>(opt.workers);
  cfg.queue_depth = static_cast<std::size_t>(opt.queue_depth);
  cfg.tenant_cap = static_cast<std::size_t>(opt.tenant_cap);
  if (opt.round_budget > 0) cfg.executor.default_round_budget = opt.round_budget;
  if (opt.wall_timeout_ms > 0) {
    cfg.executor.default_wall_timeout_ms = opt.wall_timeout_ms;
  }
  cfg.executor.max_retries = opt.max_retries;
  if (opt.plan_cache_bytes >= 0) {
    cfg.executor.cache_budget = static_cast<std::size_t>(opt.plan_cache_bytes);
  }
  service::Server::install_signal_handlers();
  service::Server server(cfg);
  server.start();
  std::cout << "systolize serve: listening on " << opt.socket << "\n"
            << std::flush;
  server.wait();
  std::cout << "systolize serve: drained, final stats: "
            << server.final_stats() << "\n";
  return 0;
}

int cmd_fuzz(const Options& opt) {
  fuzz::OracleOptions oracle;
  oracle.threads =
      opt.threads > 0 ? static_cast<unsigned>(opt.threads) : 2u;
  oracle.batch = opt.batch > 1 ? static_cast<std::size_t>(opt.batch) : 3u;

  if (opt.replay) {
    const fuzz::ReplayResult result =
        fuzz::replay_corpus(opt.corpus_dir, oracle);
    std::cout << "fuzz replay: " << result.files << " reproducer(s), "
              << result.disagreements << " disagreement(s)\n";
    for (const std::string& v : result.violations) {
      std::cout << "  " << v << "\n";
    }
    return result.clean() ? 0 : 1;
  }

  fuzz::FuzzOptions fo;
  fo.seed = opt.seed;
  fo.count = opt.count_set ? static_cast<std::size_t>(opt.count) : 100u;
  fo.shrink = opt.fuzz_shrink;
  fo.corpus_dir = opt.corpus_dir;
  fo.keep_rejects = opt.keep_rejects;
  fo.gen.coeff_range = opt.coeff_range;
  fo.gen.mutate_percent = static_cast<unsigned>(opt.mutate_rate);
  fo.oracle = oracle;
  const fuzz::FuzzReport report = fuzz::run_campaign(fo);
  std::cout << (opt.format == "json" ? report.to_json() : report.to_string())
            << "\n";
  return report.clean() ? 0 : 1;
}

int cmd_client(const Options& opt) {
  service::Client client(opt.socket);
  std::vector<service::Request> reqs;
  for (Int i = 0; i < opt.count; ++i) {
    service::Request req;
    req.id = i + 1;
    req.op = opt.op;
    req.tenant = opt.tenant;
    req.design = opt.design_name;
    req.n = opt.n;
    req.m = opt.m;
    req.capacity = opt.capacity;
    req.partition = opt.partition;
    req.merge_buffers = opt.merge_buffers;
    req.threads = opt.threads;
    req.verify = opt.client_verify;
    req.inject = opt.inject;
    req.backend = opt.backend;
    req.batch = opt.batch;
    req.round_budget = opt.round_budget;
    req.wall_timeout_ms = opt.wall_timeout_ms;
    req.fail_attempts = opt.fail_attempts;
    reqs.push_back(req);
  }
  bool any_error = false;
  bool any_timeout = false;
  if (opt.retry) {
    for (const service::Request& req : reqs) {
      service::Response r = client.call_with_retry(req);
      std::cout << r.to_json() << "\n";
      any_error |= r.status != "ok";
      any_timeout |= r.kind == "Timeout";
    }
  } else {
    // Pipelined: fire everything, then collect one response per request
    // (responses may arrive in any order — correlate by id).
    for (const service::Request& req : reqs) client.send(req);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      service::Response r = client.recv();
      std::cout << r.to_json() << "\n";
      any_error |= r.status != "ok";
      any_timeout |= r.kind == "Timeout";
    }
  }
  if (any_timeout) return 3;
  return any_error ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (argc < 2) return usage();
    std::string cmd = argv[1];
    if (cmd == "help") return cmd_help();
    if (cmd == "list") return cmd_list();
    if (cmd == "fuzz") {
      for (int i = 2; i < argc; ++i) {
        if (!parse_flag(argv[i], opt)) {
          std::cerr << "unknown flag '" << argv[i] << "'\n";
          return usage();
        }
      }
      return cmd_fuzz(opt);
    }
    if (cmd == "serve" || cmd == "client") {
      for (int i = 2; i < argc; ++i) {
        if (!parse_flag(argv[i], opt)) {
          std::cerr << "unknown flag '" << argv[i] << "'\n";
          return usage();
        }
      }
      if (opt.socket.empty()) {
        std::cerr << cmd << " needs --socket=PATH\n";
        return usage();
      }
      return cmd == "serve" ? cmd_serve(opt) : cmd_client(opt);
    }
    if (argc < 3) return usage();

    for (int i = 3; i < argc; ++i) {
      if (!parse_flag(argv[i], opt)) {
        std::cerr << "unknown flag '" << argv[i] << "'\n";
        return usage();
      }
    }
    if (cmd == "verify") return cmd_verify(argv[2], opt);
    if (cmd == "analyze") return cmd_analyze(argv[2], opt);
    if (cmd == "explore") return cmd_explore(argv[2], opt);
    Design design = load_design(argv[2]);
    if (cmd == "report") return cmd_report(design);
    if (cmd == "emit") return cmd_emit(design, opt);
    if (cmd == "run") return cmd_run(design, opt);
    if (cmd == "graph") return cmd_graph(design, opt);
    if (cmd == "schedule") return cmd_schedule(design, opt);
    return usage();
  } catch (const systolize::Error& e) {
    std::cerr << "error [" << systolize::error_kind_name(e.kind())
              << "]: " << e.what() << "\n";
    if (opt.deadlock_report && !e.diagnostic().empty()) {
      std::cout << e.diagnostic() << "\n";
    }
    // Deadline expiry (round budget or wall clock) is distinguishable
    // from ordinary failure: exit 3 (see `systolize help`).
    return e.kind() == systolize::ErrorKind::Timeout ? 3 : 1;
  }
}
