// systolize — command-line front end.
//
//   systolize list
//   systolize report <design | file.sa>
//   systolize emit   <design | file.sa> [--syntax=paper|occam|c]
//   systolize run    <design | file.sa> [--n=N] [--m=M] [--capacity=K]
//                    [--merge-buffers] [--partition=G] [--no-verify]
//                    [--inject=PLAN] [--watchdog-rounds=N]
//                    [--watchdog-blocked=N] [--deadlock-report]
//                    [--plan-cache-bytes=N]
//   systolize graph  <design | file.sa> [--n=N] [--m=M]     (Graphviz dot)
//   systolize schedule <design | file.sa> [--n=N] [--m=M]   (space-time table)
//   systolize verify <design | file.sa | all> [--n=N] [--m=M] [--capacity=K]
//                    [--merge-buffers] [--partition=G]
//                    [--format=text|json] [--allow=rule,rule...]
//
// <design> is a catalog name (see `systolize list`); anything containing a
// '.' or '/' is treated as a .sa file path.
//
// `verify` runs the static plan verifier (docs/static-analysis.md): spec,
// program and plan-level rules, zero scheduler rounds. It exits non-zero
// iff any error-severity finding remains; --allow downgrades the named
// rules (or whole categories, e.g. "guard") to info.
//
// --inject takes the fault-plan syntax of FaultPlan::parse (';'-separated
// directives, e.g. "seed=42;stall=0.1:4;delay=0.05:3" or
// "kill@comp:(1)=2"); see docs/fault-model.md. --deadlock-report prints
// the machine-readable JSON forensics payload when a run stalls.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "analysis/verify.hpp"
#include "ast/builder.hpp"
#include "ast/print.hpp"
#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "frontend/parser.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"
#include "scheme/report.hpp"
#include "scheme/schedule.hpp"

namespace {

using namespace systolize;

int usage() {
  std::cerr <<
      "usage:\n"
      "  systolize list\n"
      "  systolize report <design | file.sa>\n"
      "  systolize emit   <design | file.sa> [--syntax=paper|occam|c]\n"
      "  systolize run    <design | file.sa> [--n=N] [--m=M] [--capacity=K]\n"
      "                   [--merge-buffers] [--partition=G] [--no-verify]\n"
      "                   [--inject=PLAN] [--watchdog-rounds=N]\n"
      "                   [--watchdog-blocked=N] [--deadlock-report]\n"
      "                   [--threads=N] [--plan-cache-bytes=N]\n"
      "  systolize graph  <design | file.sa> [--n=N] [--m=M]\n"
      "  systolize schedule <design | file.sa> [--n=N] [--m=M]\n"
      "  systolize verify <design | file.sa | all> [--n=N] [--m=M]\n"
      "                   [--capacity=K] [--merge-buffers] [--partition=G]\n"
      "                   [--format=text|json] [--allow=rule,rule...]\n";
  return 2;
}

Design load_design(const std::string& what) {
  if (what.find('.') == std::string::npos &&
      what.find('/') == std::string::npos) {
    return design_by_name(what);
  }
  std::ifstream in(what);
  if (!in) {
    raise(ErrorKind::Parse, "cannot open '" + what + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return frontend::parse_design(buf.str());
}

struct Options {
  Int n = 8;
  Int m = 3;
  Int capacity = 0;
  Int partition = 0;
  bool merge_buffers = false;
  bool verify = true;
  std::string syntax = "paper";
  std::string inject;            ///< FaultPlan::parse syntax; empty = none
  Int watchdog_rounds = 0;       ///< 0 = unbounded
  Int watchdog_blocked = 0;      ///< 0 = unbounded
  bool deadlock_report = false;  ///< print JSON forensics on stall
  Int threads = 0;               ///< >1 = sharded parallel run
  Int plan_cache_bytes = -1;     ///< >=0: attach a budgeted PlanCache
  bool verify_plan = false;      ///< run: static verification gate first
  std::string format = "text";   ///< verify: text | json
  std::string allow;             ///< verify: comma-separated rule ids
};

bool parse_flag(const std::string& arg, Options& opt) {
  auto value_of = [&arg](const std::string& prefix) -> std::string {
    return arg.substr(prefix.size());
  };
  if (arg.rfind("--n=", 0) == 0) {
    opt.n = std::stoll(value_of("--n="));
  } else if (arg.rfind("--m=", 0) == 0) {
    opt.m = std::stoll(value_of("--m="));
  } else if (arg.rfind("--capacity=", 0) == 0) {
    opt.capacity = std::stoll(value_of("--capacity="));
  } else if (arg.rfind("--partition=", 0) == 0) {
    opt.partition = std::stoll(value_of("--partition="));
  } else if (arg == "--merge-buffers") {
    opt.merge_buffers = true;
  } else if (arg == "--no-verify") {
    opt.verify = false;
  } else if (arg.rfind("--syntax=", 0) == 0) {
    opt.syntax = value_of("--syntax=");
  } else if (arg.rfind("--inject=", 0) == 0) {
    opt.inject = value_of("--inject=");
  } else if (arg.rfind("--watchdog-rounds=", 0) == 0) {
    opt.watchdog_rounds = std::stoll(value_of("--watchdog-rounds="));
  } else if (arg.rfind("--watchdog-blocked=", 0) == 0) {
    opt.watchdog_blocked = std::stoll(value_of("--watchdog-blocked="));
  } else if (arg == "--deadlock-report") {
    opt.deadlock_report = true;
  } else if (arg.rfind("--threads=", 0) == 0) {
    opt.threads = std::stoll(value_of("--threads="));
  } else if (arg.rfind("--plan-cache-bytes=", 0) == 0) {
    opt.plan_cache_bytes = std::stoll(value_of("--plan-cache-bytes="));
  } else if (arg == "--verify-plan") {
    opt.verify_plan = true;
  } else if (arg.rfind("--format=", 0) == 0) {
    opt.format = value_of("--format=");
  } else if (arg.rfind("--allow=", 0) == 0) {
    opt.allow = value_of("--allow=");
  } else {
    return false;
  }
  return true;
}

Env sizes_of(const Design& design, const Options& opt) {
  Env sizes;
  for (const Symbol& s : design.nest.sizes()) {
    if (s.name() == "m") {
      sizes["m"] = Rational(opt.m);
    } else {
      sizes[s.name()] = Rational(opt.n);
    }
  }
  return sizes;
}

int cmd_list() {
  for (const Design& d : all_designs()) {
    std::cout << d.nest.name() << ": " << d.description << "\n";
  }
  std::cout << "\ncatalog names: polyprod1 polyprod2 polyprod3 matmul1 "
               "matmul2 matmul3 matmul4 convolution correlation\n";
  return 0;
}

int cmd_report(const Design& design) {
  CompiledProgram prog = compile(design.nest, design.spec);
  std::cout << derivation_report(prog, design.nest, design.spec);
  return 0;
}

int cmd_emit(const Design& design, const Options& opt) {
  CompiledProgram prog = compile(design.nest, design.spec);
  auto tree = ast::build_ast(prog, design.nest);
  if (opt.syntax == "paper") {
    std::cout << ast::to_paper_notation(*tree);
  } else if (opt.syntax == "occam") {
    std::cout << ast::to_occam(*tree);
  } else if (opt.syntax == "c") {
    std::cout << ast::to_c(*tree);
  } else {
    std::cerr << "unknown syntax '" << opt.syntax << "'\n";
    return 2;
  }
  return 0;
}

int cmd_graph(const Design& design, const Options& opt) {
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_of(design, opt);
  NetworkGraph graph;
  InstantiateOptions iopt;
  iopt.network = &graph;
  IndexedStore store = make_initial_store(
      design.nest, sizes,
      [](const std::string&, const IntVec&) { return 0; });
  (void)execute(prog, design.nest, sizes, store, iopt);
  std::cout << to_dot(graph);
  return 0;
}

int cmd_schedule(const Design& design, const Options& opt) {
  Env sizes = sizes_of(design, opt);
  Schedule s = derive_schedule(design.nest, design.spec, sizes);
  std::cout << "span = " << s.span() << " steps, peak parallelism = "
            << s.max_width() << "\n";
  if (design.nest.depth() == 2) {
    CompiledProgram prog = compile(design.nest, design.spec);
    std::cout << render_schedule_1d(s, prog.ps.min.evaluate(sizes),
                                    prog.ps.max.evaluate(sizes));
  } else {
    std::cout << "parallelism profile per step:\n";
    for (Int t = s.min_step; t <= s.max_step; ++t) {
      std::cout << "  step " << t << ": " << s.width_at(t) << "\n";
    }
  }
  return 0;
}

int cmd_run(const Design& design, const Options& opt) {
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_of(design, opt);

  IndexedStore store = make_initial_store(
      design.nest, sizes, [](const std::string& var, const IntVec& p) {
        Value h = var.empty() ? 1 : var[0];
        for (std::size_t i = 0; i < p.dim(); ++i) h = h * 31 + p[i];
        return h % 23 - 11;
      });
  IndexedStore expected = store;

  InstantiateOptions iopt;
  iopt.channel_capacity = opt.capacity;
  iopt.merge_internal_buffers = opt.merge_buffers;
  if (opt.partition > 0) {
    std::vector<Int> comps(design.nest.depth() - 1, opt.partition);
    iopt.partition_grid = IntVec(comps);
  }
  FaultPlan plan;
  if (!opt.inject.empty()) {
    plan = FaultPlan::parse(opt.inject);
    iopt.faults = &plan;
    std::cout << "inject: " << plan.to_string() << "\n";
  }
  iopt.watchdog.max_rounds = opt.watchdog_rounds;
  iopt.watchdog.max_blocked_rounds = opt.watchdog_blocked;
  if (opt.threads > 0) iopt.threads = static_cast<unsigned>(opt.threads);
  // --plan-cache-bytes=N: route plan construction through the two-stage
  // template pipeline with an N-byte plan budget (small budgets keep the
  // template but evict expanded plans aggressively).
  std::unique_ptr<PlanCache> cache;
  if (opt.plan_cache_bytes >= 0) {
    cache = std::make_unique<PlanCache>(
        static_cast<std::size_t>(opt.plan_cache_bytes));
    iopt.plan_cache = cache.get();
  }
  iopt.verify_plan = opt.verify_plan;

  RunMetrics metrics = execute(prog, design.nest, sizes, store, iopt);
  std::cout << metrics.to_string() << "\n";
  if (opt.partition > 0) {
    std::cout << "physical processors: " << metrics.physical_processors
              << "\n";
  }

  if (opt.verify) {
    run_sequential(design.nest, sizes, expected);
    for (const Stream& s : design.nest.streams()) {
      if (store.elements(s.name()) != expected.elements(s.name())) {
        std::cout << "VERIFY FAILED for stream " << s.name() << "\n";
        return 1;
      }
    }
    std::cout << "verify: OK (matches sequential execution)\n";
  }
  return 0;
}

/// The full static pipeline on one design: spec rules; when those pass,
/// compile and run the program rules; when those pass too, intern the
/// plan at the requested sizes/shape and run the plan rules. Compile or
/// interning failures become findings instead of aborting the sweep.
VerifyReport verify_one(const Design& design, const std::string& label,
                        const Options& opt) {
  VerifyReport rep;
  rep.design = label;
  verify_spec_into(rep, design.nest, design.spec);
  if (rep.errors() == 0) {
    try {
      CompiledProgram prog = compile(design.nest, design.spec);
      verify_program_into(rep, prog, design.nest);
      if (rep.errors() == 0) {
        PlanShape shape;
        shape.channel_capacity = opt.capacity;
        shape.merge_internal_buffers = opt.merge_buffers;
        if (opt.partition > 0) {
          std::vector<Int> comps(design.nest.depth() - 1, opt.partition);
          shape.partition_grid = IntVec(comps);
        }
        auto plan = build_plan(prog, design.nest, sizes_of(design, opt),
                               shape);
        verify_plan_into(rep, *plan);
      }
    } catch (const Error& e) {
      rep.add("compile.error", Severity::Error, design.nest.name(),
              std::string(error_kind_name(e.kind())) + ": " + e.what(),
              e.diagnostic());
    }
  }
  // --allow downgrades (exact rule ids or whole categories).
  std::istringstream allow(opt.allow);
  std::string rule;
  while (std::getline(allow, rule, ',')) {
    if (!rule.empty()) rep.allow(rule);
  }
  return rep;
}

int cmd_verify(const std::string& what, const Options& opt) {
  std::vector<VerifyReport> reports;
  if (what == "all") {
    // Catalog names, not nest names — several designs share a nest.
    for (const char* name :
         {"polyprod1", "polyprod2", "polyprod3", "matmul1", "matmul2",
          "matmul3", "matmul4", "convolution", "correlation"}) {
      reports.push_back(verify_one(design_by_name(name), name, opt));
    }
  } else {
    reports.push_back(verify_one(load_design(what), what, opt));
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const VerifyReport& rep : reports) {
    errors += rep.errors();
    warnings += rep.warnings();
  }
  if (opt.format == "json") {
    if (what == "all") {
      std::cout << '[';
      for (std::size_t i = 0; i < reports.size(); ++i) {
        if (i != 0) std::cout << ',';
        std::cout << reports[i].to_json();
      }
      std::cout << "]\n";
    } else {
      std::cout << reports.front().to_json() << "\n";
    }
  } else if (opt.format == "text") {
    for (const VerifyReport& rep : reports) {
      std::cout << rep.to_string() << "\n";
    }
    if (what == "all") {
      std::cout << "verified " << reports.size() << " design(s): " << errors
                << " error(s), " << warnings << " warning(s)\n";
    }
  } else {
    std::cerr << "unknown format '" << opt.format << "'\n";
    return 2;
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    if (argc < 2) return usage();
    std::string cmd = argv[1];
    if (cmd == "list") return cmd_list();
    if (argc < 3) return usage();

    for (int i = 3; i < argc; ++i) {
      if (!parse_flag(argv[i], opt)) {
        std::cerr << "unknown flag '" << argv[i] << "'\n";
        return usage();
      }
    }
    if (cmd == "verify") return cmd_verify(argv[2], opt);
    Design design = load_design(argv[2]);
    if (cmd == "report") return cmd_report(design);
    if (cmd == "emit") return cmd_emit(design, opt);
    if (cmd == "run") return cmd_run(design, opt);
    if (cmd == "graph") return cmd_graph(design, opt);
    if (cmd == "schedule") return cmd_schedule(design, opt);
    return usage();
  } catch (const systolize::Error& e) {
    std::cerr << "error [" << systolize::error_kind_name(e.kind())
              << "]: " << e.what() << "\n";
    if (opt.deadlock_report && !e.diagnostic().empty()) {
      std::cout << e.diagnostic() << "\n";
    }
    return 1;
  }
}
