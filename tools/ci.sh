#!/usr/bin/env bash
# CI driver: build and test the plain configuration, then again with
# AddressSanitizer + UndefinedBehaviorSanitizer (SYSTOLIZE_SANITIZE=ON).
# Run from anywhere; builds land in <repo>/build and <repo>/build-asan.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"; shift
  echo "=== configure: ${dir} ($*) ==="
  cmake -B "${dir}" -S "${repo}" "$@"
  echo "=== build: ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== test: ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config "${repo}/build"
run_config "${repo}/build-asan" -DSYSTOLIZE_SANITIZE=ON

# Static verification lint gate: the whole catalog must prove clean, and
# each deliberately-broken design must trip exactly its seeded rule id
# (docs/static-analysis.md has the rule table).
echo "=== verify: catalog must be clean ==="
"${repo}/build/tools/systolize" verify all --n=4 --format=json \
  | grep -q '"errors":0'
"${repo}/build/tools/systolize" verify all --n=4

expect_rule() {
  local design="$1" rule="$2"
  echo "=== verify: ${design} must trip ${rule} ==="
  local out
  if out="$("${repo}/build/tools/systolize" verify \
      "${repo}/designs/broken/${design}.sa" --format=json)"; then
    echo "expected non-zero exit for broken design ${design}" >&2
    exit 1
  fi
  grep -q "\"rule\":\"${rule}\"" <<<"${out}" || {
    echo "expected rule ${rule} in findings for ${design}: ${out}" >&2
    exit 1
  }
}

expect_rule step_on_nullplace schedule.injectivity
expect_rule dependence_clash schedule.dependence-step
expect_rule wide_flow flow.neighbour

echo "=== bench smoke: substrate relay chain ==="
"${repo}/build/bench/bench_endtoend" \
  --benchmark_filter='BM_SubstrateRelayChain/16' --benchmark_min_time=0.05

echo "=== bench smoke: template expansion ==="
"${repo}/build/bench/bench_endtoend" \
  --benchmark_filter='BM_PlanExpand_Matmul2/6' --benchmark_min_time=0.05

echo "=== cross-size differential: expand_template == build_plan ==="
ctest --test-dir "${repo}/build" --output-on-failure \
  -R 'CrossSizeDifferential|PlanTemplate|PlanCache'

echo "=== thread sanitizer: plan cache hammering ==="
cmake -B "${repo}/build-tsan" -S "${repo}" -DSYSTOLIZE_SANITIZE=thread
cmake --build "${repo}/build-tsan" -j "${jobs}" --target test_runtime
"${repo}/build-tsan/tests/test_runtime" --gtest_filter='PlanCache.*'

echo "=== CI OK: plain and sanitizer configurations both green ==="
