#!/usr/bin/env bash
# CI driver: build and test the plain configuration, then again with
# AddressSanitizer + UndefinedBehaviorSanitizer (SYSTOLIZE_SANITIZE=ON).
# Run from anywhere; builds land in <repo>/build and <repo>/build-asan.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"; shift
  echo "=== configure: ${dir} ($*) ==="
  cmake -B "${dir}" -S "${repo}" "$@"
  echo "=== build: ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== test: ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config "${repo}/build"
run_config "${repo}/build-asan" -DSYSTOLIZE_SANITIZE=ON

echo "=== bench smoke: substrate relay chain ==="
"${repo}/build/bench/bench_endtoend" \
  --benchmark_filter='BM_SubstrateRelayChain/16' --benchmark_min_time=0.05

echo "=== CI OK: plain and sanitizer configurations both green ==="
