#!/usr/bin/env bash
# CI driver: build and test the plain configuration, then again with
# AddressSanitizer + UndefinedBehaviorSanitizer (SYSTOLIZE_SANITIZE=ON).
# Run from anywhere; builds land in <repo>/build and <repo>/build-asan.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local dir="$1"; shift
  echo "=== configure: ${dir} ($*) ==="
  cmake -B "${dir}" -S "${repo}" "$@"
  echo "=== build: ${dir} ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== test: ${dir} ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${jobs}"
}

run_config "${repo}/build"
run_config "${repo}/build-asan" -DSYSTOLIZE_SANITIZE=ON

# Static-analysis lint: clang-tidy over the sources changed most often by
# the analysis/search work, with the root .clang-tidy profile (bugprone,
# performance, concurrency; warnings are errors). Gated on availability —
# the reference container ships no clang-tidy, real CI machines do.
if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== lint: clang-tidy (bugprone, performance, concurrency) ==="
  clang-tidy -p "${repo}/build" --quiet \
    "${repo}/src/analysis/cost.cpp" \
    "${repo}/src/systolic/enumerate.cpp" \
    "${repo}/src/frontend/render.cpp" \
    "${repo}/src/service/executor.cpp" \
    "${repo}/src/service/protocol.cpp"
else
  echo "=== lint: clang-tidy not installed, skipping (install to enable) ==="
fi

# Static verification lint gate: the whole catalog must prove clean, and
# each deliberately-broken design must trip exactly its seeded rule id
# (docs/static-analysis.md has the rule table).
echo "=== verify: catalog must be clean ==="
"${repo}/build/tools/systolize" verify all --n=4 --format=json \
  | grep -q '"errors":0'
"${repo}/build/tools/systolize" verify all --n=4

expect_rule() {
  local design="$1" rule="$2"
  echo "=== verify: ${design} must trip ${rule} ==="
  local out
  if out="$("${repo}/build/tools/systolize" verify \
      "${repo}/designs/broken/${design}.sa" --format=json)"; then
    echo "expected non-zero exit for broken design ${design}" >&2
    exit 1
  fi
  grep -q "\"rule\":\"${rule}\"" <<<"${out}" || {
    echo "expected rule ${rule} in findings for ${design}: ${out}" >&2
    exit 1
  }
}

expect_rule step_on_nullplace schedule.injectivity
expect_rule dependence_clash schedule.dependence-step
expect_rule wide_flow flow.neighbour
expect_rule rank_deficient stream.rank
expect_rule loading_cover flow.loading-cover

echo "=== analyze: cost model over the catalog + broken fixtures ==="
# Spot-check one golden number (matmul2's process count at n=4) and make
# sure every broken fixture degrades to findings, not a crash.
"${repo}/build/tools/systolize" analyze matmul2 --sizes=4 --format=json \
  | grep -q '"processes":191'
for broken in step_on_nullplace dependence_clash wide_flow rank_deficient; do
  if "${repo}/build/tools/systolize" analyze \
      "${repo}/designs/broken/${broken}.sa" > /dev/null; then
    echo "expected analyze to exit non-zero for ${broken}" >&2; exit 1
  fi
done

echo "=== explore smoke: matmul2 must win its own search space ==="
# The PR8 acceptance criterion, end to end through the CLI: restricted to
# the appendix design's projection, the search re-discovers it at rank 1,
# and the exported winner round-trips compile -> verify -> run against
# the sequential baseline.
explore_out="$(mktemp -u /tmp/systolize-ci-XXXXXX.sa)"
"${repo}/build/tools/systolize" explore matmul2 --same-projection \
  --sizes=4 --export="${explore_out}" \
  | grep -q '#1 \[seed\]' || {
  echo "matmul2 did not rank first in its own projection class" >&2
  exit 1; }
"${repo}/build/tools/systolize" run "${explore_out}" --n=5 --verify \
  | grep -q 'verify: OK' || {
  echo "exported explore winner failed the differential run" >&2
  exit 1; }
rm -f "${explore_out}"

echo "=== bytecode differential: every design, interp vs VM vs batched ==="
# The native-backend contract (docs/performance.md "Native backend &
# batching"): on every catalog design the VM must produce bit-identical
# results to the interpreted engine, solo and as an 8-lane SoA batch,
# each lane verified against the sequential ground truth.
for design in polyprod1 polyprod2 polyprod3 matmul1 matmul2 matmul3 \
              matmul4 convolution correlation fir_bank closure; do
  "${repo}/build/tools/systolize" run "${design}" --n=4 \
    --backend=bytecode --verify | grep -q 'verify: OK' || {
    echo "bytecode run diverged from sequential for ${design}" >&2; exit 1; }
  "${repo}/build/tools/systolize" run "${design}" --n=4 --batch=8 \
    --verify | grep -q 'verify: OK (all 8 instances' || {
    echo "batched run diverged from sequential for ${design}" >&2; exit 1; }
done
# The exhaustive schedule-level identity (makespan, transfers, rounds,
# per-stream counts) lives in the differential suite; re-run it by name
# so a filtered CI invocation cannot silently skip it.
ctest --test-dir "${repo}/build" --output-on-failure \
  -R 'BytecodeDifferential|BytecodeValidation|BytecodeCache'

echo "=== fuzz smoke: bounded differential campaign, fixed seed ==="
# The PR10 oracle gate (docs/static-analysis.md "Differential fuzzing"):
# a fixed-seed campaign over the full backend matrix must end with zero
# cross-backend disagreements. The seed pins the exact sample sequence,
# so a failure here replays bit-for-bit on any machine.
# Capture, then grep: grep -q on the live pipe closes it early and the
# still-writing fuzzer dies of SIGPIPE, which pipefail reports as failure.
fuzz_corpus="$(mktemp -d /tmp/systolize-ci-fuzz-XXXXXX)"
fuzz_log="$(mktemp /tmp/systolize-ci-fuzz-log-XXXXXX)"
"${repo}/build/tools/systolize" fuzz --seed=1 --count=100 \
  --corpus-dir="${fuzz_corpus}" > "${fuzz_log}"
grep -q ' 0 disagreement(s)' "${fuzz_log}" || {
  echo "fuzz campaign found a verifier/runtime disagreement" >&2
  tail -n 20 "${fuzz_log}" >&2
  ls "${fuzz_corpus}" >&2
  exit 1; }
rm -rf "${fuzz_corpus}" "${fuzz_log}"

echo "=== fuzz replay: checked-in corpus must stay clean ==="
# Every reproducer under designs/fuzz-corpus re-runs the differential
# oracle that found it; exit 1 means a past finding regressed.
"${repo}/build/tools/systolize" fuzz --replay \
  --corpus-dir="${repo}/designs/fuzz-corpus"

echo "=== fuzz smoke under ASan/UBSan ==="
# The generator's samples reach every substrate (parked-op scheduler,
# work-stealing shards, bytecode VM) with hostile shapes the curated
# suites never produce — a cheap way to hand the sanitizers fresh input.
asan_fuzz_log="$(mktemp /tmp/systolize-ci-fuzz-asan-log-XXXXXX)"
"${repo}/build-asan/tools/systolize" fuzz --seed=1 --count=40 \
  --corpus-dir="$(mktemp -d /tmp/systolize-ci-fuzz-asan-XXXXXX)" \
  > "${asan_fuzz_log}"
grep -q ' 0 disagreement(s)' "${asan_fuzz_log}" || {
  echo "sanitized fuzz campaign failed" >&2
  tail -n 20 "${asan_fuzz_log}" >&2
  exit 1; }
rm -f "${asan_fuzz_log}"

echo "=== bench smoke: substrate relay chain ==="
"${repo}/build/bench/bench_endtoend" \
  --benchmark_filter='BM_SubstrateRelayChain/16' --benchmark_min_time=0.05

echo "=== bench smoke: template expansion ==="
"${repo}/build/bench/bench_endtoend" \
  --benchmark_filter='BM_PlanExpand_Matmul2/6' --benchmark_min_time=0.05

echo "=== cross-size differential: expand_template == build_plan ==="
ctest --test-dir "${repo}/build" --output-on-failure \
  -R 'CrossSizeDifferential|PlanTemplate|PlanCache'

echo "=== thread sanitizer: plan cache + work-stealing substrate ==="
cmake -B "${repo}/build-tsan" -S "${repo}" -DSYSTOLIZE_SANITIZE=thread
cmake --build "${repo}/build-tsan" -j "${jobs}" --target test_runtime \
  test_service
"${repo}/build-tsan/tests/test_runtime" --gtest_filter='PlanCache.*'
# The WorkSteal hammer repeats sharded runs across thread counts — under
# TSan it exercises every mailbox/bitmap/hint-queue race the substrate
# claims to have closed (runtime/shard.hpp's determinism argument).
"${repo}/build-tsan/tests/test_runtime" --gtest_filter='WorkSteal.*'

echo "=== thread sanitizer: coalesced batched serve ==="
# The coalescing path under TSan: pop_group's backlog sweep, the shared
# batched VM dispatch chunked over the worker pool, and the per-backend
# stats counters all race 8 pipelined clients against 2 workers in the
# coalescing soak; the executor group/batch tests cover the same code
# single-threaded with exact counter assertions.
"${repo}/build-tsan/tests/test_service" \
  --gtest_filter='Coalescing.*:Executor.HandleGroup*:Executor.Batched*:Server.CoalescingSoak*'

echo "=== bench gate: relay chain must hold the post-PR2 numbers ==="
# Pure-data regression gate over the recorded trajectory: the substrate
# rewrite (PR7) must keep BM_SubstrateRelayChain within 10% of the best
# recorded numbers (post-PR2-fastpath), closing PR4's regression.
"${repo}/tools/bench.sh" --compare post-PR2-fastpath PR7-worksteal 10 \
  'BM_SubstrateRelayChain'

echo "=== serve smoke: daemon, concurrent clients, SIGTERM drain ==="
# The daemon lifecycle contract end to end, with real processes and a
# real signal: concurrent clients (one of them tripping the watchdog via
# an injected kill), then SIGTERM mid-flight — the server must drain
# in-flight work and exit 0.
serve_sock="$(mktemp -u /tmp/systolize-ci-XXXXXX.sock)"
"${repo}/build/tools/systolize" serve --socket="${serve_sock}" \
  --workers=4 > /tmp/systolize-ci-serve.log 2>&1 &
serve_pid=$!
for _ in $(seq 50); do [ -S "${serve_sock}" ] && break; sleep 0.1; done
[ -S "${serve_sock}" ] || { echo "daemon never bound its socket" >&2; exit 1; }

# Concurrent clients: clean runs, a warm rerun, and a fault-injected run
# whose kill deadlocks the network — it must classify (exit 1 from the
# client, error verdict with forensics), not wedge the daemon.
"${repo}/build/tools/systolize" client --socket="${serve_sock}" \
  --op=run --design=matmul2 --n=4 --verify --count=3 &
c1=$!
"${repo}/build/tools/systolize" client --socket="${serve_sock}" \
  --op=run --design=polyprod1 --n=5 --tenant=ci &
c2=$!
if fault_out="$("${repo}/build/tools/systolize" client \
    --socket="${serve_sock}" --op=run --design=polyprod1 \
    --inject='kill@comp:(1)=1' --round-budget=300)"; then
  echo "expected the faulted request to classify as an error" >&2; exit 1
fi
grep -q '"status":"error"' <<<"${fault_out}" || {
  echo "faulted request did not return an error verdict: ${fault_out}" >&2
  exit 1; }
grep -q '"diagnostic"' <<<"${fault_out}" || {
  echo "faulted request lacks DeadlockReport forensics: ${fault_out}" >&2
  exit 1; }
wait "${c1}" || { echo "clean client 1 failed" >&2; exit 1; }
wait "${c2}" || { echo "clean client 2 failed" >&2; exit 1; }

# The daemon survived the fault: a warm request still succeeds (and hits
# the shared plan cache).
"${repo}/build/tools/systolize" client --socket="${serve_sock}" \
  --op=run --design=matmul2 --n=4 | grep -q '"plan_reused":true'

# SIGTERM mid-flight: fire a batch of requests, signal the daemon while
# they are in flight, and require a clean drain (exit 0).
"${repo}/build/tools/systolize" client --socket="${serve_sock}" \
  --op=run --design=matmul2 --n=6 --count=8 --retry > /dev/null 2>&1 &
c3=$!
sleep 0.2
kill -TERM "${serve_pid}"
serve_rc=0
wait "${serve_pid}" || serve_rc=$?
wait "${c3}" || true  # mid-drain clients may see shutting-down rejections
[ "${serve_rc}" -eq 0 ] || {
  echo "daemon exited ${serve_rc} on SIGTERM (expected clean drain, 0)" >&2
  cat /tmp/systolize-ci-serve.log >&2
  exit 1; }
grep -q "drained, final stats" /tmp/systolize-ci-serve.log || {
  echo "daemon did not flush final stats on drain" >&2; exit 1; }
[ ! -S "${serve_sock}" ] || { echo "socket not unlinked after drain" >&2; exit 1; }

echo "=== bench smoke: warm serve request ==="
"${repo}/build/bench/bench_endtoend" \
  --benchmark_filter='BM_ServeWarmRequest' --benchmark_min_time=0.05

echo "=== bench smoke: static analysis + design-space search ==="
# BM_ExploreMatmul2 doubles as a correctness assertion: it SkipWithError's
# (non-zero exit) if the seed ever stops ranking first in its own space.
"${repo}/build/bench/bench_endtoend" \
  --benchmark_filter='BM_AnalyzeCost/6|BM_ExploreMatmul2' \
  --benchmark_min_time=0.05

echo "=== bench gate: analysis must hold the PR8 numbers ==="
# Recorded-baseline gate: the PR8 run is the floor; "latest" resolves to
# the most recent recorded run, so future tools/bench.sh recordings are
# automatically compared against it.
"${repo}/tools/bench.sh" --compare PR8-explore latest 10 \
  'BM_AnalyzeCost|BM_ExploreMatmul2'

echo "=== bench smoke: bytecode backend + batch sweep ==="
"${repo}/build/bench/bench_endtoend" \
  --benchmark_filter='BM_BytecodeVsInterp_|BM_BatchSweep/8' \
  --benchmark_min_time=0.05

echo "=== bench gate: bytecode backend must hold the PR9 numbers ==="
"${repo}/tools/bench.sh" --compare PR9-bytecode latest 10 \
  'BM_BytecodeVsInterp|BM_BatchSweep'

echo "=== bench smoke: fuzz oracle throughput ==="
# Doubles as a correctness assertion: the bench SkipWithError's (non-zero
# exit) if any sampled design ever produces a cross-backend disagreement.
"${repo}/build/bench/bench_endtoend" \
  --benchmark_filter='BM_FuzzThroughput' --benchmark_min_time=0.05

echo "=== bench gate: fuzz oracle must hold the PR10 numbers ==="
"${repo}/tools/bench.sh" --compare PR10-fuzz latest 10 'BM_FuzzThroughput'

echo "=== CI OK: plain and sanitizer configurations both green ==="
