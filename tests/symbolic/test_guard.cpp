#include "symbolic/guard.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace systolize {
namespace {

const Symbol kN = size_symbol("n");
const Symbol kCol = coord_symbol("col");

TEST(Guard, EmptyGuardIsTrue) {
  Guard g;
  EXPECT_TRUE(g.is_trivially_true());
  EXPECT_TRUE(g.holds(Env{}));
  EXPECT_EQ(g.to_string(), "true");
}

TEST(Guard, BetweenExpandsToTwoConstraints) {
  auto cs = between(AffineExpr(0), AffineExpr(kCol), AffineExpr(kN));
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].to_string(), "0 <= col");
  EXPECT_EQ(cs[1].to_string(), "col <= n");
}

TEST(Guard, Holds) {
  Guard g;
  g.add(between(AffineExpr(0), AffineExpr(kCol), AffineExpr(kN)));
  EXPECT_TRUE(g.holds(Env{{"col", Rational(2)}, {"n", Rational(4)}}));
  EXPECT_TRUE(g.holds(Env{{"col", Rational(0)}, {"n", Rational(0)}}));
  EXPECT_FALSE(g.holds(Env{{"col", Rational(5)}, {"n", Rational(4)}}));
  EXPECT_FALSE(g.holds(Env{{"col", Rational(-1)}, {"n", Rational(4)}}));
}

TEST(Guard, ConjoinedCombines) {
  Guard a;
  a.add(Constraint{AffineExpr(0), AffineExpr(kCol)});
  Guard b;
  b.add(Constraint{AffineExpr(kCol), AffineExpr(kN)});
  Guard both = a.conjoined(b);
  EXPECT_EQ(both.constraints().size(), 2u);
  EXPECT_FALSE(both.holds(Env{{"col", Rational(-1)}, {"n", Rational(3)}}));
  EXPECT_TRUE(both.holds(Env{{"col", Rational(1)}, {"n", Rational(3)}}));
}

TEST(Guard, SimplifiedDropsConstantTrueAndDuplicates) {
  Guard g;
  g.add(Constraint{AffineExpr(0), AffineExpr(3)});  // constant-true
  g.add(Constraint{AffineExpr(0), AffineExpr(kCol)});
  g.add(Constraint{AffineExpr(0), AffineExpr(kCol)});  // duplicate
  Guard s = g.simplified();
  EXPECT_EQ(s.constraints().size(), 1u);
}

TEST(Guard, SimplifiedThrowsOnConstantFalse) {
  Guard g;
  g.add(Constraint{AffineExpr(3), AffineExpr(0)});
  try {
    (void)g.simplified();
    FAIL() << "expected Inconsistent";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Inconsistent);
  }
}

}  // namespace
}  // namespace systolize
