#include "symbolic/affine_expr.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"
#include "symbolic/affine_point.hpp"

namespace systolize {
namespace {

const Symbol kN = size_symbol("n");
const Symbol kCol = coord_symbol("col");
const Symbol kRow = coord_symbol("row");

TEST(AffineExpr, ConstructionAndCoeffs) {
  AffineExpr e = AffineExpr(kCol) - AffineExpr(kRow) + AffineExpr(3);
  EXPECT_EQ(e.coeff(kCol), Rational(1));
  EXPECT_EQ(e.coeff(kRow), Rational(-1));
  EXPECT_EQ(e.coeff(kN), Rational(0));
  EXPECT_EQ(e.constant(), Rational(3));
  EXPECT_FALSE(e.is_constant());
}

TEST(AffineExpr, CancellationPrunesTerms) {
  AffineExpr e = AffineExpr(kCol) - AffineExpr(kCol);
  EXPECT_TRUE(e.is_zero());
  EXPECT_TRUE(e.terms().empty());
}

TEST(AffineExpr, MultiplyByZeroClears) {
  AffineExpr e = AffineExpr(kCol) + AffineExpr(1);
  EXPECT_TRUE((e * Rational(0)).is_zero());
}

TEST(AffineExpr, Substitution) {
  // (col - row + n) with row := col - n  gives 2n.
  AffineExpr e = AffineExpr(kCol) - AffineExpr(kRow) + AffineExpr(kN);
  AffineExpr sub = AffineExpr(kCol) - AffineExpr(kN);
  AffineExpr r = e.substituted(kRow, sub);
  EXPECT_TRUE(r.is_constant() == false);
  EXPECT_EQ(r, AffineExpr(kN) * Rational(2));
}

TEST(AffineExpr, Evaluate) {
  AffineExpr e = AffineExpr(kCol) * Rational(2) + AffineExpr(kN) - AffineExpr(1);
  Env env{{"col", Rational(3)}, {"n", Rational(5)}};
  EXPECT_EQ(e.evaluate(env), Rational(10));
}

TEST(AffineExpr, EvaluateUnboundThrows) {
  AffineExpr e = AffineExpr(kCol);
  try {
    (void)e.evaluate(Env{});
    FAIL() << "expected Validation";
  } catch (const Error& err) {
    EXPECT_EQ(err.kind(), ErrorKind::Validation);
  }
}

TEST(AffineExpr, CoordFree) {
  EXPECT_TRUE((AffineExpr(kN) + AffineExpr(2)).is_coord_free());
  EXPECT_FALSE((AffineExpr(kN) + AffineExpr(kCol)).is_coord_free());
}

TEST(AffineExpr, ToString) {
  EXPECT_EQ(AffineExpr(0).to_string(), "0");
  EXPECT_EQ((AffineExpr(kCol) - AffineExpr(kRow) + AffineExpr(kN)).to_string(),
            "col + n - row");
  EXPECT_EQ((AffineExpr(kN) * Rational(2) - AffineExpr(1)).to_string(),
            "2*n - 1");
  EXPECT_EQ((-AffineExpr(kCol)).to_string(), "-col");
}

TEST(AffinePoint, ArithmeticAndDot) {
  AffinePoint p{AffineExpr(kCol), AffineExpr(0)};
  AffinePoint q{AffineExpr(kN), AffineExpr(kRow)};
  AffinePoint sum = p + q;
  EXPECT_EQ(sum[0], AffineExpr(kCol) + AffineExpr(kN));
  EXPECT_EQ(sum[1], AffineExpr(kRow));
  EXPECT_EQ(p.dot(IntVec{1, -1}), AffineExpr(kCol));
}

TEST(AffinePoint, MatrixApplication) {
  // M.c = (i,j) from matmul applied to the statement (col, row, 0).
  IntMatrix mc{{1, 0, 0}, {0, 1, 0}};
  AffinePoint x{AffineExpr(kCol), AffineExpr(kRow), AffineExpr(0)};
  AffinePoint mx = x.applied(mc);
  ASSERT_EQ(mx.dim(), 2u);
  EXPECT_EQ(mx[0], AffineExpr(kCol));
  EXPECT_EQ(mx[1], AffineExpr(kRow));
}

TEST(AffinePoint, PlusScaled) {
  AffinePoint p{AffineExpr(kCol), AffineExpr(0)};
  AffinePoint r = p.plus_scaled(AffineExpr(kN), IntVec{1, -1});
  EXPECT_EQ(r[0], AffineExpr(kCol) + AffineExpr(kN));
  EXPECT_EQ(r[1], -AffineExpr(kN));
}

TEST(AffinePoint, EvaluateRequiresIntegrality) {
  AffinePoint p{AffineExpr(kCol) * Rational(1, 2)};
  EXPECT_EQ(p.evaluate(Env{{"col", Rational(4)}}), (IntVec{2}));
  EXPECT_THROW((void)p.evaluate(Env{{"col", Rational(3)}}), Error);
}

}  // namespace
}  // namespace systolize
