#include "symbolic/fourier_motzkin.hpp"

#include <gtest/gtest.h>

#include "scheme/first_last.hpp"

namespace systolize {
namespace {

const Symbol kN = size_symbol("n");
const Symbol kCol = coord_symbol("col");
const Symbol kRow = coord_symbol("row");

Guard n_positive() {
  Guard g;
  g.add(Constraint{AffineExpr(1), AffineExpr(kN)});
  return g;
}

TEST(FourierMotzkin, TriviallyFeasible) {
  EXPECT_TRUE(is_feasible(Guard{}));
}

TEST(FourierMotzkin, SimpleInterval) {
  Guard g;
  g.add(between(AffineExpr(0), AffineExpr(kCol), AffineExpr(kN)));
  EXPECT_TRUE(is_feasible(g, n_positive()));
}

TEST(FourierMotzkin, ContradictoryInterval) {
  // col <= -1 and col >= 0.
  Guard g;
  g.add(Constraint{AffineExpr(kCol), AffineExpr(-1)});
  g.add(Constraint{AffineExpr(0), AffineExpr(kCol)});
  EXPECT_FALSE(is_feasible(g));
}

TEST(FourierMotzkin, InfeasibleOnlyWithAssumption) {
  // col >= n+1 and col <= n - 1 is infeasible regardless; but
  // col >= n and col <= 0 is feasible only when n <= 0.
  Guard g;
  g.add(Constraint{AffineExpr(kN), AffineExpr(kCol)});
  g.add(Constraint{AffineExpr(kCol), AffineExpr(0)});
  EXPECT_TRUE(is_feasible(g));
  EXPECT_FALSE(is_feasible(g, n_positive()));
}

TEST(FourierMotzkin, ChainedTransitivity) {
  // col <= row, row <= n, n <= col - 1 is infeasible.
  Guard g;
  g.add(Constraint{AffineExpr(kCol), AffineExpr(kRow)});
  g.add(Constraint{AffineExpr(kRow), AffineExpr(kN)});
  g.add(Constraint{AffineExpr(kN), AffineExpr(kCol) - AffineExpr(1)});
  EXPECT_FALSE(is_feasible(g));
}

TEST(FourierMotzkin, Implies) {
  Guard g;
  g.add(between(AffineExpr(0), AffineExpr(kCol), AffineExpr(kN)));
  // 0 <= col <= n implies col <= 2n when n >= 1.
  EXPECT_TRUE(implies(g, Constraint{AffineExpr(kCol), AffineExpr(kN) * Rational(2)},
                      n_positive()));
  // ... but does not imply col <= n - 1.
  EXPECT_FALSE(implies(g, Constraint{AffineExpr(kCol), AffineExpr(kN) - AffineExpr(1)},
                       n_positive()));
}

TEST(FourierMotzkin, DropRedundant) {
  Guard g;
  g.add(Constraint{AffineExpr(0), AffineExpr(kCol)});
  g.add(Constraint{AffineExpr(kCol), AffineExpr(kN)});
  // Redundant: col <= 2n follows from col <= n, n >= 1.
  g.add(Constraint{AffineExpr(kCol), AffineExpr(kN) * Rational(2)});
  Guard r = drop_redundant(g, n_positive());
  EXPECT_EQ(r.constraints().size(), 2u);
}

TEST(FourierMotzkin, DropRedundantKeepsEquivalentRegion) {
  Guard g;
  g.add(between(AffineExpr(0), AffineExpr(kCol) - AffineExpr(kRow),
                AffineExpr(kN)));
  g.add(between(AffineExpr(0), AffineExpr(kCol), AffineExpr(kN)));
  Guard r = drop_redundant(g, n_positive());
  // Semantics preserved on a grid sweep.
  for (Int n = 1; n <= 3; ++n) {
    for (Int col = -4; col <= 4; ++col) {
      for (Int row = -4; row <= 4; ++row) {
        Env env{{"n", Rational(n)}, {"col", Rational(col)},
                {"row", Rational(row)}};
        EXPECT_EQ(g.holds(env), r.holds(env))
            << "n=" << n << " col=" << col << " row=" << row;
      }
    }
  }
}

TEST(HasInterior, FullDimensionalRegion) {
  Guard g;
  g.add(between(AffineExpr(0), AffineExpr(kCol), AffineExpr(kN)));
  EXPECT_TRUE(has_interior(g, n_positive()));
}

TEST(HasInterior, PinnedRegionHasNone) {
  // 0 <= col <= n together with n <= col pins col == n.
  Guard g;
  g.add(between(AffineExpr(0), AffineExpr(kCol), AffineExpr(kN)));
  g.add(Constraint{AffineExpr(kN), AffineExpr(kCol)});
  EXPECT_FALSE(has_interior(g, n_positive()));
}

TEST(HasInterior, InfeasibleRegionHasNone) {
  Guard g;
  g.add(Constraint{AffineExpr(kCol), AffineExpr(-1)});
  g.add(Constraint{AffineExpr(0), AffineExpr(kCol)});
  EXPECT_FALSE(has_interior(g, Guard{}));
}

}  // namespace
}  // namespace systolize
