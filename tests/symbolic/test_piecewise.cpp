#include "symbolic/piecewise.hpp"

#include <gtest/gtest.h>

namespace systolize {
namespace {

const Symbol kN = size_symbol("n");
const Symbol kCol = coord_symbol("col");

Guard n_positive() {
  Guard g;
  g.add(Constraint{AffineExpr(1), AffineExpr(kN)});
  return g;
}

Guard col_le_n() {
  Guard g;
  g.add(between(AffineExpr(0), AffineExpr(kCol), AffineExpr(kN)));
  return g;
}

Guard col_ge_n() {
  Guard g;
  g.add(between(AffineExpr(kN), AffineExpr(kCol), AffineExpr(kN) * Rational(2)));
  return g;
}

TEST(Piecewise, SelectFirstMatching) {
  Piecewise<AffineExpr> pw;
  pw.add(col_le_n(), AffineExpr(kCol) + AffineExpr(1));
  pw.add(col_ge_n(), AffineExpr(kN) * Rational(2) - AffineExpr(kCol) + AffineExpr(1));

  Env env{{"n", Rational(3)}, {"col", Rational(2)}};
  const AffineExpr* v = pw.select(env);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->evaluate(env), Rational(3));

  env["col"] = Rational(5);
  v = pw.select(env);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->evaluate(env), Rational(2));

  env["col"] = Rational(7);  // outside both
  EXPECT_EQ(pw.select(env), nullptr);
  EXPECT_FALSE(pw.covers(env));
}

TEST(Piecewise, TotalSingleClause) {
  Piecewise<AffineExpr> pw{AffineExpr(kN)};
  EXPECT_EQ(pw.size(), 1u);
  EXPECT_TRUE(pw.pieces()[0].guard.is_trivially_true());
}

TEST(Piecewise, PrunedRemovesInfeasible) {
  Piecewise<AffineExpr> pw;
  pw.add(col_le_n(), AffineExpr(1));
  Guard impossible;
  impossible.add(Constraint{AffineExpr(kCol), AffineExpr(-1)});
  impossible.add(Constraint{AffineExpr(0), AffineExpr(kCol)});
  pw.add(impossible, AffineExpr(2));
  Piecewise<AffineExpr> p = pw.pruned(n_positive());
  EXPECT_EQ(p.size(), 1u);
}

TEST(Piecewise, MappedKeepsGuards) {
  Piecewise<AffineExpr> pw;
  pw.add(col_le_n(), AffineExpr(kCol));
  auto doubled =
      pw.mapped([](const AffineExpr& e) { return e * Rational(2); });
  ASSERT_EQ(doubled.size(), 1u);
  EXPECT_EQ(doubled.pieces()[0].guard, pw.pieces()[0].guard);
  Env env{{"n", Rational(4)}, {"col", Rational(3)}};
  EXPECT_EQ(doubled.select(env)->evaluate(env), Rational(6));
}

TEST(Piecewise, CombinedPrunesCrossProducts) {
  Piecewise<AffineExpr> a;
  a.add(col_le_n(), AffineExpr(1));
  a.add(col_ge_n(), AffineExpr(2));
  Piecewise<AffineExpr> b;
  b.add(col_le_n(), AffineExpr(10));
  b.add(col_ge_n(), AffineExpr(20));
  auto sum = a.combined(
      b, [](const AffineExpr& x, const AffineExpr& y) { return x + y; },
      n_positive());
  // All four pairings overlap at least at col == n; low-low and high-high
  // have full overlap, the mixed ones only the point col == n — still
  // rationally feasible, so all 4 remain.
  EXPECT_EQ(sum.size(), 4u);
  Env env{{"n", Rational(3)}, {"col", Rational(1)}};
  EXPECT_EQ(sum.select(env)->evaluate(env), Rational(11));
  env["col"] = Rational(5);
  EXPECT_EQ(sum.select(env)->evaluate(env), Rational(22));
}

TEST(Piecewise, ToString) {
  Piecewise<AffineExpr> pw;
  pw.add(col_le_n(), AffineExpr(kCol));
  std::string s =
      pw.to_string([](const AffineExpr& e) { return e.to_string(); });
  EXPECT_NE(s.find("if "), std::string::npos);
  EXPECT_NE(s.find("col <= n"), std::string::npos);
}

}  // namespace
}  // namespace systolize
