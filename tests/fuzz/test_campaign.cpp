// Campaign + corpus replay: report bookkeeping, reproducer files that
// parse and replay cleanly, and end-to-end determinism of a whole run.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "frontend/parser.hpp"
#include "fuzz/fuzz.hpp"

namespace systolize::fuzz {
namespace {

FuzzOptions quick_campaign(const std::string& corpus_dir) {
  FuzzOptions options;
  options.seed = 3;
  options.count = 25;
  options.corpus_dir = corpus_dir;
  options.oracle.threads = 2;
  options.oracle.batch = 2;
  return options;
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(FuzzCampaign, TalliesAddUp) {
  const FuzzReport report = run_campaign(quick_campaign(""));
  EXPECT_EQ(report.passed + report.static_rejects + report.source_rejects +
                report.no_design + report.disagreements,
            report.count);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(FuzzCampaign, EndToEndDeterministic) {
  const FuzzReport a = run_campaign(quick_campaign(""));
  const FuzzReport b = run_campaign(quick_campaign(""));
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(FuzzCampaign, KeepRejectsWritesParsableReproducers) {
  TempDir dir("systolize-fuzz-test-corpus");
  FuzzOptions options = quick_campaign(dir.path.string());
  options.keep_rejects = true;
  const FuzzReport report = run_campaign(options);
  ASSERT_TRUE(report.clean()) << report.to_string();

  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    if (entry.path().extension() != ".sa") continue;
    ++files;
    std::ifstream in(entry.path());
    std::ostringstream text;
    text << in.rdbuf();
    EXPECT_NO_THROW(frontend::parse_design(text.str())) << entry.path();
    EXPECT_NE(text.str().find("# fuzz reproducer:"), std::string::npos);
    EXPECT_NE(text.str().find("# probe:"), std::string::npos);
  }
  EXPECT_GT(files, 0u);

  // Replay over the corpus we just wrote must agree with itself.
  const ReplayResult replay = replay_corpus(dir.path.string(), options.oracle);
  EXPECT_EQ(replay.files, files);
  EXPECT_TRUE(replay.clean()) << (replay.violations.empty()
                                      ? ""
                                      : replay.violations.front());
}

TEST(FuzzCampaign, ReplayOnMissingDirectoryIsClean) {
  const ReplayResult replay =
      replay_corpus("/nonexistent/fuzz-corpus", OracleOptions{});
  EXPECT_EQ(replay.files, 0u);
  EXPECT_TRUE(replay.clean());
}

TEST(FuzzCampaign, CheckedInCorpusReplaysClean) {
  const std::string dir = std::string(SYSTOLIZE_DESIGN_DIR) + "/fuzz-corpus";
  OracleOptions oracle;
  oracle.threads = 2;
  oracle.batch = 2;
  const ReplayResult replay = replay_corpus(dir, oracle);
  EXPECT_GT(replay.files, 0u) << "no reproducers checked in under " << dir;
  EXPECT_TRUE(replay.clean()) << (replay.violations.empty()
                                      ? ""
                                      : replay.violations.front());
}

TEST(FuzzCampaign, JsonReportIsWellFormedEnough) {
  FuzzOptions options = quick_campaign("");
  options.count = 10;
  const std::string json = run_campaign(options).to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"seed\":3"), std::string::npos);
  EXPECT_NE(json.find("\"records\":["), std::string::npos);
}

}  // namespace
}  // namespace systolize::fuzz
