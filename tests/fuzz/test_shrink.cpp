// Shrinker invariants: the reduced sample still reproduces the original
// verdict, shrinking is deterministic, and seeded breakages reduce to
// small reproducers.
#include <gtest/gtest.h>

#include <sstream>

#include "fuzz/fuzz.hpp"

namespace systolize::fuzz {
namespace {

OracleOptions quick_oracle() {
  OracleOptions options;
  options.threads = 2;
  options.batch = 2;
  return options;
}

/// First mutated sample of the given kind under the seed.
FuzzSample mutated_sample(std::uint64_t seed, const std::string& kind) {
  GeneratorOptions gen;
  gen.mutate_percent = 100;
  for (std::size_t i = 0; i < 200; ++i) {
    FuzzSample s = generate_sample(seed, i, gen);
    if (s.mutation == kind) return s;
  }
  ADD_FAILURE() << "no '" << kind << "' sample in 200 draws";
  return generate_sample(seed, 0, gen);
}

std::size_t line_count(const std::string& text) {
  std::size_t lines = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') ++lines;
  }
  return lines;
}

TEST(FuzzShrink, PreservesVerdictOutcome) {
  const OracleOptions oracle = quick_oracle();
  const FuzzSample s = mutated_sample(31, "step-on-nullplace");
  const OracleResult before = classify(s, oracle);
  ASSERT_NE(before.outcome, Outcome::Pass);
  const ShrinkResult reduced =
      shrink(s, oracle, [&](const OracleResult& candidate) {
        return candidate.outcome == before.outcome;
      });
  const OracleResult after = classify(reduced.sample, oracle);
  EXPECT_EQ(after.outcome, before.outcome);
}

TEST(FuzzShrink, IsDeterministic) {
  const OracleOptions oracle = quick_oracle();
  const FuzzSample s = mutated_sample(37, "dependence-clash");
  const OracleResult want = classify(s, oracle);
  auto keep = [&](const OracleResult& candidate) {
    return candidate.outcome == want.outcome;
  };
  const ShrinkResult a = shrink(s, oracle, keep);
  const ShrinkResult b = shrink(s, oracle, keep);
  EXPECT_EQ(to_sa(a.sample), to_sa(b.sample));
  EXPECT_EQ(a.steps, b.steps);
}

TEST(FuzzShrink, SeededBreakageShrinksToTenLinesOrFewer) {
  // Acceptance bar from the issue: an intentionally-broken design must
  // reduce to a <=10-line reproducer (comments excluded).
  const OracleOptions oracle = quick_oracle();
  const FuzzSample s = mutated_sample(41, "step-on-nullplace");
  const OracleResult before = classify(s, oracle);
  ASSERT_NE(before.outcome, Outcome::Pass);
  const ShrinkResult reduced =
      shrink(s, oracle, [&](const OracleResult& candidate) {
        return candidate.outcome == before.outcome;
      });
  EXPECT_LE(line_count(to_sa(reduced.sample)), 10u)
      << to_sa(reduced.sample);
}

TEST(FuzzShrink, ShrunkProbeSizesAreMinimal) {
  const OracleOptions oracle = quick_oracle();
  const FuzzSample s = mutated_sample(43, "drop-loading");
  const OracleResult before = classify(s, oracle);
  ASSERT_NE(before.outcome, Outcome::Pass);
  const ShrinkResult reduced =
      shrink(s, oracle, [&](const OracleResult& candidate) {
        return candidate.outcome == before.outcome;
      });
  // Static rejects do not depend on the probe point, so every size must
  // have been walked down to 1.
  for (const auto& [sym, value] : reduced.sample.probe) {
    EXPECT_EQ(value, 1) << sym;
  }
}

}  // namespace
}  // namespace systolize::fuzz
