// Generator invariants: determinism, Appendix-A conformance of the
// rendered source, spec compatibility, and mutation targeting.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "fuzz/fuzz.hpp"
#include "loopnest/validate.hpp"

namespace systolize::fuzz {
namespace {

FuzzSample sample_at(std::uint64_t seed, std::size_t index) {
  GeneratorOptions options;
  return generate_sample(seed, index, options);
}

TEST(FuzzGenerator, SameSeedSameSample) {
  for (std::size_t i = 0; i < 20; ++i) {
    const FuzzSample a = sample_at(42, i);
    const FuzzSample b = sample_at(42, i);
    EXPECT_EQ(to_sa(a), to_sa(b)) << "index " << i;
    EXPECT_EQ(a.probe, b.probe) << "index " << i;
    EXPECT_EQ(a.mutation, b.mutation) << "index " << i;
  }
}

TEST(FuzzGenerator, DifferentSeedsDiverge) {
  // Not literally guaranteed per index, but across 10 indices two seeds
  // producing identical streams would mean the seed is ignored.
  std::size_t same = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (to_sa(sample_at(1, i)) == to_sa(sample_at(2, i))) ++same;
  }
  EXPECT_LT(same, 10u);
}

TEST(FuzzGenerator, RenderedSourceParses) {
  for (std::size_t i = 0; i < 30; ++i) {
    const FuzzSample s = sample_at(7, i);
    EXPECT_NO_THROW(frontend::parse_design(to_sa(s))) << to_sa(s);
  }
}

TEST(FuzzGenerator, UnmutatedSamplesSatisfyAppendixA) {
  GeneratorOptions options;
  options.mutate_percent = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    const FuzzSample s = generate_sample(11, i, options);
    const Design d = frontend::parse_design(to_sa(s));
    EXPECT_NO_THROW(validate_source(d.nest)) << to_sa(s);
  }
}

TEST(FuzzGenerator, RoundTripThroughParser) {
  // to_sa -> parse -> the parsed nest matches the sample's structure.
  for (std::size_t i = 0; i < 20; ++i) {
    const FuzzSample s = sample_at(13, i);
    const Design d = frontend::parse_design(to_sa(s));
    ASSERT_EQ(d.nest.loops().size(), s.loops.size()) << to_sa(s);
    ASSERT_EQ(d.nest.streams().size(), s.streams.size()) << to_sa(s);
    for (std::size_t k = 0; k < s.streams.size(); ++k) {
      EXPECT_EQ(d.nest.streams()[k].name(), s.streams[k].name);
      const IntMatrix& m = d.nest.streams()[k].index_map();
      ASSERT_EQ(m.rows(), s.streams[k].map.size());
      for (std::size_t r = 0; r < m.rows(); ++r) {
        for (std::size_t c = 0; c < m.cols(); ++c) {
          EXPECT_EQ(m.at(r, c), s.streams[k].map[r][c]) << to_sa(s);
        }
      }
    }
  }
}

TEST(FuzzGenerator, MutationRateZeroMeansNoMutation) {
  GeneratorOptions options;
  options.mutate_percent = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(generate_sample(3, i, options).mutation, "");
  }
}

TEST(FuzzGenerator, MutationRateFullMutatesEveryDesignedSample) {
  GeneratorOptions options;
  options.mutate_percent = 100;
  std::size_t designed = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const FuzzSample s = generate_sample(3, i, options);
    if (!s.spec.present) continue;
    ++designed;
    EXPECT_NE(s.mutation, "") << to_sa(s);
  }
  EXPECT_GT(designed, 0u);
}

TEST(FuzzGenerator, ProbeSizesAreSmallAndPositive) {
  for (std::size_t i = 0; i < 30; ++i) {
    const FuzzSample s = sample_at(17, i);
    ASSERT_FALSE(s.probe.empty());
    for (const auto& [sym, value] : s.probe) {
      EXPECT_GE(value, 1) << sym;
      EXPECT_LE(value, 3) << sym;
    }
  }
}

}  // namespace
}  // namespace systolize::fuzz
