// Oracle invariants: verdict determinism, catalog designs pass the full
// backend matrix, known-broken fixtures are rejected consistently, and
// every mutation kind lands on a reject (never a disagreement).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "designs/catalog.hpp"
#include "frontend/parser.hpp"
#include "fuzz/fuzz.hpp"

namespace systolize::fuzz {
namespace {

OracleOptions quick_oracle() {
  OracleOptions options;
  options.threads = 2;
  options.batch = 2;
  return options;
}

Env small_sizes(const LoopNest& nest) {
  Env env;
  for (const Symbol& s : nest.sizes()) env[s.name()] = Rational(2);
  return env;
}

TEST(FuzzOracle, CatalogDesignsPass) {
  for (const Design& design : all_designs()) {
    const OracleResult verdict =
        run_oracle(design, small_sizes(design.nest), quick_oracle());
    EXPECT_EQ(verdict.outcome, Outcome::Pass)
        << design.description << ": " << outcome_name(verdict.outcome)
        << " — " << verdict.detail;
  }
}

TEST(FuzzOracle, BrokenFixturesRejectConsistently) {
  const char* files[] = {"step_on_nullplace.sa", "dependence_clash.sa"};
  for (const char* file : files) {
    std::ifstream in(std::string(SYSTOLIZE_DESIGN_DIR) + "/broken/" + file);
    ASSERT_TRUE(in.good()) << file;
    std::ostringstream text;
    text << in.rdbuf();
    const Design design = frontend::parse_design(text.str());
    const OracleResult verdict =
        run_oracle(design, small_sizes(design.nest), quick_oracle());
    EXPECT_TRUE(verdict.outcome == Outcome::StaticReject ||
                verdict.outcome == Outcome::SourceReject)
        << file << ": " << outcome_name(verdict.outcome) << " — "
        << verdict.detail;
    EXPECT_FALSE(is_disagreement(verdict.outcome)) << file;
  }
}

TEST(FuzzOracle, VerdictsAreDeterministic) {
  GeneratorOptions gen;
  const OracleOptions oracle = quick_oracle();
  for (std::size_t i = 0; i < 10; ++i) {
    const FuzzSample s = generate_sample(5, i, gen);
    const OracleResult a = classify(s, oracle);
    const OracleResult b = classify(s, oracle);
    EXPECT_EQ(a.outcome, b.outcome) << to_sa(s);
    EXPECT_EQ(a.rules, b.rules) << to_sa(s);
  }
}

TEST(FuzzOracle, EveryMutationKindRejectsWithoutDisagreement) {
  GeneratorOptions gen;
  gen.mutate_percent = 100;
  const OracleOptions oracle = quick_oracle();
  std::map<std::string, Outcome> seen;
  for (std::size_t i = 0; i < 60 && seen.size() < 4; ++i) {
    const FuzzSample s = generate_sample(23, i, gen);
    if (s.mutation.empty()) continue;
    if (seen.contains(s.mutation)) continue;
    const OracleResult verdict = classify(s, oracle);
    EXPECT_FALSE(is_disagreement(verdict.outcome))
        << s.mutation << ": " << verdict.detail << "\n" << to_sa(s);
    EXPECT_NE(verdict.outcome, Outcome::Pass)
        << s.mutation << "\n" << to_sa(s);
    seen[s.mutation] = verdict.outcome;
  }
  // All four seeded-breakage kinds must occur within 60 samples.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(FuzzOracle, NoDesignWhenSpecAbsent) {
  GeneratorOptions gen;
  for (std::size_t i = 0; i < 40; ++i) {
    FuzzSample s = generate_sample(29, i, gen);
    if (!s.spec.present) {
      const OracleResult verdict = classify(s, quick_oracle());
      EXPECT_EQ(verdict.outcome, Outcome::NoDesign);
      return;
    }
  }
  GTEST_SKIP() << "no spec-less sample in 40 draws";
}

}  // namespace
}  // namespace systolize::fuzz
