// Design-space enumeration (PR8): the search must re-discover the
// appendix designs from their loop nests alone, rank the seed at the top
// of its own projection class, and degrade to empty results — never
// crashes — on hostile input.
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "designs/catalog.hpp"
#include "frontend/parser.hpp"
#include "systolic/enumerate.hpp"

#ifndef SYSTOLIZE_DESIGN_DIR
#define SYSTOLIZE_DESIGN_DIR "designs"
#endif

namespace systolize {
namespace {

EnumerateOptions options_at(Int n) {
  EnumerateOptions opt;
  opt.sizes = {Env{{"n", Rational(n)}}};
  return opt;
}

TEST(Enumerate, Matmul2RanksFirstInItsOwnProjectionClass) {
  // The PR8 acceptance criterion: over matmul2's nest, restricted to its
  // own projection direction (null.place = (1,1,1)), the search must put
  // the appendix design at the top under the default objective.
  Design d = design_by_name("matmul2");
  EnumerateOptions opt = options_at(4);
  opt.same_projection = true;
  ExploreResult result = enumerate_designs(d.nest, &d.spec, opt);
  ASSERT_FALSE(result.ranked.empty());
  EXPECT_TRUE(result.ranked.front().matches_seed)
      << "winner: step " << result.ranked.front().step.to_string();
  EXPECT_EQ(result.ranked.front().step.coeffs(), d.spec.step().coeffs());
  // Every survivor in the class shares the seed's projection, so they all
  // project onto the same hex grid and tie on makespan.
  for (const ExploreCandidate& c : result.ranked) {
    EXPECT_EQ(c.cost.at.back().metrics.makespan, 12);
  }
}

TEST(Enumerate, FullSpaceContainsSeedAndRanksStationaryFirst) {
  // Unrestricted, the coefficient-1 space contains matmul1-style
  // stationary designs with strictly fewer processes (no buffers);
  // they must win, and matmul2's class must still survive.
  Design d = design_by_name("matmul2");
  ExploreResult result = enumerate_designs(d.nest, &d.spec, options_at(4));
  ASSERT_FALSE(result.ranked.empty());
  const CostMetrics& best = result.ranked.front().cost.at.back().metrics;
  EXPECT_EQ(best.buffer, 0);
  EXPECT_EQ(best.processes, 55);
  EXPECT_GE(result.stats.survivors, 12u);
  EXPECT_EQ(result.stats.enumerated,
            result.stats.pruned_rank + result.stats.pruned_projection +
                result.stats.pruned_theorem3 + result.stats.pruned_stationary +
                result.stats.pruned_spec + result.stats.pruned_compile +
                result.stats.pruned_program + result.stats.pruned_plan +
                result.stats.survivors);
}

TEST(Enumerate, MovingOnlyDropsStationaryCandidates) {
  Design d = design_by_name("matmul2");
  EnumerateOptions opt = options_at(4);
  opt.moving_only = true;
  ExploreResult result = enumerate_designs(d.nest, &d.spec, opt);
  EXPECT_GT(result.stats.pruned_stationary, 0u);
  for (const ExploreCandidate& c : result.ranked) {
    EXPECT_TRUE(c.loading.empty());
  }
}

TEST(Enumerate, Polyprod1SeedSurvivesItsOwnSpace) {
  Design d = design_by_name("polyprod1");
  EnumerateOptions opt = options_at(4);
  opt.coeff_range = 2;   // the seed's step is 2*i + j
  opt.top_k = 1000;      // the seed needn't medal, it must survive
  ExploreResult result = enumerate_designs(d.nest, &d.spec, opt);
  ASSERT_FALSE(result.ranked.empty());
  bool seed_found = false;
  for (const ExploreCandidate& c : result.ranked) {
    seed_found |= c.matches_seed;
  }
  EXPECT_TRUE(seed_found);
}

TEST(Enumerate, RankingIsDeterministic) {
  Design d = design_by_name("matmul2");
  ExploreResult a = enumerate_designs(d.nest, &d.spec, options_at(3));
  ExploreResult b = enumerate_designs(d.nest, &d.spec, options_at(3));
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].step.coeffs(), b.ranked[i].step.coeffs()) << i;
    EXPECT_EQ(a.ranked[i].place.matrix().to_string(),
              b.ranked[i].place.matrix().to_string())
        << i;
  }
}

TEST(Enumerate, BadOptionsThrowValidation) {
  Design d = design_by_name("matmul2");
  EnumerateOptions no_sizes;
  EXPECT_THROW((void)enumerate_designs(d.nest, &d.spec, no_sizes), Error);
  EnumerateOptions bad_range = options_at(4);
  bad_range.coeff_range = 0;
  EXPECT_THROW((void)enumerate_designs(d.nest, &d.spec, bad_range), Error);
  EnumerateOptions anchorless = options_at(4);
  anchorless.same_projection = true;
  EXPECT_THROW((void)enumerate_designs(d.nest, nullptr, anchorless), Error);
}

TEST(Enumerate, BrokenSeedNestStillSearchesWithoutCrashing) {
  // The fixtures under designs/broken/ have defective (step, place)
  // pairs, but their nests are fine — the search over those nests must
  // complete and tally every candidate, crash-free.
  for (const char* name :
       {"step_on_nullplace", "dependence_clash", "wide_flow"}) {
    std::string path =
        std::string(SYSTOLIZE_DESIGN_DIR) + "/broken/" + name + ".sa";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    Design d = frontend::parse_design(buf.str());
    ExploreResult result = enumerate_designs(d.nest, &d.spec, options_at(3));
    EXPECT_GT(result.stats.enumerated, 0u) << name;
    // The broken pair itself must not be among the survivors.
    for (const ExploreCandidate& c : result.ranked) {
      EXPECT_FALSE(c.matches_seed) << name;
    }
  }
}

TEST(Enumerate, CostPreferredIsAStrictWeakOrdering) {
  CostMetrics a;
  a.makespan = 10;
  CostMetrics b = a;
  EXPECT_FALSE(cost_preferred(a, b));
  EXPECT_FALSE(cost_preferred(b, a));
  b.makespan = 12;
  EXPECT_TRUE(cost_preferred(a, b));
  EXPECT_FALSE(cost_preferred(b, a));
  b = a;
  b.processes = a.processes + 1;
  EXPECT_TRUE(cost_preferred(a, b));
}

}  // namespace
}  // namespace systolize
