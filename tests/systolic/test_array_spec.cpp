// Validation of systolic array specifications against Sect. 3.2 and
// Appendix A — including the paper's own counterexample (D.2.3: the place
// function i-j gives stream c flow 2, violating the neighbouring
// restriction).
#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme/compiler.hpp"
#include "support/error.hpp"
#include "systolic/flow.hpp"

namespace systolize {
namespace {

void expect_error(const LoopNest& nest, const ArraySpec& spec, ErrorKind kind,
                  const std::string& fragment) {
  try {
    validate_array(nest, spec);
    FAIL() << "expected error containing '" << fragment << "'";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

TEST(ArraySpecValidation, CatalogDesignsAllValidate) {
  for (const Design& d : all_designs()) {
    EXPECT_NO_THROW(validate_array(d.nest, d.spec)) << d.description;
  }
}

TEST(ArraySpecValidation, PaperCounterexamplePlaceIMinusJ) {
  // D.2.3 note: "for another place function, place.(i,j) = i-j,
  // flow.c = 2, which violates the restriction on neighbouring
  // communication."
  Design d = polyprod_design1();
  ArraySpec bad(StepFunction(IntVec{2, 1}), PlaceFunction(IntMatrix{{1, -1}}),
                {});
  expect_error(d.nest, bad, ErrorKind::Validation,
               "neighbouring-connection requirement");
  // The flow itself is 2, as the paper states.
  EXPECT_EQ(compute_flow(d.nest.stream("c"), bad.step(), bad.place()),
            (RatVec{Rational(2)}));
}

TEST(ArraySpecValidation, StepVanishingOnNullPlaceIsInconsistent) {
  // step.(i,j) = i+j with place.(i,j) = i+j: null.place = (1,-1) and
  // step.(1,-1) = 0 — Equation (1) cannot hold (Theorem 3).
  Design d = polyprod_design1();
  ArraySpec bad(StepFunction(IntVec{1, 1}), PlaceFunction(IntMatrix{{1, 1}}),
                {{"c", IntVec{1}}});
  expect_error(d.nest, bad, ErrorKind::Inconsistent, "null.place");
}

TEST(ArraySpecValidation, MissingLoadingVectorForStationaryStream) {
  // D.1's stream a is stationary; omit its loading & recovery vector.
  Design d = polyprod_design1();
  ArraySpec bad(StepFunction(IntVec{2, 1}), PlaceFunction(IntMatrix{{1, 0}}),
                {});
  expect_error(d.nest, bad, ErrorKind::Validation,
               "loading & recovery vector");
}

TEST(ArraySpecValidation, NonNeighbourLoadingVectorRejected) {
  Design d = polyprod_design1();
  ArraySpec bad(StepFunction(IntVec{2, 1}), PlaceFunction(IntMatrix{{1, 0}}),
                {{"a", IntVec{2}}});
  expect_error(d.nest, bad, ErrorKind::Validation, "connect neighbours");
}

TEST(ArraySpecValidation, ZeroLoadingVectorRejected) {
  Design d = polyprod_design1();
  ArraySpec bad(StepFunction(IntVec{2, 1}), PlaceFunction(IntMatrix{{1, 0}}),
                {{"a", IntVec{0}}});
  expect_error(d.nest, bad, ErrorKind::Validation, "non-zero");
}

TEST(ArraySpecValidation, RankDeficientPlaceRejected) {
  Design d = matmul_design1();
  ArraySpec bad(StepFunction(IntVec{1, 1, 1}),
                PlaceFunction(IntMatrix{{1, 0, 0}, {2, 0, 0}}), {});
  expect_error(d.nest, bad, ErrorKind::Validation, "rank");
}

TEST(ArraySpecValidation, WrongArityRejected) {
  Design d = matmul_design1();
  ArraySpec bad(StepFunction(IntVec{1, 1}),
                PlaceFunction(IntMatrix{{1, 0, 0}, {0, 1, 0}}), {});
  expect_error(d.nest, bad, ErrorKind::Validation, "arity");
}

TEST(FlowDecomposition, IntegerFractionalAndZero) {
  FlowDecomposition whole = decompose_flow(RatVec{Rational(1), Rational(0)});
  EXPECT_EQ(whole.direction, (IntVec{1, 0}));
  EXPECT_EQ(whole.denominator, 1);

  FlowDecomposition half = decompose_flow(RatVec{Rational(1, 2)});
  EXPECT_EQ(half.direction, (IntVec{1}));
  EXPECT_EQ(half.denominator, 2);

  FlowDecomposition third =
      decompose_flow(RatVec{Rational(-1, 3), Rational(1, 3)});
  EXPECT_EQ(third.direction, (IntVec{-1, 1}));
  EXPECT_EQ(third.denominator, 3);

  FlowDecomposition zero = decompose_flow(RatVec{Rational(0), Rational(0)});
  EXPECT_TRUE(zero.direction.is_zero());
  EXPECT_EQ(zero.denominator, 1);
}

TEST(Increment, OutsideUnitRangeIsUnsupported) {
  // place.(i,j) = 2i+j has null generator (1,-2): every stream flow stays
  // neighbour-compatible under step.(i,j) = 4i+j (flows 1, 1/2, 1/3), but
  // the increment has a component of magnitude 2 — the Sect. 6.2 Note
  // case the scheme does not cover.
  Design d = polyprod_design1();
  ArraySpec spec(StepFunction(IntVec{4, 1}), PlaceFunction(IntMatrix{{2, 1}}),
                 {});
  try {
    (void)compile(d.nest, spec);
    FAIL() << "expected Unsupported";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Unsupported) << e.what();
  }
}

}  // namespace
}  // namespace systolize
