#include "systolic/dependence.hpp"

#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

TEST(Dependence, AllCatalogDesignsRespectUpdateOrder) {
  for (const Design& d : all_designs()) {
    EXPECT_TRUE(respects_dependences(d.nest, d.spec)) << d.description;
    EXPECT_NO_THROW(validate_dependences(d.nest, d.spec)) << d.description;
  }
}

TEST(Dependence, ReversedStepViolates) {
  // step.(i,j) = -2i - j walks the accumulation chain of c[i+j] backwards.
  Design d = polyprod_design1();
  ArraySpec reversed(StepFunction(IntVec{-2, -1}),
                     PlaceFunction(IntMatrix{{1, 0}}), {{"a", IntVec{1}}});
  EXPECT_FALSE(respects_dependences(d.nest, reversed));
  try {
    validate_dependences(d.nest, reversed);
    FAIL() << "expected Inconsistent";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Inconsistent);
    EXPECT_NE(std::string(e.what()).find("'c'"), std::string::npos)
        << e.what();
  }
}

TEST(Dependence, ReversedLoopStepFlipsTheOrientation) {
  // With the j loop executed right-to-left, the sequential update order
  // of c[i+j] along (1,-1) reverses; step.(i,j) = 2i + j still respects
  // it (the first differing index is i, executed forward).
  Design base = polyprod_design1();
  std::vector<LoopSpec> loops = base.nest.loops();
  loops[1].step = -1;
  LoopNest reversed(base.nest.name(), loops, base.nest.streams(),
                    base.nest.sizes(), base.nest.size_assumptions(), nullptr,
                    base.nest.body_text());
  reversed.set_indexed_body(base.nest.body(), base.nest.body_text());
  EXPECT_TRUE(respects_dependences(reversed, base.spec));

  // But step.(i,j) = -2i + j now violates: the element chain's first
  // differing index i runs forward while step decreases along it.
  ArraySpec bad(StepFunction(IntVec{-2, 1}), PlaceFunction(IntMatrix{{1, 0}}),
                {{"a", IntVec{1}}});
  EXPECT_FALSE(respects_dependences(reversed, bad));
}

TEST(Dependence, ViolationIsHarmlessForCommutativeBodies) {
  // The paper's bodies accumulate commutatively, so even a reversed step
  // executes to the same result — which is why the check is advisory.
  Design d = polyprod_design1();
  ArraySpec reversed(StepFunction(IntVec{-2, -1}),
                     PlaceFunction(IntMatrix{{1, 0}}), {{"a", IntVec{1}}});
  ASSERT_FALSE(respects_dependences(d.nest, reversed));
  CompiledProgram prog = compile(d.nest, reversed);
  Env sizes{{"n", Rational(3)}};
  IndexedStore expected = make_initial_store(
      d.nest, sizes,
      [](const std::string& v, const IntVec& p) { return v[0] + 2 * p[0]; });
  IndexedStore actual = expected;
  run_sequential(d.nest, sizes, expected);
  (void)execute(prog, d.nest, sizes, actual);
  EXPECT_EQ(actual.elements("c"), expected.elements("c"));
}

}  // namespace
}  // namespace systolize
