// Appendix B: the paper's eleven theorems, checked as executable
// properties over every catalog design (and concrete instantiations where
// the statement quantifies over the index space).
#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme/increment.hpp"
#include "systolic/flow.hpp"

namespace systolize {
namespace {

class Theorems : public ::testing::TestWithParam<std::string> {
 protected:
  Design design = design_by_name(GetParam());
  const StepFunction& step = design.spec.step();
  const PlaceFunction& place = design.spec.place();
  Env sizes{{"n", Rational(4)}, {"m", Rational(3)}};
};

TEST_P(Theorems, T1_NullSpaceOfPlaceHasDimensionOne) {
  EXPECT_EQ(place.matrix().null_space_basis().size(), 1u);
  EXPECT_EQ(place.matrix().rank(), design.nest.depth() - 1);
}

TEST_P(Theorems, T3_StepDoesNotVanishOnNullPlace) {
  EXPECT_NE(step.apply(place.null_generator()), 0);
}

TEST_P(Theorems, T5_IncrementLiesInNullPlace) {
  IntVec inc = derive_increment(step, place);
  EXPECT_TRUE(place.apply(inc).is_zero());
}

TEST_P(Theorems, T6_StepOfIncrementIsPositive) {
  IntVec inc = derive_increment(step, place);
  EXPECT_GT(step.apply(inc), 0);
}

TEST_P(Theorems, T7_LatticePointsOnAVector) {
  // The number of integer points on a vector x is content(x) + 1, each of
  // the form (m/k) * x.
  for (const IntVec& x : {IntVec{2, 4}, IntVec{3, -6}, IntVec{0, 5}}) {
    Int k = x.content();
    // Every (m/k)*x for 0 <= m <= k is integral and on the chord.
    for (Int m = 0; m <= k; ++m) {
      IntVec p = x;
      for (std::size_t i = 0; i < p.dim(); ++i) {
        ASSERT_EQ((m * x[i]) % k, 0);
        p[i] = m * x[i] / k;
      }
      // p = (m/k) * x lies between 0 and x componentwise.
      for (std::size_t i = 0; i < p.dim(); ++i) {
        EXPECT_LE(std::min<Int>(0, x[i]), p[i]);
        EXPECT_LE(p[i], std::max<Int>(0, x[i]));
      }
    }
  }
}

TEST_P(Theorems, T8_SignRelationBetweenIncrementAndStep) {
  // For place.x == place.x':
  //   sgn(x.i - x'.i) == sgn(step.x - step.x') * sgn(increment.i).
  IntVec inc = derive_increment(step, place);
  auto points = design.nest.enumerate_index_space(sizes);
  for (const IntVec& x : points) {
    for (Int mult : {-3, -1, 1, 2}) {
      IntVec x2 = x + inc * mult;
      ASSERT_EQ(place.apply(x), place.apply(x2));
      for (std::size_t i = 0; i < x.dim(); ++i) {
        EXPECT_EQ(sgn(x[i] - x2[i]),
                  sgn(step.apply(x) - step.apply(x2)) * sgn(inc[i]));
      }
    }
    break;  // one base point suffices per design; multiples vary
  }
}

TEST_P(Theorems, T9_PlaceInjectiveOnFixedFaceCoordinate) {
  // increment.i != 0 and x.i == x'.i and x != x'  =>  place.x != place.x'.
  IntVec inc = derive_increment(step, place);
  auto points = design.nest.enumerate_index_space(sizes);
  for (std::size_t i = 0; i < inc.dim(); ++i) {
    if (inc[i] == 0) continue;
    std::map<std::pair<Int, std::vector<Int>>, IntVec> seen;
    for (const IntVec& x : points) {
      auto key = std::make_pair(x[i], place.apply(x).comps());
      auto [it, inserted] = seen.emplace(key, x);
      EXPECT_TRUE(inserted || it->second == x)
          << "distinct statements " << it->second.to_string() << " and "
          << x.to_string() << " share x." << i << " and place";
    }
  }
}

TEST_P(Theorems, T10_FlowIsSingleValued) {
  // Any two distinct statements accessing the same stream element yield
  // the same (place delta)/(step delta) ratio.
  auto points = design.nest.enumerate_index_space(sizes);
  for (const Stream& s : design.nest.streams()) {
    RatVec flow = compute_flow(s, step, place);
    std::map<IntVec, IntVec, IntVecLess> rep;  // element -> first accessor
    for (const IntVec& x : points) {
      IntVec w = s.element_of(x);
      auto [it, inserted] = rep.emplace(w, x);
      if (inserted) continue;
      const IntVec& x0 = it->second;
      Int dt = step.apply(x) - step.apply(x0);
      ASSERT_NE(dt, 0) << "two accesses at the same step";
      IntVec dp = place.apply(x) - place.apply(x0);
      RatVec ratio(dp.dim());
      for (std::size_t i = 0; i < dp.dim(); ++i) {
        ratio[i] = Rational(dp[i], dt);
      }
      EXPECT_EQ(ratio, flow) << s.name();
    }
  }
}

TEST_P(Theorems, T11_ElementIncrementIsIndexMapOfIncrement) {
  // Consecutive statements of a chord use elements increment_s apart.
  IntVec inc = derive_increment(step, place);
  for (const Stream& s : design.nest.streams()) {
    IntVec m_inc = s.index_map().apply(inc);
    auto points = design.nest.enumerate_index_space(sizes);
    for (const IntVec& x : points) {
      IntVec next = x + inc;
      EXPECT_EQ(s.element_of(next) - s.element_of(x), m_inc);
      break;  // linear: one check per stream suffices
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, Theorems,
                         ::testing::Values("polyprod1", "polyprod2",
                                           "polyprod3", "matmul1", "matmul2",
                                           "matmul3", "matmul4",
                                           "convolution", "correlation",
                                           "fir_bank", "closure"));

TEST(Catalog, NamesMatchAllDesignsInOrder) {
  // catalog_names() is the user-facing key list (CLI `list`, serve ops);
  // it must stay in lock-step with all_designs() as the gallery grows.
  const std::vector<std::string> names = catalog_names();
  const std::vector<Design> designs = all_designs();
  ASSERT_EQ(names.size(), designs.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const Design by_name = design_by_name(names[i]);
    EXPECT_EQ(by_name.description, designs[i].description) << names[i];
    EXPECT_EQ(by_name.nest.name(), designs[i].nest.name()) << names[i];
  }
}

}  // namespace
}  // namespace systolize
