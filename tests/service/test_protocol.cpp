// Wire protocol: request/response serialization, validation, verdicts.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace systolize::service {
namespace {

TEST(Protocol, RequestRoundTripsThroughJson) {
  Request req;
  req.id = 42;
  req.op = "run";
  req.tenant = "team-a";
  req.design = "matmul2";
  req.n = 6;
  req.m = 4;
  req.capacity = 2;
  req.verify = true;
  req.inject = "seed=7;stall=0.1:4";
  req.round_budget = 500;
  req.wall_timeout_ms = 2000;
  req.fail_attempts = 1;
  req.backend = "bytecode";
  req.batch = 16;

  Request back = parse_request(req.to_json());
  EXPECT_EQ(back.id, 42);
  EXPECT_EQ(back.op, "run");
  EXPECT_EQ(back.tenant, "team-a");
  EXPECT_EQ(back.design, "matmul2");
  EXPECT_EQ(back.n, 6);
  EXPECT_EQ(back.m, 4);
  EXPECT_EQ(back.capacity, 2);
  EXPECT_TRUE(back.verify);
  EXPECT_EQ(back.inject, "seed=7;stall=0.1:4");
  EXPECT_EQ(back.round_budget, 500);
  EXPECT_EQ(back.wall_timeout_ms, 2000);
  EXPECT_EQ(back.fail_attempts, 1);
  EXPECT_EQ(back.backend, "bytecode");
  EXPECT_EQ(back.batch, 16);
}

TEST(Protocol, BackendAndBatchDefaultsStayOffTheWire) {
  Request req;
  req.op = "run";
  req.design = "matmul2";
  const std::string json = req.to_json();
  EXPECT_EQ(json.find("backend"), std::string::npos);
  EXPECT_EQ(json.find("batch"), std::string::npos);
  Request back = parse_request(json);
  EXPECT_EQ(back.backend, "");
  EXPECT_EQ(back.batch, 1);
}

TEST(Protocol, RequestValidationRejectsGarbage) {
  struct Case {
    const char* line;
    ErrorKind kind;
  };
  for (const Case& c : {
           Case{"not json at all", ErrorKind::Parse},
           Case{"{\"op\":\"frobnicate\"}", ErrorKind::Validation},
           Case{"{\"id\":1}", ErrorKind::Validation},  // missing op
           Case{"{\"op\":\"run\",\"design\":\"x\",\"n\":0}",
                ErrorKind::Validation},  // size < 1
           Case{"{\"op\":\"run\"}", ErrorKind::Validation},  // no design/source
           Case{"{\"op\":\"analyze\"}", ErrorKind::Validation},  // ditto
           Case{"{\"op\":\"run\",\"design\":\"x\",\"round_budget\":-5}",
                ErrorKind::Validation},
           Case{"{\"op\":\"run\",\"design\":5}", ErrorKind::Validation},
           Case{"{\"op\":\"run\",\"design\":\"x\",\"batch\":0}",
                ErrorKind::Validation},
           Case{"{\"op\":\"run\",\"design\":\"x\",\"batch\":-3}",
                ErrorKind::Validation},
           Case{"{\"op\":\"run\",\"design\":\"x\",\"backend\":\"jit\"}",
                ErrorKind::Validation},
       }) {
    try {
      (void)parse_request(c.line);
      FAIL() << "expected rejection of: " << c.line;
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), c.kind) << c.line;
    }
  }
}

TEST(Protocol, AnalyzeOpParsesWithDesignOrSource) {
  Request req = parse_request("{\"op\":\"analyze\",\"design\":\"matmul2\"}");
  EXPECT_EQ(req.op, "analyze");
  EXPECT_EQ(req.design, "matmul2");
  req = parse_request("{\"op\":\"analyze\",\"source\":\"design x...\"}");
  EXPECT_EQ(req.source, "design x...");
}

TEST(Protocol, ResponseRoundTripsIncludingRawPayloads) {
  Response r;
  r.id = 7;
  r.op = "run";
  r.status = "error";
  r.verdict = "Timeout";
  r.kind = "Timeout";
  r.retryable = true;
  r.retries = 2;
  r.message = "wall-clock deadline of 100ms exceeded";
  r.diagnostic_json = R"({"reason":"deadline","blocked":[1,2]})";

  Response back = parse_response(r.to_json());
  EXPECT_EQ(back.id, 7);
  EXPECT_EQ(back.status, "error");
  EXPECT_EQ(back.kind, "Timeout");
  EXPECT_TRUE(back.retryable);
  EXPECT_EQ(back.retries, 2);
  EXPECT_EQ(back.message, r.message);
  // The diagnostic payload survives as JSON (re-serialized, same content).
  EXPECT_NE(back.diagnostic_json.find("\"reason\":\"deadline\""),
            std::string::npos);
  EXPECT_NE(back.diagnostic_json.find("[1,2]"), std::string::npos);
}

TEST(Protocol, RetryAfterHintIsOmittedWhenNegative) {
  Response r;
  r.id = 1;
  r.op = "run";
  r.status = "ok";
  r.verdict = "success";
  EXPECT_EQ(r.to_json().find("retry_after_ms"), std::string::npos);
  r.retry_after_ms = 50;
  EXPECT_NE(r.to_json().find("\"retry_after_ms\":50"), std::string::npos);
}

TEST(Protocol, DefiniteVerdictCoversTheSoakContract) {
  Response ok;
  ok.status = "ok";
  ok.verdict = "success";
  EXPECT_TRUE(definite_verdict(ok));
  ok.verdict = "retried-success";
  EXPECT_TRUE(definite_verdict(ok));
  ok.verdict = "";  // ok without a verdict is NOT definite
  EXPECT_FALSE(definite_verdict(ok));

  Response err;
  err.status = "error";
  err.kind = "Timeout";
  EXPECT_TRUE(definite_verdict(err));
  err.kind = "";
  EXPECT_FALSE(definite_verdict(err));

  Response shed;
  shed.status = "rejected";
  EXPECT_TRUE(definite_verdict(shed));
  shed.status = "shutting-down";
  EXPECT_TRUE(definite_verdict(shed));
  shed.status = "weird";
  EXPECT_FALSE(definite_verdict(shed));
}

}  // namespace
}  // namespace systolize::service
