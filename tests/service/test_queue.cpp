// Admission control: shed-at-the-door semantics, tenant fairness, drain.
#include "service/request_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace systolize::service {
namespace {

Job job_for(const std::string& tenant) {
  Job j;
  j.req.op = "ping";
  j.req.tenant = tenant;
  j.respond = [](const Response&) {};
  return j;
}

TEST(RequestQueue, AdmitsUpToDepthThenSheds) {
  RequestQueue q(2, 0);
  EXPECT_TRUE(q.try_push(job_for("a")).admitted);
  EXPECT_TRUE(q.try_push(job_for("a")).admitted);
  Admission shed = q.try_push(job_for("a"));
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, "queue full");
  EXPECT_GT(shed.retry_after_ms, 0);
  EXPECT_EQ(q.admitted(), 2u);
  EXPECT_EQ(q.shed_queue_full(), 1u);
}

TEST(RequestQueue, TenantCapShedsTheHotTenantOnly) {
  RequestQueue q(16, 2);
  EXPECT_TRUE(q.try_push(job_for("hot")).admitted);
  EXPECT_TRUE(q.try_push(job_for("hot")).admitted);
  Admission shed = q.try_push(job_for("hot"));
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, "tenant cap");
  // A different tenant still fits while the hot one is capped.
  EXPECT_TRUE(q.try_push(job_for("cold")).admitted);
  EXPECT_EQ(q.shed_tenant_cap(), 1u);
}

TEST(RequestQueue, TenantStaysInFlightUntilFinish) {
  // Admission counts queued + executing: popping a job does NOT free the
  // tenant's slot — only finish() does. This is what stops a tenant from
  // monopolizing the workers with a short queue.
  RequestQueue q(16, 1);
  ASSERT_TRUE(q.try_push(job_for("t")).admitted);
  auto job = q.pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_FALSE(q.try_push(job_for("t")).admitted);  // still executing
  q.finish("t");
  EXPECT_TRUE(q.try_push(job_for("t")).admitted);
}

TEST(RequestQueue, CloseRejectsNewAndDrainsOld) {
  RequestQueue q(16, 0);
  ASSERT_TRUE(q.try_push(job_for("a")).admitted);
  q.close();
  Admission shed = q.try_push(job_for("b"));
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, "shutting down");
  EXPECT_EQ(q.shed_closed(), 1u);
  // The already-admitted job still drains.
  auto job = q.pop();
  ASSERT_TRUE(job.has_value());
  q.finish("a");
  // After the drain, pop unblocks with "no more work".
  EXPECT_FALSE(q.pop().has_value());
}

TEST(RequestQueue, PopBlocksUntilWorkOrClose) {
  RequestQueue q(16, 0);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    auto job = q.pop();
    got.store(job.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.try_push(job_for("x")).admitted);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(RequestQueue, WaitIdleIsADrainBarrier) {
  RequestQueue q(64, 0);
  constexpr int kJobs = 20;
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(q.try_push(job_for("t")).admitted);
  }
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto job = q.pop();
        if (!job.has_value()) return;
        ++done;
        q.finish(job->req.tenant);
      }
    });
  }
  q.close();
  q.wait_idle();
  EXPECT_EQ(done.load(), kJobs);  // the barrier held until all finished
  for (auto& w : workers) w.join();
  EXPECT_EQ(q.in_flight(), 0u);
  EXPECT_EQ(q.high_water(), static_cast<std::size_t>(kJobs));
}

TEST(RequestQueue, ConcurrentPushPopKeepsCountsConsistent) {
  RequestQueue q(32, 8);
  std::atomic<int> completed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto job = q.pop();
        if (!job.has_value()) return;
        ++completed;
        q.finish(job->req.tenant);
      }
    });
  }
  std::vector<std::thread> producers;
  std::atomic<int> pushed{0};
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 50; ++i) {
        if (q.try_push(job_for("tenant" + std::to_string(p))).admitted) {
          ++pushed;
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  q.close();
  q.wait_idle();
  for (auto& w : workers) w.join();
  (void)stop;
  EXPECT_EQ(completed.load(), pushed.load());
  EXPECT_EQ(q.admitted(), static_cast<std::size_t>(pushed.load()));
}

Job run_job(const std::string& tenant, const std::string& design, Int n,
            Int batch = 1, const std::string& backend = "") {
  Job j;
  j.req.op = "run";
  j.req.tenant = tenant;
  j.req.design = design;
  j.req.n = n;
  j.req.batch = batch;
  j.req.backend = backend;
  j.respond = [](const Response&) {};
  return j;
}

TEST(Coalescing, KeyMatchesExecutionOptionsNotIdentity) {
  Request a = run_job("t1", "matmul2", 6).req;
  Request b = run_job("t2", "matmul2", 6, 8, "").req;
  b.id = 99;
  // Different tenant, id and batch still coalesce — lanes add up and
  // each job finishes against its own tenant bucket.
  EXPECT_TRUE(requests_coalesce(a, b));

  Request c = a;
  c.n = 8;
  EXPECT_FALSE(requests_coalesce(a, c));  // different expanded plan
  c = a;
  c.backend = "interp";
  EXPECT_FALSE(requests_coalesce(a, c));  // different engine
  c = a;
  c.verify = true;
  EXPECT_FALSE(requests_coalesce(a, c));
  c = a;
  c.inject = "seed=1;stall=0.5:3";
  EXPECT_FALSE(requests_coalesce(a, c));  // faulted: per-instance verdicts
  c = a;
  c.fail_attempts = 1;
  EXPECT_FALSE(requests_coalesce(a, c));  // must hit the retry path
  Request ping = job_for("t").req;
  EXPECT_FALSE(coalescible(ping));  // only run ops batch
}

TEST(Coalescing, PopGroupSweepsMatchesAndPreservesFifo) {
  RequestQueue q(16, 0);
  ASSERT_TRUE(q.try_push(run_job("a", "matmul2", 6)).admitted);
  ASSERT_TRUE(q.try_push(run_job("b", "polyprod1", 4)).admitted);
  ASSERT_TRUE(q.try_push(run_job("c", "matmul2", 6, 4)).admitted);
  ASSERT_TRUE(q.try_push(run_job("d", "matmul2", 6)).admitted);

  std::vector<Job> group = q.pop_group(64);
  ASSERT_EQ(group.size(), 3u);  // both matmul2/n=6 jobs rode along
  EXPECT_EQ(group[0].req.tenant, "a");
  EXPECT_EQ(group[1].req.tenant, "c");
  EXPECT_EQ(group[2].req.tenant, "d");

  // The non-matching job kept its place at the front of the queue.
  std::vector<Job> rest = q.pop_group(64);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].req.design, "polyprod1");
}

TEST(Coalescing, GroupCapBoundsTheSweep) {
  RequestQueue q(16, 0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_push(run_job("t" + std::to_string(i), "matmul2", 4))
                    .admitted);
  }
  EXPECT_EQ(q.pop_group(2).size(), 2u);
  EXPECT_EQ(q.pop_group(2).size(), 2u);
  EXPECT_EQ(q.pop_group(2).size(), 1u);
}

TEST(Coalescing, GroupCapOfOneNeverSweeps) {
  // max_group=1 degenerates to plain pop(): each job leaves alone even
  // when the whole backlog would coalesce with the front.
  RequestQueue q(16, 0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.try_push(run_job("t" + std::to_string(i), "matmul2", 4))
                    .admitted);
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<Job> group = q.pop_group(1);
    ASSERT_EQ(group.size(), 1u);
    EXPECT_EQ(group[0].req.tenant, "t" + std::to_string(i));
  }
}

TEST(Coalescing, GroupCapEqualToMatchCountTakesAllInOneSweep) {
  RequestQueue q(16, 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_push(run_job("t" + std::to_string(i), "matmul2", 4))
                    .admitted);
  }
  EXPECT_EQ(q.pop_group(4).size(), 4u);  // exactly at the cap — no split
  for (int i = 0; i < 4; ++i) q.finish("t" + std::to_string(i));
  q.close();
  EXPECT_TRUE(q.pop_group(4).empty());  // nothing left behind
}

TEST(Coalescing, MixedBackendSweepSkipsNonAdjacentMismatches) {
  // Interleave bytecode and interp requests for the same design/n. The
  // sweep must gather the front's backend across gaps while the skipped
  // interp jobs keep their relative order.
  RequestQueue q(16, 0);
  ASSERT_TRUE(q.try_push(run_job("a", "matmul2", 6, 1, "bytecode")).admitted);
  ASSERT_TRUE(q.try_push(run_job("b", "matmul2", 6, 1, "interp")).admitted);
  ASSERT_TRUE(q.try_push(run_job("c", "matmul2", 6, 1, "bytecode")).admitted);
  ASSERT_TRUE(q.try_push(run_job("d", "matmul2", 6, 1, "interp")).admitted);
  ASSERT_TRUE(q.try_push(run_job("e", "matmul2", 6, 1, "bytecode")).admitted);

  std::vector<Job> group = q.pop_group(64);
  ASSERT_EQ(group.size(), 3u);
  EXPECT_EQ(group[0].req.tenant, "a");
  EXPECT_EQ(group[1].req.tenant, "c");
  EXPECT_EQ(group[2].req.tenant, "e");

  std::vector<Job> rest = q.pop_group(64);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].req.tenant, "b");
  EXPECT_EQ(rest[1].req.tenant, "d");
}

TEST(Coalescing, DefaultBackendDoesNotGroupWithExplicitInterp) {
  // "" means "server picks"; it may resolve to interp, but the key must
  // treat them as distinct engines — never merged into one dispatch.
  RequestQueue q(16, 0);
  ASSERT_TRUE(q.try_push(run_job("a", "matmul2", 6, 1, "")).admitted);
  ASSERT_TRUE(q.try_push(run_job("b", "matmul2", 6, 1, "interp")).admitted);
  EXPECT_EQ(q.pop_group(64).size(), 1u);
  EXPECT_EQ(q.pop_group(64).size(), 1u);
}

TEST(Coalescing, NonCoalescibleFrontPopsAlone) {
  RequestQueue q(16, 0);
  Job faulted = run_job("a", "matmul2", 6);
  faulted.req.inject = "seed=1;stall=0.5:3";
  ASSERT_TRUE(q.try_push(std::move(faulted)).admitted);
  ASSERT_TRUE(q.try_push(run_job("b", "matmul2", 6)).admitted);
  EXPECT_EQ(q.pop_group(64).size(), 1u);  // faulted never groups
  EXPECT_EQ(q.pop_group(64).size(), 1u);
}

TEST(Coalescing, PopGroupEmptyMeansClosedAndDrained) {
  RequestQueue q(16, 0);
  ASSERT_TRUE(q.try_push(run_job("a", "matmul2", 6)).admitted);
  q.close();
  EXPECT_EQ(q.pop_group(64).size(), 1u);  // admitted work still drains
  q.finish("a");
  EXPECT_TRUE(q.pop_group(64).empty());  // worker-exit signal
}

}  // namespace
}  // namespace systolize::service
