// Admission control: shed-at-the-door semantics, tenant fairness, drain.
#include "service/request_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace systolize::service {
namespace {

Job job_for(const std::string& tenant) {
  Job j;
  j.req.op = "ping";
  j.req.tenant = tenant;
  j.respond = [](const Response&) {};
  return j;
}

TEST(RequestQueue, AdmitsUpToDepthThenSheds) {
  RequestQueue q(2, 0);
  EXPECT_TRUE(q.try_push(job_for("a")).admitted);
  EXPECT_TRUE(q.try_push(job_for("a")).admitted);
  Admission shed = q.try_push(job_for("a"));
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, "queue full");
  EXPECT_GT(shed.retry_after_ms, 0);
  EXPECT_EQ(q.admitted(), 2u);
  EXPECT_EQ(q.shed_queue_full(), 1u);
}

TEST(RequestQueue, TenantCapShedsTheHotTenantOnly) {
  RequestQueue q(16, 2);
  EXPECT_TRUE(q.try_push(job_for("hot")).admitted);
  EXPECT_TRUE(q.try_push(job_for("hot")).admitted);
  Admission shed = q.try_push(job_for("hot"));
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, "tenant cap");
  // A different tenant still fits while the hot one is capped.
  EXPECT_TRUE(q.try_push(job_for("cold")).admitted);
  EXPECT_EQ(q.shed_tenant_cap(), 1u);
}

TEST(RequestQueue, TenantStaysInFlightUntilFinish) {
  // Admission counts queued + executing: popping a job does NOT free the
  // tenant's slot — only finish() does. This is what stops a tenant from
  // monopolizing the workers with a short queue.
  RequestQueue q(16, 1);
  ASSERT_TRUE(q.try_push(job_for("t")).admitted);
  auto job = q.pop();
  ASSERT_TRUE(job.has_value());
  EXPECT_FALSE(q.try_push(job_for("t")).admitted);  // still executing
  q.finish("t");
  EXPECT_TRUE(q.try_push(job_for("t")).admitted);
}

TEST(RequestQueue, CloseRejectsNewAndDrainsOld) {
  RequestQueue q(16, 0);
  ASSERT_TRUE(q.try_push(job_for("a")).admitted);
  q.close();
  Admission shed = q.try_push(job_for("b"));
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.reason, "shutting down");
  EXPECT_EQ(q.shed_closed(), 1u);
  // The already-admitted job still drains.
  auto job = q.pop();
  ASSERT_TRUE(job.has_value());
  q.finish("a");
  // After the drain, pop unblocks with "no more work".
  EXPECT_FALSE(q.pop().has_value());
}

TEST(RequestQueue, PopBlocksUntilWorkOrClose) {
  RequestQueue q(16, 0);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    auto job = q.pop();
    got.store(job.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(q.try_push(job_for("x")).admitted);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(RequestQueue, WaitIdleIsADrainBarrier) {
  RequestQueue q(64, 0);
  constexpr int kJobs = 20;
  for (int i = 0; i < kJobs; ++i) {
    ASSERT_TRUE(q.try_push(job_for("t")).admitted);
  }
  std::atomic<int> done{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto job = q.pop();
        if (!job.has_value()) return;
        ++done;
        q.finish(job->req.tenant);
      }
    });
  }
  q.close();
  q.wait_idle();
  EXPECT_EQ(done.load(), kJobs);  // the barrier held until all finished
  for (auto& w : workers) w.join();
  EXPECT_EQ(q.in_flight(), 0u);
  EXPECT_EQ(q.high_water(), static_cast<std::size_t>(kJobs));
}

TEST(RequestQueue, ConcurrentPushPopKeepsCountsConsistent) {
  RequestQueue q(32, 8);
  std::atomic<int> completed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        auto job = q.pop();
        if (!job.has_value()) return;
        ++completed;
        q.finish(job->req.tenant);
      }
    });
  }
  std::vector<std::thread> producers;
  std::atomic<int> pushed{0};
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 50; ++i) {
        if (q.try_push(job_for("tenant" + std::to_string(p))).admitted) {
          ++pushed;
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  q.close();
  q.wait_idle();
  for (auto& w : workers) w.join();
  (void)stop;
  EXPECT_EQ(completed.load(), pushed.load());
  EXPECT_EQ(q.admitted(), static_cast<std::size_t>(pushed.load()));
}

}  // namespace
}  // namespace systolize::service
