// Graceful degradation: pressure escalates, success recovers, the plan
// cache budget follows the level.
#include "service/degradation.hpp"

#include <gtest/gtest.h>

namespace systolize::service {
namespace {

DegradationConfig small_config() {
  DegradationConfig cfg;
  cfg.cache_budget = 1 << 20;
  cfg.reduced_cache_budget = 1 << 10;
  cfg.recovery_successes = 3;
  return cfg;
}

TEST(Degradation, PressureEscalatesAndShrinksTheCache) {
  PlanCache cache(1 << 20);
  Degradation d(small_config(), cache);
  EXPECT_EQ(d.level(), DegradeLevel::Normal);
  EXPECT_EQ(d.effective_threads(4), 4u);

  d.on_pressure();
  EXPECT_EQ(d.level(), DegradeLevel::ReducedCache);
  EXPECT_EQ(cache.byte_budget(), std::size_t{1} << 10);
  EXPECT_EQ(d.effective_threads(4), 4u);  // still sharded at level 1

  d.on_pressure();
  EXPECT_EQ(d.level(), DegradeLevel::SingleThread);
  EXPECT_EQ(d.effective_threads(4), 0u);  // forced sequential

  d.on_pressure();  // already at the floor: stays there
  EXPECT_EQ(d.level(), DegradeLevel::SingleThread);
  EXPECT_EQ(d.escalations(), 2u);
}

TEST(Degradation, ConsecutiveSuccessesStepBackOneLevelAtATime) {
  PlanCache cache(1 << 20);
  Degradation d(small_config(), cache);
  d.on_pressure();
  d.on_pressure();
  ASSERT_EQ(d.level(), DegradeLevel::SingleThread);

  d.on_success();
  d.on_success();
  EXPECT_EQ(d.level(), DegradeLevel::SingleThread);  // 2 < 3, not yet
  d.on_success();
  EXPECT_EQ(d.level(), DegradeLevel::ReducedCache);
  EXPECT_EQ(cache.byte_budget(), std::size_t{1} << 10);  // still reduced

  for (int i = 0; i < 3; ++i) d.on_success();
  EXPECT_EQ(d.level(), DegradeLevel::Normal);
  EXPECT_EQ(cache.byte_budget(), std::size_t{1} << 20);  // budget restored
  EXPECT_EQ(d.recoveries(), 2u);
}

TEST(Degradation, PressureResetsTheRecoveryCount) {
  PlanCache cache(1 << 20);
  Degradation d(small_config(), cache);
  d.on_pressure();
  d.on_success();
  d.on_success();
  d.on_pressure();  // a new spike voids the progress (stays ReducedCache,
                    // already at max escalation? no: escalates further)
  EXPECT_EQ(d.level(), DegradeLevel::SingleThread);
  d.on_success();
  d.on_success();
  EXPECT_EQ(d.level(), DegradeLevel::SingleThread);  // counter restarted
}

TEST(Degradation, JsonSnapshotNamesTheLevel) {
  PlanCache cache(1 << 20);
  Degradation d(small_config(), cache);
  EXPECT_NE(d.to_json().find("\"level\":\"Normal\""), std::string::npos);
  d.on_pressure();
  EXPECT_NE(d.to_json().find("\"level\":\"ReducedCache\""),
            std::string::npos);
}

}  // namespace
}  // namespace systolize::service
