// The request engine: never throws, classifies everything, retries
// transients, cancels wedged runs at their deadline, shares one plan
// cache and one compiled-program generation across requests.
#include "service/executor.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "service/json.hpp"

namespace systolize::service {
namespace {

ExecutorConfig fast_config() {
  ExecutorConfig cfg;
  cfg.default_wall_timeout_ms = 30'000;  // tests pick tighter ones per-request
  cfg.max_retries = 2;
  cfg.backoff_base_ms = 1;
  cfg.backoff_cap_ms = 4;
  return cfg;
}

Request run_req(const std::string& design, Int n = 4) {
  Request req;
  req.op = "run";
  req.design = design;
  req.n = n;
  req.m = 3;
  return req;
}

TEST(Executor, PingAndStatsAlwaysSucceed) {
  Executor ex(fast_config());
  Request ping;
  ping.op = "ping";
  Response r = ex.handle(ping);
  EXPECT_EQ(r.status, "ok");
  EXPECT_TRUE(definite_verdict(r));

  Request stats;
  stats.op = "stats";
  r = ex.handle(stats);
  EXPECT_EQ(r.status, "ok");
  // The stats payload is valid JSON with the documented sections.
  Json doc = Json::parse(r.data_json);
  EXPECT_NE(doc.get("plan_cache"), nullptr);
  EXPECT_NE(doc.get("degradation"), nullptr);
  EXPECT_NE(doc.get("requests"), nullptr);
  EXPECT_NE(doc.get("substrate"), nullptr);
}

TEST(Executor, ShardedRunSurfacesSubstrateCountersInStats) {
  Executor ex(fast_config());
  Request req = run_req("matmul2");
  req.threads = 4;
  Response r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  // The run's per-worker counters ride the metrics payload...
  Json metrics = Json::parse(r.metrics_json);
  EXPECT_NE(metrics.get("workers"), nullptr) << r.metrics_json;
  // ...and accumulate into the daemon-wide substrate totals.
  Request stats;
  stats.op = "stats";
  Response sr = ex.handle(stats);
  Json doc = Json::parse(sr.data_json);
  const Json* substrate = doc.get("substrate");
  ASSERT_NE(substrate, nullptr) << sr.data_json;
  EXPECT_EQ(substrate->int_or("runs", 0), 1);
  EXPECT_GT(substrate->int_or("tasks", 0), 0);
}

TEST(Executor, RunSucceedsWithMetricsAndVerify) {
  Executor ex(fast_config());
  Request req = run_req("matmul2");
  req.verify = true;
  Response r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(r.verdict, "success");
  Json metrics = Json::parse(r.metrics_json);
  EXPECT_GT(metrics.int_or("makespan", 0), 0);
  EXPECT_GT(metrics.int_or("total_transfers", 0), 0);
}

TEST(Executor, CompileCacheKeepsOneGenerationPerDesign) {
  // The PlanCache templates key on CompiledProgram::generation; a daemon
  // that recompiled per request would never hit its own template cache.
  Executor ex(fast_config());
  Request req;
  req.op = "compile";
  req.design = "matmul2";
  Response first = ex.handle(req);
  Response second = ex.handle(req);
  ASSERT_EQ(first.status, "ok");
  ASSERT_EQ(second.status, "ok");
  Json a = Json::parse(first.data_json);
  Json b = Json::parse(second.data_json);
  EXPECT_FALSE(a.bool_or("cached", true));
  EXPECT_TRUE(b.bool_or("cached", false));
  EXPECT_EQ(a.int_or("generation", -1), b.int_or("generation", -2));
}

TEST(Executor, WarmRunsHitTheSharedPlanCache) {
  Executor ex(fast_config());
  (void)ex.handle(run_req("matmul2"));
  const std::size_t misses = ex.plan_cache().misses();
  (void)ex.handle(run_req("matmul2"));
  EXPECT_EQ(ex.plan_cache().misses(), misses);  // second run: pure hit
  EXPECT_GE(ex.plan_cache().hits(), 1u);
}

TEST(Executor, ExpandReportsPlanShapeAndCacheOutcome) {
  Executor ex(fast_config());
  Request req;
  req.op = "expand";
  req.design = "polyprod1";
  req.n = 5;
  Response r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  Json data = Json::parse(r.data_json);
  EXPECT_GT(data.int_or("processes", 0), 0);
  EXPECT_GT(data.int_or("channels", 0), 0);
  EXPECT_FALSE(data.bool_or("plan_hit", true));
  r = ex.handle(req);
  EXPECT_TRUE(Json::parse(r.data_json).bool_or("plan_hit", false));
}

TEST(Executor, UnknownDesignClassifiesAsTerminalError) {
  Executor ex(fast_config());
  Response r = ex.handle(run_req("no-such-design"));
  EXPECT_EQ(r.status, "error");
  EXPECT_FALSE(r.retryable);
  EXPECT_TRUE(definite_verdict(r));
  EXPECT_EQ(r.retries, 0);  // terminal: no attempts wasted
}

TEST(Executor, TransientFailuresRetryToSuccess) {
  Executor ex(fast_config());
  Request req = run_req("polyprod1");
  req.fail_attempts = 2;  // test hook: first two attempts fail retryably
  Response r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(r.verdict, "retried-success");
  EXPECT_EQ(r.retries, 2);
}

TEST(Executor, RetryBudgetExhaustionClassifiesTheTransient) {
  Executor ex(fast_config());
  Request req = run_req("polyprod1");
  req.fail_attempts = 99;  // more than the server will ever retry
  Response r = ex.handle(req);
  EXPECT_EQ(r.status, "error");
  EXPECT_EQ(r.kind, "Io");
  EXPECT_TRUE(r.retryable);  // still classified transient — client's call
  EXPECT_EQ(r.retries, fast_config().max_retries);
  EXPECT_TRUE(definite_verdict(r));
}

TEST(Executor, InjectedStallTripsTheWatchdogWithForensics) {
  ExecutorConfig cfg = fast_config();
  cfg.max_retries = 1;  // deterministic fault: retry once, then classify
  Executor ex(cfg);
  Request req = run_req("polyprod1");
  req.inject = "kill@comp:(1)=1";  // killed process => stalled partners
  req.round_budget = 200;
  Response r = ex.handle(req);
  EXPECT_EQ(r.status, "error");
  EXPECT_TRUE(r.kind == "Timeout" || r.kind == "Runtime") << r.kind;
  EXPECT_TRUE(definite_verdict(r));
  // The DeadlockReport forensics ride along as machine-readable JSON.
  ASSERT_FALSE(r.diagnostic_json.empty());
  Json report = Json::parse(r.diagnostic_json);
  EXPECT_NE(report.get("reason"), nullptr);
  // The deterministic failure burned the whole retry budget.
  EXPECT_EQ(r.retries, 1);
}

TEST(Executor, WallClockDeadlineCancelsAWedgedRun) {
  ExecutorConfig cfg = fast_config();
  cfg.max_retries = 0;  // measure one attempt
  Executor ex(cfg);
  // Injected stalls/delays advance *simulated* time — the scheduler
  // fast-forwards past them — so they cannot wedge the wall clock. What
  // the wall deadline exists for is a run that is simply too big for its
  // budget: a large-size instrumented run takes seconds of real time
  // while rounds keep turning, and the cancel token is polled at every
  // round boundary.
  Request req = run_req("matmul2", 64);
  req.round_budget = 2'000'000'000;  // rounds alone would never trip
  req.wall_timeout_ms = 150;
  const auto before = std::chrono::steady_clock::now();
  Response r = ex.handle(req);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  EXPECT_EQ(r.status, "error");
  EXPECT_EQ(r.kind, "Timeout") << r.message;
  EXPECT_TRUE(r.retryable);
  EXPECT_TRUE(definite_verdict(r));
  EXPECT_NE(r.message.find("wall-clock"), std::string::npos) << r.message;
  // Cancelled promptly — not after the run's natural multi-second span.
  EXPECT_LT(elapsed.count(), 10'000);
  // The cancellation forensics name every process state at abort time.
  EXPECT_FALSE(r.diagnostic_json.empty());
}

TEST(Executor, WorkerSurvivesAWedgedRunAndServesTheNext) {
  ExecutorConfig cfg = fast_config();
  cfg.max_retries = 0;
  Executor ex(cfg);
  Request wedged = run_req("matmul2", 64);
  wedged.round_budget = 2'000'000'000;
  wedged.wall_timeout_ms = 150;
  Response dead = ex.handle(wedged);
  EXPECT_EQ(dead.kind, "Timeout");
  // Fault isolation: the same executor immediately serves a clean run.
  Request clean = run_req("matmul2", 4);
  clean.verify = true;
  Response r = ex.handle(clean);
  EXPECT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(r.verdict, "success");
}

TEST(Executor, VerifyOpRunsTheStaticPipeline) {
  Executor ex(fast_config());
  Request req;
  req.op = "verify";
  req.design = "matmul2";
  req.n = 4;
  Response r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(r.verdict, "clean");
  Json report = Json::parse(r.data_json);
  EXPECT_NE(report.get("findings"), nullptr);
}

TEST(Executor, AnalyzeOpReturnsCostReportAndReusesCompileCache) {
  Executor ex(fast_config());
  Request req;
  req.op = "analyze";
  req.design = "matmul2";
  req.n = 4;
  Response r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(r.verdict, "success");
  EXPECT_TRUE(definite_verdict(r));
  Json report = Json::parse(r.data_json);
  ASSERT_NE(report.get("formulas"), nullptr) << r.data_json;
  const Json* at = report.get("at");
  ASSERT_NE(at, nullptr) << r.data_json;
  // The metrics are the cost model's goldens (tests/analysis/test_cost).
  EXPECT_NE(r.data_json.find("\"processes\":191"), std::string::npos)
      << r.data_json;
  EXPECT_NE(r.data_json.find("\"makespan\":12"), std::string::npos);

  // A follow-up analyze (and a verify) ride the same compiled program —
  // the compile cache must not miss again for this design.
  Request stats;
  stats.op = "stats";
  Json before = Json::parse(ex.handle(stats).data_json);
  (void)ex.handle(req);
  Json after = Json::parse(ex.handle(stats).data_json);
  const Json* cc_before = before.get("compile_cache");
  const Json* cc_after = after.get("compile_cache");
  ASSERT_NE(cc_before, nullptr);
  ASSERT_NE(cc_after, nullptr);
  EXPECT_EQ(cc_after->int_or("misses", -1), cc_before->int_or("misses", -2));
  EXPECT_GT(cc_after->int_or("hits", 0), cc_before->int_or("hits", 0));
}

TEST(Executor, AnalyzeOpOnBrokenSourceReturnsFindings) {
  // A spec the verifier rejects has no meaningful cost: the analyze op
  // must come back ok/"findings" with the findings JSON, not an error.
  Executor ex(fast_config());
  Request req;
  req.op = "analyze";
  req.source =
      "design broken_inline\n"
      "sizes n >= 1\n"
      "loop i = 0 .. n\n"
      "loop j = 0 .. n\n"
      "stream a[i] read dims [0 .. n]\n"
      "stream c[i+j] update dims [0 .. 2*n]\n"
      "body c := c + a\n"
      "step i + j\n"
      "place (j)\n";
  Response r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(r.verdict, "findings");
  EXPECT_TRUE(definite_verdict(r));
  Json report = Json::parse(r.data_json);
  EXPECT_NE(report.get("findings"), nullptr) << r.data_json;
  EXPECT_GT(report.int_or("errors", 0), 0) << r.data_json;
}

TEST(Executor, InlineSourceCompilesAndRuns) {
  // The convolution design as inline .sa text exercises the source path
  // (and its compile-cache key).
  Executor ex(fast_config());
  Request req;
  req.op = "run";
  req.source =
      "design convolution_inline\n"
      "sizes n >= 1, m >= 1\n"
      "loop i = 0 .. n\n"
      "loop j = 0 .. m\n"
      "stream w[j]   read   dims [0 .. m]\n"
      "stream x[i+j] read   dims [0 .. n + m]\n"
      "stream y[i]   update dims [0 .. n]\n"
      "body y := y + w * x\n"
      "step i + 2*j\n"
      "place (i)\n"
      "load y = (1)\n";
  req.n = 6;
  req.m = 3;
  req.verify = true;
  Response r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(r.verdict, "success");
}

TEST(Executor, BatchedRunRidesTheBytecodeBackendAndCountsInStats) {
  Executor ex(fast_config());
  Request req = run_req("matmul2");
  req.batch = 8;
  req.verify = true;  // every lane checked against the sequential baseline
  Response r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(r.verdict, "success");
  Json metrics = Json::parse(r.metrics_json);
  EXPECT_EQ(metrics.str_or("backend", ""), "bytecode") << r.metrics_json;
  EXPECT_EQ(metrics.int_or("batch", 0), 8);
  EXPECT_GT(metrics.int_or("bytecode_instructions", 0), 0);

  Request stats;
  stats.op = "stats";
  Json doc = Json::parse(ex.handle(stats).data_json);
  const Json* bc = doc.get("bytecode");
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(bc->int_or("runs", 0), 1);
  EXPECT_EQ(bc->int_or("batched_instances", 0), 8);
  EXPECT_EQ(bc->int_or("max_batch", 0), 8);
  const Json* pc = doc.get("plan_cache");
  ASSERT_NE(pc, nullptr);
  EXPECT_GE(pc->int_or("bytecode_programs", 0), 1);

  // The lowered program is shared: a second batched run is a pure hit.
  Response again = ex.handle(req);
  ASSERT_EQ(again.status, "ok") << again.message;
  EXPECT_TRUE(Json::parse(again.metrics_json)
                  .bool_or("bytecode_reused", false));
}

TEST(Executor, ForcedBackendsAreHonoured) {
  Executor ex(fast_config());
  Request req = run_req("polyprod1");
  req.backend = "interp";
  req.batch = 3;
  Response r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(Json::parse(r.metrics_json).str_or("backend", ""), "interp");

  req.backend = "bytecode";
  req.batch = 1;
  r = ex.handle(req);
  ASSERT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(Json::parse(r.metrics_json).str_or("backend", ""), "bytecode");

  // Forcing the VM onto an incompatible request is a terminal error
  // naming the blocker, not a silent fallback.
  req.inject = "seed=1;stall=0.5:3";
  r = ex.handle(req);
  EXPECT_EQ(r.status, "error");
  EXPECT_EQ(r.kind, "Validation");
  EXPECT_NE(r.message.find("bytecode backend"), std::string::npos)
      << r.message;
}

TEST(Executor, BatchedFaultedRunReportsPerInstanceVerdicts) {
  ExecutorConfig cfg = fast_config();
  cfg.max_retries = 0;
  Executor ex(cfg);
  Request req = run_req("polyprod1");
  req.batch = 4;
  req.inject = "kill@comp:(1)=1";  // deterministic: every instance dies
  req.round_budget = 200;
  Response r = ex.handle(req);
  // A kill is a verdict for one instance, never for the batch: the
  // request itself comes back ok with per-instance verdicts in data.
  ASSERT_EQ(r.status, "ok") << r.message;
  EXPECT_EQ(r.verdict, "instance-failures");
  Json data = Json::parse(r.data_json);
  EXPECT_EQ(data.int_or("batch", 0), 4);
  EXPECT_EQ(data.int_or("failures", 0), 4);
  const Json* instances = data.get("instances");
  ASSERT_NE(instances, nullptr) << r.data_json;
  // Each instance entry names its index and a classified verdict.
  for (Int b = 0; b < 4; ++b) {
    EXPECT_NE(r.data_json.find("\"instance\":" + std::to_string(b)),
              std::string::npos)
        << r.data_json;
  }
  EXPECT_NE(r.data_json.find("\"verdict\":"), std::string::npos);

  // A seeded probabilistic stall recovers: all instances succeed.
  req.inject = "seed=7;stall=0.05:2";
  req.round_budget = 0;
  Response clean = ex.handle(req);
  ASSERT_EQ(clean.status, "ok") << clean.message;
  EXPECT_EQ(clean.verdict, "success");
  EXPECT_EQ(Json::parse(clean.data_json).int_or("failures", -1), 0);
}

TEST(Executor, HandleGroupCoalescesWarmRequestsIntoOneDispatch) {
  Executor ex(fast_config());
  std::vector<Request> reqs;
  for (Int i = 0; i < 3; ++i) {
    Request req = run_req("matmul2");
    req.id = 10 + i;
    req.tenant = "t" + std::to_string(i);
    req.batch = i + 1;  // 1 + 2 + 3 = 6 lanes
    req.verify = true;
    reqs.push_back(req);
  }
  std::vector<Response> rs = ex.handle_group(reqs);
  ASSERT_EQ(rs.size(), 3u);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].status, "ok") << rs[i].message;
    EXPECT_EQ(rs[i].id, reqs[i].id);  // responses keep request order
    Json data = Json::parse(rs[i].data_json);
    EXPECT_TRUE(data.bool_or("coalesced", false)) << rs[i].data_json;
    EXPECT_EQ(data.int_or("group", 0), 3);
    EXPECT_EQ(data.int_or("lanes", 0), 6);
  }
  Request stats;
  stats.op = "stats";
  Json doc = Json::parse(ex.handle(stats).data_json);
  const Json* bc = doc.get("bytecode");
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(bc->int_or("coalesced_groups", 0), 1);
  EXPECT_EQ(bc->int_or("coalesced_requests", 0), 3);
  EXPECT_EQ(bc->int_or("runs", 0), 1);  // ONE dispatch for all three
  EXPECT_EQ(bc->int_or("batched_instances", 0), 6);
}

TEST(Executor, GroupDispatchFailureFallsBackToIndependentHandling) {
  // An unknown design makes the group dispatch throw; every request must
  // still get its own definite (error) verdict through the fallback.
  Executor ex(fast_config());
  std::vector<Request> reqs;
  for (Int i = 0; i < 3; ++i) {
    Request req = run_req("does-not-exist");
    req.id = i;
    reqs.push_back(req);
  }
  std::vector<Response> rs = ex.handle_group(reqs);
  ASSERT_EQ(rs.size(), 3u);
  for (const Response& r : rs) {
    EXPECT_EQ(r.status, "error");
    EXPECT_TRUE(definite_verdict(r));
  }
  Request stats;
  stats.op = "stats";
  Json doc = Json::parse(ex.handle(stats).data_json);
  const Json* bc = doc.get("bytecode");
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(bc->int_or("coalesced_groups", 0), 0);  // no shared dispatch
}

TEST(Executor, FaultedGroupFallsBackAndMembersRetryIndependently) {
  // The queue never coalesces fail_attempts requests, but handle_group
  // must still be safe if handed one (a caller-built group): the injected
  // failure faults the shared dispatch, and each member re-runs through
  // its own retry loop to an individual "retried-success".
  Executor ex(fast_config());
  std::vector<Request> reqs;
  for (Int i = 0; i < 3; ++i) {
    Request req = run_req("matmul2");
    req.id = 20 + i;
    req.tenant = "t" + std::to_string(i);
    req.fail_attempts = 1;
    reqs.push_back(req);
  }
  std::vector<Response> rs = ex.handle_group(reqs);
  ASSERT_EQ(rs.size(), 3u);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].status, "ok") << rs[i].message;
    EXPECT_EQ(rs[i].id, reqs[i].id);
    EXPECT_EQ(rs[i].verdict, "retried-success");
    EXPECT_EQ(rs[i].retries, 1);
  }
  Request stats;
  stats.op = "stats";
  Json doc = Json::parse(ex.handle(stats).data_json);
  const Json* bc = doc.get("bytecode");
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(bc->int_or("coalesced_groups", 0), 0);  // dispatch never landed
  EXPECT_EQ(bc->int_or("coalesced_requests", 0), 0);
}

TEST(Executor, ConcurrentMixedRequestsAllGetDefiniteVerdicts) {
  // A miniature in-process soak: clean runs, faulted runs, bad designs
  // and retry-hook requests race on one executor; every one must come
  // back with a definite verdict and the executor must stay consistent.
  Executor ex(fast_config());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  std::vector<std::thread> threads;
  std::vector<std::vector<Response>> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Request req;
        switch ((t + i) % 4) {
          case 0:
            req = run_req("matmul2");
            req.verify = true;
            break;
          case 1:
            req = run_req("polyprod1");
            req.fail_attempts = 1;
            break;
          case 2:
            req = run_req("polyprod1");
            req.inject = "kill@comp:(1)=1";
            req.round_budget = 200;
            break;
          default: req = run_req("does-not-exist"); break;
        }
        results[t].push_back(ex.handle(req));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& per_thread : results) {
    for (const Response& r : per_thread) {
      EXPECT_TRUE(definite_verdict(r))
          << r.status << " " << r.kind << " " << r.message;
    }
  }
}

}  // namespace
}  // namespace systolize::service
