// End-to-end daemon tests over a real Unix-domain socket: concurrency,
// admission, fault isolation under soak, and graceful drain. These are
// the in-process versions of the ci.sh serve smoke stage.
#include "service/server.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "service/client.hpp"
#include "support/error.hpp"

namespace systolize::service {
namespace {

std::string temp_socket(const std::string& tag) {
  return "/tmp/systolize-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

ServerConfig fast_server(const std::string& tag) {
  ServerConfig cfg;
  cfg.socket_path = temp_socket(tag);
  cfg.workers = 4;
  cfg.queue_depth = 64;
  cfg.tenant_cap = 32;
  cfg.executor.max_retries = 1;
  cfg.executor.backoff_base_ms = 1;
  cfg.executor.backoff_cap_ms = 4;
  cfg.executor.default_wall_timeout_ms = 30'000;
  return cfg;
}

Request run_req(Int id, const std::string& design = "matmul2") {
  Request req;
  req.id = id;
  req.op = "run";
  req.design = design;
  req.n = 4;
  req.m = 3;
  return req;
}

TEST(Server, ServesPipelinedRequestsOnOneConnection) {
  Server server(fast_server("pipeline"));
  server.start();
  Client client(temp_socket("pipeline"));
  for (Int i = 1; i <= 6; ++i) client.send(run_req(i));
  std::vector<bool> seen(7, false);
  for (int i = 0; i < 6; ++i) {
    Response r = client.recv();
    EXPECT_EQ(r.status, "ok") << r.message;
    ASSERT_GE(r.id, 1);
    ASSERT_LE(r.id, 6);
    EXPECT_FALSE(seen[static_cast<std::size_t>(r.id)]);  // ids correlate
    seen[static_cast<std::size_t>(r.id)] = true;
  }
  server.shutdown();
  server.wait();
  EXPECT_FALSE(server.final_stats().empty());
}

TEST(Server, MalformedLinesGetErrorResponsesNotDisconnects) {
  Server server(fast_server("malformed"));
  server.start();
  // Drive the raw protocol: garbage lines then a real request, all on
  // one connection — the server classifies each line, drops none.
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::string path = temp_socket("malformed");
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string lines =
      "this is not json\n"
      "{\"op\":\"frobnicate\"}\n"
      "{\"id\":3,\"op\":\"ping\"}\n";
  ASSERT_EQ(::send(fd, lines.data(), lines.size(), 0),
            static_cast<ssize_t>(lines.size()));
  std::string buf;
  char chunk[4096];
  while (std::count(buf.begin(), buf.end(), '\n') < 3) {
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    ASSERT_GT(n, 0);
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  std::istringstream in(buf);
  std::string line;
  std::getline(in, line);
  Response r1 = parse_response(line);
  EXPECT_EQ(r1.status, "error");
  EXPECT_EQ(r1.kind, "Parse");
  std::getline(in, line);
  Response r2 = parse_response(line);
  EXPECT_EQ(r2.status, "error");
  EXPECT_EQ(r2.kind, "Validation");
  std::getline(in, line);
  Response r3 = parse_response(line);
  EXPECT_EQ(r3.status, "ok");
  EXPECT_EQ(r3.id, 3);
  ::close(fd);
  server.shutdown();
  server.wait();
}

TEST(Server, QueueFullYieldsRetryableRejectionsWithHints) {
  ServerConfig cfg = fast_server("overload");
  cfg.workers = 1;
  cfg.queue_depth = 1;
  Server server(cfg);
  server.start();

  constexpr int kClients = 6;
  std::atomic<int> rejected{0};
  std::atomic<int> succeeded{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(temp_socket("overload"));
      Response r = client.call(run_req(c + 1, "matmul2"));
      if (r.status == "rejected") {
        EXPECT_TRUE(r.retryable);
        EXPECT_GE(r.retry_after_ms, 0);
        EXPECT_TRUE(definite_verdict(r));
        ++rejected;
      } else if (r.status == "ok") {
        ++succeeded;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_GE(succeeded.load(), 1);
  // With depth 1 and one worker, six simultaneous runs cannot all fit;
  // under scheduler-timing luck they might still drain fast enough, so
  // only assert the accounting matches what the server reports.
  Client stats_client(temp_socket("overload"));
  Request stats;
  stats.id = 99;
  stats.op = "stats";
  Response sr = stats_client.call(stats);
  EXPECT_EQ(sr.status, "ok");
  EXPECT_EQ(rejected.load() + succeeded.load(), kClients);
  server.shutdown();
  server.wait();
}

TEST(Server, PerTenantCapShedsOnlyTheHotTenant) {
  ServerConfig cfg = fast_server("tenant");
  cfg.workers = 1;
  cfg.queue_depth = 32;
  cfg.tenant_cap = 1;
  Server server(cfg);
  server.start();
  Client hog(temp_socket("tenant"));
  // One slow-ish request occupies tenant "hog"'s single slot...
  Request first = run_req(1);
  first.tenant = "hog";
  first.n = 6;
  hog.send(first);
  // ... so a second "hog" request sheds, while "polite" is admitted.
  Client prober(temp_socket("tenant"));
  bool hog_shed = false;
  for (int i = 0; i < 50; ++i) {
    Request second = run_req(2);
    second.tenant = "hog";
    Response r = prober.call(second);
    if (r.status == "rejected") {
      EXPECT_EQ(r.message, "tenant cap");
      hog_shed = true;
      break;
    }
    // The first run already finished; re-prime and try again.
    hog.send(first);
  }
  EXPECT_TRUE(hog_shed);
  Request polite = run_req(3);
  polite.tenant = "polite";
  Response r = prober.call_with_retry(polite);
  EXPECT_EQ(r.status, "ok") << r.message;
  (void)hog.call_with_retry(run_req(4));  // flush
  server.shutdown();
  server.wait();
}

// The acceptance-criteria soak: >= 100 concurrent requests with seeded
// stall/kill/delay faults, every one terminating with a definite verdict
// (success, retried-success, or classified error + forensics), no hangs,
// no crashes, and the worker pool alive at the end.
TEST(Server, SoakWithInjectedFaultsYieldsOnlyDefiniteVerdicts) {
  ServerConfig cfg = fast_server("soak");
  cfg.workers = 8;
  cfg.queue_depth = 128;
  Server server(cfg);
  server.start();

  constexpr int kClients = 8;
  constexpr int kPerClient = 14;  // 112 requests total
  std::vector<std::vector<Response>> results(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(temp_socket("soak"));
      for (int i = 0; i < kPerClient; ++i) {
        Request req = run_req(c * 100 + i, i % 2 == 0 ? "matmul2"
                                                      : "polyprod1");
        req.tenant = "client" + std::to_string(c);
        switch (i % 5) {
          case 0: break;  // clean run
          case 1:
            // Seeded stalls: recoverable slowness, still succeeds.
            req.inject = "seed=" + std::to_string(c * 31 + i) +
                         ";stall=0.05:3";
            break;
          case 2:
            // A killed process deadlocks its partners: the round budget
            // turns that into Timeout + DeadlockReport.
            req.inject = "kill@comp:(1)=1";
            req.round_budget = 300;
            break;
          case 3:
            // Seeded delays: recoverable.
            req.inject = "seed=" + std::to_string(c * 17 + i) +
                         ";delay=0.05:2";
            break;
          default:
            // Transient-failure hook: must come back retried-success.
            req.fail_attempts = 1;
            break;
        }
        results[c].push_back(client.call_with_retry(req));
      }
    });
  }
  for (auto& c : clients) c.join();

  int successes = 0, retried = 0, classified_errors = 0;
  for (const auto& per_client : results) {
    ASSERT_EQ(per_client.size(), static_cast<std::size_t>(kPerClient));
    for (const Response& r : per_client) {
      EXPECT_TRUE(definite_verdict(r))
          << r.status << "/" << r.kind << ": " << r.message;
      if (r.status == "ok" && r.verdict == "success") ++successes;
      if (r.status == "ok" && r.verdict == "retried-success") ++retried;
      if (r.status == "error") {
        ++classified_errors;
        EXPECT_FALSE(r.kind.empty());
        // Deadlocked runs carry their forensics.
        if (r.kind == "Timeout" || r.kind == "Runtime") {
          EXPECT_FALSE(r.diagnostic_json.empty()) << r.message;
        }
      }
    }
  }
  EXPECT_GT(successes, 0);
  EXPECT_GT(retried, 0);           // the fail_attempts hook fired
  EXPECT_GT(classified_errors, 0); // the kill-fault runs classified

  // Worker pool survived the faults: a clean request still succeeds.
  Client survivor(temp_socket("soak"));
  Response r = survivor.call(run_req(9999));
  EXPECT_EQ(r.status, "ok") << r.message;
  server.shutdown();
  server.wait();
  EXPECT_FALSE(server.final_stats().empty());
}

// PR 5's 112-request soak, re-aimed at the coalescing path: few workers,
// heavily pipelined identical warm requests so the backlog builds and
// warm groups share batched dispatches, mixed with faulted and
// transient-hook requests that must NOT coalesce. Every response is a
// definite verdict and the final stats show shared dispatches happened.
TEST(Server, CoalescingSoakSharesDispatchesAndStaysDefinite) {
  ServerConfig cfg = fast_server("coalesce");
  cfg.workers = 2;  // small pool => real backlog => groups actually form
  cfg.queue_depth = 256;
  cfg.tenant_cap = 64;
  Server server(cfg);
  server.start();

  // Warm the caches so the coalesced dispatches are pure execution.
  {
    Client warm(temp_socket("coalesce"));
    Response r = warm.call(run_req(1));
    ASSERT_EQ(r.status, "ok") << r.message;
  }

  constexpr int kClients = 8;
  constexpr int kPerClient = 14;  // 112 requests total
  std::vector<std::vector<Response>> results(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(temp_socket("coalesce"));
      // Pipeline the whole burst before reading: identical warm requests
      // pile up behind the two workers and ride shared dispatches.
      int sent = 0;
      for (int i = 0; i < kPerClient; ++i) {
        Request req = run_req(c * 100 + i);
        req.tenant = "client" + std::to_string(c);
        switch (i % 7) {
          case 5:
            // Faulted: must run per instance, never coalesce.
            req.inject = "seed=" + std::to_string(c * 31 + i) +
                         ";stall=0.05:3";
            break;
          case 6:
            req.fail_attempts = 1;  // must hit the per-request retry path
            break;
          default:
            req.batch = 1 + (i % 3);  // identical coalescible warm runs
            req.verify = true;
            break;
        }
        client.send(req);
        ++sent;
      }
      for (int i = 0; i < sent; ++i) results[c].push_back(client.recv());
    });
  }
  for (auto& c : clients) c.join();

  int coalesced_responses = 0;
  for (const auto& per_client : results) {
    ASSERT_EQ(per_client.size(), static_cast<std::size_t>(kPerClient));
    for (const Response& r : per_client) {
      EXPECT_TRUE(definite_verdict(r))
          << r.status << "/" << r.kind << ": " << r.message;
      if (r.data_json.find("\"coalesced\":true") != std::string::npos) {
        ++coalesced_responses;
      }
    }
  }

  // The accounting is authoritative even if scheduling luck varied how
  // many groups formed: stats must agree with what the responses said.
  Client stats_client(temp_socket("coalesce"));
  Request stats;
  stats.id = 9999;
  stats.op = "stats";
  Response sr = stats_client.call(stats);
  ASSERT_EQ(sr.status, "ok");
  const std::string& s = sr.data_json;
  EXPECT_NE(s.find("\"bytecode\":{"), std::string::npos) << s;
  EXPECT_NE(s.find("\"coalesced_groups\":"), std::string::npos) << s;
  // Two workers against 112 pipelined requests: shared dispatches are
  // effectively guaranteed; this pins the path actually exercised.
  EXPECT_GT(coalesced_responses, 0);

  server.shutdown();
  server.wait();
  EXPECT_FALSE(server.final_stats().empty());
}

TEST(Server, ShutdownMidFlightDrainsAdmittedWork) {
  ServerConfig cfg = fast_server("drain");
  cfg.workers = 2;
  cfg.queue_depth = 64;
  Server server(cfg);
  server.start();

  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::atomic<int> definite{0};
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(temp_socket("drain"));
      for (int i = 0; i < kPerClient; ++i) {
        Request req = run_req(c * 100 + i);
        ++total;
        try {
          Response r = client.call(req);
          // Admitted => a real verdict; shed during shutdown => a
          // definite "shutting-down". Both satisfy the drain contract.
          if (definite_verdict(r)) ++definite;
        } catch (const Error&) {
          // Connection torn down after the drain: also a definite end —
          // the server never leaves a request hanging forever.
          ++definite;
        }
      }
    });
  }
  // Let some requests land, then pull the plug mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.shutdown();
  server.wait();  // must return: drain may not hang
  for (auto& c : clients) c.join();
  EXPECT_EQ(definite.load(), total.load());
  EXPECT_FALSE(server.final_stats().empty());
  // The socket is gone after a clean drain.
  Client late(temp_socket("drain"));
  EXPECT_THROW(late.connect(), Error);
}

}  // namespace
}  // namespace systolize::service
