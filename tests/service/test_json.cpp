// The service's minimal JSON layer: parse, typed field access, quoting.
#include "service/json.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace systolize::service {
namespace {

TEST(Json, ParsesScalarsArraysAndObjects) {
  Json v = Json::parse(
      R"({"a":1,"b":-2.5,"c":"hi","d":true,"e":null,"f":[1,2,3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.int_or("a", 0), 1);
  EXPECT_DOUBLE_EQ(v.get("b")->as_double(), -2.5);
  EXPECT_EQ(v.str_or("c", ""), "hi");
  EXPECT_TRUE(v.bool_or("d", false));
  EXPECT_TRUE(v.get("e")->is_null());
  ASSERT_EQ(v.get("f")->size(), 3u);
  EXPECT_EQ(v.get("f")->at(2).as_int(), 3);
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string original = "line\nquote\"back\\slash\ttab";
  Json v = Json::parse(json_quote(original));
  EXPECT_EQ(v.as_string(), original);
}

TEST(Json, UnicodeEscapeDecodesToUtf8) {
  Json v = Json::parse(R"("Aé€")");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(Json, MalformedInputRaisesParseWithOffset) {
  for (const char* bad :
       {"{", "[1,", "\"unterminated", "{\"a\":}", "tru", "1.2.3",
        "{\"a\":1} trailing"}) {
    try {
      (void)Json::parse(bad);
      FAIL() << "expected Parse error for: " << bad;
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::Parse) << bad;
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
    }
  }
}

TEST(Json, NestingDepthIsBounded) {
  std::string deep(64, '[');
  deep += std::string(64, ']');
  EXPECT_THROW((void)Json::parse(deep), Error);
}

TEST(Json, TypedReadersRejectWrongTypes) {
  Json v = Json::parse(R"({"n":"not a number"})");
  try {
    (void)v.int_or("n", 0);
    FAIL() << "expected Validation";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Validation);
  }
  // Absent and null fields fall back instead of throwing.
  EXPECT_EQ(v.int_or("missing", 7), 7);
}

TEST(Json, LargeIntegersSurviveExactly) {
  Json v = Json::parse("{\"big\":123456789012345}");
  EXPECT_EQ(v.int_or("big", 0), 123456789012345LL);
}

}  // namespace
}  // namespace systolize::service
