// The .sa exporter (PR8): render_design must be parse_design's inverse —
// every unguarded catalog design round-trips to an equivalent compiled
// program — and must refuse the constructs the format cannot express.
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "designs/catalog.hpp"
#include "frontend/parser.hpp"
#include "frontend/render.hpp"
#include "scheme/compiler.hpp"

#ifndef SYSTOLIZE_DESIGN_DIR
#define SYSTOLIZE_DESIGN_DIR "designs"
#endif

namespace systolize {
namespace {

TEST(Render, CatalogDesignsRoundTrip) {
  for (const char* name : {"polyprod1", "polyprod2", "polyprod3", "matmul1",
                           "matmul2", "matmul3", "matmul4", "convolution",
                           "correlation", "fir_bank", "closure"}) {
    Design original = design_by_name(name);
    std::string sa = frontend::render_design(original.nest, original.spec);
    Design reparsed = frontend::parse_design(sa);

    EXPECT_EQ(reparsed.nest.name(), original.nest.name()) << name;
    EXPECT_EQ(reparsed.nest.depth(), original.nest.depth()) << name;
    EXPECT_EQ(reparsed.spec.step().coeffs(), original.spec.step().coeffs())
        << name << "\n" << sa;
    EXPECT_EQ(reparsed.spec.place().matrix().to_string(),
              original.spec.place().matrix().to_string())
        << name << "\n" << sa;
    EXPECT_EQ(reparsed.spec.loading_vectors().size(),
              original.spec.loading_vectors().size())
        << name;

    // The decisive equivalence: both parse trees compile to programs
    // with identical step/place and stream structure.
    CompiledProgram a = compile(original.nest, original.spec);
    CompiledProgram b = compile(reparsed.nest, reparsed.spec);
    EXPECT_EQ(a.depth, b.depth) << name;
    EXPECT_EQ(a.streams.size(), b.streams.size()) << name;
    EXPECT_EQ(a.ps.min.to_string(), b.ps.min.to_string()) << name;
    EXPECT_EQ(a.ps.max.to_string(), b.ps.max.to_string()) << name;
  }
}

TEST(Render, RenderedTextIsStable) {
  // Rendering the reparsed design reproduces the text byte for byte —
  // the exporter is idempotent through a parse cycle.
  Design d = design_by_name("matmul2");
  std::string once = frontend::render_design(d.nest, d.spec);
  Design reparsed = frontend::parse_design(once);
  std::string twice = frontend::render_design(reparsed.nest, reparsed.spec);
  EXPECT_EQ(once, twice);
}

TEST(Render, CommentLinesArePrefixed) {
  Design d = design_by_name("polyprod1");
  std::string sa =
      frontend::render_design(d.nest, d.spec, "line one\nline two");
  EXPECT_EQ(sa.rfind("# line one\n# line two\n", 0), 0u);
  (void)frontend::parse_design(sa);  // comments must not break the parser
}

TEST(Render, GuardedBodyIsRejected) {
  std::string path =
      std::string(SYSTOLIZE_DESIGN_DIR) + "/masked_polyprod.sa";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  Design d = frontend::parse_design(buf.str());
  EXPECT_THROW((void)frontend::render_design(d.nest, d.spec), Error);
}

TEST(Render, LinExprTextMatchesFormatGrammar) {
  Design d = design_by_name("matmul2");
  EXPECT_EQ(frontend::lin_expr_text(IntVec{1, 1, 1}, d.nest), "i + j + k");
  EXPECT_EQ(frontend::lin_expr_text(IntVec{-1, 0, 2}, d.nest), "-i + 2*k");
  EXPECT_EQ(frontend::lin_expr_text(IntVec{0, 0, 0}, d.nest), "0");
  EXPECT_EQ(frontend::place_text(IntMatrix{{1, 0, -1}, {0, 1, -1}}, d.nest),
            "(i - k, j - k)");
}

}  // namespace
}  // namespace systolize
