// The shipped .sa files must compile to programs equivalent to the C++
// catalog designs: same derived quantities at every process of every
// instantiated array, and identical execution results.
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "baseline/runtime_generation.hpp"
#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "frontend/parser.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

#ifndef SYSTOLIZE_DESIGN_DIR
#define SYSTOLIZE_DESIGN_DIR "designs"
#endif

namespace systolize {
namespace {

std::string read_file(const std::string& name) {
  std::string path = std::string(SYSTOLIZE_DESIGN_DIR) + "/" + name + ".sa";
  std::ifstream in(path);
  if (!in) {
    ADD_FAILURE() << "cannot open " << path;
    return "";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class SaFiles : public ::testing::TestWithParam<std::string> {};

TEST_P(SaFiles, CompilesToTheSameProgramAsTheCatalog) {
  Design from_file = frontend::parse_design(read_file(GetParam()));
  Design from_catalog = design_by_name(GetParam());
  CompiledProgram pf = compile(from_file.nest, from_file.spec);
  CompiledProgram pc = compile(from_catalog.nest, from_catalog.spec);

  EXPECT_EQ(pf.repeater.increment, pc.repeater.increment);
  Env sizes{{"n", Rational(3)}, {"m", Rational(2)}};
  EXPECT_EQ(pf.ps.min.evaluate(sizes), pc.ps.min.evaluate(sizes));
  EXPECT_EQ(pf.ps.max.evaluate(sizes), pc.ps.max.evaluate(sizes));

  EnumerationOracle oracle(from_catalog.nest, from_catalog.spec, sizes);
  for (const IntVec& y : oracle.ps_points()) {
    Env env = sizes;
    for (std::size_t i = 0; i < pc.coords.size(); ++i) {
      env[pc.coords[i].name()] = Rational(y[i]);
    }
    ASSERT_EQ(pf.repeater.first.covers(env), pc.repeater.first.covers(env))
        << y.to_string();
    if (!pc.repeater.first.covers(env)) continue;
    EXPECT_EQ(pf.repeater.first.select(env)->evaluate(env),
              pc.repeater.first.select(env)->evaluate(env))
        << y.to_string();
    EXPECT_EQ(pf.repeater.count.select(env)->evaluate(env),
              pc.repeater.count.select(env)->evaluate(env))
        << y.to_string();
    for (const StreamPlan& plan : pc.streams) {
      const StreamPlan& fplan = pf.stream_plan(plan.name);
      EXPECT_EQ(fplan.io.increment_s, plan.io.increment_s) << plan.name;
      EXPECT_EQ(fplan.soak.select(env)->evaluate(env),
                plan.soak.select(env)->evaluate(env))
          << plan.name << " at " << y.to_string();
      EXPECT_EQ(fplan.drain.select(env)->evaluate(env),
                plan.drain.select(env)->evaluate(env))
          << plan.name << " at " << y.to_string();
    }
  }
}

TEST_P(SaFiles, ExecutesIdenticallyToTheCatalogDesign) {
  Design from_file = frontend::parse_design(read_file(GetParam()));
  Design from_catalog = design_by_name(GetParam());
  CompiledProgram pf = compile(from_file.nest, from_file.spec);
  Env sizes{{"n", Rational(4)}, {"m", Rational(2)}};
  // Parsed body and catalog body must compute the same function.
  IndexedStore store = make_initial_store(
      from_file.nest, sizes, [](const std::string& var, const IntVec& p) {
        return static_cast<Value>(var[0] * 3 + p[0] - (p.dim() > 1 ? p[1] : 0));
      });
  IndexedStore expected = store;
  run_sequential(from_catalog.nest, sizes, expected);
  (void)execute(pf, from_file.nest, sizes, store);
  for (const Stream& s : from_catalog.nest.streams()) {
    EXPECT_EQ(store.elements(s.name()), expected.elements(s.name()))
        << s.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllSaFiles, SaFiles,
                         ::testing::Values("polyprod1", "polyprod2",
                                           "polyprod3", "matmul1", "matmul2",
                                           "matmul3", "matmul4",
                                           "convolution", "correlation",
                                           "fir_bank", "closure"));

}  // namespace
}  // namespace systolize
