#include "frontend/lexer.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace systolize::frontend {
namespace {

TEST(Lexer, TokenizesAllKinds) {
  auto toks = lex("design foo ( ) [ ] , .. := = >= + - * 42");
  std::vector<TokKind> kinds;
  for (const Token& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokKind>{
                TokKind::Ident, TokKind::Ident, TokKind::LParen,
                TokKind::RParen, TokKind::LBracket, TokKind::RBracket,
                TokKind::Comma, TokKind::DotDot, TokKind::Assign,
                TokKind::Equals, TokKind::Ge, TokKind::Plus, TokKind::Minus,
                TokKind::Star, TokKind::Integer, TokKind::End}));
  EXPECT_EQ(toks[0].text, "design");
  EXPECT_EQ(toks[14].value, 42);
}

TEST(Lexer, SkipsCommentsAndTracksLines) {
  auto toks = lex("a # comment with stuff := .. \nb\n  c");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].line, 2u);
  EXPECT_EQ(toks[2].text, "c");
  EXPECT_EQ(toks[2].line, 3u);
}

TEST(Lexer, IdentifiersMayContainUnderscoresAndDigits) {
  auto toks = lex("foo_bar2 _x");
  EXPECT_EQ(toks[0].text, "foo_bar2");
  EXPECT_EQ(toks[1].text, "_x");
}

TEST(Lexer, RejectsUnknownCharacters) {
  try {
    (void)lex("a\n@");
    FAIL() << "expected Parse error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Parse);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Lexer, SingleDotIsRejected) {
  EXPECT_THROW((void)lex("0 . n"), Error);
}

}  // namespace
}  // namespace systolize::frontend
