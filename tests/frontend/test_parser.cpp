#include "frontend/parser.hpp"

#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"
#include "support/error.hpp"

namespace systolize::frontend {
namespace {

const char* kPolyprod1 = R"(
# Appendix D.1 as a .sa file
design polyprod1
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i]   read   dims [0 .. n]
stream b[j]   read   dims [0 .. n]
stream c[i+j] update dims [0 .. 2*n]
body c := c + a * b
step 2*i + j
place (i)
load a = (1)
)";

TEST(Parser, ParsesPolyprodDesign) {
  Design d = parse_design(kPolyprod1);
  EXPECT_EQ(d.nest.name(), "polyprod1");
  EXPECT_EQ(d.nest.depth(), 2u);
  EXPECT_EQ(d.nest.streams().size(), 3u);
  EXPECT_EQ(d.nest.body_text(), "c := c + a * b");
  EXPECT_EQ(d.spec.step().coeffs(), (IntVec{2, 1}));
  EXPECT_EQ(d.spec.place().matrix(), (IntMatrix{{1, 0}}));
  EXPECT_EQ(d.nest.stream("c").index_map(), (IntMatrix{{1, 1}}));
  EXPECT_EQ(d.nest.stream("c").access(), StreamAccess::Update);
  EXPECT_EQ(d.nest.stream("a").access(), StreamAccess::Read);
}

TEST(Parser, ParsedDesignCompilesLikeTheCatalogOne) {
  Design d = parse_design(kPolyprod1);
  CompiledProgram prog = compile(d.nest, d.spec);
  EXPECT_EQ(prog.repeater.increment, (IntVec{0, 1}));
  EXPECT_TRUE(prog.repeater.simple_place);
  Env env{{"n", Rational(3)}, {"col", Rational(2)}};
  EXPECT_EQ(prog.repeater.first.select(env)->evaluate(env), (IntVec{2, 0}));
}

TEST(Parser, ParsedDesignRunsCorrectly) {
  Design d = parse_design(kPolyprod1);
  CompiledProgram prog = compile(d.nest, d.spec);
  Env sizes{{"n", Rational(4)}};
  IndexedStore store = make_initial_store(
      d.nest, sizes, [](const std::string& var, const IntVec& p) {
        return static_cast<Value>(var[0] + p[0]);
      });
  IndexedStore check = store;
  run_sequential(d.nest, sizes, check);
  (void)execute(prog, d.nest, sizes, store);
  EXPECT_EQ(store.elements("c"), check.elements("c"));
}

TEST(Parser, ParsesKungLeisersonMatmul) {
  Design d = parse_design(R"(
design matmul_kl
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
loop k = 0 .. n
stream a[i,k] read   dims [0 .. n, 0 .. n]
stream b[k,j] read   dims [0 .. n, 0 .. n]
stream c[i,j] update dims [0 .. n, 0 .. n]
body c := c + a * b
step i + j + k
place (i - k, j - k)
)");
  CompiledProgram prog = compile(d.nest, d.spec);
  EXPECT_EQ(prog.repeater.increment, (IntVec{1, 1, 1}));
  EXPECT_EQ(prog.stream_plan("c").motion.flow,
            (RatVec{Rational(-1), Rational(-1)}));
}

TEST(Parser, NegativeBoundsAndSubtraction) {
  Design d = parse_design(R"(
design correlation
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i]   read   dims [0 .. n]
stream b[j]   read   dims [0 .. n]
stream c[i-j] update dims [0 - n .. n]
body c := c + a * b
step i + 2*j
place (i)
load a = (1)
)");
  CompiledProgram prog = compile(d.nest, d.spec);
  EXPECT_EQ(prog.stream_plan("c").motion.flow, (RatVec{Rational(1, 3)}));
}

TEST(Parser, BodyExpressionEvaluates) {
  Design d = parse_design(R"(
design weird
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i]   read   dims [0 .. n]
stream b[j]   read   dims [0 .. n]
stream c[i+j] update dims [0 .. 2*n]
body c := c + 2 * a * b - a + 1
step 2*i + j
place (i)
load a = (1)
)");
  std::map<std::string, Value> vals{{"a", 3}, {"b", 4}, {"c", 10}};
  d.nest.body()(IntVec{0, 0}, vals);
  EXPECT_EQ(vals.at("c"), 10 + 2 * 3 * 4 - 3 + 1);
}

TEST(Parser, NegativeLoopStepWithBy) {
  // A loop executed from its right bound down to its left bound
  // (Sect. 3.1: negative steps reverse the execution order only; the
  // bounds still satisfy lb <= rb).
  Design d = parse_design(R"(
design reversed
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n by -1
stream a[i]   read   dims [0 .. n]
stream b[j]   read   dims [0 .. n]
stream c[i+j] update dims [0 .. 2*n]
body c := c + a * b
step 2*i + j
place (i)
load a = (1)
)");
  EXPECT_EQ(d.nest.loops()[1].step, -1);
  // The compiled program is unaffected by the execution order...
  CompiledProgram prog = compile(d.nest, d.spec);
  EXPECT_EQ(prog.repeater.increment, (IntVec{0, 1}));
  // ...and the executed result matches the (reversed) sequential order.
  Env sizes{{"n", Rational(3)}};
  IndexedStore store = make_initial_store(
      d.nest, sizes, [](const std::string& var, const IntVec& p) {
        return static_cast<Value>(var[0] - p[0]);
      });
  IndexedStore check = store;
  run_sequential(d.nest, sizes, check);
  (void)execute(prog, d.nest, sizes, store);
  EXPECT_EQ(store.elements("c"), check.elements("c"));
}

// ---- error cases ---------------------------------------------------------

void expect_error(const std::string& source, ErrorKind kind,
                  const std::string& fragment) {
  try {
    (void)parse_design(source);
    FAIL() << "expected error containing '" << fragment << "'";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

TEST(ParserErrors, MissingDesignKeyword) {
  expect_error("loop i = 0 .. n", ErrorKind::Parse, "expected 'design'");
}

TEST(ParserErrors, UnknownDeclaration) {
  expect_error("design d\nfrobnicate", ErrorKind::Parse,
               "unknown declaration");
}

TEST(ParserErrors, UndeclaredSizeVariable) {
  expect_error("design d\nloop i = 0 .. n", ErrorKind::Parse,
               "not a declared problem-size variable");
}

TEST(ParserErrors, ConstantInIndexVector) {
  // The Appendix A.2 restriction: no constants in index vectors.
  expect_error(R"(
design d
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i+1] read dims [0 .. n]
body a := a
step i + j
place (i)
)",
               ErrorKind::Validation, "no constant term");
}

TEST(ParserErrors, NonLinearProduct) {
  expect_error(R"(
design d
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i*j] read dims [0 .. n]
body a := a
step i + j
place (i)
)",
               ErrorKind::Parse, "non-linear");
}

TEST(ParserErrors, BodyOnNonStream) {
  expect_error(R"(
design d
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i] read dims [0 .. n]
body q := a
step 2*i + j
place (i)
)",
               ErrorKind::Validation, "not a stream");
}

TEST(ParserErrors, MissingStep) {
  expect_error(R"(
design d
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i] read dims [0 .. n]
body a := a
place (i)
)",
               ErrorKind::Validation, "no step function");
}

TEST(ParserErrors, ErrorsCarryLineNumbers) {
  expect_error("design d\nsizes n >= 1\nloop i = 0 .. @", ErrorKind::Parse,
               "line 3");
}

}  // namespace
}  // namespace systolize::frontend
