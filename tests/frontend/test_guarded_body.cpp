// Guarded basic statements (Sect. 3.1's  if B_j -> S_j  form): the guard
// is an affine condition on the loop indices, evaluated per statement from
// the locally reconstructed index-space point.
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "baseline/sequential.hpp"
#include "frontend/parser.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

#ifndef SYSTOLIZE_DESIGN_DIR
#define SYSTOLIZE_DESIGN_DIR "designs"
#endif

namespace systolize::frontend {
namespace {

const char* kMasked = R"(
design masked
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i]   read   dims [0 .. n]
stream b[j]   read   dims [0 .. n]
stream c[i+j] update dims [0 .. 2*n]
body c := c + a * b when i >= j
step 2*i + j
place (i)
load a = (1)
)";

TEST(GuardedBody, GuardEvaluatesPerIndex) {
  Design d = parse_design(kMasked);
  std::map<std::string, Value> vals{{"a", 3}, {"b", 5}, {"c", 100}};
  d.nest.body()(IntVec{2, 1}, vals);  // i >= j: executes
  EXPECT_EQ(vals.at("c"), 115);
  d.nest.body()(IntVec{1, 2}, vals);  // i < j: masked out
  EXPECT_EQ(vals.at("c"), 115);
  d.nest.body()(IntVec{2, 2}, vals);  // boundary: >= includes equality
  EXPECT_EQ(vals.at("c"), 130);
}

TEST(GuardedBody, SequentialSemanticsAreTriangular) {
  Design d = parse_design(kMasked);
  Env sizes{{"n", Rational(3)}};
  IndexedStore store;
  store.fill(d.nest.stream("a"), sizes, [](const IntVec&) { return 1; });
  store.fill(d.nest.stream("b"), sizes, [](const IntVec&) { return 1; });
  store.fill(d.nest.stream("c"), sizes, [](const IntVec&) { return 0; });
  run_sequential(d.nest, sizes, store);
  // c[k] counts pairs (i,j) with i+j == k and i >= j.
  for (Int k = 0; k <= 6; ++k) {
    Int expect = 0;
    for (Int i = 0; i <= 3; ++i) {
      for (Int j = 0; j <= 3; ++j) {
        if (i + j == k && i >= j) ++expect;
      }
    }
    EXPECT_EQ(store.get("c", IntVec{k}), expect) << "k=" << k;
  }
}

TEST(GuardedBody, SystolicExecutionMatchesSequential) {
  Design d = parse_design(kMasked);
  CompiledProgram prog = compile(d.nest, d.spec);
  for (Int n = 1; n <= 5; ++n) {
    Env sizes{{"n", Rational(n)}};
    IndexedStore expected = make_initial_store(
        d.nest, sizes, [](const std::string& v, const IntVec& p) {
          return static_cast<Value>(v[0] + 3 * p[0]);
        });
    IndexedStore actual = expected;
    run_sequential(d.nest, sizes, expected);
    (void)execute(prog, d.nest, sizes, actual);
    EXPECT_EQ(actual.elements("c"), expected.elements("c")) << "n=" << n;
  }
}

TEST(GuardedBody, LeGuardAndConstants) {
  Design d = parse_design(R"(
design banded
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i]   read   dims [0 .. n]
stream b[j]   read   dims [0 .. n]
stream c[i+j] update dims [0 .. 2*n]
body c := c + a * b when i - j <= 1
step 2*i + j
place (i)
load a = (1)
)");
  std::map<std::string, Value> vals{{"a", 1}, {"b", 1}, {"c", 0}};
  d.nest.body()(IntVec{3, 2}, vals);  // i-j = 1 <= 1: executes
  EXPECT_EQ(vals.at("c"), 1);
  d.nest.body()(IntVec{3, 1}, vals);  // i-j = 2 > 1: masked
  EXPECT_EQ(vals.at("c"), 1);
}

TEST(GuardedBody, ShippedMaskedDesignFileWorksEndToEnd) {
  std::ifstream in(std::string(SYSTOLIZE_DESIGN_DIR) + "/masked_polyprod.sa");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  Design d = parse_design(buf.str());
  CompiledProgram prog = compile(d.nest, d.spec);
  Env sizes{{"n", Rational(4)}};
  IndexedStore expected = make_initial_store(
      d.nest, sizes,
      [](const std::string& v, const IntVec& p) { return v[0] % 7 + p[0]; });
  IndexedStore actual = expected;
  run_sequential(d.nest, sizes, expected);
  (void)execute(prog, d.nest, sizes, actual);
  EXPECT_EQ(actual.elements("c"), expected.elements("c"));
}

TEST(GuardedBody, ShippedBandedMatmulMasksOutsideTheBand) {
  std::ifstream in(std::string(SYSTOLIZE_DESIGN_DIR) + "/banded_matmul.sa");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  Design d = parse_design(buf.str());
  Env sizes{{"n", Rational(4)}};
  IndexedStore store;
  store.fill(d.nest.stream("a"), sizes, [](const IntVec&) { return 1; });
  store.fill(d.nest.stream("b"), sizes, [](const IntVec&) { return 1; });
  store.fill(d.nest.stream("c"), sizes, [](const IntVec&) { return 0; });
  run_sequential(d.nest, sizes, store);
  // All-ones inputs: inside the band i <= j + 2 each c[i,j] accumulates
  // all n+1 products; outside it stays untouched.
  for (Int i = 0; i <= 4; ++i) {
    for (Int j = 0; j <= 4; ++j) {
      EXPECT_EQ(store.get("c", IntVec{i, j}), i <= j + 2 ? 5 : 0)
          << "c[" << i << "," << j << "]";
    }
  }
}

TEST(GuardedBody, ShippedBandedMatmulDifferentialAcrossBackends) {
  // The guard masks computation only; the protocol is full matmul1, so
  // every backend must reproduce the masked sequential result exactly.
  std::ifstream in(std::string(SYSTOLIZE_DESIGN_DIR) + "/banded_matmul.sa");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  Design d = parse_design(buf.str());
  CompiledProgram prog = compile(d.nest, d.spec);
  Env sizes{{"n", Rational(3)}};
  IndexedStore expected = make_initial_store(
      d.nest, sizes, [](const std::string& v, const IntVec& p) {
        return static_cast<Value>(v[0] % 5 + 2 * p[0] - p[p.dim() - 1]);
      });
  IndexedStore fast = expected;
  IndexedStore inst = expected;
  IndexedStore sharded = expected;
  IndexedStore byte = expected;
  run_sequential(d.nest, sizes, expected);

  (void)execute(prog, d.nest, sizes, fast);
  InstantiateOptions wd;
  wd.watchdog.max_rounds = Int{1} << 40;
  (void)execute(prog, d.nest, sizes, inst, wd);
  InstantiateOptions par;
  par.threads = 2;
  (void)execute(prog, d.nest, sizes, sharded, par);
  InstantiateOptions bc;
  bc.backend = Backend::Bytecode;
  (void)execute(prog, d.nest, sizes, byte, bc);

  EXPECT_EQ(fast.elements("c"), expected.elements("c"));
  EXPECT_EQ(inst.elements("c"), expected.elements("c"));
  EXPECT_EQ(sharded.elements("c"), expected.elements("c"));
  EXPECT_EQ(byte.elements("c"), expected.elements("c"));
}

TEST(GuardedBody, MalformedGuardRejected) {
  try {
    (void)parse_design(R"(
design bad
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i]   read   dims [0 .. n]
stream b[j]   read   dims [0 .. n]
stream c[i+j] update dims [0 .. 2*n]
body c := c + a * b when i
step 2*i + j
place (i)
load a = (1)
)");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Parse);
    EXPECT_NE(std::string(e.what()).find(">="), std::string::npos);
  }
}

}  // namespace
}  // namespace systolize::frontend
