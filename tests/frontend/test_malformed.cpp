// Negative-input robustness: malformed .sa source must raise a structured
// Error (Parse or Validation) — never crash, loop, or silently succeed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "frontend/parser.hpp"
#include "support/error.hpp"

namespace systolize::frontend {
namespace {

struct MalformedCase {
  const char* label;
  const char* source;
};

const std::vector<MalformedCase>& corpus() {
  static const std::vector<MalformedCase> cases = {
      {"empty input", ""},
      {"whitespace only", "   \n\t\n"},
      {"comment only", "# nothing here\n"},
      {"design keyword without a name", "design\n"},
      {"unknown top-level keyword", "design d\nbogus i = 0 .. n\n"},
      {"loop without bounds", "design d\nloop i\n"},
      {"loop with half a range", "design d\nloop i = 0 ..\n"},
      {"loop bound is junk", "design d\nloop i = 0 .. @@@\n"},
      {"stream with unbalanced bracket",
       "design d\nloop i = 0 .. n\nstream a[i read dims [0 .. n]\n"},
      {"stream missing dims",
       "design d\nloop i = 0 .. n\nstream a[i] read\n"},
      {"stream with unknown access mode",
       "design d\nloop i = 0 .. n\nstream a[i] scribble dims [0 .. n]\n"},
      {"body references undeclared stream",
       "design d\nsizes n >= 1\nloop i = 0 .. n\n"
       "stream a[i] read dims [0 .. n]\n"
       "body z := z + a\nstep i\nplace ()\n"},
      {"truncated body expression",
       "design d\nsizes n >= 1\nloop i = 0 .. n\n"
       "stream a[i] update dims [0 .. n]\n"
       "body a := a +\nstep i\nplace ()\n"},
      {"step before any loops", "design d\nstep i + j\n"},
      {"binary junk bytes", "\x01\x02\xff\xfe design \x7f\n"},
      {"unterminated parenthesis in place",
       "design d\nsizes n >= 1\nloop i = 0 .. n\nloop j = 0 .. n\n"
       "stream a[i] read dims [0 .. n]\n"
       "body a := a\nstep i + j\nplace (i\n"},
  };
  return cases;
}

TEST(MalformedInput, EveryCorpusEntryRaisesAStructuredError) {
  for (const MalformedCase& mc : corpus()) {
    try {
      Design d = parse_design(mc.source);
      (void)d;
      FAIL() << "accepted malformed input: " << mc.label;
    } catch (const Error& e) {
      EXPECT_TRUE(e.kind() == ErrorKind::Parse ||
                  e.kind() == ErrorKind::Validation)
          << mc.label << " raised " << error_kind_name(e.kind()) << ": "
          << e.what();
      EXPECT_STRNE(e.what(), "") << mc.label;
    }
    // Any other exception type escapes and fails the test — that is the
    // contract: malformed input may only surface as systolize::Error.
  }
}

TEST(MalformedInput, HugeIntegerLiteralDoesNotCrash) {
  // Out-of-range literals may legitimately surface as Overflow instead of
  // Parse; the requirement is a structured Error, not a specific kind.
  const char* src =
      "design d\nsizes n >= 1\n"
      "loop i = 0 .. 99999999999999999999999999\n"
      "stream a[i] read dims [0 .. n]\nbody a := a\nstep i\nplace ()\n";
  EXPECT_THROW({ (void)parse_design(src); }, Error);
}

}  // namespace
}  // namespace systolize::frontend
