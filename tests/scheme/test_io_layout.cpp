// Sect. 7.3 — Equation (5) and duplicate removal, checked directly and
// for geometric consistency: the union of a stream's input boundary
// points must be exactly the set of upstream pipe anchors in the PS box,
// with no point covered twice.
#include "scheme/io_layout.hpp"

#include <gtest/gtest.h>

#include <set>

#include "baseline/runtime_generation.hpp"
#include "designs/catalog.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

bool in_box(const IntVec& y, const IntVec& lo, const IntVec& hi) {
  for (std::size_t i = 0; i < y.dim(); ++i) {
    if (y[i] < lo[i] || y[i] > hi[i]) return false;
  }
  return true;
}

TEST(IoLayout, SingleDimensionSets) {
  StreamMotion motion;
  motion.flow = RatVec{Rational(0), Rational(1)};
  motion.direction = IntVec{0, 1};
  motion.denominator = 1;
  auto sets = derive_io_sets("a", motion);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].dim, 1u);
  EXPECT_TRUE(sets[0].is_input);
  EXPECT_TRUE(sets[0].at_min);   // positive component: enter at min
  EXPECT_FALSE(sets[1].at_min);  // leave at max
}

TEST(IoLayout, NegativeDiagonalSets) {
  StreamMotion motion;
  motion.flow = RatVec{Rational(-1), Rational(-1)};
  motion.direction = IntVec{-1, -1};
  motion.denominator = 1;
  auto sets = derive_io_sets("c", motion);
  ASSERT_EQ(sets.size(), 4u);
  // dim 0 first, inputs at the max side.
  EXPECT_TRUE(sets[0].is_input);
  EXPECT_FALSE(sets[0].at_min);
  EXPECT_TRUE(sets[1].at_min);  // output at min
  // The dim-1 sets exclude the dim-0 same-role corner.
  EXPECT_EQ(sets[2].excluded.size(), 1u);
  EXPECT_EQ(sets[2].excluded[0], (BoundaryRef{0, false}));
  EXPECT_EQ(sets[3].excluded[0], (BoundaryRef{0, true}));
}

TEST(IoLayout, ZeroDirectionRejected) {
  StreamMotion motion;
  motion.direction = IntVec{0, 0};
  EXPECT_THROW((void)derive_io_sets("x", motion), Error);
}

TEST(IoLayout, EnumerationRespectsExclusions) {
  // 2-D box [-2..2]^2, set along dim 1 at max, excluding dim 0 max.
  IoProcessSet set;
  set.dim = 1;
  set.at_min = false;
  set.is_input = true;
  set.excluded = {BoundaryRef{0, false}};
  auto points = enumerate_io_points(set, IntVec{-2, -2}, IntVec{2, 2});
  ASSERT_EQ(points.size(), 4u);  // 5 boundary points minus the corner (2,2)
  for (const IntVec& p : points) {
    EXPECT_EQ(p[1], 2);
    EXPECT_NE(p[0], 2);
  }
}

class IoLayoutGeometry : public ::testing::TestWithParam<std::string> {};

TEST_P(IoLayoutGeometry, InputPointsAreExactlyThePipeAnchors) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(4)}, {"m", Rational(2)}};
  IntVec lo = prog.ps.min.evaluate(sizes);
  IntVec hi = prog.ps.max.evaluate(sizes);
  EnumerationOracle oracle(design.nest, design.spec, sizes);

  for (const StreamPlan& plan : prog.streams) {
    const IntVec& dir = plan.motion.direction;
    // Expected anchors: box points whose upstream neighbour leaves the box.
    std::set<std::vector<Int>> anchors;
    for (const IntVec& y : oracle.ps_points()) {
      if (!in_box(y - dir, lo, hi)) anchors.insert(y.comps());
    }
    // Collected input points, checking disjointness across sets.
    std::set<std::vector<Int>> inputs;
    std::set<std::vector<Int>> outputs;
    for (const IoProcessSet& set : plan.io_sets) {
      for (const IntVec& p : enumerate_io_points(set, lo, hi)) {
        auto& target = set.is_input ? inputs : outputs;
        EXPECT_TRUE(target.insert(p.comps()).second)
            << plan.name << ": duplicate i/o process at " << p.to_string();
      }
    }
    EXPECT_EQ(inputs, anchors) << plan.name << " (" << GetParam() << ")";
    // Output points mirror the anchors downstream.
    std::set<std::vector<Int>> ends;
    for (const IntVec& y : oracle.ps_points()) {
      if (!in_box(y + dir, lo, hi)) ends.insert(y.comps());
    }
    EXPECT_EQ(outputs, ends) << plan.name << " (" << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, IoLayoutGeometry,
                         ::testing::Values("polyprod1", "polyprod2",
                                           "polyprod3", "matmul1", "matmul2",
                                           "matmul3", "matmul4",
                                           "convolution", "correlation",
                                           "fir_bank", "closure"));

}  // namespace
}  // namespace systolize
