// Derivation reports must carry every section of the appendix
// walk-throughs with the right derived values.
#include "scheme/report.hpp"

#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

void expect_contains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "missing: " << needle;
}

TEST(Report, PolyprodD1SectionsAndValues) {
  Design d = polyprod_design1();
  CompiledProgram prog = compile(d.nest, d.spec);
  std::string r = derivation_report(prog, d.nest, d.spec);
  expect_contains(r, "process space basis (Sect. 7.1)");
  expect_contains(r, "PS_min = (0), PS_max = (n)");
  expect_contains(r, "increment (Sect. 7.2.1): (0,1)  (simple place function)");
  expect_contains(r, "first = (col, 0)  (all processes)");
  expect_contains(r, "stationary; loading & recovery vector (1)");
  expect_contains(r, "flow = (1/2)  (direction (1), 1 interposed buffer(s)");
  expect_contains(r, "synchronous step range: 0 .. 3*n");
  expect_contains(r, "step respects the sequential update order");
  expect_contains(r, "PS = CS — no external buffers");
}

TEST(Report, KungLeisersonShowsExternalBuffersAndClauses) {
  Design d = matmul_design2();
  CompiledProgram prog = compile(d.nest, d.spec);
  std::string r = derivation_report(prog, d.nest, d.spec);
  expect_contains(r, "PS_min = (-n, -n), PS_max = (n, n)");
  expect_contains(r, "increment (Sect. 7.2.1): (1,1,1)");
  expect_contains(r, "otherwise null");
  expect_contains(r, "PS strictly contains CS");
  expect_contains(r, "deduped vs dim 0");
}

TEST(Report, ReversedStepIsFlagged) {
  Design d = polyprod_design1();
  ArraySpec reversed(StepFunction(IntVec{-2, -1}),
                     PlaceFunction(IntMatrix{{1, 0}}), {{"a", IntVec{1}}});
  CompiledProgram prog = compile(d.nest, reversed);
  std::string r = derivation_report(prog, d.nest, reversed);
  expect_contains(r, "REVERSES an update chain");
}

TEST(Report, EveryCatalogDesignProducesACompleteReport) {
  for (const Design& d : all_designs()) {
    CompiledProgram prog = compile(d.nest, d.spec);
    std::string r = derivation_report(prog, d.nest, d.spec);
    EXPECT_GT(r.size(), 800u) << d.description;
    for (const Stream& s : d.nest.streams()) {
      expect_contains(r, "stream " + s.name() + ":");
    }
    expect_contains(r, "buffers (Sect. 7.6)");
  }
}

}  // namespace
}  // namespace systolize
