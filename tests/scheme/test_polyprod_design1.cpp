// Appendix D.1 — polynomial product with place.(i,j) = i. Every derived
// quantity is checked against the paper's closed forms.
#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme_test_util.hpp"

namespace systolize {
namespace {

using testutil::env1;
using testutil::eval_expr;
using testutil::eval_point;

class PolyprodD1 : public ::testing::Test {
 protected:
  Design design = polyprod_design1();
  CompiledProgram prog = compile(design.nest, design.spec);
};

TEST_F(PolyprodD1, ProcessSpaceBasisIsZeroToN) {
  // D.1.1: PS_min = 0, PS_max = n.
  for (Int n = 1; n <= 6; ++n) {
    Env env{{"n", Rational(n)}};
    EXPECT_EQ(prog.ps.min.evaluate(env), (IntVec{0}));
    EXPECT_EQ(prog.ps.max.evaluate(env), (IntVec{n}));
  }
}

TEST_F(PolyprodD1, IncrementIsZeroOne) {
  // D.1.2: increment = (0,1); the place function is simple.
  EXPECT_EQ(prog.repeater.increment, (IntVec{0, 1}));
  EXPECT_TRUE(prog.repeater.simple_place);
}

TEST_F(PolyprodD1, SimplePlaceYieldsSingleUnguardedClause) {
  // 7.2.3: one expression covers all processes, no guards needed.
  ASSERT_EQ(prog.repeater.first.size(), 1u);
  ASSERT_EQ(prog.repeater.last.size(), 1u);
  EXPECT_TRUE(prog.repeater.first.pieces()[0].guard.is_trivially_true());
  EXPECT_TRUE(prog.repeater.last.pieces()[0].guard.is_trivially_true());
}

TEST_F(PolyprodD1, FirstLastCount) {
  // D.1.2: first = (col,0), last = (col,n), count = n+1.
  for (Int n = 1; n <= 5; ++n) {
    for (Int col = 0; col <= n; ++col) {
      Env env = env1(n, col);
      EXPECT_EQ(eval_point(prog.repeater.first, env, "first"),
                (IntVec{col, 0}));
      EXPECT_EQ(eval_point(prog.repeater.last, env, "last"), (IntVec{col, n}));
      EXPECT_EQ(eval_expr(prog.repeater.count, env, "count"), n + 1);
    }
  }
}

TEST_F(PolyprodD1, Flows) {
  // D.1.3: flow.a = 0 (stationary), flow.b = 1/2, flow.c = 1.
  const StreamPlan& a = prog.stream_plan("a");
  const StreamPlan& b = prog.stream_plan("b");
  const StreamPlan& c = prog.stream_plan("c");
  EXPECT_TRUE(a.motion.stationary);
  EXPECT_EQ(a.motion.direction, (IntVec{1}));  // loading & recovery vector
  EXPECT_EQ(b.motion.flow, (RatVec{Rational(1, 2)}));
  EXPECT_EQ(b.motion.direction, (IntVec{1}));
  EXPECT_EQ(b.motion.denominator, 2);  // one internal buffer per hop
  EXPECT_EQ(c.motion.flow, (RatVec{Rational(1)}));
  EXPECT_EQ(c.motion.denominator, 1);
}

TEST_F(PolyprodD1, IoRepeaters) {
  // D.1.4: increments 1 for b and c (1 chosen for a); repeaters
  // {0 n 1} for a and b, {0 2n 1} for c.
  for (const auto& [name, last] :
       std::vector<std::pair<std::string, Int>>{{"a", 0}, {"b", 0}, {"c", 0}}) {
    (void)last;
    EXPECT_EQ(prog.stream_plan(name).io.increment_s, (IntVec{1})) << name;
  }
  for (Int n = 1; n <= 5; ++n) {
    for (Int col = 0; col <= n; ++col) {
      Env env = env1(n, col);
      EXPECT_EQ(eval_point(prog.stream_plan("a").io.first_s, env, "first_a"),
                (IntVec{0}));
      EXPECT_EQ(eval_point(prog.stream_plan("a").io.last_s, env, "last_a"),
                (IntVec{n}));
      EXPECT_EQ(eval_point(prog.stream_plan("b").io.first_s, env, "first_b"),
                (IntVec{0}));
      EXPECT_EQ(eval_point(prog.stream_plan("b").io.last_s, env, "last_b"),
                (IntVec{n}));
      EXPECT_EQ(eval_point(prog.stream_plan("c").io.first_s, env, "first_c"),
                (IntVec{0}));
      EXPECT_EQ(eval_point(prog.stream_plan("c").io.last_s, env, "last_c"),
                (IntVec{2 * n}));
      EXPECT_EQ(eval_expr(prog.stream_plan("c").io.count_s, env, "count_c"),
                2 * n + 1);
    }
  }
}

TEST_F(PolyprodD1, SoakAndDrain) {
  // D.1.5: a loads with n-col passes and recovers with col passes;
  // b soaks/drains nothing; c soaks col and drains n-col.
  for (Int n = 1; n <= 5; ++n) {
    for (Int col = 0; col <= n; ++col) {
      Env env = env1(n, col);
      EXPECT_EQ(eval_expr(prog.stream_plan("a").soak, env, "soak_a"), col);
      EXPECT_EQ(eval_expr(prog.stream_plan("a").drain, env, "drain_a"),
                n - col);
      EXPECT_EQ(eval_expr(prog.stream_plan("b").soak, env, "soak_b"), 0);
      EXPECT_EQ(eval_expr(prog.stream_plan("b").drain, env, "drain_b"), 0);
      EXPECT_EQ(eval_expr(prog.stream_plan("c").soak, env, "soak_c"), col);
      EXPECT_EQ(eval_expr(prog.stream_plan("c").drain, env, "drain_c"),
                n - col);
    }
  }
}

TEST_F(PolyprodD1, IoLayout) {
  // D.1.3: one input and one output process per stream at the two ends of
  // the linear array.
  for (const StreamPlan& plan : prog.streams) {
    ASSERT_EQ(plan.io_sets.size(), 2u) << plan.name;
    EXPECT_TRUE(plan.io_sets[0].is_input);
    EXPECT_TRUE(plan.io_sets[0].at_min);  // all flows point rightward
    EXPECT_FALSE(plan.io_sets[1].is_input);
    EXPECT_FALSE(plan.io_sets[1].at_min);
  }
}

TEST_F(PolyprodD1, MatchesOracle) {
  for (Int n = 1; n <= 5; ++n) {
    testutil::check_against_oracle(prog, design.nest, design.spec,
                                   Env{{"n", Rational(n)}});
  }
}

}  // namespace
}  // namespace systolize
