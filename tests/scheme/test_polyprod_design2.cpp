// Appendix D.2 — polynomial product with place.(i,j) = i+j (non-simple).
#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme_test_util.hpp"

namespace systolize {
namespace {

using testutil::env1;
using testutil::eval_expr;
using testutil::eval_point;

class PolyprodD2 : public ::testing::Test {
 protected:
  Design design = polyprod_design2();
  CompiledProgram prog = compile(design.nest, design.spec);
};

TEST_F(PolyprodD2, ProcessSpaceBasis) {
  // D.2.1: PS_min = 0, PS_max = 2n.
  for (Int n = 1; n <= 6; ++n) {
    Env env{{"n", Rational(n)}};
    EXPECT_EQ(prog.ps.min.evaluate(env), (IntVec{0}));
    EXPECT_EQ(prog.ps.max.evaluate(env), (IntVec{2 * n}));
  }
}

TEST_F(PolyprodD2, Increment) {
  // D.2.2: increment = (1,-1); not a simple place function.
  EXPECT_EQ(prog.repeater.increment, (IntVec{1, -1}));
  EXPECT_FALSE(prog.repeater.simple_place);
}

TEST_F(PolyprodD2, FirstLastPiecewise) {
  // D.2.2:
  //   first = if 0<=col<=n -> (0,col)  [] n<=col<=2n -> (col-n,n) fi
  //   last  = if 0<=col<=n -> (col,0)  [] n<=col<=2n -> (n,col-n) fi
  EXPECT_EQ(prog.repeater.first.size(), 2u);
  EXPECT_EQ(prog.repeater.last.size(), 2u);
  for (Int n = 1; n <= 5; ++n) {
    for (Int col = 0; col <= 2 * n; ++col) {
      Env env = env1(n, col);
      IntVec expect_first =
          col <= n ? IntVec{0, col} : IntVec{col - n, n};
      IntVec expect_last = col <= n ? IntVec{col, 0} : IntVec{n, col - n};
      EXPECT_EQ(eval_point(prog.repeater.first, env, "first"), expect_first)
          << "n=" << n << " col=" << col;
      EXPECT_EQ(eval_point(prog.repeater.last, env, "last"), expect_last)
          << "n=" << n << " col=" << col;
      // D.2.2 count: col+1 below the diagonal, 2n-col+1 above; at col == n
      // both alternatives agree.
      Int expect_count = col <= n ? col + 1 : 2 * n - col + 1;
      EXPECT_EQ(eval_expr(prog.repeater.count, env, "count"), expect_count)
          << "n=" << n << " col=" << col;
    }
  }
}

TEST_F(PolyprodD2, Flows) {
  // D.2.3: flow.a = 1, flow.b = 1/2, c stationary with vector 1.
  EXPECT_EQ(prog.stream_plan("a").motion.flow, (RatVec{Rational(1)}));
  EXPECT_EQ(prog.stream_plan("b").motion.flow, (RatVec{Rational(1, 2)}));
  EXPECT_EQ(prog.stream_plan("b").motion.denominator, 2);
  EXPECT_TRUE(prog.stream_plan("c").motion.stationary);
  EXPECT_EQ(prog.stream_plan("c").motion.direction, (IntVec{1}));
}

TEST_F(PolyprodD2, IoRepeaters) {
  // D.2.4: increment_a = 1, increment_b = -1, increment_c = 0 (stationary,
  // vector 1 supplied); repeaters {0 n 1} for a, {n 0 -1} for b,
  // {0 2n 1} for c.
  EXPECT_EQ(prog.stream_plan("a").io.increment_s, (IntVec{1}));
  EXPECT_EQ(prog.stream_plan("b").io.increment_s, (IntVec{-1}));
  EXPECT_EQ(prog.stream_plan("c").io.increment_s, (IntVec{1}));
  for (Int n = 1; n <= 5; ++n) {
    for (Int col = 0; col <= 2 * n; ++col) {
      Env env = env1(n, col);
      EXPECT_EQ(eval_point(prog.stream_plan("a").io.first_s, env, "first_a"),
                (IntVec{0}));
      EXPECT_EQ(eval_point(prog.stream_plan("a").io.last_s, env, "last_a"),
                (IntVec{n}));
      EXPECT_EQ(eval_point(prog.stream_plan("b").io.first_s, env, "first_b"),
                (IntVec{n}));
      EXPECT_EQ(eval_point(prog.stream_plan("b").io.last_s, env, "last_b"),
                (IntVec{0}));
      EXPECT_EQ(eval_point(prog.stream_plan("c").io.first_s, env, "first_c"),
                (IntVec{0}));
      EXPECT_EQ(eval_point(prog.stream_plan("c").io.last_s, env, "last_c"),
                (IntVec{2 * n}));
    }
  }
}

TEST_F(PolyprodD2, SoakAndDrain) {
  // D.2.5 closed forms.
  for (Int n = 1; n <= 5; ++n) {
    for (Int col = 0; col <= 2 * n; ++col) {
      Env env = env1(n, col);
      Int soak_a = col <= n ? 0 : col - n;
      Int soak_b = col <= n ? n - col : 0;
      Int drain_a = col <= n ? n - col : 0;
      Int drain_b = col <= n ? 0 : col - n;
      EXPECT_EQ(eval_expr(prog.stream_plan("a").soak, env, "soak_a"), soak_a)
          << "n=" << n << " col=" << col;
      EXPECT_EQ(eval_expr(prog.stream_plan("b").soak, env, "soak_b"), soak_b)
          << "n=" << n << " col=" << col;
      EXPECT_EQ(eval_expr(prog.stream_plan("a").drain, env, "drain_a"),
                drain_a)
          << "n=" << n << " col=" << col;
      EXPECT_EQ(eval_expr(prog.stream_plan("b").drain, env, "drain_b"),
                drain_b)
          << "n=" << n << " col=" << col;
      // D.2.5: recovery (soak_c) = col, loading (drain_c) = 2n - col,
      // identical for both alternatives.
      EXPECT_EQ(eval_expr(prog.stream_plan("c").soak, env, "soak_c"), col);
      EXPECT_EQ(eval_expr(prog.stream_plan("c").drain, env, "drain_c"),
                2 * n - col);
    }
  }
}

TEST_F(PolyprodD2, EndpointChoiceOfStatementClauseIsImmaterial) {
  // Sect. 7.4 claims any basic statement x gives the same first_s/last_s.
  CompileOptions other;
  other.statement_clause = 1;
  CompiledProgram alt = compile(design.nest, design.spec, other);
  for (Int n = 1; n <= 4; ++n) {
    for (Int col = 0; col <= 2 * n; ++col) {
      Env env = env1(n, col);
      for (const std::string s : {"a", "b", "c"}) {
        EXPECT_EQ(eval_point(prog.stream_plan(s).io.first_s, env, "first_s"),
                  eval_point(alt.stream_plan(s).io.first_s, env, "first_s"))
            << s << " n=" << n << " col=" << col;
        EXPECT_EQ(eval_point(prog.stream_plan(s).io.last_s, env, "last_s"),
                  eval_point(alt.stream_plan(s).io.last_s, env, "last_s"))
            << s << " n=" << n << " col=" << col;
      }
    }
  }
}

TEST_F(PolyprodD2, MatchesOracle) {
  for (Int n = 1; n <= 5; ++n) {
    testutil::check_against_oracle(prog, design.nest, design.spec,
                                   Env{{"n", Rational(n)}});
  }
}

}  // namespace
}  // namespace systolize
