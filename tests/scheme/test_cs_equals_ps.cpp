// Exact CS == PS decision (Sect. 7.6: buffer processes exist only for the
// points of PS \ CS), verified against brute-force coverage for every
// catalog design.
#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme/first_last.hpp"
#include "scheme_test_util.hpp"

namespace systolize {
namespace {

TEST(CsEqualsPs, MatchesBruteForceForAllDesigns) {
  for (const Design& d : all_designs()) {
    CompiledProgram prog = compile(d.nest, d.spec);
    bool symbolic = cs_equals_ps(prog.repeater, prog.assumptions);
    bool brute = true;
    for (Int n = 1; n <= 4 && brute; ++n) {
      Env sizes{{"n", Rational(n)}, {"m", Rational(2)}};
      EnumerationOracle oracle(d.nest, d.spec, sizes);
      for (const IntVec& y : oracle.ps_points()) {
        if (!oracle.in_computation_space(y)) brute = false;
      }
    }
    EXPECT_EQ(symbolic, brute) << d.description;
  }
}

TEST(CsEqualsPs, PaperCases) {
  // D.2 has guarded clauses yet tiles the whole array: CS == PS.
  Design d2 = polyprod_design2();
  CompiledProgram p2 = compile(d2.nest, d2.spec);
  EXPECT_TRUE(cs_equals_ps(p2.repeater, p2.assumptions));

  // E.2's corners are outside CS.
  Design e2 = matmul_design2();
  CompiledProgram pe = compile(e2.nest, e2.spec);
  EXPECT_FALSE(cs_equals_ps(pe.repeater, pe.assumptions));

  // Simple place functions trivially tile (Sect. 7.2.3).
  Design d1 = polyprod_design1();
  CompiledProgram p1 = compile(d1.nest, d1.spec);
  EXPECT_TRUE(cs_equals_ps(p1.repeater, p1.assumptions));
}

}  // namespace
}  // namespace systolize
