// The catalog designs beyond the paper's appendices, checked against the
// enumeration oracle, plus cross-design invariance properties.
#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme_test_util.hpp"

namespace systolize {
namespace {

TEST(Matmul3, StationaryAWithVerticalLoading) {
  Design d = matmul_design3();
  CompiledProgram prog = compile(d.nest, d.spec);
  EXPECT_TRUE(prog.stream_plan("a").motion.stationary);
  EXPECT_EQ(prog.stream_plan("a").motion.direction, (IntVec{0, 1}));
  EXPECT_EQ(prog.stream_plan("b").motion.flow,
            (RatVec{Rational(1), Rational(0)}));
  EXPECT_EQ(prog.stream_plan("c").motion.flow,
            (RatVec{Rational(0), Rational(1)}));
  EXPECT_EQ(prog.repeater.increment, (IntVec{0, 1, 0}));
  for (Int n = 1; n <= 3; ++n) {
    testutil::check_against_oracle(prog, d.nest, d.spec,
                                   Env{{"n", Rational(n)}});
  }
}

TEST(Convolution, CounterFlowingStreams) {
  Design d = convolution_design();
  CompiledProgram prog = compile(d.nest, d.spec);
  EXPECT_EQ(prog.stream_plan("w").motion.flow, (RatVec{Rational(1)}));
  EXPECT_EQ(prog.stream_plan("x").motion.flow, (RatVec{Rational(-1)}));
  EXPECT_TRUE(prog.stream_plan("y").motion.stationary);
  // x enters at the max boundary (negative flow).
  const auto& x_sets = prog.stream_plan("x").io_sets;
  ASSERT_EQ(x_sets.size(), 2u);
  EXPECT_TRUE(x_sets[0].is_input);
  EXPECT_FALSE(x_sets[0].at_min);
  for (Int n = 1; n <= 4; ++n) {
    for (Int m = 1; m <= 3; ++m) {
      testutil::check_against_oracle(
          prog, d.nest, d.spec, Env{{"n", Rational(n)}, {"m", Rational(m)}});
    }
  }
}

TEST(Correlation, FlowOneThirdNeedsTwoBuffersPerHop) {
  Design d = correlation_design();
  CompiledProgram prog = compile(d.nest, d.spec);
  EXPECT_EQ(prog.stream_plan("c").motion.flow, (RatVec{Rational(1, 3)}));
  EXPECT_EQ(prog.stream_plan("c").motion.denominator, 3);
  EXPECT_EQ(prog.stream_plan("b").motion.flow, (RatVec{Rational(1)}));
  EXPECT_EQ(prog.stream_plan("a").motion.stationary, true);
  for (Int n = 1; n <= 4; ++n) {
    testutil::check_against_oracle(prog, d.nest, d.spec,
                                   Env{{"n", Rational(n)}});
  }
}

TEST(AllDesigns, StatementClauseChoiceNeverChangesIoEndpoints) {
  // Sect. 7.4: "any statement can be used" as x in Equations (6)/(7).
  for (const Design& d : all_designs()) {
    CompiledProgram base = compile(d.nest, d.spec);
    for (std::size_t clause = 1; clause < base.repeater.first.size();
         ++clause) {
      CompileOptions opt;
      opt.statement_clause = clause;
      CompiledProgram alt = compile(d.nest, d.spec, opt);
      Env sizes{{"n", Rational(3)}, {"m", Rational(2)}};
      EnumerationOracle oracle(d.nest, d.spec, sizes);
      for (const IntVec& y : oracle.ps_points()) {
        Env env = testutil::with_coords(sizes, base.coords, y);
        for (const StreamPlan& plan : base.streams) {
          const AffinePoint* v0 = plan.io.first_s.select(env);
          const AffinePoint* v1 =
              alt.stream_plan(plan.name).io.first_s.select(env);
          ASSERT_EQ(v0 == nullptr, v1 == nullptr)
              << d.description << " " << plan.name << " at " << y.to_string();
          if (v0 != nullptr) {
            EXPECT_EQ(v0->evaluate(env), v1->evaluate(env))
                << d.description << " " << plan.name << " at "
                << y.to_string();
          }
        }
      }
    }
  }
}

TEST(AllDesigns, OverlappingClausesAgreeOnValues) {
  // The paper notes (D.2.2) that guard overlaps happen only where the
  // projected points lie on several faces and the expressions then agree.
  for (const Design& d : all_designs()) {
    CompiledProgram prog = compile(d.nest, d.spec);
    Env sizes{{"n", Rational(3)}, {"m", Rational(2)}};
    EnumerationOracle oracle(d.nest, d.spec, sizes);
    for (const IntVec& y : oracle.ps_points()) {
      Env env = testutil::with_coords(sizes, prog.coords, y);
      const AffinePoint* seen = nullptr;
      for (const auto& piece : prog.repeater.first.pieces()) {
        if (!piece.guard.holds(env)) continue;
        if (seen != nullptr) {
          EXPECT_EQ(seen->evaluate(env), piece.value.evaluate(env))
              << d.description << " at " << y.to_string();
        }
        seen = &piece.value;
      }
    }
  }
}

}  // namespace
}  // namespace systolize
