// The synchronous space-time schedule (Equation (1), step/place
// interplay) and its parallelism profile.
#include "scheme/schedule.hpp"

#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme/process_space.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

TEST(Schedule, EveryStatementScheduledExactlyOnce) {
  for (const Design& d : all_designs()) {
    Env env{{"n", Rational(3)}, {"m", Rational(2)}};
    Schedule s = derive_schedule(d.nest, d.spec, env);
    Int total = 0;
    for (const auto& [t, row] : s.steps) total += row.size();
    EXPECT_EQ(total, d.nest.index_space_size(env)) << d.description;
    StepRange range = derive_step_range(d.nest, d.spec.step());
    EXPECT_EQ(s.min_step, range.min.evaluate(env).to_integer());
    EXPECT_EQ(s.max_step, range.max.evaluate(env).to_integer());
  }
}

TEST(Schedule, PolyprodD1ParallelismProfile) {
  // D.1 with step.(i,j) = 2i+j: at step t the active processes are the i
  // with 2i+j = t, 0 <= i,j <= n — a staircase of width floor(n/2)+1
  // (every other process busy, the b-stream's flow-1/2 signature); span
  // is 3n+1.
  Design d = polyprod_design1();
  Env env{{"n", Rational(4)}};
  Schedule s = derive_schedule(d.nest, d.spec, env);
  EXPECT_EQ(s.span(), 13);      // 3n+1
  EXPECT_EQ(s.max_width(), 3);  // floor(n/2)+1
  EXPECT_EQ(s.width_at(s.min_step), 1);
  EXPECT_EQ(s.width_at(s.max_step), 1);
}

TEST(Schedule, KungLeisersonThirdOfArrayActive) {
  // E.2: (2n+1)^2 points but only ~1/3 are ever active at once.
  Design d = matmul_design2();
  Env env{{"n", Rational(4)}};
  Schedule s = derive_schedule(d.nest, d.spec, env);
  EXPECT_EQ(s.span(), 13);  // 3n+1
  // Peak parallelism cannot exceed the computation-space size.
  EXPECT_LE(s.max_width(), 61);
  EXPECT_GT(s.max_width(), 15);
}

TEST(Schedule, Equation1ViolationDetected) {
  // step.(i,j) = i+j with place.(i,j) = i+j maps (1,0) and (0,1) to the
  // same (step, process) pair.
  Design d = polyprod_design1();
  ArraySpec bad(StepFunction(IntVec{1, 1}), PlaceFunction(IntMatrix{{1, 1}}),
                {{"c", IntVec{1}}});
  try {
    (void)derive_schedule(d.nest, bad, Env{{"n", Rational(2)}});
    FAIL() << "expected Inconsistent";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Inconsistent);
    EXPECT_NE(std::string(e.what()).find("Equation (1)"), std::string::npos);
  }
}

TEST(Schedule, Ascii1dRendering) {
  Design d = polyprod_design1();
  Env env{{"n", Rational(2)}};
  Schedule s = derive_schedule(d.nest, d.spec, env);
  std::string text = render_schedule_1d(s, IntVec{0}, IntVec{2});
  EXPECT_NE(text.find("step \\ col"), std::string::npos);
  // 3n+1 = 7 step rows plus the header.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 8);
  EXPECT_NE(text.find('*'), std::string::npos);
  // 2-D arrays are rejected.
  EXPECT_THROW(
      (void)render_schedule_1d(s, IntVec{0, 0}, IntVec{2, 2}), Error);
}

TEST(Schedule, WidthSumsToStatements) {
  Design d = convolution_design();
  Env env{{"n", Rational(5)}, {"m", Rational(2)}};
  Schedule s = derive_schedule(d.nest, d.spec, env);
  Int total = 0;
  for (Int t = s.min_step; t <= s.max_step; ++t) total += s.width_at(t);
  EXPECT_EQ(total, d.nest.index_space_size(env));
}

}  // namespace
}  // namespace systolize
