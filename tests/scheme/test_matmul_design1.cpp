// Appendix E.1 — matrix product with place.(i,j,k) = (i,j) (simple).
#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme_test_util.hpp"

namespace systolize {
namespace {

using testutil::env2;
using testutil::eval_expr;
using testutil::eval_point;

class MatmulE1 : public ::testing::Test {
 protected:
  Design design = matmul_design1();
  CompiledProgram prog = compile(design.nest, design.spec);
};

TEST_F(MatmulE1, ProcessSpaceBasis) {
  // E.1.1: PS_min = (0,0), PS_max = (n,n).
  for (Int n = 1; n <= 5; ++n) {
    Env env{{"n", Rational(n)}};
    EXPECT_EQ(prog.ps.min.evaluate(env), (IntVec{0, 0}));
    EXPECT_EQ(prog.ps.max.evaluate(env), (IntVec{n, n}));
  }
}

TEST_F(MatmulE1, IncrementAndSimplicity) {
  // E.1.2: increment = (0,0,1); simple place (parallelized inner loop).
  EXPECT_EQ(prog.repeater.increment, (IntVec{0, 0, 1}));
  EXPECT_TRUE(prog.repeater.simple_place);
  EXPECT_EQ(prog.repeater.first.size(), 1u);
  EXPECT_TRUE(prog.repeater.first.pieces()[0].guard.is_trivially_true());
}

TEST_F(MatmulE1, FirstLastCount) {
  // E.1.2: first = (col,row,0), last = (col,row,n), count = n+1.
  for (Int n = 1; n <= 4; ++n) {
    for (Int col = 0; col <= n; ++col) {
      for (Int row = 0; row <= n; ++row) {
        Env env = env2(n, col, row);
        EXPECT_EQ(eval_point(prog.repeater.first, env, "first"),
                  (IntVec{col, row, 0}));
        EXPECT_EQ(eval_point(prog.repeater.last, env, "last"),
                  (IntVec{col, row, n}));
        EXPECT_EQ(eval_expr(prog.repeater.count, env, "count"), n + 1);
      }
    }
  }
}

TEST_F(MatmulE1, Flows) {
  // E.1.3: flow.a = (0,1), flow.b = (1,0), flow.c = (0,0) with loading &
  // recovery vector (1,0).
  EXPECT_EQ(prog.stream_plan("a").motion.flow,
            (RatVec{Rational(0), Rational(1)}));
  EXPECT_EQ(prog.stream_plan("b").motion.flow,
            (RatVec{Rational(1), Rational(0)}));
  EXPECT_TRUE(prog.stream_plan("c").motion.stationary);
  EXPECT_EQ(prog.stream_plan("c").motion.direction, (IntVec{1, 0}));
}

TEST_F(MatmulE1, IoLayout) {
  // E.1.3: a's i/o processes lie on the horizontal boundaries (dimension
  // 1), b's and c's on the vertical ones (dimension 0).
  const auto& a_sets = prog.stream_plan("a").io_sets;
  ASSERT_EQ(a_sets.size(), 2u);
  EXPECT_EQ(a_sets[0].dim, 1u);
  EXPECT_TRUE(a_sets[0].is_input);
  EXPECT_TRUE(a_sets[0].at_min);

  const auto& b_sets = prog.stream_plan("b").io_sets;
  ASSERT_EQ(b_sets.size(), 2u);
  EXPECT_EQ(b_sets[0].dim, 0u);

  const auto& c_sets = prog.stream_plan("c").io_sets;
  ASSERT_EQ(c_sets.size(), 2u);
  EXPECT_EQ(c_sets[0].dim, 0u);
}

TEST_F(MatmulE1, IoRepeaters) {
  // E.1.4 summary table: increment_a = (0,1), increment_b = (1,0),
  // increment_c = (1,0); first_a = (col,0), last_a = (col,n);
  // first_b = first_c = (0,row), last_b = last_c = (n,row).
  EXPECT_EQ(prog.stream_plan("a").io.increment_s, (IntVec{0, 1}));
  EXPECT_EQ(prog.stream_plan("b").io.increment_s, (IntVec{1, 0}));
  EXPECT_EQ(prog.stream_plan("c").io.increment_s, (IntVec{1, 0}));
  for (Int n = 1; n <= 4; ++n) {
    for (Int col = 0; col <= n; ++col) {
      for (Int row = 0; row <= n; ++row) {
        Env env = env2(n, col, row);
        EXPECT_EQ(eval_point(prog.stream_plan("a").io.first_s, env, "first_a"),
                  (IntVec{col, 0}));
        EXPECT_EQ(eval_point(prog.stream_plan("a").io.last_s, env, "last_a"),
                  (IntVec{col, n}));
        EXPECT_EQ(eval_point(prog.stream_plan("b").io.first_s, env, "first_b"),
                  (IntVec{0, row}));
        EXPECT_EQ(eval_point(prog.stream_plan("b").io.last_s, env, "last_b"),
                  (IntVec{n, row}));
        EXPECT_EQ(eval_point(prog.stream_plan("c").io.first_s, env, "first_c"),
                  (IntVec{0, row}));
        EXPECT_EQ(eval_point(prog.stream_plan("c").io.last_s, env, "last_c"),
                  (IntVec{n, row}));
      }
    }
  }
}

TEST_F(MatmulE1, SoakAndDrain) {
  // E.1.5: no soaking or draining for a and b; c loads with n-col passes
  // (drain_c) and recovers with col passes (soak_c).
  for (Int n = 1; n <= 4; ++n) {
    for (Int col = 0; col <= n; ++col) {
      for (Int row = 0; row <= n; ++row) {
        Env env = env2(n, col, row);
        EXPECT_EQ(eval_expr(prog.stream_plan("a").soak, env, "soak_a"), 0);
        EXPECT_EQ(eval_expr(prog.stream_plan("a").drain, env, "drain_a"), 0);
        EXPECT_EQ(eval_expr(prog.stream_plan("b").soak, env, "soak_b"), 0);
        EXPECT_EQ(eval_expr(prog.stream_plan("b").drain, env, "drain_b"), 0);
        EXPECT_EQ(eval_expr(prog.stream_plan("c").soak, env, "soak_c"), col);
        EXPECT_EQ(eval_expr(prog.stream_plan("c").drain, env, "drain_c"),
                  n - col);
      }
    }
  }
}

TEST_F(MatmulE1, NoBuffersNeeded) {
  // E.1.6: no fractional flow and CS == PS, so no buffers of either kind.
  for (const StreamPlan& plan : prog.streams) {
    EXPECT_EQ(plan.motion.denominator, 1) << plan.name;
  }
}

TEST_F(MatmulE1, MatchesOracle) {
  for (Int n = 1; n <= 4; ++n) {
    testutil::check_against_oracle(prog, design.nest, design.spec,
                                   Env{{"n", Rational(n)}});
  }
}

}  // namespace
}  // namespace systolize
