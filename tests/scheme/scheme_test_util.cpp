#include "scheme_test_util.hpp"

namespace systolize::testutil {

Env with_coords(const Env& sizes, const std::vector<Symbol>& coords,
                const IntVec& y) {
  Env env = sizes;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    env[coords[i].name()] = Rational(y[i]);
  }
  return env;
}

void check_against_oracle(const CompiledProgram& compiled,
                          const LoopNest& nest, const ArraySpec& spec,
                          const Env& sizes) {
  EnumerationOracle oracle(nest, spec, sizes);

  // Process space basis.
  ASSERT_EQ(compiled.ps.min.evaluate(sizes), oracle.ps_min());
  ASSERT_EQ(compiled.ps.max.evaluate(sizes), oracle.ps_max());
  ASSERT_EQ(compiled.repeater.increment, oracle.increment());

  for (const IntVec& y : oracle.ps_points()) {
    Env env = with_coords(sizes, compiled.coords, y);
    const std::string at = " at y=" + y.to_string();

    // Computation space membership and chords.
    if (oracle.in_computation_space(y)) {
      const auto& chord = oracle.chord_at(y);
      EXPECT_EQ(eval_point(compiled.repeater.first, env, "first" + at),
                chord.first)
          << "first" << at;
      EXPECT_EQ(eval_point(compiled.repeater.last, env, "last" + at),
                chord.last)
          << "last" << at;
      EXPECT_EQ(eval_expr(compiled.repeater.count, env, "count" + at),
                chord.count)
          << "count" << at;
    } else {
      EXPECT_FALSE(compiled.repeater.first.covers(env))
          << "first should be null (buffer point)" << at;
    }

    for (const StreamPlan& plan : compiled.streams) {
      ASSERT_EQ(plan.io.increment_s, oracle.increment_s(plan.name))
          << plan.name;
      auto pipe = oracle.pipe_at(plan.name, y);
      const std::string what = plan.name + at;
      if (pipe.has_value()) {
        EXPECT_EQ(eval_point(plan.io.first_s, env, "first_s " + what),
                  pipe->first_s())
            << "first_s " << what;
        EXPECT_EQ(eval_point(plan.io.last_s, env, "last_s " + what),
                  pipe->last_s())
            << "last_s " << what;
        EXPECT_EQ(eval_expr(plan.io.count_s, env, "count_s " + what),
                  pipe->count())
            << "count_s " << what;
      } else {
        EXPECT_FALSE(plan.io.first_s.covers(env))
            << "first_s should be null (empty pipe) for " << what;
      }

      if (oracle.in_computation_space(y)) {
        EXPECT_EQ(eval_expr(plan.soak, env, "soak " + what),
                  oracle.soak_at(plan.name, y))
            << "soak " << what;
        EXPECT_EQ(eval_expr(plan.drain, env, "drain " + what),
                  oracle.drain_at(plan.name, y))
            << "drain " << what;
      }
    }
  }
}

}  // namespace systolize::testutil
