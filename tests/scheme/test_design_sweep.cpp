// Exhaustive sweep over small-coefficient systolic arrays: for the
// polynomial-product and matrix-product source programs, every (step,
// place) pair in a bounded coefficient space that passes validation is
// compiled, cross-checked against the enumeration oracle, and executed
// against the sequential ground truth. This probes the scheme far beyond
// the paper's hand-picked designs.
#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/increment.hpp"
#include "scheme_test_util.hpp"

namespace systolize {
namespace {

/// Try to complete a spec with loading & recovery vectors for its
/// stationary streams; nullopt when no neighbour vector works.
std::optional<ArraySpec> complete_spec(const LoopNest& nest,
                                       StepFunction step,
                                       PlaceFunction place) {
  // Candidate loading vectors: unit and diagonal neighbour vectors.
  std::vector<IntVec> candidates;
  const std::size_t d = place.space_dim();
  if (d == 1) {
    candidates = {IntVec{1}, IntVec{-1}};
  } else {
    candidates = {IntVec{1, 0}, IntVec{0, 1}, IntVec{1, 1},
                  IntVec{-1, 0}, IntVec{0, -1}};
  }
  std::map<std::string, IntVec> loading;
  for (const Stream& s : nest.streams()) {
    RatVec flow;
    try {
      flow = compute_flow(s, step, place);
    } catch (const Error&) {
      return std::nullopt;  // step inconsistent with this stream
    }
    if (flow.is_zero()) loading[s.name()] = candidates.front();
  }
  ArraySpec spec(std::move(step), std::move(place), std::move(loading));
  try {
    validate_array(nest, spec);
    (void)derive_increment(spec.step(), spec.place());
  } catch (const Error&) {
    return std::nullopt;
  }
  return spec;
}

/// Returns false when the design falls outside the scheme's stated scope
/// (the compile step raises Unsupported — e.g. non-integer face solutions
/// or strided pipelines, both Sect.-8 future work).
bool check_design(const LoopNest& nest, const ArraySpec& spec,
                  const Env& sizes, const std::string& label) {
  CompiledProgram prog = [&] {
    try {
      return compile(nest, spec);
    } catch (const Error& e) {
      if (e.kind() == ErrorKind::Unsupported) return CompiledProgram{};
      throw;
    }
  }();
  if (prog.depth == 0) return false;  // out of scope
  testutil::check_against_oracle(prog, nest, spec, sizes);

  IndexedStore expected = make_initial_store(
      nest, sizes, [](const std::string& var, const IntVec& p) {
        Value h = var.empty() ? 1 : var[0] * 7;
        for (std::size_t i = 0; i < p.dim(); ++i) h = h * 13 + p[i] + 5;
        return h % 11 - 5;
      });
  IndexedStore actual = expected;
  run_sequential(nest, sizes, expected);
  (void)execute(prog, nest, sizes, actual);
  for (const Stream& s : nest.streams()) {
    EXPECT_EQ(actual.elements(s.name()), expected.elements(s.name()))
        << label << " stream " << s.name();
  }
  return true;
}

TEST(DesignSweep, AllValidTwoLoopArrays) {
  LoopNest nest = polyprod_design1().nest;
  int valid = 0;
  for (Int p0 = -2; p0 <= 2; ++p0) {
    for (Int p1 = -2; p1 <= 2; ++p1) {
      if (p0 == 0 && p1 == 0) continue;
      for (Int s0 = -2; s0 <= 2; ++s0) {
        for (Int s1 = -2; s1 <= 2; ++s1) {
          if (s0 == 0 && s1 == 0) continue;
          auto spec = complete_spec(nest, StepFunction(IntVec{s0, s1}),
                                    PlaceFunction(IntMatrix{{p0, p1}}));
          if (!spec.has_value()) continue;
          std::string label = "place(" + std::to_string(p0) + "," +
                              std::to_string(p1) + ") step(" +
                              std::to_string(s0) + "," +
                              std::to_string(s1) + ")";
          SCOPED_TRACE(label);
          if (check_design(nest, *spec, Env{{"n", Rational(3)}}, label)) {
            ++valid;
          }
          if (HasFatalFailure()) return;
        }
      }
    }
  }
  // The sweep must have exercised a healthy population, including the
  // paper's own two designs.
  EXPECT_GE(valid, 20) << "sweep unexpectedly sparse";
}

TEST(DesignSweep, SampledThreeLoopArrays) {
  LoopNest nest = matmul_design1().nest;
  int valid = 0;
  const std::vector<IntVec> steps = {IntVec{1, 1, 1}, IntVec{1, 2, 1},
                                     IntVec{2, 1, 1}};
  for (const IntVec& st : steps) {
    for (Int a0 = -1; a0 <= 1; ++a0) {
      for (Int a1 = -1; a1 <= 1; ++a1) {
        for (Int a2 = -1; a2 <= 1; ++a2) {
          for (Int b0 = -1; b0 <= 1; ++b0) {
            for (Int b1 = -1; b1 <= 1; ++b1) {
              for (Int b2 = -1; b2 <= 1; ++b2) {
                IntMatrix place{{a0, a1, a2}, {b0, b1, b2}};
                if (place.rank() != 2) continue;
                auto spec = complete_spec(nest, StepFunction(st),
                                          PlaceFunction(place));
                if (!spec.has_value()) continue;
                std::string label =
                    "place" + place.to_string() + " step" + st.to_string();
                SCOPED_TRACE(label);
                if (check_design(nest, *spec, Env{{"n", Rational(2)}},
                                 label)) {
                  ++valid;
                }
                if (HasFatalFailure()) return;
              }
            }
          }
        }
      }
    }
  }
  EXPECT_GE(valid, 30) << "sweep unexpectedly sparse";
}

}  // namespace
}  // namespace systolize
