// Sect. 7.1 vertex/sign analysis and the step-range helper.
#include "scheme/process_space.hpp"

#include <gtest/gtest.h>

#include "designs/catalog.hpp"

namespace systolize {
namespace {

TEST(ProcessSpace, MixedSignCoefficients) {
  // place.(i,j,k) = (i-k, j-k): PS_min needs rb for k, lb for i and j.
  Design d = matmul_design2();
  ProcessSpaceBasis ps = derive_process_space(d.nest, d.spec.place());
  Env env{{"n", Rational(7)}};
  EXPECT_EQ(ps.min.evaluate(env), (IntVec{-7, -7}));
  EXPECT_EQ(ps.max.evaluate(env), (IntVec{7, 7}));
  // The basis is coordinate-free.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(ps.min[i].is_coord_free());
    EXPECT_TRUE(ps.max[i].is_coord_free());
  }
}

TEST(ProcessSpace, BasisBoundsEveryProjectedPoint) {
  for (const Design& d : all_designs()) {
    ProcessSpaceBasis ps = derive_process_space(d.nest, d.spec.place());
    Env env{{"n", Rational(4)}, {"m", Rational(3)}};
    IntVec lo = ps.min.evaluate(env);
    IntVec hi = ps.max.evaluate(env);
    bool touched_lo = false;
    bool touched_hi = false;
    for (const IntVec& x : d.nest.enumerate_index_space(env)) {
      IntVec y = d.spec.place().apply(x);
      for (std::size_t i = 0; i < y.dim(); ++i) {
        EXPECT_GE(y[i], lo[i]) << d.description;
        EXPECT_LE(y[i], hi[i]) << d.description;
        if (y[i] == lo[i]) touched_lo = true;
        if (y[i] == hi[i]) touched_hi = true;
      }
    }
    // Smallest enclosing box: both extremes are attained.
    EXPECT_TRUE(touched_lo) << d.description;
    EXPECT_TRUE(touched_hi) << d.description;
  }
}

TEST(ProcessSpace, BoxGuardHoldsExactlyInsideTheBox) {
  Design d = matmul_design2();
  ProcessSpaceBasis ps = derive_process_space(d.nest, d.spec.place());
  std::vector<Symbol> coords{canonical_coord(0), canonical_coord(1)};
  Guard g = ps_box_guard(ps, coords);
  for (Int col = -4; col <= 4; ++col) {
    for (Int row = -4; row <= 4; ++row) {
      Env env{{"n", Rational(3)},
              {"col", Rational(col)},
              {"row", Rational(row)}};
      bool inside = col >= -3 && col <= 3 && row >= -3 && row <= 3;
      EXPECT_EQ(g.holds(env), inside) << col << "," << row;
    }
  }
}

TEST(StepRange, MatchesBruteForceExtremes) {
  for (const Design& d : all_designs()) {
    StepRange range = derive_step_range(d.nest, d.spec.step());
    Env env{{"n", Rational(4)}, {"m", Rational(2)}};
    Int lo = range.min.evaluate(env).to_integer();
    Int hi = range.max.evaluate(env).to_integer();
    Int brute_lo = std::numeric_limits<Int>::max();
    Int brute_hi = std::numeric_limits<Int>::min();
    for (const IntVec& x : d.nest.enumerate_index_space(env)) {
      Int s = d.spec.step().apply(x);
      brute_lo = std::min(brute_lo, s);
      brute_hi = std::max(brute_hi, s);
    }
    EXPECT_EQ(lo, brute_lo) << d.description;
    EXPECT_EQ(hi, brute_hi) << d.description;
  }
}

TEST(StepRange, NegativeCoefficients) {
  // step.(i,j) = i - j on 0..n x 0..n ranges over [-n, n].
  Design d = polyprod_design1();
  StepRange range = derive_step_range(d.nest, StepFunction(IntVec{1, -1}));
  Env env{{"n", Rational(5)}};
  EXPECT_EQ(range.min.evaluate(env).to_integer(), -5);
  EXPECT_EQ(range.max.evaluate(env).to_integer(), 5);
}

}  // namespace
}  // namespace systolize
