// Shared helpers for checking the symbolic scheme against the paper's
// appendix formulas and against the enumeration oracle.
#pragma once

#include <gtest/gtest.h>

#include "baseline/runtime_generation.hpp"
#include "scheme/compiler.hpp"

namespace systolize::testutil {

/// Environment binding problem size n and a 1-D process coordinate.
inline Env env1(Int n, Int col) {
  return Env{{"n", Rational(n)}, {"col", Rational(col)}};
}

/// Environment binding problem size n and 2-D process coordinates.
inline Env env2(Int n, Int col, Int row) {
  return Env{{"n", Rational(n)},
             {"col", Rational(col)},
             {"row", Rational(row)}};
}

/// Evaluate a piecewise point; fails the test if no guard covers env.
inline IntVec eval_point(const Piecewise<AffinePoint>& pw, const Env& env,
                         const std::string& what) {
  const AffinePoint* v = pw.select(env);
  EXPECT_NE(v, nullptr) << what << ": no clause covers the environment";
  if (v == nullptr) return IntVec{};
  return v->evaluate(env);
}

/// Evaluate a piecewise expression; fails the test if uncovered.
inline Int eval_expr(const Piecewise<AffineExpr>& pw, const Env& env,
                     const std::string& what) {
  const AffineExpr* v = pw.select(env);
  EXPECT_NE(v, nullptr) << what << ": no clause covers the environment";
  if (v == nullptr) return 0;
  return v->evaluate(env).to_integer();
}

/// Check the whole compiled program against the enumeration oracle at one
/// problem size: PS basis, chords (first/last/count), io repeaters
/// (first_s/last_s/count_s per pipe) and soak/drain at every process.
void check_against_oracle(const CompiledProgram& compiled,
                          const LoopNest& nest, const ArraySpec& spec,
                          const Env& sizes);

/// Bind process coordinates on top of a size-only environment.
[[nodiscard]] Env with_coords(const Env& sizes,
                              const std::vector<Symbol>& coords,
                              const IntVec& y);

}  // namespace systolize::testutil
