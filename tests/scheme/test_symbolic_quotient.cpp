// Unit tests for the symbolic // operator and the stationary element
// increment (both used throughout the scheme and otherwise only tested
// indirectly).
#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme/first_last.hpp"
#include "scheme/io_comm.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

const Symbol kN = size_symbol("n");
const Symbol kCol = coord_symbol("col");

TEST(SymbolicQuotient, ScalarAlongUnitVector) {
  // ((n) - (col)) // (1) = n - col.
  AffinePoint p{AffineExpr(kCol)};
  AffinePoint q{AffineExpr(kN)};
  auto m = symbolic_quotient_along(p, q, IntVec{1});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, AffineExpr(kN) - AffineExpr(kCol));
}

TEST(SymbolicQuotient, DiagonalDirection) {
  // ((n,n) - (col,col)) // (1,1) = n - col.
  AffinePoint p{AffineExpr(kCol), AffineExpr(kCol)};
  AffinePoint q{AffineExpr(kN), AffineExpr(kN)};
  auto m = symbolic_quotient_along(p, q, IntVec{1, 1});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, AffineExpr(kN) - AffineExpr(kCol));
}

TEST(SymbolicQuotient, NegativeDirection) {
  // ((0) - (col)) // (-1) = col.
  AffinePoint p{AffineExpr(kCol)};
  AffinePoint q{AffineExpr(0)};
  auto m = symbolic_quotient_along(p, q, IntVec{-1});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, AffineExpr(kCol));
}

TEST(SymbolicQuotient, NonCollinearReturnsNullopt) {
  // (n, 0) is not a multiple of (1,1) unless n == 0 identically.
  AffinePoint p{AffineExpr(0), AffineExpr(0)};
  AffinePoint q{AffineExpr(kN), AffineExpr(0)};
  EXPECT_FALSE(symbolic_quotient_along(p, q, IntVec{1, 1}).has_value());
}

TEST(SymbolicQuotient, ZeroVectorThrows) {
  AffinePoint p{AffineExpr(0)};
  EXPECT_THROW((void)symbolic_quotient_along(p, p, IntVec{0}), Error);
}

TEST(StationaryElementIncrement, MatchesLoadingVectorForPaperDesigns) {
  // For every stationary stream of every catalog design, the element
  // variation along the loading direction happens to equal the loading
  // vector itself — the property that made the paper's single-vector
  // convention work.
  for (const Design& d : all_designs()) {
    IntVec increment = d.spec.place().null_generator();
    if (d.spec.step().apply(increment) < 0) increment = -increment;
    for (const Stream& s : d.nest.streams()) {
      StreamMotion m = d.spec.motion_of(s);
      if (!m.stationary) continue;
      EXPECT_EQ(stationary_element_increment(s, d.spec.place(), m.direction,
                                             increment),
                m.direction)
          << d.description << " stream " << s.name();
    }
  }
}

TEST(StationaryElementIncrement, RunsAgainstLoadingDirectionForNegatedPlace) {
  // place.(i,j) = -i makes process col hold a[-col]: the element index
  // decreases along the +1 loading direction.
  Design d = polyprod_design1();
  PlaceFunction place(IntMatrix{{-1, 0}});
  IntVec increment{0, 1};  // null generator, step-oriented
  EXPECT_EQ(stationary_element_increment(d.nest.stream("a"), place, IntVec{1},
                                         increment),
            (IntVec{-1}));
}

}  // namespace
}  // namespace systolize
