// Appendix E.2 — matrix product with place.(i,j,k) = (i-k, j-k): the
// Kung-Leiserson array. PS != CS, so buffer processes appear, and every
// derived quantity is piecewise.
#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "scheme/buffers.hpp"
#include "scheme_test_util.hpp"

namespace systolize {
namespace {

using testutil::env2;
using testutil::eval_expr;
using testutil::eval_point;

class MatmulE2 : public ::testing::Test {
 protected:
  Design design = matmul_design2();
  CompiledProgram prog = compile(design.nest, design.spec);
};

TEST_F(MatmulE2, ProcessSpaceBasis) {
  // E.2.1: PS_min = (-n,-n), PS_max = (n,n).
  for (Int n = 1; n <= 5; ++n) {
    Env env{{"n", Rational(n)}};
    EXPECT_EQ(prog.ps.min.evaluate(env), (IntVec{-n, -n}));
    EXPECT_EQ(prog.ps.max.evaluate(env), (IntVec{n, n}));
  }
}

TEST_F(MatmulE2, Increment) {
  // E.2.2: increment = (1,1,1); three faces, three clauses.
  EXPECT_EQ(prog.repeater.increment, (IntVec{1, 1, 1}));
  EXPECT_FALSE(prog.repeater.simple_place);
  EXPECT_EQ(prog.repeater.first.size(), 3u);
  EXPECT_EQ(prog.repeater.last.size(), 3u);
}

// Paper closed forms for first (E.2.2).
IntVec expected_first(Int n, Int col, Int row) {
  if (0 <= row - col && row - col <= n && 0 <= -col && -col <= n) {
    return IntVec{0, row - col, -col};
  }
  if (0 <= col - row && col - row <= n && 0 <= -row && -row <= n) {
    return IntVec{col - row, 0, -row};
  }
  return IntVec{col, row, 0};  // 0 <= col,row <= n
}

// Paper closed forms for last (E.2.2).
IntVec expected_last(Int n, Int col, Int row) {
  if (0 <= col - row && col - row <= n && 0 <= col && col <= n) {
    return IntVec{n, row - col + n, -col + n};
  }
  if (0 <= row - col && row - col <= n && 0 <= row && row <= n) {
    return IntVec{col - row + n, n, -row + n};
  }
  return IntVec{col + n, row + n, n};  // -n <= col,row <= 0
}

bool in_cs(Int n, Int col, Int row) {
  // A process is in CS iff some clause of `first` covers it.
  return (0 <= row - col && row - col <= n && 0 <= -col && -col <= n) ||
         (0 <= col - row && col - row <= n && 0 <= -row && -row <= n) ||
         (0 <= col && col <= n && 0 <= row && row <= n);
}

TEST_F(MatmulE2, FirstLastOverWholeProcessSpace) {
  for (Int n = 1; n <= 4; ++n) {
    for (Int col = -n; col <= n; ++col) {
      for (Int row = -n; row <= n; ++row) {
        Env env = env2(n, col, row);
        if (!in_cs(n, col, row)) {
          EXPECT_FALSE(prog.repeater.first.covers(env))
              << "expected null process at (" << col << "," << row << ")";
          EXPECT_TRUE(is_external_buffer_point(prog.repeater, env));
          continue;
        }
        EXPECT_EQ(eval_point(prog.repeater.first, env, "first"),
                  expected_first(n, col, row))
            << "n=" << n << " (" << col << "," << row << ")";
        EXPECT_EQ(eval_point(prog.repeater.last, env, "last"),
                  expected_last(n, col, row))
            << "n=" << n << " (" << col << "," << row << ")";
      }
    }
  }
}

TEST_F(MatmulE2, Flows) {
  // E.2.3: flow.a = (0,1), flow.b = (1,0), flow.c = (-1,-1).
  EXPECT_EQ(prog.stream_plan("a").motion.flow,
            (RatVec{Rational(0), Rational(1)}));
  EXPECT_EQ(prog.stream_plan("b").motion.flow,
            (RatVec{Rational(1), Rational(0)}));
  EXPECT_EQ(prog.stream_plan("c").motion.flow,
            (RatVec{Rational(-1), Rational(-1)}));
  EXPECT_FALSE(prog.stream_plan("c").motion.stationary);
}

TEST_F(MatmulE2, CStreamHasTwoIoSetsWithDedup) {
  // E.2.3: two non-zero flow components for c give two boundary sets; the
  // second set omits the corners already covered by the first.
  const auto& sets = prog.stream_plan("c").io_sets;
  ASSERT_EQ(sets.size(), 4u);
  EXPECT_EQ(sets[0].dim, 0u);
  EXPECT_TRUE(sets[0].is_input);
  EXPECT_FALSE(sets[0].at_min);  // negative flow: input at the max side
  EXPECT_TRUE(sets[0].excluded.empty());
  EXPECT_EQ(sets[2].dim, 1u);
  ASSERT_EQ(sets[2].excluded.size(), 1u);
  EXPECT_EQ(sets[2].excluded[0], (BoundaryRef{0, false}));
}

TEST_F(MatmulE2, IoIncrements) {
  // E.2.4: applying the index maps to increment yields (1,1) for all three.
  for (const std::string s : {"a", "b", "c"}) {
    EXPECT_EQ(prog.stream_plan(s).io.increment_s, (IntVec{1, 1})) << s;
  }
}

TEST_F(MatmulE2, IoEndpointsMatchPaper) {
  // E.2.4 closed forms (checked semantically over the grid).
  for (Int n = 1; n <= 4; ++n) {
    for (Int col = -n; col <= n; ++col) {
      for (Int row = -n; row <= n; ++row) {
        Env env = env2(n, col, row);
        // first_a: (0,-col) when 0<=-col<=n, (col,0) when 0<=col<=n.
        IntVec fa = col <= 0 ? IntVec{0, -col} : IntVec{col, 0};
        EXPECT_EQ(eval_point(prog.stream_plan("a").io.first_s, env, "first_a"),
                  fa)
            << "(" << col << "," << row << ") n=" << n;
        IntVec la = col <= 0 ? IntVec{n + col, n} : IntVec{n, n - col};
        EXPECT_EQ(eval_point(prog.stream_plan("a").io.last_s, env, "last_a"),
                  la);
        IntVec fb = row <= 0 ? IntVec{-row, 0} : IntVec{0, row};
        EXPECT_EQ(eval_point(prog.stream_plan("b").io.first_s, env, "first_b"),
                  fb);
        IntVec lb = row <= 0 ? IntVec{n, n + row} : IntVec{n - row, n};
        EXPECT_EQ(eval_point(prog.stream_plan("b").io.last_s, env, "last_b"),
                  lb);
        // first_c: (0,row-col) when row>=col, (col-row,0) when col>=row —
        // but only where the pipe is non-empty (|col-row| <= n).
        if (col - row > n || row - col > n) {
          EXPECT_FALSE(prog.stream_plan("c").io.first_s.covers(env))
              << "c pipe should be empty at (" << col << "," << row << ")";
          continue;
        }
        IntVec fc = row >= col ? IntVec{0, row - col} : IntVec{col - row, 0};
        EXPECT_EQ(eval_point(prog.stream_plan("c").io.first_s, env, "first_c"),
                  fc)
            << "(" << col << "," << row << ") n=" << n;
      }
    }
  }
}

TEST_F(MatmulE2, BufferRegionPassesOnlyAAndB) {
  // E.2.6/E.2.7: buffers (|col-row| > n) pass n-|col|+1 elements of a and
  // n-|row|+1 of b, and nothing of c.
  for (Int n = 1; n <= 4; ++n) {
    for (Int col = -n; col <= n; ++col) {
      for (Int row = -n; row <= n; ++row) {
        if (col - row <= n && row - col <= n) continue;  // not a buffer
        Env env = env2(n, col, row);
        Int pass_a = col <= 0 ? n + col + 1 : n - col + 1;
        Int pass_b = row <= 0 ? n + row + 1 : n - row + 1;
        EXPECT_EQ(
            eval_expr(prog.stream_plan("a").io.count_s, env, "pass_a"),
            pass_a)
            << "(" << col << "," << row << ") n=" << n;
        EXPECT_EQ(
            eval_expr(prog.stream_plan("b").io.count_s, env, "pass_b"),
            pass_b)
            << "(" << col << "," << row << ") n=" << n;
        EXPECT_FALSE(prog.stream_plan("c").io.count_s.covers(env))
            << "c should pass nothing through buffers";
      }
    }
  }
}

TEST_F(MatmulE2, SoakDrainMatchPaperSamples) {
  // Spot-check E.2.5's hand-derived soak values on the third clause
  // (0 <= col,row <= n): the consistent sub-alternatives give soak_a = 0,
  // soak_b = 0 (the first statement already uses the pipe's first
  // element) and soak_c = min(col,row) (split as col when row >= col,
  // row otherwise).
  for (Int n = 2; n <= 4; ++n) {
    for (Int col = 0; col <= n; ++col) {
      for (Int row = 0; row <= n; ++row) {
        Env env = env2(n, col, row);
        EXPECT_EQ(eval_expr(prog.stream_plan("a").soak, env, "soak_a"), 0);
        EXPECT_EQ(eval_expr(prog.stream_plan("b").soak, env, "soak_b"), 0);
        Int soak_c = row >= col ? col : row;
        EXPECT_EQ(eval_expr(prog.stream_plan("c").soak, env, "soak_c"),
                  soak_c)
            << "(" << col << "," << row << ") n=" << n;
      }
    }
  }
}

TEST_F(MatmulE2, MatchesOracle) {
  for (Int n = 1; n <= 4; ++n) {
    testutil::check_against_oracle(prog, design.nest, design.spec,
                                   Env{{"n", Rational(n)}});
  }
}

}  // namespace
}  // namespace systolize
