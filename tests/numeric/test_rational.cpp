#include "numeric/rational.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace systolize {
namespace {

TEST(Rational, NormalizesSignAndGcd) {
  Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_EQ(Rational(-8, -2), Rational(4));
}

TEST(Rational, ZeroDenominatorThrows) {
  try {
    Rational r(1, 0);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::DivideByZero);
  }
}

TEST(Rational, Arithmetic) {
  Rational half(1, 2);
  Rational third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(5), Rational(5));
}

TEST(Rational, IntegerConversion) {
  EXPECT_TRUE(Rational(4, 2).is_integer());
  EXPECT_EQ(Rational(4, 2).to_integer(), 2);
  EXPECT_FALSE(Rational(3, 2).is_integer());
  EXPECT_THROW((void)Rational(3, 2).to_integer(), Error);
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

TEST(Rational, ReciprocalOfZeroThrows) {
  EXPECT_THROW((void)Rational(0).reciprocal(), Error);
}

TEST(Rational, CrossReductionAvoidsOverflow) {
  // (2^40 / 3) * (3 / 2^40) must not overflow intermediates.
  Rational big(Int{1} << 40, 3);
  Rational small(3, Int{1} << 40);
  EXPECT_EQ(big * small, Rational(1));
}

TEST(Rational, OverflowDetected) {
  Rational huge(std::numeric_limits<Int>::max());
  try {
    Rational r = huge * huge;
    FAIL() << "expected overflow, got " << r.to_string();
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Overflow);
  }
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(3).to_string(), "3");
  EXPECT_EQ(Rational(-1, 2).to_string(), "-1/2");
}

class RationalFieldAxioms : public ::testing::TestWithParam<std::pair<Int, Int>> {};

TEST_P(RationalFieldAxioms, AddMulConsistency) {
  auto [p, q] = GetParam();
  Rational a(p, q);
  Rational b(q, p == 0 ? 1 : p);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ(a + Rational(0), a);
  EXPECT_EQ(a * Rational(1), a);
  EXPECT_EQ(a - a, Rational(0));
  if (!a.is_zero()) {
    EXPECT_EQ(a / a, Rational(1));
  }
  EXPECT_EQ((a + b) * Rational(2), a * 2 + b * 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RationalFieldAxioms,
                         ::testing::Values(std::pair<Int, Int>{0, 1},
                                           std::pair<Int, Int>{3, 7},
                                           std::pair<Int, Int>{-4, 6},
                                           std::pair<Int, Int>{12, -8},
                                           std::pair<Int, Int>{-5, -15}));

}  // namespace
}  // namespace systolize
