#include <gtest/gtest.h>

#include "numeric/int_matrix.hpp"
#include "numeric/rat_matrix.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

TEST(IntMatrix, ApplyAndRows) {
  IntMatrix m{{1, 0, -1}, {0, 1, -1}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.apply(IntVec{3, 4, 1}), (IntVec{2, 3}));
  EXPECT_EQ(m.row(1), (IntVec{0, 1, -1}));
  EXPECT_EQ(m.col(2), (IntVec{-1, -1}));
}

TEST(IntMatrix, WithoutCol) {
  IntMatrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.without_col(1), (IntMatrix{{1, 3}, {4, 6}}));
  EXPECT_THROW((void)m.without_col(3), Error);
}

TEST(IntMatrix, Rank) {
  EXPECT_EQ((IntMatrix{{1, 0}, {0, 1}}).rank(), 2u);
  EXPECT_EQ((IntMatrix{{1, 1}, {2, 2}}).rank(), 1u);
  EXPECT_EQ((IntMatrix{{1, 0, -1}, {0, 1, -1}}).rank(), 2u);
}

TEST(IntMatrix, NullSpaceBasisIsNormalized) {
  // Kung-Leiserson place: null space spanned by (1,1,1).
  IntMatrix place{{1, 0, -1}, {0, 1, -1}};
  auto basis = place.null_space_basis();
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(basis[0], (IntVec{1, 1, 1}));

  // place = (i,j): null (0,0,1).
  auto basis2 = IntMatrix{{1, 0, 0}, {0, 1, 0}}.null_space_basis();
  ASSERT_EQ(basis2.size(), 1u);
  EXPECT_EQ(basis2[0], (IntVec{0, 0, 1}));

  // place = (i+j) on r=2: null (1,-1), first component positive.
  auto basis3 = IntMatrix{{1, 1}}.null_space_basis();
  ASSERT_EQ(basis3.size(), 1u);
  EXPECT_EQ(basis3[0], (IntVec{1, -1}));
}

TEST(IntMatrix, NullSpaceMembersMapToZero) {
  IntMatrix m{{2, 4, -6}, {1, 0, 3}};
  for (const IntVec& v : m.null_space_basis()) {
    EXPECT_TRUE(m.apply(v).is_zero()) << v.to_string();
  }
}

TEST(RatMatrix, InverseRoundTrip) {
  RatMatrix m{{Rational(2), Rational(1)}, {Rational(1), Rational(1)}};
  RatMatrix inv = m.inverse();
  EXPECT_EQ(m.multiply(inv), RatMatrix::identity(2));
  EXPECT_EQ(inv.multiply(m), RatMatrix::identity(2));
}

TEST(RatMatrix, SingularInverseThrows) {
  RatMatrix m{{Rational(1), Rational(2)}, {Rational(2), Rational(4)}};
  try {
    (void)m.inverse();
    FAIL() << "expected Singular";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Singular);
  }
}

TEST(RatMatrix, Solve) {
  RatMatrix m{{Rational(1), Rational(1)}, {Rational(1), Rational(-1)}};
  RatVec x = m.solve(RatVec{Rational(3), Rational(1)});
  EXPECT_EQ(x, (RatVec{Rational(2), Rational(1)}));
}

TEST(RatMatrix, SolveUnique) {
  // Overdetermined but consistent.
  RatMatrix m{{Rational(1), Rational(0)},
              {Rational(0), Rational(1)},
              {Rational(1), Rational(1)}};
  auto x = m.solve_unique(RatVec{Rational(2), Rational(3), Rational(5)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, (RatVec{Rational(2), Rational(3)}));

  // Inconsistent.
  EXPECT_FALSE(
      m.solve_unique(RatVec{Rational(2), Rational(3), Rational(6)}).has_value());

  // Underdetermined.
  RatMatrix u{{Rational(1), Rational(1)}};
  EXPECT_FALSE(u.solve_unique(RatVec{Rational(1)}).has_value());
}

TEST(RatMatrix, NullSpaceDimensionTheorem) {
  // rank + nullity == cols (used implicitly by Theorem 1).
  RatMatrix m{{Rational(1), Rational(2), Rational(3)},
              {Rational(2), Rational(4), Rational(6)}};
  EXPECT_EQ(m.rank() + m.null_space_basis().size(), m.cols());
}

}  // namespace
}  // namespace systolize
