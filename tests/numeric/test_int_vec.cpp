#include "numeric/int_vec.hpp"

#include <gtest/gtest.h>

#include "numeric/rat_vec.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

TEST(IntVec, BasicArithmetic) {
  IntVec a{1, 2, 3};
  IntVec b{4, -5, 6};
  EXPECT_EQ(a + b, (IntVec{5, -3, 9}));
  EXPECT_EQ(a - b, (IntVec{-3, 7, -3}));
  EXPECT_EQ(a * 3, (IntVec{3, 6, 9}));
  EXPECT_EQ(-a, (IntVec{-1, -2, -3}));
}

TEST(IntVec, DimensionMismatchThrows) {
  IntVec a{1, 2};
  IntVec b{1, 2, 3};
  EXPECT_THROW((void)(a + b), Error);
  EXPECT_THROW((void)a.dot(b), Error);
}

TEST(IntVec, Dot) {
  EXPECT_EQ((IntVec{1, 2, 3}).dot(IntVec{4, 5, 6}), 32);
  EXPECT_EQ((IntVec{1, -1}).dot(IntVec{1, 1}), 0);
}

TEST(IntVec, Content) {
  EXPECT_EQ((IntVec{0, -8}).content(), 8);
  EXPECT_EQ((IntVec{6, 9, 15}).content(), 3);
  EXPECT_EQ((IntVec{0, 0}).content(), 0);
  EXPECT_EQ((IntVec{3, 3, 3}).content(), 3);
}

TEST(IntVec, ExactDivision) {
  EXPECT_EQ((IntVec{0, -8}).exact_div_by(8), (IntVec{0, -1}));
  EXPECT_THROW((void)(IntVec{3, 4}).exact_div_by(2), Error);
}

TEST(IntVec, QuotientAlong) {
  // The paper's x // y.
  EXPECT_EQ((IntVec{6, -6}).quotient_along(IntVec{1, -1}), 6);
  EXPECT_EQ((IntVec{0, 0, 0}).quotient_along(IntVec{1, 2, 3}), 0);
  EXPECT_EQ((IntVec{0, 0}).quotient_along(IntVec{0, 0}), 0);
  EXPECT_THROW((void)(IntVec{1, 2}).quotient_along(IntVec{1, 1}), Error);
  EXPECT_THROW((void)(IntVec{1, 0}).quotient_along(IntVec{0, 0}), Error);
  // Negative quotients are fine.
  EXPECT_EQ((IntVec{-4, 4}).quotient_along(IntVec{1, -1}), -4);
}

TEST(IntVec, NeighbourPredicate) {
  EXPECT_TRUE((IntVec{1, -1}).is_neighbour_offset());
  EXPECT_TRUE((IntVec{0, 0}).is_neighbour_offset());
  EXPECT_FALSE((IntVec{2, 0}).is_neighbour_offset());
}

TEST(IntVec, CheckedGcdNearInt64Limits) {
  // The magnitude of INT64_MIN is 2^63 — computable as the gcd of the
  // magnitudes, but not representable as a positive Int. The historic
  // implementation negated INT64_MIN (UB); the checked one raises.
  EXPECT_THROW((void)checked_gcd(INT64_MIN, INT64_MIN), Error);
  EXPECT_THROW((void)checked_gcd(INT64_MIN, 0), Error);
  // Any second argument that knocks the magnitude below 2^63 is fine.
  EXPECT_EQ(checked_gcd(INT64_MIN, 2), 2);
  EXPECT_EQ(checked_gcd(2, INT64_MIN), 2);
  EXPECT_EQ(checked_gcd(INT64_MIN, INT64_MAX), 1);
  EXPECT_EQ(checked_gcd(INT64_MAX, INT64_MAX), INT64_MAX);
  EXPECT_EQ(gcd(-INT64_MAX, INT64_MAX), INT64_MAX);
}

TEST(IntVec, NormalizedWithNearLimitCoefficients) {
  // The gcd-normalization path used by the increment derivation
  // (null_generator -> normalized): primitive direction, orientation
  // preserved, overflow-checked at the extremes.
  EXPECT_EQ((IntVec{INT64_MAX, INT64_MAX}).normalized(), (IntVec{1, 1}));
  EXPECT_EQ((IntVec{INT64_MAX, -INT64_MAX}).normalized(), (IntVec{1, -1}));
  EXPECT_EQ((IntVec{0, INT64_MAX}).normalized(), (IntVec{0, 1}));
  EXPECT_EQ((IntVec{6, -4}).normalized(), (IntVec{3, -2}));
  EXPECT_EQ((IntVec{-6, -4}).normalized(), (IntVec{-3, -2}));
  EXPECT_EQ((IntVec{0, 0}).normalized(), (IntVec{0, 0}));
  // content() itself is the overflow-checked step.
  EXPECT_THROW((void)(IntVec{INT64_MIN, INT64_MIN}).content(), Error);
  EXPECT_THROW((void)(IntVec{INT64_MIN, INT64_MIN}).normalized(), Error);
}

TEST(RatVec, DenominatorLcmAndScaling) {
  RatVec f{Rational(1, 2), Rational(1, 3)};
  EXPECT_EQ(f.denominator_lcm(), 6);
  EXPECT_EQ(f.scaled_to_integer(), (IntVec{3, 2}));
  RatVec whole{Rational(2), Rational(-1)};
  EXPECT_EQ(whole.denominator_lcm(), 1);
  EXPECT_TRUE(whole.is_integral());
  EXPECT_EQ(whole.to_int_vec(), (IntVec{2, -1}));
  EXPECT_FALSE(f.is_integral());
  EXPECT_THROW((void)f.to_int_vec(), Error);
}

TEST(RatVec, Arithmetic) {
  RatVec a{Rational(1, 2), Rational(1)};
  RatVec b{Rational(1, 2), Rational(-1)};
  EXPECT_EQ(a + b, (RatVec{Rational(1), Rational(0)}));
  EXPECT_TRUE((a - a).is_zero());
  EXPECT_EQ(a * Rational(2), (RatVec{Rational(1), Rational(2)}));
}

}  // namespace
}  // namespace systolize
