#include "support/error.hpp"

#include <gtest/gtest.h>

namespace systolize {
namespace {

TEST(ErrorKindName, EveryKindHasAStableName) {
  EXPECT_STREQ(error_kind_name(ErrorKind::Overflow), "Overflow");
  EXPECT_STREQ(error_kind_name(ErrorKind::DivideByZero), "DivideByZero");
  EXPECT_STREQ(error_kind_name(ErrorKind::Dimension), "Dimension");
  EXPECT_STREQ(error_kind_name(ErrorKind::Singular), "Singular");
  EXPECT_STREQ(error_kind_name(ErrorKind::NotRepresentable),
               "NotRepresentable");
  EXPECT_STREQ(error_kind_name(ErrorKind::Validation), "Validation");
  EXPECT_STREQ(error_kind_name(ErrorKind::Inconsistent), "Inconsistent");
  EXPECT_STREQ(error_kind_name(ErrorKind::Unsupported), "Unsupported");
  EXPECT_STREQ(error_kind_name(ErrorKind::Runtime), "Runtime");
  EXPECT_STREQ(error_kind_name(ErrorKind::Parse), "Parse");
  EXPECT_STREQ(error_kind_name(ErrorKind::Timeout), "Timeout");
  EXPECT_STREQ(error_kind_name(ErrorKind::Cancelled), "Cancelled");
  EXPECT_STREQ(error_kind_name(ErrorKind::Overload), "Overload");
  EXPECT_STREQ(error_kind_name(ErrorKind::Io), "Io");
  EXPECT_STREQ(error_kind_name(ErrorKind::Internal), "Internal");
}

TEST(ErrorKindName, RoundTripsThroughFromName) {
  for (ErrorKind kind :
       {ErrorKind::Overflow, ErrorKind::DivideByZero, ErrorKind::Dimension,
        ErrorKind::Singular, ErrorKind::NotRepresentable,
        ErrorKind::Validation, ErrorKind::Inconsistent, ErrorKind::Unsupported,
        ErrorKind::Runtime, ErrorKind::Parse, ErrorKind::Timeout,
        ErrorKind::Cancelled, ErrorKind::Overload, ErrorKind::Io,
        ErrorKind::Internal}) {
    EXPECT_EQ(error_kind_from_name(error_kind_name(kind)), kind);
  }
  EXPECT_EQ(error_kind_from_name("NoSuchKind"), ErrorKind::Internal);
  EXPECT_EQ(error_kind_from_name(""), ErrorKind::Internal);
}

TEST(ErrorKindRetryable, TransientKindsRetryTerminalKindsDoNot) {
  // Retryable: transient conditions a fresh attempt can outlive.
  EXPECT_TRUE(error_kind_retryable(ErrorKind::Runtime));
  EXPECT_TRUE(error_kind_retryable(ErrorKind::Timeout));
  EXPECT_TRUE(error_kind_retryable(ErrorKind::Overload));
  EXPECT_TRUE(error_kind_retryable(ErrorKind::Io));
  // Terminal: properties of the request (or bugs) that retry cannot fix.
  EXPECT_FALSE(error_kind_retryable(ErrorKind::Overflow));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::DivideByZero));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::Dimension));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::Singular));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::NotRepresentable));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::Validation));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::Inconsistent));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::Unsupported));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::Parse));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::Cancelled));
  EXPECT_FALSE(error_kind_retryable(ErrorKind::Internal));
}

TEST(Error, RetryableMethodMatchesKindClassification) {
  EXPECT_TRUE(Error(ErrorKind::Timeout, "deadline").retryable());
  EXPECT_FALSE(Error(ErrorKind::Parse, "bad token").retryable());
}

TEST(Error, CarriesKindMessageAndOptionalDiagnostic) {
  Error plain(ErrorKind::Parse, "bad token");
  EXPECT_EQ(plain.kind(), ErrorKind::Parse);
  EXPECT_STREQ(plain.what(), "bad token");
  EXPECT_TRUE(plain.diagnostic().empty());

  Error rich(ErrorKind::Runtime, "deadlock", "{\"reason\":\"deadlock\"}");
  EXPECT_EQ(rich.kind(), ErrorKind::Runtime);
  EXPECT_EQ(rich.diagnostic(), "{\"reason\":\"deadlock\"}");
}

TEST(Error, RaiseOverloadPreservesDiagnostic) {
  try {
    raise(ErrorKind::Runtime, "stalled", "{\"blocked\":[]}");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Runtime);
    EXPECT_EQ(e.diagnostic(), "{\"blocked\":[]}");
  }
}

}  // namespace
}  // namespace systolize
