#include "support/error.hpp"

#include <gtest/gtest.h>

namespace systolize {
namespace {

TEST(ErrorKindName, EveryKindHasAStableName) {
  EXPECT_STREQ(error_kind_name(ErrorKind::Overflow), "Overflow");
  EXPECT_STREQ(error_kind_name(ErrorKind::DivideByZero), "DivideByZero");
  EXPECT_STREQ(error_kind_name(ErrorKind::Dimension), "Dimension");
  EXPECT_STREQ(error_kind_name(ErrorKind::Singular), "Singular");
  EXPECT_STREQ(error_kind_name(ErrorKind::NotRepresentable),
               "NotRepresentable");
  EXPECT_STREQ(error_kind_name(ErrorKind::Validation), "Validation");
  EXPECT_STREQ(error_kind_name(ErrorKind::Inconsistent), "Inconsistent");
  EXPECT_STREQ(error_kind_name(ErrorKind::Unsupported), "Unsupported");
  EXPECT_STREQ(error_kind_name(ErrorKind::Runtime), "Runtime");
  EXPECT_STREQ(error_kind_name(ErrorKind::Parse), "Parse");
}

TEST(Error, CarriesKindMessageAndOptionalDiagnostic) {
  Error plain(ErrorKind::Parse, "bad token");
  EXPECT_EQ(plain.kind(), ErrorKind::Parse);
  EXPECT_STREQ(plain.what(), "bad token");
  EXPECT_TRUE(plain.diagnostic().empty());

  Error rich(ErrorKind::Runtime, "deadlock", "{\"reason\":\"deadlock\"}");
  EXPECT_EQ(rich.kind(), ErrorKind::Runtime);
  EXPECT_EQ(rich.diagnostic(), "{\"reason\":\"deadlock\"}");
}

TEST(Error, RaiseOverloadPreservesDiagnostic) {
  try {
    raise(ErrorKind::Runtime, "stalled", "{\"blocked\":[]}");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Runtime);
    EXPECT_EQ(e.diagnostic(), "{\"blocked\":[]}");
  }
}

}  // namespace
}  // namespace systolize
