// Appendix A requirement/restriction enforcement on source programs.
#include "loopnest/validate.hpp"

#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

Symbol n_sym() { return size_symbol("n"); }

Guard n_ge_1() {
  Guard g;
  g.add(Constraint{AffineExpr(1), AffineExpr(n_sym())});
  return g;
}

StatementBody noop_body() {
  return [](std::map<std::string, Value>&) {};
}

Stream unit_stream(const std::string& name, IntMatrix m,
                   std::size_t var_dims) {
  std::vector<VarDim> dims(var_dims,
                           VarDim{AffineExpr(0), AffineExpr(n_sym())});
  return Stream(name, std::move(m), std::move(dims), StreamAccess::Read);
}

void expect_invalid(const LoopNest& nest, const std::string& fragment) {
  try {
    validate_source(nest);
    FAIL() << "expected Validation error containing '" << fragment << "'";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Validation) << e.what();
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
  }
}

TEST(SourceValidation, CatalogDesignsAllValidate) {
  for (const Design& d : all_designs()) {
    EXPECT_NO_THROW(validate_source(d.nest)) << d.description;
  }
}

TEST(SourceValidation, SingleLoopRejected) {
  LoopNest nest("one", {LoopSpec{"i", AffineExpr(0), AffineExpr(n_sym()), 1}},
                {}, {n_sym()}, n_ge_1(), noop_body());
  expect_invalid(nest, "at least two loops");
}

TEST(SourceValidation, NonUnitStepRejected) {
  LoopNest nest("st",
                {LoopSpec{"i", AffineExpr(0), AffineExpr(n_sym()), 2},
                 LoopSpec{"j", AffineExpr(0), AffineExpr(n_sym()), 1}},
                {unit_stream("a", IntMatrix{{1, 0}}, 1)}, {n_sym()}, n_ge_1(),
                noop_body());
  expect_invalid(nest, "step");
}

TEST(SourceValidation, BoundsNotImpliedBySizeAssumptionsRejected) {
  // Loop i = n .. 0 is empty for n >= 1 — lb <= rb is violated.
  LoopNest nest("rev",
                {LoopSpec{"i", AffineExpr(n_sym()), AffineExpr(0), 1},
                 LoopSpec{"j", AffineExpr(0), AffineExpr(n_sym()), 1}},
                {unit_stream("a", IntMatrix{{1, 0}}, 1)}, {n_sym()}, n_ge_1(),
                noop_body());
  expect_invalid(nest, "lb <= rb");
}

TEST(SourceValidation, DuplicateLoopIndexRejected) {
  LoopNest nest("dup",
                {LoopSpec{"i", AffineExpr(0), AffineExpr(n_sym()), 1},
                 LoopSpec{"i", AffineExpr(0), AffineExpr(n_sym()), 1}},
                {unit_stream("a", IntMatrix{{1, 0}}, 1)}, {n_sym()}, n_ge_1(),
                noop_body());
  expect_invalid(nest, "duplicate loop index");
}

TEST(SourceValidation, NoStreamsRejected) {
  LoopNest nest("none",
                {LoopSpec{"i", AffineExpr(0), AffineExpr(n_sym()), 1},
                 LoopSpec{"j", AffineExpr(0), AffineExpr(n_sym()), 1}},
                {}, {n_sym()}, n_ge_1(), noop_body());
  expect_invalid(nest, "no streams");
}

TEST(SourceValidation, DuplicateStreamNamesRejected) {
  LoopNest nest("dup",
                {LoopSpec{"i", AffineExpr(0), AffineExpr(n_sym()), 1},
                 LoopSpec{"j", AffineExpr(0), AffineExpr(n_sym()), 1}},
                {unit_stream("a", IntMatrix{{1, 0}}, 1),
                 unit_stream("a", IntMatrix{{0, 1}}, 1)},
                {n_sym()}, n_ge_1(), noop_body());
  expect_invalid(nest, "duplicate stream name");
}

TEST(SourceValidation, IndexMapWrongShapeRejected) {
  // r = 3 but a 1 x 3 index map: the variable is not (r-1)-dimensional.
  LoopNest nest("shape",
                {LoopSpec{"i", AffineExpr(0), AffineExpr(n_sym()), 1},
                 LoopSpec{"j", AffineExpr(0), AffineExpr(n_sym()), 1},
                 LoopSpec{"k", AffineExpr(0), AffineExpr(n_sym()), 1}},
                {unit_stream("a", IntMatrix{{1, 0, 0}}, 1)}, {n_sym()},
                n_ge_1(), noop_body());
  expect_invalid(nest, "(r-1) x r");
}

TEST(SourceValidation, RankDeficientIndexMapRejected) {
  // a[i, 2i] has rank 1 < r-1 = 2: full pipelining violated.
  LoopNest nest("rank",
                {LoopSpec{"i", AffineExpr(0), AffineExpr(n_sym()), 1},
                 LoopSpec{"j", AffineExpr(0), AffineExpr(n_sym()), 1},
                 LoopSpec{"k", AffineExpr(0), AffineExpr(n_sym()), 1}},
                {unit_stream("a", IntMatrix{{1, 0, 0}, {2, 0, 0}}, 2)},
                {n_sym()}, n_ge_1(), noop_body());
  expect_invalid(nest, "rank");
}

TEST(SourceValidation, CoordSymbolInBoundsRejected) {
  Symbol col = coord_symbol("col");
  LoopNest nest("coord",
                {LoopSpec{"i", AffineExpr(0), AffineExpr(col), 1},
                 LoopSpec{"j", AffineExpr(0), AffineExpr(n_sym()), 1}},
                {unit_stream("a", IntMatrix{{1, 0}}, 1)}, {n_sym()}, n_ge_1(),
                noop_body());
  expect_invalid(nest, "problem-size symbols");
}

TEST(SourceValidation, MissingBodyRejected) {
  LoopNest nest("nobody",
                {LoopSpec{"i", AffineExpr(0), AffineExpr(n_sym()), 1},
                 LoopSpec{"j", AffineExpr(0), AffineExpr(n_sym()), 1}},
                {unit_stream("a", IntMatrix{{1, 0}}, 1)}, {n_sym()}, n_ge_1(),
                nullptr);
  expect_invalid(nest, "basic statement body");
}

}  // namespace
}  // namespace systolize
