#include "loopnest/loop_nest.hpp"

#include <gtest/gtest.h>

#include "designs/catalog.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

TEST(LoopNest, ConcreteBounds) {
  Design d = polyprod_design1();
  auto bounds = d.nest.concrete_bounds(Env{{"n", Rational(3)}});
  ASSERT_EQ(bounds.size(), 2u);
  EXPECT_EQ(bounds[0], (std::pair<Int, Int>{0, 3}));
  EXPECT_EQ(bounds[1], (std::pair<Int, Int>{0, 3}));
}

TEST(LoopNest, IndexSpaceSizeAndEnumeration) {
  Design d = matmul_design1();
  Env env{{"n", Rational(2)}};
  EXPECT_EQ(d.nest.index_space_size(env), 27);
  auto points = d.nest.enumerate_index_space(env);
  ASSERT_EQ(points.size(), 27u);
  // Row-major, innermost loop fastest.
  EXPECT_EQ(points[0], (IntVec{0, 0, 0}));
  EXPECT_EQ(points[1], (IntVec{0, 0, 1}));
  EXPECT_EQ(points[3], (IntVec{0, 1, 0}));
  EXPECT_EQ(points[26], (IntVec{2, 2, 2}));
}

TEST(LoopNest, NegativeStepEnumeratesDownward) {
  Symbol n = size_symbol("n");
  Guard g;
  g.add(Constraint{AffineExpr(1), AffineExpr(n)});
  LoopNest nest(
      "rev",
      {LoopSpec{"i", AffineExpr(0), AffineExpr(n), 1},
       LoopSpec{"j", AffineExpr(0), AffineExpr(n), -1}},
      {Stream("a", IntMatrix{{1, 0}}, {VarDim{AffineExpr(0), AffineExpr(n)}},
              StreamAccess::Update),
       Stream("b", IntMatrix{{0, 1}}, {VarDim{AffineExpr(0), AffineExpr(n)}},
              StreamAccess::Read)},
      {n}, g, [](std::map<std::string, Value>& v) { v.at("a") += v.at("b"); });
  auto points = nest.enumerate_index_space(Env{{"n", Rational(1)}});
  ASSERT_EQ(points.size(), 4u);
  // j runs from its right bound down to its left bound.
  EXPECT_EQ(points[0], (IntVec{0, 1}));
  EXPECT_EQ(points[1], (IntVec{0, 0}));
  EXPECT_EQ(points[2], (IntVec{1, 1}));
  EXPECT_EQ(points[3], (IntVec{1, 0}));
}

TEST(LoopNest, UnknownStreamThrows) {
  Design d = polyprod_design1();
  EXPECT_THROW((void)d.nest.stream("zz"), Error);
}

TEST(LoopNest, EmptyRangeThrows) {
  Symbol n = size_symbol("n");
  LoopNest nest("bad",
                {LoopSpec{"i", AffineExpr(n), AffineExpr(0), 1},
                 LoopSpec{"j", AffineExpr(0), AffineExpr(n), 1}},
                {}, {n}, Guard{}, nullptr);
  EXPECT_THROW((void)nest.enumerate_index_space(Env{{"n", Rational(2)}}),
               Error);
}

}  // namespace
}  // namespace systolize
