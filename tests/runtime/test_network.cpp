// Topology capture and Graphviz export.
#include "runtime/network.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

NetworkGraph capture(const std::string& name, Int n) {
  Design d = design_by_name(name);
  CompiledProgram prog = compile(d.nest, d.spec);
  Env sizes{{"n", Rational(n)}, {"m", Rational(2)}};
  NetworkGraph graph;
  InstantiateOptions opt;
  opt.network = &graph;
  IndexedStore store = make_initial_store(
      d.nest, sizes, [](const std::string&, const IntVec&) { return 1; });
  (void)execute(prog, d.nest, sizes, store, opt);
  return graph;
}

TEST(Network, NodeCountsMatchMetrics) {
  Design d = polyprod_design1();
  CompiledProgram prog = compile(d.nest, d.spec);
  Env sizes{{"n", Rational(4)}};
  NetworkGraph graph;
  InstantiateOptions opt;
  opt.network = &graph;
  IndexedStore store = make_initial_store(
      d.nest, sizes, [](const std::string&, const IntVec&) { return 1; });
  RunMetrics metrics = execute(prog, d.nest, sizes, store, opt);

  EXPECT_EQ(graph.count(NetworkGraph::NodeKind::Computation),
            metrics.computation_processes);
  EXPECT_EQ(graph.count(NetworkGraph::NodeKind::Input) +
                graph.count(NetworkGraph::NodeKind::Output),
            metrics.io_processes);
  EXPECT_EQ(graph.count(NetworkGraph::NodeKind::Buffer),
            metrics.buffer_processes);
  EXPECT_EQ(graph.nodes.size(), metrics.process_count);
  // Every channel that exists appears as exactly one edge.
  EXPECT_EQ(graph.edges.size(), metrics.channel_count);
}

TEST(Network, EveryEdgeEndpointIsANode) {
  NetworkGraph graph = capture("matmul2", 2);
  std::set<std::string> names;
  for (const auto& n : graph.nodes) names.insert(n.name);
  for (const auto& e : graph.edges) {
    EXPECT_TRUE(names.contains(e.from)) << e.from;
    EXPECT_TRUE(names.contains(e.to)) << e.to;
  }
}

TEST(Network, ComputationNodesAreSharedAcrossStreams) {
  // A computation process appears once even though three streams pass
  // through it.
  NetworkGraph graph = capture("matmul1", 2);
  std::size_t comp = graph.count(NetworkGraph::NodeKind::Computation);
  EXPECT_EQ(comp, 9u);  // (n+1)^2
  // ... but it has one incoming edge per stream.
  std::map<std::string, int> incoming;
  for (const auto& e : graph.edges) incoming[e.to]++;
  EXPECT_EQ(incoming.at("comp:(0,0)"), 3);
}

TEST(Network, DotOutputIsWellFormed) {
  NetworkGraph graph = capture("polyprod1", 3);
  std::string dot = to_dot(graph);
  EXPECT_NE(dot.find("digraph systolic {"), std::string::npos);
  EXPECT_NE(dot.find("\"comp:(0)\""), std::string::npos);
  EXPECT_NE(dot.find("shape=house"), std::string::npos);    // inputs
  EXPECT_NE(dot.find("shape=invhouse"), std::string::npos); // outputs
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);   // b's buffers
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Network, LinearPipelineIsAChain) {
  // polyprod1 stream c: in -> comp(0) -> ... -> comp(n) -> out.
  NetworkGraph graph = capture("polyprod1", 2);
  std::map<std::string, std::string> next;  // c-edges only
  for (const auto& e : graph.edges) {
    if (e.stream == "c") next[e.from] = e.to;
  }
  std::string node = "in:c:(0)";
  std::vector<std::string> walk;
  while (next.contains(node)) {
    node = next[node];
    walk.push_back(node);
  }
  ASSERT_EQ(walk.size(), 4u);  // comp 0..2 then out
  EXPECT_EQ(walk.front(), "comp:(0)");
  EXPECT_EQ(walk.back(), "out:c:(2)");
}

}  // namespace
}  // namespace systolize
