// The fault-injection and watchdog layer, exercised on small hand-built
// networks where every expected behaviour can be stated exactly.
#include "runtime/faults.hpp"

#include <gtest/gtest.h>

#include "runtime/scheduler.hpp"
#include "runtime/watchdog.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

// Coroutine bodies are free functions taking everything by value or by
// pointer (coroutine parameters are copied into the frame; capturing
// lambdas would dangle).

Task sender_body(Ctx ctx, Channel* chan, std::vector<Value> values) {
  for (Value v : values) co_await ctx.send(*chan, v);
}

Task receiver_body(Ctx ctx, Channel* chan, std::size_t count,
                   std::vector<Value>* out) {
  for (std::size_t i = 0; i < count; ++i) {
    Value v = 0;
    co_await ctx.recv(*chan, v);
    out->push_back(v);
  }
}

Task ticking_relay_body(Ctx ctx, Channel* in, Channel* out, Int count) {
  for (Int i = 0; i < count; ++i) {
    Value v = 0;
    co_await ctx.recv(*in, v);
    ctx.tick_statement();
    co_await ctx.send(*out, v);
  }
}

Task send_then_recv_body(Ctx ctx, Channel* out, Channel* in) {
  co_await ctx.send(*out, 1);
  Value v = 0;
  co_await ctx.recv(*in, v);
}

Task ping_forever_body(Ctx ctx, Channel* out, Channel* in, bool start) {
  Value v = 0;
  if (start) co_await ctx.send(*out, v);
  for (;;) {
    co_await ctx.recv(*in, v);
    co_await ctx.send(*out, v + 1);
  }
}

Task recv_one_body(Ctx ctx, Channel* chan, Value* out) {
  co_await ctx.recv(*chan, *out);
}

// --------------------------------------------------------------- SplitMix

TEST(SplitMix64, SameSeedSameSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, UnitAndRangeAreWellFormed) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    Int k = rng.next_int(3, 9);
    EXPECT_GE(k, 3);
    EXPECT_LE(k, 9);
  }
}

// -------------------------------------------------------- FaultPlan parse

TEST(FaultPlan, ParsesFullDirectiveSyntax) {
  FaultPlan plan = FaultPlan::parse(
      "seed=42;stall=0.25:5;delay=0.1:3;dup=0.01;kill=0.02:7;"
      "stall@comp:(1)=2:4;kill@comp:(2)=3;delay@a[0].1=0:2;dup@b[0].0=1");
  EXPECT_EQ(plan.seed(), 42u);
  EXPECT_DOUBLE_EQ(plan.profile().stall_probability, 0.25);
  EXPECT_EQ(plan.profile().max_stall_rounds, 5);
  EXPECT_DOUBLE_EQ(plan.profile().delay_probability, 0.1);
  EXPECT_DOUBLE_EQ(plan.profile().duplicate_probability, 0.01);
  EXPECT_DOUBLE_EQ(plan.profile().kill_probability, 0.02);
  ASSERT_EQ(plan.specs().size(), 4u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::Stall);
  EXPECT_EQ(plan.specs()[0].target, "comp:(1)");
  EXPECT_EQ(plan.specs()[0].at, 2);
  EXPECT_EQ(plan.specs()[0].duration, 4);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::Kill);
  EXPECT_EQ(plan.specs()[1].at, 3);
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::Delay);
  EXPECT_EQ(plan.specs()[2].target, "a[0].1");
  EXPECT_EQ(plan.specs()[3].kind, FaultKind::Duplicate);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RejectsMalformedDirectives) {
  const char* bad[] = {
      "frobnicate=1",      // unknown directive
      "stall",             // no '='
      "stall=2:5",         // probability out of range
      "stall=0.5",         // missing duration
      "stall=0.5:0",       // zero duration
      "kill@p=0",          // statement index < 1
      "dup=x",             // not a number
      "seed=12junk",       // trailing junk
      "delay@c=1:2:extra", // malformed tail (duration not integer)
  };
  for (const char* text : bad) {
    try {
      (void)FaultPlan::parse(text);
      FAIL() << "expected rejection of '" << text << "'";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::Validation) << text;
    }
  }
}

TEST(FaultPlan, EmptyPlanIsEmpty) {
  EXPECT_TRUE(FaultPlan().empty());
  EXPECT_TRUE(FaultPlan::parse("seed=9").empty());
}

// ------------------------------------------------------------ Stall/Delay

// A 3-stage pipeline moving values end to end; the reference for the
// perturbation tests below.
struct Pipeline {
  Scheduler sched;
  std::vector<Value> got;
  Int makespan = 0;

  explicit Pipeline(const FaultPlan* plan, FaultInjector* injector) {
    if (injector != nullptr) sched.set_fault_injector(injector);
    (void)plan;
    Channel* a = &sched.make_channel("a");
    Channel* b = &sched.make_channel("b");
    std::vector<Value> vals{3, 1, 4, 1, 5, 9};
    std::vector<Value>* gp = &got;
    Process& tx =
        sched.spawn("tx", [a, vals](Ctx c) { return sender_body(c, a, vals); });
    Process& mid = sched.spawn(
        "mid", [a, b](Ctx c) { return ticking_relay_body(c, a, b, 6); });
    Process& rx = sched.spawn(
        "rx", [b, gp](Ctx c) { return receiver_body(c, b, 6, gp); });
    a->declare_sender(tx);
    a->declare_receiver(mid);
    b->declare_sender(mid);
    b->declare_receiver(rx);
    sched.run();
    makespan = sched.makespan();
  }
};

TEST(FaultInjection, StallPreservesResultsAndMakespan) {
  Pipeline clean(nullptr, nullptr);

  FaultPlan plan(1);
  plan.add(FaultSpec{FaultKind::Stall, "mid", /*at=*/1, /*duration=*/7});
  FaultInjector injector(plan);
  Pipeline stalled(&plan, &injector);

  EXPECT_EQ(stalled.got, clean.got);
  EXPECT_EQ(stalled.makespan, clean.makespan);
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0], "stall mid 7");
  // The stall costs scheduler rounds, never logical time.
  EXPECT_GT(stalled.sched.round(), clean.sched.round());
}

TEST(FaultInjection, DelayPreservesResultsAndMakespan) {
  Pipeline clean(nullptr, nullptr);

  FaultPlan plan(1);
  plan.add(FaultSpec{FaultKind::Delay, "a", /*at=*/0, /*duration=*/5});
  plan.add(FaultSpec{FaultKind::Delay, "b", /*at=*/2, /*duration=*/3});
  FaultInjector injector(plan);
  Pipeline delayed(&plan, &injector);

  EXPECT_EQ(delayed.got, clean.got);
  EXPECT_EQ(delayed.makespan, clean.makespan);
  EXPECT_EQ(injector.log().size(), 2u);
}

TEST(FaultInjection, ProbabilisticPlanReplaysIdentically) {
  FaultPlan plan(99);
  FaultProfile profile;
  profile.stall_probability = 0.5;
  profile.max_stall_rounds = 4;
  profile.delay_probability = 0.3;
  profile.max_delay_rounds = 3;
  plan.set_profile(profile);

  FaultInjector inj1(plan);
  Pipeline run1(&plan, &inj1);
  FaultInjector inj2(plan);
  Pipeline run2(&plan, &inj2);

  EXPECT_EQ(inj1.log(), inj2.log());
  EXPECT_EQ(run1.got, run2.got);
  EXPECT_EQ(run1.makespan, run2.makespan);
  EXPECT_EQ(run1.sched.round(), run2.sched.round());
}

// ------------------------------------------------------------------- Kill

TEST(FaultInjection, KilledProcessDeadlocksPartnerWithForensics) {
  FaultPlan plan;
  plan.add(FaultSpec{FaultKind::Kill, "mid", /*at=*/2, 0});
  FaultInjector injector(plan);
  try {
    Pipeline doomed(&plan, &injector);
    FAIL() << "expected the network to stall";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Runtime);
    std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    // The dead process is gone; its starved neighbours are reported.
    EXPECT_NE(what.find("tx"), std::string::npos) << what;
    EXPECT_NE(what.find("rx"), std::string::npos) << what;
    EXPECT_FALSE(e.diagnostic().empty());
    EXPECT_NE(e.diagnostic().find("\"reason\":\"deadlock\""),
              std::string::npos);
  }
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0], "kill mid 2");
}

// -------------------------------------------------------------- Duplicate

TEST(FaultInjection, DuplicateDeliversGhostValue) {
  FaultPlan plan;
  plan.add(FaultSpec{FaultKind::Duplicate, "c", /*at=*/0, 0});
  FaultInjector injector(plan);
  Scheduler sched;
  sched.set_fault_injector(&injector);
  Channel* c = &sched.make_channel("c");
  std::vector<Value> got;
  std::vector<Value>* gp = &got;
  sched.spawn("tx", [c](Ctx ctx) { return sender_body(ctx, c, {10, 20}); });
  sched.spawn("rx", [c, gp](Ctx ctx) { return receiver_body(ctx, c, 3, gp); });
  sched.run();
  // Transfer 0 is delivered twice: the receiver's three receives see the
  // first value twice, then the second — a shifted, corrupted stream.
  EXPECT_EQ(got, (std::vector<Value>{10, 10, 20}));
  ASSERT_EQ(injector.log().size(), 1u);
  EXPECT_EQ(injector.log()[0], "dup c 0");
}

// --------------------------------------------------------------- Watchdog

TEST(Watchdog, RoundBudgetTurnsLivelockIntoStructuredError) {
  Scheduler sched;
  WatchdogConfig config;
  config.max_rounds = 100;
  sched.set_watchdog(config);
  Channel* a = &sched.make_channel("a");
  Channel* b = &sched.make_channel("b");
  // Two processes bouncing a message forever: without the watchdog this
  // run never terminates.
  sched.spawn("ping",
              [a, b](Ctx c) { return ping_forever_body(c, a, b, true); });
  sched.spawn("pong",
              [a, b](Ctx c) { return ping_forever_body(c, b, a, false); });
  try {
    sched.run();
    FAIL() << "expected the watchdog to fire";
  } catch (const Error& e) {
    // Budget exhaustion is a deadline, not a protocol failure: Timeout,
    // which the service layer classifies as retryable.
    EXPECT_EQ(e.kind(), ErrorKind::Timeout);
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos)
        << e.what();
    EXPECT_NE(e.diagnostic().find("\"reason\""), std::string::npos);
  }
}

TEST(Watchdog, StarvationBoundNamesTheStarvedProcess) {
  Scheduler sched;
  WatchdogConfig config;
  config.max_blocked_rounds = 20;
  sched.set_watchdog(config);
  Channel* a = &sched.make_channel("a");
  Channel* b = &sched.make_channel("b");
  Channel* never = &sched.make_channel("never");
  sched.spawn("ping",
              [a, b](Ctx c) { return ping_forever_body(c, a, b, true); });
  sched.spawn("pong",
              [a, b](Ctx c) { return ping_forever_body(c, b, a, false); });
  Value sink = 0;
  Value* sp = &sink;
  sched.spawn("starved",
              [never, sp](Ctx c) { return recv_one_body(c, never, sp); });
  try {
    sched.run();
    FAIL() << "expected the starvation watchdog to fire";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Timeout);
    std::string what = e.what();
    EXPECT_NE(what.find("starvation"), std::string::npos) << what;
    EXPECT_NE(what.find("starved"), std::string::npos) << what;
  }
}

// -------------------------------------------------------- Cycle forensics

TEST(DeadlockForensics, SendSendCycleNamesProcessesAndChannels) {
  Scheduler sched;
  Channel* a = &sched.make_channel("a");
  Channel* b = &sched.make_channel("b");
  Process& p1 =
      sched.spawn("p1", [a, b](Ctx c) { return send_then_recv_body(c, a, b); });
  Process& p2 =
      sched.spawn("p2", [a, b](Ctx c) { return send_then_recv_body(c, b, a); });
  a->declare_sender(p1);
  a->declare_receiver(p2);
  b->declare_sender(p2);
  b->declare_receiver(p1);
  try {
    sched.run();
    FAIL() << "expected deadlock";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Runtime);
    std::string what = e.what();
    EXPECT_NE(what.find("blocking cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("p1"), std::string::npos);
    EXPECT_NE(what.find("p2"), std::string::npos);
    // The machine-readable payload carries the cycle and its channels.
    const std::string& json = e.diagnostic();
    bool order1 = json.find("\"cycle\":[\"p1\",\"p2\"]") != std::string::npos;
    bool order2 = json.find("\"cycle\":[\"p2\",\"p1\"]") != std::string::npos;
    EXPECT_TRUE(order1 || order2) << json;
    EXPECT_NE(json.find("\"cycle_channels\""), std::string::npos);
  }
}

TEST(DeadlockForensics, ReportCarriesClockAndStatementState) {
  Scheduler sched;
  Channel* a = &sched.make_channel("a");
  Channel* b = &sched.make_channel("b");
  std::vector<Value> got;
  std::vector<Value>* gp = &got;
  // The relay ticks a statement per element and then starves: its
  // reported state must show the progress it made.
  sched.spawn("tx", [a](Ctx c) { return sender_body(c, a, {1, 2}); });
  sched.spawn("mid", [a, b](Ctx c) { return ticking_relay_body(c, a, b, 3); });
  sched.spawn("rx", [b, gp](Ctx c) { return receiver_body(c, b, 3, gp); });
  try {
    sched.run();
    FAIL() << "expected deadlock";
  } catch (const Error& e) {
    EXPECT_NE(e.diagnostic().find("\"statements\":2"), std::string::npos)
        << e.diagnostic();
  }
}

}  // namespace
}  // namespace systolize
