// The work-stealing substrate's contract (runtime/shard.hpp): results,
// makespan and transfer counts bit-identical to the sequential fast path
// for every design, every thread count and every steal interleaving; the
// watchdog, cancel tokens and stall/kill fault injection keep working;
// deadlocks surface as the same structured wait-for forensics as the
// sequential paths. The hammer tests here repeat runs to churn steal
// interleavings — under TSan they double as the data-race suite for the
// mailbox/bitmap/hint-queue protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "runtime/worker_pool.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

Value pseudo_random(const std::string& var, const IntVec& p) {
  Value h = 1469598103934665603LL;
  for (char c : var) h = (h ^ c) * 1099511628211LL;
  for (std::size_t i = 0; i < p.dim(); ++i) {
    h = (h ^ static_cast<Value>(p[i] + 1315423911LL)) * 1099511628211LL;
  }
  return (h % 19) - 9;
}

Env sizes_for(const Design& design, Int n) {
  Env env{{"n", Rational(n)}};
  for (const Symbol& s : design.nest.sizes()) {
    if (!env.contains(s.name())) env[s.name()] = Rational(std::max<Int>(1, n - 1));
  }
  return env;
}

IndexedStore seeded(const Design& design, const Env& sizes) {
  return make_initial_store(design.nest, sizes,
                            [](const auto& v, const auto& p) {
                              return pseudo_random(v, p);
                            });
}

void expect_same_stores(const Design& design, const IndexedStore& a,
                        const IndexedStore& b, const std::string& what) {
  for (const Stream& s : design.nest.streams()) {
    EXPECT_EQ(a.elements(s.name()), b.elements(s.name()))
        << what << " stream " << s.name();
  }
}

// --- steal-race hammer: many repetitions churn the interleavings -------

TEST(WorkSteal, HammeredBitIdentityUnderContention) {
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 4);
  IndexedStore seq_store = seeded(design, sizes);
  IndexedStore base = seq_store;
  RunMetrics seq = execute(prog, design.nest, sizes, seq_store, {});
  for (unsigned threads : {2u, 4u, 8u}) {
    for (int rep = 0; rep < 4; ++rep) {
      IndexedStore par_store = base;
      InstantiateOptions opt;
      opt.threads = threads;
      RunMetrics par = execute(prog, design.nest, sizes, par_store, opt);
      expect_same_stores(design, seq_store, par_store,
                         "t=" + std::to_string(threads));
      ASSERT_EQ(seq.makespan, par.makespan) << "t=" << threads;
      ASSERT_EQ(seq.total_transfers, par.total_transfers) << "t=" << threads;
      ASSERT_EQ(seq.statements, par.statements) << "t=" << threads;
      ASSERT_EQ(seq.transfers_per_stream, par.transfers_per_stream)
          << "t=" << threads;
    }
  }
}

TEST(WorkSteal, OddThreadCountsAcrossDesigns) {
  // More workers than processes, prime counts, single extra worker: the
  // clamp and the block-seeding must hold for every catalog design.
  for (const char* name : {"polyprod1", "polyprod3", "matmul2", "matmul4",
                           "convolution", "correlation"}) {
    Design design = design_by_name(name);
    CompiledProgram prog = compile(design.nest, design.spec);
    Env sizes = sizes_for(design, 3);
    IndexedStore seq_store = seeded(design, sizes);
    IndexedStore base = seq_store;
    RunMetrics seq = execute(prog, design.nest, sizes, seq_store, {});
    for (unsigned threads : {2u, 3u, 7u, 16u}) {
      IndexedStore par_store = base;
      InstantiateOptions opt;
      opt.threads = threads;
      RunMetrics par = execute(prog, design.nest, sizes, par_store, opt);
      expect_same_stores(design, seq_store, par_store,
                         std::string(name) + " t=" + std::to_string(threads));
      EXPECT_EQ(seq.makespan, par.makespan) << name << " t=" << threads;
      EXPECT_EQ(seq.total_transfers, par.total_transfers)
          << name << " t=" << threads;
    }
  }
}

// --- substrate metrics -------------------------------------------------

TEST(WorkSteal, PerWorkerCountersAccountForEveryResumption) {
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 4);
  IndexedStore store = seeded(design, sizes);
  InstantiateOptions opt;
  opt.threads = 4;
  RunMetrics m = execute(prog, design.nest, sizes, store, opt);
  ASSERT_EQ(m.workers.size(), 4u);
  Int tasks = 0;
  Int max_tasks = 0;
  for (const WorkerCounters& w : m.workers) {
    EXPECT_GE(w.steals, 0);
    EXPECT_GE(w.failed_steals, 0);
    EXPECT_GE(w.idle_ns, 0);
    tasks += w.tasks;
    max_tasks = std::max(max_tasks, w.tasks);
  }
  // Every process is resumed at least once, and the rounds stat is the
  // busiest single worker's task count.
  EXPECT_GE(tasks, static_cast<Int>(m.process_count));
  EXPECT_EQ(m.scheduler_rounds, max_tasks);
  // The counters reach the JSON rendering.
  std::string json = m.to_json();
  EXPECT_NE(json.find("\"workers\":[{\"steals\":"), std::string::npos) << json;
}

// --- fault injection under stealing ------------------------------------

TEST(WorkSteal, StallSoakStaysBitIdentical) {
  // Spawn-time stall rolls are schedule-independent: a heavily stalled
  // parallel run must still produce the sequential answer, and the same
  // plan must inject the same fault count on every repetition.
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 3);
  IndexedStore seq_store = seeded(design, sizes);
  IndexedStore base = seq_store;
  RunMetrics seq = execute(prog, design.nest, sizes, seq_store, {});
  FaultPlan faults = FaultPlan::parse("seed=42;stall=0.5:64");
  Int injected = -1;
  for (int rep = 0; rep < 6; ++rep) {
    IndexedStore par_store = base;
    InstantiateOptions opt;
    opt.threads = 4;
    opt.faults = &faults;
    RunMetrics par = execute(prog, design.nest, sizes, par_store, opt);
    expect_same_stores(design, seq_store, par_store, "stall-soak");
    EXPECT_EQ(seq.makespan, par.makespan);
    EXPECT_EQ(seq.total_transfers, par.total_transfers);
    EXPECT_GT(par.faults_injected, 0);
    if (injected < 0) injected = par.faults_injected;
    EXPECT_EQ(par.faults_injected, injected) << "fault rolls must replay";
  }
}

TEST(WorkSteal, KillSoakYieldsWaitForForensics) {
  // A killed process leaves its peers blocked on its channels forever;
  // the substrate's detector must fire on every interleaving and the
  // report must carry the wait-for state (who is blocked, on which
  // channel) exactly like the sequential forensics.
  Design design = polyprod_design1();
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(3)}};
  FaultPlan faults = FaultPlan::parse("kill@comp:(1)=2");
  for (int rep = 0; rep < 6; ++rep) {
    IndexedStore store = seeded(design, sizes);
    InstantiateOptions opt;
    opt.threads = 4;
    opt.faults = &faults;
    try {
      (void)execute(prog, design.nest, sizes, store, opt);
      FAIL() << "expected a structured runtime error";
    } catch (const Error& e) {
      ASSERT_EQ(e.kind(), ErrorKind::Runtime) << e.what();
      std::string what = e.what();
      EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
      EXPECT_NE(what.find("blocked"), std::string::npos) << what;
      EXPECT_NE(e.diagnostic().find("\"reason\":\"deadlock\""),
                std::string::npos)
          << e.diagnostic();
      EXPECT_NE(e.diagnostic().find("\"blocked\":["), std::string::npos)
          << e.diagnostic();
    }
  }
}

TEST(WorkSteal, StallAndKillCombinedSoak) {
  // Stalls defer work while a kill wedges the network: the detector must
  // wait out every held process before declaring deadlock (no false
  // positives from the stall queue) yet still fire.
  Design design = polyprod_design1();
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(3)}};
  FaultPlan faults =
      FaultPlan::parse("seed=7;stall=0.5:32;kill@comp:(1)=2");
  for (int rep = 0; rep < 4; ++rep) {
    IndexedStore store = seeded(design, sizes);
    InstantiateOptions opt;
    opt.threads = 4;
    opt.faults = &faults;
    EXPECT_THROW((void)execute(prog, design.nest, sizes, store, opt), Error);
  }
}

// --- watchdog and cancellation on the substrate -------------------------

TEST(WorkSteal, CancelTokenAbortsWithForensics) {
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 4);
  IndexedStore store = seeded(design, sizes);
  std::atomic<bool> cancel{true};  // pre-fired: abort on the first poll
  InstantiateOptions opt;
  opt.threads = 4;
  opt.watchdog.cancel = &cancel;
  opt.watchdog.cancel_kind = ErrorKind::Timeout;
  opt.watchdog.cancel_reason = "deadline expired (test)";
  try {
    (void)execute(prog, design.nest, sizes, store, opt);
    FAIL() << "expected cancellation";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Timeout);
    EXPECT_NE(std::string(e.what()).find("deadline expired (test)"),
              std::string::npos)
        << e.what();
    EXPECT_FALSE(e.diagnostic().empty());
  }
}

TEST(WorkSteal, RoundBudgetBoundsTotalResumptions) {
  // max_rounds on the substrate caps total resumptions at
  // max_rounds * nprocs; a budget of 1 cannot complete matmul2 (every
  // process suspends many times) and must trip as a Timeout.
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 4);
  IndexedStore store = seeded(design, sizes);
  InstantiateOptions opt;
  opt.threads = 4;
  opt.watchdog.max_rounds = 1;
  try {
    (void)execute(prog, design.nest, sizes, store, opt);
    FAIL() << "expected the round budget to trip";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Timeout);
    EXPECT_NE(std::string(e.what()).find("round budget"), std::string::npos)
        << e.what();
  }
}

TEST(WorkSteal, GenerousBudgetDoesNotPerturbTheRun) {
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 3);
  IndexedStore seq_store = seeded(design, sizes);
  IndexedStore par_store = seq_store;
  RunMetrics seq = execute(prog, design.nest, sizes, seq_store, {});
  InstantiateOptions opt;
  opt.threads = 4;
  opt.watchdog.max_rounds = Int{1} << 40;
  RunMetrics par = execute(prog, design.nest, sizes, par_store, opt);
  expect_same_stores(design, seq_store, par_store, "budgeted");
  EXPECT_EQ(seq.makespan, par.makespan);
  EXPECT_EQ(seq.total_transfers, par.total_transfers);
}

// --- pool reuse ---------------------------------------------------------

TEST(WorkSteal, WorkerPoolIsReusedAcrossRuns) {
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 4);
  IndexedStore seq_store = seeded(design, sizes);
  IndexedStore base = seq_store;
  RunMetrics seq = execute(prog, design.nest, sizes, seq_store, {});
  WorkerPool pool(4);
  for (int rep = 0; rep < 6; ++rep) {
    IndexedStore par_store = base;
    InstantiateOptions opt;
    opt.threads = 4;
    opt.worker_pool = &pool;
    RunMetrics par = execute(prog, design.nest, sizes, par_store, opt);
    expect_same_stores(design, seq_store, par_store, "pooled");
    ASSERT_EQ(seq.makespan, par.makespan);
    ASSERT_EQ(seq.total_transfers, par.total_transfers);
  }
  // The run borrows its extra workers from the pool; the caller is
  // worker 0, so at most capacity() threads ever get spawned, once.
  EXPECT_LE(pool.spawned(), pool.capacity());
}

TEST(WorkSteal, PoolSmallerThanRequestStillCompletes) {
  // A saturated pool hands a run fewer live workers than requested; the
  // caller-as-worker-0 rule plus stealing means the run still finishes
  // with the right answer.
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 3);
  IndexedStore seq_store = seeded(design, sizes);
  IndexedStore par_store = seq_store;
  RunMetrics seq = execute(prog, design.nest, sizes, seq_store, {});
  WorkerPool pool(1);  // one pool thread for an 8-worker request
  InstantiateOptions opt;
  opt.threads = 8;
  opt.worker_pool = &pool;
  RunMetrics par = execute(prog, design.nest, sizes, par_store, opt);
  expect_same_stores(design, seq_store, par_store, "starved-pool");
  EXPECT_EQ(seq.makespan, par.makespan);
  EXPECT_EQ(seq.total_transfers, par.total_transfers);
}

}  // namespace
}  // namespace systolize
