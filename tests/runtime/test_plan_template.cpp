// Cross-size differential suite for the plan-template pipeline: for every
// catalog design and a sweep of problem sizes, the two-stage path
// (compile_template once, expand_template per size — pure integer
// arithmetic) must reproduce the single-stage symbolic build_plan() output
// bit for bit: spawn order, channel order, element slices, names, graph,
// everything. Also pins that fast/instrumented/sharded runs on an
// expanded plan match the sequential ground truth, and that the static
// verifier gate accepts plans served through the template path.
#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "runtime/plan_template.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

const std::string kCatalog[] = {"polyprod1",   "polyprod2", "polyprod3",
                                "matmul1",     "matmul2",   "matmul3",
                                "matmul4",     "convolution",
                                "correlation", "fir_bank",  "closure"};

Env sizes_for(const Design& design, Int n) {
  Env env{{"n", Rational(n)}};
  for (const Symbol& s : design.nest.sizes()) {
    // Secondary sizes ("m") get a derived extent, as in bench_util.
    if (!env.contains(s.name())) {
      env[s.name()] = Rational(std::max<Int>(1, n / 2));
    }
  }
  return env;
}

IndexedStore seeded(const Design& design, const Env& sizes) {
  return make_initial_store(
      design.nest, sizes, [](const std::string& var, const IntVec& p) {
        Value h = 1099511628211LL * (var.empty() ? 7 : var[0]);
        for (std::size_t i = 0; i < p.dim(); ++i) h = h * 31 + p[i];
        return h % 17 - 8;
      });
}

void expect_same_graph(const NetworkGraph& a, const NetworkGraph& b,
                       const std::string& what) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size()) << what;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].name, b.nodes[i].name) << what << " node " << i;
    EXPECT_EQ(a.nodes[i].kind, b.nodes[i].kind) << what << " node " << i;
  }
  ASSERT_EQ(a.edges.size(), b.edges.size()) << what;
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].from, b.edges[i].from) << what << " edge " << i;
    EXPECT_EQ(a.edges[i].to, b.edges[i].to) << what << " edge " << i;
    EXPECT_EQ(a.edges[i].channel, b.edges[i].channel) << what << " edge " << i;
    EXPECT_EQ(a.edges[i].stream, b.edges[i].stream) << what << " edge " << i;
  }
}

/// Field-by-field structural identity of two NetworkPlans. Every field
/// that influences execution, diagnostics, sharding or fault replay is
/// compared — "bit-identical" in the sense that no observable differs.
void expect_same_plan(const NetworkPlan& a, const NetworkPlan& b,
                      const std::string& what) {
  EXPECT_EQ(a.streams, b.streams) << what;
  ASSERT_EQ(a.channels.size(), b.channels.size()) << what;
  for (std::size_t i = 0; i < a.channels.size(); ++i) {
    const auto& ca = a.channels[i];
    const auto& cb = b.channels[i];
    EXPECT_EQ(ca.name, cb.name) << what << " channel " << i;
    EXPECT_EQ(ca.stream, cb.stream) << what << " channel " << i;
    EXPECT_EQ(ca.capacity, cb.capacity) << what << " channel " << i;
    EXPECT_EQ(ca.sender, cb.sender) << what << " channel " << i;
    EXPECT_EQ(ca.receiver, cb.receiver) << what << " channel " << i;
  }
  ASSERT_EQ(a.procs.size(), b.procs.size()) << what;
  for (std::size_t i = 0; i < a.procs.size(); ++i) {
    const auto& pa = a.procs[i];
    const auto& pb = b.procs[i];
    EXPECT_EQ(pa.name, pb.name) << what << " proc " << i;
    EXPECT_EQ(pa.kind, pb.kind) << what << " proc " << i;
    EXPECT_EQ(pa.clock, pb.clock) << what << " proc " << i;
    EXPECT_EQ(pa.stream, pb.stream) << what << " proc " << i;
    EXPECT_EQ(pa.chan_in, pb.chan_in) << what << " proc " << i;
    EXPECT_EQ(pa.chan_out, pb.chan_out) << what << " proc " << i;
    EXPECT_EQ(pa.count, pb.count) << what << " proc " << i;
    EXPECT_EQ(pa.elem_begin, pb.elem_begin) << what << " proc " << i;
    EXPECT_EQ(pa.elem_end, pb.elem_end) << what << " proc " << i;
    EXPECT_EQ(pa.role_begin, pb.role_begin) << what << " proc " << i;
    EXPECT_EQ(pa.role_end, pb.role_end) << what << " proc " << i;
    EXPECT_EQ(pa.first_x, pb.first_x) << what << " proc " << i;
    EXPECT_EQ(pa.coords, pb.coords) << what << " proc " << i;
    EXPECT_EQ(pa.place, pb.place) << what << " proc " << i;
  }
  ASSERT_EQ(a.roles.size(), b.roles.size()) << what;
  for (std::size_t i = 0; i < a.roles.size(); ++i) {
    const auto& ra = a.roles[i];
    const auto& rb = b.roles[i];
    EXPECT_EQ(ra.stream, rb.stream) << what << " role " << i;
    EXPECT_EQ(ra.stationary, rb.stationary) << what << " role " << i;
    EXPECT_EQ(ra.soak, rb.soak) << what << " role " << i;
    EXPECT_EQ(ra.drain, rb.drain) << what << " role " << i;
    EXPECT_EQ(ra.chan_in, rb.chan_in) << what << " role " << i;
    EXPECT_EQ(ra.chan_out, rb.chan_out) << what << " role " << i;
  }
  EXPECT_EQ(a.elems, b.elems) << what;
  EXPECT_EQ(a.increment, b.increment) << what;
  EXPECT_EQ(a.clock_count, b.clock_count) << what;
  EXPECT_EQ(a.comp_count, b.comp_count) << what;
  EXPECT_EQ(a.io_count, b.io_count) << what;
  EXPECT_EQ(a.buffer_count, b.buffer_count) << what;
  EXPECT_EQ(a.max_par_ops, b.max_par_ops) << what;
  EXPECT_EQ(a.total_par_bound, b.total_par_bound) << what;
  EXPECT_EQ(a.ps_min, b.ps_min) << what;
  EXPECT_EQ(a.ps_max, b.ps_max) << what;
  expect_same_graph(a.graph, b.graph, what);
}

class CrossSizeDifferential : public ::testing::TestWithParam<std::string> {};

// One template, many sizes: expansion must agree with a fresh symbolic
// build at every size in the sweep.
TEST_P(CrossSizeDifferential, ExpandMatchesBuildPlanAcrossSizes) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  const PlanShape shape;
  auto tmpl = compile_template(prog, design.nest, shape);
  for (Int n : {2, 3, 4, 5, 7, 9}) {
    Env sizes = sizes_for(design, n);
    auto expanded = expand_template(*tmpl, sizes);
    auto reference = build_plan(prog, design.nest, sizes, shape);
    expect_same_plan(*expanded, *reference,
                     GetParam() + " n=" + std::to_string(n));
  }
}

// Non-default shapes flow through the template too: extra channel slack,
// merged internal buffers, and partition grids (shared clock ids).
TEST_P(CrossSizeDifferential, ExpandMatchesBuildPlanAcrossShapes) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  std::vector<PlanShape> shapes;
  shapes.push_back(PlanShape{2, false, {}});
  shapes.push_back(PlanShape{0, true, {}});
  {
    PlanShape partitioned;
    partitioned.partition_grid =
        IntVec(std::vector<Int>(design.nest.depth() - 1, 2));
    shapes.push_back(partitioned);
  }
  for (const PlanShape& shape : shapes) {
    auto tmpl = compile_template(prog, design.nest, shape);
    for (Int n : {3, 5}) {
      Env sizes = sizes_for(design, n);
      auto expanded = expand_template(*tmpl, sizes);
      auto reference = build_plan(prog, design.nest, sizes, shape);
      expect_same_plan(*expanded, *reference,
                       GetParam() + " shaped n=" + std::to_string(n));
    }
  }
}

// Executing an expanded plan (served via the cache's template path) must
// match the sequential ground truth on the fast, instrumented and sharded
// engines alike.
TEST_P(CrossSizeDifferential, ExpandedPlanRunsMatchSequential) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  PlanCache cache;
  for (Int n : {3, 5}) {
    Env sizes = sizes_for(design, n);
    IndexedStore expected = seeded(design, sizes);
    IndexedStore fast_store = expected;
    IndexedStore inst_store = expected;
    IndexedStore par_store = expected;
    run_sequential(design.nest, sizes, expected);

    InstantiateOptions fast;
    fast.plan_cache = &cache;
    (void)execute(prog, design.nest, sizes, fast_store, fast);

    InstantiateOptions inst;
    inst.plan_cache = &cache;
    inst.watchdog.max_rounds = Int{1} << 40;  // forces instrumentation only
    (void)execute(prog, design.nest, sizes, inst_store, inst);

    InstantiateOptions par;
    par.plan_cache = &cache;
    par.threads = 4;
    (void)execute(prog, design.nest, sizes, par_store, par);

    for (const Stream& s : design.nest.streams()) {
      EXPECT_EQ(fast_store.elements(s.name()), expected.elements(s.name()))
          << GetParam() << " fast n=" << n << " stream " << s.name();
      EXPECT_EQ(inst_store.elements(s.name()), expected.elements(s.name()))
          << GetParam() << " instrumented n=" << n << " stream " << s.name();
      EXPECT_EQ(par_store.elements(s.name()), expected.elements(s.name()))
          << GetParam() << " sharded n=" << n << " stream " << s.name();
    }
  }
  // One template per design/shape; each size expanded exactly once and
  // then shared by all three engines.
  EXPECT_EQ(cache.template_compiles(), 1u) << GetParam();
  EXPECT_EQ(cache.misses(), 2u) << GetParam();
  EXPECT_EQ(cache.hits(), 4u) << GetParam();
}

// The static verification gate (InstantiateOptions::verify_plan) must
// accept every catalog design when the plan arrives via the template
// path — same proofs, zero scheduler rounds, no false findings.
TEST_P(CrossSizeDifferential, VerifyPlanGatePassesOnTemplatePath) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  PlanCache cache;
  Env sizes = sizes_for(design, 4);
  IndexedStore store = seeded(design, sizes);
  InstantiateOptions opt;
  opt.plan_cache = &cache;
  opt.verify_plan = true;
  RunMetrics metrics = execute(prog, design.nest, sizes, store, opt);
  EXPECT_FALSE(metrics.plan_reused);
  EXPECT_GT(metrics.process_count, 0u);
}

INSTANTIATE_TEST_SUITE_P(Catalog, CrossSizeDifferential,
                         ::testing::ValuesIn(kCatalog),
                         [](const auto& info) { return info.param; });

// Template expansion reports unbound sizes the way the symbolic
// evaluator does — by naming the missing symbol.
TEST(PlanTemplate, UnboundSizeSymbolRaisesValidation) {
  Design design = design_by_name("polyprod1");
  CompiledProgram prog = compile(design.nest, design.spec);
  auto tmpl = compile_template(prog, design.nest, PlanShape{});
  try {
    (void)expand_template(*tmpl, Env{});
    FAIL() << "expected Error(Validation)";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Validation);
    EXPECT_NE(std::string(e.what()).find("unbound symbol"), std::string::npos)
        << e.what();
  }
}

TEST(PlanTemplate, NonIntegerSizeRaisesValidation) {
  Design design = design_by_name("polyprod1");
  CompiledProgram prog = compile(design.nest, design.spec);
  auto tmpl = compile_template(prog, design.nest, PlanShape{});
  Env sizes{{"n", Rational(7, 2)}};
  try {
    (void)expand_template(*tmpl, sizes);
    FAIL() << "expected Error(Validation)";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Validation);
  }
}

// The template is self-contained: expansion works after the compiled
// program it was lowered from is gone.
TEST(PlanTemplate, TemplateOutlivesProgram) {
  Design design = design_by_name("matmul2");
  std::shared_ptr<const PlanTemplate> tmpl;
  std::unique_ptr<NetworkPlan> reference;
  Env sizes = sizes_for(design, 4);
  {
    CompiledProgram prog = compile(design.nest, design.spec);
    tmpl = compile_template(prog, design.nest, PlanShape{});
    reference = build_plan(prog, design.nest, sizes, PlanShape{});
  }
  auto expanded = expand_template(*tmpl, sizes);
  expect_same_plan(*expanded, *reference, "matmul2 after program death");
}

}  // namespace
}  // namespace systolize
