// PlanCache behaviour: generation-id keying (no address aliasing), LRU
// byte-budget eviction, and thread-safety of the two cache levels —
// including the guarantee that a template is compiled exactly once per
// (program, shape) key no matter how many threads race for it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "runtime/plan_template.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

Env sizes_for(const Design& design, Int n) {
  Env env{{"n", Rational(n)}};
  for (const Symbol& s : design.nest.sizes()) {
    if (!env.contains(s.name())) {
      env[s.name()] = Rational(std::max<Int>(1, n / 2));
    }
  }
  return env;
}

// Regression for the keying footgun the address-based cache documented
// ("don't feed one cache two different programs at the same address and
// name"): polyprod1 and polyprod2 share the nest (so program name and
// depth agree), and reassigning `prog` reuses the same storage — the old
// (address, name, depth) key collides, the generation id does not.
TEST(PlanCache, ProgramsReusingAnAddressDoNotAlias) {
  Design d1 = design_by_name("polyprod1");
  Design d2 = design_by_name("polyprod2");
  PlanCache cache;
  Env sizes = sizes_for(d1, 6);

  CompiledProgram prog = compile(d1.nest, d1.spec);
  ASSERT_EQ(prog.name, compile(d2.nest, d2.spec).name)
      << "designs must share a name for the regression to bite";
  auto first = cache.lookup_or_build(prog, d1.nest, sizes, PlanShape{});

  prog = compile(d2.nest, d2.spec);  // same address, same name, new program
  auto second = cache.lookup_or_build(prog, d2.nest, sizes, PlanShape{});

  EXPECT_EQ(cache.misses(), 2u) << "second program must not hit the first's"
                                   " entry";
  EXPECT_EQ(cache.template_compiles(), 2u);
  // And the plan served for the second program is really the second
  // design's network, not a stale alias.
  auto reference = build_plan(prog, d2.nest, sizes, PlanShape{});
  ASSERT_EQ(second->procs.size(), reference->procs.size());
  for (std::size_t i = 0; i < reference->procs.size(); ++i) {
    EXPECT_EQ(second->procs[i].name, reference->procs[i].name) << i;
  }
  EXPECT_NE(first.get(), second.get());
}

// Copies keep their generation (same derivation => same cache identity).
TEST(PlanCache, CopiedProgramSharesCacheEntries) {
  Design design = design_by_name("matmul2");
  PlanCache cache;
  Env sizes = sizes_for(design, 4);
  CompiledProgram prog = compile(design.nest, design.spec);
  CompiledProgram copy = prog;
  EXPECT_EQ(prog.generation, copy.generation);
  (void)cache.lookup_or_build(prog, design.nest, sizes, PlanShape{});
  (void)cache.lookup_or_build(copy, design.nest, sizes, PlanShape{});
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(PlanCache, LruEvictsUnderByteBudgetAndKeepsHandedOutPlansValid) {
  Design design = design_by_name("polyprod1");
  CompiledProgram prog = compile(design.nest, design.spec);

  // Budget sized to roughly two plans of the sweep: the third insert must
  // evict the least recently used entry.
  Env probe_sizes = sizes_for(design, 8);
  const std::size_t one_plan =
      build_plan(prog, design.nest, probe_sizes, PlanShape{})->memory_bytes();
  PlanCache cache(2 * one_plan + one_plan / 2);

  auto p8 = cache.lookup_or_build(prog, design.nest, probe_sizes, PlanShape{});
  const std::size_t p8_procs = p8->procs.size();
  const std::string p8_front = p8->procs.front().name;
  (void)cache.lookup_or_build(prog, design.nest, sizes_for(design, 9),
                              PlanShape{});
  (void)cache.lookup_or_build(prog, design.nest, sizes_for(design, 10),
                              PlanShape{});

  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_LE(cache.size(), 2u);
  EXPECT_LE(cache.bytes(), cache.byte_budget());
  EXPECT_EQ(cache.template_compiles(), 1u)
      << "eviction is plan-level only; the template survives";

  // The evicted n=8 plan we still hold remains fully usable.
  EXPECT_EQ(p8->procs.size(), p8_procs);
  EXPECT_EQ(p8->procs.front().name, p8_front);

  // Re-requesting the evicted size is a plan miss but a template hit.
  const std::size_t misses_before = cache.misses();
  PlanCache::LookupStats stats;
  (void)cache.lookup_or_build(prog, design.nest, probe_sizes, PlanShape{},
                              &stats);
  EXPECT_EQ(cache.misses(), misses_before + 1);
  EXPECT_FALSE(stats.plan_hit);
  EXPECT_TRUE(stats.template_hit);
}

TEST(PlanCache, DefaultBudgetSeesNoEvictions) {
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  PlanCache cache;
  for (Int n = 2; n <= 8; ++n) {
    (void)cache.lookup_or_build(prog, design.nest, sizes_for(design, n),
                                PlanShape{});
  }
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.size(), 7u);
  EXPECT_LT(cache.bytes(), cache.byte_budget());
}

TEST(PlanCache, MetricsSurfaceCacheOutcomes) {
  Design design = design_by_name("convolution");
  CompiledProgram prog = compile(design.nest, design.spec);
  PlanCache cache;
  InstantiateOptions opt;
  opt.plan_cache = &cache;
  Env sizes = sizes_for(design, 6);
  IndexedStore store = make_initial_store(
      design.nest, sizes,
      [](const std::string&, const IntVec&) { return 1; });
  IndexedStore again = store;

  RunMetrics cold = execute(prog, design.nest, sizes, store, opt);
  EXPECT_FALSE(cold.plan_reused);
  EXPECT_FALSE(cold.template_reused);
  EXPECT_GT(cold.plan_expand_ns, 0);
  EXPECT_GT(cold.plan_cache_bytes, 0u);

  RunMetrics warm = execute(prog, design.nest, sizes, again, opt);
  EXPECT_TRUE(warm.plan_reused);
  EXPECT_TRUE(warm.template_reused);
  EXPECT_EQ(warm.plan_expand_ns, 0);

  IndexedStore cold2_store = make_initial_store(
      design.nest, sizes_for(design, 7),
      [](const std::string&, const IntVec&) { return 1; });
  RunMetrics cold_size = execute(prog, design.nest, sizes_for(design, 7),
                                 cold2_store, opt);
  EXPECT_FALSE(cold_size.plan_reused);
  EXPECT_TRUE(cold_size.template_reused)
      << "a never-seen size reuses the compiled template";
}

// N threads hammer one cache with mixed designs and mixed sizes. Every
// (program, shape) key must compile its template exactly once, and every
// plan handed out must be complete and internally consistent. Run under
// SYSTOLIZE_SANITIZE=thread for the TSAN proof.
TEST(PlanCache, ConcurrentHammeringCompilesEachTemplateOnce) {
  struct Case {
    Design design;
    CompiledProgram prog;
    std::vector<std::size_t> expected_procs;  // per size
  };
  const std::vector<std::string> names = {"polyprod1", "matmul2",
                                          "correlation"};
  const std::vector<Int> ns = {3, 4, 5, 6};
  std::vector<Case> cases;
  for (const std::string& name : names) {
    Design design = design_by_name(name);
    CompiledProgram prog = compile(design.nest, design.spec);
    std::vector<std::size_t> expected;
    for (Int n : ns) {
      expected.push_back(
          build_plan(prog, design.nest, sizes_for(design, n), PlanShape{})
              ->procs.size());
    }
    cases.push_back(Case{std::move(design), std::move(prog), expected});
  }

  PlanCache cache;
  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t ci = (t + i) % cases.size();
        const std::size_t si = (t * 7 + i) % ns.size();
        const Case& c = cases[ci];
        auto plan = cache.lookup_or_build(
            c.prog, c.design.nest, sizes_for(c.design, ns[si]), PlanShape{});
        if (plan == nullptr ||
            plan->procs.size() != c.expected_procs[si]) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  EXPECT_EQ(cache.template_compiles(), names.size())
      << "duplicate template compilation detected";
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_EQ(cache.size(), names.size() * ns.size());
}

// The daemon's worst case: many client threads, several distinct program
// generations (fresh compiles of the same designs), and a byte budget so
// small that plans churn through the LRU constantly. Every lookup must
// still return a correct, self-contained plan — eviction only drops the
// cache's reference, never a handed-out one.
TEST(PlanCache, ConcurrentMultiClientMixedGenerationsUnderTinyBudget) {
  const std::vector<std::string> names = {"polyprod1", "matmul2"};
  struct Variant {
    Design design;
    CompiledProgram prog;  // each carries its own generation
  };
  std::vector<Variant> variants;
  for (const std::string& name : names) {
    for (int copy = 0; copy < 2; ++copy) {  // two generations per design
      Design design = design_by_name(name);
      CompiledProgram prog = compile(design.nest, design.spec);
      variants.push_back(Variant{std::move(design), std::move(prog)});
    }
  }
  const std::vector<Int> ns = {3, 4, 5};
  std::vector<std::vector<std::size_t>> expected(variants.size());
  for (std::size_t v = 0; v < variants.size(); ++v) {
    for (Int n : ns) {
      expected[v].push_back(build_plan(variants[v].prog, variants[v].design.nest,
                                       sizes_for(variants[v].design, n),
                                       PlanShape{})
                                ->procs.size());
    }
  }

  PlanCache cache(16 * 1024);  // tiny: a couple of plans at most
  constexpr int kThreads = 8;
  constexpr int kIters = 30;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t vi = (t * 3 + i) % variants.size();
        const std::size_t si = (t + i * 5) % ns.size();
        const Variant& v = variants[vi];
        auto plan = cache.lookup_or_build(
            v.prog, v.design.nest, sizes_for(v.design, ns[si]), PlanShape{});
        if (plan == nullptr || plan->procs.size() != expected[vi][si]) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  // Four generations (two per design), templates never evicted: exactly
  // one template compile per generation despite the churn below.
  EXPECT_EQ(cache.template_compiles(), variants.size());
  EXPECT_GT(cache.evictions(), 0u) << "budget was meant to force churn";
  EXPECT_LE(cache.bytes(), std::size_t{16} * 1024 + (1u << 20))
      << "bytes may overshoot by at most one plan (the keep->=1 rule)";
}

// The degradation lever raced against lookups: shrinking and restoring
// the byte budget mid-traffic must neither crash, nor corrupt accounting,
// nor invalidate plans already handed out.
TEST(PlanCache, SetByteBudgetRacesWithLookupsSafely) {
  Design design = design_by_name("polyprod1");
  CompiledProgram prog = compile(design.nest, design.spec);
  const std::vector<Int> ns = {3, 4, 5, 6, 7};
  std::vector<std::size_t> expected;
  for (Int n : ns) {
    expected.push_back(
        build_plan(prog, design.nest, sizes_for(design, n), PlanShape{})
            ->procs.size());
  }

  PlanCache cache;  // start at the default budget
  std::atomic<bool> stop{false};
  std::thread resizer([&] {
    // Oscillate between generous and starving budgets.
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      cache.set_byte_budget(i % 2 == 0 ? 4 * 1024 : 64 * 1024 * 1024);
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  constexpr int kThreads = 6;
  constexpr int kIters = 60;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t si = (t + i) % ns.size();
        auto plan = cache.lookup_or_build(
            prog, design.nest, sizes_for(design, ns[si]), PlanShape{});
        if (plan == nullptr || plan->procs.size() != expected[si]) {
          ++failures[t];
          continue;
        }
        // Touch the plan after (possibly) being evicted underneath us:
        // handed-out shared_ptrs stay fully valid.
        if (plan->channels.empty() || plan->graph.nodes.empty()) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  resizer.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  // Accounting stayed coherent through the churn.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::size_t>(kThreads) * kIters);
  cache.set_byte_budget(1);  // final shrink: at most one survivor
  EXPECT_LE(cache.size(), 1u);
}

}  // namespace
}  // namespace systolize
