#include "runtime/host.hpp"

#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

TEST(IndexedStore, GetSetDefaultsToZero) {
  IndexedStore store;
  EXPECT_EQ(store.get("a", IntVec{1, 2}), 0);
  store.set("a", IntVec{1, 2}, 42);
  EXPECT_EQ(store.get("a", IntVec{1, 2}), 42);
  EXPECT_EQ(store.get("a", IntVec{2, 1}), 0);
  EXPECT_FALSE(store.has("b"));
  EXPECT_TRUE(store.has("a"));
  EXPECT_THROW((void)store.elements("b"), Error);
}

TEST(IndexedStore, DomainEnumeratesVariableSpace) {
  Design d = polyprod_design1();
  Env env{{"n", Rational(2)}};
  auto dom = IndexedStore::domain(d.nest.stream("c"), env);
  ASSERT_EQ(dom.size(), 5u);  // 0 .. 2n
  EXPECT_EQ(dom.front(), (IntVec{0}));
  EXPECT_EQ(dom.back(), (IntVec{4}));

  Design m = matmul_design1();
  auto dom2 = IndexedStore::domain(m.nest.stream("a"), env);
  EXPECT_EQ(dom2.size(), 9u);  // (n+1)^2
}

TEST(IndexedStore, FillCoversDomain) {
  Design d = matmul_design1();
  Env env{{"n", Rational(2)}};
  IndexedStore store;
  store.fill(d.nest.stream("a"), env,
             [](const IntVec& p) { return 10 * p[0] + p[1]; });
  EXPECT_EQ(store.elements("a").size(), 9u);
  EXPECT_EQ(store.get("a", IntVec{2, 1}), 21);
}

TEST(Sequential, PolynomialProductGroundTruth) {
  // (1 + x)^2 = 1 + 2x + x^2.
  Design d = polyprod_design1();
  Env env{{"n", Rational(1)}};
  IndexedStore store;
  store.fill(d.nest.stream("a"), env, [](const IntVec&) { return 1; });
  store.fill(d.nest.stream("b"), env, [](const IntVec&) { return 1; });
  store.fill(d.nest.stream("c"), env, [](const IntVec&) { return 0; });
  run_sequential(d.nest, env, store);
  EXPECT_EQ(store.get("c", IntVec{0}), 1);
  EXPECT_EQ(store.get("c", IntVec{1}), 2);
  EXPECT_EQ(store.get("c", IntVec{2}), 1);
}

TEST(Sequential, MatrixProductGroundTruth) {
  // Identity times B equals B.
  Design d = matmul_design1();
  Env env{{"n", Rational(2)}};
  IndexedStore store;
  store.fill(d.nest.stream("a"), env,
             [](const IntVec& p) { return p[0] == p[1] ? 1 : 0; });
  store.fill(d.nest.stream("b"), env,
             [](const IntVec& p) { return 3 * p[0] + p[1] + 1; });
  store.fill(d.nest.stream("c"), env, [](const IntVec&) { return 0; });
  run_sequential(d.nest, env, store);
  EXPECT_EQ(store.elements("c"), store.elements("b"));
}

TEST(Sequential, MakeInitialStoreZeroesUpdateStreams) {
  Design d = polyprod_design1();
  Env env{{"n", Rational(2)}};
  IndexedStore store = make_initial_store(
      d.nest, env, [](const std::string&, const IntVec&) { return 7; });
  EXPECT_EQ(store.get("a", IntVec{0}), 7);
  EXPECT_EQ(store.get("c", IntVec{0}), 0);
  EXPECT_EQ(store.elements("c").size(), 5u);
}

}  // namespace
}  // namespace systolize
