#include "runtime/scheduler.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace systolize {
namespace {

// NOTE: coroutine bodies are free functions taking everything by value or
// by pointer — coroutine parameters are copied into the frame, whereas a
// capturing lambda coroutine would dangle once its closure dies.

Task sender_body(Ctx ctx, Channel* chan, std::vector<Value> values) {
  for (Value v : values) co_await ctx.send(*chan, v);
}

Task receiver_body(Ctx ctx, Channel* chan, std::size_t count,
                   std::vector<Value>* out) {
  for (std::size_t i = 0; i < count; ++i) {
    Value v = 0;
    co_await ctx.recv(*chan, v);
    out->push_back(v);
  }
}

Task relay_plus_one_body(Ctx ctx, Channel* in, Channel* out, int count) {
  for (int i = 0; i < count; ++i) {
    Value v = 0;
    co_await ctx.recv(*in, v);
    co_await ctx.send(*out, v + 1);
  }
}

Task recv_then_send_body(Ctx ctx, Channel* in, Channel* out) {
  Value v = 0;
  co_await ctx.recv(*in, v);
  co_await ctx.send(*out, v);
}

Task send_then_recv_body(Ctx ctx, Channel* out, Channel* in) {
  co_await ctx.send(*out, 7);
  Value v = 0;
  co_await ctx.recv(*in, v);
}

Task par_recv_two_body(Ctx ctx, Channel* a, Channel* b, Value* got_a,
                       Value* got_b) {
  std::vector<CommOp> ops;
  ops.push_back(ctx.recv_op(*a, *got_a));
  ops.push_back(ctx.recv_op(*b, *got_b));
  co_await ctx.par(std::move(ops));
}

Task par_send_two_body(Ctx ctx, Channel* a, Channel* b, Value va, Value vb) {
  std::vector<CommOp> ops;
  ops.push_back(ctx.send_op(*a, va));
  ops.push_back(ctx.send_op(*b, vb));
  co_await ctx.par(std::move(ops));
}

Task recv_one_body(Ctx ctx, Channel* chan, Value* out) {
  co_await ctx.recv(*chan, *out);
}

Task send_then_tick_body(Ctx ctx, Channel* chan) {
  co_await ctx.send(*chan, 1);
  ctx.tick_statement();
}

Task throwing_body(Ctx ctx) {
  (void)ctx;
  raise(ErrorKind::Validation, "intentional");
  co_return;  // unreachable; makes this a coroutine
}

Task fixed_relay_body(Ctx ctx, Channel* in, Channel* out, Value count) {
  for (Value k = 0; k < count; ++k) {
    Value v = 0;
    co_await ctx.recv(*in, v);
    co_await ctx.send(*out, v);
  }
}

TEST(Scheduler, SimpleRendezvousTransfersInOrder) {
  Scheduler sched;
  Channel& chan = sched.make_channel("c");
  std::vector<Value> got;
  Channel* cp = &chan;
  std::vector<Value>* gp = &got;
  sched.spawn("tx", [cp](Ctx ctx) {
    return sender_body(ctx, cp, {1, 2, 3});
  });
  sched.spawn("rx", [cp, gp](Ctx ctx) { return receiver_body(ctx, cp, 3, gp); });
  sched.run();
  EXPECT_EQ(got, (std::vector<Value>{1, 2, 3}));
  EXPECT_EQ(chan.transfers(), 3);
  EXPECT_EQ(sched.total_transfers(), 3);
}

TEST(Scheduler, ReceiverFirstAlsoWorks) {
  Scheduler sched;
  Channel* chan = &sched.make_channel("c");
  std::vector<Value> got;
  std::vector<Value>* gp = &got;
  sched.spawn("rx",
              [chan, gp](Ctx ctx) { return receiver_body(ctx, chan, 2, gp); });
  sched.spawn("tx", [chan](Ctx ctx) { return sender_body(ctx, chan, {7, 9}); });
  sched.run();
  EXPECT_EQ(got, (std::vector<Value>{7, 9}));
}

TEST(Scheduler, PipelineThroughMiddleProcess) {
  Scheduler sched;
  Channel* a = &sched.make_channel("a");
  Channel* b = &sched.make_channel("b");
  std::vector<Value> got;
  std::vector<Value>* gp = &got;
  sched.spawn("tx", [a](Ctx ctx) { return sender_body(ctx, a, {10, 20, 30}); });
  sched.spawn("mid",
              [a, b](Ctx ctx) { return relay_plus_one_body(ctx, a, b, 3); });
  sched.spawn("rx", [b, gp](Ctx ctx) { return receiver_body(ctx, b, 3, gp); });
  sched.run();
  EXPECT_EQ(got, (std::vector<Value>{11, 21, 31}));
}

TEST(Scheduler, DeadlockDetected) {
  Scheduler sched;
  Channel* a = &sched.make_channel("a");
  Channel* b = &sched.make_channel("b");
  // Two processes each receiving from the other first: classic cycle.
  sched.spawn("p1", [a, b](Ctx ctx) { return recv_then_send_body(ctx, a, b); });
  sched.spawn("p2", [a, b](Ctx ctx) { return recv_then_send_body(ctx, b, a); });
  try {
    sched.run();
    FAIL() << "expected deadlock";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Runtime);
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(Scheduler, SendSendCycleNamesBothBlockedProcesses) {
  Scheduler sched;
  Channel* a = &sched.make_channel("a");
  Channel* b = &sched.make_channel("b");
  // Each process offers its send first: neither receive is ever reached,
  // so the two sends wait on each other forever.
  sched.spawn("p1", [a, b](Ctx ctx) { return send_then_recv_body(ctx, a, b); });
  sched.spawn("p2", [a, b](Ctx ctx) { return send_then_recv_body(ctx, b, a); });
  try {
    sched.run();
    FAIL() << "expected deadlock";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Runtime);
    std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("p1"), std::string::npos) << what;
    EXPECT_NE(what.find("p2"), std::string::npos) << what;
    EXPECT_NE(what.find("send a"), std::string::npos) << what;
    EXPECT_NE(what.find("send b"), std::string::npos) << what;
  }
}

TEST(Scheduler, ShortSendDeadlocksWhenReceiverExpectsMore) {
  // Failure injection: a protocol count mismatch must not pass silently.
  Scheduler sched;
  Channel* chan = &sched.make_channel("c");
  std::vector<Value> got;
  std::vector<Value>* gp = &got;
  sched.spawn("tx", [chan](Ctx ctx) { return sender_body(ctx, chan, {1}); });
  sched.spawn("rx",
              [chan, gp](Ctx ctx) { return receiver_body(ctx, chan, 2, gp); });
  EXPECT_THROW(sched.run(), Error);
}

TEST(Scheduler, ParCompletesRegardlessOfPartnerOrder) {
  Scheduler sched;
  Channel* a = &sched.make_channel("a");
  Channel* b = &sched.make_channel("b");
  Value got_a = 0;
  Value got_b = 0;
  Value* pa = &got_a;
  Value* pb = &got_b;
  sched.spawn("rx", [a, b, pa, pb](Ctx ctx) {
    return par_recv_two_body(ctx, a, b, pa, pb);
  });
  sched.spawn("tx_b", [b](Ctx ctx) { return sender_body(ctx, b, {200}); });
  sched.spawn("tx_a", [a](Ctx ctx) { return sender_body(ctx, a, {100}); });
  sched.run();
  EXPECT_EQ(got_a, 100);
  EXPECT_EQ(got_b, 200);
}

TEST(Scheduler, ParSendUnblocksCrossedReceivers) {
  Scheduler sched;
  Channel* a = &sched.make_channel("a");
  Channel* b = &sched.make_channel("b");
  Value va = 0;
  Value vb = 0;
  Value* ppa = &va;
  Value* ppb = &vb;
  sched.spawn("p1",
              [a, b](Ctx ctx) { return par_send_two_body(ctx, a, b, 1, 2); });
  sched.spawn("p2", [b, ppb](Ctx ctx) { return recv_one_body(ctx, b, ppb); });
  sched.spawn("p3", [a, ppa](Ctx ctx) { return recv_one_body(ctx, a, ppa); });
  sched.run();
  EXPECT_EQ(va, 1);
  EXPECT_EQ(vb, 2);
}

TEST(Scheduler, BufferedChannelDecouplesSender) {
  Scheduler sched;
  Channel* chan = &sched.make_channel("c", /*capacity=*/2);
  std::vector<Value> got;
  std::vector<Value>* gp = &got;
  // With capacity 2, the sender can finish before the receiver starts.
  sched.spawn("tx", [chan](Ctx ctx) { return sender_body(ctx, chan, {5, 6}); });
  sched.spawn("rx",
              [chan, gp](Ctx ctx) { return receiver_body(ctx, chan, 2, gp); });
  sched.run();
  EXPECT_EQ(got, (std::vector<Value>{5, 6}));
}

TEST(Scheduler, LogicalClockAdvancesPerRendezvousAndStatement) {
  Scheduler sched;
  Channel* chan = &sched.make_channel("c");
  Value sink = 0;
  Value* ps = &sink;
  sched.spawn("tx", [chan](Ctx ctx) { return send_then_tick_body(ctx, chan); });
  sched.spawn("rx", [chan, ps](Ctx ctx) { return recv_one_body(ctx, chan, ps); });
  sched.run();
  // One rendezvous at t=1, one statement afterwards: makespan 2.
  EXPECT_EQ(sched.makespan(), 2);
}

TEST(Scheduler, ProcessExceptionPropagates) {
  Scheduler sched;
  sched.spawn("boom", [](Ctx ctx) { return throwing_body(ctx); });
  try {
    sched.run();
    FAIL() << "expected propagated exception";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Validation);
  }
}

TEST(Scheduler, ManyProcessChain) {
  // A 200-stage pipeline moving 50 values end to end.
  Scheduler sched;
  constexpr int kStages = 200;
  constexpr Value kValues = 50;
  std::vector<Channel*> chans;
  chans.reserve(kStages + 1);
  for (int i = 0; i <= kStages; ++i) {
    chans.push_back(&sched.make_channel("c" + std::to_string(i)));
  }
  std::vector<Value> vals;
  for (Value v = 0; v < kValues; ++v) vals.push_back(v);
  Channel* head = chans[0];
  sched.spawn("tx", [head, vals](Ctx ctx) {
    return sender_body(ctx, head, vals);
  });
  for (int i = 0; i < kStages; ++i) {
    Channel* in = chans[i];
    Channel* out = chans[i + 1];
    sched.spawn("st" + std::to_string(i), [in, out](Ctx ctx) {
      return fixed_relay_body(ctx, in, out, kValues);
    });
  }
  std::vector<Value> got;
  std::vector<Value>* gp = &got;
  Channel* tail = chans[kStages];
  sched.spawn("rx", [tail, gp](Ctx ctx) {
    return receiver_body(ctx, tail, kValues, gp);
  });
  sched.run();
  EXPECT_EQ(got, vals);
  EXPECT_EQ(sched.total_transfers(), kValues * (kStages + 1));
}

}  // namespace
}  // namespace systolize
