// Differential suite for the bytecode backend (runtime/bytecode +
// runtime/vm): on every catalog design the lowered VM must be
// bit-identical to the interpreted fast path — results, makespan,
// transfer counts, statement counts AND scheduler rounds — because both
// engines implement the same dataflow-clock semantics over the same
// round structure. SoA batching must additionally reproduce, per lane,
// exactly what a per-instance sequential run produces.
#include <gtest/gtest.h>

#include <atomic>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

Value pseudo_random(const std::string& var, const IntVec& p) {
  Value h = 1469598103934665603LL;
  for (char c : var) h = (h ^ c) * 1099511628211LL;
  for (std::size_t i = 0; i < p.dim(); ++i) {
    h = (h ^ static_cast<Value>(p[i] + 1315423911LL)) * 1099511628211LL;
  }
  return (h % 19) - 9;
}

Env sizes_for(const Design& design, Int n, Int m) {
  Env env{{"n", Rational(n)}};
  for (const Symbol& s : design.nest.sizes()) {
    if (!env.contains(s.name())) env[s.name()] = Rational(m);
  }
  return env;
}

/// Instance `lane` of a batch: deterministically different values per
/// lane so cross-lane mixups cannot cancel out.
IndexedStore seeded_lane(const Design& design, const Env& sizes, Int lane) {
  return make_initial_store(design.nest, sizes,
                            [lane](const auto& v, const auto& p) {
                              return pseudo_random(v, p) + 13 * lane;
                            });
}

IndexedStore seeded(const Design& design, const Env& sizes) {
  return seeded_lane(design, sizes, 0);
}

void expect_same_stores(const Design& design, const IndexedStore& a,
                        const IndexedStore& b, const std::string& what) {
  for (const Stream& s : design.nest.streams()) {
    EXPECT_EQ(a.elements(s.name()), b.elements(s.name()))
        << what << " stream " << s.name();
  }
}

InstantiateOptions bytecode_opt(InstantiateOptions opt = {}) {
  opt.backend = Backend::Bytecode;
  return opt;
}

class BytecodeDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(BytecodeDifferential, BytecodeMatchesInterpBitForBit) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  for (Int n : {2, 4}) {
    Env sizes = sizes_for(design, n, std::max<Int>(1, n - 1));
    IndexedStore interp_store = seeded(design, sizes);
    IndexedStore vm_store = interp_store;
    RunMetrics interp = execute(prog, design.nest, sizes, interp_store, {});
    RunMetrics vm =
        execute(prog, design.nest, sizes, vm_store, bytecode_opt());
    expect_same_stores(design, interp_store, vm_store, GetParam());
    EXPECT_EQ(interp.makespan, vm.makespan) << GetParam() << " n=" << n;
    EXPECT_EQ(interp.total_transfers, vm.total_transfers)
        << GetParam() << " n=" << n;
    EXPECT_EQ(interp.statements, vm.statements) << GetParam() << " n=" << n;
    EXPECT_EQ(interp.transfers_per_stream, vm.transfers_per_stream)
        << GetParam() << " n=" << n;
    // The VM replicates the fast loop's double-buffered round structure,
    // so even the round count must agree exactly.
    EXPECT_EQ(interp.scheduler_rounds, vm.scheduler_rounds)
        << GetParam() << " n=" << n;
    EXPECT_EQ(vm.backend, "bytecode");
    EXPECT_GT(vm.bytecode_instructions, 0u);
  }
}

TEST_P(BytecodeDifferential, BatchedLanesMatchPerInstanceRuns) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 4, 3);
  constexpr std::size_t kBatch = 5;
  std::vector<IndexedStore> lanes;
  std::vector<IndexedStore> expected;
  for (std::size_t l = 0; l < kBatch; ++l) {
    lanes.push_back(seeded_lane(design, sizes, static_cast<Int>(l)));
    expected.push_back(lanes.back());
  }
  // Auto + batch > 1 + eligible options must pick the VM.
  RunMetrics batched = execute_batch(prog, design.nest, sizes, lanes.data(),
                                     kBatch, {});
  EXPECT_EQ(batched.backend, "bytecode") << GetParam();
  EXPECT_EQ(batched.batch, kBatch);
  RunMetrics single;
  for (std::size_t l = 0; l < kBatch; ++l) {
    // Ground truth per lane: the paper-order sequential loop nest, plus
    // the interpreted engine for the schedule metrics.
    IndexedStore interp_store = expected[l];
    single = execute(prog, design.nest, sizes, interp_store, {});
    run_sequential(design.nest, sizes, expected[l]);
    expect_same_stores(design, lanes[l], expected[l],
                       GetParam() + " lane " + std::to_string(l));
    expect_same_stores(design, lanes[l], interp_store,
                       GetParam() + " lane(interp) " + std::to_string(l));
  }
  // The schedule is shared across lanes and identical to single-instance.
  EXPECT_EQ(batched.makespan, single.makespan) << GetParam();
  EXPECT_EQ(batched.total_transfers, single.total_transfers) << GetParam();
  EXPECT_EQ(batched.statements, single.statements) << GetParam();
  EXPECT_EQ(batched.scheduler_rounds, single.scheduler_rounds) << GetParam();
  EXPECT_EQ(batched.transfers_per_stream, single.transfers_per_stream)
      << GetParam();
}

TEST_P(BytecodeDifferential, ThreadedBatchMatchesSequentialBatch) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 3, 2);
  constexpr std::size_t kBatch = 6;
  std::vector<IndexedStore> seq_lanes;
  std::vector<IndexedStore> par_lanes;
  for (std::size_t l = 0; l < kBatch; ++l) {
    seq_lanes.push_back(seeded_lane(design, sizes, static_cast<Int>(l)));
    par_lanes.push_back(seq_lanes.back());
  }
  RunMetrics seq = execute_batch(prog, design.nest, sizes, seq_lanes.data(),
                                 kBatch, bytecode_opt());
  InstantiateOptions par = bytecode_opt();
  par.threads = 3;
  RunMetrics parm = execute_batch(prog, design.nest, sizes, par_lanes.data(),
                                  kBatch, par);
  for (std::size_t l = 0; l < kBatch; ++l) {
    expect_same_stores(design, seq_lanes[l], par_lanes[l],
                       GetParam() + " lane " + std::to_string(l));
  }
  EXPECT_EQ(seq.makespan, parm.makespan) << GetParam();
  EXPECT_EQ(seq.total_transfers, parm.total_transfers) << GetParam();
  EXPECT_EQ(seq.statements, parm.statements) << GetParam();
  EXPECT_EQ(seq.scheduler_rounds, parm.scheduler_rounds) << GetParam();
}

TEST_P(BytecodeDifferential, InterpBatchFallbackMatchesVmBatch) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 3, 2);
  constexpr std::size_t kBatch = 3;
  std::vector<IndexedStore> vm_lanes;
  std::vector<IndexedStore> interp_lanes;
  for (std::size_t l = 0; l < kBatch; ++l) {
    vm_lanes.push_back(seeded_lane(design, sizes, static_cast<Int>(l)));
    interp_lanes.push_back(vm_lanes.back());
  }
  RunMetrics vm = execute_batch(prog, design.nest, sizes, vm_lanes.data(),
                                kBatch, bytecode_opt());
  InstantiateOptions iopt;
  iopt.backend = Backend::Interp;
  RunMetrics interp = execute_batch(prog, design.nest, sizes,
                                    interp_lanes.data(), kBatch, iopt);
  EXPECT_EQ(interp.backend, "interp") << GetParam();
  EXPECT_EQ(interp.batch, kBatch);
  for (std::size_t l = 0; l < kBatch; ++l) {
    expect_same_stores(design, vm_lanes[l], interp_lanes[l],
                       GetParam() + " lane " + std::to_string(l));
  }
  EXPECT_EQ(vm.makespan, interp.makespan) << GetParam();
  EXPECT_EQ(vm.total_transfers, interp.total_transfers) << GetParam();
  EXPECT_EQ(vm.statements, interp.statements) << GetParam();
  EXPECT_EQ(vm.scheduler_rounds, interp.scheduler_rounds) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, BytecodeDifferential,
                         ::testing::Values("polyprod1", "polyprod2",
                                           "polyprod3", "matmul1", "matmul2",
                                           "matmul3", "matmul4",
                                           "convolution", "correlation",
                                           "fir_bank", "closure"));

TEST(BytecodeValidation, RejectsIncompatibleOptions) {
  Design design = design_by_name("polyprod1");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(3)}};
  auto expect_rejected = [&](InstantiateOptions opt) {
    opt.backend = Backend::Bytecode;
    IndexedStore store = seeded(design, sizes);
    try {
      (void)execute(prog, design.nest, sizes, store, opt);
      FAIL() << "expected Error(Validation)";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::Validation);
      EXPECT_NE(std::string(e.what()).find("bytecode backend"),
                std::string::npos);
    }
  };
  {
    InstantiateOptions opt;
    opt.channel_capacity = 2;
    expect_rejected(opt);
  }
  {
    InstantiateOptions opt;
    opt.merge_internal_buffers = true;
    expect_rejected(opt);
  }
  {
    InstantiateOptions opt;
    opt.partition_grid = IntVec(std::vector<Int>{2});
    expect_rejected(opt);
  }
  {
    InstantiateOptions opt;
    Trace trace;
    opt.trace = &trace;
    expect_rejected(opt);
  }
  {
    InstantiateOptions opt;
    FaultPlan faults = FaultPlan::parse("seed=1;stall=0.5:3");
    opt.faults = &faults;
    expect_rejected(opt);
  }
  {
    InstantiateOptions opt;
    opt.watchdog.max_blocked_rounds = 50;
    expect_rejected(opt);
  }
}

TEST(BytecodeValidation, BatchRejectsFaultsOnAnyBackend) {
  Design design = design_by_name("polyprod1");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(3)}};
  FaultPlan faults = FaultPlan::parse("seed=1;stall=0.5:3");
  std::vector<IndexedStore> lanes{seeded(design, sizes),
                                  seeded(design, sizes)};
  for (Backend b : {Backend::Auto, Backend::Interp, Backend::Bytecode}) {
    InstantiateOptions opt;
    opt.backend = b;
    opt.faults = &faults;
    EXPECT_THROW((void)execute_batch(prog, design.nest, sizes, lanes.data(),
                                     lanes.size(), opt),
                 Error);
  }
}

TEST(BytecodeValidation, RoundBudgetAndCancelAreEnforced) {
  Design design = design_by_name("matmul1");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(4)}};
  {
    // A generous budget must not perturb the run.
    IndexedStore store = seeded(design, sizes);
    InstantiateOptions opt = bytecode_opt();
    opt.watchdog.max_rounds = Int{1} << 40;
    EXPECT_NO_THROW((void)execute(prog, design.nest, sizes, store, opt));
  }
  {
    // A tiny budget trips the same watchdog classification as the
    // instrumented scheduler: Error(Timeout) mentioning the budget.
    IndexedStore store = seeded(design, sizes);
    InstantiateOptions opt = bytecode_opt();
    opt.watchdog.max_rounds = 2;
    try {
      (void)execute(prog, design.nest, sizes, store, opt);
      FAIL() << "expected Error(Timeout)";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::Timeout);
      EXPECT_NE(std::string(e.what()).find("round budget"),
                std::string::npos);
    }
  }
  {
    std::atomic<bool> cancel{true};
    IndexedStore store = seeded(design, sizes);
    InstantiateOptions opt = bytecode_opt();
    opt.watchdog.cancel = &cancel;
    try {
      (void)execute(prog, design.nest, sizes, store, opt);
      FAIL() << "expected Error(Cancelled)";
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::Cancelled);
    }
  }
}

TEST(BytecodeCache, LoweredProgramIsCachedByPlanIdentity) {
  Design design = design_by_name("polyprod1");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(3)}};
  PlanCache cache;
  InstantiateOptions opt = bytecode_opt();
  opt.plan_cache = &cache;
  IndexedStore first_store = seeded(design, sizes);
  IndexedStore second_store = first_store;
  RunMetrics first = execute(prog, design.nest, sizes, first_store, opt);
  RunMetrics second = execute(prog, design.nest, sizes, second_store, opt);
  EXPECT_FALSE(first.bytecode_reused);
  EXPECT_TRUE(second.bytecode_reused);
  EXPECT_EQ(second.bytecode_lower_ns, 0);
  EXPECT_EQ(first.bytecode_instructions, second.bytecode_instructions);
  EXPECT_EQ(cache.bytecode_size(), 1u);
  EXPECT_EQ(cache.bytecode_misses(), 1u);
  EXPECT_EQ(cache.bytecode_hits(), 1u);
  EXPECT_GT(cache.bytecode_bytes(), 0u);
  expect_same_stores(design, first_store, second_store, "cached-bytecode");
}

TEST(BytecodeCache, ShrinkingTheBudgetEvictsLoweredPrograms) {
  Design design = design_by_name("polyprod1");
  CompiledProgram prog = compile(design.nest, design.spec);
  PlanCache cache;
  InstantiateOptions opt = bytecode_opt();
  opt.plan_cache = &cache;
  for (Int n : {2, 3, 4}) {
    Env sizes{{"n", Rational(n)}};
    IndexedStore store = seeded(design, sizes);
    (void)execute(prog, design.nest, sizes, store, opt);
  }
  EXPECT_EQ(cache.bytecode_size(), 3u);
  cache.set_byte_budget(1);
  EXPECT_EQ(cache.bytecode_size(), 1u);
  EXPECT_EQ(cache.bytecode_evictions(), 2u);
  // Evicted programs must be re-lowered, not mis-served.
  Env sizes{{"n", Rational(2)}};
  IndexedStore store = seeded(design, sizes);
  IndexedStore fresh = store;
  RunMetrics relowered = execute(prog, design.nest, sizes, store, opt);
  InstantiateOptions no_cache = bytecode_opt();
  (void)execute(prog, design.nest, sizes, fresh, no_cache);
  EXPECT_FALSE(relowered.bytecode_reused);
  expect_same_stores(design, store, fresh, "relowered");
}

}  // namespace
}  // namespace systolize
