// Failure injection: corrupted compiled programs must be rejected loudly —
// either by the instantiation-time conservation law (soak + uses + drain
// must equal the pipeline length) or by the scheduler's deadlock detector.
// Silent wrong answers are the failure mode a distributed runtime must
// never have.
#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

Env sizes3() { return Env{{"n", Rational(3)}}; }

IndexedStore seed(const Design& d) {
  return make_initial_store(
      d.nest, sizes3(), [](const std::string&, const IntVec&) { return 1; });
}

TEST(FailureInjection, CorruptedSoakCountViolatesConservation) {
  Design d = polyprod_design2();
  CompiledProgram prog = compile(d.nest, d.spec);
  // Claim one extra soaked element of stream a at every process.
  Piecewise<AffineExpr> corrupted;
  for (const auto& piece : prog.streams[0].soak.pieces()) {
    corrupted.add(piece.guard, piece.value + AffineExpr(1));
  }
  prog.streams[0].soak = corrupted;
  IndexedStore store = seed(d);
  try {
    (void)execute(prog, d.nest, sizes3(), store);
    FAIL() << "expected conservation failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Inconsistent) << e.what();
    EXPECT_NE(std::string(e.what()).find("soak+uses+drain"),
              std::string::npos)
        << e.what();
  }
}

TEST(FailureInjection, OverlongPipelineCountDeadlocks) {
  Design d = polyprod_design1();
  CompiledProgram prog = compile(d.nest, d.spec);
  // Inflate stream b's pipeline count: the input process offers more
  // elements than anyone consumes and blocks forever. The conservation
  // check cannot see this (it compares against the same corrupted count),
  // but the deadlock detector fires.
  Piecewise<AffineExpr> corrupted;
  for (const auto& piece : prog.stream_plan("b").io.count_s.pieces()) {
    corrupted.add(piece.guard, piece.value + AffineExpr(1));
  }
  for (StreamPlan& plan : prog.streams) {
    if (plan.name == "b") plan.io.count_s = corrupted;
  }
  IndexedStore store = seed(d);
  try {
    (void)execute(prog, d.nest, sizes3(), store);
    FAIL() << "expected a failure";
  } catch (const Error& e) {
    // Either the conservation law or the deadlock detector must fire.
    EXPECT_TRUE(e.kind() == ErrorKind::Runtime ||
                e.kind() == ErrorKind::Inconsistent)
        << e.what();
  }
}

TEST(FailureInjection, RepeaterCountMismatchIsCaught) {
  Design d = matmul_design1();
  CompiledProgram prog = compile(d.nest, d.spec);
  // One fewer statement per process: uses no longer match the pipelines.
  Piecewise<AffineExpr> corrupted;
  for (const auto& piece : prog.repeater.count.pieces()) {
    corrupted.add(piece.guard, piece.value - AffineExpr(1));
  }
  prog.repeater.count = corrupted;
  IndexedStore store = seed(d);
  try {
    (void)execute(prog, d.nest, sizes3(), store);
    FAIL() << "expected conservation failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Inconsistent) << e.what();
  }
}

TEST(FailureInjection, ThrowingStatementBodyPropagates) {
  Design d = polyprod_design1();
  LoopNest broken(
      d.nest.name(), d.nest.loops(), d.nest.streams(), d.nest.sizes(),
      d.nest.size_assumptions(),
      [](std::map<std::string, Value>&) {
        raise(ErrorKind::Validation, "statement body exploded");
      },
      d.nest.body_text());
  CompiledProgram prog = compile(broken, d.spec);
  IndexedStore store = seed(d);
  try {
    (void)execute(prog, broken, sizes3(), store);
    FAIL() << "expected propagated body exception";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Validation);
    EXPECT_NE(std::string(e.what()).find("exploded"), std::string::npos);
  }
}

}  // namespace
}  // namespace systolize
