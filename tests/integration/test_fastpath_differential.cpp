// Differential suite for the execution engine's three paths: the
// zero-overhead fast path (no faults, no watchdog), the instrumented
// path (any fault/watchdog attachment forces it), and the sharded
// parallel path (--threads). All three must produce bit-identical
// results, makespans and transfer counts; fast and instrumented must
// also agree on scheduler rounds (same batch boundaries), while sharded
// rounds are a max over shards and deliberately excluded.
#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

Value pseudo_random(const std::string& var, const IntVec& p) {
  Value h = 1469598103934665603LL;
  for (char c : var) h = (h ^ c) * 1099511628211LL;
  for (std::size_t i = 0; i < p.dim(); ++i) {
    h = (h ^ static_cast<Value>(p[i] + 1315423911LL)) * 1099511628211LL;
  }
  return (h % 19) - 9;
}

Env sizes_for(const Design& design, Int n, Int m) {
  Env env{{"n", Rational(n)}};
  for (const Symbol& s : design.nest.sizes()) {
    if (!env.contains(s.name())) env[s.name()] = Rational(m);
  }
  return env;
}

IndexedStore seeded(const Design& design, const Env& sizes) {
  return make_initial_store(design.nest, sizes,
                            [](const auto& v, const auto& p) {
                              return pseudo_random(v, p);
                            });
}

/// An attached (but never-firing) watchdog is the cheapest way to force
/// the instrumented path without changing observable behaviour.
InstantiateOptions instrumented(InstantiateOptions opt = {}) {
  opt.watchdog.max_rounds = Int{1} << 40;
  return opt;
}

void expect_same_stores(const Design& design, const IndexedStore& a,
                        const IndexedStore& b, const std::string& what) {
  for (const Stream& s : design.nest.streams()) {
    EXPECT_EQ(a.elements(s.name()), b.elements(s.name()))
        << what << " stream " << s.name();
  }
}

class FastPathDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(FastPathDifferential, FastAndInstrumentedAgreeExactly) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  for (Int n : {2, 4}) {
    Env sizes = sizes_for(design, n, std::max<Int>(1, n - 1));
    IndexedStore fast_store = seeded(design, sizes);
    IndexedStore inst_store = fast_store;
    RunMetrics fast = execute(prog, design.nest, sizes, fast_store, {});
    RunMetrics inst =
        execute(prog, design.nest, sizes, inst_store, instrumented());
    expect_same_stores(design, fast_store, inst_store, GetParam());
    EXPECT_EQ(fast.makespan, inst.makespan) << GetParam();
    EXPECT_EQ(fast.total_transfers, inst.total_transfers) << GetParam();
    EXPECT_EQ(fast.statements, inst.statements) << GetParam();
    EXPECT_EQ(fast.transfers_per_stream, inst.transfers_per_stream)
        << GetParam();
    // Clean runs must report the same number of cooperative rounds on
    // either path — the fault clock and the fast loop share batch
    // boundaries by construction.
    EXPECT_EQ(fast.scheduler_rounds, inst.scheduler_rounds) << GetParam();
  }
}

TEST_P(FastPathDifferential, FastAndInstrumentedAgreeOnVariants) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 3, 2);
  for (int variant = 0; variant < 2; ++variant) {
    InstantiateOptions opt;
    if (variant == 0) {
      opt.channel_capacity = 2;
    } else {
      opt.merge_internal_buffers = true;
    }
    IndexedStore fast_store = seeded(design, sizes);
    IndexedStore inst_store = fast_store;
    RunMetrics fast = execute(prog, design.nest, sizes, fast_store, opt);
    RunMetrics inst =
        execute(prog, design.nest, sizes, inst_store, instrumented(opt));
    expect_same_stores(design, fast_store, inst_store, GetParam());
    EXPECT_EQ(fast.makespan, inst.makespan) << GetParam() << " v" << variant;
    EXPECT_EQ(fast.total_transfers, inst.total_transfers)
        << GetParam() << " v" << variant;
    EXPECT_EQ(fast.scheduler_rounds, inst.scheduler_rounds)
        << GetParam() << " v" << variant;
  }
}

TEST_P(FastPathDifferential, ShardedRunIsBitIdenticalToSequential) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  for (Int n : {2, 5}) {
    Env sizes = sizes_for(design, n, std::max<Int>(1, n - 1));
    IndexedStore seq_store = seeded(design, sizes);
    IndexedStore par_store = seq_store;
    RunMetrics seq = execute(prog, design.nest, sizes, seq_store, {});
    InstantiateOptions par_opt;
    par_opt.threads = 4;
    RunMetrics par = execute(prog, design.nest, sizes, par_store, par_opt);
    expect_same_stores(design, seq_store, par_store, GetParam());
    EXPECT_EQ(seq.makespan, par.makespan) << GetParam() << " n=" << n;
    EXPECT_EQ(seq.total_transfers, par.total_transfers)
        << GetParam() << " n=" << n;
    EXPECT_EQ(seq.statements, par.statements) << GetParam() << " n=" << n;
    EXPECT_EQ(seq.transfers_per_stream, par.transfers_per_stream)
        << GetParam() << " n=" << n;
    EXPECT_GE(par.shards, 1u) << GetParam();
    // scheduler_rounds is a max over shards on the parallel path, not
    // schedule-invariant: deliberately not compared.
  }
}

TEST_P(FastPathDifferential, CachedPlanReproducesFreshPlanExactly) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 4, 2);
  PlanCache cache;
  InstantiateOptions opt;
  opt.plan_cache = &cache;
  IndexedStore first_store = seeded(design, sizes);
  IndexedStore second_store = first_store;
  IndexedStore fresh_store = first_store;
  RunMetrics first = execute(prog, design.nest, sizes, first_store, opt);
  RunMetrics second = execute(prog, design.nest, sizes, second_store, opt);
  RunMetrics fresh = execute(prog, design.nest, sizes, fresh_store, {});
  EXPECT_FALSE(first.plan_reused);
  EXPECT_TRUE(second.plan_reused);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  expect_same_stores(design, first_store, second_store, "cached-repeat");
  expect_same_stores(design, first_store, fresh_store, "cached-vs-fresh");
  EXPECT_EQ(first.makespan, second.makespan);
  EXPECT_EQ(first.makespan, fresh.makespan);
  EXPECT_EQ(first.total_transfers, second.total_transfers);
  EXPECT_EQ(first.transfers_per_stream, fresh.transfers_per_stream);
}

TEST_P(FastPathDifferential, AllPathsMatchSequentialGroundTruth) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 4, 3);
  IndexedStore expected = seeded(design, sizes);
  IndexedStore fast_store = expected;
  IndexedStore inst_store = expected;
  IndexedStore par_store = expected;
  run_sequential(design.nest, sizes, expected);
  (void)execute(prog, design.nest, sizes, fast_store, {});
  (void)execute(prog, design.nest, sizes, inst_store, instrumented());
  InstantiateOptions par_opt;
  par_opt.threads = 3;
  (void)execute(prog, design.nest, sizes, par_store, par_opt);
  expect_same_stores(design, fast_store, expected, "fast-vs-seq");
  expect_same_stores(design, inst_store, expected, "inst-vs-seq");
  expect_same_stores(design, par_store, expected, "par-vs-seq");
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, FastPathDifferential,
                         ::testing::Values("polyprod1", "polyprod2",
                                           "polyprod3", "matmul1", "matmul2",
                                           "matmul3", "matmul4",
                                           "convolution", "correlation",
                                           "fir_bank", "closure"));

TEST(ShardedValidation, RejectsIncompatibleAttachments) {
  Design design = design_by_name("polyprod1");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(3)}};
  {
    // Round budgets are legal on the work-stealing substrate (bounded as
    // total resumptions); a generous budget must not perturb the run.
    IndexedStore store = seeded(design, sizes);
    InstantiateOptions opt;
    opt.threads = 2;
    opt.watchdog.max_rounds = 100000;
    EXPECT_NO_THROW((void)execute(prog, design.nest, sizes, store, opt));
  }
  {
    // Starvation bounds are a sequential-round notion: still rejected.
    IndexedStore store = seeded(design, sizes);
    InstantiateOptions opt;
    opt.threads = 2;
    opt.watchdog.max_blocked_rounds = 50;
    EXPECT_THROW((void)execute(prog, design.nest, sizes, store, opt), Error);
  }
  {
    // Transfer-time faults consume PRNG state in schedule order: rejected.
    IndexedStore store = seeded(design, sizes);
    InstantiateOptions opt;
    opt.threads = 2;
    FaultPlan faults = FaultPlan::parse("seed=1;delay=0.5:3");
    opt.faults = &faults;
    EXPECT_THROW((void)execute(prog, design.nest, sizes, store, opt), Error);
  }
  {
    IndexedStore store = seeded(design, sizes);
    InstantiateOptions opt;
    opt.threads = 2;
    opt.channel_capacity = 2;
    EXPECT_THROW((void)execute(prog, design.nest, sizes, store, opt), Error);
  }
  {
    IndexedStore store = seeded(design, sizes);
    InstantiateOptions opt;
    opt.threads = 2;
    opt.partition_grid = IntVec(std::vector<Int>{2});
    EXPECT_THROW((void)execute(prog, design.nest, sizes, store, opt), Error);
  }
}

TEST(ShardedValidation, SingleThreadIsJustTheFastPath) {
  Design design = design_by_name("matmul1");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(3)}};
  IndexedStore seq_store = seeded(design, sizes);
  IndexedStore one_store = seq_store;
  RunMetrics seq = execute(prog, design.nest, sizes, seq_store, {});
  InstantiateOptions opt;
  opt.threads = 1;
  RunMetrics one = execute(prog, design.nest, sizes, one_store, opt);
  expect_same_stores(design, seq_store, one_store, "threads=1");
  EXPECT_EQ(seq.makespan, one.makespan);
  EXPECT_EQ(one.shards, 0u);
}

}  // namespace
}  // namespace systolize
