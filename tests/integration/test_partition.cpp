// Partitioning onto a bounded processor array (the Sect.-8 extension via
// the paper's ref. [23]): processes multiplexed onto physical processors
// share a logical clock. Results must be bit-identical; only the makespan
// model changes.
#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

IntVec grid_for(const Design& design, Int g) {
  // One entry per process-space dimension.
  std::vector<Int> comps(design.nest.depth() - 1, g);
  return IntVec(comps);
}

class Partition : public ::testing::TestWithParam<std::string> {};

TEST_P(Partition, ResultsAreIdenticalUnderAnyPartition) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(4)}, {"m", Rational(2)}};
  IndexedStore expected = make_initial_store(
      design.nest, sizes,
      [](const std::string& v, const IntVec& p) { return v[0] + p[0]; });
  IndexedStore seed = expected;
  run_sequential(design.nest, sizes, expected);

  for (Int g : {1, 2, 3}) {
    IndexedStore store = seed;
    InstantiateOptions opt;
    opt.partition_grid = grid_for(design, g);
    RunMetrics metrics = execute(prog, design.nest, sizes, store, opt);
    for (const Stream& s : design.nest.streams()) {
      EXPECT_EQ(store.elements(s.name()), expected.elements(s.name()))
          << GetParam() << " stream " << s.name() << " grid " << g;
    }
    EXPECT_LE(metrics.physical_processors,
              static_cast<std::size_t>(1)
                  << (2 * (design.nest.depth() - 1)))
        << "grid " << g;
    EXPECT_GT(metrics.physical_processors, 0u);
  }
}

TEST_P(Partition, SerializationShowsInTheMakespan) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(4)}, {"m", Rational(2)}};
  auto run_with = [&](const IntVec& grid) {
    IndexedStore store = make_initial_store(
        design.nest, sizes,
        [](const std::string&, const IntVec&) { return 1; });
    InstantiateOptions opt;
    opt.partition_grid = grid;
    return execute(prog, design.nest, sizes, store, opt);
  };
  RunMetrics full = run_with(IntVec{});          // one processor per process
  RunMetrics single = run_with(grid_for(design, 1));  // everything on one

  EXPECT_EQ(single.physical_processors, 1u);
  EXPECT_EQ(full.physical_processors, full.process_count);
  // On a single processor every statement serializes on one clock.
  EXPECT_GE(single.makespan, single.statements);
  EXPECT_GT(single.makespan, full.makespan);
}

TEST_P(Partition, WrongGridDimensionIsRejected) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(2)}, {"m", Rational(2)}};
  IndexedStore store = make_initial_store(
      design.nest, sizes,
      [](const std::string&, const IntVec&) { return 0; });
  InstantiateOptions opt;
  std::vector<Int> comps(design.nest.depth() + 3, 2);
  opt.partition_grid = IntVec(comps);
  EXPECT_THROW((void)execute(prog, design.nest, sizes, store, opt), Error);
}

INSTANTIATE_TEST_SUITE_P(SomeDesigns, Partition,
                         ::testing::Values("polyprod1", "polyprod2",
                                           "matmul2", "convolution"));

}  // namespace
}  // namespace systolize
