// Differential resilience harness: instantiated networks under injected
// faults. Survivable faults (stalls, delays) perturb only the scheduling
// order — logical clocks are driven by the dataflow — so the run must
// still match the sequential ground truth AND the fault-free makespan.
// Fatal faults (kills, starving delays) must surface as a structured
// Error(Runtime) with forensics: never a hang, never a silent wrong
// answer. Every plan is seeded, so failures replay bit-identically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/faults.hpp"
#include "runtime/instantiate.hpp"
#include "runtime/scheduler.hpp"
#include "scheme/compiler.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

Value pseudo_random(const std::string& var, const IntVec& p) {
  Value h = 1469598103934665603LL;
  for (char c : var) h = (h ^ c) * 1099511628211LL;
  for (std::size_t i = 0; i < p.dim(); ++i) {
    h = (h ^ static_cast<Value>(p[i] + 1315423911LL)) * 1099511628211LL;
  }
  return (h % 19) - 9;
}

Env sizes_for(const Design& design) {
  for (const Symbol& s : design.nest.sizes()) {
    if (s.name() == "m") return Env{{"n", Rational(3)}, {"m", Rational(2)}};
  }
  return Env{{"n", Rational(3)}};
}

struct RunResult {
  IndexedStore store;
  RunMetrics metrics;
};

RunResult run_with(const Design& design, const CompiledProgram& prog,
                   const FaultPlan* plan,
                   const WatchdogConfig& watchdog = {}) {
  Env sizes = sizes_for(design);
  IndexedStore store = make_initial_store(
      design.nest, sizes,
      [](const auto& v, const auto& p) { return pseudo_random(v, p); });
  InstantiateOptions opt;
  opt.faults = plan;
  opt.watchdog = watchdog;
  RunMetrics metrics = execute(prog, design.nest, sizes, store, opt);
  return {std::move(store), metrics};
}

class Resilience : public ::testing::TestWithParam<std::string> {};

TEST_P(Resilience, StallDelaySweepPreservesResultsAndMakespan) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design);

  IndexedStore expected = make_initial_store(
      design.nest, sizes,
      [](const auto& v, const auto& p) { return pseudo_random(v, p); });
  run_sequential(design.nest, sizes, expected);

  RunResult clean = run_with(design, prog, nullptr);
  EXPECT_EQ(clean.metrics.faults_injected, 0);

  Int fired_total = 0;
  for (int seed = 1; seed <= 5; ++seed) {
    FaultPlan plan = FaultPlan::parse(
        "seed=" + std::to_string(seed) + ";stall=0.3:4;delay=0.25:3");
    RunResult faulty = run_with(design, prog, &plan);
    fired_total += faulty.metrics.faults_injected;
    for (const Stream& s : design.nest.streams()) {
      EXPECT_EQ(faulty.store.elements(s.name()), expected.elements(s.name()))
          << GetParam() << " stream " << s.name() << " seed " << seed;
    }
    // Stalls and delays reshuffle the interleaving only; the logical
    // makespan and statement count are invariants of the dataflow.
    EXPECT_EQ(faulty.metrics.makespan, clean.metrics.makespan)
        << GetParam() << " seed " << seed;
    EXPECT_EQ(faulty.metrics.statements, clean.metrics.statements)
        << GetParam() << " seed " << seed;
    EXPECT_GE(faulty.metrics.scheduler_rounds, clean.metrics.scheduler_rounds)
        << GetParam() << " seed " << seed;
  }
  // The sweep must actually have exercised the fault paths.
  EXPECT_GT(fired_total, 0) << GetParam();
}

TEST_P(Resilience, SeededPlanReplaysBitIdentically) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  FaultPlan plan = FaultPlan::parse("seed=42;stall=0.4:5;delay=0.3:4");

  RunResult first = run_with(design, prog, &plan);
  RunResult second = run_with(design, prog, &plan);

  EXPECT_EQ(first.metrics.faults_injected, second.metrics.faults_injected);
  EXPECT_EQ(first.metrics.scheduler_rounds, second.metrics.scheduler_rounds);
  EXPECT_EQ(first.metrics.makespan, second.metrics.makespan);
  EXPECT_EQ(first.metrics.total_transfers, second.metrics.total_transfers);
  for (const Stream& s : design.nest.streams()) {
    EXPECT_EQ(first.store.elements(s.name()), second.store.elements(s.name()))
        << GetParam() << " stream " << s.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, Resilience,
                         ::testing::Values("matmul2", "convolution"));

TEST(ResilienceFatal, KillYieldsStructuredForensicsNotAHang) {
  Design design = polyprod_design1();
  CompiledProgram prog = compile(design.nest, design.spec);
  FaultPlan plan = FaultPlan::parse("kill@comp:(1)=2");
  try {
    (void)run_with(design, prog, &plan);
    FAIL() << "expected a structured runtime error";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Runtime);
    std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked"), std::string::npos) << what;
    EXPECT_NE(e.diagnostic().find("\"reason\":\"deadlock\""),
              std::string::npos)
        << e.diagnostic();
  }
}

TEST(ResilienceFatal, FatalPlanReplaysIdenticalDiagnostics) {
  Design design = polyprod_design1();
  CompiledProgram prog = compile(design.nest, design.spec);
  FaultPlan plan = FaultPlan::parse("kill@comp:(1)=2");

  auto capture = [&]() -> std::pair<std::string, std::string> {
    try {
      (void)run_with(design, prog, &plan);
    } catch (const Error& e) {
      return {e.what(), e.diagnostic()};
    }
    ADD_FAILURE() << "expected a structured runtime error";
    return {};
  };
  auto first = capture();
  auto second = capture();
  EXPECT_FALSE(first.first.empty());
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST(ResilienceFatal, StarvingDelayTripsTheWatchdogStructurally) {
  // An effectively-infinite transfer delay starves the whole pipeline; the
  // blocked-rounds watchdog must convert it into a structured error rather
  // than letting the run sleep to the delay's release round.
  Design design = polyprod_design1();
  CompiledProgram prog = compile(design.nest, design.spec);
  FaultPlan plan = FaultPlan::parse("delay@a[0].2=0:1000000");
  WatchdogConfig watchdog;
  watchdog.max_blocked_rounds = 50;
  try {
    (void)run_with(design, prog, &plan, watchdog);
    FAIL() << "expected the watchdog to trip";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Timeout);
    std::string what = e.what();
    EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
    EXPECT_NE(e.diagnostic().find("\"reason\""), std::string::npos);
  }
}

// --- a genuine rendezvous cycle, checked end to end through the report ---

Task ring_body(Ctx ctx, Channel* in, Channel* out) {
  Value v = 0;
  co_await ctx.recv(*in, v);
  co_await ctx.send(*out, v + 1);
}

TEST(ResilienceForensics, RingDeadlockNamesEveryProcessAndChannel) {
  // Four processes in a ring, each receiving before it sends: the classic
  // cyclic rendezvous deadlock. With declared endpoints the forensics
  // must recover the full blocking cycle — all four processes and the
  // four channels linking them.
  Scheduler sched;
  constexpr int kRing = 4;
  std::vector<Channel*> chans;
  for (int i = 0; i < kRing; ++i) {
    chans.push_back(&sched.make_channel("ring" + std::to_string(i)));
  }
  for (int i = 0; i < kRing; ++i) {
    Channel* in = chans[i];
    Channel* out = chans[(i + 1) % kRing];
    Process& p = sched.spawn("node" + std::to_string(i), [in, out](Ctx ctx) {
      return ring_body(ctx, in, out);
    });
    in->declare_receiver(p);
    out->declare_sender(p);
  }
  try {
    sched.run();
    FAIL() << "expected deadlock";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Runtime);
    std::string what = e.what();
    std::string diag = e.diagnostic();
    EXPECT_NE(what.find("blocking cycle"), std::string::npos) << what;
    for (int i = 0; i < kRing; ++i) {
      EXPECT_NE(what.find("node" + std::to_string(i)), std::string::npos)
          << what;
      EXPECT_NE(diag.find("\"ring" + std::to_string(i) + "\""),
                std::string::npos)
          << diag;
    }
  }
}

}  // namespace
}  // namespace systolize
