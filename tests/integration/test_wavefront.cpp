// Wavefront property: the asynchronous relaxation preserves the systolic
// array's behaviour (the theorem of the paper's ref. [20] that Sect. 4
// leans on). Concretely: map every traced statement execution back to its
// index-space point via x = first.y + iteration * increment, then check
// that any two statements accessing the same stream element execute in
// step order, and that each chord executes in increasing step order.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"
#include "scheme/process_space.hpp"

namespace systolize {
namespace {

class Wavefront : public ::testing::TestWithParam<std::string> {};

TEST_P(Wavefront, SharedElementAccessesFollowStepOrder) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes{{"n", Rational(4)}, {"m", Rational(3)}};

  Trace trace;
  InstantiateOptions opt;
  opt.trace = &trace;
  IndexedStore store = make_initial_store(
      design.nest, sizes,
      [](const std::string&, const IntVec&) { return 1; });
  (void)execute(prog, design.nest, sizes, store, opt);

  ASSERT_EQ(static_cast<Int>(trace.statements.size()),
            design.nest.index_space_size(sizes));

  // Recover each event's index-space point and step value.
  struct Exec {
    IntVec x;
    Int step;
    Int time;
  };
  std::vector<Exec> execs;
  for (const StatementEvent& ev : trace.statements) {
    Env env = sizes;
    for (std::size_t i = 0; i < prog.coords.size(); ++i) {
      env[prog.coords[i].name()] = Rational(ev.process[i]);
    }
    const AffinePoint* first = prog.repeater.first.select(env);
    ASSERT_NE(first, nullptr);
    IntVec x = first->evaluate(env) + prog.repeater.increment * ev.iteration;
    execs.push_back(Exec{x, design.spec.step().apply(x), ev.time});
  }

  // 1. Within a process (same place), times follow iteration order by
  //    construction; check they also follow step order.
  // 2. Across processes: statements sharing a stream element must execute
  //    in step order (the element physically travels between them).
  for (const Stream& s : design.nest.streams()) {
    std::map<IntVec, std::vector<const Exec*>, IntVecLess> by_elem;
    for (const Exec& e : execs) by_elem[s.element_of(e.x)].push_back(&e);
    for (auto& [elem, accs] : by_elem) {
      std::sort(accs.begin(), accs.end(),
                [](const Exec* a, const Exec* b) { return a->step < b->step; });
      for (std::size_t i = 1; i < accs.size(); ++i) {
        EXPECT_LT(accs[i - 1]->step, accs[i]->step)
            << "two accesses of " << s.name() << elem.to_string()
            << " at the same step";
        EXPECT_LT(accs[i - 1]->time, accs[i]->time)
            << s.name() << elem.to_string() << ": statement "
            << accs[i - 1]->x.to_string() << " (step " << accs[i - 1]->step
            << ") must complete before " << accs[i]->x.to_string()
            << " (step " << accs[i]->step << ")";
      }
    }
  }

  // Every index-space point executed exactly once.
  std::set<std::vector<Int>> seen;
  for (const Exec& e : execs) {
    EXPECT_TRUE(seen.insert(e.x.comps()).second)
        << e.x.to_string() << " executed twice";
  }
}

TEST_P(Wavefront, LogicalTimeIsBoundedLinearlyInSystolicSteps) {
  // The asynchronous makespan must stay within a constant factor of the
  // synchronous step count (no serialization collapse): we allow 8x.
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  for (Int n : {3, 6}) {
    Env sizes{{"n", Rational(n)}, {"m", Rational(2)}};
    IndexedStore store = make_initial_store(
        design.nest, sizes,
        [](const std::string&, const IntVec&) { return 1; });
    RunMetrics metrics = execute(prog, design.nest, sizes, store);
    StepRange range = derive_step_range(design.nest, design.spec.step());
    Int steps =
        (range.max - range.min).evaluate(sizes).to_integer() + 1;
    EXPECT_LT(metrics.makespan, 8 * steps)
        << GetParam() << " at n=" << n << ": makespan " << metrics.makespan
        << " vs " << steps << " systolic steps";
    EXPECT_GE(metrics.makespan, steps)
        << "makespan cannot beat the synchronous schedule";
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, Wavefront,
                         ::testing::Values("polyprod1", "polyprod2",
                                           "polyprod3", "matmul1", "matmul2",
                                           "matmul3", "matmul4",
                                           "convolution", "correlation",
                                           "fir_bank", "closure"));

}  // namespace
}  // namespace systolize
