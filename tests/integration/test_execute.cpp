// End-to-end: compile each catalog design, execute it on the
// message-passing substrate, and compare every indexed variable against
// the sequential ground truth (the Sect.-8 claim that the generated
// programs run correctly, checked on the simulator substrate).
#include <gtest/gtest.h>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

Value pseudo_random(const std::string& var, const IntVec& p) {
  // Deterministic, var- and index-dependent, sign-mixing.
  Value h = 1469598103934665603LL;
  for (char c : var) h = (h ^ c) * 1099511628211LL;
  for (std::size_t i = 0; i < p.dim(); ++i) {
    h = (h ^ static_cast<Value>(p[i] + 1315423911LL)) * 1099511628211LL;
  }
  return (h % 19) - 9;
}

std::vector<Env> size_sweep(const Design& design) {
  std::vector<Env> envs;
  bool has_m = false;
  for (const Symbol& s : design.nest.sizes()) {
    if (s.name() == "m") has_m = true;
  }
  for (Int n = 1; n <= 5; ++n) {
    if (has_m) {
      for (Int m = 1; m <= 3; ++m) {
        envs.push_back(Env{{"n", Rational(n)}, {"m", Rational(m)}});
      }
    } else {
      envs.push_back(Env{{"n", Rational(n)}});
    }
  }
  return envs;
}

std::string show(const Env& env) {
  std::string s;
  for (const auto& [k, v] : env) s += k + "=" + v.to_string() + " ";
  return s;
}

class ExecuteDesign : public ::testing::TestWithParam<std::string> {};

TEST_P(ExecuteDesign, MatchesSequentialGroundTruth) {
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  for (const Env& sizes : size_sweep(design)) {
    IndexedStore expected = make_initial_store(design.nest, sizes,
                                               [](const auto& v, const auto& p) {
                                                 return pseudo_random(v, p);
                                               });
    IndexedStore actual = expected;
    run_sequential(design.nest, sizes, expected);

    RunMetrics metrics = execute(prog, design.nest, sizes, actual);
    for (const Stream& s : design.nest.streams()) {
      EXPECT_EQ(actual.elements(s.name()), expected.elements(s.name()))
          << GetParam() << " stream " << s.name() << " at " << show(sizes);
    }
    // Every basic statement must have executed exactly once.
    EXPECT_EQ(metrics.statements, design.nest.index_space_size(sizes))
        << GetParam() << " at " << show(sizes);
    EXPECT_GT(metrics.total_transfers, 0);
    EXPECT_GT(metrics.makespan, 0);
  }
}

TEST_P(ExecuteDesign, ReadStreamsAreRestoredUnchanged) {
  // Output processes restore every stream to the host; Read streams must
  // come back with their original values.
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = size_sweep(design).back();
  IndexedStore original = make_initial_store(design.nest, sizes,
                                             [](const auto& v, const auto& p) {
                                               return pseudo_random(v, p);
                                             });
  IndexedStore actual = original;
  (void)execute(prog, design.nest, sizes, actual);
  for (const Stream& s : design.nest.streams()) {
    if (s.access() == StreamAccess::Read) {
      EXPECT_EQ(actual.elements(s.name()), original.elements(s.name()))
          << s.name();
    }
  }
}

TEST_P(ExecuteDesign, MergedInternalBuffersProduceSameResult) {
  // Ablation: realizing internal buffers as channel slack instead of
  // separate processes must not change any result.
  Design design = design_by_name(GetParam());
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = size_sweep(design).back();
  IndexedStore expected = make_initial_store(design.nest, sizes,
                                             [](const auto& v, const auto& p) {
                                               return pseudo_random(v, p);
                                             });
  IndexedStore merged = expected;
  run_sequential(design.nest, sizes, expected);
  InstantiateOptions opt;
  opt.merge_internal_buffers = true;
  (void)execute(prog, design.nest, sizes, merged, opt);
  for (const Stream& s : design.nest.streams()) {
    EXPECT_EQ(merged.elements(s.name()), expected.elements(s.name()))
        << s.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, ExecuteDesign,
                         ::testing::Values("polyprod1", "polyprod2",
                                           "polyprod3", "matmul1", "matmul2",
                                           "matmul3", "matmul4",
                                           "convolution", "correlation",
                                           "fir_bank", "closure"));

}  // namespace
}  // namespace systolize
