// True positives: hand-broken specs and programs must trigger exactly the
// expected rule ids. The .sa fixtures under designs/broken/ are the same
// ones the CI lint gate sweeps.
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "analysis/verify.hpp"
#include "designs/catalog.hpp"
#include "frontend/parser.hpp"
#include "scheme/compiler.hpp"

#ifndef SYSTOLIZE_DESIGN_DIR
#define SYSTOLIZE_DESIGN_DIR "designs"
#endif

namespace systolize {
namespace {

Design broken_design(const std::string& name) {
  std::string path =
      std::string(SYSTOLIZE_DESIGN_DIR) + "/broken/" + name + ".sa";
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return frontend::parse_design(buf.str());
}

bool has_rule(const VerifyReport& rep, const std::string& rule,
              Severity severity = Severity::Error) {
  for (const Finding& f : rep.findings) {
    if (f.rule == rule && f.severity == severity) return true;
  }
  return false;
}

TEST(VerifyBroken, StepVanishingOnNullPlaceIsNonInjective) {
  Design d = broken_design("step_on_nullplace");
  VerifyReport rep = verify_spec(d.nest, d.spec);
  EXPECT_TRUE(has_rule(rep, "schedule.injectivity")) << rep.to_string();
  EXPECT_GE(rep.errors(), 1u);
}

TEST(VerifyBroken, StepVanishingOnADependenceDirection) {
  Design d = broken_design("dependence_clash");
  VerifyReport rep = verify_spec(d.nest, d.spec);
  EXPECT_TRUE(has_rule(rep, "schedule.dependence-step")) << rep.to_string();
  // (step, place) itself is injective here — the defect is per-stream.
  EXPECT_FALSE(has_rule(rep, "schedule.injectivity")) << rep.to_string();
}

TEST(VerifyBroken, NonNeighbourFlowIsFlagged) {
  Design d = broken_design("wide_flow");
  VerifyReport rep = verify_spec(d.nest, d.spec);
  EXPECT_TRUE(has_rule(rep, "flow.neighbour")) << rep.to_string();
}

TEST(VerifyBroken, RankDeficientStreamMapIsFlagged) {
  Design d = broken_design("rank_deficient");
  VerifyReport rep = verify_spec(d.nest, d.spec);
  EXPECT_TRUE(has_rule(rep, "stream.rank")) << rep.to_string();
  EXPECT_GE(rep.errors(), 1u);
}

TEST(VerifyBroken, StationaryLoadingMustCoverExactlyTheImage) {
  // Fuzzer-found defect class: a stationary stream whose declared dims
  // box strictly contains the index-map image of the iteration domain.
  // Spec-level rules are all clean — only the concrete loading-cover
  // check (which needs sizes) catches it.
  Design d = broken_design("loading_cover");
  EXPECT_EQ(verify_spec(d.nest, d.spec).errors(), 0u);
  CompiledProgram prog = compile(d.nest, d.spec);
  Env sizes{{"n", Rational(2)}, {"m", Rational(2)}};
  VerifyReport rep = verify_design(prog, d.nest, sizes);
  EXPECT_TRUE(has_rule(rep, "flow.loading-cover")) << rep.to_string();
}

TEST(VerifyBroken, LoadingCoverAcceptsExactCover) {
  // The same check passes every shipped design: stationary streams whose
  // boxes are exactly the image (matmul1's c, convolution's y, ...).
  for (const Design& d : all_designs()) {
    CompiledProgram prog = compile(d.nest, d.spec);
    Env sizes{{"n", Rational(3)}, {"m", Rational(2)}};
    VerifyReport rep;
    verify_loading_cover_into(rep, prog, d.nest, sizes);
    EXPECT_EQ(rep.errors(), 0u) << d.nest.name() << "\n" << rep.to_string();
  }
}

TEST(VerifyBroken, HandBuiltNonInjectiveSpec) {
  Design d = design_by_name("polyprod1");
  // place (i) with step i: step vanishes on null.place = (0, 1).
  ArraySpec spec(StepFunction(IntVec{1, 0}),
                 PlaceFunction(IntMatrix{{1, 0}}),
                 {{"a", IntVec{1}}});
  VerifyReport rep = verify_spec(d.nest, spec);
  EXPECT_TRUE(has_rule(rep, "schedule.injectivity")) << rep.to_string();
}

TEST(VerifyBroken, ReversedFlowDirectionIsInconsistent) {
  Design d = design_by_name("polyprod2");
  CompiledProgram prog = compile(d.nest, d.spec);
  // Corrupt one moving stream's recorded motion: reverse it, as a buggy
  // compiler pass emitting elements against the dependences would.
  bool reversed = false;
  for (StreamPlan& sp : prog.streams) {
    if (sp.motion.stationary) continue;
    sp.motion.flow = -sp.motion.flow;
    sp.motion.direction = -sp.motion.direction;
    reversed = true;
    break;
  }
  ASSERT_TRUE(reversed);
  VerifyReport rep = verify_program(prog, d.nest);
  EXPECT_TRUE(has_rule(rep, "flow.consistency")) << rep.to_string();
  bool mentions_reversal = false;
  for (const Finding& f : rep.findings) {
    if (f.rule == "flow.consistency" &&
        f.message.find("reversed") != std::string::npos) {
      mentions_reversal = true;
    }
  }
  EXPECT_TRUE(mentions_reversal) << rep.to_string();
}

TEST(VerifyBroken, OverlappingClausesWithDifferentValues) {
  Design d = design_by_name("polyprod1");
  CompiledProgram prog = compile(d.nest, d.spec);
  // An always-true clause with a fresh value overlaps every feasible
  // clause of the repeater count and disagrees with it somewhere.
  prog.repeater.count.add(Guard::always(), AffineExpr(123456));
  VerifyReport rep = verify_program(prog, d.nest);
  EXPECT_TRUE(has_rule(rep, "guard.overlap")) << rep.to_string();
}

TEST(VerifyBroken, DuplicatedClauseIsABenignOverlap) {
  Design d = design_by_name("polyprod1");
  CompiledProgram prog = compile(d.nest, d.spec);
  ASSERT_FALSE(prog.repeater.count.pieces().empty());
  const auto& first = prog.repeater.count.pieces().front();
  prog.repeater.count.add(first.guard, first.value);
  VerifyReport rep = verify_program(prog, d.nest);
  EXPECT_FALSE(has_rule(rep, "guard.overlap")) << rep.to_string();
  EXPECT_TRUE(has_rule(rep, "guard.overlap-benign", Severity::Info))
      << rep.to_string();
  EXPECT_EQ(rep.errors(), 0u) << rep.to_string();
}

TEST(VerifyBroken, InfeasibleClauseIsADeadClauseWarning) {
  Design d = design_by_name("polyprod1");
  CompiledProgram prog = compile(d.nest, d.spec);
  Guard never;
  never.add(Constraint{AffineExpr(1), AffineExpr(0)});  // 1 <= 0
  prog.repeater.count.add(never, AffineExpr(7));
  VerifyReport rep = verify_program(prog, d.nest);
  EXPECT_TRUE(has_rule(rep, "guard.dead-clause", Severity::Warning))
      << rep.to_string();
  EXPECT_EQ(rep.errors(), 0u) << rep.to_string();
}

TEST(VerifyBroken, AllowDowngradesExactRulesAndCategories) {
  Design d = broken_design("wide_flow");
  VerifyReport rep = verify_spec(d.nest, d.spec);
  ASSERT_GE(rep.errors(), 1u);
  const std::size_t before = rep.errors();
  rep.allow("flow");  // whole category: downgrades flow.neighbour only
  EXPECT_EQ(rep.errors(), before - 1) << rep.to_string();
  EXPECT_TRUE(has_rule(rep, "flow.neighbour", Severity::Info))
      << rep.to_string();
  // Unrelated categories keep their severity.
  EXPECT_TRUE(has_rule(rep, "schedule.dependence-order", Severity::Error))
      << rep.to_string();
  rep.allow("schedule.dependence-order");  // exact rule id
  EXPECT_EQ(rep.errors(), 0u) << rep.to_string();
}

}  // namespace
}  // namespace systolize
