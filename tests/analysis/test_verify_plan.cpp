// Plan-level rules on hand-built NetworkPlans: channel discipline
// violations, static deadlock detection, and schema identity of the
// static wait-for report with the runtime forensics (PR-1's
// DeadlockReport renderer is reused verbatim).
#include <gtest/gtest.h>

#include <set>

#include "analysis/verify.hpp"
#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "runtime/metrics.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

NetworkPlan::ChannelSpec chan(const std::string& name, std::int32_t sender,
                              std::int32_t receiver, Int capacity = 0) {
  NetworkPlan::ChannelSpec c;
  c.name = name;
  c.stream = 0;
  c.capacity = capacity;
  c.sender = sender;
  c.receiver = receiver;
  return c;
}

NetworkPlan::ProcSpec pass(const std::string& name, std::int32_t in,
                           std::int32_t out, Int count) {
  NetworkPlan::ProcSpec p;
  p.name = name;
  p.kind = NetworkPlan::ProcKind::Pass;
  p.chan_in = in;
  p.chan_out = out;
  p.count = count;
  return p;
}

/// Two pass processes in a ring, both receiving first: the canonical
/// static deadlock.
NetworkPlan ring_plan() {
  NetworkPlan plan;
  plan.streams = {"s"};
  plan.channels.push_back(chan("s[0].link", 0, 1));
  plan.channels.push_back(chan("s[1].link", 1, 0));
  plan.procs.push_back(pass("pass:(0)", 1, 0, 1));
  plan.procs.push_back(pass("pass:(1)", 0, 1, 1));
  return plan;
}

const Finding* find_rule(const VerifyReport& rep, const std::string& rule) {
  for (const Finding& f : rep.findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

TEST(VerifyPlan, CommunicationRingIsAStaticDeadlock) {
  VerifyReport rep = verify_plan(ring_plan());
  const Finding* f = find_rule(rep, "deadlock.cycle");
  ASSERT_NE(f, nullptr) << rep.to_string();
  EXPECT_EQ(f->severity, Severity::Error);
  // The detail payload is a DeadlockReport::to_json() — the runtime
  // forensics schema, cycle and carrying channels included.
  EXPECT_NE(f->detail.find("\"reason\":\"deadlock\""), std::string::npos);
  EXPECT_NE(f->detail.find("pass:(0)"), std::string::npos);
  EXPECT_NE(f->detail.find("pass:(1)"), std::string::npos);
  EXPECT_NE(f->detail.find("\"cycle\":["), std::string::npos);
  EXPECT_NE(f->detail.find("s[0].link"), std::string::npos);
  EXPECT_NE(f->detail.find("\"op\":\"recv\""), std::string::npos);
}

/// Every JSON object key of `json`, first-occurrence order, deduplicated.
std::vector<std::string> json_keys(const std::string& json) {
  std::vector<std::string> keys;
  std::set<std::string> seen;
  for (std::size_t i = 0; i + 1 < json.size(); ++i) {
    if (json[i] != '"') continue;
    std::size_t end = json.find('"', i + 1);
    if (end == std::string::npos || end + 1 >= json.size()) break;
    if (json[end + 1] == ':') {
      std::string key = json.substr(i + 1, end - i - 1);
      if (seen.insert(key).second) keys.push_back(key);
    }
    i = end;
  }
  return keys;
}

TEST(VerifyPlan, StaticCycleRendersTheRuntimeForensicsSchema) {
  VerifyReport rep = verify_plan(ring_plan());
  const Finding* f = find_rule(rep, "deadlock.cycle");
  ASSERT_NE(f, nullptr);
  // Render a runtime-style report through the PR-1 forensics renderer and
  // compare the key sets: the static detail must be schema-identical.
  DeadlockReport sample;
  sample.reason = "deadlock";
  sample.blocked.push_back(BlockedOpState{"p", "c", "recv", 0, 0});
  sample.cycle = {"p"};
  sample.cycle_channels = {"c"};
  EXPECT_EQ(json_keys(f->detail), json_keys(sample.to_json()));
}

TEST(VerifyPlan, BufferedRingStillDeadlocksWhenCapacityRunsOut) {
  NetworkPlan plan = ring_plan();
  // One slot of slack would let a send complete alone, but both
  // processes receive first — nobody ever produces the first value.
  plan.channels[0].capacity = 1;
  plan.channels[1].capacity = 1;
  plan.procs[0].count = 2;
  plan.procs[1].count = 2;
  VerifyReport rep = verify_plan(plan);
  EXPECT_NE(find_rule(rep, "deadlock.cycle"), nullptr) << rep.to_string();
}

TEST(VerifyPlan, InputPassOutputChainIsClean) {
  // A well-formed 3-process chain with buffered channels: every check
  // passes, including the abstract deadlock execution.
  NetworkPlan plan;
  plan.streams = {"s"};
  plan.channels.push_back(chan("fwd", 0, 1, 1));
  plan.channels.push_back(chan("bwd", 1, 0, 1));
  NetworkPlan::ProcSpec p0;
  p0.name = "input:fwd";
  p0.kind = NetworkPlan::ProcKind::Input;
  p0.chan_out = 0;
  p0.count = 1;
  NetworkPlan::ProcSpec p1 = pass("pass:(1)", 0, 1, 1);
  NetworkPlan::ProcSpec p2;
  p2.name = "output:bwd";
  p2.kind = NetworkPlan::ProcKind::Output;
  p2.chan_in = 1;
  p2.count = 1;
  plan.procs = {p0, p1, p2};
  // Fix the recorded endpoints for the 3-process chain.
  plan.channels[1].sender = 1;
  plan.channels[1].receiver = 2;
  VerifyReport rep = verify_plan(plan);
  EXPECT_EQ(rep.findings.size(), 0u) << rep.to_string();
}

TEST(VerifyPlan, TwoWritersOnOneChannel) {
  NetworkPlan plan = ring_plan();
  plan.procs[1].chan_out = 0;  // both processes now send on channel 0
  VerifyReport rep = verify_plan(plan);
  EXPECT_NE(find_rule(rep, "channel.multi-writer"), nullptr)
      << rep.to_string();
  // Channel 1 lost its only writer.
  EXPECT_NE(find_rule(rep, "channel.dangling"), nullptr) << rep.to_string();
}

TEST(VerifyPlan, SendRecvCountImbalance) {
  NetworkPlan plan;
  plan.streams = {"s"};
  plan.channels.push_back(chan("c", 0, 1));
  NetworkPlan::ProcSpec in;
  in.name = "input:s";
  in.kind = NetworkPlan::ProcKind::Input;
  in.chan_out = 0;
  in.count = 2;
  NetworkPlan::ProcSpec out;
  out.name = "output:s";
  out.kind = NetworkPlan::ProcKind::Output;
  out.chan_in = 0;
  out.count = 1;
  plan.procs = {in, out};
  VerifyReport rep = verify_plan(plan);
  const Finding* f = find_rule(rep, "channel.count-mismatch");
  ASSERT_NE(f, nullptr) << rep.to_string();
  EXPECT_NE(f->message.find("2 send(s)"), std::string::npos) << f->message;
}

TEST(VerifyPlan, RecordedEndpointMismatch) {
  NetworkPlan plan = ring_plan();
  plan.channels[0].sender = 1;  // actually written by process 0
  VerifyReport rep = verify_plan(plan);
  EXPECT_NE(find_rule(rep, "channel.endpoint-mismatch"), nullptr)
      << rep.to_string();
}

TEST(VerifyPlan, BadChannelReference) {
  NetworkPlan plan = ring_plan();
  plan.procs[0].chan_out = 99;
  VerifyReport rep = verify_plan(plan);
  EXPECT_NE(find_rule(rep, "channel.bad-ref"), nullptr) << rep.to_string();
}

TEST(VerifyPlan, InstantiateGateRejectsACorruptedProgram) {
  Design d = design_by_name("polyprod1");
  CompiledProgram prog = compile(d.nest, d.spec);
  prog.repeater.count.add(Guard::always(), AffineExpr(123456));
  Env sizes{{"n", Rational(4)}};
  IndexedStore store = make_initial_store(
      d.nest, sizes, [](const std::string&, const IntVec&) { return 1; });
  InstantiateOptions opt;
  opt.verify_plan = true;
  try {
    (void)execute(prog, d.nest, sizes, store, opt);
    FAIL() << "expected the verification gate to reject the program";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::Validation);
    EXPECT_NE(std::string(e.what()).find("guard.overlap"),
              std::string::npos)
        << e.what();
    EXPECT_NE(e.diagnostic().find("\"rule\":\"guard.overlap\""),
              std::string::npos)
        << e.diagnostic();
  }
}

}  // namespace
}  // namespace systolize
