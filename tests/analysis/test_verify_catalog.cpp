// True negatives: every catalog design must pass the static verifier
// clean at every level — spec, program and plan — and the instantiate-time
// verification gate must not reject a sound design.
#include <gtest/gtest.h>

#include "analysis/verify.hpp"
#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

Env sizes_for(const LoopNest& nest) {
  Env sizes;
  for (const Symbol& s : nest.sizes()) {
    sizes[s.name()] = Rational(s.name() == "m" ? 2 : 4);
  }
  return sizes;
}

std::string dump(const VerifyReport& rep) { return rep.to_string(); }

TEST(VerifyCatalog, SpecRulesPassOnEveryDesign) {
  for (const Design& d : all_designs()) {
    VerifyReport rep = verify_spec(d.nest, d.spec);
    EXPECT_EQ(rep.errors(), 0u) << dump(rep);
    EXPECT_EQ(rep.warnings(), 0u) << dump(rep);
  }
}

TEST(VerifyCatalog, ProgramRulesPassOnEveryDesign) {
  for (const Design& d : all_designs()) {
    CompiledProgram prog = compile(d.nest, d.spec);
    VerifyReport rep = verify_program(prog, d.nest);
    // Benign (provably value-equal) guard overlaps are info findings and
    // do occur in the catalog; errors and warnings must not.
    EXPECT_EQ(rep.errors(), 0u) << dump(rep);
    EXPECT_EQ(rep.warnings(), 0u) << dump(rep);
  }
}

TEST(VerifyCatalog, PlanRulesPassOnEveryDesign) {
  for (const Design& d : all_designs()) {
    CompiledProgram prog = compile(d.nest, d.spec);
    auto plan = build_plan(prog, d.nest, sizes_for(d.nest), PlanShape{});
    VerifyReport rep = verify_plan(*plan);
    EXPECT_EQ(rep.findings.size(), 0u) << dump(rep);
  }
}

TEST(VerifyCatalog, PlanRulesPassWithBufferedChannelsAndMergedBuffers) {
  for (const Design& d : all_designs()) {
    CompiledProgram prog = compile(d.nest, d.spec);
    PlanShape shape;
    shape.channel_capacity = 2;
    shape.merge_internal_buffers = true;
    auto plan = build_plan(prog, d.nest, sizes_for(d.nest), shape);
    VerifyReport rep = verify_plan(*plan);
    EXPECT_EQ(rep.errors(), 0u) << dump(rep);
  }
}

TEST(VerifyCatalog, VerifyDesignPipelineIsCleanOnEveryDesign) {
  for (const Design& d : all_designs()) {
    CompiledProgram prog = compile(d.nest, d.spec);
    VerifyReport rep =
        verify_design(prog, d.nest, sizes_for(d.nest), PlanShape{});
    EXPECT_TRUE(rep.clean()) << dump(rep);
    EXPECT_EQ(rep.design, d.nest.name());
  }
}

TEST(VerifyCatalog, InstantiateGateAcceptsASoundDesign) {
  Design d = design_by_name("matmul2");
  CompiledProgram prog = compile(d.nest, d.spec);
  Env sizes = sizes_for(d.nest);
  IndexedStore store = make_initial_store(
      d.nest, sizes,
      [](const std::string&, const IntVec& p) { return p.is_zero() ? 2 : 1; });
  IndexedStore expected = store;
  InstantiateOptions opt;
  opt.verify_plan = true;
  RunMetrics metrics = execute(prog, d.nest, sizes, store, opt);
  EXPECT_GT(metrics.statements, 0);
  run_sequential(d.nest, sizes, expected);
  for (const Stream& s : d.nest.streams()) {
    EXPECT_EQ(store.elements(s.name()), expected.elements(s.name()))
        << s.name();
  }
}

}  // namespace
}  // namespace systolize
