// Golden-value tests for the static cost model: the four appendix
// designs at two sizes each, checked against numbers read off the
// interned plans (PR8). The broken fixtures prove the analyze path
// degrades to findings instead of crashing.
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "analysis/cost.hpp"
#include "analysis/verify.hpp"
#include "designs/catalog.hpp"
#include "frontend/parser.hpp"
#include "scheme/compiler.hpp"

#ifndef SYSTOLIZE_DESIGN_DIR
#define SYSTOLIZE_DESIGN_DIR "designs"
#endif

namespace systolize {
namespace {

Env sizes_n(Int n) { return Env{{"n", Rational(n)}}; }

CostReport analyze(const std::string& name, std::vector<Int> ns) {
  Design d = design_by_name(name);
  CompiledProgram prog = compile(d.nest, d.spec);
  std::vector<Env> envs;
  envs.reserve(ns.size());
  for (Int n : ns) envs.push_back(sizes_n(n));
  return analyze_cost(prog, d.nest, envs);
}

struct Golden {
  Int n;
  Int processes, comp, io, buffer, channels;
  Int makespan, soak, drain, chain, work, max_work;
  std::string imbalance, overhead;
};

void expect_row(const CostReport& rep, std::size_t i, const Golden& g) {
  ASSERT_LT(i, rep.at.size());
  const CostMetrics& m = rep.at[i].metrics;
  EXPECT_EQ(rep.at[i].sizes.at("n"), g.n);
  EXPECT_EQ(m.processes, g.processes) << "n=" << g.n;
  EXPECT_EQ(m.comp, g.comp) << "n=" << g.n;
  EXPECT_EQ(m.io, g.io) << "n=" << g.n;
  EXPECT_EQ(m.buffer, g.buffer) << "n=" << g.n;
  EXPECT_EQ(m.channels, g.channels) << "n=" << g.n;
  EXPECT_EQ(m.makespan, g.makespan) << "n=" << g.n;
  EXPECT_EQ(m.soak_max, g.soak) << "n=" << g.n;
  EXPECT_EQ(m.drain_max, g.drain) << "n=" << g.n;
  EXPECT_EQ(m.longest_chain, g.chain) << "n=" << g.n;
  EXPECT_EQ(m.total_work, g.work) << "n=" << g.n;
  EXPECT_EQ(m.max_proc_work, g.max_work) << "n=" << g.n;
  EXPECT_EQ(m.imbalance.to_string(), g.imbalance) << "n=" << g.n;
  EXPECT_EQ(m.overhead.to_string(), g.overhead) << "n=" << g.n;
}

TEST(CostModel, Polyprod1Golden) {
  CostReport rep = analyze("polyprod1", {4, 8});
  EXPECT_EQ(rep.formulas.makespan.to_string(), "3*n");
  EXPECT_EQ(rep.formulas.ps_box_to_string(), "(n + 1)");
  EXPECT_EQ(rep.formulas.work_to_string(), "(n + 1) * (n + 1)");
  expect_row(rep, 0,
             {4, 16, 5, 6, 5, 23, 12, 4, 4, 5, 25, 5, "1", "11/5"});
  expect_row(rep, 1,
             {8, 24, 9, 6, 9, 39, 24, 8, 8, 9, 81, 9, "1", "5/3"});
}

TEST(CostModel, Polyprod2Golden) {
  CostReport rep = analyze("polyprod2", {4, 8});
  EXPECT_EQ(rep.formulas.makespan.to_string(), "3*n");
  EXPECT_EQ(rep.formulas.ps_box_to_string(), "(2*n + 1)");
  expect_row(rep, 0,
             {4, 24, 9, 6, 9, 39, 12, 8, 8, 5, 25, 5, "9/5", "5/3"});
  expect_row(rep, 1,
             {8, 40, 17, 6, 17, 71, 24, 16, 16, 9, 81, 9, "17/9", "23/17"});
}

TEST(CostModel, Matmul1Golden) {
  CostReport rep = analyze("matmul1", {4, 8});
  EXPECT_EQ(rep.formulas.makespan.to_string(), "3*n");
  EXPECT_EQ(rep.formulas.ps_box_to_string(), "(n + 1) * (n + 1)");
  EXPECT_EQ(rep.formulas.work_to_string(),
            "(n + 1) * (n + 1) * (n + 1)");
  // The stationary-c design: no internal buffers at all.
  expect_row(rep, 0,
             {4, 55, 25, 30, 0, 90, 12, 4, 4, 5, 125, 5, "1", "6/5"});
  expect_row(rep, 1,
             {8, 135, 81, 54, 0, 270, 24, 8, 8, 9, 729, 9, "1", "2/3"});
}

TEST(CostModel, Matmul2Golden) {
  CostReport rep = analyze("matmul2", {4, 8});
  EXPECT_EQ(rep.formulas.makespan.to_string(), "3*n");
  EXPECT_EQ(rep.formulas.ps_box_to_string(), "(2*n + 1) * (2*n + 1)");
  expect_row(rep, 0, {4, 191, 61, 70, 60, 278, 12, 4, 4, 5, 125, 5,
                      "61/25", "130/61"});
  expect_row(rep, 1, {8, 567, 217, 134, 216, 934, 24, 8, 8, 9, 729, 9,
                      "217/81", "50/31"});
}

TEST(CostModel, ChainFormulaPerUpdateStream) {
  CostReport rep = analyze("matmul2", {4});
  ASSERT_EQ(rep.formulas.chain_formulas.size(), 1u);
  EXPECT_EQ(rep.formulas.chain_formulas.front(), "n + 1");
}

TEST(CostModel, ReportRendersBothFormats) {
  CostReport rep = analyze("polyprod1", {4});
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("makespan"), std::string::npos);
  EXPECT_NE(text.find("at n=4"), std::string::npos);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"formulas\""), std::string::npos);
  EXPECT_NE(json.find("\"processes\":16"), std::string::npos);
}

TEST(CostModel, MetricsScaleWithCache) {
  // The cache path and the direct path must agree exactly.
  Design d = design_by_name("matmul2");
  CompiledProgram prog = compile(d.nest, d.spec);
  PlanCache cache;
  CostMetrics direct = analyze_cost_at(prog, d.nest, sizes_n(5));
  CostMetrics cached =
      analyze_cost_at(prog, d.nest, sizes_n(5), PlanShape{}, &cache);
  EXPECT_EQ(direct.processes, cached.processes);
  EXPECT_EQ(direct.channels, cached.channels);
  EXPECT_EQ(direct.makespan, cached.makespan);
  EXPECT_EQ(direct.imbalance, cached.imbalance);
  EXPECT_GE(cache.misses(), 1u);
}

// ------------------------------------------------- broken designs degrade

Design broken_design(const std::string& name) {
  std::string path =
      std::string(SYSTOLIZE_DESIGN_DIR) + "/broken/" + name + ".sa";
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return frontend::parse_design(buf.str());
}

TEST(CostModel, BrokenDesignsYieldFindingsNotCrashes) {
  // The analyze pipeline (CLI and service) is verifier-first: every
  // broken fixture must stop at findings before the cost model runs.
  for (const char* name :
       {"step_on_nullplace", "dependence_clash", "wide_flow"}) {
    Design d = broken_design(name);
    VerifyReport rep = verify_spec(d.nest, d.spec);
    EXPECT_GE(rep.errors(), 1u) << name;
  }
}

}  // namespace
}  // namespace systolize
