// The generated abstract programs rendered in three concrete syntaxes —
// checked against the shape of the paper's final programs (D.1.7, E.2.7).
#include <gtest/gtest.h>

#include "ast/builder.hpp"
#include "ast/print.hpp"
#include "designs/catalog.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

void expect_contains(const std::string& haystack, const std::string& needle) {
  EXPECT_NE(haystack.find(needle), std::string::npos)
      << "missing: " << needle << "\nin:\n"
      << haystack;
}

class PrinterTest : public ::testing::Test {
 protected:
  Design d1 = polyprod_design1();
  CompiledProgram p1 = compile(d1.nest, d1.spec);
  std::unique_ptr<ast::Program> t1 = ast::build_ast(p1, d1.nest);

  Design e2 = matmul_design2();
  CompiledProgram p2 = compile(e2.nest, e2.spec);
  std::unique_ptr<ast::Program> t2 = ast::build_ast(p2, e2.nest);
};

TEST_F(PrinterTest, PaperNotationMatchesAppendixD17Shape) {
  std::string text = ast::to_paper_notation(*t1);
  // Channel declarations as in D.1.7.
  expect_contains(text, "chan a_chan[0..n + 1]");
  expect_contains(text, "chan b_buff[0..n]");
  // I/O repeaters {0 n 1} and {0 2*n 1}.
  expect_contains(text, "send a {(0) (n) (1)} to a_chan[0]");
  expect_contains(text, "send c {(0) (2*n) (1)} to c_chan[0]");
  expect_contains(text, "receive c {(0) (2*n) (1)} from c_chan[n + 1]");
  // Computation process: load/recover counts from D.1.5.
  expect_contains(text, "load a, n - col");
  expect_contains(text, "recover a, col");
  expect_contains(text, "pass c, col");
  expect_contains(text, "pass c, n - col");
  // The repeater and the basic statement.
  expect_contains(text, "first := (col, 0)");
  expect_contains(text, "last := (col, n)");
  expect_contains(text, "{first last (0,1)}");
  expect_contains(text, "c := c + a * b");
  expect_contains(text, "receive b from b_chan[col]");
  expect_contains(text, "send c to c_chan[col + 1]");
  expect_contains(text, "parfor col from 0 to n do");
}

TEST_F(PrinterTest, PaperNotationMatchesAppendixE27Shape) {
  std::string text = ast::to_paper_notation(*t2);
  // Channel declaration with the negative-direction extension (E.2.7
  // declares c_chan[-(n+1)..n, -(n+1)..n]).
  expect_contains(text, "chan c_chan[-n - 1..n, -n - 1..n]");
  // Piecewise first with three alternatives and a null else.
  expect_contains(text, "first := if");
  expect_contains(text, "[] else -> null");
  // The basic statement sends c against the diagonal.
  expect_contains(text, "send c to c_chan[col - 1, row - 1]");
  expect_contains(text, "receive c from c_chan[col, row]");
  // Buffer region passes pipeline contents (Equation 10).
  expect_contains(text, "Equation 10");
}

TEST_F(PrinterTest, OccamRendering) {
  std::string text = ast::to_occam(*t1);
  expect_contains(text, "PAR");
  expect_contains(text, "SEQ");
  // occam loops count steps, not bounds (Sect. 7.2.2 remark).
  expect_contains(text, "PAR col = 0 FOR n + 1");
  expect_contains(text, "CHAN OF INT a_chan :");
  expect_contains(text, "b_chan[col] ? b");
  expect_contains(text, "c_chan[col + 1] ! c");
  expect_contains(text, "c := c + a * b");
}

TEST_F(PrinterTest, CRendering) {
  std::string text = ast::to_c(*t1);
  expect_contains(text, "parfor (int col = 0; col <= n; ++col) {");
  expect_contains(text, "channel a_chan[0 .. n + 1];");
  expect_contains(text, "recv(b_chan[col], &b);");
  expect_contains(text, "send(c_chan[col + 1], c);");
  expect_contains(text, "recv_own(a);");
  expect_contains(text, "send_own(a);");
  expect_contains(text, "c := c + a * b;");
}

TEST_F(PrinterTest, AllRenderingsAreNonTrivialForEveryCatalogDesign) {
  for (const Design& d : all_designs()) {
    CompiledProgram p = compile(d.nest, d.spec);
    auto tree = ast::build_ast(p, d.nest);
    EXPECT_GT(ast::to_paper_notation(*tree).size(), 400u) << d.description;
    EXPECT_GT(ast::to_occam(*tree).size(), 400u) << d.description;
    EXPECT_GT(ast::to_c(*tree).size(), 400u) << d.description;
  }
}

TEST_F(PrinterTest, InputAndOutputGroupsPresentForEveryStream) {
  std::string text = ast::to_paper_notation(*t2);
  for (const std::string s : {"a", "b", "c"}) {
    expect_contains(text, "send " + s + " {");
    expect_contains(text, "receive " + s + " {");
  }
}

}  // namespace
}  // namespace systolize
