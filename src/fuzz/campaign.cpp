// The campaign driver: generate -> classify -> shrink -> corpus-ify, plus
// corpus replay. Reproducers are plain `.sa` files with the campaign
// seed, sample index, probe sizes and finding embedded as `#` comments,
// so `systolize run <file>` and `systolize verify <file>` work on them
// directly and replay re-runs the exact differential that found them.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "frontend/parser.hpp"
#include "fuzz/fuzz.hpp"

namespace systolize::fuzz {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string joined_rules(const std::vector<std::string>& rules) {
  std::string out;
  for (const std::string& r : rules) {
    if (!out.empty()) out += ",";
    out += r;
  }
  return out;
}

/// Scan a reproducer's comment header for "# probe: n=2 m=1".
std::map<std::string, Int> parse_probe_comment(const std::string& text) {
  std::map<std::string, Int> probe;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::string tag = "# probe:";
    if (line.rfind(tag, 0) != 0) continue;
    std::istringstream fields(line.substr(tag.size()));
    std::string field;
    while (fields >> field) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) continue;
      probe[field.substr(0, eq)] =
          static_cast<Int>(std::stoll(field.substr(eq + 1)));
    }
  }
  return probe;
}

}  // namespace

std::string reproducer_text(const FuzzSample& sample,
                            const OracleResult& verdict) {
  std::ostringstream os;
  os << "# fuzz reproducer: seed=" << sample.seed << " index=" << sample.index
     << "\n";
  os << "# outcome: " << outcome_name(verdict.outcome);
  if (!verdict.rules.empty()) os << " rules=" << joined_rules(verdict.rules);
  os << "\n";
  if (!verdict.detail.empty()) {
    // Diagnostics can be multi-line (deadlock forensics); only the first
    // line is headline material, and unprefixed continuation lines would
    // corrupt the `.sa` source.
    os << "# detail: "
       << verdict.detail.substr(0, verdict.detail.find('\n')) << "\n";
  }
  os << "# probe:";
  for (const auto& [sym, value] : sample.probe) {
    os << " " << sym << "=" << value;
  }
  os << "\n";
  os << to_sa(sample);
  return os.str();
}

std::string FuzzReport::to_string() const {
  std::ostringstream os;
  os << "fuzz seed=" << seed << " count=" << count << ": " << passed
     << " pass, " << static_rejects << " static-reject, " << source_rejects
     << " source-reject, " << no_design << " no-design, " << disagreements
     << " disagreement(s)";
  for (const SampleRecord& r : records) {
    os << "\n  [" << r.index << "] " << outcome_name(r.outcome);
    if (!r.rules.empty()) os << " rules=" << joined_rules(r.rules);
    if (!r.detail.empty()) os << " — " << r.detail;
    if (!r.reproducer.empty()) os << " -> " << r.reproducer;
  }
  return os.str();
}

std::string FuzzReport::to_json() const {
  std::ostringstream os;
  os << "{\"seed\":" << seed << ",\"count\":" << count
     << ",\"passed\":" << passed << ",\"static_rejects\":" << static_rejects
     << ",\"source_rejects\":" << source_rejects
     << ",\"no_design\":" << no_design
     << ",\"disagreements\":" << disagreements << ",\"records\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const SampleRecord& r = records[i];
    if (i > 0) os << ",";
    os << "{\"index\":" << r.index << ",\"outcome\":\""
       << outcome_name(r.outcome) << "\",\"rules\":[";
    for (std::size_t j = 0; j < r.rules.size(); ++j) {
      if (j > 0) os << ",";
      os << '"' << escape(r.rules[j]) << '"';
    }
    os << "],\"detail\":\"" << escape(r.detail) << '"';
    if (!r.reproducer.empty()) {
      os << ",\"reproducer\":\"" << escape(r.reproducer) << '"';
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

FuzzReport run_campaign(const FuzzOptions& options) {
  FuzzReport report;
  report.seed = options.seed;
  report.count = options.count;

  for (std::size_t i = 0; i < options.count; ++i) {
    FuzzSample sample = generate_sample(options.seed, i, options.gen);
    OracleResult verdict = classify(sample, options.oracle);
    switch (verdict.outcome) {
      case Outcome::Pass: ++report.passed; break;
      case Outcome::StaticReject: ++report.static_rejects; break;
      case Outcome::SourceReject: ++report.source_rejects; break;
      case Outcome::NoDesign: ++report.no_design; break;
      case Outcome::FalseAccept:
      case Outcome::FalseReject: ++report.disagreements; break;
    }
    if (verdict.outcome == Outcome::Pass ||
        verdict.outcome == Outcome::NoDesign) {
      continue;
    }

    SampleRecord record;
    record.index = i;
    record.outcome = verdict.outcome;
    record.rules = verdict.rules;
    record.detail = verdict.detail;

    const bool reproduce =
        is_disagreement(verdict.outcome) ||
        (options.keep_rejects && (verdict.outcome == Outcome::StaticReject ||
                                  verdict.outcome == Outcome::SourceReject));
    if (reproduce && !options.corpus_dir.empty()) {
      if (options.shrink) {
        // A reduction counts only while it reproduces the same outcome
        // and (for rejects) still trips the original lead rule.
        const Outcome want = verdict.outcome;
        const std::optional<std::string> want_rule =
            verdict.rules.empty()
                ? std::nullopt
                : std::make_optional(verdict.rules.front());
        ShrinkResult reduced = shrink(
            sample, options.oracle, [&](const OracleResult& candidate) {
              if (candidate.outcome != want) return false;
              if (!want_rule.has_value()) return true;
              return std::find(candidate.rules.begin(),
                               candidate.rules.end(),
                               *want_rule) != candidate.rules.end();
            });
        sample = std::move(reduced.sample);
        verdict = classify(sample, options.oracle);
      }
      std::filesystem::create_directories(options.corpus_dir);
      std::ostringstream name;
      name << "s" << options.seed << "_i";
      name.width(4);
      name.fill('0');
      name << i;
      const std::filesystem::path path =
          std::filesystem::path(options.corpus_dir) / (name.str() + ".sa");
      std::ofstream out(path);
      out << reproducer_text(sample, verdict);
      record.reproducer = path.string();
    }
    report.records.push_back(std::move(record));
  }
  return report;
}

ReplayResult replay_corpus(const std::string& dir,
                           const OracleOptions& options) {
  ReplayResult result;
  std::vector<std::filesystem::path> files;
  if (std::filesystem::exists(dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".sa") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  for (const std::filesystem::path& path : files) {
    ++result.files;
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();

    std::optional<Design> design;
    try {
      design.emplace(frontend::parse_design(text.str()));
    } catch (const Error& e) {
      ++result.disagreements;
      result.violations.push_back(path.string() +
                                  ": does not parse: " + e.what());
      continue;
    }
    Env sizes;
    for (const auto& [sym, value] : parse_probe_comment(text.str())) {
      sizes[sym] = Rational(value);
    }
    for (const Symbol& s : design->nest.sizes()) {
      if (!sizes.contains(s.name())) sizes[s.name()] = Rational(2);
    }
    const OracleResult verdict = run_oracle(*design, sizes, options);
    if (is_disagreement(verdict.outcome)) {
      ++result.disagreements;
      result.violations.push_back(path.string() + ": " +
                                  outcome_name(verdict.outcome) + " — " +
                                  verdict.detail);
    }
  }
  return result;
}

}  // namespace systolize::fuzz
