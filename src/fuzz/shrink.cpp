// Greedy structural shrinking: apply type-correct reductions to a failing
// sample, keep each one only when the caller's predicate still holds on
// the re-classified candidate, and iterate to a fixpoint. The reduction
// order is fixed, so shrinking is as deterministic as generation.
//
// Accepting a candidate replaces the working sample wholesale, so no pass
// may hold references or iterators into it across a try_accept call —
// every pass re-reads through `result.sample` and snapshots loop domains
// (counts, key sets) up front.
#include "fuzz/fuzz.hpp"

namespace systolize::fuzz {
namespace {

/// Remove read stream `victim` and renumber the body terms. The update
/// stream is never dropped (the body needs its target).
FuzzSample without_stream(const FuzzSample& s, std::size_t victim) {
  FuzzSample out = s;
  out.streams.erase(out.streams.begin() + static_cast<std::ptrdiff_t>(victim));
  out.spec.loading.erase(s.streams[victim].name);
  std::vector<GenTerm> terms;
  for (const GenTerm& t : s.terms) {
    GenTerm kept;
    kept.scale = t.scale;
    kept.negate = t.negate;
    for (std::size_t idx : t.streams) {
      if (idx == victim) continue;
      kept.streams.push_back(idx > victim ? idx - 1 : idx);
    }
    if (!kept.streams.empty()) terms.push_back(std::move(kept));
  }
  out.terms = std::move(terms);
  return out;
}

std::size_t read_stream_count(const FuzzSample& s) {
  std::size_t n = 0;
  for (const GenStream& st : s.streams) n += st.update ? 0 : 1;
  return n;
}

/// Remove loop `victim` and re-shape everything whose width is tied to
/// the nest depth: index maps and the place lose column `victim`; every
/// (r-1)-sized object (map rows, place rows, step is r-sized, loading
/// vectors and guard coefficients) loses one entry. Rows that become
/// all-zero are dropped first; otherwise the last row goes. The keep
/// predicate decides whether the reshaped sample still reproduces.
FuzzSample without_loop(const FuzzSample& s, std::size_t victim) {
  FuzzSample out = s;
  out.loops.erase(out.loops.begin() + static_cast<std::ptrdiff_t>(victim));
  const std::size_t rows_wanted = out.loops.size() - 1;

  auto drop_column_and_row = [&](std::vector<std::vector<Int>>& rows) {
    for (auto& row : rows) {
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    while (rows.size() > rows_wanted) {
      std::size_t doomed = rows.size() - 1;
      for (std::size_t i = 0; i < rows.size(); ++i) {
        bool zero = true;
        for (Int c : rows[i]) zero &= c == 0;
        if (zero) {
          doomed = i;
          break;
        }
      }
      rows.erase(rows.begin() + static_cast<std::ptrdiff_t>(doomed));
    }
  };

  for (GenStream& st : out.streams) drop_column_and_row(st.map);
  if (out.spec.present) {
    out.spec.step.erase(out.spec.step.begin() +
                        static_cast<std::ptrdiff_t>(victim));
    drop_column_and_row(out.spec.place);
    for (auto& [stream, vec] : out.spec.loading) {
      if (!vec.empty()) vec.pop_back();
    }
  }
  if (out.guarded) {
    out.guard_coeffs.erase(out.guard_coeffs.begin() +
                           static_cast<std::ptrdiff_t>(victim));
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const FuzzSample& sample, const OracleOptions& options,
                    const std::function<bool(const OracleResult&)>& keep) {
  ShrinkResult result;
  result.sample = sample;

  auto try_accept = [&](FuzzSample candidate) {
    if (!keep(classify(candidate, options))) return false;
    result.sample = std::move(candidate);
    ++result.steps;
    return true;
  };

  /// Try `*target(candidate) = value` for each value in turn (0 first,
  /// then the same-signed unit); true when a reduction was accepted.
  auto shrink_coeff = [&](const std::function<Int*(FuzzSample&)>& target) {
    const Int current = *target(result.sample);
    if (current == 0) return false;
    for (Int value : {Int{0}, current > 0 ? Int{1} : Int{-1}}) {
      if (current == value) continue;
      FuzzSample candidate = result.sample;
      *target(candidate) = value;
      if (try_accept(std::move(candidate))) return true;
    }
    return false;
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // 1. Drop the guard — the biggest single simplification.
    if (result.sample.guarded) {
      FuzzSample candidate = result.sample;
      candidate.guarded = false;
      candidate.guard_coeffs.clear();
      candidate.guard_const = 0;
      changed |= try_accept(std::move(candidate));
    }

    // 2. Drop read streams (and their body occurrences), last first.
    for (std::size_t i = result.sample.streams.size(); i-- > 0;) {
      if (i >= result.sample.streams.size()) continue;
      if (result.sample.streams[i].update) continue;
      if (read_stream_count(result.sample) <= 1) break;
      changed |= try_accept(without_stream(result.sample, i));
    }

    // 3. Drop whole loops (depth stays >= 2, Appendix A), last first —
    //    one fewer loop removes a source line and a column everywhere.
    for (std::size_t j = result.sample.loops.size(); j-- > 0;) {
      if (result.sample.loops.size() <= 2) break;
      if (j >= result.sample.loops.size()) continue;
      changed |= try_accept(without_loop(result.sample, j));
    }

    // 4. Shrink probe sizes toward 1.
    {
      std::vector<std::string> syms;
      for (const auto& [sym, value] : result.sample.probe) {
        syms.push_back(sym);
      }
      for (const std::string& sym : syms) {
        while (result.sample.probe.at(sym) > 1) {
          FuzzSample candidate = result.sample;
          candidate.probe[sym] = result.sample.probe.at(sym) - 1;
          if (!try_accept(std::move(candidate))) break;
          changed = true;
        }
      }
    }

    // 5. Simplify loop bounds toward plain `0 .. n` ascending loops.
    for (std::size_t j = 0; j < result.sample.loops.size(); ++j) {
      if (result.sample.loops[j].upper_const != 0) {
        FuzzSample candidate = result.sample;
        candidate.loops[j].upper_const = 0;
        changed |= try_accept(std::move(candidate));
      }
      {
        std::vector<std::string> syms;
        for (const auto& [sym, c] : result.sample.loops[j].upper) {
          if (c > 1) syms.push_back(sym);
        }
        for (const std::string& sym : syms) {
          FuzzSample candidate = result.sample;
          candidate.loops[j].upper[sym] = 1;
          changed |= try_accept(std::move(candidate));
        }
      }
      if (result.sample.loops[j].dir < 0) {
        FuzzSample candidate = result.sample;
        candidate.loops[j].dir = 1;
        changed |= try_accept(std::move(candidate));
      }
    }

    // 6. Shrink coefficients toward zero: index maps first, then the
    //    design's step and place, then the body's term decorations.
    for (std::size_t si = 0; si < result.sample.streams.size(); ++si) {
      for (std::size_t ri = 0; ri < result.sample.streams[si].map.size();
           ++ri) {
        for (std::size_t ci = 0;
             ci < result.sample.streams[si].map[ri].size(); ++ci) {
          changed |= shrink_coeff(
              [=](FuzzSample& c) { return &c.streams[si].map[ri][ci]; });
        }
      }
    }
    for (std::size_t ci = 0; ci < result.sample.spec.step.size(); ++ci) {
      changed |=
          shrink_coeff([=](FuzzSample& c) { return &c.spec.step[ci]; });
    }
    for (std::size_t ri = 0; ri < result.sample.spec.place.size(); ++ri) {
      for (std::size_t ci = 0; ci < result.sample.spec.place[ri].size();
           ++ci) {
        changed |= shrink_coeff(
            [=](FuzzSample& c) { return &c.spec.place[ri][ci]; });
      }
    }
    for (std::size_t ti = 0; ti < result.sample.terms.size(); ++ti) {
      if (result.sample.terms[ti].scale != 1) {
        FuzzSample candidate = result.sample;
        candidate.terms[ti].scale = 1;
        changed |= try_accept(std::move(candidate));
      }
      if (result.sample.terms[ti].negate) {
        FuzzSample candidate = result.sample;
        candidate.terms[ti].negate = false;
        changed |= try_accept(std::move(candidate));
      }
    }
  }
  return result;
}

}  // namespace systolize::fuzz
