// Differential fuzzing: a seeded, replayable generator of random source
// programs satisfying the Appendix-A restrictions, paired with compatible
// (step, place) designs sampled from the enumerate.cpp pruning pipeline,
// driven through the full differential stack —
//
//   parse -> compile -> static verify -> plan/template expand -> run on
//   every eligible backend (interp fast path, instrumented scheduler,
//   --threads=N work-stealing, bytecode VM solo and --batch=N SoA lanes)
//
// — with every result, makespan and transfer count cross-checked against
// the src/baseline/ sequential ground truth, and every static-verifier
// rejection cross-checked against an actual runtime failure or result
// divergence. Disagreements between the two oracles are auto-shrunk to
// minimized `.sa` reproducers (generator seed embedded) under
// designs/fuzz-corpus/, so every find becomes a permanent regression
// test. docs/static-analysis.md "Differential fuzzing" documents the
// generator's contract and the oracle matrix.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "designs/catalog.hpp"

namespace systolize::fuzz {

// ---- structured samples ---------------------------------------------------
//
// The generator works on a structured description (not raw text) so the
// shrinker can apply type-correct reductions; to_sa() renders it as `.sa`
// source and the parser is the single authority on what it means.

/// One sampled loop `loop <index> = 0 .. <upper> [by -1]`. Lower bounds
/// are always 0, which keeps the conservative variable-domain bounds of
/// to_sa() exact (min/max of c*x over [0, U] is one of {0, c*U}).
struct GenLoop {
  std::string index;
  std::map<std::string, Int> upper;  ///< size-symbol coefficients of rb
  Int upper_const = 0;               ///< constant part of rb
  Int dir = 1;                       ///< execution order: +1 or -1
};

/// One sampled stream: an (r-1) x r index map of full rank r-1 (resampled
/// until so, per Appendix A) and its access mode.
struct GenStream {
  std::string name;
  std::vector<std::vector<Int>> map;  ///< (r-1) rows of r coefficients
  bool update = false;
};

/// One additive term of the body: `[-] [scale*] s1 * s2 * ...` over read
/// streams (by index into FuzzSample::streams).
struct GenTerm {
  std::vector<std::size_t> streams;
  Int scale = 1;
  bool negate = false;
};

/// The sampled (step, place, loading) design; `present` is false when the
/// spec-candidate pool for the sampled source was empty.
struct GenSpec {
  bool present = false;
  std::vector<Int> step;
  std::vector<std::vector<Int>> place;
  std::map<std::string, std::vector<Int>> loading;
};

struct FuzzSample {
  std::uint64_t seed = 0;
  std::size_t index = 0;
  std::vector<std::string> size_syms;  ///< "n", optionally "m" (all >= 1)
  std::vector<GenLoop> loops;
  std::vector<GenStream> streams;  ///< exactly one update stream
  std::vector<GenTerm> terms;      ///< body: u := u (+|-) term ...
  bool guarded = false;
  std::vector<Int> guard_coeffs;  ///< over loop indices
  Int guard_const = 0;            ///< guard: coeffs . x + const >= 0
  GenSpec spec;
  std::string mutation;            ///< "" or the seeded-breakage kind
  std::map<std::string, Int> probe;  ///< concrete sizes the oracle runs at
};

/// Render as `.sa` source (guards included — unlike render_design, which
/// cannot reprint a parsed guard's closure). parse_design() of the result
/// is the authoritative meaning of the sample.
[[nodiscard]] std::string to_sa(const FuzzSample& sample);

// ---- generator ------------------------------------------------------------

struct GeneratorOptions {
  /// Coefficient range [-K, K] for the sampled (step, place) pair.
  Int coeff_range = 1;
  /// Cap on the spec-candidate pool sampled from (keeps generation cheap;
  /// the pool order is the deterministic enumeration order).
  std::size_t spec_limit = 512;
  /// Percentage of samples that get one deliberate breakage (mutation)
  /// seeded in, to exercise the verifier/runtime agreement oracle.
  unsigned mutate_percent = 20;
};

/// Sample #`index` of campaign seed `seed` — a pure function of
/// (seed, index, options), so any sample is replayable in isolation.
[[nodiscard]] FuzzSample generate_sample(std::uint64_t seed,
                                         std::size_t index,
                                         const GeneratorOptions& options);

// ---- differential oracle --------------------------------------------------

enum class Outcome {
  /// Statically clean; every backend agreed with the sequential baseline.
  Pass,
  /// Verifier rejected AND the runtime confirmed (compile/plan/run failed
  /// or results diverged from the baseline) — the oracles agree.
  StaticReject,
  /// validate_source refused the nest and compile() refused it too.
  SourceReject,
  /// No (step, place) candidate survived spec pruning; nothing to run.
  NoDesign,
  /// DISAGREEMENT: statically clean but a backend failed or diverged.
  FalseAccept,
  /// DISAGREEMENT: rejected on a semantic rule, yet the run completed and
  /// matched the baseline on every backend.
  FalseReject,
};

[[nodiscard]] const char* outcome_name(Outcome o) noexcept;
[[nodiscard]] bool is_disagreement(Outcome o) noexcept;

struct OracleOptions {
  /// Work-stealing width cross-checked (0 skips the threaded run).
  unsigned threads = 2;
  /// Bytecode SoA lane count cross-checked (<= 1 skips the batched run).
  std::size_t batch = 3;
};

struct OracleResult {
  Outcome outcome = Outcome::Pass;
  /// Verifier rule ids seen on the static path (errors only).
  std::vector<std::string> rules;
  /// First divergence / error message, for reports and reproducers.
  std::string detail;
};

/// The full differential stack on one parsed design at one size binding.
[[nodiscard]] OracleResult run_oracle(const Design& design, const Env& sizes,
                                      const OracleOptions& options);

/// to_sa -> parse -> run_oracle at the sample's probe sizes. Parse
/// failures of generated text are reported as FalseAccept (a generator
/// bug is a finding too, not a crash).
[[nodiscard]] OracleResult classify(const FuzzSample& sample,
                                    const OracleOptions& options);

// ---- shrinker -------------------------------------------------------------

struct ShrinkResult {
  FuzzSample sample;
  std::size_t steps = 0;  ///< accepted reductions
};

/// Greedy fixpoint reduction: drop the guard, drop read streams, shrink
/// index-map/step/place coefficients and loop bounds toward zero — keeping
/// a candidate reduction only when `keep(classify(candidate))` still
/// holds. Deterministic.
[[nodiscard]] ShrinkResult shrink(
    const FuzzSample& sample, const OracleOptions& options,
    const std::function<bool(const OracleResult&)>& keep);

// ---- campaign driver ------------------------------------------------------

struct FuzzOptions {
  std::uint64_t seed = 20260808;
  std::size_t count = 100;
  bool shrink = true;          ///< minimize findings before writing them
  std::string corpus_dir;      ///< reproducer directory ("" = don't write)
  /// Also write (shrunk) reproducers for consistent static rejects — the
  /// mode that seeds the checked-in corpus with verifier counterexamples.
  bool keep_rejects = false;
  GeneratorOptions gen;
  OracleOptions oracle;
};

struct SampleRecord {
  std::size_t index = 0;
  Outcome outcome = Outcome::Pass;
  std::vector<std::string> rules;
  std::string detail;
  std::string reproducer;  ///< corpus path, when one was written
};

struct FuzzReport {
  std::uint64_t seed = 0;
  std::size_t count = 0;
  std::size_t passed = 0;
  std::size_t static_rejects = 0;
  std::size_t source_rejects = 0;
  std::size_t no_design = 0;
  std::size_t disagreements = 0;
  /// Every non-Pass sample, in index order.
  std::vector<SampleRecord> records;

  [[nodiscard]] bool clean() const noexcept { return disagreements == 0; }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_json() const;
};

/// Generate, classify, shrink and corpus-ify `count` samples.
[[nodiscard]] FuzzReport run_campaign(const FuzzOptions& options);

// ---- corpus replay --------------------------------------------------------

struct ReplayResult {
  std::size_t files = 0;
  std::size_t disagreements = 0;
  /// One line per re-found disagreement: "<file>: <outcome> <detail>".
  std::vector<std::string> violations;

  [[nodiscard]] bool clean() const noexcept { return disagreements == 0; }
};

/// Re-run the differential oracle on every `.sa` file under `dir`
/// (sorted by name). A reproducer passes replay when the two oracles
/// agree on it — i.e. the bug it once witnessed stays fixed.
[[nodiscard]] ReplayResult replay_corpus(const std::string& dir,
                                         const OracleOptions& options);

/// The corpus reproducer text: `.sa` source prefixed with `#` comment
/// lines embedding the campaign seed, sample index and finding.
[[nodiscard]] std::string reproducer_text(const FuzzSample& sample,
                                          const OracleResult& verdict);

}  // namespace systolize::fuzz
