// The differential oracle: one sample, two independent judgments —
//
//   static  = validate_source + verify_spec + compile + verify_design
//   dynamic = the sequential baseline vs every eligible backend
//
// A statically-clean design must run on every backend and reproduce the
// baseline's results and the reference engine's schedule metrics; a
// statically-rejected one must be refused by compile/instantiate, fail at
// runtime, or produce diverging results. Rejections on *model* rules
// (flow discipline, dependence rules whose violations commute away in an
// associative accumulation body) are tolerated when the run still
// matches; rejections on *semantic* rules (injectivity, arity, rank) are
// not — see docs/static-analysis.md "Differential fuzzing".
#include <optional>
#include <sstream>

#include "analysis/verify.hpp"
#include "baseline/sequential.hpp"
#include "frontend/parser.hpp"
#include "fuzz/fuzz.hpp"
#include "loopnest/validate.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

namespace systolize::fuzz {
namespace {

/// Same deterministic value seeding as the CLI and the bytecode
/// differential suite: FNV-mix of the variable name and coordinates,
/// offset per batch lane so cross-lane mixups cannot cancel out.
Value pseudo_random(const std::string& var, const IntVec& p) {
  Value h = 1469598103934665603LL;
  for (char c : var) h = (h ^ c) * 1099511628211LL;
  for (std::size_t i = 0; i < p.dim(); ++i) {
    h = (h ^ static_cast<Value>(p[i] + 1315423911LL)) * 1099511628211LL;
  }
  return (h % 19) - 9;
}

IndexedStore seeded_lane(const LoopNest& nest, const Env& sizes, Int lane) {
  return make_initial_store(nest, sizes,
                            [lane](const std::string& v, const IntVec& p) {
                              return pseudo_random(v, p) + 13 * lane;
                            });
}

/// "" when equal, else a one-line description of the first divergence.
std::string diff_stores(const LoopNest& nest, const IndexedStore& expected,
                        const IndexedStore& got, const std::string& what) {
  for (const Stream& s : nest.streams()) {
    if (expected.elements(s.name()) != got.elements(s.name())) {
      return what + ": stream '" + s.name() +
             "' diverges from the sequential baseline";
    }
  }
  return "";
}

void collect_error_rules(const VerifyReport& report,
                         std::vector<std::string>& rules) {
  for (const Finding& f : report.findings) {
    if (f.severity != Severity::Error) continue;
    bool seen = false;
    for (const std::string& r : rules) seen |= r == f.rule;
    if (!seen) rules.push_back(f.rule);
  }
}

/// Rules whose violation must be observable dynamically: a design
/// rejected on one of these that still runs and matches the baseline is
/// a false reject. Dependence and flow rules are excluded — with the
/// generator's associative accumulation bodies a reordered or
/// mis-pipelined schedule can legitimately reproduce the sequential
/// result, and flow rules constrain the systolic-array *model* (neighbour
/// connections), not the simulated values.
bool semantic_rule(const std::string& rule) {
  return rule == "schedule.injectivity" || rule == "schedule.arity" ||
         rule == "schedule.place-rank" || rule == "stream.rank";
}

struct MetricCheck {
  std::string detail;

  void expect_eq(Int a, Int b, const std::string& what) {
    if (detail.empty() && a != b) {
      std::ostringstream os;
      os << what << ": " << a << " != " << b;
      detail = os.str();
    }
  }
};

}  // namespace

const char* outcome_name(Outcome o) noexcept {
  switch (o) {
    case Outcome::Pass: return "pass";
    case Outcome::StaticReject: return "static-reject";
    case Outcome::SourceReject: return "source-reject";
    case Outcome::NoDesign: return "no-design";
    case Outcome::FalseAccept: return "false-accept";
    case Outcome::FalseReject: return "false-reject";
  }
  return "unknown";
}

bool is_disagreement(Outcome o) noexcept {
  return o == Outcome::FalseAccept || o == Outcome::FalseReject;
}

OracleResult run_oracle(const Design& design, const Env& sizes,
                        const OracleOptions& options) {
  OracleResult result;

  bool source_ok = true;
  std::string source_msg;
  try {
    validate_source(design.nest);
  } catch (const Error& e) {
    source_ok = false;
    source_msg = e.what();
  }

  collect_error_rules(verify_spec(design.nest, design.spec), result.rules);

  std::optional<CompiledProgram> prog;
  std::string compile_msg;
  try {
    prog.emplace(compile(design.nest, design.spec));
  } catch (const Error& e) {
    compile_msg = e.what();
  }
  if (prog.has_value()) {
    collect_error_rules(verify_design(*prog, design.nest, sizes),
                        result.rules);
  }

  if (!source_ok) {
    // Appendix-A violation: compile() re-runs validate_source, so the two
    // must agree.
    if (!prog.has_value()) {
      result.outcome = Outcome::SourceReject;
      result.detail = source_msg;
    } else {
      result.outcome = Outcome::FalseAccept;
      result.detail =
          "validate_source refused ('" + source_msg + "') but compile() "
          "accepted the same nest";
    }
    return result;
  }

  const bool static_accept = prog.has_value() && result.rules.empty();

  if (!static_accept) {
    if (!prog.has_value()) {
      result.outcome = Outcome::StaticReject;
      result.detail = "compile refused: " + compile_msg;
      return result;
    }
    // Verifier findings on a compilable design: the runtime must confirm
    // (instantiation failure, runtime error, or diverging results).
    IndexedStore expected = seeded_lane(design.nest, sizes, 0);
    IndexedStore got = expected;
    run_sequential(design.nest, sizes, expected);
    try {
      (void)execute(*prog, design.nest, sizes, got, {});
    } catch (const Error& e) {
      result.outcome = Outcome::StaticReject;
      result.detail = std::string("runtime confirmed: ") + e.what();
      return result;
    }
    const std::string diff = diff_stores(design.nest, expected, got, "interp");
    if (!diff.empty()) {
      result.outcome = Outcome::StaticReject;
      result.detail = "runtime confirmed: " + diff;
      return result;
    }
    bool semantic = false;
    for (const std::string& r : result.rules) semantic |= semantic_rule(r);
    if (semantic) {
      result.outcome = Outcome::FalseReject;
      result.detail =
          "rejected on a semantic rule, yet the run matches the baseline";
    } else {
      result.outcome = Outcome::StaticReject;
      result.detail = "model-only rule; run matches the baseline (tolerated)";
    }
    return result;
  }

  // ---- statically clean: the full backend matrix ------------------------
  IndexedStore expected = seeded_lane(design.nest, sizes, 0);
  run_sequential(design.nest, sizes, expected);

  std::string stage;
  try {
    // Reference engine: the sequential interp fast path.
    stage = "interp";
    IndexedStore interp_store = seeded_lane(design.nest, sizes, 0);
    const RunMetrics ref = execute(*prog, design.nest, sizes, interp_store);
    std::string diff = diff_stores(design.nest, expected, interp_store, stage);

    MetricCheck mc;
    auto check_engine = [&](const std::string& what,
                            const InstantiateOptions& opt, bool rounds) {
      if (!diff.empty() || !mc.detail.empty()) return;
      stage = what;
      IndexedStore store = seeded_lane(design.nest, sizes, 0);
      const RunMetrics got = execute(*prog, design.nest, sizes, store, opt);
      diff = diff_stores(design.nest, expected, store, what);
      mc.expect_eq(ref.makespan, got.makespan, what + " makespan");
      mc.expect_eq(ref.total_transfers, got.total_transfers,
                   what + " transfers");
      mc.expect_eq(ref.statements, got.statements, what + " statements");
      if (mc.detail.empty() &&
          ref.transfers_per_stream != got.transfers_per_stream) {
        mc.detail = what + " per-stream transfer counts diverge";
      }
      if (rounds) {
        mc.expect_eq(ref.scheduler_rounds, got.scheduler_rounds,
                     what + " rounds");
      }
    };

    // Plan-template expansion (compile_template + expand_template) instead
    // of the direct build_plan() path.
    PlanCache cache;
    InstantiateOptions templ;
    templ.plan_cache = &cache;
    check_engine("template", templ, true);

    // The instrumented scheduler (a positive round budget forces it).
    InstantiateOptions instr;
    instr.watchdog.max_rounds = Int{1} << 40;
    check_engine("instrumented", instr, true);

    // Work-stealing substrate; scheduler_rounds is a max over shards and
    // legitimately differs from the sequential engines.
    if (options.threads > 0) {
      InstantiateOptions par;
      par.threads = options.threads;
      check_engine("threads", par, false);
    }

    // Bytecode VM, solo: replicates the fast loop's round structure, so
    // even the round count must agree.
    InstantiateOptions vm;
    vm.backend = Backend::Bytecode;
    check_engine("bytecode", vm, true);

    // Bytecode SoA batch: every lane against its own sequential baseline.
    if (diff.empty() && mc.detail.empty() && options.batch > 1) {
      stage = "batch";
      std::vector<IndexedStore> lanes;
      std::vector<IndexedStore> lane_expected;
      for (std::size_t l = 0; l < options.batch; ++l) {
        lanes.push_back(
            seeded_lane(design.nest, sizes, static_cast<Int>(l)));
        lane_expected.push_back(lanes.back());
        run_sequential(design.nest, sizes, lane_expected.back());
      }
      const RunMetrics got = execute_batch(*prog, design.nest, sizes,
                                           lanes.data(), options.batch, vm);
      for (std::size_t l = 0; l < options.batch && diff.empty(); ++l) {
        diff = diff_stores(design.nest, lane_expected[l], lanes[l],
                           "batch lane " + std::to_string(l));
      }
      mc.expect_eq(ref.makespan, got.makespan, "batch makespan");
      mc.expect_eq(ref.total_transfers, got.total_transfers,
                   "batch transfers");
      mc.expect_eq(ref.statements, got.statements, "batch statements");
      mc.expect_eq(ref.scheduler_rounds, got.scheduler_rounds,
                   "batch rounds");
    }

    if (!diff.empty()) {
      result.outcome = Outcome::FalseAccept;
      result.detail = diff;
    } else if (!mc.detail.empty()) {
      result.outcome = Outcome::FalseAccept;
      result.detail = mc.detail;
    } else {
      result.outcome = Outcome::Pass;
    }
  } catch (const Error& e) {
    result.outcome = Outcome::FalseAccept;
    result.detail = stage + ": " + e.what();
  }
  return result;
}

OracleResult classify(const FuzzSample& sample, const OracleOptions& options) {
  if (!sample.spec.present) {
    OracleResult result;
    result.outcome = Outcome::NoDesign;
    return result;
  }
  std::optional<Design> design;
  try {
    design.emplace(frontend::parse_design(to_sa(sample)));
  } catch (const Error& e) {
    OracleResult result;
    result.outcome = Outcome::FalseAccept;
    result.detail = std::string("generated text does not parse: ") + e.what();
    return result;
  }
  Env sizes;
  for (const auto& [sym, value] : sample.probe) sizes[sym] = Rational(value);
  return run_oracle(*design, sizes, options);
}

}  // namespace systolize::fuzz
