// Sample generation: random Appendix-A-conformant source programs plus a
// compatible (step, place) design picked from the enumerate.cpp pruning
// pipeline, with an optional deliberately-seeded breakage. Everything is
// a pure function of (campaign seed, sample index), via mt19937_64 and
// modulo draws only — no distribution objects, whose mappings are
// implementation-defined and would break cross-platform replay.
#include <optional>
#include <random>
#include <sstream>

#include "analysis/verify.hpp"
#include "frontend/parser.hpp"
#include "fuzz/fuzz.hpp"
#include "scheme/compiler.hpp"
#include "systolic/enumerate.hpp"

namespace systolize::fuzz {
namespace {

using Rng = std::mt19937_64;

std::uint64_t mix(std::uint64_t seed, std::size_t index) {
  // splitmix64-style avalanche so consecutive indices land far apart.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t draw(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(rng() % n);
}

/// "2*i - j" over the loop index names; "0" for the zero vector.
std::string lin_text(const std::vector<Int>& coeffs,
                     const std::vector<GenLoop>& loops) {
  std::ostringstream os;
  bool first = true;
  for (std::size_t j = 0; j < coeffs.size(); ++j) {
    const Int c = coeffs[j];
    if (c == 0) continue;
    if (first) {
      if (c < 0) os << "-";
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    first = false;
    const Int a = c < 0 ? -c : c;
    if (a != 1) os << a << "*";
    os << loops[j].index;
  }
  if (first) os << "0";
  return os.str();
}

/// "2*n + m - 1" over the size symbols; "0" when empty.
std::string size_affine_text(const std::map<std::string, Int>& coeffs,
                             Int konst) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [sym, c] : coeffs) {
    if (c == 0) continue;
    if (first) {
      if (c < 0) os << "-";
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    first = false;
    const Int a = c < 0 ? -c : c;
    if (a != 1) os << a << "*";
    os << sym;
  }
  if (first) {
    os << konst;
  } else if (konst != 0) {
    os << (konst < 0 ? " - " : " + ") << (konst < 0 ? -konst : konst);
  }
  return os.str();
}

struct Affine {
  std::map<std::string, Int> coeffs;
  Int konst = 0;
};

void accumulate(Affine& into, const GenLoop& loop, Int scale) {
  for (const auto& [sym, c] : loop.upper) into.coeffs[sym] += scale * c;
  into.konst += scale * loop.upper_const;
}

/// Exact min/max of `row . x` over the (all-lower-bounds-zero) index box:
/// negative coefficients contribute their loop's upper bound to the min,
/// positive ones to the max.
std::pair<Affine, Affine> dim_bounds(const std::vector<Int>& row,
                                     const std::vector<GenLoop>& loops) {
  Affine lo;
  Affine hi;
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (row[j] < 0) accumulate(lo, loops[j], row[j]);
    if (row[j] > 0) accumulate(hi, loops[j], row[j]);
  }
  return {lo, hi};
}

Int matrix_rank(const std::vector<std::vector<Int>>& rows, std::size_t cols) {
  IntMatrix m(rows.size(), cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < cols; ++j) m.at(i, j) = rows[i][j];
  }
  return static_cast<Int>(m.rank());
}

std::vector<std::vector<Int>> sample_index_map(Rng& rng, std::size_t r) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::vector<std::vector<Int>> rows(r - 1, std::vector<Int>(r, 0));
    for (auto& row : rows) {
      for (Int& c : row) {
        // Mostly unit coefficients: magnitude-2 entries force non-primitive
        // element increments for every spec, so they would drown the
        // campaign in compile rejects — keep them rare but present.
        c = draw(rng, 8) == 0 ? (draw(rng, 2) == 0 ? Int{2} : Int{-2})
                              : static_cast<Int>(draw(rng, 3)) - 1;  // [-1,1]
      }
    }
    if (matrix_rank(rows, r) == static_cast<Int>(r - 1)) return rows;
  }
  // Pathologically unlucky stream: fall back to the leading unit rows,
  // which always have full rank.
  std::vector<std::vector<Int>> rows(r - 1, std::vector<Int>(r, 0));
  for (std::size_t i = 0; i + 1 < r; ++i) rows[i][i] = 1;
  return rows;
}

void apply_mutation(Rng& rng, FuzzSample& s) {
  if (!s.spec.present) return;
  const std::size_t r = s.loops.size();
  std::size_t kind = draw(rng, 4);
  if (kind == 2 && s.spec.loading.empty()) kind = 0;
  switch (kind) {
    case 0:
      // Step in the place's row space: vanishes on null.place, so the
      // schedule cannot be injective (Theorem 3 / schedule.injectivity).
      s.mutation = "step-on-nullplace";
      s.spec.step = s.spec.place[0];
      break;
    case 1: {
      // Step orthogonal to the update stream's dependence direction
      // (null of its index map): any row of the map qualifies
      // (schedule.dependence-step).
      s.mutation = "dependence-clash";
      const GenStream* update = nullptr;
      for (const GenStream& st : s.streams) {
        if (st.update) update = &st;
      }
      for (const auto& row : update->map) {
        bool nonzero = false;
        for (Int c : row) nonzero |= c != 0;
        if (nonzero) {
          s.spec.step = row;
          break;
        }
      }
      break;
    }
    case 2:
      // Stationary streams with no loading & recovery vector
      // (flow.loading).
      s.mutation = "drop-loading";
      s.spec.loading.clear();
      break;
    default:
      // Rank-deficient index map: Appendix A's full-pipelining restriction
      // fails, so validate_source (and compile) must refuse the nest and
      // the spec verifier must flag stream.rank.
      s.mutation = "rank-deficient-stream";
      if (r == 2) {
        for (Int& c : s.streams[0].map[0]) c = 0;
      } else {
        s.streams[0].map[1] = s.streams[0].map[0];
      }
      break;
  }
}

}  // namespace

std::string to_sa(const FuzzSample& s) {
  std::ostringstream os;
  os << "# fuzz sample: seed=" << s.seed << " index=" << s.index;
  if (!s.mutation.empty()) os << " mutation=" << s.mutation;
  os << "\n";
  os << "design fuzz_" << s.index << "\n";
  os << "sizes ";
  for (std::size_t i = 0; i < s.size_syms.size(); ++i) {
    if (i > 0) os << ", ";
    os << s.size_syms[i] << " >= 1";
  }
  os << "\n";
  for (const GenLoop& loop : s.loops) {
    os << "loop " << loop.index << " = 0 .. "
       << size_affine_text(loop.upper, loop.upper_const);
    if (loop.dir < 0) os << " by -1";
    os << "\n";
  }
  for (const GenStream& st : s.streams) {
    os << "stream " << st.name << "[";
    for (std::size_t i = 0; i < st.map.size(); ++i) {
      if (i > 0) os << ", ";
      os << lin_text(st.map[i], s.loops);
    }
    os << "] " << (st.update ? "update" : "read") << " dims [";
    for (std::size_t i = 0; i < st.map.size(); ++i) {
      if (i > 0) os << ", ";
      const auto [lo, hi] = dim_bounds(st.map[i], s.loops);
      os << size_affine_text(lo.coeffs, lo.konst) << " .. "
         << size_affine_text(hi.coeffs, hi.konst);
    }
    os << "]\n";
  }
  std::string target;
  for (const GenStream& st : s.streams) {
    if (st.update) target = st.name;
  }
  os << "body " << target << " := " << target;
  for (const GenTerm& t : s.terms) {
    os << (t.negate ? " - " : " + ");
    if (t.scale != 1) os << t.scale << "*";
    for (std::size_t i = 0; i < t.streams.size(); ++i) {
      if (i > 0) os << " * ";
      os << s.streams[t.streams[i]].name;
    }
  }
  if (s.guarded) {
    os << " when " << lin_text(s.guard_coeffs, s.loops);
    if (s.guard_const != 0) {
      os << (s.guard_const < 0 ? " - " : " + ")
         << (s.guard_const < 0 ? -s.guard_const : s.guard_const);
    }
    os << " >= 0";
  }
  os << "\n";
  if (s.spec.present) {
    os << "step " << lin_text(s.spec.step, s.loops) << "\n";
    os << "place (";
    for (std::size_t i = 0; i < s.spec.place.size(); ++i) {
      if (i > 0) os << ", ";
      os << lin_text(s.spec.place[i], s.loops);
    }
    os << ")\n";
    for (const auto& [stream, vec] : s.spec.loading) {
      os << "load " << stream << " = (";
      for (std::size_t i = 0; i < vec.size(); ++i) {
        if (i > 0) os << ", ";
        os << vec[i];
      }
      os << ")\n";
    }
  } else {
    // Placeholder so the text stays parseable; classify() reports the
    // sample as NoDesign without running it.
    os << "step " << lin_text(std::vector<Int>(s.loops.size(), 1), s.loops)
       << "\n";
    os << "place (";
    for (std::size_t i = 0; i + 1 < s.loops.size(); ++i) {
      std::vector<Int> row(s.loops.size(), 0);
      row[i] = 1;
      if (i > 0) os << ", ";
      os << lin_text(row, s.loops);
    }
    os << ")\n";
  }
  return os.str();
}

FuzzSample generate_sample(std::uint64_t seed, std::size_t index,
                           const GeneratorOptions& options) {
  Rng rng(mix(seed, index));
  FuzzSample s;
  s.seed = seed;
  s.index = index;

  const std::size_t r = 2 + draw(rng, 2);  // nesting depth 2 or 3
  s.size_syms.push_back("n");
  if (r == 3 && draw(rng, 2) == 0) s.size_syms.push_back("m");

  static const char* kIndices[] = {"i", "j", "k"};
  for (std::size_t j = 0; j < r; ++j) {
    GenLoop loop;
    loop.index = kIndices[j];
    const std::string& sym = s.size_syms[draw(rng, s.size_syms.size())];
    switch (draw(rng, 8)) {
      case 0: loop.upper[sym] = 1; loop.upper_const = 1; break;  // n + 1
      case 1: loop.upper[sym] = 2; break;                        // 2*n
      default: loop.upper[sym] = 1; break;                       // n
    }
    loop.dir = draw(rng, 4) == 0 ? -1 : 1;
    s.loops.push_back(std::move(loop));
  }

  const std::size_t nstreams = 2 + draw(rng, 3);  // 2..4
  const std::size_t update_at = draw(rng, nstreams);
  static const char* kReadNames[] = {"a", "b", "c", "d"};
  std::size_t reads = 0;
  for (std::size_t i = 0; i < nstreams; ++i) {
    GenStream st;
    st.update = i == update_at;
    st.name = st.update ? "u" : kReadNames[reads++];
    st.map = sample_index_map(rng, r);
    s.streams.push_back(std::move(st));
  }

  // Body: every read stream appears exactly once, grouped into products.
  GenTerm term;
  for (std::size_t i = 0; i < s.streams.size(); ++i) {
    if (s.streams[i].update) continue;
    if (!term.streams.empty() && draw(rng, 5) < 2) {
      s.terms.push_back(term);
      term = GenTerm{};
    }
    term.streams.push_back(i);
  }
  s.terms.push_back(term);
  for (GenTerm& t : s.terms) {
    if (draw(rng, 5) == 0) t.scale = 2 + static_cast<Int>(draw(rng, 2));
    t.negate = draw(rng, 5) == 0;
  }

  if (draw(rng, 4) == 0) {
    s.guarded = true;
    s.guard_coeffs.assign(r, 0);
    bool nonzero = false;
    for (Int& c : s.guard_coeffs) {
      c = static_cast<Int>(draw(rng, 3)) - 1;  // [-1, 1]
      nonzero |= c != 0;
    }
    if (!nonzero) s.guard_coeffs[0] = 1;
    s.guard_const = static_cast<Int>(draw(rng, 4)) - 1;  // [-1, 2]
  }

  for (const std::string& sym : s.size_syms) {
    s.probe[sym] = 1 + static_cast<Int>(draw(rng, 3));  // 1..3
  }

  // Sample a compatible design from the cheap half of the explore
  // pipeline (rank -> Theorem 3 -> spec verifier), off the parsed nest so
  // the meaning is exactly the parser's. Spec-clean candidates can still
  // be refused deeper in the stack (non-primitive element increments at
  // compile time, plan-level deadlocks), so walk the pool from a random
  // start and prefer the first candidate that is clean end to end —
  // falling back to the bare random pick when none is, which keeps
  // deep-reject samples in the mix for the consistency oracle.
  const Design parsed = frontend::parse_design(to_sa(s));
  const std::vector<ArraySpec> pool = enumerate_spec_candidates(
      parsed.nest, options.coeff_range, options.spec_limit);
  if (!pool.empty()) {
    Env probe_env;
    for (const auto& [sym, value] : s.probe) probe_env[sym] = Rational(value);
    const std::size_t start = draw(rng, pool.size());
    std::optional<std::size_t> clean;
    const std::size_t tries = std::min<std::size_t>(pool.size(), 64);
    for (std::size_t k = 0; k < tries && !clean.has_value(); ++k) {
      const std::size_t idx = (start + k) % pool.size();
      try {
        const CompiledProgram prog = compile(parsed.nest, pool[idx]);
        if (verify_design(prog, parsed.nest, probe_env).errors() == 0) {
          clean = idx;
        }
      } catch (const Error&) {
      }
    }
    const ArraySpec& pick = pool[clean.value_or(start)];
    s.spec.present = true;
    s.spec.step = pick.step().coeffs().comps();
    for (std::size_t i = 0; i < pick.place().matrix().rows(); ++i) {
      s.spec.place.push_back(pick.place().matrix().row(i).comps());
    }
    for (const auto& [stream, vec] : pick.loading_vectors()) {
      s.spec.loading[stream] = vec.comps();
    }
  }

  if (draw(rng, 100) < options.mutate_percent) apply_mutation(rng, s);
  return s;
}

}  // namespace systolize::fuzz
