// Structured error type shared by every systolize module.
#pragma once

#include <stdexcept>
#include <string>

namespace systolize {

/// Category of failure, so callers (and tests) can dispatch without
/// string-matching the message.
enum class ErrorKind {
  Overflow,         ///< checked 64-bit arithmetic overflowed
  DivideByZero,     ///< rational division by zero / zero denominator
  Dimension,        ///< mismatched vector/matrix dimensions
  Singular,         ///< singular matrix where a unique solution was required
  NotRepresentable, ///< e.g. x // y requested where x is not a multiple of y
  Validation,       ///< source program or array spec violates Appendix A
  Inconsistent,     ///< step/place pair violates Equation (1)
  Unsupported,      ///< outside the scheme's stated restrictions
  Runtime,          ///< simulator protocol failure (deadlock, bad count, ...)
  Parse,            ///< .sa frontend syntax error
};

/// Exception carrying an ErrorKind; all systolize failures throw this.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

[[noreturn]] inline void raise(ErrorKind kind, const std::string& message) {
  throw Error(kind, message);
}

}  // namespace systolize
