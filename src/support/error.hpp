// Structured error type shared by every systolize module.
#pragma once

#include <stdexcept>
#include <string>

namespace systolize {

/// Category of failure, so callers (and tests) can dispatch without
/// string-matching the message.
enum class ErrorKind {
  Overflow,         ///< checked 64-bit arithmetic overflowed
  DivideByZero,     ///< rational division by zero / zero denominator
  Dimension,        ///< mismatched vector/matrix dimensions
  Singular,         ///< singular matrix where a unique solution was required
  NotRepresentable, ///< e.g. x // y requested where x is not a multiple of y
  Validation,       ///< source program or array spec violates Appendix A
  Inconsistent,     ///< step/place pair violates Equation (1)
  Unsupported,      ///< outside the scheme's stated restrictions
  Runtime,          ///< simulator protocol failure (deadlock, bad count, ...)
  Parse,            ///< .sa frontend syntax error
};

/// Stable name of an ErrorKind, for error printing and logs.
[[nodiscard]] constexpr const char* error_kind_name(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::Overflow: return "Overflow";
    case ErrorKind::DivideByZero: return "DivideByZero";
    case ErrorKind::Dimension: return "Dimension";
    case ErrorKind::Singular: return "Singular";
    case ErrorKind::NotRepresentable: return "NotRepresentable";
    case ErrorKind::Validation: return "Validation";
    case ErrorKind::Inconsistent: return "Inconsistent";
    case ErrorKind::Unsupported: return "Unsupported";
    case ErrorKind::Runtime: return "Runtime";
    case ErrorKind::Parse: return "Parse";
  }
  return "Unknown";
}

/// Exception carrying an ErrorKind; all systolize failures throw this.
/// An optional machine-readable diagnostic payload (JSON) rides along for
/// failures with forensic detail (e.g. the runtime's deadlock reports).
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  Error(ErrorKind kind, const std::string& message, std::string diagnostic)
      : std::runtime_error(message),
        kind_(kind),
        diagnostic_(std::move(diagnostic)) {}

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

  /// Machine-readable payload (empty when the failure carries none).
  [[nodiscard]] const std::string& diagnostic() const noexcept {
    return diagnostic_;
  }

 private:
  ErrorKind kind_;
  std::string diagnostic_;
};

[[noreturn]] inline void raise(ErrorKind kind, const std::string& message) {
  throw Error(kind, message);
}

[[noreturn]] inline void raise(ErrorKind kind, const std::string& message,
                               std::string diagnostic) {
  throw Error(kind, message, std::move(diagnostic));
}

}  // namespace systolize
