// Structured error type shared by every systolize module.
#pragma once

#include <stdexcept>
#include <string>

namespace systolize {

/// Category of failure, so callers (and tests) can dispatch without
/// string-matching the message. Every kind additionally carries a
/// retryable/terminal classification (error_kind_retryable) which the
/// service daemon's retry policy is built on: retryable kinds describe
/// transient conditions (load, deadlines, races, protocol stalls that an
/// injected fault may have caused) where a fresh attempt can legitimately
/// succeed; terminal kinds describe properties of the request itself that
/// no retry will change.
enum class ErrorKind {
  Overflow,         ///< checked 64-bit arithmetic overflowed
  DivideByZero,     ///< rational division by zero / zero denominator
  Dimension,        ///< mismatched vector/matrix dimensions
  Singular,         ///< singular matrix where a unique solution was required
  NotRepresentable, ///< e.g. x // y requested where x is not a multiple of y
  Validation,       ///< source program or array spec violates Appendix A
  Inconsistent,     ///< step/place pair violates Equation (1)
  Unsupported,      ///< outside the scheme's stated restrictions
  Runtime,          ///< simulator protocol failure (deadlock, bad count, ...)
  Parse,            ///< .sa frontend syntax error
  Timeout,          ///< watchdog budget or wall-clock deadline exceeded
  Cancelled,        ///< run aborted externally (shutdown, client gone)
  Overload,         ///< admission control rejected the request (back off)
  Io,               ///< socket / wire-protocol failure
  Internal,         ///< invariant breakage that is a bug, not bad input
};

/// Stable name of an ErrorKind, for error printing, logs and the service
/// wire protocol (round-trips through error_kind_from_name).
[[nodiscard]] constexpr const char* error_kind_name(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::Overflow: return "Overflow";
    case ErrorKind::DivideByZero: return "DivideByZero";
    case ErrorKind::Dimension: return "Dimension";
    case ErrorKind::Singular: return "Singular";
    case ErrorKind::NotRepresentable: return "NotRepresentable";
    case ErrorKind::Validation: return "Validation";
    case ErrorKind::Inconsistent: return "Inconsistent";
    case ErrorKind::Unsupported: return "Unsupported";
    case ErrorKind::Runtime: return "Runtime";
    case ErrorKind::Parse: return "Parse";
    case ErrorKind::Timeout: return "Timeout";
    case ErrorKind::Cancelled: return "Cancelled";
    case ErrorKind::Overload: return "Overload";
    case ErrorKind::Io: return "Io";
    case ErrorKind::Internal: return "Internal";
  }
  return "Unknown";
}

/// Retryable (true) vs terminal (false) classification of a kind.
///
///   * Timeout — a deadline ran out; under lighter load or a larger
///     budget the same request can finish.
///   * Overload — admission control shed the request; by definition a
///     retry after backoff is the intended reaction.
///   * Io — wire/socket hiccups are transient by nature.
///   * Runtime — protocol stalls (deadlock, bad transfer count) can be
///     induced by injected or environmental faults; a clean re-run can
///     succeed, and if the cause is structural the retry reproduces the
///     same forensic report deterministically.
///
/// Everything else describes the request itself (malformed source,
/// incompatible design, arithmetic that cannot be represented) or a bug
/// (Internal), and retrying cannot change the outcome. Cancellation is
/// terminal because the canceller does not want the work redone.
[[nodiscard]] constexpr bool error_kind_retryable(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::Runtime:
    case ErrorKind::Timeout:
    case ErrorKind::Overload:
    case ErrorKind::Io:
      return true;
    case ErrorKind::Overflow:
    case ErrorKind::DivideByZero:
    case ErrorKind::Dimension:
    case ErrorKind::Singular:
    case ErrorKind::NotRepresentable:
    case ErrorKind::Validation:
    case ErrorKind::Inconsistent:
    case ErrorKind::Unsupported:
    case ErrorKind::Parse:
    case ErrorKind::Cancelled:
    case ErrorKind::Internal:
      return false;
  }
  return false;
}

/// Inverse of error_kind_name, for decoding kinds off the wire. Unknown
/// names map to Internal (the safest terminal classification).
[[nodiscard]] ErrorKind error_kind_from_name(const std::string& name) noexcept;

/// Exception carrying an ErrorKind; all systolize failures throw this.
/// An optional machine-readable diagnostic payload (JSON) rides along for
/// failures with forensic detail (e.g. the runtime's deadlock reports).
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  Error(ErrorKind kind, const std::string& message, std::string diagnostic)
      : std::runtime_error(message),
        kind_(kind),
        diagnostic_(std::move(diagnostic)) {}

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool retryable() const noexcept {
    return error_kind_retryable(kind_);
  }

  /// Machine-readable payload (empty when the failure carries none).
  [[nodiscard]] const std::string& diagnostic() const noexcept {
    return diagnostic_;
  }

 private:
  ErrorKind kind_;
  std::string diagnostic_;
};

[[noreturn]] inline void raise(ErrorKind kind, const std::string& message) {
  throw Error(kind, message);
}

[[noreturn]] inline void raise(ErrorKind kind, const std::string& message,
                               std::string diagnostic) {
  throw Error(kind, message, std::move(diagnostic));
}

inline ErrorKind error_kind_from_name(const std::string& name) noexcept {
  for (ErrorKind kind :
       {ErrorKind::Overflow, ErrorKind::DivideByZero, ErrorKind::Dimension,
        ErrorKind::Singular, ErrorKind::NotRepresentable,
        ErrorKind::Validation, ErrorKind::Inconsistent, ErrorKind::Unsupported,
        ErrorKind::Runtime, ErrorKind::Parse, ErrorKind::Timeout,
        ErrorKind::Cancelled, ErrorKind::Overload, ErrorKind::Io,
        ErrorKind::Internal}) {
    if (name == error_kind_name(kind)) return kind;
  }
  return ErrorKind::Internal;
}

}  // namespace systolize
