#include "analysis/findings.hpp"

#include <cstdio>
#include <sstream>

namespace systolize {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void VerifyReport::add(std::string rule, Severity severity,
                       std::string subject, std::string message,
                       std::string detail) {
  findings.push_back(Finding{std::move(rule), severity, std::move(subject),
                             std::move(message), std::move(detail)});
}

std::size_t VerifyReport::errors() const noexcept {
  std::size_t n = 0;
  for (const Finding& f : findings) n += f.severity == Severity::Error;
  return n;
}

std::size_t VerifyReport::warnings() const noexcept {
  std::size_t n = 0;
  for (const Finding& f : findings) n += f.severity == Severity::Warning;
  return n;
}

std::size_t VerifyReport::infos() const noexcept {
  std::size_t n = 0;
  for (const Finding& f : findings) n += f.severity == Severity::Info;
  return n;
}

bool VerifyReport::clean() const noexcept {
  return errors() == 0 && warnings() == 0;
}

void VerifyReport::allow(const std::string& rule) {
  for (Finding& f : findings) {
    const bool category_match = f.rule.size() > rule.size() &&
                                f.rule.compare(0, rule.size(), rule) == 0 &&
                                f.rule[rule.size()] == '.';
    if (f.rule == rule || category_match) f.severity = Severity::Info;
  }
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  os << "verify " << design << ": ";
  if (findings.empty()) {
    os << "clean";
    return os.str();
  }
  os << findings.size() << " finding(s) — " << errors() << " error(s), "
     << warnings() << " warning(s), " << infos() << " info(s)";
  for (const Finding& f : findings) {
    os << "\n  [" << severity_name(f.severity) << "] " << f.rule << " ("
       << f.subject << "): ";
    // Indent multi-line messages (e.g. an embedded deadlock report).
    for (char c : f.message) {
      os << c;
      if (c == '\n') os << "    ";
    }
  }
  return os.str();
}

std::string VerifyReport::to_json() const {
  std::ostringstream os;
  os << "{\"design\":\"" << json_escape(design)
     << "\",\"errors\":" << errors() << ",\"warnings\":" << warnings()
     << ",\"infos\":" << infos() << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) os << ',';
    os << "{\"rule\":\"" << json_escape(f.rule) << "\",\"severity\":\""
       << severity_name(f.severity) << "\",\"subject\":\""
       << json_escape(f.subject) << "\",\"message\":\""
       << json_escape(f.message) << '"';
    if (!f.detail.empty()) os << ",\"detail\":" << f.detail;
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace systolize
