// PROGRAM-level rules: schedule validity re-derived from the compiled
// (step, place), consistency of the recorded stream motions with the
// flows the schedule implies, and the guard analysis — feasibility of
// every piecewise clause and pairwise disjointness (or provable value
// agreement) of overlapping clauses, decided by Fourier-Motzkin under
// the program's standing assumptions.
#include "analysis/verify.hpp"

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "numeric/rat_matrix.hpp"
#include "runtime/host.hpp"
#include "symbolic/fourier_motzkin.hpp"
#include "systolic/flow.hpp"

namespace systolize {
namespace {

std::optional<IntVec> unique_null_generator(const IntMatrix& m) {
  auto basis = m.null_space_basis();
  if (basis.size() != 1) return std::nullopt;
  return basis.front();
}

/// Component differences between two piece values, as affine expressions.
/// The values are provably equal on a region iff every difference is
/// provably zero there.
std::vector<AffineExpr> value_diffs(const AffineExpr& a,
                                    const AffineExpr& b) {
  return {a - b};
}

std::vector<AffineExpr> value_diffs(const AffinePoint& a,
                                    const AffinePoint& b) {
  std::vector<AffineExpr> diffs;
  const std::size_t n = a.dim() < b.dim() ? a.dim() : b.dim();
  for (std::size_t i = 0; i < n; ++i) diffs.push_back(a[i] - b[i]);
  // A dimension mismatch means the values certainly disagree; encode it
  // as the unsatisfiable-to-refute difference 1.
  if (a.dim() != b.dim()) diffs.push_back(AffineExpr(1));
  return diffs;
}

/// Exact on integer points: d can be non-zero on the (integer) region g
/// iff g /\ {1 <= d} or g /\ {d <= -1} is feasible. Our affine forms have
/// integer values on integer points, so the rational relaxation of those
/// two strict sides is exact (cf. implies() in fourier_motzkin.hpp).
bool provably_zero_on(const AffineExpr& d, const Guard& g,
                      const Guard& assumptions) {
  Guard pos = g;
  pos.add(Constraint{AffineExpr(1), d});
  if (is_feasible(pos, assumptions)) return false;
  Guard neg = g;
  neg.add(Constraint{d, AffineExpr(-1)});
  return !is_feasible(neg, assumptions);
}

/// The guard analysis for one piecewise definition `pw` named `subject`:
///  - guard.dead-clause (warning): a clause no point of the assumption
///    region can ever select;
///  - guard.overlap (error): two clauses overlap and their values provably
///    differ somewhere on the overlap — the selected alternative then
///    depends on clause order, which the paper's semantics forbids;
///  - guard.overlap-benign (info): clauses overlap but the values are
///    provably equal on the whole overlap (the paper's "projections of a
///    point on several faces" case — harmless).
template <typename T>
void check_pieces(VerifyReport& report, const std::string& subject,
                  const Piecewise<T>& pw, const Guard& assumptions) {
  const auto& pieces = pw.pieces();
  std::size_t benign_pairs = 0;
  std::vector<bool> alive(pieces.size(), false);
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    alive[i] = is_feasible(pieces[i].guard, assumptions);
    if (!alive[i]) {
      report.add("guard.dead-clause", Severity::Warning, subject,
                 "clause " + std::to_string(i) + " with guard [" +
                     pieces[i].guard.to_string() +
                     "] is infeasible under the standing assumptions and "
                     "can never be selected");
    }
  }
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (!alive[i]) continue;
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      if (!alive[j]) continue;
      Guard overlap = pieces[i].guard.conjoined(pieces[j].guard);
      if (!is_feasible(overlap, assumptions)) continue;
      bool equal = true;
      for (const AffineExpr& d :
           value_diffs(pieces[i].value, pieces[j].value)) {
        if (!provably_zero_on(d, overlap, assumptions)) {
          equal = false;
          break;
        }
      }
      if (equal) {
        ++benign_pairs;
      } else {
        report.add("guard.overlap", Severity::Error, subject,
                   "clauses " + std::to_string(i) + " and " +
                       std::to_string(j) +
                       " overlap and their values differ somewhere on "
                       "the overlap: which alternative fires depends "
                       "on clause order (double-covered points)");
      }
    }
  }
  if (benign_pairs != 0) {
    report.add("guard.overlap-benign", Severity::Info, subject,
               std::to_string(benign_pairs) +
                   " overlapping clause pair(s), all provably value-equal "
                   "on their overlaps (projections of points on several "
                   "faces — harmless)");
  }
}

/// All the piecewise definitions of one compiled program, by subject.
void check_guards(VerifyReport& report, const CompiledProgram& prog) {
  const Guard& as = prog.assumptions;
  check_pieces(report, "repeater.first", prog.repeater.first, as);
  check_pieces(report, "repeater.last", prog.repeater.last, as);
  check_pieces(report, "repeater.count", prog.repeater.count, as);
  for (const StreamPlan& sp : prog.streams) {
    check_pieces(report, sp.name + ".soak", sp.soak, as);
    check_pieces(report, sp.name + ".drain", sp.drain, as);
    check_pieces(report, sp.name + ".io.first_s", sp.io.first_s, as);
    check_pieces(report, sp.name + ".io.last_s", sp.io.last_s, as);
    check_pieces(report, sp.name + ".io.count_s", sp.io.count_s, as);
  }
}

}  // namespace

void verify_program_into(VerifyReport& report, const CompiledProgram& prog,
                         const LoopNest& nest) {
  const std::size_t r = prog.depth;
  const StepFunction& step = prog.step;
  const PlaceFunction& place = prog.place;

  if (r == 0 || r != nest.depth() || step.arity() != r ||
      place.arity() != r || place.space_dim() + 1 != r) {
    report.add("schedule.arity", Severity::Error, "compiled program",
               "compiled (step, place) shapes do not match a depth-" +
                   std::to_string(nest.depth()) + " nest");
    return;
  }

  // Schedule validity, Equation (1): (step, place) stacked as an r x r
  // map must have rank r — then distinct statements differ in step or in
  // place, and the repeater enumerates each process's workload exactly
  // once (Theorem 3).
  RatMatrix stacked(r, r);
  for (std::size_t c = 0; c < r; ++c) {
    stacked.at(0, c) = Rational(step.coeffs()[c]);
    for (std::size_t rr = 0; rr + 1 < r; ++rr) {
      stacked.at(rr + 1, c) = Rational(place.matrix().at(rr, c));
    }
  }
  std::optional<IntVec> w = unique_null_generator(place.matrix());
  if (!w.has_value()) {
    report.add("schedule.place-rank", Severity::Error, place.to_string(),
               "place must have rank r-1 (Theorem 1)");
  } else if (stacked.rank() < r) {
    report.add("schedule.injectivity", Severity::Error,
               step.to_string() + " / " + place.to_string(),
               "(step, place) is not injective on the index space: step "
               "vanishes on null.place generator " +
                   w->to_string() + " (Equation (1), Theorem 3)");
  }

  // The computation repeater's increment must walk exactly the fibre of
  // place through each process (null.place direction) and strictly
  // forwards in time (Sect. 6.2 chooses inc with step.inc > 0).
  const IntVec& inc = prog.repeater.increment;
  if (inc.dim() != r || inc.is_zero()) {
    report.add("schedule.increment", Severity::Error, inc.to_string(),
               "repeater increment must be a non-zero vector in Z^r");
  } else {
    if (!place.apply(inc).is_zero()) {
      report.add("schedule.increment", Severity::Error, inc.to_string(),
                 "repeater increment leaves the process's fibre: "
                 "place.increment != 0, so the repeater visits points "
                 "belonging to other processes");
    }
    if (step.apply(inc) <= 0) {
      report.add("schedule.increment", Severity::Error, inc.to_string(),
                 "step does not strictly increase along the repeater "
                 "increment (step.inc = " +
                     std::to_string(step.apply(inc)) +
                     "); successive statements of one process would not "
                     "execute in increasing step order");
    }
  }

  // Recorded stream motions vs the flows the schedule implies
  // (flow.s = place.n / step.n, Theorem 10).
  for (const StreamPlan& sp : prog.streams) {
    const Stream* stream = nullptr;
    for (const Stream& s : nest.streams()) {
      if (s.name() == sp.name) {
        stream = &s;
        break;
      }
    }
    if (stream == nullptr) {
      report.add("flow.consistency", Severity::Error, sp.name,
                 "compiled program plans a stream the source program does "
                 "not declare");
      continue;
    }
    RatVec derived;
    try {
      derived = compute_flow(*stream, step, place);
    } catch (const Error& e) {
      report.add("schedule.dependence-step", Severity::Error, sp.name,
                 std::string("flow.") + sp.name +
                     " is undefined under the compiled schedule: " +
                     e.what());
      continue;
    }
    const FlowDecomposition dec = decompose_flow(derived);
    if (sp.motion.flow != derived) {
      std::string msg = "recorded flow " + sp.motion.flow.to_string() +
                        " differs from the flow the schedule implies, " +
                        derived.to_string() + " (Theorem 10)";
      if (!derived.is_zero() && sp.motion.direction == -dec.direction) {
        msg += "; the recorded direction is exactly reversed — elements "
               "would travel against the dependences";
      }
      report.add("flow.consistency", Severity::Error, sp.name, msg);
      continue;
    }
    if (sp.motion.stationary != derived.is_zero()) {
      report.add("flow.consistency", Severity::Error, sp.name,
                 "stationary flag disagrees with the derived flow");
      continue;
    }
    if (!derived.is_zero()) {
      if (sp.motion.direction != dec.direction ||
          sp.motion.denominator != dec.denominator) {
        report.add("flow.consistency", Severity::Error, sp.name,
                   "recorded direction/denominator (" +
                       sp.motion.direction.to_string() + ", " +
                       std::to_string(sp.motion.denominator) +
                       ") differ from the decomposition of the flow (" +
                       dec.direction.to_string() + ", " +
                       std::to_string(dec.denominator) + ")");
        continue;
      }
      if (!dec.direction.is_neighbour_offset()) {
        report.add("flow.neighbour", Severity::Error, sp.name,
                   "flow direction " + dec.direction.to_string() +
                       " is not a neighbour offset (Sect. 3.2)");
      }
    } else if (sp.motion.direction.is_zero() ||
               !sp.motion.direction.is_neighbour_offset()) {
      report.add("flow.loading", Severity::Error, sp.name,
                 "stationary stream's loading & recovery direction " +
                     sp.motion.direction.to_string() +
                     " must be a non-zero neighbour offset (Sect. 4.2)");
    }
  }

  check_guards(report, prog);
}

VerifyReport verify_program(const CompiledProgram& prog,
                            const LoopNest& nest) {
  VerifyReport report;
  report.design = prog.name;
  verify_program_into(report, prog, nest);
  return report;
}

VerifyReport verify_design(const CompiledProgram& prog, const LoopNest& nest,
                           const Env& sizes, const PlanShape& shape) {
  VerifyReport report;
  report.design = prog.name;
  verify_program_into(report, prog, nest);
  if (report.errors() != 0) return report;  // plan would inherit the rot
  verify_loading_cover_into(report, prog, nest, sizes);
  if (report.errors() != 0) return report;
  try {
    std::unique_ptr<NetworkPlan> plan = build_plan(prog, nest, sizes, shape);
    verify_plan_into(report, *plan);
  } catch (const Error& e) {
    report.add("plan.error", Severity::Error, "network plan",
               std::string("interning the plan failed: ") + e.what(),
               e.diagnostic().empty() ? "" : e.diagnostic());
  }
  return report;
}

void verify_loading_cover_into(VerifyReport& report,
                               const CompiledProgram& prog,
                               const LoopNest& nest, const Env& sizes) {
  // Loading cover (stationary streams only): the loading & recovery
  // pipelines enumerate the declared element box, while the cells that
  // hold the elements are the index-map image of the iteration domain.
  // When the image is not exactly the box — the map's image over the
  // domain is not rectangular — the two sequences misalign and loading
  // deposits elements into the wrong cells (found by differential
  // fuzzing: the recovered values come back cyclically shifted along
  // the loading direction). Moving streams are immune: their element
  // identities are derived per chord from the iteration domain itself.
  for (const StreamPlan& sp : prog.streams) {
    if (!sp.motion.stationary) continue;
    const Stream* stream = nullptr;
    for (const Stream& s : nest.streams()) {
      if (s.name() == sp.name) stream = &s;
    }
    if (stream == nullptr) continue;  // flow.consistency already fired
    std::set<IntVec, IntVecLess> image;
    for (const IntVec& x : nest.enumerate_index_space(sizes)) {
      image.insert(stream->element_of(x));
    }
    const std::vector<IntVec> box = IndexedStore::domain(*stream, sizes);
    bool covered = image.size() == box.size();
    for (std::size_t i = 0; covered && i < box.size(); ++i) {
      covered = image.contains(box[i]);
    }
    if (!covered) {
      report.add("flow.loading-cover", Severity::Error, sp.name,
                 "stationary stream's declared element box (" +
                     std::to_string(box.size()) +
                     " elements) is not exactly the index-map image of "
                     "the iteration domain (" +
                     std::to_string(image.size()) +
                     " elements) — the loading & recovery pipelines "
                     "would deposit elements into the wrong cells");
    }
  }
}

}  // namespace systolize
