// SPEC-level rules: symbolic validity of a raw (source, array) pair.
//
// These mirror the conditions validate_array() enforces by throwing, but
// as findings — so a deliberately broken spec yields a complete lint
// report instead of dying on the first violation, and the CLI can gate on
// rule ids. Paper provenance is cited per rule in docs/static-analysis.md.
#include "analysis/verify.hpp"

#include <optional>

#include "systolic/dependence.hpp"
#include "systolic/flow.hpp"

namespace systolize {
namespace {

/// The unique (gcd-normalized) null generator of a linear map, or
/// nullopt when the null space does not have dimension exactly 1.
std::optional<IntVec> unique_null_generator(const IntMatrix& m) {
  auto basis = m.null_space_basis();
  if (basis.size() != 1) return std::nullopt;
  return basis.front();
}

}  // namespace

void verify_spec_into(VerifyReport& report, const LoopNest& nest,
                      const ArraySpec& spec) {
  const std::size_t r = nest.depth();
  const StepFunction& step = spec.step();
  const PlaceFunction& place = spec.place();

  if (step.arity() != r || place.arity() != r ||
      place.space_dim() + 1 != r) {
    report.add("schedule.arity", Severity::Error, "array spec",
               "step must be 1 x " + std::to_string(r) + " and place " +
                   std::to_string(r - 1) + " x " + std::to_string(r) +
                   " for a depth-" + std::to_string(r) +
                   " nest; got step arity " + std::to_string(step.arity()) +
                   ", place " + std::to_string(place.space_dim()) + " x " +
                   std::to_string(place.arity()));
    return;  // every later check depends on the shapes
  }

  // Schedule validity (Theorem 3 / Equation (1)): place has rank r-1 and
  // step does not vanish on null.place, i.e. (step, place) stacked has
  // rank r and is injective on Z^r — hence on the index space.
  std::optional<IntVec> w = unique_null_generator(place.matrix());
  if (!w.has_value()) {
    report.add("schedule.place-rank", Severity::Error, place.to_string(),
               "place must have rank r-1 (null space of dimension 1); "
               "Theorem 1's single projection direction does not exist");
  } else if (step.apply(*w) == 0) {
    report.add("schedule.injectivity", Severity::Error,
               step.to_string() + " / " + place.to_string(),
               "step vanishes on null.place generator " + w->to_string() +
                   ": two distinct statements would share both step and "
                   "place, violating Equation (1) (Theorem 3)");
  }

  // Per-stream dependence and flow rules (Sect. 3.2, Theorem 10).
  bool streams_ok = true;
  for (const Stream& s : nest.streams()) {
    std::optional<IntVec> n = unique_null_generator(s.index_map());
    if (!n.has_value()) {
      report.add("stream.rank", Severity::Error, s.name(),
                 "index map must have rank r-1 (full pipelining, "
                 "Appendix A); its null space is not one-dimensional");
      streams_ok = false;
      continue;
    }
    const Int t = step.apply(*n);
    if (t == 0) {
      report.add("schedule.dependence-step", Severity::Error, s.name(),
                 "step vanishes on the dependence direction " +
                     n->to_string() + " of stream '" + s.name() +
                     "': statements sharing one element execute at the "
                     "same step on different processes (violates "
                     "Equation (1); flow.s is undefined, Theorem 10)");
      streams_ok = false;
      continue;
    }
    const RatVec flow = compute_flow(s, step, place);
    const FlowDecomposition dec = decompose_flow(flow);
    if (flow.is_zero()) {
      auto it = spec.loading_vectors().find(s.name());
      if (it == spec.loading_vectors().end()) {
        report.add("flow.loading", Severity::Error, s.name(),
                   "stationary stream (flow 0) has no loading & recovery "
                   "vector (Sect. 4.2)");
      } else if (it->second.is_zero() ||
                 !it->second.is_neighbour_offset()) {
        report.add("flow.loading", Severity::Error, s.name(),
                   "loading & recovery vector " + it->second.to_string() +
                       " must be a non-zero neighbour offset (nb, "
                       "Sect. 3.2)");
      }
    } else if (!dec.direction.is_neighbour_offset()) {
      report.add("flow.neighbour", Severity::Error, s.name(),
                 "flow " + flow.to_string() + " has smallest direction " +
                     dec.direction.to_string() +
                     " which is not a neighbour offset: the "
                     "neighbouring-connection requirement (E n > 0 : "
                     "nb.(n * flow.s)) of Sect. 3.2 fails");
    }
  }

  // Update-order rule: the systolic execution applies the statements
  // touching one element in increasing step order; for an Update stream
  // that order must match the sequential one (non-commutative bodies).
  if (streams_ok && w.has_value() && !respects_dependences(nest, spec)) {
    report.add("schedule.dependence-order", Severity::Error, "dependences",
               "step reverses the sequential update order of an Update "
               "stream: the array is only correct for commutative bodies");
  }
}

VerifyReport verify_spec(const LoopNest& nest, const ArraySpec& spec) {
  VerifyReport report;
  report.design = nest.name();
  verify_spec_into(report, nest, spec);
  return report;
}

}  // namespace systolize
