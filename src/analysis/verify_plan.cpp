// PLAN-level rules: channel discipline and static deadlock freedom of an
// interned NetworkPlan, with ZERO scheduler rounds.
//
// Every plan process reduces to a finite sequence of communication
// "groups" — singleton ops for the sequential sends/receives, one par
// set per repeater iteration — read straight off the ProcSpec/RoleSpec
// tables, mirroring the coroutine bodies in plan_cache.cpp op for op.
// Channel safety (single writer, single reader, send/recv balance) falls
// out of the op counts; deadlock freedom is decided by abstractly
// retiring ops against the channel semantics of the scheduler (a send
// completes when the buffer has room or a receiver is parked; a recv
// completes when a value is buffered or a sender is parked). Channel
// progress is monotone in this model, so greedy retirement computes the
// unique maximal execution: either every process finishes — the network
// provably cannot deadlock on communication structure — or the stuck
// state IS a deadlock, reported in the exact wait-for schema of the
// runtime forensics (DeadlockReport), channels and cycle included.
#include "analysis/verify.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/metrics.hpp"

namespace systolize {
namespace {

/// One abstract communication op: a send or receive on a plan channel.
struct AbsOp {
  std::int32_t chan = -1;
  bool is_send = false;
};

/// A process's communication behaviour: `ops` partitioned into groups by
/// `group_end` (exclusive prefix ends). Groups run in order; the ops of
/// one group are posted together (par) and the group completes when all
/// of them have.
struct ProcProgram {
  std::vector<AbsOp> ops;
  std::vector<std::size_t> group_end;

  void op(std::int32_t chan, bool is_send) {
    ops.push_back(AbsOp{chan, is_send});
    group_end.push_back(ops.size());
  }
  /// Open a par group of `n` ops; follow with n push_backs onto `ops`.
  void par_mark() { group_end.push_back(ops.size()); }
  void par_close() { group_end.back() = ops.size(); }
};

/// Emit the op sequence of process `pi`, mirroring plan_cache.cpp's
/// plan_*_body coroutines exactly (phase order included — it is what
/// makes the prologue/epilogue globally consistent, see D.1.7).
ProcProgram abstract_body(const NetworkPlan& plan, std::uint32_t pi) {
  const NetworkPlan::ProcSpec& spec = plan.procs[pi];
  ProcProgram prog;
  switch (spec.kind) {
    case NetworkPlan::ProcKind::Input:
      for (Int i = 0; i < spec.count; ++i) prog.op(spec.chan_out, true);
      return prog;
    case NetworkPlan::ProcKind::Output:
      for (Int i = 0; i < spec.count; ++i) prog.op(spec.chan_in, false);
      return prog;
    case NetworkPlan::ProcKind::Pass:
      for (Int i = 0; i < spec.count; ++i) {
        prog.op(spec.chan_in, false);
        prog.op(spec.chan_out, true);
      }
      return prog;
    case NetworkPlan::ProcKind::Comp:
      break;
  }
  auto role_at = [&](std::size_t i) -> const NetworkPlan::RoleSpec& {
    return plan.roles[spec.role_begin + i];
  };
  const std::size_t nroles = spec.role_end - spec.role_begin;
  // Prologue: load stationary streams, then soak moving ones.
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = role_at(i);
    if (!role.stationary) continue;
    prog.op(role.chan_in, false);
    for (Int k = 0; k < role.drain; ++k) {  // loading passes
      prog.op(role.chan_in, false);
      prog.op(role.chan_out, true);
    }
  }
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = role_at(i);
    if (role.stationary) continue;
    for (Int k = 0; k < role.soak; ++k) {
      prog.op(role.chan_in, false);
      prog.op(role.chan_out, true);
    }
  }
  // Repeater: par-recv all moving streams, par-send all moving streams.
  std::vector<std::int32_t> moving_in;
  std::vector<std::int32_t> moving_out;
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = role_at(i);
    if (role.stationary) continue;
    moving_in.push_back(role.chan_in);
    moving_out.push_back(role.chan_out);
  }
  for (Int iter = 0; iter < spec.count; ++iter) {
    if (!moving_in.empty()) {
      prog.par_mark();
      for (std::int32_t c : moving_in) prog.ops.push_back(AbsOp{c, false});
      prog.par_close();
    }
    if (!moving_out.empty()) {
      prog.par_mark();
      for (std::int32_t c : moving_out) prog.ops.push_back(AbsOp{c, true});
      prog.par_close();
    }
  }
  // Epilogue: drain moving streams first, recover stationary ones last.
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = role_at(i);
    if (role.stationary) continue;
    for (Int k = 0; k < role.drain; ++k) {
      prog.op(role.chan_in, false);
      prog.op(role.chan_out, true);
    }
  }
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = role_at(i);
    if (!role.stationary) continue;
    for (Int k = 0; k < role.soak; ++k) {  // recovery passes
      prog.op(role.chan_in, false);
      prog.op(role.chan_out, true);
    }
    prog.op(role.chan_out, true);
  }
  return prog;
}

/// Per-channel use tallies. Writers/readers are STRUCTURAL — every
/// process wired to the channel end, even when its count is 0 at this
/// problem size (null pipes are legal); sends/recvs count actual ops.
struct ChannelUse {
  std::vector<std::uint32_t> writers;  ///< distinct procs wired to send
  std::vector<std::uint32_t> readers;  ///< distinct procs wired to recv
  Int sends = 0;
  Int recvs = 0;
};

void note(std::vector<std::uint32_t>& procs, std::uint32_t pi) {
  if (std::find(procs.begin(), procs.end(), pi) == procs.end()) {
    procs.push_back(pi);
  }
}

std::string proc_list(const NetworkPlan& plan,
                      const std::vector<std::uint32_t>& procs) {
  std::string out;
  for (std::uint32_t pi : procs) {
    if (!out.empty()) out += ", ";
    out += plan.procs[pi].name;
  }
  return out;
}

// ---------------------------------------------------------------------
// Abstract execution of the communication structure.

struct ProcState {
  std::size_t group = 0;        ///< index into group_end
  std::size_t remaining = 0;    ///< uncompleted ops of the current group
  std::size_t groups_done = 0;  ///< logical time for the forensic report
};

struct PendingOp {
  std::uint32_t proc = 0;
  std::size_t op = 0;  ///< index into that proc's ops
};

struct ChanState {
  std::vector<PendingOp> sends;  ///< parked senders, FIFO
  std::vector<PendingOp> recvs;  ///< parked receivers, FIFO
  std::size_t send_head = 0;
  std::size_t recv_head = 0;
  Int buffered = 0;
  bool in_work = false;
};

/// The whole static deadlock analysis: retire ops until quiescence; on a
/// stuck state with unfinished processes, build the wait-for report.
void check_deadlock(VerifyReport& report, const NetworkPlan& plan,
                    const std::vector<ProcProgram>& progs) {
  const std::size_t nprocs = plan.procs.size();
  std::vector<ProcState> ps(nprocs);
  std::vector<ChanState> cs(plan.channels.size());
  std::vector<std::int32_t> work;  ///< channel ids with possible progress

  auto enqueue = [&](std::int32_t c) {
    if (!cs[c].in_work) {
      cs[c].in_work = true;
      work.push_back(c);
    }
  };

  // Post every op of proc `pi`'s current group onto its channel.
  std::function<void(std::uint32_t)> post_group = [&](std::uint32_t pi) {
    const ProcProgram& prog = progs[pi];
    ProcState& st = ps[pi];
    while (st.group < prog.group_end.size()) {
      const std::size_t begin =
          st.group == 0 ? 0 : prog.group_end[st.group - 1];
      const std::size_t end = prog.group_end[st.group];
      if (begin == end) {  // empty group (repeater with no moving roles)
        ++st.group;
        ++st.groups_done;
        continue;
      }
      st.remaining = end - begin;
      for (std::size_t o = begin; o < end; ++o) {
        const AbsOp& op = prog.ops[o];
        auto& side = op.is_send ? cs[op.chan].sends : cs[op.chan].recvs;
        side.push_back(PendingOp{pi, o});
        enqueue(op.chan);
      }
      return;
    }
  };

  auto complete = [&](const PendingOp& p) {
    ProcState& st = ps[p.proc];
    if (--st.remaining == 0) {
      ++st.group;
      ++st.groups_done;
      post_group(p.proc);
    }
  };

  for (std::uint32_t pi = 0; pi < nprocs; ++pi) post_group(pi);

  while (!work.empty()) {
    const std::int32_t c = work.back();
    work.pop_back();
    ChanState& ch = cs[c];
    ch.in_work = false;
    const Int capacity = plan.channels[c].capacity;
    bool progress = true;
    while (progress) {
      progress = false;
      // Buffered send: the channel has room.
      while (ch.send_head < ch.sends.size() && ch.buffered < capacity) {
        ++ch.buffered;
        complete(ch.sends[ch.send_head++]);
        progress = true;
      }
      // Buffered recv: a value is available.
      while (ch.recv_head < ch.recvs.size() && ch.buffered > 0) {
        --ch.buffered;
        complete(ch.recvs[ch.recv_head++]);
        progress = true;
      }
      // Rendezvous: a parked sender and receiver pair off.
      while (ch.send_head < ch.sends.size() &&
             ch.recv_head < ch.recvs.size()) {
        complete(ch.sends[ch.send_head++]);
        complete(ch.recvs[ch.recv_head++]);
        progress = true;
      }
    }
  }

  std::vector<std::uint32_t> unfinished;
  for (std::uint32_t pi = 0; pi < nprocs; ++pi) {
    if (ps[pi].group < progs[pi].group_end.size()) unfinished.push_back(pi);
  }
  if (unfinished.empty()) return;  // provably deadlock-free

  // Stuck: reconstruct the runtime forensics. Blocked ops are exactly
  // the posted-but-unretired ops of each unfinished process's current
  // group; a blocked send waits for the channel's receiver, a blocked
  // recv for its sender.
  DeadlockReport dl;
  dl.reason = "deadlock";
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, std::int32_t>>>
      adj;  // proc -> (wait-for proc, via channel)
  auto blocked_op = [&](std::uint32_t pi, const AbsOp& op) {
    dl.blocked.push_back(BlockedOpState{
        plan.procs[pi].name, plan.channels[op.chan].name,
        op.is_send ? "send" : "recv",
        static_cast<Int>(ps[pi].groups_done), 0});
    const std::int32_t counterpart = op.is_send
                                         ? plan.channels[op.chan].receiver
                                         : plan.channels[op.chan].sender;
    if (counterpart >= 0 &&
        static_cast<std::uint32_t>(counterpart) != pi &&
        ps[counterpart].group < progs[counterpart].group_end.size()) {
      adj[pi].emplace_back(static_cast<std::uint32_t>(counterpart),
                           op.chan);
    }
  };
  for (std::uint32_t pi : unfinished) {
    const ProcProgram& prog = progs[pi];
    const std::size_t g = ps[pi].group;
    const std::size_t begin = g == 0 ? 0 : prog.group_end[g - 1];
    for (std::size_t o = begin; o < prog.group_end[g]; ++o) {
      // Only ops still parked on the channel are blocked; a completed op
      // of a half-done par group is not.
      const AbsOp& op = prog.ops[o];
      const ChanState& ch = cs[op.chan];
      const auto& side = op.is_send ? ch.sends : ch.recvs;
      const std::size_t head = op.is_send ? ch.send_head : ch.recv_head;
      for (std::size_t k = head; k < side.size(); ++k) {
        if (side[k].proc == pi && side[k].op == o) {
          blocked_op(pi, op);
          break;
        }
      }
    }
  }

  // Cycle extraction: the same three-colour DFS as the runtime watchdog,
  // over plan ids instead of Process pointers.
  std::map<std::uint32_t, int> color;  // 0 white, 1 gray, 2 black
  struct PathEntry {
    std::uint32_t proc;
    std::int32_t via_in;  ///< channel of the edge into `proc` (-1 at root)
  };
  std::vector<PathEntry> path;
  bool found = false;
  std::function<void(std::uint32_t)> dfs = [&](std::uint32_t u) {
    color[u] = 1;
    auto it = adj.find(u);
    if (it != adj.end()) {
      for (const auto& [to, via] : it->second) {
        if (found) return;
        if (color[to] == 0) {
          path.push_back({to, via});
          dfs(to);
          if (found) return;
          path.pop_back();
        } else if (color[to] == 1) {
          auto start = std::find_if(
              path.begin(), path.end(),
              [&](const PathEntry& pe) { return pe.proc == to; });
          for (auto pe = start; pe != path.end(); ++pe) {
            dl.cycle.push_back(plan.procs[pe->proc].name);
            auto next = pe + 1;
            dl.cycle_channels.push_back(
                plan.channels[next == path.end() ? via : next->via_in]
                    .name);
          }
          found = true;
          return;
        }
      }
    }
    color[u] = 2;
  };
  for (const auto& [proc, edges] : adj) {
    (void)edges;
    if (found) break;
    if (color[proc] == 0) {
      path.clear();
      path.push_back({proc, -1});
      dfs(proc);
    }
  }

  report.add(found ? "deadlock.cycle" : "deadlock.stuck", Severity::Error,
             "network",
             "the communication structure cannot complete: " +
                 std::to_string(unfinished.size()) +
                 " process(es) block forever\n" + dl.to_string(),
             dl.to_json());
}

}  // namespace

void verify_plan_into(VerifyReport& report, const NetworkPlan& plan) {
  const std::size_t nchans = plan.channels.size();
  const auto chan_ok = [&](std::int32_t c) {
    return c >= 0 && static_cast<std::size_t>(c) < nchans;
  };

  // Referential integrity first — everything later indexes blindly.
  bool refs_ok = true;
  for (std::uint32_t pi = 0; pi < plan.procs.size(); ++pi) {
    const NetworkPlan::ProcSpec& spec = plan.procs[pi];
    auto bad = [&](const std::string& what) {
      report.add("channel.bad-ref", Severity::Error, spec.name,
                 "process references " + what + " out of range");
      refs_ok = false;
    };
    switch (spec.kind) {
      case NetworkPlan::ProcKind::Input:
        if (!chan_ok(spec.chan_out)) bad("output channel");
        break;
      case NetworkPlan::ProcKind::Output:
        if (!chan_ok(spec.chan_in)) bad("input channel");
        break;
      case NetworkPlan::ProcKind::Pass:
        if (!chan_ok(spec.chan_in)) bad("input channel");
        if (!chan_ok(spec.chan_out)) bad("output channel");
        break;
      case NetworkPlan::ProcKind::Comp:
        if (spec.role_begin > spec.role_end ||
            spec.role_end > plan.roles.size()) {
          bad("role slice");
          break;
        }
        for (std::size_t r = spec.role_begin; r < spec.role_end; ++r) {
          if (!chan_ok(plan.roles[r].chan_in)) bad("role input channel");
          if (!chan_ok(plan.roles[r].chan_out)) bad("role output channel");
        }
        break;
    }
  }
  if (!refs_ok) return;

  // Gather per-channel usage: structural endpoints from the wiring, op
  // counts from the abstract bodies.
  std::vector<ProcProgram> progs;
  progs.reserve(plan.procs.size());
  std::vector<ChannelUse> use(nchans);
  for (std::uint32_t pi = 0; pi < plan.procs.size(); ++pi) {
    const NetworkPlan::ProcSpec& spec = plan.procs[pi];
    switch (spec.kind) {
      case NetworkPlan::ProcKind::Input:
        note(use[spec.chan_out].writers, pi);
        break;
      case NetworkPlan::ProcKind::Output:
        note(use[spec.chan_in].readers, pi);
        break;
      case NetworkPlan::ProcKind::Pass:
        note(use[spec.chan_in].readers, pi);
        note(use[spec.chan_out].writers, pi);
        break;
      case NetworkPlan::ProcKind::Comp:
        for (std::size_t r = spec.role_begin; r < spec.role_end; ++r) {
          note(use[plan.roles[r].chan_in].readers, pi);
          note(use[plan.roles[r].chan_out].writers, pi);
        }
        break;
    }
    progs.push_back(abstract_body(plan, pi));
    for (const AbsOp& op : progs.back().ops) {
      if (op.is_send) {
        ++use[op.chan].sends;
      } else {
        ++use[op.chan].recvs;
      }
    }
  }

  bool channels_ok = true;
  for (std::size_t c = 0; c < nchans; ++c) {
    const NetworkPlan::ChannelSpec& spec = plan.channels[c];
    const ChannelUse& u = use[c];
    if (u.writers.empty() || u.readers.empty()) {
      report.add("channel.dangling", Severity::Error, spec.name,
                 u.writers.empty()
                     ? "no process is wired to this channel's sending end"
                     : "no process is wired to this channel's receiving end");
      channels_ok = false;
      continue;
    }
    if (u.writers.size() > 1) {
      report.add("channel.multi-writer", Severity::Error, spec.name,
                 "single-writer discipline violated: sends from " +
                     proc_list(plan, u.writers));
      channels_ok = false;
    }
    if (u.readers.size() > 1) {
      report.add("channel.multi-reader", Severity::Error, spec.name,
                 "single-reader discipline violated: receives from " +
                     proc_list(plan, u.readers));
      channels_ok = false;
    }
    if (u.writers.size() == 1 &&
        static_cast<std::int32_t>(u.writers.front()) != spec.sender) {
      report.add("channel.endpoint-mismatch", Severity::Error, spec.name,
                 "recorded sender does not match the process that "
                 "actually sends (" +
                     plan.procs[u.writers.front()].name + ")");
      channels_ok = false;
    }
    if (u.readers.size() == 1 &&
        static_cast<std::int32_t>(u.readers.front()) != spec.receiver) {
      report.add("channel.endpoint-mismatch", Severity::Error, spec.name,
                 "recorded receiver does not match the process that "
                 "actually receives (" +
                     plan.procs[u.readers.front()].name + ")");
      channels_ok = false;
    }
    if (u.sends != u.recvs) {
      report.add("channel.count-mismatch", Severity::Error, spec.name,
                 "conservation violated: " + std::to_string(u.sends) +
                     " send(s) vs " + std::to_string(u.recvs) +
                     " recv(s) over the whole run — the network cannot "
                     "terminate cleanly");
      channels_ok = false;
    }
  }

  // Deadlock analysis only makes sense on a structurally sound network;
  // a count mismatch already implies a stuck process.
  if (channels_ok) check_deadlock(report, plan, progs);
}

VerifyReport verify_plan(const NetworkPlan& plan) {
  VerifyReport report;
  verify_plan_into(report, plan);
  return report;
}

}  // namespace systolize
