#include "analysis/cost.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "runtime/bytecode.hpp"

namespace systolize {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

Int abs_int(Int v) { return v < 0 ? -v : v; }

/// Render a product of affine factors, e.g. "(n + 1) * (2*n + 1)".
std::string product_to_string(const std::vector<AffineExpr>& factors) {
  if (factors.empty()) return "1";
  std::ostringstream os;
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (i > 0) os << " * ";
    const std::string f = factors[i].to_string();
    if (f.find(' ') != std::string::npos) {
      os << '(' << f << ')';
    } else {
      os << f;
    }
  }
  return os.str();
}

/// The dependence chain of an Update stream runs along the null direction
/// d of its index map: statements x and x + k*d touch the same element.
/// Its length inside the index-space box is min over the non-zero
/// components of (extent_i / |d_i|), plus one.
std::string chain_formula_of(const Stream& s, const LoopNest& nest) {
  const std::vector<IntVec> basis = s.index_map().null_space_basis();
  if (basis.size() != 1) return "(by enumeration)";
  const IntVec& d = basis.front();
  const std::vector<LoopSpec>& loops = nest.loops();

  std::vector<std::string> terms;
  bool single_unit = false;
  AffineExpr single_extent;
  for (std::size_t i = 0; i < loops.size(); ++i) {
    if (d[i] == 0) continue;
    AffineExpr extent = loops[i].upper - loops[i].lower;
    const Int k = abs_int(d[i]);
    if (k == 1) {
      single_unit = terms.empty();
      single_extent = extent;
      terms.push_back(extent.to_string());
    } else {
      single_unit = false;
      terms.push_back("(" + extent.to_string() + ")/" + std::to_string(k));
    }
  }
  if (terms.empty()) return "1";
  if (terms.size() == 1) {
    if (single_unit) return (single_extent + AffineExpr(1)).to_string();
    return terms.front() + " + 1";
  }
  std::ostringstream os;
  os << "min(";
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) os << ", ";
    os << terms[i];
  }
  os << ") + 1";
  return os.str();
}

Int chain_length_at(const Stream& s, const LoopNest& nest, const Env& env) {
  const std::vector<IntVec> basis = s.index_map().null_space_basis();
  const std::vector<LoopSpec>& loops = nest.loops();
  if (basis.size() == 1) {
    const IntVec& d = basis.front();
    Int best = -1;
    for (std::size_t i = 0; i < loops.size(); ++i) {
      if (d[i] == 0) continue;
      const Int extent =
          (loops[i].upper - loops[i].lower).evaluate(env).floor();
      const Int len = extent / abs_int(d[i]) + 1;
      if (best < 0 || len < best) best = len;
    }
    return best < 0 ? 1 : best;
  }
  // Degenerate index map (null space not one-dimensional): count element
  // multiplicities directly. Still static — a walk of IS, no scheduler.
  std::map<IntVec, Int, IntVecLess> mult;
  Int best = 1;
  for (const IntVec& x : nest.enumerate_index_space(env)) {
    best = std::max(best, ++mult[s.element_of(x)]);
  }
  return best;
}

}  // namespace

std::string CostFormulas::ps_box_to_string() const {
  return product_to_string(ps_extents);
}

std::string CostFormulas::work_to_string() const {
  return product_to_string(is_extents);
}

std::string CostFormulas::chain_to_string() const {
  if (chain_formulas.empty()) return "1";
  if (chain_formulas.size() == 1) return chain_formulas.front();
  std::ostringstream os;
  os << "max(";
  for (std::size_t i = 0; i < chain_formulas.size(); ++i) {
    if (i > 0) os << ", ";
    os << chain_formulas[i];
  }
  os << ')';
  return os.str();
}

CostFormulas derive_cost_formulas(const CompiledProgram& program,
                                  const LoopNest& nest) {
  CostFormulas f;
  const IntVec& c = program.step.coeffs();
  for (std::size_t i = 0; i < nest.loops().size(); ++i) {
    const LoopSpec& loop = nest.loops()[i];
    AffineExpr extent = loop.upper - loop.lower;
    f.makespan += extent * Rational(abs_int(c[i]));
    f.is_extents.push_back(extent + AffineExpr(1));
  }
  for (std::size_t d = 0; d < program.ps.min.dim(); ++d) {
    f.ps_extents.push_back(program.ps.max[d] - program.ps.min[d] +
                           AffineExpr(1));
  }
  for (const Stream& s : nest.streams()) {
    if (s.access() != StreamAccess::Update) continue;
    f.chain_formulas.push_back(chain_formula_of(s, nest));
  }
  return f;
}

CostMetrics cost_metrics_of(const CompiledProgram& program,
                            const LoopNest& nest, const Env& sizes,
                            const NetworkPlan& plan) {
  CostMetrics m;
  m.processes = static_cast<Int>(plan.procs.size());
  m.comp = static_cast<Int>(plan.comp_count);
  m.io = static_cast<Int>(plan.io_count);
  m.buffer = static_cast<Int>(plan.buffer_count);
  m.channels = static_cast<Int>(plan.channels.size());

  const CostFormulas formulas = derive_cost_formulas(program, nest);
  m.makespan = formulas.makespan.evaluate(sizes).floor();
  m.total_work = nest.index_space_size(sizes);

  for (const NetworkPlan::RoleSpec& role : plan.roles) {
    m.soak_max = std::max(m.soak_max, role.soak);
    m.drain_max = std::max(m.drain_max, role.drain);
  }

  Int comp_work = 0;
  for (const NetworkPlan::ProcSpec& p : plan.procs) {
    if (p.kind != NetworkPlan::ProcKind::Comp) continue;
    m.max_proc_work = std::max(m.max_proc_work, p.count);
    comp_work += p.count;
  }
  if (m.comp > 0 && comp_work > 0) {
    m.imbalance = Rational(m.max_proc_work * m.comp, comp_work);
    m.overhead = Rational(m.io + m.buffer, m.comp);
  }

  m.longest_chain = 1;
  for (const Stream& s : nest.streams()) {
    if (s.access() != StreamAccess::Update) continue;
    m.longest_chain = std::max(m.longest_chain, chain_length_at(s, nest, sizes));
  }

  const std::unique_ptr<BytecodeProgram> bytecode = lower_plan(plan);
  m.bytecode_instructions = static_cast<Int>(bytecode->instruction_count());
  m.bytecode_bytes = static_cast<Int>(bytecode->memory_bytes());
  return m;
}

CostMetrics analyze_cost_at(const CompiledProgram& program,
                            const LoopNest& nest, const Env& sizes,
                            const PlanShape& shape, PlanCache* cache) {
  std::shared_ptr<const NetworkPlan> plan;
  if (cache != nullptr) {
    plan = cache->lookup_or_build(program, nest, sizes, shape);
  } else {
    plan = build_plan(program, nest, sizes, shape);
  }
  return cost_metrics_of(program, nest, sizes, *plan);
}

CostReport analyze_cost(const CompiledProgram& program, const LoopNest& nest,
                        const std::vector<Env>& size_envs,
                        const PlanShape& shape, PlanCache* cache) {
  CostReport report;
  report.design = program.name;
  report.formulas = derive_cost_formulas(program, nest);
  for (const Env& env : size_envs) {
    CostReport::AtSize row;
    for (const auto& [name, value] : env) row.sizes[name] = value.floor();
    row.metrics = analyze_cost_at(program, nest, env, shape, cache);
    report.at.push_back(std::move(row));
  }
  return report;
}

std::string CostReport::to_string() const {
  std::ostringstream os;
  os << "cost " << design << ":\n"
     << "  makespan      = " << formulas.makespan.to_string()
     << "   (last step - first)\n"
     << "  ps box        = " << formulas.ps_box_to_string() << "\n"
     << "  total work    = " << formulas.work_to_string() << "\n"
     << "  longest chain = " << formulas.chain_to_string() << "\n";
  for (const AtSize& row : at) {
    os << "  at";
    for (const auto& [name, value] : row.sizes) {
      os << ' ' << name << '=' << value;
    }
    const CostMetrics& m = row.metrics;
    os << ": processes=" << m.processes << " (comp=" << m.comp
       << " io=" << m.io << " buffer=" << m.buffer << ")"
       << " channels=" << m.channels << "\n    makespan=" << m.makespan
       << " soak<=" << m.soak_max << " drain<=" << m.drain_max
       << " chain=" << m.longest_chain << " work=" << m.total_work
       << " max/proc=" << m.max_proc_work
       << " imbalance=" << m.imbalance.to_string()
       << " overhead=" << m.overhead.to_string()
       << "\n    bytecode: insns=" << m.bytecode_instructions
       << " bytes=" << m.bytecode_bytes << "\n";
  }
  return os.str();
}

std::string CostReport::to_json() const {
  std::ostringstream os;
  os << "{\"design\":\"" << json_escape(design) << "\",\"formulas\":{"
     << "\"makespan\":\"" << json_escape(formulas.makespan.to_string())
     << "\",\"ps_box\":\"" << json_escape(formulas.ps_box_to_string())
     << "\",\"work\":\"" << json_escape(formulas.work_to_string())
     << "\",\"chain\":\"" << json_escape(formulas.chain_to_string())
     << "\"},\"at\":[";
  for (std::size_t i = 0; i < at.size(); ++i) {
    if (i > 0) os << ',';
    const AtSize& row = at[i];
    os << "{\"sizes\":{";
    bool first = true;
    for (const auto& [name, value] : row.sizes) {
      if (!first) os << ',';
      first = false;
      os << '"' << json_escape(name) << "\":" << value;
    }
    const CostMetrics& m = row.metrics;
    os << "},\"processes\":" << m.processes << ",\"comp\":" << m.comp
       << ",\"io\":" << m.io << ",\"buffer\":" << m.buffer
       << ",\"channels\":" << m.channels << ",\"makespan\":" << m.makespan
       << ",\"soak_max\":" << m.soak_max << ",\"drain_max\":" << m.drain_max
       << ",\"longest_chain\":" << m.longest_chain
       << ",\"total_work\":" << m.total_work
       << ",\"max_proc_work\":" << m.max_proc_work << ",\"imbalance\":\""
       << m.imbalance.to_string() << "\",\"overhead\":\""
       << m.overhead.to_string()
       << "\",\"bytecode_instructions\":" << m.bytecode_instructions
       << ",\"bytecode_bytes\":" << m.bytecode_bytes << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace systolize
