// Findings of the static plan verifier (src/analysis): machine-readable
// diagnostics with a stable rule id and a severity, rendered in the same
// compact JSON style as the runtime's deadlock forensics so tooling can
// consume both uniformly. docs/static-analysis.md catalogues every rule.
#pragma once

#include <string>
#include <vector>

namespace systolize {

enum class Severity {
  Info,     ///< benign observation (e.g. a provably value-equal overlap)
  Warning,  ///< suspicious but not unsound (e.g. a dead guard clause)
  Error,    ///< the compiled network is provably wrong or may hang
};

/// Stable name of a severity, for rendering and CI filters.
[[nodiscard]] constexpr const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "unknown";
}

/// One diagnostic of the static verifier.
struct Finding {
  std::string rule;      ///< stable id, e.g. "guard.overlap"
  Severity severity = Severity::Error;
  std::string subject;   ///< what it is about (stream, channel, "network")
  std::string message;   ///< human-readable, single sentence or short block
  /// Optional machine-readable payload (JSON). A statically detected
  /// communication cycle carries a DeadlockReport::to_json() here —
  /// byte-compatible with the runtime forensics schema.
  std::string detail;
};

/// The verifier's result for one design: every finding, in rule-check
/// order, plus severity tallies.
struct VerifyReport {
  std::string design;
  std::vector<Finding> findings;

  void add(std::string rule, Severity severity, std::string subject,
           std::string message, std::string detail = "");

  [[nodiscard]] std::size_t errors() const noexcept;
  [[nodiscard]] std::size_t warnings() const noexcept;
  [[nodiscard]] std::size_t infos() const noexcept;
  /// No errors and no warnings (info findings do not spoil cleanliness).
  [[nodiscard]] bool clean() const noexcept;

  /// Downgrade every finding matching `rule` (exact id, or a bare
  /// category like "guard" matching "guard.*") to Severity::Info — the
  /// suppression mechanism behind `systolize verify --allow=...`.
  void allow(const std::string& rule);

  /// Human-readable multi-line rendering.
  [[nodiscard]] std::string to_string() const;
  /// Compact JSON, matching the runtime diagnostic style.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace systolize
