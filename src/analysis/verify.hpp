// Static plan verifier: prove or refute the correctness conditions of a
// compiled systolic network without executing a single scheduler round.
//
// The compilation scheme is only sound when (step, place) is injective on
// the index space (Eq. (1), Theorem 3), flows are consistent and
// neighbour-restricted (Sect. 3.2, Theorem 10), and the generated
// repeater/soak/drain guards cover exactly the intended lattice points
// (Sects. 6-7). The runtime's PR-1 forensics only discover violations
// dynamically, mid-run; this pass discharges them at compile time:
//
//   * SPEC level   — verify_spec: symbolic checks on (source, array)
//     directly, so broken specs are diagnosed even when compile() would
//     refuse them (rank/injectivity/dependence/flow rules).
//   * PROGRAM level — verify_program: the same schedule checks off the
//     compiled program, plus flow-record consistency and the guard
//     feasibility/disjointness analysis (Fourier-Motzkin under the
//     program's standing assumptions; exact on integer points).
//   * PLAN level   — verify_plan: channel discipline (single writer and
//     reader, send/recv count balance off the first/last-derived counts)
//     and static deadlock freedom of the interned NetworkPlan, by
//     topologically retiring its step-ordered communication graph. A
//     detected cycle is reported in the exact wait-for schema of the
//     runtime forensics (DeadlockReport), so diagnostics look identical
//     whether found statically or dynamically.
//
// Every diagnostic carries a stable rule id (docs/static-analysis.md).
#pragma once

#include "analysis/findings.hpp"
#include "runtime/plan_cache.hpp"
#include "scheme/types.hpp"
#include "systolic/array_spec.hpp"

namespace systolize {

/// Symbolic checks on a raw (source program, array spec) pair. Never
/// throws on the violations it checks for — they become findings.
[[nodiscard]] VerifyReport verify_spec(const LoopNest& nest,
                                       const ArraySpec& spec);
void verify_spec_into(VerifyReport& report, const LoopNest& nest,
                      const ArraySpec& spec);

/// Symbolic checks on a compiled program: schedule validity, recorded
/// flow consistency, guard feasibility and pairwise disjointness.
[[nodiscard]] VerifyReport verify_program(const CompiledProgram& program,
                                          const LoopNest& nest);
void verify_program_into(VerifyReport& report, const CompiledProgram& program,
                         const LoopNest& nest);

/// Structural checks on an interned NetworkPlan: per-channel single
/// writer/reader discipline, send/recv count balance, and static
/// deadlock freedom of the communication structure.
[[nodiscard]] VerifyReport verify_plan(const NetworkPlan& plan);
void verify_plan_into(VerifyReport& report, const NetworkPlan& plan);

/// Concrete-size check that every stationary stream's declared element
/// box is exactly the index-map image of the iteration domain. The
/// loading & recovery pipelines enumerate the box while the cells hold
/// the image, so any mismatch deposits elements into the wrong cells
/// (rule flow.loading-cover; found by differential fuzzing). Moving
/// streams derive element identities per chord and are immune.
void verify_loading_cover_into(VerifyReport& report,
                               const CompiledProgram& program,
                               const LoopNest& nest, const Env& sizes);

/// The full pipeline on a compiled design: program-level checks, then —
/// when those leave no errors — intern the plan at `sizes` and run the
/// plan-level checks. No scheduler is ever constructed.
[[nodiscard]] VerifyReport verify_design(const CompiledProgram& program,
                                         const LoopNest& nest,
                                         const Env& sizes,
                                         const PlanShape& shape = {});

}  // namespace systolize
