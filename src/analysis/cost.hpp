// Static cost model: score a compiled systolic design without running a
// single scheduler round.
//
// The paper derives the distributed program but never *evaluates* it; the
// design-space search (systolic/enumerate.hpp, `systolize explore`) needs
// a scoring pass that is as static as the PR-3 verifier. Two layers:
//
//   * closed forms — quantities that are affine (or products of affines)
//     in the problem-size symbols, derived once per program straight from
//     the compiled derivation: the makespan of the computation (the step
//     function's spread over the index-space box), the process-space box
//     volume, the index-space volume (total work), and the longest
//     dependence chain (the update streams' element multiplicity along
//     their index-map null directions);
//   * concrete counts — quantities that depend on which box points are
//     actually occupied (processes, channels, i/o and buffer overhead,
//     soak/drain prologues, per-process work imbalance), read off the
//     interned NetworkPlan at each requested size. Interning a plan is
//     pure symbolic evaluation + integer expansion — still zero scheduler
//     rounds.
//
// The combination is a CostReport: formulas plus one metrics row per size
// binding, rendered as text or compact JSON (the service's `analyze` op
// returns the JSON form).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "runtime/plan_cache.hpp"
#include "scheme/types.hpp"

namespace systolize {

/// Closed-form quantities, symbolic in the problem-size symbols.
struct CostFormulas {
  /// Last computation step minus first: sum_i |step.c_i| * (rb_i - lb_i).
  /// Affine because the loop bounds are affine in the sizes (Sect. 3.1).
  AffineExpr makespan;
  /// Per-dimension extents of the PS box (Sect. 6.1); their product bounds
  /// the computation-process count (exact when every box point is hit, as
  /// in the simple-place designs).
  std::vector<AffineExpr> ps_extents;
  /// Per-loop extents of the index space; their product is |IS| — the
  /// total statement count (total work).
  std::vector<AffineExpr> is_extents;
  /// Longest dependence chain, one rendered formula per Update stream
  /// (e.g. "n + 1", or "min(n, 2*n) + 1" when the chain direction has
  /// several non-zero components). Empty when there is no Update stream.
  std::vector<std::string> chain_formulas;

  [[nodiscard]] std::string ps_box_to_string() const;
  [[nodiscard]] std::string work_to_string() const;
  [[nodiscard]] std::string chain_to_string() const;
};

/// Concrete metrics at one size binding. Everything here is derived from
/// the NetworkPlan and the closed forms — no execution.
struct CostMetrics {
  Int processes = 0;     ///< all plan processes
  Int comp = 0;          ///< computation processes
  Int io = 0;            ///< input/output pipeline processes
  Int buffer = 0;        ///< internal-buffer (pass) processes
  Int channels = 0;
  Int makespan = 0;      ///< last computation step - first
  Int soak_max = 0;      ///< longest soak prologue over all (proc, stream)
  Int drain_max = 0;     ///< longest drain epilogue
  Int longest_chain = 0; ///< max statements chained through one element
  Int total_work = 0;    ///< |IS|
  Int max_proc_work = 0; ///< busiest computation process (repeater count)
  /// max_proc_work / (total_work / comp): 1 = perfectly balanced.
  Rational imbalance = Rational(1);
  /// (io + buffer) / comp: processes spent moving data per process
  /// spent computing.
  Rational overhead;
  /// Lowered bytecode footprint (runtime/bytecode.hpp): flat instruction
  /// count and resident bytes of the program the native backend executes
  /// for this plan. Static like everything else here — lowering is a
  /// linear walk of the plan, no scheduler rounds.
  Int bytecode_instructions = 0;
  Int bytecode_bytes = 0;
};

/// The analyzer's result for one design: formulas + one row per size.
struct CostReport {
  std::string design;
  CostFormulas formulas;

  struct AtSize {
    std::map<std::string, Int> sizes;  ///< e.g. {"n": 4}
    CostMetrics metrics;
  };
  std::vector<AtSize> at;

  /// Human-readable multi-line rendering.
  [[nodiscard]] std::string to_string() const;
  /// Compact JSON, same style as the verifier findings.
  [[nodiscard]] std::string to_json() const;
};

/// Derive the closed forms from the compiled program alone.
[[nodiscard]] CostFormulas derive_cost_formulas(const CompiledProgram& program,
                                                const LoopNest& nest);

/// Concrete metrics off an already-interned plan (the enumerator verifies
/// and scores each candidate from one plan build).
[[nodiscard]] CostMetrics cost_metrics_of(const CompiledProgram& program,
                                          const LoopNest& nest,
                                          const Env& sizes,
                                          const NetworkPlan& plan);

/// Concrete metrics at one size, interning the plan through `cache` when
/// one is given (the service path) or building it directly otherwise.
[[nodiscard]] CostMetrics analyze_cost_at(const CompiledProgram& program,
                                          const LoopNest& nest,
                                          const Env& sizes,
                                          const PlanShape& shape = {},
                                          PlanCache* cache = nullptr);

/// The full report: formulas plus one metrics row per size binding.
[[nodiscard]] CostReport analyze_cost(const CompiledProgram& program,
                                      const LoopNest& nest,
                                      const std::vector<Env>& size_envs,
                                      const PlanShape& shape = {},
                                      PlanCache* cache = nullptr);

}  // namespace systolize
