// Rational vectors in Q^n (stream flows are rational, Sect. 3.2).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "numeric/int_vec.hpp"
#include "numeric/rational.hpp"

namespace systolize {

class RatVec {
 public:
  RatVec() = default;
  explicit RatVec(std::size_t dim) : comps_(dim) {}
  RatVec(std::initializer_list<Rational> comps) : comps_(comps) {}
  explicit RatVec(std::vector<Rational> comps) : comps_(std::move(comps)) {}
  explicit RatVec(const IntVec& v);

  [[nodiscard]] std::size_t dim() const noexcept { return comps_.size(); }
  [[nodiscard]] const Rational& operator[](std::size_t i) const {
    return comps_.at(i);
  }
  Rational& operator[](std::size_t i) { return comps_.at(i); }

  [[nodiscard]] bool is_zero() const noexcept;

  RatVec operator-() const;
  RatVec& operator+=(const RatVec& o);
  RatVec& operator-=(const RatVec& o);
  RatVec& operator*=(const Rational& k);

  friend RatVec operator+(RatVec a, const RatVec& b) { return a += b; }
  friend RatVec operator-(RatVec a, const RatVec& b) { return a -= b; }
  friend RatVec operator*(RatVec a, const Rational& k) { return a *= k; }
  friend RatVec operator*(const Rational& k, RatVec a) { return a *= k; }
  friend bool operator==(const RatVec&, const RatVec&) = default;

  /// lcm of the component denominators (1 for an integer vector). For a
  /// flow f this is the n such that n*f is the smallest integer multiple —
  /// the buffer depth denominator of Sect. 7.6.
  [[nodiscard]] Int denominator_lcm() const;

  /// Smallest positive integer multiple that is an integer vector.
  [[nodiscard]] IntVec scaled_to_integer() const;

  /// True when every component is an integer.
  [[nodiscard]] bool is_integral() const noexcept;

  /// Convert; throws unless is_integral().
  [[nodiscard]] IntVec to_int_vec() const;

  [[nodiscard]] std::string to_string() const;

 private:
  void require_same_dim(const RatVec& o) const;

  std::vector<Rational> comps_;
};

std::ostream& operator<<(std::ostream& os, const RatVec& v);

}  // namespace systolize
