#include "numeric/rat_vec.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace systolize {

RatVec::RatVec(const IntVec& v) {
  comps_.reserve(v.dim());
  for (std::size_t i = 0; i < v.dim(); ++i) comps_.emplace_back(v[i]);
}

void RatVec::require_same_dim(const RatVec& o) const {
  if (dim() != o.dim()) {
    raise(ErrorKind::Dimension, "RatVec dimension mismatch: " +
                                    std::to_string(dim()) + " vs " +
                                    std::to_string(o.dim()));
  }
}

bool RatVec::is_zero() const noexcept {
  return std::all_of(comps_.begin(), comps_.end(),
                     [](const Rational& c) { return c.is_zero(); });
}

RatVec RatVec::operator-() const {
  RatVec r = *this;
  for (Rational& c : r.comps_) c = -c;
  return r;
}

RatVec& RatVec::operator+=(const RatVec& o) {
  require_same_dim(o);
  for (std::size_t i = 0; i < comps_.size(); ++i) comps_[i] += o.comps_[i];
  return *this;
}

RatVec& RatVec::operator-=(const RatVec& o) {
  require_same_dim(o);
  for (std::size_t i = 0; i < comps_.size(); ++i) comps_[i] -= o.comps_[i];
  return *this;
}

RatVec& RatVec::operator*=(const Rational& k) {
  for (Rational& c : comps_) c *= k;
  return *this;
}

Int RatVec::denominator_lcm() const {
  Int l = 1;
  for (const Rational& c : comps_) l = lcm(l, c.den());
  return l;
}

IntVec RatVec::scaled_to_integer() const {
  Int l = denominator_lcm();
  IntVec r(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    r[i] = (comps_[i] * Rational(l)).to_integer();
  }
  return r;
}

bool RatVec::is_integral() const noexcept {
  return std::all_of(comps_.begin(), comps_.end(),
                     [](const Rational& c) { return c.is_integer(); });
}

IntVec RatVec::to_int_vec() const {
  IntVec r(dim());
  for (std::size_t i = 0; i < dim(); ++i) r[i] = comps_[i].to_integer();
  return r;
}

std::string RatVec::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    if (i > 0) os << ',';
    os << comps_[i].to_string();
  }
  os << ')';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const RatVec& v) {
  return os << v.to_string();
}

}  // namespace systolize
