#include "numeric/int_vec.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace systolize {

void IntVec::require_same_dim(const IntVec& o) const {
  if (dim() != o.dim()) {
    raise(ErrorKind::Dimension, "IntVec dimension mismatch: " +
                                    std::to_string(dim()) + " vs " +
                                    std::to_string(o.dim()));
  }
}

bool IntVec::is_zero() const noexcept {
  return std::all_of(comps_.begin(), comps_.end(),
                     [](Int c) { return c == 0; });
}

IntVec IntVec::operator-() const {
  IntVec r = *this;
  for (Int& c : r.comps_) c = checked_neg(c);
  return r;
}

IntVec& IntVec::operator+=(const IntVec& o) {
  require_same_dim(o);
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    comps_[i] = checked_add(comps_[i], o.comps_[i]);
  }
  return *this;
}

IntVec& IntVec::operator-=(const IntVec& o) {
  require_same_dim(o);
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    comps_[i] = checked_sub(comps_[i], o.comps_[i]);
  }
  return *this;
}

IntVec& IntVec::operator*=(Int k) {
  for (Int& c : comps_) c = checked_mul(c, k);
  return *this;
}

Int IntVec::dot(const IntVec& o) const {
  require_same_dim(o);
  Int acc = 0;
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    acc = checked_add(acc, checked_mul(comps_[i], o.comps_[i]));
  }
  return acc;
}

Int IntVec::content() const {
  Int g = 0;
  for (Int c : comps_) g = checked_gcd(g, c);
  return g;
}

IntVec IntVec::normalized() const {
  Int g = content();
  if (g <= 1) return *this;
  return exact_div_by(g);
}

IntVec IntVec::exact_div_by(Int k) const {
  IntVec r = *this;
  for (Int& c : r.comps_) c = exact_div(c, k);
  return r;
}

Int IntVec::quotient_along(const IntVec& y) const {
  require_same_dim(y);
  if (y.is_zero()) {
    if (is_zero()) return 0;
    raise(ErrorKind::NotRepresentable, "x // 0 with x nonzero");
  }
  // Find the first nonzero component of y to propose the quotient, then
  // verify it on every component.
  std::size_t pivot = 0;
  while (y.comps_[pivot] == 0) ++pivot;
  Int m = exact_div(comps_[pivot], y.comps_[pivot]);
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    if (comps_[i] != checked_mul(m, y.comps_[i])) {
      raise(ErrorKind::NotRepresentable,
            to_string() + " is not a multiple of " + y.to_string());
    }
  }
  return m;
}

bool IntVec::is_neighbour_offset() const noexcept {
  return std::all_of(comps_.begin(), comps_.end(),
                     [](Int c) { return c >= -1 && c <= 1; });
}

std::string IntVec::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    if (i > 0) os << ',';
    os << comps_[i];
  }
  os << ')';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntVec& v) {
  return os << v.to_string();
}

}  // namespace systolize
