// Checked 64-bit integer arithmetic.
//
// Every scheme computation is exact; silent wraparound would corrupt a
// derivation, so all arithmetic on scheme integers goes through these
// helpers, which throw Error(ErrorKind::Overflow) on overflow.
#pragma once

#include <cstdint>

#include "support/error.hpp"

namespace systolize {

using Int = std::int64_t;

inline Int checked_add(Int a, Int b) {
  Int r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    raise(ErrorKind::Overflow, "integer addition overflow");
  }
  return r;
}

inline Int checked_sub(Int a, Int b) {
  Int r = 0;
  if (__builtin_sub_overflow(a, b, &r)) {
    raise(ErrorKind::Overflow, "integer subtraction overflow");
  }
  return r;
}

inline Int checked_mul(Int a, Int b) {
  Int r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    raise(ErrorKind::Overflow, "integer multiplication overflow");
  }
  return r;
}

inline Int checked_neg(Int a) { return checked_sub(0, a); }

/// sign function per the paper's Sect. 2: -1, 0, or +1.
inline Int sgn(Int a) noexcept { return a > 0 ? 1 : (a < 0 ? -1 : 0); }

/// Non-negative gcd of the magnitudes; gcd(0,0) == 0. Computed in
/// unsigned arithmetic so |INT64_MIN| is representable mid-computation;
/// throws Error(Overflow) only when the *result* itself is 2^63 (both
/// arguments in {0, INT64_MIN}), which no Int can carry.
inline Int checked_gcd(Int a, Int b) {
  auto mag = [](Int v) -> std::uint64_t {
    return v < 0 ? 0 - static_cast<std::uint64_t>(v)
                 : static_cast<std::uint64_t>(v);
  };
  std::uint64_t x = mag(a);
  std::uint64_t y = mag(b);
  while (y != 0) {
    std::uint64_t t = x % y;
    x = y;
    y = t;
  }
  if (x > static_cast<std::uint64_t>(INT64_MAX)) {
    raise(ErrorKind::Overflow, "gcd magnitude 2^63 is not representable");
  }
  return static_cast<Int>(x);
}

/// Non-negative gcd; gcd(0,0) == 0. Alias of checked_gcd: the historic
/// unchecked version negated INT64_MIN (undefined behaviour) on its way
/// to a gcd-normalization in increment derivation.
inline Int gcd(Int a, Int b) { return checked_gcd(a, b); }

inline Int lcm(Int a, Int b) {
  if (a == 0 || b == 0) return 0;
  return checked_mul(a / gcd(a, b), b < 0 ? -b : b);
}

/// Exact division: throws unless b divides a.
inline Int exact_div(Int a, Int b) {
  if (b == 0) raise(ErrorKind::DivideByZero, "exact_div by zero");
  if (a % b != 0) {
    raise(ErrorKind::NotRepresentable, "exact_div: not divisible");
  }
  return a / b;
}

}  // namespace systolize
