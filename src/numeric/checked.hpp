// Checked 64-bit integer arithmetic.
//
// Every scheme computation is exact; silent wraparound would corrupt a
// derivation, so all arithmetic on scheme integers goes through these
// helpers, which throw Error(ErrorKind::Overflow) on overflow.
#pragma once

#include <cstdint>

#include "support/error.hpp"

namespace systolize {

using Int = std::int64_t;

inline Int checked_add(Int a, Int b) {
  Int r = 0;
  if (__builtin_add_overflow(a, b, &r)) {
    raise(ErrorKind::Overflow, "integer addition overflow");
  }
  return r;
}

inline Int checked_sub(Int a, Int b) {
  Int r = 0;
  if (__builtin_sub_overflow(a, b, &r)) {
    raise(ErrorKind::Overflow, "integer subtraction overflow");
  }
  return r;
}

inline Int checked_mul(Int a, Int b) {
  Int r = 0;
  if (__builtin_mul_overflow(a, b, &r)) {
    raise(ErrorKind::Overflow, "integer multiplication overflow");
  }
  return r;
}

inline Int checked_neg(Int a) { return checked_sub(0, a); }

/// sign function per the paper's Sect. 2: -1, 0, or +1.
inline Int sgn(Int a) noexcept { return a > 0 ? 1 : (a < 0 ? -1 : 0); }

/// Non-negative gcd; gcd(0,0) == 0.
inline Int gcd(Int a, Int b) noexcept {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    Int t = a % b;
    a = b;
    b = t;
  }
  return a;
}

inline Int lcm(Int a, Int b) {
  if (a == 0 || b == 0) return 0;
  return checked_mul(a / gcd(a, b), b < 0 ? -b : b);
}

/// Exact division: throws unless b divides a.
inline Int exact_div(Int a, Int b) {
  if (b == 0) raise(ErrorKind::DivideByZero, "exact_div by zero");
  if (a % b != 0) {
    raise(ErrorKind::NotRepresentable, "exact_div: not divisible");
  }
  return a / b;
}

}  // namespace systolize
