// Integer points / vectors in Z^n (the paper's "points", Sect. 2).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "numeric/checked.hpp"

namespace systolize {

/// A point in Z^n. Component i is v[i]; all arithmetic is checked.
class IntVec {
 public:
  IntVec() = default;
  explicit IntVec(std::size_t dim) : comps_(dim, 0) {}
  IntVec(std::initializer_list<Int> comps) : comps_(comps) {}
  explicit IntVec(std::vector<Int> comps) : comps_(std::move(comps)) {}

  [[nodiscard]] std::size_t dim() const noexcept { return comps_.size(); }
  [[nodiscard]] Int operator[](std::size_t i) const { return comps_.at(i); }
  Int& operator[](std::size_t i) { return comps_.at(i); }
  [[nodiscard]] const std::vector<Int>& comps() const noexcept {
    return comps_;
  }

  [[nodiscard]] bool is_zero() const noexcept;

  IntVec operator-() const;
  IntVec& operator+=(const IntVec& o);
  IntVec& operator-=(const IntVec& o);
  IntVec& operator*=(Int k);

  friend IntVec operator+(IntVec a, const IntVec& b) { return a += b; }
  friend IntVec operator-(IntVec a, const IntVec& b) { return a -= b; }
  friend IntVec operator*(IntVec a, Int k) { return a *= k; }
  friend IntVec operator*(Int k, IntVec a) { return a *= k; }
  friend bool operator==(const IntVec&, const IntVec&) = default;

  /// Inner product x . y (paper Sect. 2).
  [[nodiscard]] Int dot(const IntVec& o) const;

  /// gcd of the absolute component values; 0 for the zero vector. Throws
  /// Error(Overflow) when the gcd magnitude is 2^63 (not representable).
  [[nodiscard]] Int content() const;

  /// this / k component-wise; throws unless k divides every component.
  [[nodiscard]] IntVec exact_div_by(Int k) const;

  /// The gcd-normalized (primitive) vector along this one: this / content,
  /// orientation preserved; the zero vector normalizes to itself. All
  /// arithmetic is overflow-checked — the smallest-generator derivations
  /// (null.place in increment derivation, flow decomposition) funnel
  /// through here, so near-INT64_MAX coefficients fail loudly instead of
  /// wrapping.
  [[nodiscard]] IntVec normalized() const;

  /// The paper's x // y: the integer m with m*y == x; throws
  /// NotRepresentable when x is not an integer multiple of y.
  [[nodiscard]] Int quotient_along(const IntVec& y) const;

  /// Neighbour predicate nb.x (Sect. 3.2): every |component| <= 1.
  [[nodiscard]] bool is_neighbour_offset() const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  void require_same_dim(const IntVec& o) const;

  std::vector<Int> comps_;
};

std::ostream& operator<<(std::ostream& os, const IntVec& v);

/// Lexicographic order, for use as map keys.
struct IntVecLess {
  bool operator()(const IntVec& a, const IntVec& b) const noexcept {
    return a.comps() < b.comps();
  }
};

}  // namespace systolize
