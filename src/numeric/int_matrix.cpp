#include "numeric/int_matrix.hpp"

#include <ostream>
#include <sstream>

#include "numeric/rat_matrix.hpp"

namespace systolize {

IntMatrix::IntMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

IntMatrix::IntMatrix(std::initializer_list<std::initializer_list<Int>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      raise(ErrorKind::Dimension, "ragged IntMatrix initializer");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Int IntMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    raise(ErrorKind::Dimension, "IntMatrix index out of range");
  }
  return data_[r * cols_ + c];
}

Int& IntMatrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    raise(ErrorKind::Dimension, "IntMatrix index out of range");
  }
  return data_[r * cols_ + c];
}

IntVec IntMatrix::row(std::size_t r) const {
  IntVec v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = at(r, c);
  return v;
}

IntVec IntMatrix::col(std::size_t c) const {
  IntVec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = at(r, c);
  return v;
}

IntVec IntMatrix::apply(const IntVec& x) const {
  if (x.dim() != cols_) {
    raise(ErrorKind::Dimension, "IntMatrix apply dimension mismatch");
  }
  IntVec y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Int acc = 0;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc = checked_add(acc, checked_mul(at(r, c), x[c]));
    }
    y[r] = acc;
  }
  return y;
}

RatVec IntMatrix::apply(const RatVec& x) const {
  if (x.dim() != cols_) {
    raise(ErrorKind::Dimension, "IntMatrix apply dimension mismatch");
  }
  RatVec y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Rational acc;
    for (std::size_t c = 0; c < cols_; ++c) acc += Rational(at(r, c)) * x[c];
    y[r] = acc;
  }
  return y;
}

IntMatrix IntMatrix::without_col(std::size_t drop) const {
  if (drop >= cols_) raise(ErrorKind::Dimension, "without_col out of range");
  IntMatrix m(rows_, cols_ - 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::size_t cc = 0;
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c == drop) continue;
      m.at(r, cc++) = at(r, c);
    }
  }
  return m;
}

RatMatrix IntMatrix::to_rational() const {
  RatMatrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) m.at(r, c) = Rational(at(r, c));
  }
  return m;
}

std::size_t IntMatrix::rank() const { return to_rational().rank(); }

std::vector<IntVec> IntMatrix::null_space_basis() const {
  std::vector<IntVec> basis;
  for (const RatVec& v : to_rational().null_space_basis()) {
    IntVec iv = v.scaled_to_integer().normalized();
    // Normalize orientation: first nonzero component positive.
    for (std::size_t i = 0; i < iv.dim(); ++i) {
      if (iv[i] != 0) {
        if (iv[i] < 0) iv = -iv;
        break;
      }
    }
    basis.push_back(std::move(iv));
  }
  return basis;
}

std::string IntMatrix::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r > 0) os << "; ";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ' ';
      os << at(r, c);
    }
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntMatrix& m) {
  return os << m.to_string();
}

}  // namespace systolize
