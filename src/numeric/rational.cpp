#include "numeric/rational.hpp"

#include <ostream>

namespace systolize {

Rational::Rational(Int num, Int den) : num_(num), den_(den) { normalize(); }

void Rational::normalize() {
  if (den_ == 0) raise(ErrorKind::DivideByZero, "rational with denominator 0");
  if (den_ < 0) {
    num_ = checked_neg(num_);
    den_ = checked_neg(den_);
  }
  Int g = gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

Int Rational::to_integer() const {
  if (den_ != 1) {
    raise(ErrorKind::NotRepresentable,
          "rational " + to_string() + " is not an integer");
  }
  return num_;
}

Rational Rational::reciprocal() const {
  if (num_ == 0) raise(ErrorKind::DivideByZero, "reciprocal of zero");
  return Rational(den_, num_);
}

Int Rational::floor() const noexcept {
  Int q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) --q;
  return q;
}

Int Rational::ceil() const noexcept {
  Int q = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) ++q;
  return q;
}

Rational Rational::operator-() const {
  Rational r = *this;
  r.num_ = checked_neg(r.num_);
  return r;
}

Rational& Rational::operator+=(const Rational& o) {
  // a/b + c/d = (a*(l/b) + c*(l/d)) / l with l = lcm(b, d), keeping
  // intermediates small.
  Int l = lcm(den_, o.den_);
  Int n = checked_add(checked_mul(num_, l / den_),
                      checked_mul(o.num_, l / o.den_));
  num_ = n;
  den_ = l;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& o) { return *this += -o; }

Rational& Rational::operator*=(const Rational& o) {
  // Cross-reduce before multiplying to avoid needless overflow.
  Int g1 = gcd(num_, o.den_);
  Int g2 = gcd(o.num_, den_);
  num_ = checked_mul(num_ / g1, o.num_ / g2);
  den_ = checked_mul(den_ / g2, o.den_ / g1);
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& o) {
  return *this *= o.reciprocal();
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // a/b <=> c/d  ==  a*d <=> c*b (denominators positive).
  Int lhs = checked_mul(a.num_, b.den_);
  Int rhs = checked_mul(b.num_, a.den_);
  return lhs <=> rhs;
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace systolize
