// Exact rational matrices: rank, null space, inverse, linear solving.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "numeric/rat_vec.hpp"

namespace systolize {

class RatMatrix {
 public:
  RatMatrix() = default;
  RatMatrix(std::size_t rows, std::size_t cols);
  RatMatrix(std::initializer_list<std::initializer_list<Rational>> rows);

  [[nodiscard]] static RatMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] const Rational& at(std::size_t r, std::size_t c) const;
  Rational& at(std::size_t r, std::size_t c);

  [[nodiscard]] RatVec row(std::size_t r) const;
  [[nodiscard]] RatVec col(std::size_t c) const;

  [[nodiscard]] RatVec apply(const RatVec& x) const;
  [[nodiscard]] RatMatrix multiply(const RatMatrix& o) const;

  [[nodiscard]] std::size_t rank() const;

  /// Basis of the null space over Q.
  [[nodiscard]] std::vector<RatVec> null_space_basis() const;

  /// Inverse of a square matrix; throws Singular if not invertible.
  [[nodiscard]] RatMatrix inverse() const;

  /// Solve M x = b for a square nonsingular M; throws Singular otherwise.
  [[nodiscard]] RatVec solve(const RatVec& b) const;

  /// Unique solution of a (possibly non-square) consistent system, or
  /// nullopt when the system is inconsistent or underdetermined.
  [[nodiscard]] std::optional<RatVec> solve_unique(const RatVec& b) const;

  friend bool operator==(const RatMatrix&, const RatMatrix&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  /// Gauss-Jordan on a copy; returns (rref, pivot column per pivot row).
  [[nodiscard]] std::pair<RatMatrix, std::vector<std::size_t>> rref() const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Rational> data_;  // row-major
};

std::ostream& operator<<(std::ostream& os, const RatMatrix& m);

}  // namespace systolize
