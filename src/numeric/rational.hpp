// Exact rational numbers over checked 64-bit integers.
//
// Invariant: denominator > 0 and gcd(|num|, den) == 1; zero is 0/1.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

#include "numeric/checked.hpp"

namespace systolize {

class Rational {
 public:
  constexpr Rational() noexcept : num_(0), den_(1) {}
  Rational(Int value) noexcept : num_(value), den_(1) {}  // NOLINT(google-explicit-constructor): scalars promote freely in scheme math
  Rational(Int num, Int den);

  [[nodiscard]] Int num() const noexcept { return num_; }
  [[nodiscard]] Int den() const noexcept { return den_; }

  [[nodiscard]] bool is_zero() const noexcept { return num_ == 0; }
  [[nodiscard]] bool is_integer() const noexcept { return den_ == 1; }
  /// The integer value; throws NotRepresentable unless is_integer().
  [[nodiscard]] Int to_integer() const;
  [[nodiscard]] Int sign() const noexcept { return sgn(num_); }
  [[nodiscard]] Rational abs() const { return num_ < 0 ? -*this : *this; }
  [[nodiscard]] Rational reciprocal() const;

  /// Largest integer <= value / smallest integer >= value.
  [[nodiscard]] Int floor() const noexcept;
  [[nodiscard]] Int ceil() const noexcept;

  Rational operator-() const;
  Rational& operator+=(const Rational& o);
  Rational& operator-=(const Rational& o);
  Rational& operator*=(const Rational& o);
  Rational& operator/=(const Rational& o);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b);

  [[nodiscard]] std::string to_string() const;

 private:
  void normalize();

  Int num_;
  Int den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace systolize
