// Integer matrices — the representation of the paper's linear functions
// (index maps, step, place). A linear function f is identified with its
// matrix: f.x = M * x.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "numeric/int_vec.hpp"
#include "numeric/rat_vec.hpp"

namespace systolize {

class RatMatrix;

class IntMatrix {
 public:
  IntMatrix() = default;
  IntMatrix(std::size_t rows, std::size_t cols);
  /// Row-major construction: {{...row0...}, {...row1...}}.
  IntMatrix(std::initializer_list<std::initializer_list<Int>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] Int at(std::size_t r, std::size_t c) const;
  Int& at(std::size_t r, std::size_t c);

  [[nodiscard]] IntVec row(std::size_t r) const;
  [[nodiscard]] IntVec col(std::size_t c) const;

  /// Matrix-vector application M * x (function application f.x).
  [[nodiscard]] IntVec apply(const IntVec& x) const;
  [[nodiscard]] RatVec apply(const RatVec& x) const;

  /// Drop column c (used when one loop index is fixed to a face bound).
  [[nodiscard]] IntMatrix without_col(std::size_t c) const;

  [[nodiscard]] RatMatrix to_rational() const;

  /// rank over Q.
  [[nodiscard]] std::size_t rank() const;

  /// A basis of null.M as integer vectors, each gcd-normalized with its
  /// first nonzero component positive.
  [[nodiscard]] std::vector<IntVec> null_space_basis() const;

  friend bool operator==(const IntMatrix&, const IntMatrix&) = default;

  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Int> data_;  // row-major
};

std::ostream& operator<<(std::ostream& os, const IntMatrix& m);

}  // namespace systolize
