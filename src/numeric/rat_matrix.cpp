#include "numeric/rat_matrix.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

namespace systolize {

RatMatrix::RatMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {}

RatMatrix::RatMatrix(std::initializer_list<std::initializer_list<Rational>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      raise(ErrorKind::Dimension, "ragged RatMatrix initializer");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

RatMatrix RatMatrix::identity(std::size_t n) {
  RatMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = Rational(1);
  return m;
}

const Rational& RatMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    raise(ErrorKind::Dimension, "RatMatrix index out of range");
  }
  return data_[r * cols_ + c];
}

Rational& RatMatrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    raise(ErrorKind::Dimension, "RatMatrix index out of range");
  }
  return data_[r * cols_ + c];
}

RatVec RatMatrix::row(std::size_t r) const {
  RatVec v(cols_);
  for (std::size_t c = 0; c < cols_; ++c) v[c] = at(r, c);
  return v;
}

RatVec RatMatrix::col(std::size_t c) const {
  RatVec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = at(r, c);
  return v;
}

RatVec RatMatrix::apply(const RatVec& x) const {
  if (x.dim() != cols_) {
    raise(ErrorKind::Dimension, "RatMatrix apply dimension mismatch");
  }
  RatVec y(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    Rational acc;
    for (std::size_t c = 0; c < cols_; ++c) acc += at(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

RatMatrix RatMatrix::multiply(const RatMatrix& o) const {
  if (cols_ != o.rows_) {
    raise(ErrorKind::Dimension, "RatMatrix multiply dimension mismatch");
  }
  RatMatrix m(rows_, o.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < o.cols_; ++c) {
      Rational acc;
      for (std::size_t k = 0; k < cols_; ++k) acc += at(r, k) * o.at(k, c);
      m.at(r, c) = acc;
    }
  }
  return m;
}

std::pair<RatMatrix, std::vector<std::size_t>> RatMatrix::rref() const {
  RatMatrix m = *this;
  std::vector<std::size_t> pivot_cols;
  std::size_t pr = 0;  // pivot row
  for (std::size_t pc = 0; pc < cols_ && pr < rows_; ++pc) {
    // Find a nonzero pivot in column pc at or below row pr.
    std::size_t sel = pr;
    while (sel < rows_ && m.at(sel, pc).is_zero()) ++sel;
    if (sel == rows_) continue;
    for (std::size_t c = 0; c < cols_; ++c) {
      std::swap(m.at(pr, c), m.at(sel, c));
    }
    Rational inv = m.at(pr, pc).reciprocal();
    for (std::size_t c = 0; c < cols_; ++c) m.at(pr, c) *= inv;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr || m.at(r, pc).is_zero()) continue;
      Rational f = m.at(r, pc);
      for (std::size_t c = 0; c < cols_; ++c) {
        m.at(r, c) -= f * m.at(pr, c);
      }
    }
    pivot_cols.push_back(pc);
    ++pr;
  }
  return {std::move(m), std::move(pivot_cols)};
}

std::size_t RatMatrix::rank() const { return rref().second.size(); }

std::vector<RatVec> RatMatrix::null_space_basis() const {
  auto [m, pivots] = rref();
  std::vector<bool> is_pivot(cols_, false);
  for (std::size_t pc : pivots) is_pivot[pc] = true;

  std::vector<RatVec> basis;
  for (std::size_t fc = 0; fc < cols_; ++fc) {
    if (is_pivot[fc]) continue;
    RatVec v(cols_);
    v[fc] = Rational(1);
    for (std::size_t pr = 0; pr < pivots.size(); ++pr) {
      v[pivots[pr]] = -m.at(pr, fc);
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

RatMatrix RatMatrix::inverse() const {
  if (rows_ != cols_) raise(ErrorKind::Dimension, "inverse of non-square");
  // Augment with identity and row-reduce.
  RatMatrix aug(rows_, 2 * cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) aug.at(r, c) = at(r, c);
    aug.at(r, cols_ + r) = Rational(1);
  }
  auto [m, pivots] = aug.rref();
  if (pivots.size() < rows_ ||
      !std::all_of(pivots.begin(), pivots.end(),
                   [this](std::size_t p) { return p < cols_; })) {
    raise(ErrorKind::Singular, "matrix is singular");
  }
  RatMatrix inv(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) inv.at(r, c) = m.at(r, cols_ + c);
  }
  return inv;
}

RatVec RatMatrix::solve(const RatVec& b) const {
  if (rows_ != cols_) raise(ErrorKind::Dimension, "solve on non-square");
  return inverse().apply(b);
}

std::optional<RatVec> RatMatrix::solve_unique(const RatVec& b) const {
  if (b.dim() != rows_) {
    raise(ErrorKind::Dimension, "solve_unique dimension mismatch");
  }
  RatMatrix aug(rows_, cols_ + 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) aug.at(r, c) = at(r, c);
    aug.at(r, cols_) = b[r];
  }
  auto [m, pivots] = aug.rref();
  // Inconsistent if a pivot lands in the augmented column.
  for (std::size_t p : pivots) {
    if (p == cols_) return std::nullopt;
  }
  // Unique only if every variable column has a pivot.
  if (pivots.size() != cols_) return std::nullopt;
  RatVec x(cols_);
  for (std::size_t pr = 0; pr < pivots.size(); ++pr) {
    x[pivots[pr]] = m.at(pr, cols_);
  }
  return x;
}

std::string RatMatrix::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r > 0) os << "; ";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ' ';
      os << at(r, c).to_string();
    }
  }
  os << ']';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const RatMatrix& m) {
  return os << m.to_string();
}

}  // namespace systolize
