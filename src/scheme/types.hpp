// Results of the compilation scheme (paper Sects. 6-7): every derived
// quantity is symbolic — affine in the problem-size symbols and the
// process-space coordinates — exactly as in the paper's derivations.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "loopnest/loop_nest.hpp"
#include "symbolic/piecewise.hpp"
#include "systolic/array_spec.hpp"

namespace systolize {

/// Process-unique id minted for every CompiledProgram built from scratch.
/// Copies keep their source's id (a copy is the same derivation), so the
/// id identifies program *content lineage* rather than storage: two
/// programs that happen to reuse one address and name never share an id.
/// PlanCache keys on this instead of the raw address.
[[nodiscard]] inline std::uint64_t next_program_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// PS_min / PS_max (Sect. 6.1): coord-free affine points spanning the
/// smallest rectangular region enclosing the computation space.
struct ProcessSpaceBasis {
  AffinePoint min;
  AffinePoint max;
};

/// The computation repeater {first last increment} (Sect. 4.1) plus the
/// loop-step count of Equation (4).
struct RepeaterSpec {
  Piecewise<AffinePoint> first;  ///< points in IS, exprs over (coords, sizes)
  Piecewise<AffinePoint> last;
  IntVec increment;              ///< constant vector in Z^r
  Piecewise<AffineExpr> count;   ///< ((last - first) // increment) + 1
  bool simple_place = false;     ///< Sect. 7.2.3 special case applied
};

/// A reference to one boundary hyperplane of the process space.
struct BoundaryRef {
  std::size_t dim = 0;
  bool at_min = false;

  friend bool operator==(const BoundaryRef&, const BoundaryRef&) = default;
};

/// One set of i/o processes along a process-space boundary (Equation (5)).
struct IoProcessSet {
  std::string stream;
  std::size_t dim = 0;  ///< the non-zero flow component generating the set
  bool at_min = false;  ///< boundary side: y.dim == PS_min.dim or PS_max.dim
  bool is_input = false;
  /// Same-role boundaries of earlier dimensions whose points are omitted
  /// here (the duplicate-removal rule of Sect. 7.3 / E.2.3).
  std::vector<BoundaryRef> excluded;
};

/// The i/o repeater {first_s last_s increment_s} (Sect. 6.4) and the
/// pipeline element count of Equation (10).
struct IoRepeaterSpec {
  IntVec increment_s;              ///< constant in Z^{r-1} (variable space)
  Piecewise<AffinePoint> first_s;  ///< element identities in VS.v
  Piecewise<AffinePoint> last_s;
  Piecewise<AffineExpr> count_s;   ///< ((last_s - first_s) // inc_s) + 1
};

/// Everything the scheme derives for one stream.
struct StreamPlan {
  std::string name;
  StreamMotion motion;
  IoRepeaterSpec io;
  std::vector<IoProcessSet> io_sets;
  Piecewise<AffineExpr> soak;   ///< Equation (8)
  Piecewise<AffineExpr> drain;  ///< Equation (9)
};

/// The complete compiled systolic program, still symbolic in the problem
/// size. `instantiate()` (runtime module) binds the sizes and produces an
/// executable process network; the ast module renders it as text.
struct CompiledProgram {
  std::string name;
  /// Cache identity (see next_program_generation()); assigned at
  /// construction, preserved across copies/moves.
  std::uint64_t generation = next_program_generation();
  std::size_t depth = 0;  ///< r
  StepFunction step;
  PlaceFunction place;
  ProcessSpaceBasis ps;
  RepeaterSpec repeater;
  std::vector<StreamPlan> streams;
  /// Canonical process-coordinate symbols y.0 .. y.(r-2) ("col", "row", ...).
  std::vector<Symbol> coords;
  /// Size assumptions conjoined with PS-box membership of the coordinates —
  /// the standing hypotheses under which guards were pruned.
  Guard assumptions;

  [[nodiscard]] const StreamPlan& stream_plan(const std::string& s) const {
    for (const StreamPlan& p : streams) {
      if (p.name == s) return p;
    }
    raise(ErrorKind::Validation, "no stream plan for '" + s + "'");
  }
};

}  // namespace systolize
