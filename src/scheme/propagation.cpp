#include "scheme/propagation.hpp"

#include "scheme/first_last.hpp"
#include "symbolic/fourier_motzkin.hpp"

namespace systolize {
namespace {

/// Piecewise (to - from) // increment_s over the product of clause sets,
/// with degenerate pairings discarded (the paper's by-hand pruning of
/// inconsistent sub-alternatives, Sect. E.2.5).
Piecewise<AffineExpr> quotient_cases(const Piecewise<AffinePoint>& from,
                                     const Piecewise<AffinePoint>& to,
                                     const IntVec& increment_s,
                                     const Guard& assumptions,
                                     const std::string& what) {
  Piecewise<AffineExpr> out;
  for (const auto& a : from.pieces()) {
    for (const auto& b : to.pieces()) {
      Guard g = a.guard.conjoined(b.guard);
      if (!is_feasible(g, assumptions)) continue;
      auto m = symbolic_quotient_along(a.value, b.value, increment_s);
      if (!m.has_value()) {
        if (has_interior(g, assumptions)) {
          raise(ErrorKind::Inconsistent,
                what + ": clause pair is collinearity-inconsistent on a "
                       "full-dimensional region");
        }
        continue;
      }
      out.add(drop_redundant(g, assumptions), *m);
    }
  }
  return out;
}

}  // namespace

Propagation derive_propagation(const Stream& s, const RepeaterSpec& repeater,
                               const IoRepeaterSpec& io,
                               const Guard& assumptions) {
  const IntMatrix& m = s.index_map();
  // Project the computation endpoints into the variable space.
  Piecewise<AffinePoint> m_first =
      repeater.first.mapped([&m](const AffinePoint& p) { return p.applied(m); });
  Piecewise<AffinePoint> m_last =
      repeater.last.mapped([&m](const AffinePoint& p) { return p.applied(m); });

  Propagation prop;
  prop.soak = quotient_cases(io.first_s, m_first, io.increment_s, assumptions,
                             "soak of stream '" + s.name() + "'");
  prop.drain = quotient_cases(m_last, io.last_s, io.increment_s, assumptions,
                              "drain of stream '" + s.name() + "'");
  return prop;
}

}  // namespace systolize
