#include "scheme/increment.hpp"

namespace systolize {

IntVec derive_increment(const StepFunction& step, const PlaceFunction& place) {
  // null_generator() is already gcd-normalized; orient it by step.
  IntVec w = place.null_generator();
  Int t = step.apply(w);
  if (t == 0) {
    raise(ErrorKind::Inconsistent,
          "step vanishes on null.place (Theorem 3): step and place are "
          "inconsistent");
  }
  IntVec inc = t > 0 ? w : -w;
  for (std::size_t i = 0; i < inc.dim(); ++i) {
    if (inc[i] < -1 || inc[i] > 1) {
      raise(ErrorKind::Unsupported,
            "increment " + inc.to_string() +
                " has a component outside {-1,0,+1}; the scheme's boundary "
                "analysis (Sect. 6.2 Note) does not cover this place "
                "function");
    }
  }
  return inc;
}

}  // namespace systolize
