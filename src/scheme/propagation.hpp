// Sect. 7.5 — soaking and draining counts for the computation processes:
//   soak_s  = (M.first - first_s) // increment_s     (Eq. 8)
//   drain_s = (last_s - M.last)   // increment_s     (Eq. 9)
// For stationary streams the same numbers drive loading (passes drain_s)
// and recovery (passes soak_s) — Sect. 6.5.
#pragma once

#include "scheme/types.hpp"

namespace systolize {

struct Propagation {
  Piecewise<AffineExpr> soak;
  Piecewise<AffineExpr> drain;
};

[[nodiscard]] Propagation derive_propagation(const Stream& s,
                                             const RepeaterSpec& repeater,
                                             const IoRepeaterSpec& io,
                                             const Guard& assumptions);

}  // namespace systolize
