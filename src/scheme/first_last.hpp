// Sect. 7.2.2 — the repeater components first and last: for each face of
// the index space not parallel to the chords, symbolically solve
// place.(x; i:bound_i) = y and guard the solution by the face's bounds
// projected into the process space.
#pragma once

#include "scheme/types.hpp"

namespace systolize {

/// Add a strict-interior feasibility test used to discard degenerate
/// clause combinations (pieces whose guard region has empty interior are
/// always covered by a neighbouring full-dimensional piece; the paper
/// prunes these by hand in Sect. E.2.5).
[[nodiscard]] bool has_interior(const Guard& guard, const Guard& assumptions);

/// Derive {first, last, count}; guards are pruned under `assumptions`
/// (size assumptions conjoined with PS-box membership). For a simple place
/// function the result degenerates to a single unguarded clause
/// (Sect. 7.2.3), which this derivation reaches through the general path.
[[nodiscard]] RepeaterSpec derive_first_last(const LoopNest& nest,
                                             const StepFunction& step,
                                             const PlaceFunction& place,
                                             const IntVec& increment,
                                             const std::vector<Symbol>& coords,
                                             const Guard& assumptions);

/// True iff the computation space fills the whole process-space box: no
/// integer point of PS escapes every clause guard of `first`. Decided by
/// Fourier-Motzkin over the clause-violation combinations (negating
/// lhs <= rhs as rhs + 1 <= lhs, exact for the integer-valued affine
/// forms the scheme produces). Buffer processes exist iff this is false
/// (Sect. 7.6).
[[nodiscard]] bool cs_equals_ps(const RepeaterSpec& repeater,
                                const Guard& assumptions);

/// The paper's (q - p) // v for symbolic points: the affine scalar m with
/// m * v == q - p, derived from a pivot component of v and verified on all
/// components. Returns nullopt when the identity fails componentwise
/// (possible only for degenerate clause pairings).
[[nodiscard]] std::optional<AffineExpr> symbolic_quotient_along(
    const AffinePoint& p, const AffinePoint& q, const IntVec& v);

}  // namespace systolize
