// Sect. 7.1 — the process space basis via vertex/sign analysis of place.
#pragma once

#include "scheme/types.hpp"

namespace systolize {

/// PS_min.i / PS_max.i: each component of place achieves its extrema at a
/// vertex of the rectangular index space chosen by the coefficient signs
/// (left bound where the coefficient is positive for the minimum, right
/// bound where negative; reversed for the maximum).
[[nodiscard]] ProcessSpaceBasis derive_process_space(const LoopNest& nest,
                                                     const PlaceFunction& place);

/// The guard  PS_min.i <= y.i <= PS_max.i  for the canonical coordinate
/// symbols — membership of y in PS, used as a pruning assumption.
[[nodiscard]] Guard ps_box_guard(const ProcessSpaceBasis& ps,
                                 const std::vector<Symbol>& coords);

/// Extremes of the step function over the index space (same vertex/sign
/// analysis as the process-space basis). The synchronous systolic array
/// executes in  max - min + 1  steps — the reference the simulator's
/// logical makespan is compared against in the benches.
struct StepRange {
  AffineExpr min;
  AffineExpr max;
};

[[nodiscard]] StepRange derive_step_range(const LoopNest& nest,
                                          const StepFunction& step);

}  // namespace systolize
