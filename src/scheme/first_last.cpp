#include "scheme/first_last.hpp"

#include "symbolic/fourier_motzkin.hpp"

namespace systolize {
namespace {

enum class Target { First, Last };

/// Solve place.(x; i:bound) = y symbolically for the remaining components
/// (unique by Theorem 9 since increment.i != 0) and assemble the full
/// point in IS coordinates.
AffinePoint solve_face(const PlaceFunction& place, std::size_t i,
                       const AffineExpr& bound,
                       const std::vector<Symbol>& coords) {
  const IntMatrix& p = place.matrix();
  const std::size_t r = p.cols();

  RatMatrix reduced = p.without_col(i).to_rational();
  RatMatrix inv = reduced.inverse();  // nonsingular by Theorem 9
  // A fractional inverse means place.(x; i:bound) = y has non-integer
  // solutions for some integer y — the process space would contain
  // lattice holes. The paper defers this to future work ("non-integer
  // solutions to the linear equations [26]", Sect. 8).
  for (std::size_t r = 0; r < inv.rows(); ++r) {
    for (std::size_t c = 0; c < inv.cols(); ++c) {
      if (!inv.at(r, c).is_integer()) {
        raise(ErrorKind::Unsupported,
              "place function yields non-integer face solutions "
              "(Sect. 8 future work: non-integer solutions to the linear "
              "equations)");
      }
    }
  }

  // rhs = y - place_col_i * bound, with y the coordinate symbols.
  AffinePoint rhs(r - 1);
  for (std::size_t k = 0; k + 1 < r; ++k) {
    rhs[k] = AffineExpr(coords[k]) - bound * Rational(p.at(k, i));
  }
  AffinePoint partial = rhs.applied(inv);  // components x_j for j != i

  AffinePoint x(r);
  std::size_t kk = 0;
  for (std::size_t j = 0; j < r; ++j) {
    x[j] = (j == i) ? bound : partial[kk++];
  }
  return x;
}

Piecewise<AffinePoint> derive_endpoint(const LoopNest& nest,
                                       const PlaceFunction& place,
                                       const IntVec& increment,
                                       const std::vector<Symbol>& coords,
                                       const Guard& assumptions,
                                       Target target) {
  const std::size_t r = nest.depth();
  Piecewise<AffinePoint> result;
  for (std::size_t i = 0; i < r; ++i) {
    if (increment[i] == 0) continue;  // chord parallel to this dimension
    const LoopSpec& loop = nest.loops()[i];
    // For first: lb where increment.i > 0, rb where < 0; reversed for last.
    const bool toward_lower = (increment[i] > 0) == (target == Target::First);
    const AffineExpr& bound = toward_lower ? loop.lower : loop.upper;

    AffinePoint x = solve_face(place, i, bound, coords);

    // Guard: the solved components must lie within their loop bounds
    // (the "shadow" of the face, Sect. 7.2.2).
    Guard g;
    for (std::size_t j = 0; j < r; ++j) {
      if (j == i) continue;
      g.add(between(nest.loops()[j].lower, x[j], nest.loops()[j].upper));
    }
    result.add(std::move(g), std::move(x));
  }
  return result.pruned(assumptions);
}

}  // namespace

bool has_interior(const Guard& guard, const Guard& assumptions) {
  // A rational polyhedron has empty interior iff it is infeasible or one of
  // its defining inequalities is forced to equality everywhere on it (no
  // Slater point). Constant-true constraints are stripped first so they
  // cannot masquerade as pinned faces.
  Guard g;
  try {
    g = guard.conjoined(assumptions).simplified();
  } catch (const Error&) {
    return false;  // constant-false constraint: empty region
  }
  if (!is_feasible(g)) return false;
  for (const Constraint& c : g.constraints()) {
    // Is c.lhs >= c.rhs forced (so slack == 0 on the whole region)?
    if (implies(g, Constraint{c.rhs, c.lhs})) return false;
  }
  return true;
}

namespace {

/// Recursively pick one violated constraint per clause and test the
/// conjunction; any feasible combination is an uncovered PS point.
bool some_point_escapes(const std::vector<Piece<AffinePoint>>& pieces,
                        std::size_t index, Guard violated,
                        const Guard& assumptions) {
  if (index == pieces.size()) {
    return is_feasible(violated, assumptions);
  }
  const Guard& guard = pieces[index].guard;
  if (guard.is_trivially_true()) return false;  // this clause covers all
  for (const Constraint& c : guard.constraints()) {
    Guard next = violated;
    // not (lhs <= rhs)  ==  rhs + 1 <= lhs on integer-valued forms.
    next.add(Constraint{c.rhs + AffineExpr(1), c.lhs});
    if (some_point_escapes(pieces, index + 1, std::move(next), assumptions)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool cs_equals_ps(const RepeaterSpec& repeater, const Guard& assumptions) {
  return !some_point_escapes(repeater.first.pieces(), 0, Guard{},
                             assumptions);
}

std::optional<AffineExpr> symbolic_quotient_along(const AffinePoint& p,
                                                  const AffinePoint& q,
                                                  const IntVec& v) {
  if (p.dim() != q.dim() || p.dim() != v.dim()) {
    raise(ErrorKind::Dimension, "symbolic_quotient_along dimension mismatch");
  }
  std::size_t pivot = p.dim();
  for (std::size_t i = 0; i < v.dim(); ++i) {
    if (v[i] != 0) {
      pivot = i;
      break;
    }
  }
  if (pivot == p.dim()) {
    raise(ErrorKind::NotRepresentable, "quotient along the zero vector");
  }
  AffineExpr m = (q[pivot] - p[pivot]) * Rational(1, v[pivot]);
  for (std::size_t i = 0; i < v.dim(); ++i) {
    if (q[i] - p[i] != m * Rational(v[i])) return std::nullopt;
  }
  return m;
}

RepeaterSpec derive_first_last(const LoopNest& nest, const StepFunction& step,
                               const PlaceFunction& place,
                               const IntVec& increment,
                               const std::vector<Symbol>& coords,
                               const Guard& assumptions) {
  (void)step;  // orientation is already baked into increment
  RepeaterSpec spec;
  spec.increment = increment;
  spec.simple_place = place.is_simple();
  spec.first = derive_endpoint(nest, place, increment, coords, assumptions,
                               Target::First);
  spec.last = derive_endpoint(nest, place, increment, coords, assumptions,
                              Target::Last);

  // Equation (4): count = ((last - first) // increment) + 1, defined
  // piecewise over the product of the first and last alternatives.
  Piecewise<AffineExpr> count;
  for (const auto& f : spec.first.pieces()) {
    for (const auto& l : spec.last.pieces()) {
      Guard g = f.guard.conjoined(l.guard);
      if (!is_feasible(g, assumptions)) continue;
      auto m = symbolic_quotient_along(f.value, l.value, increment);
      if (!m.has_value()) {
        // The pairing only matches on a measure-zero overlap; a
        // full-dimensional pairing covers those points with the same value.
        if (has_interior(g, assumptions)) {
          raise(ErrorKind::Inconsistent,
                "first/last clause pair is collinearity-inconsistent on a "
                "full-dimensional region");
        }
        continue;
      }
      count.add(drop_redundant(g, assumptions), *m + AffineExpr(1));
    }
  }
  spec.count = count;
  return spec;
}

}  // namespace systolize
