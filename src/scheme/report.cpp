#include "scheme/report.hpp"

#include <sstream>

#include "scheme/first_last.hpp"
#include "scheme/process_space.hpp"
#include "systolic/dependence.hpp"

namespace systolize {
namespace {

std::string show_point_pw(const Piecewise<AffinePoint>& pw,
                          const std::string& indent) {
  if (pw.size() == 1 && pw.pieces()[0].guard.is_trivially_true()) {
    return pw.pieces()[0].value.to_string() + "  (all processes)\n";
  }
  std::ostringstream os;
  os << '\n';
  for (const auto& piece : pw.pieces()) {
    os << indent << "  " << piece.guard.to_string() << "  ->  "
       << piece.value.to_string() << '\n';
  }
  os << indent << "  otherwise null\n";
  return os.str();
}

std::string show_expr_pw(const Piecewise<AffineExpr>& pw,
                         const std::string& indent) {
  if (pw.size() == 1 && pw.pieces()[0].guard.is_trivially_true()) {
    return pw.pieces()[0].value.to_string() + '\n';
  }
  std::ostringstream os;
  os << '\n';
  for (const auto& piece : pw.pieces()) {
    os << indent << "  " << piece.guard.to_string() << "  ->  "
       << piece.value.to_string() << '\n';
  }
  return os.str();
}

}  // namespace

std::string derivation_report(const CompiledProgram& program,
                              const LoopNest& nest, const ArraySpec& spec) {
  std::ostringstream os;
  os << "=== derivation report: " << program.name << " ===\n\n";

  os << "source program (r = " << nest.depth() << "):\n";
  for (const LoopSpec& loop : nest.loops()) {
    os << "  for " << loop.index_name << " = " << loop.lower.to_string()
       << " <-" << (loop.step > 0 ? "+1" : "-1") << "-> "
       << loop.upper.to_string() << '\n';
  }
  os << "  basic statement: "
     << (nest.body_text().empty() ? "<opaque>" : nest.body_text()) << '\n';
  for (const Stream& s : nest.streams()) {
    os << "  stream " << s.name() << ": index map " << s.index_map()
       << (s.access() == StreamAccess::Update ? ", update" : ", read")
       << ", variable space";
    for (const VarDim& d : s.dims()) {
      os << " [" << d.lower.to_string() << ".." << d.upper.to_string() << ']';
    }
    os << '\n';
  }
  os << "  " << spec.step().to_string() << ", " << spec.place().to_string()
     << "\n\n";

  os << "process space basis (Sect. 7.1):\n  PS_min = "
     << program.ps.min.to_string() << ", PS_max = "
     << program.ps.max.to_string() << '\n';
  StepRange range = derive_step_range(nest, spec.step());
  os << "  synchronous step range: " << range.min.to_string() << " .. "
     << range.max.to_string() << '\n';
  os << "  dependences: "
     << (respects_dependences(nest, spec)
             ? "step respects the sequential update order"
             : "step REVERSES an update chain (commutative bodies only)")
     << "\n\n";

  os << "increment (Sect. 7.2.1): " << program.repeater.increment.to_string()
     << (program.repeater.simple_place ? "  (simple place function)" : "")
     << "\n\n";

  os << "computation repeater (Sect. 7.2.2):\n";
  os << "  first = " << show_point_pw(program.repeater.first, "  ");
  os << "  last  = " << show_point_pw(program.repeater.last, "  ");
  os << "  count = " << show_expr_pw(program.repeater.count, "  ");
  os << '\n';

  for (const StreamPlan& plan : program.streams) {
    os << "stream " << plan.name << ":\n";
    if (plan.motion.stationary) {
      os << "  stationary; loading & recovery vector "
         << plan.motion.direction.to_string() << '\n';
    } else {
      os << "  flow = " << plan.motion.flow.to_string() << "  (direction "
         << plan.motion.direction.to_string() << ", "
         << plan.motion.denominator - 1
         << " interposed buffer(s) per hop)\n";
    }
    os << "  i/o processes (Sect. 7.3):";
    for (const IoProcessSet& set : plan.io_sets) {
      os << "  [dim " << set.dim << ' ' << (set.at_min ? "min" : "max")
         << ' ' << (set.is_input ? "input" : "output");
      if (!set.excluded.empty()) {
        os << ", deduped vs dim";
        for (const BoundaryRef& ref : set.excluded) {
          os << ' ' << ref.dim << (ref.at_min ? "min" : "max");
        }
      }
      os << ']';
    }
    os << '\n';
    os << "  increment_s = " << plan.io.increment_s.to_string()
       << " (Sect. 7.4)\n";
    os << "  first_s = " << show_point_pw(plan.io.first_s, "  ");
    os << "  last_s  = " << show_point_pw(plan.io.last_s, "  ");
    os << "  count_s = " << show_expr_pw(plan.io.count_s, "  ");
    os << "  " << (plan.motion.stationary ? "recovery passes" : "soak")
       << " = " << show_expr_pw(plan.soak, "  ");
    os << "  " << (plan.motion.stationary ? "loading passes" : "drain")
       << "  = " << show_expr_pw(plan.drain, "  ");
    os << '\n';
  }

  bool external = !cs_equals_ps(program.repeater, program.assumptions);
  os << "buffers (Sect. 7.6): "
     << (external ? "PS strictly contains CS — external buffer processes "
                    "pass whole pipelines (Eq. 10)"
                  : "PS = CS — no external buffers")
     << "\n";
  return os.str();
}

}  // namespace systolize
