#include "scheme/compiler.hpp"

#include "loopnest/validate.hpp"
#include "scheme/first_last.hpp"
#include "scheme/increment.hpp"
#include "scheme/io_comm.hpp"
#include "scheme/io_layout.hpp"
#include "scheme/process_space.hpp"
#include "scheme/propagation.hpp"

namespace systolize {

CompiledProgram compile(const LoopNest& nest, const ArraySpec& spec,
                        const CompileOptions& options) {
  validate_source(nest);
  validate_array(nest, spec);

  CompiledProgram out;
  out.name = nest.name();
  out.depth = nest.depth();
  out.step = spec.step();
  out.place = spec.place();

  for (std::size_t i = 0; i + 1 < nest.depth(); ++i) {
    out.coords.push_back(canonical_coord(i));
  }

  // 7.1 — process space basis; its box membership joins the standing
  // assumptions for all guard pruning.
  out.ps = derive_process_space(nest, spec.place());
  out.assumptions =
      nest.size_assumptions().conjoined(ps_box_guard(out.ps, out.coords));

  // 7.2 — increment and the computation repeater.
  IntVec increment = derive_increment(spec.step(), spec.place());
  out.repeater = derive_first_last(nest, spec.step(), spec.place(), increment,
                                   out.coords, out.assumptions);

  // 7.3-7.5 — per-stream i/o layout, repeaters and propagation.
  for (const Stream& s : nest.streams()) {
    StreamPlan plan;
    plan.name = s.name();
    plan.motion = spec.motion_of(s);
    plan.io_sets = derive_io_sets(s.name(), plan.motion);
    plan.io = derive_io_repeater(s, plan.motion, spec.place(), increment,
                                 out.repeater.first, out.assumptions,
                                 options.statement_clause);
    Propagation prop =
        derive_propagation(s, out.repeater, plan.io, out.assumptions);
    plan.soak = std::move(prop.soak);
    plan.drain = std::move(prop.drain);
    out.streams.push_back(std::move(plan));
  }
  return out;
}

}  // namespace systolize
