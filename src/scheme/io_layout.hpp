// Sect. 7.3 — layout of the input/output processes along the process-space
// boundaries, one set per non-zero flow component, duplicates removed in
// order of increasing dimension.
#pragma once

#include "scheme/types.hpp"

namespace systolize {

/// Equation (5) for one stream: boundary sets in every dimension where the
/// motion direction is non-zero. Input processes sit on the upstream side
/// (min boundary when the component is positive), outputs downstream. A
/// set records which earlier dimensions' same-role boundary points it
/// omits (the duplicate corners of Sect. E.2.3).
[[nodiscard]] std::vector<IoProcessSet> derive_io_sets(
    const std::string& stream, const StreamMotion& motion);

/// Concrete coordinates of one boundary set at an instantiated process
/// space: the boundary dimension pinned to its side, the free dimensions
/// ranging over the box, the excluded same-role corners removed.
[[nodiscard]] std::vector<IntVec> enumerate_io_points(const IoProcessSet& set,
                                                      const IntVec& ps_min,
                                                      const IntVec& ps_max);

}  // namespace systolize
