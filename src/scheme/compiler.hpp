// The systolizing compiler (Sect. 7): source program + systolic array in,
// symbolic distributed program out.
#pragma once

#include "scheme/types.hpp"

namespace systolize {

struct CompileOptions {
  /// Which clause of the computation `first` serves as the basic statement
  /// x in Equations (6)/(7). The result is clause-independent (tests
  /// verify); exposed so the invariance can be exercised.
  std::size_t statement_clause = 0;
};

/// Run the full scheme. Validates the source program (Appendix A) and the
/// array spec first; throws Error on any violation.
[[nodiscard]] CompiledProgram compile(const LoopNest& nest,
                                      const ArraySpec& spec,
                                      const CompileOptions& options = {});

}  // namespace systolize
