// Sect. 7.2.1 — increment: the unit distance between consecutive basic
// statements of a process.
#pragma once

#include "systolic/step_place.hpp"

namespace systolize {

/// increment = sgn.(step.w) * (1/k) * w for any w spanning null.place with
/// k the gcd of w's components (Theorems 5-7). Raises Unsupported when a
/// component falls outside {-1, 0, +1} (the Appendix A.2 restriction; the
/// paper's boundary analysis is only complete in that case).
[[nodiscard]] IntVec derive_increment(const StepFunction& step,
                                      const PlaceFunction& place);

}  // namespace systolize
