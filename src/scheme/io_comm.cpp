#include "scheme/io_comm.hpp"

#include "scheme/first_last.hpp"
#include "symbolic/fourier_motzkin.hpp"

namespace systolize {
namespace {

enum class Target { First, Last };

/// Equations (6)/(7): project M.x along increment_s onto face i of the
/// variable space, then guard by the remaining variable bounds.
Piecewise<AffinePoint> derive_io_endpoint(const Stream& s,
                                          const IntVec& increment_s,
                                          const AffinePoint& mx,
                                          const Guard& assumptions,
                                          Target target) {
  Piecewise<AffinePoint> result;
  for (std::size_t i = 0; i < increment_s.dim(); ++i) {
    const Int d = increment_s[i];
    if (d == 0) continue;
    const VarDim& dim = s.dims()[i];
    // first_s.i is the bound the pipeline enters through: the lower bound
    // where increment_s.i > 0 (elements ascend), reversed for last_s.
    const bool toward_lower = (d > 0) == (target == Target::First);
    const AffineExpr& bound = toward_lower ? dim.lower : dim.upper;

    // point = M.x - ((M.x.i - bound) / d) * increment_s   (Eq. 6)
    //       = M.x + ((bound - M.x.i) / d) * increment_s   (Eq. 7 likewise)
    AffineExpr t = (bound - mx[i]) * Rational(1, d);
    AffinePoint point = mx.plus_scaled(t, increment_s);

    Guard g;
    for (std::size_t j = 0; j < increment_s.dim(); ++j) {
      if (j == i) continue;
      g.add(between(s.dims()[j].lower, point[j], s.dims()[j].upper));
    }
    result.add(std::move(g), std::move(point));
  }
  if (result.empty()) {
    raise(ErrorKind::Validation,
          "stream '" + s.name() + "': increment_s is zero — the stream's "
          "elements would not be ordered along any pipeline");
  }
  return result.pruned(assumptions);
}

}  // namespace

IntVec stationary_element_increment(const Stream& s,
                                    const PlaceFunction& place,
                                    const IntVec& direction,
                                    const IntVec& increment) {
  const IntMatrix& p = place.matrix();
  const std::size_t r = p.cols();
  // Solve place . delta = direction for one particular delta: pin the
  // coordinate of a non-parallel dimension (increment.j != 0 makes the
  // reduced system invertible, Theorem 9) to zero.
  std::size_t j = r;
  for (std::size_t i = 0; i < r; ++i) {
    if (increment[i] != 0) {
      j = i;
      break;
    }
  }
  if (j == r) {
    raise(ErrorKind::Inconsistent, "increment is the zero vector");
  }
  RatMatrix inv = p.without_col(j).to_rational().inverse();
  RatVec partial = inv.apply(RatVec(direction));
  RatVec delta(r);
  std::size_t k = 0;
  for (std::size_t i = 0; i < r; ++i) {
    delta[i] = (i == j) ? Rational(0) : partial[k++];
  }
  RatVec u = s.index_map().apply(delta);
  if (!u.is_integral()) {
    raise(ErrorKind::Unsupported,
          "stream '" + s.name() + "': loading direction " +
              direction.to_string() +
              " induces a fractional element increment " + u.to_string());
  }
  return u.to_int_vec();
}

IoRepeaterSpec derive_io_repeater(const Stream& s, const StreamMotion& motion,
                                  const PlaceFunction& place,
                                  const IntVec& increment,
                                  const Piecewise<AffinePoint>& first,
                                  const Guard& assumptions,
                                  std::size_t statement_clause) {
  IoRepeaterSpec spec;
  // Theorem 11: consecutive statements use consecutive elements, so the
  // element-identity increment is M . increment. For a stationary stream
  // the pipeline is ordered by the element variation along the loading &
  // recovery direction instead.
  spec.increment_s =
      motion.stationary
          ? stationary_element_increment(s, place, motion.direction,
                                         increment)
          : s.index_map().apply(increment);
  if (!motion.stationary && spec.increment_s.is_zero()) {
    raise(ErrorKind::Inconsistent,
          "stream '" + s.name() + "': moving stream with zero M.increment");
  }
  if (spec.increment_s.content() > 1) {
    // Consecutive statements would skip elements along the pipeline;
    // the interleaving of several chords' accesses is outside the
    // scheme's pipelining model (Sect. 6.4's total order assumes unit
    // spacing).
    raise(ErrorKind::Unsupported,
          "stream '" + s.name() + "': element increment " +
              spec.increment_s.to_string() +
              " is non-primitive (strided pipeline access unsupported)");
  }

  if (statement_clause >= first.size()) {
    raise(ErrorKind::Validation, "statement clause index out of range");
  }
  // Any basic statement x serves; we use the requested clause of first.
  const AffinePoint& x = first.pieces()[statement_clause].value;
  AffinePoint mx = x.applied(s.index_map());

  spec.first_s = derive_io_endpoint(s, spec.increment_s, mx, assumptions,
                                    Target::First);
  spec.last_s =
      derive_io_endpoint(s, spec.increment_s, mx, assumptions, Target::Last);

  // Equation (10): pipeline element count, piecewise over clause pairs.
  Piecewise<AffineExpr> count;
  for (const auto& f : spec.first_s.pieces()) {
    for (const auto& l : spec.last_s.pieces()) {
      Guard g = f.guard.conjoined(l.guard);
      if (!is_feasible(g, assumptions)) continue;
      auto m = symbolic_quotient_along(f.value, l.value, spec.increment_s);
      if (!m.has_value()) {
        if (has_interior(g, assumptions)) {
          raise(ErrorKind::Inconsistent,
                "first_s/last_s clause pair is collinearity-inconsistent on "
                "a full-dimensional region for stream '" + s.name() + "'");
        }
        continue;
      }
      count.add(drop_redundant(g, assumptions), *m + AffineExpr(1));
    }
  }
  spec.count_s = count;
  return spec;
}

}  // namespace systolize
