#include "scheme/buffers.hpp"

namespace systolize {

Int internal_buffers_per_hop(const StreamMotion& motion) {
  return motion.denominator - 1;
}

bool is_external_buffer_point(const RepeaterSpec& repeater, const Env& env) {
  return !repeater.first.covers(env);
}

}  // namespace systolize
