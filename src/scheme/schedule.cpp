#include "scheme/schedule.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace systolize {

Int Schedule::width_at(Int step) const {
  auto it = steps.find(step);
  return it == steps.end() ? 0 : static_cast<Int>(it->second.size());
}

Int Schedule::max_width() const {
  Int w = 0;
  for (const auto& [step, row] : steps) {
    w = std::max(w, static_cast<Int>(row.size()));
  }
  return w;
}

Schedule derive_schedule(const LoopNest& nest, const ArraySpec& spec,
                         const Env& env) {
  Schedule schedule;
  bool first = true;
  for (const IntVec& x : nest.enumerate_index_space(env)) {
    Int t = spec.step().apply(x);
    IntVec y = spec.place().apply(x);
    auto [it, inserted] = schedule.steps[t].emplace(y, x);
    if (!inserted) {
      raise(ErrorKind::Inconsistent,
            "Equation (1) violated: statements " + it->second.to_string() +
                " and " + x.to_string() + " share step " + std::to_string(t) +
                " and process " + y.to_string());
    }
    if (first) {
      schedule.min_step = t;
      schedule.max_step = t;
      first = false;
    } else {
      schedule.min_step = std::min(schedule.min_step, t);
      schedule.max_step = std::max(schedule.max_step, t);
    }
  }
  if (first) {
    raise(ErrorKind::Validation, "empty index space: no schedule");
  }
  return schedule;
}

std::string render_schedule_1d(const Schedule& schedule, const IntVec& ps_min,
                               const IntVec& ps_max) {
  if (ps_min.dim() != 1 || ps_max.dim() != 1) {
    raise(ErrorKind::Unsupported,
          "render_schedule_1d handles one-dimensional arrays only");
  }
  std::ostringstream os;
  os << "step \\ col";
  for (Int col = ps_min[0]; col <= ps_max[0]; ++col) {
    os << std::setw(5) << col;
  }
  os << '\n';
  for (Int t = schedule.min_step; t <= schedule.max_step; ++t) {
    os << std::setw(10) << t;
    auto it = schedule.steps.find(t);
    for (Int col = ps_min[0]; col <= ps_max[0]; ++col) {
      bool active = false;
      if (it != schedule.steps.end()) {
        active = it->second.contains(IntVec{col});
      }
      os << std::setw(5) << (active ? "*" : ".");
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace systolize
