// The synchronous space-time schedule: for a concrete problem size, which
// statement every process executes at each step — the classic systolic
// array diagram (statements with equal step run in parallel, Sect. 3.2).
#pragma once

#include <map>
#include <string>

#include "scheme/types.hpp"

namespace systolize {

struct Schedule {
  /// step value -> (process point -> statement point).
  std::map<Int, std::map<IntVec, IntVec, IntVecLess>> steps;
  Int min_step = 0;
  Int max_step = 0;

  [[nodiscard]] Int span() const { return max_step - min_step + 1; }
  /// Statements executing at one step (parallelism profile).
  [[nodiscard]] Int width_at(Int step) const;
  [[nodiscard]] Int max_width() const;
};

/// Enumerate the schedule at a concrete problem size. Every statement
/// appears exactly once; no process appears twice within a step
/// (Equation (1)).
[[nodiscard]] Schedule derive_schedule(const LoopNest& nest,
                                       const ArraySpec& spec, const Env& env);

/// ASCII rendering for one-dimensional arrays: one row per step, one
/// column per process, each active cell showing the statement's position
/// along its chord. Throws Unsupported for higher-dimensional arrays
/// (render one row/column slice instead).
[[nodiscard]] std::string render_schedule_1d(const Schedule& schedule,
                                             const IntVec& ps_min,
                                             const IntVec& ps_max);

}  // namespace systolize
