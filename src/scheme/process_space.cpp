#include "scheme/process_space.hpp"

namespace systolize {

ProcessSpaceBasis derive_process_space(const LoopNest& nest,
                                       const PlaceFunction& place) {
  const std::size_t r = nest.depth();
  const IntMatrix& p = place.matrix();
  ProcessSpaceBasis ps{AffinePoint(r - 1), AffinePoint(r - 1)};
  for (std::size_t i = 0; i + 1 < r; ++i) {
    AffineExpr lo;
    AffineExpr hi;
    for (std::size_t j = 0; j < r; ++j) {
      const Int c = p.at(i, j);
      if (c == 0) continue;
      const LoopSpec& loop = nest.loops()[j];
      // Minimizing: take lb_j where the coefficient is positive, rb_j where
      // negative (lb_j <= rb_j always holds). Maximizing is the reverse.
      lo += (c > 0 ? loop.lower : loop.upper) * Rational(c);
      hi += (c > 0 ? loop.upper : loop.lower) * Rational(c);
    }
    ps.min[i] = lo;
    ps.max[i] = hi;
  }
  return ps;
}

StepRange derive_step_range(const LoopNest& nest, const StepFunction& step) {
  StepRange range;
  for (std::size_t j = 0; j < nest.depth(); ++j) {
    const Int c = step.coeffs()[j];
    if (c == 0) continue;
    const LoopSpec& loop = nest.loops()[j];
    range.min += (c > 0 ? loop.lower : loop.upper) * Rational(c);
    range.max += (c > 0 ? loop.upper : loop.lower) * Rational(c);
  }
  return range;
}

Guard ps_box_guard(const ProcessSpaceBasis& ps,
                   const std::vector<Symbol>& coords) {
  Guard g;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    g.add(between(ps.min[i], AffineExpr(coords[i]), ps.max[i]));
  }
  return g;
}

}  // namespace systolize
