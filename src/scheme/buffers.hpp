// Sect. 7.6 — buffer processes.
//
// Internal buffers: a stream with fractional flow p/q needs q-1 buffer
// processes interposed on each hop (the rendezvous itself accounts for one
// step of travel). External buffers: the points of PS \ CS pass along every
// element of each pipeline that crosses them — Equation (10), which is the
// io repeater's count_s; a pipeline with no elements (all count_s guards
// false) passes nothing, which is how stream c contributes no buffer
// traffic in Sect. E.2.7.
#pragma once

#include "scheme/types.hpp"

namespace systolize {

/// Number of buffer processes interposed per hop for a stream (q - 1).
[[nodiscard]] Int internal_buffers_per_hop(const StreamMotion& motion);

/// True at a concrete process point iff it lies outside the computation
/// space: no clause of the repeater's `first` covers it. (The guards of
/// `first` define CS — Sect. 7.6.)
[[nodiscard]] bool is_external_buffer_point(const RepeaterSpec& repeater,
                                            const Env& env);

}  // namespace systolize
