// Sect. 7.4 — the i/o repeaters: increment_s = M . increment (Theorem 11)
// and the pipeline endpoints first_s / last_s via Equations (6) and (7).
#pragma once

#include "scheme/types.hpp"

namespace systolize {

/// Derive {increment_s, first_s, last_s, count_s} for one stream.
///
/// `first` is the computation repeater's first (any clause serves as the
/// basic statement x in Equations (6)/(7) — the derived endpoints are
/// clause-independent, a property the tests verify); for stationary
/// streams the loading & recovery vector plays the role of increment_s
/// (Sect. D.1.4).
[[nodiscard]] IoRepeaterSpec derive_io_repeater(
    const Stream& s, const StreamMotion& motion, const PlaceFunction& place,
    const IntVec& increment, const Piecewise<AffinePoint>& first,
    const Guard& assumptions, std::size_t statement_clause = 0);

/// Element-identity increment of a *stationary* stream along its loading
/// & recovery direction: M . delta for any delta with place . delta ==
/// direction (well-defined because M vanishes on null.place for a
/// stationary stream). This is what orders the loading pipeline — it
/// coincides with the loading vector for the paper's examples but differs
/// in general (e.g. place.(i,j) = -i makes the element index run against
/// the loading direction). Throws Unsupported when fractional.
[[nodiscard]] IntVec stationary_element_increment(const Stream& s,
                                                  const PlaceFunction& place,
                                                  const IntVec& direction,
                                                  const IntVec& increment);

}  // namespace systolize
