// Derivation reports: render everything the scheme derived for a design
// in the style of the paper's appendix walk-throughs (D.1.1-D.1.6,
// E.2.1-E.2.6) — the process space basis, increment, the guarded
// first/last alternatives, per-stream flows, i/o layout and repeaters,
// soaking/draining, and buffer requirements.
#pragma once

#include <string>

#include "scheme/types.hpp"

namespace systolize {

[[nodiscard]] std::string derivation_report(const CompiledProgram& program,
                                            const LoopNest& nest,
                                            const ArraySpec& spec);

}  // namespace systolize
