#include "scheme/io_layout.hpp"

namespace systolize {

std::vector<IoProcessSet> derive_io_sets(const std::string& stream,
                                         const StreamMotion& motion) {
  std::vector<IoProcessSet> sets;
  std::vector<BoundaryRef> earlier_inputs;
  std::vector<BoundaryRef> earlier_outputs;
  for (std::size_t i = 0; i < motion.direction.dim(); ++i) {
    const Int d = motion.direction[i];
    if (d == 0) continue;
    // d > 0: the stream enters at the min boundary and leaves at max.
    IoProcessSet in;
    in.stream = stream;
    in.dim = i;
    in.at_min = d > 0;
    in.is_input = true;
    in.excluded = earlier_inputs;

    IoProcessSet out;
    out.stream = stream;
    out.dim = i;
    out.at_min = d < 0;
    out.is_input = false;
    out.excluded = earlier_outputs;

    earlier_inputs.push_back(BoundaryRef{i, in.at_min});
    earlier_outputs.push_back(BoundaryRef{i, out.at_min});
    sets.push_back(std::move(in));
    sets.push_back(std::move(out));
  }
  if (sets.empty()) {
    raise(ErrorKind::Validation,
          "stream '" + stream + "' has a zero motion direction: no i/o "
          "boundary exists");
  }
  return sets;
}

std::vector<IntVec> enumerate_io_points(const IoProcessSet& set,
                                        const IntVec& ps_min,
                                        const IntVec& ps_max) {
  if (ps_min.dim() != ps_max.dim() || set.dim >= ps_min.dim()) {
    raise(ErrorKind::Dimension, "io set dimension mismatch");
  }
  std::vector<IntVec> points;
  IntVec y = ps_min;
  y[set.dim] = set.at_min ? ps_min[set.dim] : ps_max[set.dim];
  for (;;) {
    bool excluded = false;
    for (const BoundaryRef& ref : set.excluded) {
      Int boundary = ref.at_min ? ps_min[ref.dim] : ps_max[ref.dim];
      if (y[ref.dim] == boundary) excluded = true;
    }
    if (!excluded) points.push_back(y);
    // Advance over the free dimensions only.
    std::size_t i = y.dim();
    bool done = true;
    while (i > 0) {
      --i;
      if (i == set.dim) continue;
      if (++y[i] <= ps_max[i]) {
        done = false;
        break;
      }
      y[i] = ps_min[i];
    }
    if (done) return points;
  }
}

}  // namespace systolize
