// Points whose coordinates are affine expressions — e.g. the repeater
// component first.y = (col, row, 0) or first_s = (0, row - col).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "numeric/int_matrix.hpp"
#include "numeric/rat_matrix.hpp"
#include "symbolic/affine_expr.hpp"

namespace systolize {

class AffinePoint {
 public:
  AffinePoint() = default;
  explicit AffinePoint(std::size_t dim) : comps_(dim) {}
  AffinePoint(std::initializer_list<AffineExpr> comps) : comps_(comps) {}
  explicit AffinePoint(std::vector<AffineExpr> comps)
      : comps_(std::move(comps)) {}
  /// Lift a concrete integer point.
  explicit AffinePoint(const IntVec& v);

  [[nodiscard]] std::size_t dim() const noexcept { return comps_.size(); }
  [[nodiscard]] const AffineExpr& operator[](std::size_t i) const {
    return comps_.at(i);
  }
  AffineExpr& operator[](std::size_t i) { return comps_.at(i); }

  AffinePoint operator-() const;
  AffinePoint& operator+=(const AffinePoint& o);
  AffinePoint& operator-=(const AffinePoint& o);
  AffinePoint& operator*=(const Rational& k);

  friend AffinePoint operator+(AffinePoint a, const AffinePoint& b) {
    return a += b;
  }
  friend AffinePoint operator-(AffinePoint a, const AffinePoint& b) {
    return a -= b;
  }
  friend AffinePoint operator*(AffinePoint a, const Rational& k) {
    return a *= k;
  }
  friend bool operator==(const AffinePoint&, const AffinePoint&) = default;

  /// Add k * v for an integer direction vector v (e.g. "+ m * increment").
  [[nodiscard]] AffinePoint plus_scaled(const AffineExpr& k,
                                        const IntVec& v) const;

  /// Inner product with an integer vector: sum_i v.i * comp_i.
  [[nodiscard]] AffineExpr dot(const IntVec& v) const;

  /// Matrix application M * p (index map applied to a symbolic statement).
  [[nodiscard]] AffinePoint applied(const IntMatrix& m) const;
  [[nodiscard]] AffinePoint applied(const RatMatrix& m) const;

  /// Substitute a symbol in every component.
  [[nodiscard]] AffinePoint substituted(const Symbol& s,
                                        const AffineExpr& e) const;

  /// Evaluate all components; throws Validation if a component is not an
  /// integer (scheme points are integral by construction).
  [[nodiscard]] IntVec evaluate(const Env& env) const;

  [[nodiscard]] std::string to_string() const;

 private:
  void require_same_dim(const AffinePoint& o) const;

  std::vector<AffineExpr> comps_;
};

std::ostream& operator<<(std::ostream& os, const AffinePoint& p);

}  // namespace systolize
