#include "symbolic/affine_expr.hpp"

#include <ostream>
#include <sstream>
#include <vector>

namespace systolize {

AffineExpr AffineExpr::term(const Symbol& s, Rational coeff) {
  AffineExpr e;
  if (!coeff.is_zero()) e.terms_[s] = std::move(coeff);
  return e;
}

Rational AffineExpr::coeff(const Symbol& s) const {
  auto it = terms_.find(s);
  return it == terms_.end() ? Rational(0) : it->second;
}

bool AffineExpr::is_coord_free() const noexcept {
  for (const auto& [sym, c] : terms_) {
    if (sym.kind() == SymbolKind::ProcessCoord) return false;
  }
  return true;
}

void AffineExpr::prune(const Symbol& s) {
  auto it = terms_.find(s);
  if (it != terms_.end() && it->second.is_zero()) terms_.erase(it);
}

AffineExpr AffineExpr::operator-() const {
  AffineExpr r;
  r.constant_ = -constant_;
  for (const auto& [sym, c] : terms_) r.terms_[sym] = -c;
  return r;
}

AffineExpr& AffineExpr::operator+=(const AffineExpr& o) {
  constant_ += o.constant_;
  for (const auto& [sym, c] : o.terms_) {
    terms_[sym] += c;
    prune(sym);
  }
  return *this;
}

AffineExpr& AffineExpr::operator-=(const AffineExpr& o) {
  constant_ -= o.constant_;
  for (const auto& [sym, c] : o.terms_) {
    terms_[sym] -= c;
    prune(sym);
  }
  return *this;
}

AffineExpr& AffineExpr::operator*=(const Rational& k) {
  if (k.is_zero()) {
    constant_ = Rational(0);
    terms_.clear();
    return *this;
  }
  constant_ *= k;
  for (auto& [sym, c] : terms_) c *= k;
  return *this;
}

AffineExpr AffineExpr::substituted(const Symbol& s, const AffineExpr& e) const {
  auto it = terms_.find(s);
  if (it == terms_.end()) return *this;
  Rational c = it->second;
  AffineExpr r = *this;
  r.terms_.erase(s);
  r += e * c;
  return r;
}

Rational AffineExpr::evaluate(const Env& env) const {
  Rational acc = constant_;
  for (const auto& [sym, c] : terms_) {
    auto it = env.find(sym.name());
    if (it == env.end()) {
      raise(ErrorKind::Validation,
            "unbound symbol '" + sym.name() + "' in " + to_string());
    }
    acc += c * it->second;
  }
  return acc;
}

std::string AffineExpr::to_string() const {
  if (terms_.empty()) return constant_.to_string();
  // Positive terms first so differences read naturally ("n - col" rather
  // than "-col + n"), preserving name order within each sign class.
  std::vector<std::pair<Symbol, Rational>> ordered;
  for (const auto& [sym, c] : terms_) {
    if (c.sign() > 0) ordered.emplace_back(sym, c);
  }
  for (const auto& [sym, c] : terms_) {
    if (c.sign() < 0) ordered.emplace_back(sym, c);
  }
  std::ostringstream os;
  bool first = true;
  for (const auto& [sym, c] : ordered) {
    if (first) {
      if (c == Rational(1)) {
        os << sym.name();
      } else if (c == Rational(-1)) {
        os << '-' << sym.name();
      } else {
        os << c.to_string() << '*' << sym.name();
      }
      first = false;
      continue;
    }
    if (c.sign() >= 0) {
      os << " + ";
      if (c == Rational(1)) {
        os << sym.name();
      } else {
        os << c.to_string() << '*' << sym.name();
      }
    } else {
      os << " - ";
      Rational a = c.abs();
      if (a == Rational(1)) {
        os << sym.name();
      } else {
        os << a.to_string() << '*' << sym.name();
      }
    }
  }
  if (!constant_.is_zero()) {
    if (constant_.sign() > 0) {
      os << " + " << constant_.to_string();
    } else {
      os << " - " << (-constant_).to_string();
    }
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const AffineExpr& e) {
  return os << e.to_string();
}

}  // namespace systolize
