#include "symbolic/affine_point.hpp"

#include <ostream>
#include <sstream>

namespace systolize {

AffinePoint::AffinePoint(const IntVec& v) {
  comps_.reserve(v.dim());
  for (std::size_t i = 0; i < v.dim(); ++i) {
    comps_.emplace_back(Rational(v[i]));
  }
}

void AffinePoint::require_same_dim(const AffinePoint& o) const {
  if (dim() != o.dim()) {
    raise(ErrorKind::Dimension, "AffinePoint dimension mismatch: " +
                                    std::to_string(dim()) + " vs " +
                                    std::to_string(o.dim()));
  }
}

AffinePoint AffinePoint::operator-() const {
  AffinePoint r = *this;
  for (AffineExpr& c : r.comps_) c = -c;
  return r;
}

AffinePoint& AffinePoint::operator+=(const AffinePoint& o) {
  require_same_dim(o);
  for (std::size_t i = 0; i < comps_.size(); ++i) comps_[i] += o.comps_[i];
  return *this;
}

AffinePoint& AffinePoint::operator-=(const AffinePoint& o) {
  require_same_dim(o);
  for (std::size_t i = 0; i < comps_.size(); ++i) comps_[i] -= o.comps_[i];
  return *this;
}

AffinePoint& AffinePoint::operator*=(const Rational& k) {
  for (AffineExpr& c : comps_) c *= k;
  return *this;
}

AffinePoint AffinePoint::plus_scaled(const AffineExpr& k,
                                     const IntVec& v) const {
  if (v.dim() != dim()) {
    raise(ErrorKind::Dimension, "plus_scaled dimension mismatch");
  }
  AffinePoint r = *this;
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    r.comps_[i] += k * Rational(v[i]);
  }
  return r;
}

AffineExpr AffinePoint::dot(const IntVec& v) const {
  if (v.dim() != dim()) raise(ErrorKind::Dimension, "dot dimension mismatch");
  AffineExpr acc;
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    acc += comps_[i] * Rational(v[i]);
  }
  return acc;
}

AffinePoint AffinePoint::applied(const IntMatrix& m) const {
  if (m.cols() != dim()) {
    raise(ErrorKind::Dimension, "matrix application dimension mismatch");
  }
  AffinePoint r(m.rows());
  for (std::size_t row = 0; row < m.rows(); ++row) {
    AffineExpr acc;
    for (std::size_t c = 0; c < dim(); ++c) {
      acc += comps_[c] * Rational(m.at(row, c));
    }
    r[row] = acc;
  }
  return r;
}

AffinePoint AffinePoint::applied(const RatMatrix& m) const {
  if (m.cols() != dim()) {
    raise(ErrorKind::Dimension, "matrix application dimension mismatch");
  }
  AffinePoint r(m.rows());
  for (std::size_t row = 0; row < m.rows(); ++row) {
    AffineExpr acc;
    for (std::size_t c = 0; c < dim(); ++c) {
      acc += comps_[c] * m.at(row, c);
    }
    r[row] = acc;
  }
  return r;
}

AffinePoint AffinePoint::substituted(const Symbol& s,
                                     const AffineExpr& e) const {
  AffinePoint r = *this;
  for (AffineExpr& c : r.comps_) c = c.substituted(s, e);
  return r;
}

IntVec AffinePoint::evaluate(const Env& env) const {
  IntVec r(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    Rational v = comps_[i].evaluate(env);
    if (!v.is_integer()) {
      raise(ErrorKind::NotRepresentable,
            "point component " + comps_[i].to_string() +
                " evaluates to non-integer " + v.to_string());
    }
    r[i] = v.to_integer();
  }
  return r;
}

std::string AffinePoint::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    if (i > 0) os << ", ";
    os << comps_[i].to_string();
  }
  os << ')';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const AffinePoint& p) {
  return os << p.to_string();
}

}  // namespace systolize
