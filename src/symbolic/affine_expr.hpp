// Affine expressions: rational-coefficient linear combinations of symbols
// plus a constant — the currency of every symbolic derivation in the scheme
// (loop bounds, PS basis, first/last, guards, soak/drain counts ...).
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "numeric/rational.hpp"
#include "symbolic/symbol.hpp"

namespace systolize {

/// A full binding of symbols (by name) to rational values, used when a
/// compiled program is instantiated at a concrete problem size / process.
using Env = std::map<std::string, Rational>;

class AffineExpr {
 public:
  AffineExpr() = default;
  AffineExpr(Rational constant) : constant_(std::move(constant)) {}  // NOLINT(google-explicit-constructor): constants promote freely
  AffineExpr(Int constant) : constant_(constant) {}                  // NOLINT(google-explicit-constructor)
  AffineExpr(const Symbol& s) { terms_[s] = Rational(1); }           // NOLINT(google-explicit-constructor)

  [[nodiscard]] static AffineExpr term(const Symbol& s, Rational coeff);

  [[nodiscard]] const Rational& constant() const noexcept {
    return constant_;
  }
  [[nodiscard]] Rational coeff(const Symbol& s) const;
  [[nodiscard]] const std::map<Symbol, Rational>& terms() const noexcept {
    return terms_;
  }

  [[nodiscard]] bool is_constant() const noexcept { return terms_.empty(); }
  [[nodiscard]] bool is_zero() const noexcept {
    return terms_.empty() && constant_.is_zero();
  }
  /// True when no ProcessCoord symbol occurs (i.e. expression depends only
  /// on the problem size).
  [[nodiscard]] bool is_coord_free() const noexcept;

  AffineExpr operator-() const;
  AffineExpr& operator+=(const AffineExpr& o);
  AffineExpr& operator-=(const AffineExpr& o);
  AffineExpr& operator*=(const Rational& k);

  friend AffineExpr operator+(AffineExpr a, const AffineExpr& b) {
    return a += b;
  }
  friend AffineExpr operator-(AffineExpr a, const AffineExpr& b) {
    return a -= b;
  }
  friend AffineExpr operator*(AffineExpr a, const Rational& k) {
    return a *= k;
  }
  friend AffineExpr operator*(const Rational& k, AffineExpr a) {
    return a *= k;
  }
  friend bool operator==(const AffineExpr&, const AffineExpr&) = default;

  /// Replace symbol s by expression e.
  [[nodiscard]] AffineExpr substituted(const Symbol& s,
                                       const AffineExpr& e) const;

  /// Evaluate under a full binding; throws Validation naming the first
  /// unbound symbol.
  [[nodiscard]] Rational evaluate(const Env& env) const;

  /// Human-readable form, e.g. "row - col + n", "2*n - 1", "0".
  [[nodiscard]] std::string to_string() const;

 private:
  void prune(const Symbol& s);

  Rational constant_;
  std::map<Symbol, Rational> terms_;  // nonzero coefficients only
};

std::ostream& operator<<(std::ostream& os, const AffineExpr& e);

}  // namespace systolize
