#include "symbolic/fourier_motzkin.hpp"

#include <set>
#include <vector>

namespace systolize {
namespace {

// Internal form: e >= 0 (strict=false) or e > 0 (strict=true). Fourier-
// Motzkin with strictness tracking is exact over the rationals.
struct Ineq {
  AffineExpr expr;
  bool strict = false;
};

std::vector<Ineq> gather(const Guard& guard, const Guard& assumptions) {
  std::vector<Ineq> sys;
  for (const Constraint& c : guard.constraints()) {
    sys.push_back({c.slack(), false});
  }
  for (const Constraint& c : assumptions.constraints()) {
    sys.push_back({c.slack(), false});
  }
  return sys;
}

/// Eliminate every symbol, then inspect the remaining constant
/// inequalities.
bool feasible(std::vector<Ineq> sys) {
  for (;;) {
    // Pick any symbol still occurring.
    const Symbol* var = nullptr;
    for (const Ineq& iq : sys) {
      if (!iq.expr.terms().empty()) {
        var = &iq.expr.terms().begin()->first;
        break;
      }
    }
    if (var == nullptr) break;
    Symbol v = *var;

    std::vector<Ineq> lowers;  // coeff > 0:  v >= -rest/coeff (or >)
    std::vector<Ineq> uppers;  // coeff < 0:  v <= ...
    std::vector<Ineq> rest;
    for (Ineq& iq : sys) {
      Rational c = iq.expr.coeff(v);
      if (c.is_zero()) {
        rest.push_back(std::move(iq));
      } else if (c.sign() > 0) {
        lowers.push_back(std::move(iq));
      } else {
        uppers.push_back(std::move(iq));
      }
    }
    // Combine each (lower, upper) pair: for  a*v + p >= 0 (a>0) and
    // b*v + q >= 0 (b<0):   (-b)*p + a*q >= 0  eliminates v.
    for (const Ineq& lo : lowers) {
      Rational a = lo.expr.coeff(v);
      for (const Ineq& up : uppers) {
        Rational b = up.expr.coeff(v);
        AffineExpr combined = lo.expr * (-b) + up.expr * a;
        // combined still contains v with coefficient a*(-b) + (-b)*... ;
        // remove it exactly by substituting 0 for the (now zero) coeff.
        combined = combined.substituted(v, AffineExpr(Rational(0)));
        rest.push_back({combined, lo.strict || up.strict});
      }
    }
    sys = std::move(rest);
  }
  for (const Ineq& iq : sys) {
    Int s = iq.expr.constant().sign();
    if (s < 0) return false;
    if (s == 0 && iq.strict) return false;
  }
  return true;
}

}  // namespace

bool is_feasible(const Guard& guard, const Guard& assumptions) {
  return feasible(gather(guard, assumptions));
}

bool implies(const Guard& guard, const Constraint& c,
             const Guard& assumptions) {
  // guard /\ assumptions /\ (lhs > rhs) infeasible?
  std::vector<Ineq> sys = gather(guard, assumptions);
  sys.push_back({c.lhs - c.rhs, true});  // lhs - rhs > 0
  return !feasible(std::move(sys));
}

Guard drop_redundant(const Guard& guard, const Guard& assumptions) {
  Guard simplified = guard.simplified();
  std::vector<Constraint> kept;
  const auto& cs = simplified.constraints();
  for (std::size_t i = 0; i < cs.size(); ++i) {
    // Does the rest (already-kept plus not-yet-examined) imply cs[i]?
    Guard rest;
    for (const Constraint& k : kept) rest.add(k);
    for (std::size_t j = i + 1; j < cs.size(); ++j) rest.add(cs[j]);
    if (!implies(rest, cs[i], assumptions)) kept.push_back(cs[i]);
  }
  return Guard(std::move(kept));
}

}  // namespace systolize
