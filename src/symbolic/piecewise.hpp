// Piecewise guarded values — the paper's  if g0 -> v0 [] g1 -> v1 [] ... fi
// alternatives, with an implicit "else -> null" for points covered by no
// guard (null processes / null communications).
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "symbolic/fourier_motzkin.hpp"
#include "symbolic/guard.hpp"

namespace systolize {

template <typename T>
struct Piece {
  Guard guard;
  T value;

  friend bool operator==(const Piece&, const Piece&) = default;
};

/// A guarded case analysis. Overlapping guards are permitted; the paper
/// notes overlaps only occur where the values agree (projections of points
/// on several faces), and tests verify this property on the catalog designs.
template <typename T>
class Piecewise {
 public:
  Piecewise() = default;
  explicit Piecewise(std::vector<Piece<T>> pieces)
      : pieces_(std::move(pieces)) {}
  /// A total, single-clause definition (the "simple place" fast path).
  explicit Piecewise(T value) {
    pieces_.push_back(Piece<T>{Guard::always(), std::move(value)});
  }

  [[nodiscard]] const std::vector<Piece<T>>& pieces() const noexcept {
    return pieces_;
  }
  [[nodiscard]] bool empty() const noexcept { return pieces_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return pieces_.size(); }

  void add(Guard guard, T value) {
    pieces_.push_back(Piece<T>{std::move(guard), std::move(value)});
  }

  /// First piece whose guard holds under env, or nullptr (the null case).
  [[nodiscard]] const T* select(const Env& env) const {
    for (const Piece<T>& p : pieces_) {
      if (p.guard.holds(env)) return &p.value;
    }
    return nullptr;
  }

  /// True iff some guard holds under env.
  [[nodiscard]] bool covers(const Env& env) const {
    return select(env) != nullptr;
  }

  /// Drop pieces whose guards are infeasible under the assumptions, and
  /// drop redundant constraints inside the surviving guards.
  [[nodiscard]] Piecewise pruned(const Guard& assumptions) const {
    Piecewise out;
    for (const Piece<T>& p : pieces_) {
      if (!is_feasible(p.guard, assumptions)) continue;
      out.add(drop_redundant(p.guard, assumptions), p.value);
    }
    return out;
  }

  /// Substitute a symbol in every guard and value (values must support
  /// substituted(), as AffineExpr and AffinePoint do).
  [[nodiscard]] Piecewise substituted(const Symbol& s,
                                      const AffineExpr& e) const
    requires requires(const T& t) { t.substituted(s, e); }
  {
    Piecewise out;
    for (const Piece<T>& p : pieces_) {
      out.add(p.guard.substituted(s, e), p.value.substituted(s, e));
    }
    return out;
  }

  /// Map every value through f, keeping guards.
  template <typename F>
  [[nodiscard]] auto mapped(F&& f) const {
    using U = decltype(f(std::declval<const T&>()));
    Piecewise<U> out;
    for (const Piece<T>& p : pieces_) out.add(p.guard, f(p.value));
    return out;
  }

  /// Pairwise product with another piecewise definition: each output piece
  /// conjoins one guard from each side (the paper's "derivation is per
  /// alternative", Sect. D.2.5/E.2.5). Infeasible combinations are pruned.
  template <typename U, typename F>
  [[nodiscard]] auto combined(const Piecewise<U>& o, F&& f,
                              const Guard& assumptions = Guard{}) const {
    using V = decltype(f(std::declval<const T&>(), std::declval<const U&>()));
    Piecewise<V> out;
    for (const Piece<T>& a : pieces_) {
      for (const Piece<U>& b : o.pieces()) {
        Guard g = a.guard.conjoined(b.guard);
        if (!is_feasible(g, assumptions)) continue;
        out.add(drop_redundant(g, assumptions), f(a.value, b.value));
      }
    }
    return out;
  }

  [[nodiscard]] std::string to_string(
      const std::function<std::string(const T&)>& show) const {
    std::ostringstream os;
    os << "if ";
    for (std::size_t i = 0; i < pieces_.size(); ++i) {
      if (i > 0) os << "\n[] ";
      os << pieces_[i].guard.to_string() << "  ->  " << show(pieces_[i].value);
    }
    os << "\nfi";
    return os.str();
  }

  friend bool operator==(const Piecewise&, const Piecewise&) = default;

 private:
  std::vector<Piece<T>> pieces_;
};

}  // namespace systolize
