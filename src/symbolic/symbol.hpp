// Symbols: the named unknowns scheme expressions are parameterized over.
//
// Two kinds exist (paper Sect. 3.1 and 4.1): problem-size variables (e.g.
// "n"), and process-space coordinates (e.g. "col", "row"). Everything the
// scheme derives is an affine expression over these.
#pragma once

#include <compare>
#include <iosfwd>
#include <string>

namespace systolize {

enum class SymbolKind {
  ProblemSize,   ///< appears in loop bounds; bound at instantiation time
  ProcessCoord,  ///< a coordinate of the process space PS
};

class Symbol {
 public:
  Symbol() = default;
  Symbol(std::string name, SymbolKind kind)
      : name_(std::move(name)), kind_(kind) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] SymbolKind kind() const noexcept { return kind_; }

  friend bool operator==(const Symbol& a, const Symbol& b) noexcept {
    return a.name_ == b.name_;
  }
  friend std::strong_ordering operator<=>(const Symbol& a,
                                          const Symbol& b) noexcept {
    return a.name_ <=> b.name_;
  }

 private:
  std::string name_;
  SymbolKind kind_ = SymbolKind::ProblemSize;
};

[[nodiscard]] Symbol size_symbol(std::string name);
[[nodiscard]] Symbol coord_symbol(std::string name);

/// Canonical process-coordinate name for dimension i: "col", "row", then
/// "y2", "y3", ... — matching the paper's appendices for 1-D and 2-D arrays.
[[nodiscard]] Symbol canonical_coord(std::size_t i);

std::ostream& operator<<(std::ostream& os, const Symbol& s);

}  // namespace systolize
