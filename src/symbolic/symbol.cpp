#include "symbolic/symbol.hpp"

#include <ostream>

namespace systolize {

Symbol size_symbol(std::string name) {
  return Symbol(std::move(name), SymbolKind::ProblemSize);
}

Symbol coord_symbol(std::string name) {
  return Symbol(std::move(name), SymbolKind::ProcessCoord);
}

Symbol canonical_coord(std::size_t i) {
  if (i == 0) return coord_symbol("col");
  if (i == 1) return coord_symbol("row");
  return coord_symbol("y" + std::to_string(i));
}

std::ostream& operator<<(std::ostream& os, const Symbol& s) {
  return os << s.name();
}

}  // namespace systolize
