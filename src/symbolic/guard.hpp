// Guards: conjunctions of affine inequalities, as in the paper's guarded
// alternatives (e.g. "0 <= row - col <= n  /\  0 <= -col <= n").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "symbolic/affine_expr.hpp"

namespace systolize {

/// One inequality lhs <= rhs between affine expressions.
struct Constraint {
  AffineExpr lhs;
  AffineExpr rhs;

  /// rhs - lhs (>= 0 iff the constraint holds).
  [[nodiscard]] AffineExpr slack() const { return rhs - lhs; }
  [[nodiscard]] bool holds(const Env& env) const;
  [[nodiscard]] Constraint substituted(const Symbol& s,
                                       const AffineExpr& e) const;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Constraint&, const Constraint&) = default;
};

/// Convenience: the paper's double inequality lo <= e <= hi.
[[nodiscard]] std::vector<Constraint> between(const AffineExpr& lo,
                                              const AffineExpr& e,
                                              const AffineExpr& hi);

class Guard {
 public:
  Guard() = default;  // empty conjunction == true
  explicit Guard(std::vector<Constraint> cs) : constraints_(std::move(cs)) {}

  [[nodiscard]] static Guard always();

  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }
  [[nodiscard]] bool is_trivially_true() const noexcept {
    return constraints_.empty();
  }

  Guard& add(Constraint c);
  Guard& add(const std::vector<Constraint>& cs);

  /// Conjunction of two guards.
  [[nodiscard]] Guard conjoined(const Guard& o) const;

  [[nodiscard]] bool holds(const Env& env) const;

  /// Drop constraints that are constant-true; throws Inconsistent if a
  /// constant-false constraint is present (callers prune those pieces).
  [[nodiscard]] Guard simplified() const;

  [[nodiscard]] Guard substituted(const Symbol& s, const AffineExpr& e) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Guard&, const Guard&) = default;

 private:
  std::vector<Constraint> constraints_;
};

std::ostream& operator<<(std::ostream& os, const Guard& g);

}  // namespace systolize
