// Fourier-Motzkin elimination: decide (rational) feasibility of a
// conjunction of affine inequalities.
//
// The scheme uses this to prune the sub-alternatives that the paper prunes
// by hand ("only one of the sub-alternatives has a guard that is consistent
// with that of its alternative", Sect. E.2.5). Rational feasibility is a
// sound over-approximation of integer feasibility: anything we prune is
// genuinely empty; anything we keep is at worst a null piece.
#pragma once

#include "symbolic/guard.hpp"

namespace systolize {

/// True iff the conjunction of `guard` and `assumptions` has a rational
/// solution. Assumptions typically encode problem-size positivity
/// (e.g. n >= 1).
[[nodiscard]] bool is_feasible(const Guard& guard,
                               const Guard& assumptions = Guard{});

/// True iff `guard` implies constraint `c` under `assumptions`
/// (i.e. guard /\ assumptions /\ not-c is infeasible). Used to drop
/// redundant constraints when simplifying piecewise definitions. The
/// negation of lhs <= rhs is approximated by rhs <= lhs - 1, which is exact
/// for integer-valued affine forms (all of ours are integer-valued on
/// integer points with integer coefficients).
[[nodiscard]] bool implies(const Guard& guard, const Constraint& c,
                           const Guard& assumptions = Guard{});

/// `guard` with constraints implied by the remaining ones removed.
[[nodiscard]] Guard drop_redundant(const Guard& guard,
                                   const Guard& assumptions = Guard{});

}  // namespace systolize
