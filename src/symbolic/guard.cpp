#include "symbolic/guard.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace systolize {

bool Constraint::holds(const Env& env) const {
  return slack().evaluate(env).sign() >= 0;
}

Constraint Constraint::substituted(const Symbol& s,
                                   const AffineExpr& e) const {
  return Constraint{lhs.substituted(s, e), rhs.substituted(s, e)};
}

std::string Constraint::to_string() const {
  return lhs.to_string() + " <= " + rhs.to_string();
}

std::vector<Constraint> between(const AffineExpr& lo, const AffineExpr& e,
                                const AffineExpr& hi) {
  return {Constraint{lo, e}, Constraint{e, hi}};
}

Guard Guard::always() { return Guard{}; }

Guard& Guard::add(Constraint c) {
  constraints_.push_back(std::move(c));
  return *this;
}

Guard& Guard::add(const std::vector<Constraint>& cs) {
  constraints_.insert(constraints_.end(), cs.begin(), cs.end());
  return *this;
}

Guard Guard::conjoined(const Guard& o) const {
  Guard g = *this;
  g.add(o.constraints_);
  return g;
}

bool Guard::holds(const Env& env) const {
  return std::all_of(constraints_.begin(), constraints_.end(),
                     [&env](const Constraint& c) { return c.holds(env); });
}

Guard Guard::simplified() const {
  Guard g;
  for (const Constraint& c : constraints_) {
    AffineExpr s = c.slack();
    if (s.is_constant()) {
      if (s.constant().sign() < 0) {
        raise(ErrorKind::Inconsistent,
              "guard contains constant-false constraint " + c.to_string());
      }
      continue;  // constant-true: drop
    }
    // Drop exact duplicates.
    if (std::find(g.constraints_.begin(), g.constraints_.end(), c) ==
        g.constraints_.end()) {
      g.constraints_.push_back(c);
    }
  }
  return g;
}

Guard Guard::substituted(const Symbol& s, const AffineExpr& e) const {
  Guard g;
  for (const Constraint& c : constraints_) g.add(c.substituted(s, e));
  return g;
}

std::string Guard::to_string() const {
  if (constraints_.empty()) return "true";
  std::ostringstream os;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i > 0) os << "  /\\  ";
    os << constraints_[i].to_string();
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Guard& g) {
  return os << g.to_string();
}

}  // namespace systolize
