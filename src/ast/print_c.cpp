// C-with-communication-directives printer (the Symult s2010 target of
// Sect. 8): braces, for-loops, and send()/recv() primitives.
#include "ast/print.hpp"
#include "ast/printer_base.hpp"

namespace systolize::ast {
namespace {

class CPrinter final : public detail::PrinterBase {
 public:
  void visit(const Seq& n) override {
    for (const NodePtr& item : n.items) item->accept(*this);
  }

  void visit(const Par& n) override {
    line("par {");
    indent();
    for (const NodePtr& item : n.items) item->accept(*this);
    dedent();
    line("}");
  }

  void visit(const ParFor& n) override {
    line("parfor (int " + n.var.name() + " = " + n.lo.to_string() + "; " +
         n.var.name() + " <= " + n.hi.to_string() + "; ++" + n.var.name() +
         ") {");
    indent();
    n.body->accept(*this);
    dedent();
    line("}");
  }

  void visit(const ChanDecl& n) override {
    std::string dims;
    for (const auto& [lo, hi] : n.ranges) {
      dims += "[" + lo.to_string() + " .. " + hi.to_string() + "]";
    }
    line("channel " + n.name + dims + ";");
  }

  void visit(const VarDecl& n) override {
    std::string s;
    for (std::size_t i = 0; i < n.names.size(); ++i) {
      if (i > 0) s += ", ";
      s += n.names[i];
    }
    line(n.type + " " + s + ";");
  }

  void visit(const Comment& n) override { line("/* " + n.text + " */"); }

  void visit(const Communicate& n) override {
    if (n.is_send) {
      line("send(" + show_chan(n.chan) + ", " + n.item + ");");
    } else {
      line("recv(" + show_chan(n.chan) + ", &" + n.item + ");");
    }
  }

  void visit(const IoRepeat& n) override {
    auto emit = [&](const AffinePoint& first, const AffinePoint& last) {
      line("/* elements " + first.to_string() + " .. " + last.to_string() +
           " by " + show_vec(n.increment) + " */");
      line("for (int k = 0; k < count_" + n.stream + "; ++k) {");
      indent();
      if (n.is_send) {
        line("send(" + show_chan(n.chan) + ", " + n.stream + "[k]);");
      } else {
        line("recv(" + show_chan(n.chan) + ", &" + n.stream + "[k]);");
      }
      dedent();
      line("}");
    };
    if (n.first.size() == 1 && n.first.pieces()[0].guard.is_trivially_true()) {
      emit(n.first.pieces()[0].value, n.last.pieces()[0].value);
      return;
    }
    for (std::size_t i = 0; i < n.first.size(); ++i) {
      line((i == 0 ? "if (" : "} else if (") +
           n.first.pieces()[i].guard.to_string() + ") {");
      indent();
      emit(n.first.pieces()[i].value,
           n.last.pieces()[std::min(i, n.last.size() - 1)].value);
      dedent();
    }
    line("} /* else: null process */");
  }

  void count_block(const std::string& head, const std::string& stream,
                   const Piecewise<AffineExpr>& count) {
    guarded(
        count,
        [&](const AffineExpr& e) {
          line("for (int k = 0; k < " + show_expr(e) + "; ++k) " + head +
               "(" + stream + ");");
        },
        "/* case split */", "/* or */", "/* end */");
  }

  void visit(const Pass& n) override { count_block("pass", n.stream, n.count); }

  void visit(const Load& n) override {
    line("recv_own(" + n.stream + ");");
    count_block("pass", n.stream, n.count);
  }

  void visit(const Recover& n) override {
    count_block("pass", n.stream, n.count);
    line("send_own(" + n.stream + ");");
  }

  void visit(const CompRepeat& n) override {
    line("/* repeater {first last " + show_vec(n.increment) + "} */");
    line("for (int step = 0; step < count; ++step) {");
    indent();
    n.body->accept(*this);
    dedent();
    line("}");
  }

  void visit(const BasicStatement& n) override {
    if (!n.receives.empty()) {
      line("par {");
      indent();
      for (const Communicate& c : n.receives) visit(c);
      dedent();
      line("}");
    }
    line(n.compute + ";");
    if (!n.sends.empty()) {
      line("par {");
      indent();
      for (const Communicate& c : n.sends) visit(c);
      dedent();
      line("}");
    }
  }

  void visit(const Program& n) override {
    line("/* systolic program: " + n.name + " (C rendering) */");
    for (const NodePtr& d : n.channel_decls) d->accept(*this);
    n.body->accept(*this);
  }
};

}  // namespace

std::string to_c(const Program& program) {
  CPrinter printer;
  program.accept(printer);
  return printer.str();
}

}  // namespace systolize::ast
