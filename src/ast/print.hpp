// Render a generated program in three concrete syntaxes. The abstract
// syntax is "easily translated to any distributed programming language"
// (Sect. 1); these printers demonstrate that claim for the paper's own
// notation (Appendix C), an occam-like syntax, and a C-with-communication-
// directives syntax (the two hand-translation targets of Sect. 8).
#pragma once

#include <string>

#include "ast/node.hpp"

namespace systolize::ast {

[[nodiscard]] std::string to_paper_notation(const Program& program);
[[nodiscard]] std::string to_occam(const Program& program);
[[nodiscard]] std::string to_c(const Program& program);

}  // namespace systolize::ast
