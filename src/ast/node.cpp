#include "ast/node.hpp"

namespace systolize::ast {

void Seq::accept(Visitor& v) const { v.visit(*this); }
void Par::accept(Visitor& v) const { v.visit(*this); }
void ParFor::accept(Visitor& v) const { v.visit(*this); }
void ChanDecl::accept(Visitor& v) const { v.visit(*this); }
void VarDecl::accept(Visitor& v) const { v.visit(*this); }
void Comment::accept(Visitor& v) const { v.visit(*this); }
void Communicate::accept(Visitor& v) const { v.visit(*this); }
void IoRepeat::accept(Visitor& v) const { v.visit(*this); }
void Pass::accept(Visitor& v) const { v.visit(*this); }
void Load::accept(Visitor& v) const { v.visit(*this); }
void Recover::accept(Visitor& v) const { v.visit(*this); }
void CompRepeat::accept(Visitor& v) const { v.visit(*this); }
void BasicStatement::accept(Visitor& v) const { v.visit(*this); }
void Program::accept(Visitor& v) const { v.visit(*this); }

}  // namespace systolize::ast
