// Abstract syntax for the generated systolic programs (paper Sect. 4 and
// Appendix C). The tree mirrors the structure of the final programs in
// Appendices D and E: channel declarations, then a par of input, buffer,
// computation and output process groups. Printers render it in paper
// notation, occam-like syntax, or C-like syntax.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "symbolic/affine_point.hpp"
#include "symbolic/piecewise.hpp"

namespace systolize::ast {

class Visitor;

struct Node {
  virtual ~Node() = default;
  virtual void accept(Visitor& v) const = 0;
};

using NodePtr = std::unique_ptr<Node>;

/// Sequential composition (vertical alignment in the paper's notation).
struct Seq final : Node {
  std::vector<NodePtr> items;
  void accept(Visitor& v) const override;
};

/// par ... end par.
struct Par final : Node {
  std::vector<NodePtr> items;
  void accept(Visitor& v) const override;
};

/// parfor var from lo to hi do ... end parfor.
struct ParFor final : Node {
  Symbol var;
  AffineExpr lo;
  AffineExpr hi;
  NodePtr body;
  void accept(Visitor& v) const override;
};

/// chan name[lo0..hi0, lo1..hi1, ...].
struct ChanDecl final : Node {
  std::string name;
  std::vector<std::pair<AffineExpr, AffineExpr>> ranges;
  void accept(Visitor& v) const override;
};

/// Local variable declarations, e.g. "int a, b, c".
struct VarDecl final : Node {
  std::string type;
  std::vector<std::string> names;
  void accept(Visitor& v) const override;
};

struct Comment final : Node {
  std::string text;
  void accept(Visitor& v) const override;
};

/// A channel reference chan[idx0, idx1, ...].
struct ChanRef {
  std::string chan;
  std::vector<AffineExpr> index;
};

/// send item to chan[...]  /  receive item from chan[...].
struct Communicate final : Node {
  bool is_send = false;
  std::string item;  ///< the local variable or stream name communicated
  ChanRef chan;
  void accept(Visitor& v) const override;
};

/// An i/o process repeater: send/receive s {first_s last_s increment_s}.
struct IoRepeat final : Node {
  bool is_send = false;
  std::string stream;
  Piecewise<AffinePoint> first;
  Piecewise<AffinePoint> last;
  IntVec increment;
  ChanRef chan;
  void accept(Visitor& v) const override;
};

/// pass s, count — forward `count` elements (Appendix C).
struct Pass final : Node {
  std::string stream;
  Piecewise<AffineExpr> count;
  void accept(Visitor& v) const override;
};

/// load s, count — receive own element, then pass `count` (Appendix C).
struct Load final : Node {
  std::string stream;
  Piecewise<AffineExpr> count;
  void accept(Visitor& v) const override;
};

/// recover s, count — pass `count`, then send own element (Appendix C).
struct Recover final : Node {
  std::string stream;
  Piecewise<AffineExpr> count;
  void accept(Visitor& v) const override;
};

/// The computation repeater {first last increment} wrapping the basic
/// statement.
struct CompRepeat final : Node {
  Piecewise<AffinePoint> first;
  Piecewise<AffinePoint> last;
  IntVec increment;
  NodePtr body;  ///< the basic statement
  void accept(Visitor& v) const override;
};

/// The basic statement: par receives, a computation, par sends.
struct BasicStatement final : Node {
  std::vector<Communicate> receives;
  std::string compute;  ///< e.g. "c := c + a * b"
  std::vector<Communicate> sends;
  void accept(Visitor& v) const override;
};

/// The whole program.
struct Program final : Node {
  std::string name;
  std::vector<NodePtr> channel_decls;
  NodePtr body;  ///< outermost par
  void accept(Visitor& v) const override;
};

class Visitor {
 public:
  virtual ~Visitor() = default;
  virtual void visit(const Seq&) = 0;
  virtual void visit(const Par&) = 0;
  virtual void visit(const ParFor&) = 0;
  virtual void visit(const ChanDecl&) = 0;
  virtual void visit(const VarDecl&) = 0;
  virtual void visit(const Comment&) = 0;
  virtual void visit(const Communicate&) = 0;
  virtual void visit(const IoRepeat&) = 0;
  virtual void visit(const Pass&) = 0;
  virtual void visit(const Load&) = 0;
  virtual void visit(const Recover&) = 0;
  virtual void visit(const CompRepeat&) = 0;
  virtual void visit(const BasicStatement&) = 0;
  virtual void visit(const Program&) = 0;
};

}  // namespace systolize::ast
