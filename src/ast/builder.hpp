// Build the abstract program tree from a compiled program — the shape of
// the final programs in Appendices D.1.7, D.2.7, E.1.7 and E.2.7.
#pragma once

#include "ast/node.hpp"
#include "scheme/types.hpp"

namespace systolize::ast {

[[nodiscard]] std::unique_ptr<Program> build_ast(
    const CompiledProgram& compiled, const LoopNest& nest);

}  // namespace systolize::ast
