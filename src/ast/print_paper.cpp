// Printer for the paper's own program notation (Appendix C / the final
// programs of Appendices D and E).
#include "ast/print.hpp"
#include "ast/printer_base.hpp"

namespace systolize::ast {
namespace {

class PaperPrinter final : public detail::PrinterBase {
 public:
  void visit(const Seq& n) override {
    for (const NodePtr& item : n.items) item->accept(*this);
  }

  void visit(const Par& n) override {
    line("par");
    indent();
    for (const NodePtr& item : n.items) item->accept(*this);
    dedent();
    line("end par");
  }

  void visit(const ParFor& n) override {
    line("parfor " + n.var.name() + " from " + n.lo.to_string() + " to " +
         n.hi.to_string() + " do");
    indent();
    n.body->accept(*this);
    dedent();
    line("end parfor");
  }

  void visit(const ChanDecl& n) override {
    std::string s = "chan " + n.name + "[";
    for (std::size_t i = 0; i < n.ranges.size(); ++i) {
      if (i > 0) s += ", ";
      s += n.ranges[i].first.to_string() + ".." +
           n.ranges[i].second.to_string();
    }
    line(s + "]");
  }

  void visit(const VarDecl& n) override {
    std::string s = n.type + " ";
    for (std::size_t i = 0; i < n.names.size(); ++i) {
      if (i > 0) s += ", ";
      s += n.names[i];
    }
    line(s);
  }

  void visit(const Comment& n) override {
    line("/******* " + n.text + " *******/");
  }

  void visit(const Communicate& n) override {
    if (n.is_send) {
      line("send " + n.item + " to " + show_chan(n.chan));
    } else {
      line("receive " + n.item + " from " + show_chan(n.chan));
    }
  }

  void visit(const IoRepeat& n) override {
    const std::string verb = n.is_send ? "send " : "receive ";
    const std::string link = n.is_send ? " to " : " from ";
    auto emit = [&](const std::string& first, const std::string& last) {
      line(verb + n.stream + " {" + first + " " + last + " " +
           show_vec(n.increment) + "}" + link + show_chan(n.chan));
    };
    // Zip first/last clause-wise when their guards match; otherwise print
    // each piecewise component separately.
    if (n.first.size() == n.last.size()) {
      bool zipped = true;
      for (std::size_t i = 0; i < n.first.size(); ++i) {
        if (!(n.first.pieces()[i].guard == n.last.pieces()[i].guard)) {
          zipped = false;
        }
      }
      if (zipped) {
        if (n.first.size() == 1 &&
            n.first.pieces()[0].guard.is_trivially_true()) {
          emit(show_point(n.first.pieces()[0].value),
               show_point(n.last.pieces()[0].value));
          return;
        }
        line("if");
        indent();
        for (std::size_t i = 0; i < n.first.size(); ++i) {
          line((i == 0 ? "" : "[] ") + n.first.pieces()[i].guard.to_string() +
               "  ->");
          indent();
          emit(show_point(n.first.pieces()[i].value),
               show_point(n.last.pieces()[i].value));
          dedent();
        }
        line("[] else -> null");
        dedent();
        line("fi");
        return;
      }
    }
    line("(first_" + n.stream + ", last_" + n.stream + ") :=");
    indent();
    guarded(
        n.first, [&](const AffinePoint& p) { line("first := " + show_point(p)); },
        "if", "[]", "fi");
    guarded(
        n.last, [&](const AffinePoint& p) { line("last := " + show_point(p)); },
        "if", "[]", "fi");
    dedent();
    emit("first_" + n.stream, "last_" + n.stream);
  }

  void visit(const Pass& n) override {
    guarded(
        n.count,
        [&](const AffineExpr& e) { line("pass " + n.stream + ", " +
                                        show_expr(e)); },
        "if", "[]", "fi");
  }

  void visit(const Load& n) override {
    guarded(
        n.count,
        [&](const AffineExpr& e) { line("load " + n.stream + ", " +
                                        show_expr(e)); },
        "if", "[]", "fi");
  }

  void visit(const Recover& n) override {
    guarded(
        n.count,
        [&](const AffineExpr& e) { line("recover " + n.stream + ", " +
                                        show_expr(e)); },
        "if", "[]", "fi");
  }

  void visit(const CompRepeat& n) override {
    auto show_pw = [&](const std::string& what,
                       const Piecewise<AffinePoint>& pw) {
      if (pw.size() == 1 && pw.pieces()[0].guard.is_trivially_true()) {
        line(what + " := " + show_point(pw.pieces()[0].value));
        return;
      }
      line(what + " := if");
      indent();
      for (std::size_t i = 0; i < pw.size(); ++i) {
        line((i == 0 ? "" : "[] ") + pw.pieces()[i].guard.to_string() +
             "  ->  " + show_point(pw.pieces()[i].value));
      }
      line("[] else -> null");
      dedent();
      line("fi");
    };
    show_pw("first", n.first);
    show_pw("last", n.last);
    line("{first last " + show_vec(n.increment) + "}:");
    indent();
    n.body->accept(*this);
    dedent();
  }

  void visit(const BasicStatement& n) override {
    if (!n.receives.empty()) {
      line("par");
      indent();
      for (const Communicate& c : n.receives) visit(c);
      dedent();
      line("end par");
    }
    line(n.compute);
    if (!n.sends.empty()) {
      line("par");
      indent();
      for (const Communicate& c : n.sends) visit(c);
      dedent();
      line("end par");
    }
  }

  void visit(const Program& n) override {
    line("/* systolic program: " + n.name + " */");
    for (const NodePtr& d : n.channel_decls) d->accept(*this);
    n.body->accept(*this);
  }
};

}  // namespace

std::string to_paper_notation(const Program& program) {
  PaperPrinter printer;
  program.accept(printer);
  return printer.str();
}

}  // namespace systolize::ast
