// occam-like printer (one of the two hand-translation targets of Sect. 8:
// the transputer experiments). Indentation-structured SEQ/PAR with
// `chan ! value` / `chan ? var` communications and replicated PAR.
#include "ast/print.hpp"
#include "ast/printer_base.hpp"

namespace systolize::ast {
namespace {

class OccamPrinter final : public detail::PrinterBase {
 public:
  void visit(const Seq& n) override {
    line("SEQ");
    indent();
    for (const NodePtr& item : n.items) item->accept(*this);
    dedent();
  }

  void visit(const Par& n) override {
    line("PAR");
    indent();
    for (const NodePtr& item : n.items) item->accept(*this);
    dedent();
  }

  void visit(const ParFor& n) override {
    // occam counts loop steps rather than bounds (Sect. 7.2.2 remark):
    // PAR var = lo FOR (hi - lo + 1).
    AffineExpr steps = n.hi - n.lo + AffineExpr(1);
    line("PAR " + n.var.name() + " = " + n.lo.to_string() + " FOR " +
         steps.to_string());
    indent();
    n.body->accept(*this);
    dedent();
  }

  void visit(const ChanDecl& n) override {
    std::string dims;
    for (const auto& [lo, hi] : n.ranges) {
      dims += "[" + (hi - lo + AffineExpr(1)).to_string() + "]";
    }
    line(dims + "CHAN OF INT " + n.name + " :");
  }

  void visit(const VarDecl& n) override {
    std::string s;
    for (std::size_t i = 0; i < n.names.size(); ++i) {
      if (i > 0) s += ", ";
      s += n.names[i];
    }
    line("INT " + s + " :");
  }

  void visit(const Comment& n) override { line("-- " + n.text); }

  void visit(const Communicate& n) override {
    if (n.is_send) {
      line(show_chan(n.chan) + " ! " + n.item);
    } else {
      line(show_chan(n.chan) + " ? " + n.item);
    }
  }

  void visit(const IoRepeat& n) override {
    auto emit = [&](const AffinePoint& first, const AffinePoint& last) {
      (void)last;
      line("SEQ k = 0 FOR count." + n.stream);
      indent();
      line("-- element " + first.to_string() + " + k * " +
           show_vec(n.increment));
      if (n.is_send) {
        line(show_chan(n.chan) + " ! " + n.stream + "[k]");
      } else {
        line(show_chan(n.chan) + " ? " + n.stream + "[k]");
      }
      dedent();
    };
    if (n.first.size() == 1 && n.first.pieces()[0].guard.is_trivially_true()) {
      emit(n.first.pieces()[0].value, n.last.pieces()[0].value);
      return;
    }
    line("IF");
    indent();
    for (std::size_t i = 0; i < n.first.size(); ++i) {
      line(n.first.pieces()[i].guard.to_string());
      indent();
      emit(n.first.pieces()[i].value,
           n.last.pieces()[std::min(i, n.last.size() - 1)].value);
      dedent();
    }
    line("TRUE");
    indent();
    line("SKIP  -- null process");
    dedent();
    dedent();
  }

  void pass_like(const std::string& verb, const std::string& stream,
                 const Piecewise<AffineExpr>& count) {
    guarded(
        count,
        [&](const AffineExpr& e) {
          line("SEQ k = 0 FOR " + show_expr(e) + "  -- " + verb + " " +
               stream);
          indent();
          line(stream + ".in ? tmp");
          line(stream + ".out ! tmp");
          dedent();
        },
        "IF", "", "-- end IF");
  }

  void visit(const Pass& n) override { pass_like("pass", n.stream, n.count); }

  void visit(const Load& n) override {
    line(n.stream + ".in ? " + n.stream + "  -- load own element");
    pass_like("load-pass", n.stream, n.count);
  }

  void visit(const Recover& n) override {
    pass_like("recover-pass", n.stream, n.count);
    line(n.stream + ".out ! " + n.stream + "  -- recover own element");
  }

  void visit(const CompRepeat& n) override {
    line("SEQ step = 0 FOR count  -- repeater {first last " +
         show_vec(n.increment) + "}");
    indent();
    n.body->accept(*this);
    dedent();
  }

  void visit(const BasicStatement& n) override {
    if (!n.receives.empty()) {
      line("PAR");
      indent();
      for (const Communicate& c : n.receives) visit(c);
      dedent();
    }
    line(n.compute);
    if (!n.sends.empty()) {
      line("PAR");
      indent();
      for (const Communicate& c : n.sends) visit(c);
      dedent();
    }
  }

  void visit(const Program& n) override {
    line("-- systolic program: " + n.name + " (occam rendering)");
    for (const NodePtr& d : n.channel_decls) d->accept(*this);
    n.body->accept(*this);
  }
};

}  // namespace

std::string to_occam(const Program& program) {
  OccamPrinter printer;
  program.accept(printer);
  return printer.str();
}

}  // namespace systolize::ast
