#include "ast/builder.hpp"

#include "scheme/first_last.hpp"

namespace systolize::ast {
namespace {

/// Wrap `body` in parfor loops over the given coordinate dimensions.
NodePtr wrap_parfors(const CompiledProgram& c,
                     const std::vector<std::size_t>& dims, NodePtr body) {
  NodePtr node = std::move(body);
  for (auto it = dims.rbegin(); it != dims.rend(); ++it) {
    auto pf = std::make_unique<ParFor>();
    pf->var = c.coords[*it];
    pf->lo = c.ps.min[*it];
    pf->hi = c.ps.max[*it];
    pf->body = std::move(node);
    node = std::move(pf);
  }
  return node;
}

/// Channel index of the process at `coords` (symbolic), optionally offset
/// by the stream direction (the "send side" of the hop).
std::vector<AffineExpr> chan_index(const CompiledProgram& c,
                                   const IntVec* offset) {
  std::vector<AffineExpr> idx;
  for (std::size_t i = 0; i < c.coords.size(); ++i) {
    AffineExpr e(c.coords[i]);
    if (offset != nullptr) e += AffineExpr(Rational((*offset)[i]));
    idx.push_back(std::move(e));
  }
  return idx;
}

/// One i/o process group (input or output) for a stream boundary set.
NodePtr build_io_group(const CompiledProgram& c, const StreamPlan& plan,
                       const IoProcessSet& set) {
  const std::size_t dim = set.dim;
  const AffineExpr boundary = set.at_min ? c.ps.min[dim] : c.ps.max[dim];

  auto io = std::make_unique<IoRepeat>();
  io->is_send = set.is_input;
  io->stream = plan.name;
  io->first = plan.io.first_s.substituted(c.coords[dim], boundary);
  io->last = plan.io.last_s.substituted(c.coords[dim], boundary);
  io->increment = plan.io.increment_s;
  io->chan.chan = plan.name + "_chan";
  // Inputs feed the boundary process's own channel; outputs read the
  // channel one hop beyond the opposite boundary.
  const IntVec* offset = set.is_input ? nullptr : &plan.motion.direction;
  io->chan.index = chan_index(c, offset);
  io->chan.index[dim] = boundary;
  if (!set.is_input && plan.motion.direction[dim] != 0) {
    io->chan.index[dim] += AffineExpr(Rational(plan.motion.direction[dim]));
  }

  std::vector<std::size_t> free_dims;
  for (std::size_t j = 0; j < c.coords.size(); ++j) {
    if (j != dim) free_dims.push_back(j);
  }
  NodePtr body = std::move(io);
  if (!set.excluded.empty()) {
    auto seq = std::make_unique<Seq>();
    std::string dims_text;
    for (const BoundaryRef& ref : set.excluded) {
      if (!dims_text.empty()) dims_text += ", ";
      dims_text += c.coords[ref.dim].name() + std::string(" ") +
                   (ref.at_min ? "min" : "max");
    }
    auto note = std::make_unique<Comment>();
    note->text = "duplicates on the " + dims_text + " boundaries omitted";
    seq->items.push_back(std::move(note));
    seq->items.push_back(std::move(body));
    body = std::move(seq);
  }
  return wrap_parfors(c, free_dims, std::move(body));
}

NodePtr build_computation_group(const CompiledProgram& c,
                                const LoopNest& nest) {
  auto seq = std::make_unique<Seq>();

  auto decl = std::make_unique<VarDecl>();
  decl->type = "int";
  for (const StreamPlan& plan : c.streams) decl->names.push_back(plan.name);
  seq->items.push_back(std::move(decl));

  // Prologue: loads then soaks (phase order of D.1.7).
  for (const StreamPlan& plan : c.streams) {
    if (!plan.motion.stationary) continue;
    auto load = std::make_unique<Load>();
    load->stream = plan.name;
    load->count = plan.drain;  // loading passes = drain_s (Sect. 6.5)
    seq->items.push_back(std::move(load));
  }
  for (const StreamPlan& plan : c.streams) {
    if (plan.motion.stationary) continue;
    auto soak = std::make_unique<Pass>();
    soak->stream = plan.name;
    soak->count = plan.soak;
    seq->items.push_back(std::move(soak));
  }

  // The repeater with the basic statement.
  auto rep = std::make_unique<CompRepeat>();
  rep->first = c.repeater.first;
  rep->last = c.repeater.last;
  rep->increment = c.repeater.increment;
  auto stmt = std::make_unique<BasicStatement>();
  stmt->compute = nest.body_text().empty() ? "<basic statement>"
                                           : nest.body_text();
  for (const StreamPlan& plan : c.streams) {
    if (plan.motion.stationary) continue;
    Communicate recv;
    recv.is_send = false;
    recv.item = plan.name;
    recv.chan.chan = plan.name + "_chan";
    recv.chan.index = chan_index(c, nullptr);
    stmt->receives.push_back(std::move(recv));
    Communicate send;
    send.is_send = true;
    send.item = plan.name;
    send.chan.chan = plan.name + "_chan";
    send.chan.index = chan_index(c, &plan.motion.direction);
    stmt->sends.push_back(std::move(send));
  }
  rep->body = std::move(stmt);
  seq->items.push_back(std::move(rep));

  // Epilogue: drains then recoveries.
  for (const StreamPlan& plan : c.streams) {
    if (plan.motion.stationary) continue;
    auto drain = std::make_unique<Pass>();
    drain->stream = plan.name;
    drain->count = plan.drain;
    seq->items.push_back(std::move(drain));
  }
  for (const StreamPlan& plan : c.streams) {
    if (!plan.motion.stationary) continue;
    auto rec = std::make_unique<Recover>();
    rec->stream = plan.name;
    rec->count = plan.soak;  // recovery passes = soak_s (Sect. 6.5)
    seq->items.push_back(std::move(rec));
  }

  std::vector<std::size_t> dims;
  for (std::size_t j = 0; j < c.coords.size(); ++j) dims.push_back(j);
  return wrap_parfors(c, dims, std::move(seq));
}

/// Buffer process group: internal buffers for fractional flows and the
/// external buffers of PS \ CS (each passes the whole pipeline, Eq. 10).
NodePtr build_buffer_group(const CompiledProgram& c, bool* any) {
  auto seq = std::make_unique<Seq>();
  *any = false;
  for (const StreamPlan& plan : c.streams) {
    if (plan.motion.denominator > 1) {
      *any = true;
      auto note = std::make_unique<Comment>();
      note->text =
          "stream " + plan.name + " has flow denominator " +
          std::to_string(plan.motion.denominator) + ": " +
          std::to_string(plan.motion.denominator - 1) +
          " interposed buffer(s) per hop, each passing the whole pipeline";
      seq->items.push_back(std::move(note));
      auto pass = std::make_unique<Pass>();
      pass->stream = plan.name + "_buff";
      pass->count = plan.io.count_s;
      seq->items.push_back(std::move(pass));
    }
  }
  if (!*any) return nullptr;
  std::vector<std::size_t> dims;
  for (std::size_t j = 0; j < c.coords.size(); ++j) dims.push_back(j);
  return wrap_parfors(c, dims, std::move(seq));
}

NodePtr build_external_buffer_group(const CompiledProgram& c, bool* any) {
  // External buffers exist only when some point of the PS box escapes
  // every clause guard of `first` (decided exactly; a guarded `first`
  // alone does not imply PS != CS — cf. D.2, whose two clauses tile the
  // whole array).
  *any = !cs_equals_ps(c.repeater, c.assumptions);
  if (!*any) return nullptr;
  auto seq = std::make_unique<Seq>();
  auto note = std::make_unique<Comment>();
  note->text =
      "points where no alternative of `first` holds are outside CS: they "
      "pass along every pipeline element (Equation 10)";
  seq->items.push_back(std::move(note));
  for (const StreamPlan& plan : c.streams) {
    auto pass = std::make_unique<Pass>();
    pass->stream = plan.name;
    pass->count = plan.io.count_s;
    seq->items.push_back(std::move(pass));
  }
  std::vector<std::size_t> dims;
  for (std::size_t j = 0; j < c.coords.size(); ++j) dims.push_back(j);
  return wrap_parfors(c, dims, std::move(seq));
}

}  // namespace

std::unique_ptr<Program> build_ast(const CompiledProgram& compiled,
                                   const LoopNest& nest) {
  auto prog = std::make_unique<Program>();
  prog->name = compiled.name;

  // Channel declarations: the process grid extended one hop beyond the
  // downstream boundary of each stream (cf. a_chan[0..n+1] in D.1.7 and
  // c_chan[-(n+1)..n, ...] in E.2.7).
  for (const StreamPlan& plan : compiled.streams) {
    auto decl = std::make_unique<ChanDecl>();
    decl->name = plan.name + "_chan";
    for (std::size_t i = 0; i < compiled.coords.size(); ++i) {
      AffineExpr lo = compiled.ps.min[i];
      AffineExpr hi = compiled.ps.max[i];
      if (plan.motion.direction[i] > 0) {
        hi += AffineExpr(Rational(plan.motion.direction[i]));
      } else if (plan.motion.direction[i] < 0) {
        lo += AffineExpr(Rational(plan.motion.direction[i]));
      }
      decl->ranges.emplace_back(std::move(lo), std::move(hi));
    }
    prog->channel_decls.push_back(std::move(decl));
    if (plan.motion.denominator > 1) {
      auto buff = std::make_unique<ChanDecl>();
      buff->name = plan.name + "_buff";
      for (std::size_t i = 0; i < compiled.coords.size(); ++i) {
        buff->ranges.emplace_back(compiled.ps.min[i], compiled.ps.max[i]);
      }
      prog->channel_decls.push_back(std::move(buff));
    }
  }

  auto par = std::make_unique<Par>();

  auto comment = [&par](std::string text) {
    auto c = std::make_unique<Comment>();
    c->text = std::move(text);
    par->items.push_back(std::move(c));
  };

  comment("Input Processes");
  for (const StreamPlan& plan : compiled.streams) {
    for (const IoProcessSet& set : plan.io_sets) {
      if (!set.is_input) continue;
      par->items.push_back(build_io_group(compiled, plan, set));
    }
  }

  bool any_internal = false;
  NodePtr internal = build_buffer_group(compiled, &any_internal);
  bool any_external = false;
  NodePtr external = build_external_buffer_group(compiled, &any_external);
  if (any_internal || any_external) {
    comment("Buffer Processes");
    if (any_internal) par->items.push_back(std::move(internal));
    if (any_external) par->items.push_back(std::move(external));
  }

  comment("Computation Processes");
  par->items.push_back(build_computation_group(compiled, nest));

  comment("Output Processes");
  for (const StreamPlan& plan : compiled.streams) {
    for (const IoProcessSet& set : plan.io_sets) {
      if (set.is_input) continue;
      par->items.push_back(build_io_group(compiled, plan, set));
    }
  }

  prog->body = std::move(par);
  return prog;
}

}  // namespace systolize::ast
