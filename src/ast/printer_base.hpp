// Internal shared machinery for the concrete-syntax printers.
#pragma once

#include <sstream>

#include "ast/node.hpp"

namespace systolize::ast::detail {

class PrinterBase : public Visitor {
 public:
  [[nodiscard]] std::string str() const { return out_.str(); }

 protected:
  void line(const std::string& text) {
    for (int i = 0; i < indent_; ++i) out_ << "  ";
    out_ << text << '\n';
  }
  void indent() { ++indent_; }
  void dedent() { --indent_; }

  static std::string show_point(const AffinePoint& p) { return p.to_string(); }
  static std::string show_expr(const AffineExpr& e) { return e.to_string(); }

  static std::string show_vec(const IntVec& v) { return v.to_string(); }

  static std::string show_chan(const ChanRef& c) {
    std::string s = c.chan + "[";
    for (std::size_t i = 0; i < c.index.size(); ++i) {
      if (i > 0) s += ", ";
      s += c.index[i].to_string();
    }
    return s + "]";
  }

  /// Print a guarded alternative set with a per-piece emitter; emits the
  /// single value inline when the definition is total.
  template <typename T, typename F>
  void guarded(const Piecewise<T>& pw, F&& emit_value,
               const std::string& if_kw, const std::string& alt_kw,
               const std::string& fi_kw) {
    if (pw.size() == 1 && pw.pieces()[0].guard.is_trivially_true()) {
      emit_value(pw.pieces()[0].value);
      return;
    }
    line(if_kw);
    indent();
    for (std::size_t i = 0; i < pw.size(); ++i) {
      const auto& piece = pw.pieces()[i];
      line((i == 0 ? "" : alt_kw + " ") + piece.guard.to_string() + "  ->");
      indent();
      emit_value(piece.value);
      dedent();
    }
    dedent();
    line(fi_kw);
  }

  std::ostringstream out_;
  int indent_ = 0;
};

}  // namespace systolize::ast::detail
