#include "baseline/sequential.hpp"

namespace systolize {

void run_sequential(const LoopNest& nest, const Env& env,
                    IndexedStore& store) {
  for (const IntVec& x : nest.enumerate_index_space(env)) {
    std::map<std::string, Value> vals;
    for (const Stream& s : nest.streams()) {
      vals[s.name()] = store.get(s.name(), s.element_of(x));
    }
    nest.body()(x, vals);
    for (const Stream& s : nest.streams()) {
      if (s.access() == StreamAccess::Update) {
        store.set(s.name(), s.element_of(x), vals.at(s.name()));
      }
    }
  }
}

IndexedStore make_initial_store(
    const LoopNest& nest, const Env& env,
    const std::function<Value(const std::string&, const IntVec&)>& init) {
  IndexedStore store;
  for (const Stream& s : nest.streams()) {
    store.fill(s, env, [&](const IntVec& p) {
      return s.access() == StreamAccess::Update ? 0 : init(s.name(), p);
    });
  }
  return store;
}

}  // namespace systolize
