// Run-time generation baseline (the far end of the Sect.-8 spectrum):
// determine every process's statements, pipelines and propagation counts by
// scanning the concrete index space, exactly as a process would at run
// time from the loop bounds and its own coordinates.
//
// This doubles as the *enumeration oracle*: property tests check that the
// compile-time symbolic scheme evaluates to these brute-force answers at
// every process and problem size, and the generation-spectrum bench
// measures its O(|IS|) per-process cost against the scheme's O(1).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "systolic/array_spec.hpp"

namespace systolize {

class EnumerationOracle {
 public:
  /// A process's chord: its statement sequence summarized by endpoints.
  struct Chord {
    IntVec first;  ///< statement with minimal step
    IntVec last;   ///< statement with maximal step
    Int count = 0;
  };

  /// One stream pipeline: ordered element identities.
  struct Pipe {
    std::vector<IntVec> elems;  ///< ordered by increment_s . w
    [[nodiscard]] const IntVec& first_s() const { return elems.front(); }
    [[nodiscard]] const IntVec& last_s() const { return elems.back(); }
    [[nodiscard]] Int count() const {
      return static_cast<Int>(elems.size());
    }
  };

  EnumerationOracle(const LoopNest& nest, const ArraySpec& spec,
                    const Env& env);

  [[nodiscard]] const IntVec& ps_min() const noexcept { return ps_min_; }
  [[nodiscard]] const IntVec& ps_max() const noexcept { return ps_max_; }
  [[nodiscard]] const IntVec& increment() const noexcept { return increment_; }

  /// Every point of the (box) process space.
  [[nodiscard]] std::vector<IntVec> ps_points() const;

  [[nodiscard]] bool in_computation_space(const IntVec& y) const;
  /// Chord of a computation-space point; throws for buffer points.
  [[nodiscard]] const Chord& chord_at(const IntVec& y) const;

  [[nodiscard]] const IntVec& increment_s(const std::string& stream) const;

  /// The pipeline of `stream` through process y; nullopt when no element
  /// of the stream crosses y (a null pipe).
  [[nodiscard]] std::optional<Pipe> pipe_at(const std::string& stream,
                                            const IntVec& y) const;

  /// Soak / drain counts (Eqs. 8/9) for a computation-space point.
  [[nodiscard]] Int soak_at(const std::string& stream, const IntVec& y) const;
  [[nodiscard]] Int drain_at(const std::string& stream, const IntVec& y) const;

 private:
  struct StreamData {
    IntVec direction;     ///< pipe direction in PS
    IntVec increment_s;   ///< element ordering vector in VS
    IntMatrix index_map;  ///< M.s, to find the element a statement uses
    /// pipes keyed by the most-upstream box point of their line
    std::map<IntVec, Pipe, IntVecLess> pipes;
  };

  /// Most-upstream point of the line through y along `direction` that is
  /// still inside the PS box — the canonical pipe key.
  [[nodiscard]] IntVec anchor(const IntVec& y, const IntVec& direction) const;

  [[nodiscard]] const StreamData& stream_data(const std::string& name) const;

  IntVec ps_min_;
  IntVec ps_max_;
  IntVec increment_;
  std::map<IntVec, Chord, IntVecLess> chords_;
  std::map<std::string, StreamData> streams_;
};

}  // namespace systolize
