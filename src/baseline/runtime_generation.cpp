#include "baseline/runtime_generation.hpp"

#include <algorithm>

#include "scheme/increment.hpp"
#include "scheme/io_comm.hpp"

namespace systolize {
namespace {

bool in_box(const IntVec& y, const IntVec& lo, const IntVec& hi) {
  for (std::size_t i = 0; i < y.dim(); ++i) {
    if (y[i] < lo[i] || y[i] > hi[i]) return false;
  }
  return true;
}

}  // namespace

IntVec EnumerationOracle::anchor(const IntVec& y,
                                 const IntVec& direction) const {
  IntVec a = y;
  for (;;) {
    IntVec prev = a - direction;
    if (!in_box(prev, ps_min_, ps_max_)) return a;
    a = prev;
  }
}

EnumerationOracle::EnumerationOracle(const LoopNest& nest,
                                     const ArraySpec& spec, const Env& env) {
  const StepFunction& step = spec.step();
  const PlaceFunction& place = spec.place();
  increment_ = derive_increment(step, place);

  std::vector<IntVec> index_space = nest.enumerate_index_space(env);

  // Group statements into chords and grow the PS box.
  std::map<IntVec, std::vector<IntVec>, IntVecLess> by_place;
  for (const IntVec& x : index_space) {
    IntVec y = place.apply(x);
    if (by_place.empty()) {
      ps_min_ = y;
      ps_max_ = y;
    } else {
      for (std::size_t i = 0; i < y.dim(); ++i) {
        ps_min_[i] = std::min(ps_min_[i], y[i]);
        ps_max_[i] = std::max(ps_max_[i], y[i]);
      }
    }
    by_place[y].push_back(x);
  }
  for (auto& [y, xs] : by_place) {
    std::sort(xs.begin(), xs.end(),
              [&step](const IntVec& a, const IntVec& b) {
                return step.apply(a) < step.apply(b);
              });
    chords_[y] = Chord{xs.front(), xs.back(), static_cast<Int>(xs.size())};
  }

  // Per stream: pipelines keyed by the anchor of their carrier line.
  for (const Stream& s : nest.streams()) {
    StreamMotion motion = spec.motion_of(s);
    StreamData data;
    data.direction = motion.direction;
    data.increment_s =
        motion.stationary
            ? stationary_element_increment(s, place, motion.direction,
                                           increment_)
            : s.index_map().apply(increment_);
    data.index_map = s.index_map();

    std::map<IntVec, std::set<IntVec, IntVecLess>, IntVecLess> elems;
    for (const IntVec& x : index_space) {
      IntVec key = anchor(place.apply(x), data.direction);
      elems[key].insert(s.element_of(x));
    }
    for (auto& [key, set] : elems) {
      Pipe pipe;
      pipe.elems.assign(set.begin(), set.end());
      std::sort(pipe.elems.begin(), pipe.elems.end(),
                [&data](const IntVec& a, const IntVec& b) {
                  return data.increment_s.dot(a) < data.increment_s.dot(b);
                });
      data.pipes[key] = std::move(pipe);
    }
    streams_[s.name()] = std::move(data);
  }
}

std::vector<IntVec> EnumerationOracle::ps_points() const {
  std::vector<IntVec> points;
  IntVec y = ps_min_;
  for (;;) {
    points.push_back(y);
    std::size_t i = y.dim();
    while (i > 0) {
      --i;
      if (++y[i] <= ps_max_[i]) break;
      y[i] = ps_min_[i];
      if (i == 0) return points;
    }
  }
}

bool EnumerationOracle::in_computation_space(const IntVec& y) const {
  return chords_.contains(y);
}

const EnumerationOracle::Chord& EnumerationOracle::chord_at(
    const IntVec& y) const {
  auto it = chords_.find(y);
  if (it == chords_.end()) {
    raise(ErrorKind::Validation,
          "process " + y.to_string() + " is not in the computation space");
  }
  return it->second;
}

const EnumerationOracle::StreamData& EnumerationOracle::stream_data(
    const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    raise(ErrorKind::Validation, "oracle has no stream '" + name + "'");
  }
  return it->second;
}

const IntVec& EnumerationOracle::increment_s(const std::string& stream) const {
  return stream_data(stream).increment_s;
}

std::optional<EnumerationOracle::Pipe> EnumerationOracle::pipe_at(
    const std::string& stream, const IntVec& y) const {
  const StreamData& data = stream_data(stream);
  auto it = data.pipes.find(anchor(y, data.direction));
  if (it == data.pipes.end()) return std::nullopt;
  return it->second;
}

Int EnumerationOracle::soak_at(const std::string& stream,
                               const IntVec& y) const {
  const StreamData& data = stream_data(stream);
  const Chord& chord = chord_at(y);
  auto pipe = pipe_at(stream, y);
  if (!pipe.has_value()) {
    raise(ErrorKind::Validation,
          "no pipe of '" + stream + "' crosses " + y.to_string());
  }
  // Elements arriving before the first one this process uses (Sect. 6.5):
  // count w with increment_s . w < increment_s . M.(first).
  Int threshold = data.increment_s.dot(data.index_map.apply(chord.first));
  Int count = 0;
  for (const IntVec& w : pipe->elems) {
    if (data.increment_s.dot(w) < threshold) ++count;
  }
  return count;
}

Int EnumerationOracle::drain_at(const std::string& stream,
                                const IntVec& y) const {
  const StreamData& data = stream_data(stream);
  const Chord& chord = chord_at(y);
  auto pipe = pipe_at(stream, y);
  if (!pipe.has_value()) {
    raise(ErrorKind::Validation,
          "no pipe of '" + stream + "' crosses " + y.to_string());
  }
  Int threshold = data.increment_s.dot(data.index_map.apply(chord.last));
  Int count = 0;
  for (const IntVec& w : pipe->elems) {
    if (data.increment_s.dot(w) > threshold) ++count;
  }
  return count;
}

}  // namespace systolize
