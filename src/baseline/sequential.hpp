// Ground truth: execute the source program sequentially on the host store.
#pragma once

#include "runtime/host.hpp"
#include "systolic/step_place.hpp"

namespace systolize {

/// Run the loop nest in its sequential order (steps honoured) at a
/// concrete problem size, reading and updating `store` in place.
void run_sequential(const LoopNest& nest, const Env& env, IndexedStore& store);

/// Convenience: a store with every Read stream filled by `init` and every
/// Update stream zero-initialized over its domain.
[[nodiscard]] IndexedStore make_initial_store(
    const LoopNest& nest, const Env& env,
    const std::function<Value(const std::string&, const IntVec&)>& init);

}  // namespace systolize
