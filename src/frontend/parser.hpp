// Parser for the .sa design description language: a textual front end for
// (source program, systolic array) pairs, so new designs can be defined
// without recompiling.
//
// Example:
//
//   design polyprod1
//   sizes n >= 1
//   loop i = 0 .. n
//   loop j = 0 .. n
//   stream a[i]   read   dims [0 .. n]
//   stream b[j]   read   dims [0 .. n]
//   stream c[i+j] update dims [0 .. 2*n]
//   body c := c + a * b
//   step 2*i + j
//   place (i)
//   load a = (1)
//
// The body statement ("<target> := <affine-free expression over stream
// names and integers>") is compiled to an executable closure, so parsed
// designs run on the simulator exactly like catalog designs.
#pragma once

#include "designs/catalog.hpp"

namespace systolize::frontend {

/// Parse a .sa source text; throws Error(Parse) with a line number on
/// syntax errors and Error(Validation) on semantic ones.
[[nodiscard]] Design parse_design(const std::string& source);

}  // namespace systolize::frontend
