#include "frontend/lexer.hpp"

#include <cctype>

#include "support/error.hpp"

namespace systolize::frontend {

std::string Token::describe() const {
  switch (kind) {
    case TokKind::Ident:
      return "identifier '" + text + "'";
    case TokKind::Integer:
      return "integer " + std::to_string(value);
    case TokKind::LParen:
      return "'('";
    case TokKind::RParen:
      return "')'";
    case TokKind::LBracket:
      return "'['";
    case TokKind::RBracket:
      return "']'";
    case TokKind::Comma:
      return "','";
    case TokKind::DotDot:
      return "'..'";
    case TokKind::Assign:
      return "':='";
    case TokKind::Equals:
      return "'='";
    case TokKind::Ge:
      return "'>='";
    case TokKind::Le:
      return "'<='";
    case TokKind::Plus:
      return "'+'";
    case TokKind::Minus:
      return "'-'";
    case TokKind::Star:
      return "'*'";
    case TokKind::End:
      return "end of input";
  }
  return "?";
}

std::vector<Token> lex(const std::string& source) {
  std::vector<Token> tokens;
  std::size_t line = 1;
  std::size_t i = 0;
  auto push = [&](TokKind kind) {
    tokens.push_back(Token{kind, "", 0, line});
  };
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(source[i])) ||
              source[i] == '_')) {
        ++i;
      }
      tokens.push_back(
          Token{TokKind::Ident, source.substr(start, i - start), 0, line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Int value = 0;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        value = checked_add(checked_mul(value, 10), source[i] - '0');
        ++i;
      }
      tokens.push_back(Token{TokKind::Integer, "", value, line});
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < source.size() && source[i + 1] == b;
    };
    if (two('.', '.')) {
      push(TokKind::DotDot);
      i += 2;
      continue;
    }
    if (two(':', '=')) {
      push(TokKind::Assign);
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      push(TokKind::Ge);
      i += 2;
      continue;
    }
    if (two('<', '=')) {
      push(TokKind::Le);
      i += 2;
      continue;
    }
    switch (c) {
      case '(': push(TokKind::LParen); break;
      case ')': push(TokKind::RParen); break;
      case '[': push(TokKind::LBracket); break;
      case ']': push(TokKind::RBracket); break;
      case ',': push(TokKind::Comma); break;
      case '=': push(TokKind::Equals); break;
      case '+': push(TokKind::Plus); break;
      case '-': push(TokKind::Minus); break;
      case '*': push(TokKind::Star); break;
      default:
        raise(ErrorKind::Parse, "line " + std::to_string(line) +
                                    ": unexpected character '" +
                                    std::string(1, c) + "'");
    }
    ++i;
  }
  tokens.push_back(Token{TokKind::End, "", 0, line});
  return tokens;
}

}  // namespace systolize::frontend
