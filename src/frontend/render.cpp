#include "frontend/render.hpp"

#include <sstream>

namespace systolize::frontend {
namespace {

/// Affine over size symbols with integer coefficients, in the format's
/// size-expr grammar (the parser accepts a leading unary minus).
std::string size_expr_to_sa(const AffineExpr& e) {
  std::ostringstream os;
  bool first = true;
  auto emit = [&](const Rational& coeff, const std::string& sym) {
    if (!coeff.is_integer()) {
      raise(ErrorKind::Validation,
            "cannot export non-integer coefficient " + coeff.to_string() +
                " in '" + e.to_string() + "' to .sa");
    }
    Int c = coeff.to_integer();
    if (c == 0) return;
    if (first) {
      if (c < 0) os << '-';
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    const Int mag = c < 0 ? -c : c;
    if (sym.empty()) {
      os << mag;
    } else if (mag == 1) {
      os << sym;
    } else {
      os << mag << '*' << sym;
    }
    first = false;
  };
  for (const auto& [sym, coeff] : e.terms()) emit(coeff, sym.name());
  emit(e.constant(), "");
  if (first) os << '0';
  return os.str();
}

/// Linear combination of the loop indices (no constant term) from a
/// coefficient vector, e.g. "i - k" or "2*i + j".
std::string lin_to_sa(const IntVec& coeffs,
                      const std::vector<LoopSpec>& loops) {
  std::ostringstream os;
  bool first = true;
  for (std::size_t i = 0; i < coeffs.dim(); ++i) {
    const Int c = coeffs[i];
    if (c == 0) continue;
    if (first) {
      if (c < 0) os << '-';
    } else {
      os << (c < 0 ? " - " : " + ");
    }
    const Int mag = c < 0 ? -c : c;
    if (mag != 1) os << mag << '*';
    os << loops[i].index_name;
    first = false;
  }
  if (first) os << '0';
  return os.str();
}

/// Recover `sym >= bound` from the size-assumption guard; the format can
/// only express that shape.
Int lower_bound_of(const Symbol& s, const Guard& assumptions) {
  for (const Constraint& c : assumptions.constraints()) {
    const AffineExpr slack = c.slack();  // rhs - lhs, >= 0 when it holds
    if (slack.terms().size() != 1) continue;
    const auto& [sym, coeff] = *slack.terms().begin();
    if (sym != s || coeff != Rational(1)) continue;
    if (!slack.constant().is_integer()) continue;
    return -slack.constant().to_integer();  // slack = s - bound
  }
  raise(ErrorKind::Validation,
        "cannot export size assumptions for '" + s.name() +
            "' to .sa: no 'sym >= const' lower bound found");
}

}  // namespace

std::string lin_expr_text(const IntVec& coeffs, const LoopNest& nest) {
  return lin_to_sa(coeffs, nest.loops());
}

std::string place_text(const IntMatrix& m, const LoopNest& nest) {
  std::ostringstream os;
  os << '(';
  for (std::size_t row = 0; row < m.rows(); ++row) {
    if (row > 0) os << ", ";
    os << lin_to_sa(m.row(row), nest.loops());
  }
  os << ')';
  return os.str();
}

std::string render_design(const LoopNest& nest, const ArraySpec& spec,
                          const std::string& comment) {
  if (nest.body_text().find(" when ") != std::string::npos) {
    raise(ErrorKind::Validation,
          "cannot export a guarded body to .sa: the guard's source text "
          "is not recoverable from the parsed closure");
  }
  // Size assumptions beyond one lower bound per symbol are inexpressible;
  // verify nothing else lurks in the guard.
  for (const Constraint& c : nest.size_assumptions().constraints()) {
    const AffineExpr slack = c.slack();
    if (slack.terms().size() != 1 ||
        slack.terms().begin()->second != Rational(1)) {
      raise(ErrorKind::Validation,
            "cannot export size assumption '" + c.to_string() + "' to .sa");
    }
  }

  std::ostringstream os;
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) os << "# " << line << "\n";
  }
  os << "design " << nest.name() << "\n";

  os << "sizes ";
  const std::vector<Symbol>& sizes = nest.sizes();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) os << ", ";
    os << sizes[i].name() << " >= "
       << lower_bound_of(sizes[i], nest.size_assumptions());
  }
  os << "\n";

  const std::vector<LoopSpec>& loops = nest.loops();
  for (const LoopSpec& loop : loops) {
    os << "loop " << loop.index_name << " = " << size_expr_to_sa(loop.lower)
       << " .. " << size_expr_to_sa(loop.upper);
    if (loop.step < 0) os << " by -1";
    os << "\n";
  }

  for (const Stream& s : nest.streams()) {
    os << "stream " << s.name() << '[';
    for (std::size_t row = 0; row < s.index_map().rows(); ++row) {
      if (row > 0) os << ',';
      os << lin_to_sa(s.index_map().row(row), loops);
    }
    os << "] " << (s.access() == StreamAccess::Update ? "update" : "read")
       << " dims [";
    for (std::size_t d = 0; d < s.dims().size(); ++d) {
      if (d > 0) os << ", ";
      os << size_expr_to_sa(s.dims()[d].lower) << " .. "
         << size_expr_to_sa(s.dims()[d].upper);
    }
    os << "]\n";
  }

  os << "body " << nest.body_text() << "\n";
  os << "step " << lin_to_sa(spec.step().coeffs(), loops) << "\n";

  os << "place (";
  for (std::size_t row = 0; row < spec.place().matrix().rows(); ++row) {
    if (row > 0) os << ", ";
    os << lin_to_sa(spec.place().matrix().row(row), loops);
  }
  os << ")\n";

  for (const auto& [stream, vec] : spec.loading_vectors()) {
    os << "load " << stream << " = (";
    for (std::size_t i = 0; i < vec.dim(); ++i) {
      if (i > 0) os << ", ";
      os << vec[i];
    }
    os << ")\n";
  }
  return os.str();
}

}  // namespace systolize::frontend
