// Lexer for the .sa design description language.
//
// Tokens: identifiers, integer literals, punctuation, and the multi-char
// operators "..", ":=", ">=". "#" starts a comment to end of line.
#pragma once

#include <string>
#include <vector>

#include "numeric/checked.hpp"

namespace systolize::frontend {

enum class TokKind {
  Ident,
  Integer,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  DotDot,   // ..
  Assign,   // :=
  Equals,   // =
  Ge,       // >=
  Le,       // <=
  Plus,
  Minus,
  Star,
  End,      // end of input
};

struct Token {
  TokKind kind = TokKind::End;
  std::string text;  ///< identifier spelling
  Int value = 0;     ///< integer value
  std::size_t line = 1;

  [[nodiscard]] std::string describe() const;
};

/// Tokenize; throws Error(Parse) on an unexpected character.
[[nodiscard]] std::vector<Token> lex(const std::string& source);

}  // namespace systolize::frontend
