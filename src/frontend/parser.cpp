#include "frontend/parser.hpp"

#include <map>
#include <memory>

#include "frontend/lexer.hpp"

namespace systolize::frontend {
namespace {

/// Executable expression tree for the basic statement's right-hand side.
struct StmtExpr {
  enum class Kind { Const, Var, Add, Sub, Mul };
  Kind kind = Kind::Const;
  Value constant = 0;
  std::string var;
  std::shared_ptr<StmtExpr> lhs;
  std::shared_ptr<StmtExpr> rhs;

  [[nodiscard]] Value eval(const std::map<std::string, Value>& env) const {
    switch (kind) {
      case Kind::Const:
        return constant;
      case Kind::Var:
        return env.at(var);
      case Kind::Add:
        return lhs->eval(env) + rhs->eval(env);
      case Kind::Sub:
        return lhs->eval(env) - rhs->eval(env);
      case Kind::Mul:
        return lhs->eval(env) * rhs->eval(env);
    }
    return 0;
  }

  [[nodiscard]] std::string render() const {
    switch (kind) {
      case Kind::Const:
        return std::to_string(constant);
      case Kind::Var:
        return var;
      case Kind::Add:
        return lhs->render() + " + " + rhs->render();
      case Kind::Sub:
        return lhs->render() + " - " + rhs->render();
      case Kind::Mul:
        return lhs->render() + " * " + rhs->render();
    }
    return "?";
  }

  void collect_vars(std::vector<std::string>& out) const {
    if (kind == Kind::Var) out.push_back(var);
    if (lhs) lhs->collect_vars(out);
    if (rhs) rhs->collect_vars(out);
  }
};

struct ParsedStream {
  std::string name;
  bool update = false;
  std::vector<VarDim> dims;
};

class Parser {
 public:
  explicit Parser(const std::string& source) : tokens_(lex(source)) {}

  Design parse() {
    expect_keyword("design");
    name_ = take(TokKind::Ident).text;
    while (peek().kind != TokKind::End) {
      const Token& t = peek();
      if (t.kind != TokKind::Ident) fail("expected a declaration keyword");
      if (t.text == "sizes") {
        parse_sizes();
      } else if (t.text == "loop") {
        parse_loop();
      } else if (t.text == "stream") {
        parse_stream();
      } else if (t.text == "body") {
        parse_body();
      } else if (t.text == "step") {
        parse_step();
      } else if (t.text == "place") {
        parse_place();
      } else if (t.text == "load") {
        parse_load();
      } else {
        fail("unknown declaration '" + t.text + "'");
      }
    }
    return finish();
  }

 private:
  [[noreturn]] void fail(const std::string& msg) {
    raise(ErrorKind::Parse,
          "line " + std::to_string(peek().line) + ": " + msg + " (got " +
              peek().describe() + ")");
  }

  const Token& peek() const { return tokens_[pos_]; }

  Token take(TokKind kind) {
    if (peek().kind != kind) {
      fail("expected " + Token{kind, "", 0, 0}.describe());
    }
    return tokens_[pos_++];
  }

  bool accept(TokKind kind) {
    if (peek().kind != kind) return false;
    ++pos_;
    return true;
  }

  void expect_keyword(const std::string& kw) {
    Token t = take(TokKind::Ident);
    if (t.text != kw) {
      raise(ErrorKind::Parse, "line " + std::to_string(t.line) +
                                  ": expected '" + kw + "', got '" + t.text +
                                  "'");
    }
  }

  // ---- affine expressions over a resolver ------------------------------

  AffineExpr parse_affine(
      const std::function<AffineExpr(const std::string&)>& resolve) {
    AffineExpr e = parse_affine_term(resolve);
    for (;;) {
      if (accept(TokKind::Plus)) {
        e += parse_affine_term(resolve);
      } else if (accept(TokKind::Minus)) {
        e -= parse_affine_term(resolve);
      } else {
        return e;
      }
    }
  }

  AffineExpr parse_affine_term(
      const std::function<AffineExpr(const std::string&)>& resolve) {
    AffineExpr e = parse_affine_factor(resolve);
    while (accept(TokKind::Star)) {
      AffineExpr f = parse_affine_factor(resolve);
      // Affine expressions only multiply by constants.
      if (e.is_constant()) {
        e = f * e.constant();
      } else if (f.is_constant()) {
        e = e * f.constant();
      } else {
        fail("non-linear product in an affine expression");
      }
    }
    return e;
  }

  AffineExpr parse_affine_factor(
      const std::function<AffineExpr(const std::string&)>& resolve) {
    if (accept(TokKind::Minus)) return -parse_affine_factor(resolve);
    if (peek().kind == TokKind::Integer) {
      return AffineExpr(Rational(take(TokKind::Integer).value));
    }
    if (peek().kind == TokKind::Ident) {
      return resolve(take(TokKind::Ident).text);
    }
    if (accept(TokKind::LParen)) {
      AffineExpr e = parse_affine(resolve);
      take(TokKind::RParen);
      return e;
    }
    fail("expected an expression");
  }

  AffineExpr parse_size_expr() {
    return parse_affine([this](const std::string& id) -> AffineExpr {
      for (const Symbol& s : sizes_) {
        if (s.name() == id) return AffineExpr(s);
      }
      fail("'" + id + "' is not a declared problem-size variable");
    });
  }

  /// Affine combination of loop indices: coefficients plus a constant.
  std::pair<IntVec, Int> parse_loop_affine(const std::string& what) {
    AffineExpr e = parse_affine([this](const std::string& id) -> AffineExpr {
      for (std::size_t i = 0; i < loops_.size(); ++i) {
        if (loops_[i].index_name == id) {
          return AffineExpr(size_symbol("$loop" + std::to_string(i)));
        }
      }
      fail("'" + id + "' is not a loop index");
    });
    if (!e.constant().is_integer()) {
      raise(ErrorKind::Validation, what + " needs an integer constant");
    }
    IntVec coeffs(loops_.size());
    for (std::size_t i = 0; i < loops_.size(); ++i) {
      Rational c = e.coeff(size_symbol("$loop" + std::to_string(i)));
      if (!c.is_integer()) {
        raise(ErrorKind::Validation, what + " needs integer coefficients");
      }
      coeffs[i] = c.to_integer();
    }
    return {std::move(coeffs), e.constant().to_integer()};
  }

  /// Linear combination of loop indices: returns the coefficient vector;
  /// rejects constants and non-integer coefficients (Appendix A.2).
  IntVec parse_loop_linear(const std::string& what) {
    auto [coeffs, constant] = parse_loop_affine(what);
    if (constant != 0) {
      raise(ErrorKind::Validation,
            what + " must be linear in the loop indices (no constant term)");
    }
    return coeffs;
  }

  // ---- declarations -----------------------------------------------------

  void parse_sizes() {
    expect_keyword("sizes");
    do {
      std::string name = take(TokKind::Ident).text;
      take(TokKind::Ge);
      bool neg = accept(TokKind::Minus);
      Int bound = take(TokKind::Integer).value;
      if (neg) bound = -bound;
      Symbol s = size_symbol(name);
      sizes_.push_back(s);
      assumptions_.add(Constraint{AffineExpr(bound), AffineExpr(s)});
    } while (accept(TokKind::Comma));
  }

  void parse_loop() {
    expect_keyword("loop");
    LoopSpec loop;
    loop.index_name = take(TokKind::Ident).text;
    take(TokKind::Equals);
    loop.lower = parse_size_expr();
    take(TokKind::DotDot);
    loop.upper = parse_size_expr();
    loop.step = 1;
    if (peek().kind == TokKind::Ident && peek().text == "by") {
      take(TokKind::Ident);
      bool neg = accept(TokKind::Minus);
      Int st = take(TokKind::Integer).value;
      loop.step = neg ? -st : st;
    }
    loops_.push_back(std::move(loop));
  }

  void parse_stream() {
    expect_keyword("stream");
    ParsedStream s;
    s.name = take(TokKind::Ident).text;
    take(TokKind::LBracket);
    do {
      // Index-map rows reference loop indices, so loops must be declared
      // before streams.
      index_rows_[s.name].push_back(
          parse_loop_linear("index of stream '" + s.name + "'"));
    } while (accept(TokKind::Comma));
    take(TokKind::RBracket);
    Token mode = take(TokKind::Ident);
    if (mode.text == "read") {
      s.update = false;
    } else if (mode.text == "update") {
      s.update = true;
    } else {
      raise(ErrorKind::Parse, "line " + std::to_string(mode.line) +
                                  ": expected 'read' or 'update'");
    }
    expect_keyword("dims");
    take(TokKind::LBracket);
    do {
      AffineExpr lo = parse_size_expr();
      take(TokKind::DotDot);
      AffineExpr hi = parse_size_expr();
      s.dims.push_back(VarDim{std::move(lo), std::move(hi)});
    } while (accept(TokKind::Comma));
    take(TokKind::RBracket);
    streams_.push_back(std::move(s));
  }

  std::shared_ptr<StmtExpr> parse_stmt_expr() {
    auto e = parse_stmt_term();
    for (;;) {
      if (accept(TokKind::Plus)) {
        auto node = std::make_shared<StmtExpr>();
        node->kind = StmtExpr::Kind::Add;
        node->lhs = std::move(e);
        node->rhs = parse_stmt_term();
        e = std::move(node);
      } else if (accept(TokKind::Minus)) {
        auto node = std::make_shared<StmtExpr>();
        node->kind = StmtExpr::Kind::Sub;
        node->lhs = std::move(e);
        node->rhs = parse_stmt_term();
        e = std::move(node);
      } else {
        return e;
      }
    }
  }

  std::shared_ptr<StmtExpr> parse_stmt_term() {
    auto e = parse_stmt_factor();
    while (accept(TokKind::Star)) {
      auto node = std::make_shared<StmtExpr>();
      node->kind = StmtExpr::Kind::Mul;
      node->lhs = std::move(e);
      node->rhs = parse_stmt_factor();
      e = std::move(node);
    }
    return e;
  }

  std::shared_ptr<StmtExpr> parse_stmt_factor() {
    auto node = std::make_shared<StmtExpr>();
    if (accept(TokKind::Minus)) {
      node->kind = StmtExpr::Kind::Sub;
      node->lhs = std::make_shared<StmtExpr>();  // 0 - x
      node->rhs = parse_stmt_factor();
      return node;
    }
    if (peek().kind == TokKind::Integer) {
      node->kind = StmtExpr::Kind::Const;
      node->constant = take(TokKind::Integer).value;
      return node;
    }
    if (peek().kind == TokKind::Ident) {
      node->kind = StmtExpr::Kind::Var;
      node->var = take(TokKind::Ident).text;
      return node;
    }
    if (accept(TokKind::LParen)) {
      node = parse_stmt_expr();
      take(TokKind::RParen);
      return node;
    }
    fail("expected a statement expression");
  }

  void parse_body() {
    expect_keyword("body");
    body_target_ = take(TokKind::Ident).text;
    take(TokKind::Assign);
    body_expr_ = parse_stmt_expr();
    // Optional guard (the paper's B_j -> S_j form, Sect. 3.1):
    //   body c := c + a * b when i >= j
    if (peek().kind == TokKind::Ident && peek().text == "when") {
      take(TokKind::Ident);
      auto [lc, lk] = parse_loop_affine("guard");
      bool ge;
      if (accept(TokKind::Ge)) {
        ge = true;
      } else if (accept(TokKind::Le)) {
        ge = false;
      } else {
        fail("expected '>=' or '<=' in the body guard");
      }
      auto [rc, rk] = parse_loop_affine("guard");
      // Normalize to coeffs . x + constant >= 0.
      guard_coeffs_ = ge ? lc - rc : rc - lc;
      guard_constant_ = ge ? lk - rk : rk - lk;
      has_guard_ = true;
    }
  }

  void parse_step() {
    expect_keyword("step");
    step_ = parse_loop_linear("step");
    have_step_ = true;
  }

  void parse_place() {
    expect_keyword("place");
    take(TokKind::LParen);
    std::vector<IntVec> rows;
    do {
      rows.push_back(parse_loop_linear("place"));
    } while (accept(TokKind::Comma));
    take(TokKind::RParen);
    place_rows_ = std::move(rows);
    have_place_ = true;
  }

  void parse_load() {
    expect_keyword("load");
    std::string stream = take(TokKind::Ident).text;
    take(TokKind::Equals);
    take(TokKind::LParen);
    std::vector<Int> comps;
    do {
      bool neg = accept(TokKind::Minus);
      Int v = take(TokKind::Integer).value;
      comps.push_back(neg ? -v : v);
    } while (accept(TokKind::Comma));
    take(TokKind::RParen);
    loading_[stream] = IntVec(std::move(comps));
  }

  // ---- assembly -----------------------------------------------------------

  Design finish() {
    if (loops_.empty()) raise(ErrorKind::Validation, "no loops declared");
    if (!have_step_) raise(ErrorKind::Validation, "no step function");
    if (!have_place_) raise(ErrorKind::Validation, "no place function");
    if (!body_expr_) raise(ErrorKind::Validation, "no body statement");

    const std::size_t r = loops_.size();
    std::vector<Stream> streams;
    for (const ParsedStream& ps : streams_) {
      const auto& rows = index_rows_.at(ps.name);
      IntMatrix m(rows.size(), r);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t j = 0; j < r; ++j) m.at(i, j) = rows[i][j];
      }
      streams.emplace_back(ps.name, std::move(m), ps.dims,
                           ps.update ? StreamAccess::Update
                                     : StreamAccess::Read);
    }

    // Semantic checks on the body statement.
    auto has_stream = [&](const std::string& v) {
      for (const ParsedStream& ps : streams_) {
        if (ps.name == v) return true;
      }
      return false;
    };
    if (!has_stream(body_target_)) {
      raise(ErrorKind::Validation,
            "body assigns to '" + body_target_ + "', which is not a stream");
    }
    std::vector<std::string> used;
    body_expr_->collect_vars(used);
    for (const std::string& v : used) {
      if (!has_stream(v)) {
        raise(ErrorKind::Validation,
              "body uses '" + v + "', which is not a stream");
      }
    }

    std::string target = body_target_;
    std::shared_ptr<StmtExpr> expr = body_expr_;
    StatementBody body = [target, expr](std::map<std::string, Value>& vals) {
      vals.at(target) = expr->eval(vals);
    };
    std::string body_text = body_target_ + " := " + body_expr_->render();

    IntMatrix place(place_rows_.size(), r);
    for (std::size_t i = 0; i < place_rows_.size(); ++i) {
      for (std::size_t j = 0; j < r; ++j) place.at(i, j) = place_rows_[i][j];
    }

    LoopNest nest(name_, loops_, std::move(streams), sizes_, assumptions_,
                  std::move(body), body_text);
    if (has_guard_) {
      IntVec gc = guard_coeffs_;
      Int gk = guard_constant_;
      nest.set_indexed_body(
          [target, expr, gc, gk](const IntVec& x,
                                 std::map<std::string, Value>& vals) {
            if (gc.dot(x) + gk >= 0) vals.at(target) = expr->eval(vals);
          },
          body_text + " when <guard>");
    }
    ArraySpec spec(StepFunction(step_), PlaceFunction(std::move(place)),
                   loading_);
    return Design{std::move(nest), std::move(spec),
                  "parsed design '" + name_ + "'"};
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;

  std::string name_;
  std::vector<Symbol> sizes_;
  Guard assumptions_;
  std::vector<LoopSpec> loops_;
  std::vector<ParsedStream> streams_;
  std::map<std::string, std::vector<IntVec>> index_rows_;
  std::string body_target_;
  std::shared_ptr<StmtExpr> body_expr_;
  IntVec step_;
  bool have_step_ = false;
  std::vector<IntVec> place_rows_;
  bool have_place_ = false;
  bool has_guard_ = false;
  IntVec guard_coeffs_;
  Int guard_constant_ = 0;
  std::map<std::string, IntVec> loading_;
};

}  // namespace

Design parse_design(const std::string& source) {
  return Parser(source).parse();
}

}  // namespace systolize::frontend
