// The inverse of the parser: render a (source program, array spec) pair
// as `.sa` text that parse_design() accepts and round-trips to an
// equivalent design. `systolize explore --export=FILE` uses this to save
// the winning candidate of a design-space search.
#pragma once

#include <string>

#include "systolic/array_spec.hpp"

namespace systolize::frontend {

/// Render as `.sa` source. Throws Error(Validation) for designs the
/// format cannot express: non-integer bound coefficients, size
/// assumptions other than `sym >= const`, or guarded (`when`) bodies —
/// the parser erases a guard's text into the opaque closure, so it
/// cannot be reprinted.
[[nodiscard]] std::string render_design(const LoopNest& nest,
                                        const ArraySpec& spec,
                                        const std::string& comment = "");

/// "i + j + k" — a linear form over the nest's loop indices (the format's
/// lin-expr class); used by `explore`'s ranked table.
[[nodiscard]] std::string lin_expr_text(const IntVec& coeffs,
                                        const LoopNest& nest);

/// "(i - k, j - k)" — a place matrix as a tuple of linear forms.
[[nodiscard]] std::string place_text(const IntMatrix& m, const LoopNest& nest);

}  // namespace systolize::frontend
