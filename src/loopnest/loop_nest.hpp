// The source program (paper Sect. 3.1): r perfectly nested loops with
// affine bounds in the problem-size variables, steps of +/-1, and a basic
// statement that touches one element of every stream.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "loopnest/stream.hpp"
#include "symbolic/guard.hpp"

namespace systolize {

/// One loop:  for x = lb <-st-> rb  with st in {-1, +1}.
struct LoopSpec {
  std::string index_name;
  AffineExpr lower;  ///< lb, affine in the problem size
  AffineExpr upper;  ///< rb, affine in the problem size
  Int step = 1;      ///< +1 or -1 (execution order only; lb <= rb always)
};

/// Runtime value carried by stream elements.
using Value = std::int64_t;

/// The basic statement's computation, applied to the current element value
/// of each stream (keyed by stream name). Values for Update streams may be
/// re-assigned. Stream elements carry no identity inside the array (paper
/// Sect. 4.2), but the loop body is "a procedure parameterized solely by
/// the loop indices" (Sect. 3.1): the indexed form receives the statement's
/// index-space point, which every process reconstructs locally as
/// first + iteration * increment — this is how the paper's guarded
/// statements (if B_j -> S_j) are supported.
using StatementBody = std::function<void(std::map<std::string, Value>&)>;
using IndexedBody =
    std::function<void(const IntVec& x, std::map<std::string, Value>&)>;

class LoopNest {
 public:
  LoopNest(std::string name, std::vector<LoopSpec> loops,
           std::vector<Stream> streams, std::vector<Symbol> sizes,
           Guard size_assumptions, StatementBody body,
           std::string body_text = "");

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// r — the nesting depth.
  [[nodiscard]] std::size_t depth() const noexcept { return loops_.size(); }
  [[nodiscard]] const std::vector<LoopSpec>& loops() const noexcept {
    return loops_;
  }
  [[nodiscard]] const std::vector<Stream>& streams() const noexcept {
    return streams_;
  }
  [[nodiscard]] const Stream& stream(const std::string& name) const;
  [[nodiscard]] const std::vector<Symbol>& sizes() const noexcept {
    return sizes_;
  }
  /// Constraints on the problem-size symbols (e.g. n >= 1) that hold for
  /// every valid instantiation; used by the feasibility pruner.
  [[nodiscard]] const Guard& size_assumptions() const noexcept {
    return size_assumptions_;
  }
  [[nodiscard]] const IndexedBody& body() const noexcept { return body_; }

  /// Replace the body with an index-aware one (guarded statements).
  void set_indexed_body(IndexedBody body, std::string body_text);
  /// Textual form of the basic statement's computation (for printers),
  /// e.g. "c := c + a * b".
  [[nodiscard]] const std::string& body_text() const noexcept {
    return body_text_;
  }

  /// Evaluated loop bounds at a concrete problem size: (lb_i, rb_i) pairs.
  [[nodiscard]] std::vector<std::pair<Int, Int>> concrete_bounds(
      const Env& env) const;

  /// All points of the index space IS at a concrete problem size, in
  /// sequential execution order (respecting each loop's step sign).
  [[nodiscard]] std::vector<IntVec> enumerate_index_space(
      const Env& env) const;

  /// Number of points of IS (product of extents) at a concrete size.
  [[nodiscard]] Int index_space_size(const Env& env) const;

 private:
  std::string name_;
  std::vector<LoopSpec> loops_;
  std::vector<Stream> streams_;
  std::vector<Symbol> sizes_;
  Guard size_assumptions_;
  IndexedBody body_;
  std::string body_text_;
};

}  // namespace systolize
