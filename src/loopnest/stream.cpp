#include "loopnest/stream.hpp"

// Stream is currently header-only logic; this translation unit anchors the
// class for future out-of-line growth and keeps one object file per module.

namespace systolize {}  // namespace systolize
