#include "loopnest/validate.hpp"

#include <set>

#include "symbolic/fourier_motzkin.hpp"

namespace systolize {
namespace {

void require_size_only(const AffineExpr& e, const std::string& where) {
  if (!e.is_coord_free()) {
    raise(ErrorKind::Validation,
          where + " must involve only problem-size symbols, got " +
              e.to_string());
  }
}

}  // namespace

void validate_source(const LoopNest& nest) {
  const std::size_t r = nest.depth();
  if (r < 2) {
    raise(ErrorKind::Validation,
          "source program must have at least two loops (r >= 2), got r = " +
              std::to_string(r));
  }

  std::set<std::string> index_names;
  for (const LoopSpec& l : nest.loops()) {
    if (l.step != 1 && l.step != -1) {
      raise(ErrorKind::Validation, "loop '" + l.index_name +
                                       "' has step " + std::to_string(l.step) +
                                       "; only +1/-1 are allowed");
    }
    require_size_only(l.lower, "lower bound of loop '" + l.index_name + "'");
    require_size_only(l.upper, "upper bound of loop '" + l.index_name + "'");
    if (!implies(nest.size_assumptions(), Constraint{l.lower, l.upper})) {
      raise(ErrorKind::Validation,
            "size assumptions do not imply lb <= rb for loop '" +
                l.index_name + "'");
    }
    if (!index_names.insert(l.index_name).second) {
      raise(ErrorKind::Validation,
            "duplicate loop index '" + l.index_name + "'");
    }
  }

  if (nest.streams().empty()) {
    raise(ErrorKind::Validation, "source program declares no streams");
  }
  std::set<std::string> stream_names;
  for (const Stream& s : nest.streams()) {
    if (!stream_names.insert(s.name()).second) {
      raise(ErrorKind::Validation, "duplicate stream name '" + s.name() + "'");
    }
    const IntMatrix& m = s.index_map();
    if (m.rows() != r - 1 || m.cols() != r) {
      raise(ErrorKind::Validation,
            "stream '" + s.name() + "': index map must be (r-1) x r = " +
                std::to_string(r - 1) + " x " + std::to_string(r) + ", got " +
                std::to_string(m.rows()) + " x " + std::to_string(m.cols()));
    }
    if (m.rank() != r - 1) {
      raise(ErrorKind::Validation,
            "stream '" + s.name() + "': index map must have rank r-1 = " +
                std::to_string(r - 1) + " (full pipelining), got rank " +
                std::to_string(m.rank()));
    }
    if (s.dims().size() != r - 1) {
      raise(ErrorKind::Validation,
            "stream '" + s.name() + "': indexed variable must be (r-1)-"
            "dimensional");
    }
    for (std::size_t d = 0; d < s.dims().size(); ++d) {
      const std::string where =
          "stream '" + s.name() + "' dimension " + std::to_string(d);
      require_size_only(s.dims()[d].lower, where + " lower bound");
      require_size_only(s.dims()[d].upper, where + " upper bound");
      if (!implies(nest.size_assumptions(),
                   Constraint{s.dims()[d].lower, s.dims()[d].upper})) {
        raise(ErrorKind::Validation,
              where + ": size assumptions do not imply lb <= rb");
      }
    }
  }

  if (!nest.body()) {
    raise(ErrorKind::Validation, "source program has no basic statement body");
  }
}

}  // namespace systolize
