// Validation of the Appendix-A requirements and restrictions on source
// programs. Every violation raises Error(ErrorKind::Validation) with a
// message naming the offending loop/stream.
#pragma once

#include "loopnest/loop_nest.hpp"

namespace systolize {

/// Check a source program against the paper's Appendix A:
///  - r >= 2 nested loops;
///  - every step is +1 or -1;
///  - lb_i <= rb_i is implied by the size assumptions;
///  - every indexed variable is (r-1)-dimensional;
///  - every index map has rank r-1 (full pipelining);
///  - loop bounds and variable bounds mention only problem-size symbols;
///  - at least one stream, with distinct names.
/// (The "no constants in index vectors" restriction is structural here:
/// index maps are linear matrices, so constants cannot be expressed.)
void validate_source(const LoopNest& nest);

}  // namespace systolize
