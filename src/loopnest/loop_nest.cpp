#include "loopnest/loop_nest.hpp"

namespace systolize {

LoopNest::LoopNest(std::string name, std::vector<LoopSpec> loops,
                   std::vector<Stream> streams, std::vector<Symbol> sizes,
                   Guard size_assumptions, StatementBody body,
                   std::string body_text)
    : name_(std::move(name)),
      loops_(std::move(loops)),
      streams_(std::move(streams)),
      sizes_(std::move(sizes)),
      size_assumptions_(std::move(size_assumptions)),
      body_text_(std::move(body_text)) {
  if (body) {
    body_ = [plain = std::move(body)](const IntVec&,
                                      std::map<std::string, Value>& vals) {
      plain(vals);
    };
  }
}

void LoopNest::set_indexed_body(IndexedBody body, std::string body_text) {
  body_ = std::move(body);
  body_text_ = std::move(body_text);
}

const Stream& LoopNest::stream(const std::string& name) const {
  for (const Stream& s : streams_) {
    if (s.name() == name) return s;
  }
  raise(ErrorKind::Validation, "no stream named '" + name + "'");
}

std::vector<std::pair<Int, Int>> LoopNest::concrete_bounds(
    const Env& env) const {
  std::vector<std::pair<Int, Int>> bounds;
  bounds.reserve(loops_.size());
  for (const LoopSpec& l : loops_) {
    Int lb = l.lower.evaluate(env).to_integer();
    Int rb = l.upper.evaluate(env).to_integer();
    if (lb > rb) {
      raise(ErrorKind::Validation,
            "loop '" + l.index_name + "' has lb > rb at this problem size");
    }
    bounds.emplace_back(lb, rb);
  }
  return bounds;
}

std::vector<IntVec> LoopNest::enumerate_index_space(const Env& env) const {
  auto bounds = concrete_bounds(env);
  std::vector<IntVec> points;
  points.reserve(static_cast<std::size_t>(index_space_size(env)));

  IntVec x(loops_.size());
  // Initialize each index at its execution start (lb for +1, rb for -1).
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    x[i] = loops_[i].step > 0 ? bounds[i].first : bounds[i].second;
  }
  for (;;) {
    points.push_back(x);
    // Odometer-style advance, innermost loop fastest.
    std::size_t i = loops_.size();
    while (i > 0) {
      --i;
      x[i] += loops_[i].step;
      bool done = loops_[i].step > 0 ? x[i] > bounds[i].second
                                     : x[i] < bounds[i].first;
      if (!done) break;
      x[i] = loops_[i].step > 0 ? bounds[i].first : bounds[i].second;
      if (i == 0) return points;
    }
  }
}

Int LoopNest::index_space_size(const Env& env) const {
  Int total = 1;
  for (const auto& [lb, rb] : concrete_bounds(env)) {
    total = checked_mul(total, checked_add(checked_sub(rb, lb), 1));
  }
  return total;
}

}  // namespace systolize
