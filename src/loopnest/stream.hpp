// Streams (paper Sect. 3.1): an indexed variable plus the linear index map
// applied to the loop indices, e.g.  c[i+j]  ~  M.c = (λ(i,j). i+j).
#pragma once

#include <string>
#include <vector>

#include "numeric/int_matrix.hpp"
#include "symbolic/affine_expr.hpp"

namespace systolize {

/// Bounds of one dimension of an indexed variable's domain, e.g. 0..n.
struct VarDim {
  AffineExpr lower;
  AffineExpr upper;
};

/// How the basic statement touches the stream's element; the scheme itself
/// is agnostic, but the runtime uses it to decide which host variables the
/// computation may rewrite.
enum class StreamAccess {
  Read,    ///< element is read only (a, b in the examples)
  Update,  ///< element is read and re-assigned (c in the examples)
};

class Stream {
 public:
  Stream(std::string name, IntMatrix index_map, std::vector<VarDim> dims,
         StreamAccess access)
      : name_(std::move(name)),
        index_map_(std::move(index_map)),
        dims_(std::move(dims)),
        access_(access) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// The (r-1) x r matrix M of the index map.
  [[nodiscard]] const IntMatrix& index_map() const noexcept {
    return index_map_;
  }
  /// Variable-space bounds, one per dimension of the indexed variable.
  [[nodiscard]] const std::vector<VarDim>& dims() const noexcept {
    return dims_;
  }
  [[nodiscard]] StreamAccess access() const noexcept { return access_; }

  /// The element identity M.x accessed by basic statement x.
  [[nodiscard]] IntVec element_of(const IntVec& x) const {
    return index_map_.apply(x);
  }

 private:
  std::string name_;
  IntMatrix index_map_;
  std::vector<VarDim> dims_;
  StreamAccess access_;
};

}  // namespace systolize
