// A systolic array specification: the (step, place) pair for a source
// program, plus the loading & recovery vectors the compilation needs for
// stationary streams (paper Sect. 4.2).
#pragma once

#include <map>
#include <string>

#include "loopnest/loop_nest.hpp"
#include "systolic/flow.hpp"

namespace systolize {

/// Per-stream motion summary used throughout the scheme.
struct StreamMotion {
  RatVec flow;              ///< flow.s (zero for stationary streams)
  bool stationary = false;  ///< flow.s == 0
  /// Direction elements physically travel: the nb-scaled flow for moving
  /// streams, the loading & recovery vector for stationary ones.
  IntVec direction;
  /// Denominator q of the flow (q-1 internal buffers per hop, Sect. 7.6);
  /// 1 for stationary streams.
  Int denominator = 1;
};

class ArraySpec {
 public:
  ArraySpec(StepFunction step, PlaceFunction place,
            std::map<std::string, IntVec> loading_vectors = {});

  [[nodiscard]] const StepFunction& step() const noexcept { return step_; }
  [[nodiscard]] const PlaceFunction& place() const noexcept { return place_; }
  [[nodiscard]] const std::map<std::string, IntVec>& loading_vectors()
      const noexcept {
    return loading_vectors_;
  }

  /// Compute the motion of a stream under this spec. For a stationary
  /// stream the loading & recovery vector must have been supplied.
  [[nodiscard]] StreamMotion motion_of(const Stream& s) const;

 private:
  StepFunction step_;
  PlaceFunction place_;
  std::map<std::string, IntVec> loading_vectors_;
};

/// Validate a (source, array) pair against the paper's requirements
/// (Appendix A and Sect. 3.2):
///  - step and place have arity r; place has rank r-1;
///  - step does not vanish on null.place (Theorem 3 — otherwise two
///    distinct statements would share both place and step, violating
///    Equation (1));
///  - every stream's flow is well defined and neighbour-restricted:
///    (E n : n > 0 : nb.(n * flow.s));
///  - every stationary stream has a neighbour loading & recovery vector.
void validate_array(const LoopNest& nest, const ArraySpec& spec);

}  // namespace systolize
