#include "systolic/dependence.hpp"

namespace systolize {
namespace {

/// Orient g so that moving a statement by +g advances it in the source
/// program's sequential execution order (lexicographic over the loops,
/// with each loop's direction given by its step sign).
IntVec sequential_orientation(const LoopNest& nest, IntVec g) {
  for (std::size_t i = 0; i < g.dim(); ++i) {
    if (g[i] == 0) continue;
    // The first loop level where the two statements differ decides.
    const Int loop_dir = nest.loops()[i].step;
    return g[i] * loop_dir > 0 ? g : -g;
  }
  raise(ErrorKind::Inconsistent, "zero dependence direction");
}

const Stream* violating_stream(const LoopNest& nest, const ArraySpec& spec) {
  for (const Stream& s : nest.streams()) {
    if (s.access() != StreamAccess::Update) continue;
    auto basis = s.index_map().null_space_basis();
    if (basis.size() != 1) {
      raise(ErrorKind::Validation,
            "stream '" + s.name() + "': index map null space must have "
            "dimension 1");
    }
    IntVec g = sequential_orientation(nest, basis.front());
    // Successive accesses to one element are g apart in sequential order;
    // the systolic schedule applies them in increasing step order, so
    // step must advance along +g.
    if (spec.step().apply(g) <= 0) return &s;
  }
  return nullptr;
}

}  // namespace

bool respects_dependences(const LoopNest& nest, const ArraySpec& spec) {
  return violating_stream(nest, spec) == nullptr;
}

void validate_dependences(const LoopNest& nest, const ArraySpec& spec) {
  const Stream* s = violating_stream(nest, spec);
  if (s != nullptr) {
    raise(ErrorKind::Inconsistent,
          "step reverses the sequential update order of stream '" +
              s->name() +
              "': the array is only correct for commutative bodies");
  }
}

}  // namespace systolize
