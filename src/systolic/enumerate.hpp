// Design-space enumeration: turn the verifier and the cost model into a
// generator of systolic designs.
//
// The paper takes (step, place) as given; AutoSA-style tools search the
// space-time mapping space instead. This module enumerates every linear
// candidate pair with coefficients in [-K, K], prunes with the exact
// machinery the repo already trusts, and ranks the survivors statically:
//
//   structural   place must have rank r-1 (Theorem 1's projection);
//   Theorem 3    step must not vanish on null.place (Equation (1));
//   spec rules   the PR-3 verifier at spec level (dependence order,
//                flow neighbourhood, loading vectors);
//   compile      the full scheme must accept the pair;
//   program/plan verifier-clean at program level and, per probe size, at
//                plan level off the interned NetworkPlan;
//   cost         survivors are scored by the static cost model and ranked
//                under a lexicographic objective (docs/static-analysis.md
//                "Cost model & exploration").
//
// Candidates are canonicalized before any expensive work: negating a
// place row or permuting rows only reflects/permutes the process grid, so
// each equivalence class is explored once, represented with every row's
// first non-zero component positive and rows in descending lexicographic
// order. Ties under the objective are broken deterministically: prefer
// the candidate whose place matrix is the canonical (reduced row-echelon)
// representative of its row space, then the lexicographically greatest
// step, then the smallest place matrix — so `explore` output is stable
// run to run.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/cost.hpp"
#include "systolic/array_spec.hpp"

namespace systolize {

struct EnumerateOptions {
  /// Coefficients of step and place searched over [-K, K].
  Int coeff_range = 1;
  /// Probe sizes: plan-level verification and the concrete cost metrics
  /// run at each. The last (largest) binding decides the ranking.
  std::vector<Env> sizes;
  /// Survivors kept after ranking.
  std::size_t top_k = 10;
  /// Drop candidates with stationary streams (no loading vectors needed).
  bool moving_only = false;
  /// Restrict to places sharing the seed's projection direction
  /// (null.place generator) — "the seed design's own search space".
  /// Requires a seed spec.
  bool same_projection = false;
  /// Explicit projection restriction (normalized, sign-insensitive);
  /// empty = unrestricted. same_projection fills this from the seed.
  IntVec projection;
};

/// One surviving candidate, verifier-clean at every probe size.
struct ExploreCandidate {
  StepFunction step;
  PlaceFunction place;
  /// Auto-supplied loading & recovery vectors for stationary streams.
  std::map<std::string, IntVec> loading;
  CostReport cost;
  /// The candidate is the seed spec's equivalence class.
  bool matches_seed = false;
};

/// Where the pruning pipeline spent the candidates.
struct ExploreStats {
  std::size_t enumerated = 0;       ///< canonical (step, place) pairs
  std::size_t pruned_rank = 0;      ///< place rank < r-1
  std::size_t pruned_projection = 0;///< projection restriction
  std::size_t pruned_theorem3 = 0;  ///< step vanishes on null.place
  std::size_t pruned_stationary = 0;///< moving_only dropped them
  std::size_t pruned_spec = 0;      ///< spec-level verifier errors
  std::size_t pruned_compile = 0;   ///< compile() refused
  std::size_t pruned_program = 0;   ///< program-level verifier errors
  std::size_t pruned_plan = 0;      ///< plan build/verify failed at a size
  std::size_t survivors = 0;        ///< ranked (before top_k truncation)

  [[nodiscard]] std::string to_string() const;
};

struct ExploreResult {
  std::vector<ExploreCandidate> ranked;  ///< best first, <= top_k entries
  ExploreStats stats;
};

/// The default objective's comparison: lexicographic over the last probe
/// size's metrics — makespan, total processes, i/o + buffer overhead,
/// soak + drain prologue, channels, imbalance. True when a scores
/// strictly better than b.
[[nodiscard]] bool cost_preferred(const CostMetrics& a, const CostMetrics& b);

/// Enumerate, prune, score and rank. `seed` (optional) marks its own
/// class in the result and anchors --same-projection. Throws
/// Error(Validation) on unusable options (no probe sizes,
/// same_projection without seed); candidate-level failures never throw —
/// they are pruned and tallied.
[[nodiscard]] ExploreResult enumerate_designs(const LoopNest& nest,
                                              const ArraySpec* seed,
                                              const EnumerateOptions& options);

/// The cheap front half of the pruning pipeline, exposed for the fuzzer:
/// every canonical (step, place) pair with coefficients in [-K, K] that
/// survives rank → Theorem 3 → spec-level verification, with loading &
/// recovery vectors auto-supplied for stationary streams. No compile,
/// cost scoring or plan expansion happens — candidates come back in
/// deterministic enumeration order (at most `limit` of them), so a
/// seeded RNG can pick one reproducibly.
[[nodiscard]] std::vector<ArraySpec> enumerate_spec_candidates(
    const LoopNest& nest, Int coeff_range, std::size_t limit);

}  // namespace systolize
