// Stream flow (paper Sect. 3.2 and Theorem 10): the direction and distance
// a stream's elements travel per step.
#pragma once

#include "loopnest/stream.hpp"
#include "systolic/step_place.hpp"

namespace systolize {

/// flow.s = place.n / step.n for any generator n of null.(M.s)
/// (well-defined by Theorem 10). Throws Inconsistent if step.n == 0 — then
/// two statements sharing a stream element would execute at the same step
/// on different processors, violating Equation (1)'s premises.
[[nodiscard]] RatVec compute_flow(const Stream& s, const StepFunction& step,
                                  const PlaceFunction& place);

/// Decompose a flow into (direction, denominator): flow = p / q with p the
/// smallest integer vector along flow and q > 0. For the zero flow
/// (stationary stream) returns ({0,...}, 1).
struct FlowDecomposition {
  IntVec direction;  ///< integer vector; must satisfy nb (Sect. 3.2)
  Int denominator;   ///< q; q-1 internal buffers per hop (Sect. 7.6)
};

[[nodiscard]] FlowDecomposition decompose_flow(const RatVec& flow);

}  // namespace systolize
