// The two distribution functions that completely determine a systolic
// array (paper Sect. 3.2): step :: Op -> Z and place :: Op -> Z^{r-1}.
// Both are linear and identified with their (integer) matrices.
#pragma once

#include "numeric/int_matrix.hpp"
#include "symbolic/affine_point.hpp"

namespace systolize {

/// step.(x) = coeffs . x — the temporal distribution.
class StepFunction {
 public:
  StepFunction() = default;
  explicit StepFunction(IntVec coeffs) : coeffs_(std::move(coeffs)) {}

  [[nodiscard]] const IntVec& coeffs() const noexcept { return coeffs_; }
  [[nodiscard]] std::size_t arity() const noexcept { return coeffs_.dim(); }

  [[nodiscard]] Int apply(const IntVec& x) const { return coeffs_.dot(x); }
  [[nodiscard]] AffineExpr apply(const AffinePoint& x) const {
    return x.dot(coeffs_);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  IntVec coeffs_;
};

/// place.(x) = M * x — the spatial distribution onto Z^{r-1}.
class PlaceFunction {
 public:
  PlaceFunction() = default;
  explicit PlaceFunction(IntMatrix matrix) : matrix_(std::move(matrix)) {}

  [[nodiscard]] const IntMatrix& matrix() const noexcept { return matrix_; }
  /// r — the number of loop indices.
  [[nodiscard]] std::size_t arity() const noexcept { return matrix_.cols(); }
  /// r-1 — the dimension of the computation space.
  [[nodiscard]] std::size_t space_dim() const noexcept {
    return matrix_.rows();
  }

  [[nodiscard]] IntVec apply(const IntVec& x) const {
    return matrix_.apply(x);
  }
  [[nodiscard]] AffinePoint apply(const AffinePoint& x) const {
    return x.applied(matrix_);
  }

  /// The single gcd-normalized generator of null.place (Theorem 1 proves
  /// the null space has dimension exactly 1 when rank = r-1); throws
  /// Validation otherwise.
  [[nodiscard]] IntVec null_generator() const;

  /// True when place is a projection along a single axis (Sect. 7.2.3):
  /// exactly one component of the null generator is non-zero.
  [[nodiscard]] bool is_simple() const;

  [[nodiscard]] std::string to_string() const;

 private:
  IntMatrix matrix_;
};

}  // namespace systolize
