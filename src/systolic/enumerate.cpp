#include "systolic/enumerate.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "analysis/verify.hpp"
#include "scheme/compiler.hpp"

namespace systolize {
namespace {

/// All non-zero vectors of Z^dim with components in [-k, k].
std::vector<IntVec> all_vectors(std::size_t dim, Int k) {
  std::vector<IntVec> out;
  IntVec v(dim);
  for (std::size_t i = 0; i < dim; ++i) v[i] = -k;
  for (;;) {
    if (!v.is_zero()) out.push_back(v);
    std::size_t i = 0;
    while (i < dim && v[i] == k) v[i++] = -k;
    if (i == dim) return out;
    ++v[i];
  }
}

/// Negating a row reflects one process-grid axis; orient each row with
/// its first non-zero component positive.
IntVec oriented(IntVec v) {
  for (std::size_t i = 0; i < v.dim(); ++i) {
    if (v[i] != 0) return v[i] > 0 ? v : -v;
  }
  return v;
}

/// Canonical representative of a place matrix under row negation and
/// permutation: oriented rows, descending lexicographic order.
std::vector<IntVec> canonical_rows(const IntMatrix& m) {
  std::vector<IntVec> rows;
  rows.reserve(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) rows.push_back(oriented(m.row(r)));
  std::sort(rows.begin(), rows.end(), [](const IntVec& a, const IntVec& b) {
    return b.comps() < a.comps();
  });
  return rows;
}

/// The reduced row-echelon representative of the matrix's row space, each
/// row scaled to a primitive integer vector. Used as the preferred-form
/// tie-break: among cost-tied candidates of one row space (unimodular
/// shears of each other), the RREF form is the one the appendix designs
/// are written in.
std::vector<IntVec> rref_rows(const IntMatrix& m) {
  const std::size_t rows = m.rows();
  const std::size_t cols = m.cols();
  std::vector<std::vector<Rational>> a(rows, std::vector<Rational>(cols));
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) a[i][j] = Rational(m.at(i, j));
  }
  std::size_t lead = 0;
  for (std::size_t r = 0; r < rows && lead < cols; ++lead) {
    std::size_t pivot = r;
    while (pivot < rows && a[pivot][lead].is_zero()) ++pivot;
    if (pivot == rows) continue;
    std::swap(a[pivot], a[r]);
    const Rational scale = a[r][lead].reciprocal();
    for (std::size_t j = 0; j < cols; ++j) a[r][j] *= scale;
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == r || a[i][lead].is_zero()) continue;
      const Rational f = a[i][lead];
      for (std::size_t j = 0; j < cols; ++j) a[i][j] -= f * a[r][j];
    }
    ++r;
  }
  std::vector<IntVec> out;
  for (const std::vector<Rational>& row : a) {
    Int denom = 1;
    bool zero = true;
    for (const Rational& c : row) {
      if (c.is_zero()) continue;
      zero = false;
      denom = lcm(denom, c.den());
    }
    if (zero) continue;
    IntVec iv(cols);
    for (std::size_t j = 0; j < cols; ++j) {
      iv[j] = (row[j] * Rational(denom)).to_integer();
    }
    out.push_back(iv.normalized());
  }
  return out;
}

bool is_rref_form(const IntMatrix& m) {
  const std::vector<IntVec> canon = rref_rows(m);
  if (canon.size() != m.rows()) return false;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (m.row(r) != canon[r]) return false;
  }
  return true;
}

std::optional<IntVec> unique_null_generator(const IntMatrix& m) {
  auto basis = m.null_space_basis();
  if (basis.size() != 1) return std::nullopt;
  return basis.front();
}

struct Ranked {
  ExploreCandidate cand;
  CostMetrics key;  ///< metrics at the last probe size
  bool rref_form = false;
};

bool ranked_before(const Ranked& a, const Ranked& b) {
  if (cost_preferred(a.key, b.key)) return true;
  if (cost_preferred(b.key, a.key)) return false;
  if (a.rref_form != b.rref_form) return a.rref_form;
  const auto& sa = a.cand.step.coeffs().comps();
  const auto& sb = b.cand.step.coeffs().comps();
  if (sa != sb) return sa > sb;  // prefer the lexicographically greatest step
  return a.cand.place.matrix().to_string() < b.cand.place.matrix().to_string();
}

}  // namespace

bool cost_preferred(const CostMetrics& a, const CostMetrics& b) {
  if (a.makespan != b.makespan) return a.makespan < b.makespan;
  if (a.processes != b.processes) return a.processes < b.processes;
  const Int ao = a.io + a.buffer;
  const Int bo = b.io + b.buffer;
  if (ao != bo) return ao < bo;
  const Int ap = a.soak_max + a.drain_max;
  const Int bp = b.soak_max + b.drain_max;
  if (ap != bp) return ap < bp;
  if (a.channels != b.channels) return a.channels < b.channels;
  if (a.imbalance != b.imbalance) return a.imbalance < b.imbalance;
  return false;
}

std::string ExploreStats::to_string() const {
  std::ostringstream os;
  os << "enumerated " << enumerated << " candidate pair(s): " << survivors
     << " verifier-clean, pruned " << pruned_rank << " rank, "
     << pruned_projection << " projection, " << pruned_theorem3
     << " theorem-3, " << pruned_stationary << " stationary, " << pruned_spec
     << " spec, " << pruned_compile << " compile, " << pruned_program
     << " program, " << pruned_plan << " plan";
  return os.str();
}

std::vector<ArraySpec> enumerate_spec_candidates(const LoopNest& nest,
                                                 Int coeff_range,
                                                 std::size_t limit) {
  const std::size_t r = nest.depth();
  if (r < 2) {
    raise(ErrorKind::Validation,
          "spec enumeration needs a nesting depth of >= 2");
  }
  if (coeff_range < 1) {
    raise(ErrorKind::Validation,
          "spec enumeration needs a coefficient range >= 1");
  }

  std::vector<std::optional<IntVec>> stream_nulls;
  for (const Stream& s : nest.streams()) {
    stream_nulls.push_back(unique_null_generator(s.index_map()));
  }

  const std::vector<IntVec> steps = [&] {
    std::vector<IntVec> out;
    for (IntVec& v : all_vectors(r, coeff_range)) {
      if (v.content() == 1) out.push_back(std::move(v));
    }
    return out;
  }();
  const std::vector<IntVec> rows = [&] {
    std::vector<IntVec> out;
    for (IntVec& v : all_vectors(r, coeff_range)) {
      out.push_back(oriented(std::move(v)));
    }
    std::sort(out.begin(), out.end(), [](const IntVec& a, const IntVec& b) {
      return b.comps() < a.comps();
    });
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }();

  std::vector<ArraySpec> survivors;
  std::vector<std::size_t> pick(r - 1);
  for (std::size_t i = 0; i < r - 1; ++i) pick[i] = i;
  const std::size_t nrows = rows.size();
  auto advance = [&]() -> bool {
    std::size_t i = r - 1;
    while (i-- > 0) {
      if (pick[i] + (r - 1 - i) < nrows) {
        ++pick[i];
        for (std::size_t j = i + 1; j < r - 1; ++j) pick[j] = pick[j - 1] + 1;
        return true;
      }
    }
    return false;
  };
  if (nrows < r - 1) return survivors;

  do {
    IntMatrix pm(r - 1, r);
    for (std::size_t i = 0; i < r - 1; ++i) {
      for (std::size_t j = 0; j < r; ++j) pm.at(i, j) = rows[pick[i]][j];
    }
    if (pm.rank() != r - 1) continue;
    const IntVec w = *unique_null_generator(pm);
    PlaceFunction place(pm);

    for (const IntVec& sc : steps) {
      if (sc.dot(w) == 0) continue;  // Theorem 3
      std::map<std::string, IntVec> loading;
      for (std::size_t si = 0; si < nest.streams().size(); ++si) {
        if (!stream_nulls[si].has_value()) continue;
        const IntVec& n = *stream_nulls[si];
        if (!place.apply(n).is_zero()) continue;  // moving
        IntVec e0(r - 1);
        e0[0] = 1;
        loading[nest.streams()[si].name()] = e0;
      }
      ArraySpec spec(StepFunction(sc), place, loading);
      if (!verify_spec(nest, spec).clean()) continue;
      survivors.push_back(std::move(spec));
      if (survivors.size() >= limit) return survivors;
    }
  } while (advance());
  return survivors;
}

ExploreResult enumerate_designs(const LoopNest& nest, const ArraySpec* seed,
                                const EnumerateOptions& options) {
  const std::size_t r = nest.depth();
  if (r < 2) {
    raise(ErrorKind::Validation, "explore needs a nesting depth of >= 2");
  }
  if (options.sizes.empty()) {
    raise(ErrorKind::Validation, "explore needs at least one probe size");
  }
  if (options.coeff_range < 1) {
    raise(ErrorKind::Validation, "explore needs a coefficient range >= 1");
  }
  if (options.same_projection && seed == nullptr) {
    raise(ErrorKind::Validation,
          "--same-projection needs a seed design's place to anchor to");
  }

  IntVec projection = options.projection;
  if (options.same_projection) projection = seed->place().null_generator();
  if (projection.dim() != 0) projection = oriented(projection.normalized());

  std::optional<std::vector<IntVec>> seed_rows;
  if (seed != nullptr) seed_rows = canonical_rows(seed->place().matrix());

  // Per-stream dependence directions, for the stationary test. A stream
  // whose index map is not rank r-1 poisons every candidate — the spec
  // verifier reports it (stream.rank) on the first one we score.
  std::vector<std::optional<IntVec>> stream_nulls;
  for (const Stream& s : nest.streams()) {
    stream_nulls.push_back(unique_null_generator(s.index_map()));
  }

  const std::vector<IntVec> steps = [&] {
    std::vector<IntVec> out;
    for (IntVec& v : all_vectors(r, options.coeff_range)) {
      if (v.content() == 1) out.push_back(std::move(v));  // primitive only
    }
    return out;
  }();

  // Candidate place rows: oriented and deduplicated; matrices are built
  // as strictly descending row sequences, which enumerates exactly one
  // member of every canonical class.
  const std::vector<IntVec> rows = [&] {
    std::vector<IntVec> out;
    for (IntVec& v : all_vectors(r, options.coeff_range)) {
      out.push_back(oriented(std::move(v)));
    }
    std::sort(out.begin(), out.end(),
              [](const IntVec& a, const IntVec& b) {
                return b.comps() < a.comps();
              });
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }();

  ExploreResult result;
  ExploreStats& stats = result.stats;
  std::vector<Ranked> survivors;

  // Odometer over strictly increasing index tuples into `rows` — rows are
  // sorted descending, so each matrix has descending (canonical) rows.
  std::vector<std::size_t> pick(r - 1);
  for (std::size_t i = 0; i < r - 1; ++i) pick[i] = i;
  const std::size_t nrows = rows.size();
  auto advance = [&]() -> bool {
    std::size_t i = r - 1;
    while (i-- > 0) {
      if (pick[i] + (r - 1 - i) < nrows) {
        ++pick[i];
        for (std::size_t j = i + 1; j < r - 1; ++j) pick[j] = pick[j - 1] + 1;
        return true;
      }
    }
    return false;
  };
  if (nrows < r - 1) return result;

  do {
    IntMatrix pm(r - 1, r);
    for (std::size_t i = 0; i < r - 1; ++i) {
      for (std::size_t j = 0; j < r; ++j) pm.at(i, j) = rows[pick[i]][j];
    }
    stats.enumerated += steps.size();
    if (pm.rank() != r - 1) {
      stats.pruned_rank += steps.size();
      continue;
    }
    const IntVec w = *unique_null_generator(pm);
    if (projection.dim() != 0 && oriented(w) != projection) {
      stats.pruned_projection += steps.size();
      continue;
    }
    PlaceFunction place(pm);

    for (const IntVec& sc : steps) {
      StepFunction step(sc);
      if (sc.dot(w) == 0) {
        ++stats.pruned_theorem3;
        continue;
      }

      // Stationary streams get the catalog's conventional loading &
      // recovery vector, the first process-grid axis (a neighbour).
      std::map<std::string, IntVec> loading;
      bool drop = false;
      for (std::size_t si = 0; si < nest.streams().size(); ++si) {
        if (!stream_nulls[si].has_value()) continue;  // verifier will say
        const IntVec& n = *stream_nulls[si];
        if (!place.apply(n).is_zero()) continue;  // moving
        if (options.moving_only) {
          drop = true;
          break;
        }
        IntVec e0(r - 1);
        e0[0] = 1;
        loading[nest.streams()[si].name()] = e0;
      }
      if (drop) {
        ++stats.pruned_stationary;
        continue;
      }

      ArraySpec spec(step, place, loading);
      if (!verify_spec(nest, spec).clean()) {
        ++stats.pruned_spec;
        continue;
      }

      Ranked ranked;
      std::optional<CompiledProgram> prog;
      try {
        prog.emplace(compile(nest, spec));
      } catch (const Error&) {
        ++stats.pruned_compile;
        continue;
      }
      if (!verify_program(*prog, nest).clean()) {
        ++stats.pruned_program;
        continue;
      }
      ranked.cand.cost.design = prog->name;
      ranked.cand.cost.formulas = derive_cost_formulas(*prog, nest);
      bool plan_ok = true;
      try {
        for (const Env& env : options.sizes) {
          const auto plan = build_plan(*prog, nest, env, PlanShape{});
          if (!verify_plan(*plan).clean()) {
            plan_ok = false;
            break;
          }
          CostReport::AtSize row;
          for (const auto& [name, value] : env) row.sizes[name] = value.floor();
          row.metrics = cost_metrics_of(*prog, nest, env, *plan);
          ranked.key = row.metrics;
          ranked.cand.cost.at.push_back(std::move(row));
        }
      } catch (const Error&) {
        plan_ok = false;
      }
      if (!plan_ok) {
        ++stats.pruned_plan;
        continue;
      }

      ranked.cand.step = step;
      ranked.cand.place = place;
      ranked.cand.loading = std::move(loading);
      ranked.rref_form = is_rref_form(pm);
      if (seed != nullptr) {
        ranked.cand.matches_seed =
            sc == seed->step().coeffs() && canonical_rows(pm) == *seed_rows;
      }
      survivors.push_back(std::move(ranked));
    }
  } while (advance());

  std::stable_sort(survivors.begin(), survivors.end(), ranked_before);
  stats.survivors = survivors.size();
  const std::size_t keep = std::min(options.top_k, survivors.size());
  result.ranked.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    result.ranked.push_back(std::move(survivors[i].cand));
  }
  return result;
}

}  // namespace systolize
