#include "systolic/step_place.hpp"

#include <sstream>

namespace systolize {

std::string StepFunction::to_string() const {
  std::ostringstream os;
  os << "step" << coeffs_.to_string();
  return os.str();
}

IntVec PlaceFunction::null_generator() const {
  auto basis = matrix_.null_space_basis();
  if (basis.size() != 1) {
    raise(ErrorKind::Validation,
          "place must have rank r-1 (null space of dimension 1); null space "
          "has dimension " +
              std::to_string(basis.size()));
  }
  return basis.front();
}

bool PlaceFunction::is_simple() const {
  IntVec g = null_generator();
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < g.dim(); ++i) {
    if (g[i] != 0) ++nonzero;
  }
  return nonzero == 1;
}

std::string PlaceFunction::to_string() const {
  std::ostringstream os;
  os << "place" << matrix_.to_string();
  return os.str();
}

}  // namespace systolize
