#include "systolic/flow.hpp"

namespace systolize {

RatVec compute_flow(const Stream& s, const StepFunction& step,
                    const PlaceFunction& place) {
  auto basis = s.index_map().null_space_basis();
  if (basis.size() != 1) {
    raise(ErrorKind::Validation,
          "stream '" + s.name() +
              "': index map null space must have dimension 1");
  }
  const IntVec& n = basis.front();
  Int t = step.apply(n);
  if (t == 0) {
    raise(ErrorKind::Inconsistent,
          "stream '" + s.name() +
              "': step vanishes on the index-map null space; step and the "
              "stream accesses are inconsistent (violates Equation (1))");
  }
  IntVec p = place.apply(n);
  RatVec flow(p.dim());
  for (std::size_t i = 0; i < p.dim(); ++i) {
    flow[i] = Rational(p[i], t);
  }
  return flow;
}

FlowDecomposition decompose_flow(const RatVec& flow) {
  if (flow.is_zero()) {
    return FlowDecomposition{IntVec(std::vector<Int>(flow.dim(), 0)), 1};
  }
  Int q = flow.denominator_lcm();
  RatVec scaled = flow * Rational(q);
  return FlowDecomposition{scaled.to_int_vec(), q};
}

}  // namespace systolize
