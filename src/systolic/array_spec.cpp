#include "systolic/array_spec.hpp"

namespace systolize {

ArraySpec::ArraySpec(StepFunction step, PlaceFunction place,
                     std::map<std::string, IntVec> loading_vectors)
    : step_(std::move(step)),
      place_(std::move(place)),
      loading_vectors_(std::move(loading_vectors)) {}

StreamMotion ArraySpec::motion_of(const Stream& s) const {
  StreamMotion m;
  m.flow = compute_flow(s, step_, place_);
  m.stationary = m.flow.is_zero();
  if (m.stationary) {
    auto it = loading_vectors_.find(s.name());
    if (it == loading_vectors_.end()) {
      raise(ErrorKind::Validation,
            "stationary stream '" + s.name() +
                "' needs a loading & recovery vector");
    }
    m.direction = it->second;
    m.denominator = 1;
  } else {
    FlowDecomposition d = decompose_flow(m.flow);
    m.direction = d.direction;
    m.denominator = d.denominator;
  }
  return m;
}

void validate_array(const LoopNest& nest, const ArraySpec& spec) {
  const std::size_t r = nest.depth();
  if (spec.step().arity() != r) {
    raise(ErrorKind::Validation,
          "step has arity " + std::to_string(spec.step().arity()) +
              ", expected r = " + std::to_string(r));
  }
  if (spec.place().arity() != r || spec.place().space_dim() != r - 1) {
    raise(ErrorKind::Validation,
          "place must be (r-1) x r = " + std::to_string(r - 1) + " x " +
              std::to_string(r));
  }

  // Theorem 1 precondition + Theorem 3: rank r-1 and step.null_p != 0.
  IntVec null_p = spec.place().null_generator();
  if (spec.step().apply(null_p) == 0) {
    raise(ErrorKind::Inconsistent,
          "step vanishes on null.place: distinct statements would share "
          "both place and step (violates Equation (1))");
  }

  for (const Stream& s : nest.streams()) {
    StreamMotion m = spec.motion_of(s);
    if (m.direction.dim() != r - 1) {
      raise(ErrorKind::Validation,
            "stream '" + s.name() + "': direction vector must live in the "
            "(r-1)-dimensional process space");
    }
    if (m.stationary) {
      if (m.direction.is_zero()) {
        raise(ErrorKind::Validation,
              "stream '" + s.name() +
                  "': loading & recovery vector must be non-zero");
      }
      if (!m.direction.is_neighbour_offset()) {
        raise(ErrorKind::Validation,
              "stream '" + s.name() +
                  "': loading & recovery vector must connect neighbours, got " +
                  m.direction.to_string());
      }
    } else if (!m.direction.is_neighbour_offset()) {
      raise(ErrorKind::Validation,
            "stream '" + s.name() + "': flow " + m.flow.to_string() +
                " violates the neighbouring-connection requirement "
                "(no n > 0 with nb.(n * flow))");
    }
  }
}

}  // namespace systolize
