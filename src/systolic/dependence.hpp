// Dependence checking.
//
// The paper assumes "the systolic array is ... correct with respect to the
// source program" (Sect. 3): step must define "a partial order that
// respects the data dependences". A compiler should verify this rather
// than assume it. For a stream whose element is re-assigned (Update), the
// statements touching one element form a chain along the null direction of
// its index map; the systolic execution applies them in increasing step
// order, so correctness for a non-commutative body requires that order to
// match the source program's sequential order.
//
// Note the scheme itself never uses this check (the paper's examples all
// accumulate commutatively, where any order gives the same sum); it is an
// extension, surfaced through validate_dependences() and the CLI report.
#pragma once

#include "systolic/array_spec.hpp"

namespace systolize {

/// True iff, for every Update stream, the step order of the accesses to
/// each element agrees with the sequential execution order.
[[nodiscard]] bool respects_dependences(const LoopNest& nest,
                                        const ArraySpec& spec);

/// Raise Error(Inconsistent) naming the offending stream when
/// respects_dependences() fails.
void validate_dependences(const LoopNest& nest, const ArraySpec& spec);

}  // namespace systolize
