// Ready-made (source program, systolic array) pairs: the paper's two
// appendix examples (two designs each) plus further classic kernels that
// satisfy the Appendix-A restrictions.
#pragma once

#include <string>
#include <vector>

#include "systolic/array_spec.hpp"

namespace systolize {

struct Design {
  LoopNest nest;
  ArraySpec spec;
  std::string description;
};

/// Appendix D.1 — polynomial product, place.(i,j) = i (simple; stream a
/// stationary, b has flow 1/2).
[[nodiscard]] Design polyprod_design1();

/// Appendix D.2 — polynomial product, place.(i,j) = i+j (non-simple;
/// stream c stationary).
[[nodiscard]] Design polyprod_design2();

/// Appendix E.1 — matrix product, place.(i,j,k) = (i,j) (simple; c
/// stationary — the "collapse the inner loop" parallelization).
[[nodiscard]] Design matmul_design1();

/// Appendix E.2 — matrix product, place.(i,j,k) = (i-k,j-k): the
/// Kung-Leiserson array; PS != CS, external buffers appear.
[[nodiscard]] Design matmul_design2();

/// Extension — matrix product, place.(i,j,k) = (i,k): a stationary, b and
/// c moving along different axes.
[[nodiscard]] Design matmul_design3();

/// Extension — matrix product, place.(i,j,k) = (k,j): b stationary,
/// completing the trio of which-operand-stays-resident choices.
[[nodiscard]] Design matmul_design4();

/// Extension — polynomial product, place.(i,j) = j: b stationary and the
/// result stream c flows *against* a (flow -1 vs +1/2).
[[nodiscard]] Design polyprod_design3();

/// Extension — FIR convolution y[i] = sum_j w[j]*x[i+j] with
/// step.(i,j) = i+2j, place.(i,j) = i: counter-flowing x (flow -1) against
/// w (flow +1), y stationary.
[[nodiscard]] Design convolution_design();

/// Extension — correlation c[i-j] += a[i]*b[j] with step.(i,j) = i+2j,
/// place.(i,j) = i: stream c has flow 1/3 (two internal buffers per hop).
[[nodiscard]] Design correlation_design();

/// Extension — FIR filter bank y[i,f] += w[f,j]*x[i+j] with the signal
/// replicated per filter row; step.(i,f,j) = i+f+2j, place.(i,f,j) = (i,f):
/// y stationary on an (n+1) x (m+1) grid, w and x counter-flowing.
[[nodiscard]] Design fir_bank_design();

/// Extension — transitive-closure step c[i,j] += t[i,k]*u[k,j] with a
/// DESCENDING k loop; step.(i,j,k) = i+j-k, place.(i,j,k) = (i,j).
[[nodiscard]] Design closure_design();

/// All catalog designs, for parameterized tests and benches.
[[nodiscard]] std::vector<Design> all_designs();

/// The catalog keys accepted by design_by_name(), in all_designs() order.
/// Distinct from LoopNest names, which are shared across design variants
/// of one source program (e.g. all four matmul arrays are nest "matmul").
[[nodiscard]] std::vector<std::string> catalog_names();

/// Look up a catalog design by name ("polyprod1", "matmul2", ...).
[[nodiscard]] Design design_by_name(const std::string& name);

}  // namespace systolize
