#include "designs/catalog.hpp"

namespace systolize {
namespace {

Guard n_at_least_one() {
  Guard g;
  g.add(Constraint{AffineExpr(1), AffineExpr(size_symbol("n"))});
  return g;
}

/// c += a * b with the given stream names.
StatementBody mul_accumulate(std::string a, std::string b, std::string c) {
  return [a = std::move(a), b = std::move(b),
          c = std::move(c)](std::map<std::string, Value>& v) {
    v.at(c) += v.at(a) * v.at(b);
  };
}

LoopNest polyprod_nest() {
  Symbol n = size_symbol("n");
  AffineExpr zero(0);
  AffineExpr en(n);
  std::vector<LoopSpec> loops = {
      {"i", zero, en, 1},
      {"j", zero, en, 1},
  };
  std::vector<Stream> streams = {
      Stream("a", IntMatrix{{1, 0}}, {VarDim{zero, en}}, StreamAccess::Read),
      Stream("b", IntMatrix{{0, 1}}, {VarDim{zero, en}}, StreamAccess::Read),
      Stream("c", IntMatrix{{1, 1}}, {VarDim{zero, en * Rational(2)}},
             StreamAccess::Update),
  };
  return LoopNest("polyprod", std::move(loops), std::move(streams), {n},
                  n_at_least_one(), mul_accumulate("a", "b", "c"),
                  "c := c + a * b");
}

LoopNest matmul_nest() {
  Symbol n = size_symbol("n");
  AffineExpr zero(0);
  AffineExpr en(n);
  std::vector<LoopSpec> loops = {
      {"i", zero, en, 1},
      {"j", zero, en, 1},
      {"k", zero, en, 1},
  };
  std::vector<Stream> streams = {
      Stream("a", IntMatrix{{1, 0, 0}, {0, 0, 1}},
             {VarDim{zero, en}, VarDim{zero, en}}, StreamAccess::Read),
      Stream("b", IntMatrix{{0, 0, 1}, {0, 1, 0}},
             {VarDim{zero, en}, VarDim{zero, en}}, StreamAccess::Read),
      Stream("c", IntMatrix{{1, 0, 0}, {0, 1, 0}},
             {VarDim{zero, en}, VarDim{zero, en}}, StreamAccess::Update),
  };
  return LoopNest("matmul", std::move(loops), std::move(streams), {n},
                  n_at_least_one(), mul_accumulate("a", "b", "c"),
                  "c := c + a * b");
}

}  // namespace

Design polyprod_design1() {
  return Design{
      polyprod_nest(),
      ArraySpec(StepFunction(IntVec{2, 1}), PlaceFunction(IntMatrix{{1, 0}}),
                {{"a", IntVec{1}}}),
      "polynomial product, place.(i,j) = i (Appendix D.1)"};
}

Design polyprod_design2() {
  return Design{
      polyprod_nest(),
      ArraySpec(StepFunction(IntVec{2, 1}), PlaceFunction(IntMatrix{{1, 1}}),
                {{"c", IntVec{1}}}),
      "polynomial product, place.(i,j) = i+j (Appendix D.2)"};
}

Design matmul_design1() {
  return Design{matmul_nest(),
                ArraySpec(StepFunction(IntVec{1, 1, 1}),
                          PlaceFunction(IntMatrix{{1, 0, 0}, {0, 1, 0}}),
                          {{"c", IntVec{1, 0}}}),
                "matrix product, place.(i,j,k) = (i,j) (Appendix E.1)"};
}

Design matmul_design2() {
  return Design{matmul_nest(),
                ArraySpec(StepFunction(IntVec{1, 1, 1}),
                          PlaceFunction(IntMatrix{{1, 0, -1}, {0, 1, -1}})),
                "matrix product, place.(i,j,k) = (i-k,j-k) — the "
                "Kung-Leiserson array (Appendix E.2)"};
}

Design matmul_design3() {
  return Design{matmul_nest(),
                ArraySpec(StepFunction(IntVec{1, 1, 1}),
                          PlaceFunction(IntMatrix{{1, 0, 0}, {0, 0, 1}}),
                          {{"a", IntVec{0, 1}}}),
                "matrix product, place.(i,j,k) = (i,k) — a stationary"};
}

Design matmul_design4() {
  return Design{matmul_nest(),
                ArraySpec(StepFunction(IntVec{1, 1, 1}),
                          PlaceFunction(IntMatrix{{0, 0, 1}, {0, 1, 0}}),
                          {{"b", IntVec{1, 0}}}),
                "matrix product, place.(i,j,k) = (k,j) — b stationary"};
}

Design polyprod_design3() {
  return Design{
      polyprod_nest(),
      ArraySpec(StepFunction(IntVec{2, 1}), PlaceFunction(IntMatrix{{0, 1}}),
                {{"b", IntVec{1}}}),
      "polynomial product, place.(i,j) = j — b stationary, c flows against "
      "a"};
}

Design convolution_design() {
  Symbol n = size_symbol("n");
  Symbol m = size_symbol("m");
  AffineExpr zero(0);
  AffineExpr en(n);
  AffineExpr em(m);
  std::vector<LoopSpec> loops = {
      {"i", zero, en, 1},
      {"j", zero, em, 1},
  };
  std::vector<Stream> streams = {
      Stream("w", IntMatrix{{0, 1}}, {VarDim{zero, em}}, StreamAccess::Read),
      Stream("x", IntMatrix{{1, 1}}, {VarDim{zero, en + em}},
             StreamAccess::Read),
      Stream("y", IntMatrix{{1, 0}}, {VarDim{zero, en}}, StreamAccess::Update),
  };
  Guard g;
  g.add(Constraint{AffineExpr(1), en});
  g.add(Constraint{AffineExpr(1), em});
  LoopNest nest("convolution", std::move(loops), std::move(streams), {n, m},
                std::move(g), mul_accumulate("w", "x", "y"),
                "y := y + w * x");
  return Design{std::move(nest),
                ArraySpec(StepFunction(IntVec{1, 2}),
                          PlaceFunction(IntMatrix{{1, 0}}),
                          {{"y", IntVec{1}}}),
                "FIR convolution, place.(i,j) = i: x flows against w"};
}

Design correlation_design() {
  Symbol n = size_symbol("n");
  AffineExpr zero(0);
  AffineExpr en(n);
  std::vector<LoopSpec> loops = {
      {"i", zero, en, 1},
      {"j", zero, en, 1},
  };
  std::vector<Stream> streams = {
      Stream("a", IntMatrix{{1, 0}}, {VarDim{zero, en}}, StreamAccess::Read),
      Stream("b", IntMatrix{{0, 1}}, {VarDim{zero, en}}, StreamAccess::Read),
      Stream("c", IntMatrix{{1, -1}}, {VarDim{-en, en}},
             StreamAccess::Update),
  };
  LoopNest nest("correlation", std::move(loops), std::move(streams), {n},
                n_at_least_one(), mul_accumulate("a", "b", "c"),
                "c := c + a * b");
  return Design{std::move(nest),
                ArraySpec(StepFunction(IntVec{1, 2}),
                          PlaceFunction(IntMatrix{{1, 0}}),
                          {{"a", IntVec{1}}}),
                "correlation c[i-j] += a[i]*b[j]: stream c has flow 1/3"};
}

Design fir_bank_design() {
  Symbol n = size_symbol("n");
  Symbol m = size_symbol("m");
  AffineExpr zero(0);
  AffineExpr en(n);
  AffineExpr em(m);
  std::vector<LoopSpec> loops = {
      {"i", zero, en, 1},
      {"f", zero, em, 1},
      {"j", zero, em, 1},
  };
  // The signal is replicated per filter row (x indexed [i+j, f]) so every
  // stream keeps the rank r-1 = 2 full-pipelining restriction demands.
  std::vector<Stream> streams = {
      Stream("w", IntMatrix{{0, 1, 0}, {0, 0, 1}},
             {VarDim{zero, em}, VarDim{zero, em}}, StreamAccess::Read),
      Stream("x", IntMatrix{{1, 0, 1}, {0, 1, 0}},
             {VarDim{zero, en + em}, VarDim{zero, em}}, StreamAccess::Read),
      Stream("y", IntMatrix{{1, 0, 0}, {0, 1, 0}},
             {VarDim{zero, en}, VarDim{zero, em}}, StreamAccess::Update),
  };
  Guard g;
  g.add(Constraint{AffineExpr(1), en});
  g.add(Constraint{AffineExpr(1), em});
  LoopNest nest("fir_bank", std::move(loops), std::move(streams), {n, m},
                std::move(g), mul_accumulate("w", "x", "y"),
                "y := y + w * x");
  return Design{std::move(nest),
                ArraySpec(StepFunction(IntVec{1, 1, 2}),
                          PlaceFunction(IntMatrix{{1, 0, 0}, {0, 1, 0}}),
                          {{"y", IntVec{1, 0}}}),
                "FIR filter bank, place.(i,f,j) = (i,f): y stationary, "
                "w and x counter-flow along the tap axis"};
}

Design closure_design() {
  Symbol n = size_symbol("n");
  AffineExpr zero(0);
  AffineExpr en(n);
  // The k loop runs descending; the step's negative k coefficient keeps
  // c's update order consistent with sequential execution.
  std::vector<LoopSpec> loops = {
      {"i", zero, en, 1},
      {"j", zero, en, 1},
      {"k", zero, en, -1},
  };
  std::vector<Stream> streams = {
      Stream("t", IntMatrix{{1, 0, 0}, {0, 0, 1}},
             {VarDim{zero, en}, VarDim{zero, en}}, StreamAccess::Read),
      Stream("u", IntMatrix{{0, 0, 1}, {0, 1, 0}},
             {VarDim{zero, en}, VarDim{zero, en}}, StreamAccess::Read),
      Stream("c", IntMatrix{{1, 0, 0}, {0, 1, 0}},
             {VarDim{zero, en}, VarDim{zero, en}}, StreamAccess::Update),
  };
  LoopNest nest("closure", std::move(loops), std::move(streams), {n},
                n_at_least_one(), mul_accumulate("t", "u", "c"),
                "c := c + t * u");
  return Design{std::move(nest),
                ArraySpec(StepFunction(IntVec{1, 1, -1}),
                          PlaceFunction(IntMatrix{{1, 0, 0}, {0, 1, 0}}),
                          {{"c", IntVec{1, 0}}}),
                "transitive-closure step c[i,j] += t[i,k]*u[k,j] with a "
                "descending k loop, place.(i,j,k) = (i,j)"};
}

std::vector<Design> all_designs() {
  std::vector<Design> designs;
  designs.push_back(polyprod_design1());
  designs.push_back(polyprod_design2());
  designs.push_back(matmul_design1());
  designs.push_back(matmul_design2());
  designs.push_back(matmul_design3());
  designs.push_back(matmul_design4());
  designs.push_back(polyprod_design3());
  designs.push_back(convolution_design());
  designs.push_back(correlation_design());
  designs.push_back(fir_bank_design());
  designs.push_back(closure_design());
  return designs;
}

std::vector<std::string> catalog_names() {
  return {"polyprod1",   "polyprod2",   "matmul1", "matmul2",
          "matmul3",     "matmul4",     "polyprod3",
          "convolution", "correlation", "fir_bank", "closure"};
}

Design design_by_name(const std::string& name) {
  if (name == "polyprod1") return polyprod_design1();
  if (name == "polyprod2") return polyprod_design2();
  if (name == "matmul1") return matmul_design1();
  if (name == "matmul2") return matmul_design2();
  if (name == "matmul3") return matmul_design3();
  if (name == "matmul4") return matmul_design4();
  if (name == "polyprod3") return polyprod_design3();
  if (name == "convolution") return convolution_design();
  if (name == "correlation") return correlation_design();
  if (name == "fir_bank") return fir_bank_design();
  if (name == "closure") return closure_design();
  raise(ErrorKind::Validation, "unknown design '" + name + "'");
}

}  // namespace systolize
