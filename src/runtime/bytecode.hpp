// Bytecode lowering: compile an expanded NetworkPlan into a flat
// per-process program of dense, register-indexed instructions.
//
// The coroutine-based scheduler interprets every communication through an
// awaiter (issue, rendezvous match, park) and every process body through a
// coroutine frame. All of that structure is plan-invariant: once a
// NetworkPlan exists, each process's entire control flow is a short,
// fixed instruction sequence — loops of sends (input pipes), loops of
// receives (output pipes), fused recv/send passes (buffers, soak/drain
// phases), par sets over a static channel table, and the repeater's
// compute step. lower_plan() records exactly that sequence per process,
// with channel endpoints resolved to dense mailbox slots at lower time,
// so the VM (runtime/vm.hpp) executes a run as threaded dispatch over a
// flat array instead of resuming coroutines.
//
// Lowered programs are pure functions of the plan: they carry no run
// state and no references into the plan beyond dense ids, so one program
// is shared across concurrent runs (and cached — PlanCache keeps a third,
// bytecode level keyed by plan identity).
//
// The instruction set is deliberately coarse: each instruction may loop
// internally (a whole input pipe is ONE SendIn instruction), because the
// VM keeps per-process resume state (iteration index, phase) and blocking
// happens at individual communications, not instruction boundaries. This
// keeps programs tiny — a few instructions per process — and makes the
// dispatch overhead per *instruction*, not per element.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/plan_cache.hpp"

namespace systolize {

struct BytecodeProgram {
  enum class Op : std::uint8_t {
    SendIn,   ///< a=chan, b=elem base: send in[b+i] for i in [0, count)
    RecvOut,  ///< a=chan, b=elem base: recv -> out[b+i] for i in [0, count)
    Pass,     ///< a=chan in, b=chan out, c=reg: count x (recv; send)
    RecvReg,  ///< a=chan, c=reg: single receive into a register
    SendReg,  ///< a=chan, c=reg: single send from a register
    ParRecv,  ///< a=par table offset, b=entries: par receive into regs
    ParSend,  ///< a=par table offset, b=entries: par send from regs
    Compute,  ///< a=comp meta id: run the basic statement on every lane
    LoopEnd,  ///< b=insns to jump back, count=repeater trip count
    Halt,     ///< process finished
  };

  struct Insn {
    Op op = Op::Halt;
    std::int32_t a = 0;
    std::int32_t b = 0;
    std::int32_t c = 0;
    Int count = 0;  ///< internal trip count (loops; 0 for single ops)
  };

  /// One member of a par set: a channel and the register it moves.
  struct ParEntry {
    std::int32_t chan = -1;
    std::int32_t reg = -1;
  };

  /// Per-process code slice, indexed by plan process id.
  struct ProcCode {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  /// Repeater metadata of one computation process: the statement's start
  /// point and the (stream, register) binding of every role slot. Slots
  /// cover ALL roles (stationary values live in their register across the
  /// whole repeater; moving ones are refreshed by the par sets).
  struct CompMeta {
    IntVec first_x;
    std::vector<std::uint32_t> slot_stream;  ///< stream id per role slot
    std::vector<std::int32_t> slot_reg;      ///< register per role slot
  };

  std::vector<Insn> code;       ///< all processes' code, concatenated
  std::vector<ParEntry> par;    ///< par set tables
  std::vector<ProcCode> procs;  ///< by plan process id
  std::vector<CompMeta> comps;  ///< by Compute's `a` operand
  std::size_t num_regs = 0;     ///< size of the (per-lane) register file

  [[nodiscard]] std::size_t instruction_count() const noexcept {
    return code.size();
  }
  /// Approximate heap footprint, the byte currency of the cache level.
  [[nodiscard]] std::size_t memory_bytes() const;
};

/// Lower `plan` into a bytecode program. The plan must be a pure
/// rendezvous network (capacity 0 on every channel — the only shape the
/// VM executes; execute() gates on this before lowering). The program
/// refers to the plan only through dense ids, so it stays valid as long
/// as a structurally identical plan is used to run it.
[[nodiscard]] std::unique_ptr<BytecodeProgram> lower_plan(
    const NetworkPlan& plan);

}  // namespace systolize
