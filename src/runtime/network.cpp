#include "runtime/network.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace systolize {

void NetworkGraph::add_node(std::string name, NodeKind kind) {
  for (const Node& n : nodes) {
    if (n.name == name) return;  // computation nodes appear once per stream
  }
  nodes.push_back(Node{std::move(name), kind});
}

void NetworkGraph::add_edge(std::string from, std::string to,
                            std::string channel, std::string stream) {
  edges.push_back(
      Edge{std::move(from), std::move(to), std::move(channel),
           std::move(stream)});
}

std::size_t NetworkGraph::count(NodeKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(nodes.begin(), nodes.end(),
                    [kind](const Node& n) { return n.kind == kind; }));
}

std::string to_dot(const NetworkGraph& graph) {
  // Stable colour per stream.
  static const char* kColors[] = {"#1f77b4", "#d62728", "#2ca02c",
                                  "#9467bd", "#ff7f0e", "#8c564b"};
  std::map<std::string, const char*> color;
  for (const NetworkGraph::Edge& e : graph.edges) {
    if (!color.contains(e.stream)) {
      color[e.stream] = kColors[color.size() % 6];
    }
  }

  std::ostringstream os;
  os << "digraph systolic {\n"
     << "  rankdir=LR;\n"
     << "  node [fontsize=9];\n";
  auto quoted = [](const std::string& s) { return '"' + s + '"'; };
  for (const NetworkGraph::Node& n : graph.nodes) {
    os << "  " << quoted(n.name);
    switch (n.kind) {
      case NetworkGraph::NodeKind::Computation:
        os << " [shape=box, style=filled, fillcolor=\"#e8f0fe\"]";
        break;
      case NetworkGraph::NodeKind::Input:
        os << " [shape=house]";
        break;
      case NetworkGraph::NodeKind::Output:
        os << " [shape=invhouse]";
        break;
      case NetworkGraph::NodeKind::Buffer:
        os << " [shape=circle, width=0.2, label=\"\"]";
        break;
    }
    os << ";\n";
  }
  for (const NetworkGraph::Edge& e : graph.edges) {
    os << "  " << quoted(e.from) << " -> " << quoted(e.to) << " [color=\""
       << color[e.stream] << "\", tooltip=\"" << e.channel << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace systolize
