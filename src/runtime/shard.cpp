#include "runtime/shard.hpp"

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "runtime/scheduler.hpp"
#include "runtime/watchdog.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

/// One cross-shard message. An Offer hands a freshly issued op to the
/// channel-owner shard; a Complete hands a finished op (value already
/// written into it) back to the process-owner shard.
struct ShardMsg {
  CommOp* op = nullptr;
  Int time = 0;
  enum class Kind : std::uint8_t { Offer, Complete } kind = Kind::Offer;
};

/// Single-producer single-consumer ring. One ring per (source, target)
/// shard pair keeps every ring strictly SPSC: only the source's worker
/// pushes, only the target's worker pops. Monotonic 64-bit positions,
/// release on publish / acquire on consume.
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 64;
    while (cap < min_capacity) cap *= 2;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  bool push(const ShardMsg& m) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = m;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool pop(ShardMsg& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<ShardMsg> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< producer cursor
};

struct ShardRuntime;

}  // namespace

/// One shard: its scheduler (owning the shard's processes and channels)
/// and its worker loop. Declared at namespace scope because Channel and
/// Scheduler befriend it by name.
class ShardExec {
 public:
  ShardExec(unsigned id, ShardRuntime& rt) : id_(id), rt_(rt) {
    sched_.set_shard_exec(this);
  }

  [[nodiscard]] Scheduler& sched() noexcept { return sched_; }
  [[nodiscard]] const Scheduler& sched() const noexcept { return sched_; }
  [[nodiscard]] unsigned id() const noexcept { return id_; }

  void suspend(Process& proc, CommOp* ops, std::size_t count);
  void worker();

 private:
  void offer(CommOp& op);
  void finish(CommOp& op, Value v, Int time);
  void apply_completion(CommOp& op, Int time);
  void post(unsigned target, const ShardMsg& msg);
  bool drain_rings();
  bool run_round();
  bool detect_deadlock();

  unsigned id_;
  ShardRuntime& rt_;
  Scheduler sched_;
  bool idle_flag_ = false;
};

namespace {

struct ShardRuntime {
  const NetworkPlan* plan = nullptr;
  unsigned nshards = 0;
  std::vector<std::unique_ptr<ShardExec>> execs;
  /// rings[target][source]: strictly SPSC per pair.
  std::vector<std::deque<SpscRing>> rings;
  std::vector<std::uint32_t> chan_shard;  ///< owner shard by channel id
  std::vector<Channel*> chans;            ///< by plan channel id
  std::atomic<std::size_t> unfinished{0};
  std::atomic<std::uint64_t> progress{0};
  std::atomic<unsigned> idle{0};
  std::atomic<bool> abort{false};
  std::atomic<bool> stalled{false};
  std::mutex error_mu;
  std::vector<std::pair<unsigned, std::exception_ptr>> errors;

  [[nodiscard]] bool all_rings_empty() const {
    for (const auto& row : rings) {
      for (const SpscRing& ring : row) {
        if (!ring.empty()) return false;
      }
    }
    return true;
  }
};

/// Slab-partition the plan's processes over `threads` shards along the
/// leading place-space coordinate, so neighbouring pipeline stages (which
/// communicate every step) land on the same shard and cross-shard traffic
/// is limited to slab boundaries.
std::vector<std::uint32_t> partition_procs(const NetworkPlan& plan,
                                           unsigned shards) {
  const Int lo = plan.ps_min.dim() > 0 ? plan.ps_min[0] : 0;
  const Int hi = plan.ps_max.dim() > 0 ? plan.ps_max[0] : 0;
  const Int extent = std::max<Int>(1, hi - lo + 1);
  std::vector<std::uint32_t> shard_of(plan.procs.size(), 0);
  for (std::size_t i = 0; i < plan.procs.size(); ++i) {
    const IntVec& place = plan.procs[i].place;
    const Int c = place.dim() > 0 ? place[0] : lo;
    Int s = (c - lo) * static_cast<Int>(shards) / extent;
    s = std::max<Int>(0, std::min<Int>(s, static_cast<Int>(shards) - 1));
    shard_of[i] = static_cast<std::uint32_t>(s);
  }
  return shard_of;
}

}  // namespace

void ShardExec::post(unsigned target, const ShardMsg& msg) {
  SpscRing& ring = rt_.rings[target][id_];
  // The ring is sized for the plan's total par width, so a full ring can
  // only mean the run is being aborted mid-flight; spin rather than drop
  // (the consumer drains its rings every loop iteration).
  while (!ring.push(msg)) {
    if (rt_.abort.load()) return;
    std::this_thread::yield();
  }
}

void ShardExec::suspend(Process& proc, CommOp* ops, std::size_t count) {
  // Count the whole set as pending BEFORE offering anything: a local
  // offer can complete synchronously and decrement pending on the spot.
  proc.pending = static_cast<Int>(count);
  for (std::size_t i = 0; i < count; ++i) {
    CommOp& op = ops[i];
    const std::uint32_t owner =
        rt_.chan_shard[static_cast<std::size_t>(op.chan->shard_tag())];
    if (owner == id_) {
      offer(op);
    } else {
      post(owner, ShardMsg{&op, 0, ShardMsg::Kind::Offer});
    }
  }
}

void ShardExec::offer(CommOp& op) {
  // Runs on the owning shard's thread; pure rendezvous (instantiate
  // refuses sharded runs with buffered channels).
  Channel& ch = *op.chan;
  (op.is_send ? ch.known_sender_ : ch.known_receiver_) = op.proc;
  std::vector<CommOp*>& counterpart = op.is_send ? ch.receivers_ : ch.senders_;
  if (!counterpart.empty()) {
    CommOp* other = counterpart.front();
    counterpart.erase(counterpart.begin());
    const Int t = std::max(op.issue_time, other->issue_time) + 1;
    ++ch.transfers_;
    const Value v = op.is_send ? op.value : other->value;
    finish(op, v, t);
    finish(*other, v, t);
  } else {
    (op.is_send ? ch.senders_ : ch.receivers_).push_back(&op);
  }
}

void ShardExec::finish(CommOp& op, Value v, Int time) {
  // The owning coroutine is suspended until every op of its par set has
  // been applied on its own shard, so writing into the op (which lives in
  // the coroutine frame) is race-free: the ring's release/acquire pair —
  // or same-thread program order — sequences it before the frame resumes.
  if (!op.is_send) op.value = v;
  op.done = true;
  ShardExec* target = op.proc->sched->shard_exec();
  if (target == this) {
    apply_completion(op, time);
  } else {
    post(target->id_, ShardMsg{&op, time, ShardMsg::Kind::Complete});
  }
}

void ShardExec::apply_completion(CommOp& op, Int time) {
  // Runs on the process-owner thread: every Process-field mutation —
  // clock, counters, pending, ready queue — stays thread-local.
  Process& p = *op.proc;
  if (!op.is_send && op.out != nullptr) *op.out = op.value;
  p.advance_to(time);
  if (op.is_send) {
    ++p.sends;
  } else {
    ++p.recvs;
  }
  if (--p.pending == 0) sched_.make_ready(p);
}

bool ShardExec::drain_rings() {
  bool progress = false;
  ShardMsg msg;
  for (SpscRing& ring : rt_.rings[id_]) {
    while (ring.pop(msg)) {
      progress = true;
      if (msg.kind == ShardMsg::Kind::Offer) {
        offer(*msg.op);
      } else {
        apply_completion(*msg.op, msg.time);
      }
    }
  }
  return progress;
}

bool ShardExec::run_round() {
  if (sched_.ready_.empty()) return false;
  std::swap(sched_.ready_, sched_.batch_);
  for (Process* proc : sched_.batch_) {
    proc->in_ready_queue = false;
    if (proc->finished) continue;
    proc->handle.resume();
    if (proc->error) {
      {
        std::lock_guard<std::mutex> lock(rt_.error_mu);
        rt_.errors.emplace_back(id_, proc->error);
      }
      rt_.abort.store(true);
      return true;
    }
    if (proc->handle.done()) {
      proc->finished = true;
      rt_.unfinished.fetch_sub(1);
    }
  }
  sched_.batch_.clear();
  ++sched_.round_;
  return true;
}

bool ShardExec::detect_deadlock() {
  // Only meaningful when every worker is parked in its idle branch: an
  // idle worker has verified it has no ring traffic and no ready work,
  // and it un-idles before touching either, so idle==nshards means no
  // shard is mutating anything. Empty rings then rule out in-flight
  // wakeups; a double sample of the progress epoch (with a yield between)
  // guards against stale atomic reads.
  if (rt_.idle.load() != rt_.nshards) return false;
  if (!rt_.all_rings_empty()) return false;
  const std::uint64_t epoch = rt_.progress.load();
  std::this_thread::yield();
  if (rt_.idle.load() != rt_.nshards) return false;
  if (!rt_.all_rings_empty()) return false;
  if (rt_.progress.load() != epoch) return false;
  if (rt_.unfinished.load() == 0) return false;
  rt_.stalled.store(true);
  rt_.abort.store(true);
  return true;
}

void ShardExec::worker() {
  for (;;) {
    if (rt_.abort.load()) return;
    bool has_ring_work = false;
    for (const SpscRing& ring : rt_.rings[id_]) {
      if (!ring.empty()) {
        has_ring_work = true;
        break;
      }
    }
    if (!has_ring_work && sched_.ready_.empty()) {
      if (rt_.unfinished.load() == 0) return;
      if (!idle_flag_) {
        idle_flag_ = true;
        rt_.idle.fetch_add(1);
      }
      if (id_ == 0 && detect_deadlock()) return;
      std::this_thread::yield();
      continue;
    }
    // Un-idle BEFORE consuming anything, so idle==nshards implies no
    // shard holds popped-but-unprocessed work (the deadlock detector
    // depends on this ordering).
    if (idle_flag_) {
      idle_flag_ = false;
      rt_.idle.fetch_sub(1);
    }
    bool progress = drain_rings();
    if (run_round()) progress = true;
    if (progress) rt_.progress.fetch_add(1);
  }
}

ShardRunStats run_sharded(const NetworkPlan& plan, unsigned threads,
                          const Value* in_values, Value* out_values) {
  ShardRuntime rt;
  rt.plan = &plan;
  // More shards than place-space slabs would only idle; clamp.
  const Int extent =
      plan.ps_min.dim() > 0
          ? std::max<Int>(1, plan.ps_max[0] - plan.ps_min[0] + 1)
          : 1;
  rt.nshards = static_cast<unsigned>(
      std::max<Int>(1, std::min<Int>(static_cast<Int>(threads), extent)));

  const std::vector<std::uint32_t> proc_shard =
      partition_procs(plan, rt.nshards);
  // A channel lives on its receiver's shard (the receiver touches it at
  // least as often as the sender); dangling channels default to shard 0.
  rt.chan_shard.assign(plan.channels.size(), 0);
  for (std::size_t c = 0; c < plan.channels.size(); ++c) {
    const NetworkPlan::ChannelSpec& spec = plan.channels[c];
    if (spec.receiver >= 0) {
      rt.chan_shard[c] = proc_shard[static_cast<std::size_t>(spec.receiver)];
    } else if (spec.sender >= 0) {
      rt.chan_shard[c] = proc_shard[static_cast<std::size_t>(spec.sender)];
    }
  }

  for (unsigned s = 0; s < rt.nshards; ++s) {
    rt.execs.push_back(std::make_unique<ShardExec>(s, rt));
  }
  // rings[target][source], each sized for the worst-case in-flight load.
  rt.rings.resize(rt.nshards);
  for (auto& row : rt.rings) {
    row.clear();
    for (unsigned s = 0; s < rt.nshards; ++s) {
      row.emplace_back(plan.total_par_bound + 1);
    }
  }

  // Build the network single-threaded: channels into their owner shards
  // (tagged with their plan id so suspending processes can route offers),
  // then processes in plan order into their shards.
  rt.chans.resize(plan.channels.size());
  for (std::size_t c = 0; c < plan.channels.size(); ++c) {
    Channel& chan = rt.execs[rt.chan_shard[c]]->sched().make_channel(
        plan.channels[c].name, plan.channels[c].capacity);
    chan.set_shard_tag(static_cast<Int>(c));
    rt.chans[c] = &chan;
  }
  PlanBindings bindings;
  bindings.plan = &plan;
  bindings.in_values = in_values;
  bindings.out_values = out_values;
  std::vector<Process*> procs;
  procs.reserve(plan.procs.size());
  for (std::uint32_t pi = 0; pi < plan.procs.size(); ++pi) {
    procs.push_back(&spawn_plan_proc(rt.execs[proc_shard[pi]]->sched(), pi,
                                     rt.chans.data(), nullptr, bindings));
  }
  for (std::size_t c = 0; c < plan.channels.size(); ++c) {
    const NetworkPlan::ChannelSpec& spec = plan.channels[c];
    if (spec.sender >= 0) rt.chans[c]->declare_sender(*procs[spec.sender]);
    if (spec.receiver >= 0) {
      rt.chans[c]->declare_receiver(*procs[spec.receiver]);
    }
  }
  rt.unfinished.store(plan.procs.size());

  std::vector<std::thread> workers;
  workers.reserve(rt.nshards);
  for (unsigned s = 0; s < rt.nshards; ++s) {
    workers.emplace_back([exec = rt.execs[s].get()] { exec->worker(); });
  }
  for (std::thread& t : workers) t.join();

  if (!rt.errors.empty()) {
    auto first = rt.errors.front();
    for (const auto& e : rt.errors) {
      if (e.first < first.first) first = e;
    }
    std::rethrow_exception(first.second);
  }
  if (rt.stalled.load() || rt.unfinished.load() != 0) {
    std::vector<const Scheduler*> scheds;
    scheds.reserve(rt.nshards);
    for (const auto& exec : rt.execs) scheds.push_back(&exec->sched());
    raise_stall(scheds, "deadlock");
  }

  ShardRunStats stats;
  stats.shards = rt.nshards;
  stats.channel_transfers.reserve(plan.channels.size());
  for (const Channel* chan : rt.chans) {
    stats.channel_transfers.push_back(chan->transfers());
    stats.total_transfers += chan->transfers();
  }
  for (const auto& exec : rt.execs) {
    const Scheduler& sched = exec->sched();
    stats.makespan = std::max(stats.makespan, sched.makespan());
    stats.rounds = std::max(stats.rounds, sched.round());
    for (const Process& p : sched.processes()) {
      stats.statements += p.statements;
    }
  }
  return stats;
}

void shard_suspend(ShardExec& exec, Process& proc, CommOp* ops,
                   std::size_t count) {
  exec.suspend(proc, ops, count);
}

}  // namespace systolize
