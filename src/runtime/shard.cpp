// The work-stealing, lock-free execution substrate.
//
// One shared arena: a single Scheduler owns every process and channel of
// the plan's network (spawned single-threaded, so fault rolls stay in
// plan order and replay bit-identically). N symmetric workers then drive
// the network to completion with three lock-free structures:
//
//  * READY BITMAP — one bit per dense plan process id. Publishing a
//    process is `fetch_or(bit, release)`; claiming it for execution is
//    `fetch_and(~bit, acq_rel)` and checking the bit was set. The bitmap
//    is the single source of claim authority: whoever clears a set bit
//    owns the process until it suspends or finishes, so every other
//    structure can afford to be a lossy hint.
//
//  * PER-WORKER HINT QUEUES — a fixed ring of recently published ids per
//    worker (the publisher pushes into its own ring for locality). The
//    owner is the only producer; any worker may consume, stealing via a
//    read-slot-then-CAS-head claim loop. Entries are hints, not work:
//    a popped id must still win the bitmap claim, so duplicated, stale,
//    or dropped-on-overflow hints are all benign. Workers that find
//    their own ring empty steal from victims round-robin, then fall back
//    to scanning the bitmap directly, so a dropped hint only costs time.
//
//  * SINGLE-SLOT MAILBOXES — one `atomic<CommOp*>` per plan channel,
//    preallocated from the expanded NetworkPlan (allocation-free
//    hand-off; the ops themselves live in suspended coroutine frames).
//    A suspending process offers each op of its par set by CAS-ing the
//    slot from null to &op (release). If the CAS fails, a counterpart is
//    parked there: the offering worker claims it, clears the slot, and
//    completes the rendezvous for BOTH sides at max(issue times) + 1.
//    Depth 1 suffices because every plan channel has exactly one sender
//    and one receiver process (the static verifier's single-writer/
//    single-reader property) and each side has at most one outstanding
//    op per channel; clearing the slot before publishing either side's
//    readiness guarantees the next generation of ops finds it empty.
//
// The last completed op of a par set (an acq_rel countdown on the
// owning process) folds the set's completion times into the process's
// logical clock, deposits received values, and publishes the process
// back to the bitmap. The acq_rel RMW chain on the countdown makes every
// completer's writes visible to the folder, and the release publish /
// acquire claim pair makes the fold visible to whichever worker resumes
// the process — this chain is also what makes the plain (non-atomic)
// per-channel transfer counters safe: consecutive rendezvous on one
// channel are always separated by a resume of both endpoint processes.
//
// Termination and failure: an atomic count of unfinished processes ends
// the run; a deadlock is declared when every started worker is idle, no stall is
// deferred, the bitmap is empty and the progress epoch double-samples
// stable with processes still unfinished. Forensics are rebuilt
// single-threaded after the workers join, from the wait-for graph of
// blocked process ids (each unfinished process's undone par ops point at
// their channels; the plan's sender/receiver ids give the counterpart),
// rendering the same DeadlockReport schema as the sequential paths.
#include "runtime/shard.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/faults.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/watchdog.hpp"
#include "runtime/worker_pool.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

/// Which worker of the current run this thread is (set at worker-loop
/// entry; used to route published ready-hints to the local queue).
thread_local unsigned tl_worker = 0;

/// Set by ShardExec::suspend while a resume is on this thread's stack.
/// The moment a suspending process's par set completes it is republished
/// and may be claimed, re-run, even FINISHED by another worker — so the
/// resuming worker must not touch the process (handle, error, finished)
/// after resume() returns unless the frame provably never suspended.
/// This flag is that proof: it is written strictly before any offer can
/// publish the process, on the same thread that observes it.
thread_local bool tl_suspended = false;

[[nodiscard]] Int now_ns() {
  return static_cast<Int>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Fixed single-producer multi-consumer ring of ready-process hints.
/// Only the owning worker pushes; any worker pops via a CAS claim loop
/// on the head cursor. Entries are HINTS: the bitmap is the claim
/// authority, so a lost race, a stale entry, or a push dropped on
/// overflow never loses work — the bitmap fallback scan finds it.
struct alignas(64) HintQueue {
  static constexpr std::uint64_t kCap = 256;  // power of two
  std::array<std::atomic<std::uint32_t>, kCap> slots;
  alignas(64) std::atomic<std::uint64_t> tail{0};  ///< producer cursor
  alignas(64) std::atomic<std::uint64_t> head{0};  ///< consumer cursor

  /// Owner-only push; false (dropped) when full.
  bool push(std::uint32_t pid) {
    const std::uint64_t t = tail.load(std::memory_order_relaxed);
    if (t - head.load(std::memory_order_acquire) >= kCap) return false;
    slots[t & (kCap - 1)].store(pid, std::memory_order_relaxed);
    tail.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Multi-consumer pop. Reading the slot before the head CAS is safe:
  /// the owner reuses a slot only once head has advanced past it, and
  /// head is monotonic — so a successful CAS at position h proves the
  /// slot value read for h was the one pushed there.
  bool pop(std::uint32_t& pid) {
    std::uint64_t h = head.load(std::memory_order_acquire);
    for (;;) {
      if (h == tail.load(std::memory_order_acquire)) return false;
      const std::uint32_t v =
          slots[h & (kCap - 1)].load(std::memory_order_relaxed);
      if (head.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        pid = v;
        return true;
      }
    }
  }

  [[nodiscard]] bool empty() const {
    return head.load(std::memory_order_acquire) ==
           tail.load(std::memory_order_acquire);
  }
};

/// Per-worker mutable state. The hint queue and the task counter are
/// read cross-thread; everything else is owner-only until the join.
struct WorkerState {
  HintQueue queue;
  std::atomic<Int> tasks{0};  ///< resumptions executed (watchdog reads)
  Int steals = 0;
  Int failed_steals = 0;
  Int idle_ns = 0;
  /// Injected stalls deferred at claim time: (release iteration, pid).
  /// Worker-local loop iterations are the stall's time base; idle
  /// iterations count, so a deferred process is always released even
  /// when the rest of the network is waiting on it.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> stalled;
  std::uint64_t iter = 0;
  bool idle_flag = false;
  Int idle_since = 0;
};

}  // namespace

/// The run-scoped executor. Declared at namespace scope because Channel
/// and Scheduler befriend it by name.
class ShardExec {
 public:
  ShardExec(const NetworkPlan& plan, unsigned threads,
            const Value* in_values, Value* out_values,
            const ShardRunOptions& opt)
      : plan_(plan),
        in_values_(in_values),
        out_values_(out_values),
        injector_(opt.injector),
        pool_(opt.pool),
        watchdog_(opt.watchdog) {
    nworkers_ = threads == 0 ? 1 : threads;
    const std::size_t nprocs = plan.procs.size();
    if (nworkers_ > nprocs) {
      nworkers_ = static_cast<unsigned>(nprocs == 0 ? 1 : nprocs);
    }
    if (watchdog_.max_rounds > 0) {
      // A sequential round resumes at most every live process once, so
      // max_rounds * nprocs resumptions admits any run the sequential
      // budget admits. Saturate rather than overflow on huge budgets.
      const Int np = static_cast<Int>(std::max<std::size_t>(1, nprocs));
      max_total_tasks_ =
          watchdog_.max_rounds > std::numeric_limits<Int>::max() / np
              ? std::numeric_limits<Int>::max()
              : watchdog_.max_rounds * np;
    }
  }

  ShardRunStats run();

  /// Awaiter hook: record the par set and offer every op (runtime
  /// entry point from CommAwaiter::await_suspend via shard_suspend).
  void suspend(Process& proc, CommOp* ops, std::size_t count) {
    tl_suspended = true;  // run_proc: hands off ownership — see tl_suspended
    proc.ws_ops = ops;
    proc.ws_count = static_cast<std::uint32_t>(count);
    // The +1 guard keeps the set incomplete while this thread is still
    // offering: without it, op i's counterpart could complete the whole
    // set and republish the process — whose resumed frame would clobber
    // ws_ops — while op i+1 is still being offered from the same frame.
    proc.ws_pending.store(static_cast<Int>(count) + 1,
                          std::memory_order_relaxed);
    for (std::size_t i = 0; i < count; ++i) offer(ops[i]);
    if (proc.ws_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      fold_and_publish(proc);
    }
  }

 private:
  // --- bitmap ---
  void publish(std::uint32_t pid) {
    bits_[pid >> 6].fetch_or(std::uint64_t{1} << (pid & 63),
                             std::memory_order_release);
    // Locality hint into the publishing worker's own queue; dropped on
    // overflow (the bitmap scan is the safety net).
    workers_[tl_worker].queue.push(pid);
  }

  bool claim(std::uint32_t pid) {
    const std::uint64_t bit = std::uint64_t{1} << (pid & 63);
    return (bits_[pid >> 6].fetch_and(~bit, std::memory_order_acq_rel) &
            bit) != 0;
  }

  [[nodiscard]] bool bitmap_empty() const {
    for (const auto& w : bits_) {
      if (w.load(std::memory_order_acquire) != 0) return false;
    }
    return true;
  }

  /// Claim any set bit, preferring this worker's block of the id space.
  bool scan_claim(unsigned w, std::uint32_t& out) {
    const std::size_t nwords = bits_.size();
    if (nwords == 0) return false;
    const std::size_t start =
        (static_cast<std::size_t>(w) * nwords) / nworkers_;
    for (std::size_t k = 0; k < nwords; ++k) {
      std::size_t wi = start + k;
      if (wi >= nwords) wi -= nwords;
      std::uint64_t word = bits_[wi].load(std::memory_order_acquire);
      while (word != 0) {
        const int b = std::countr_zero(word);
        const std::uint32_t pid = static_cast<std::uint32_t>(wi * 64 + b);
        if (claim(pid)) {
          out = pid;
          return true;
        }
        word &= word - 1;
      }
    }
    return false;
  }

  // --- rendezvous ---
  void offer(CommOp& op) {
    const std::size_t cid =
        static_cast<std::size_t>(op.chan->shard_tag());
    std::atomic<CommOp*>& slot = mail_[cid];
    CommOp* other = nullptr;
    if (slot.compare_exchange_strong(other, &op, std::memory_order_release,
                                     std::memory_order_acquire)) {
      return;  // parked; the counterpart's offer completes both sides
    }
    // A counterpart is parked: claim it. Clear the slot BEFORE completing
    // either side — completion publishes readiness, and a resumed process
    // may immediately offer its next op on this same channel; it must
    // find the slot empty, not a stale pointer into a live frame.
    slot.store(nullptr, std::memory_order_relaxed);
    const Int t = std::max(op.issue_time, other->issue_time) + 1;
    const Value v = op.is_send ? op.value : other->value;
    // Plain increment: rendezvous k+1 on this channel cannot start until
    // both endpoints resumed, which happens-after this completion via
    // the countdown/publish/claim chain.
    ++chan_transfers_[cid];
    complete(*other, v, t);
    complete(op, v, t);
  }

  void complete(CommOp& op, Value v, Int t) {
    if (!op.is_send) op.value = v;
    op.complete_time = t;
    op.done = true;
    Process& p = *op.proc;
    if (p.ws_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      fold_and_publish(p);
    }
  }

  /// Last completer of a par set: fold every op's completion time into
  /// the owner's logical clock, deposit received values, publish ready.
  void fold_and_publish(Process& p) {
    Int t = p.clock->time;
    for (std::uint32_t i = 0; i < p.ws_count; ++i) {
      CommOp& op = p.ws_ops[i];
      t = std::max(t, op.complete_time);
      if (op.is_send) {
        ++p.sends;
      } else {
        ++p.recvs;
        if (op.out != nullptr) *op.out = op.value;
      }
    }
    p.clock->time = t;
    publish(p.ws_pid);
  }

  // --- execution ---
  void run_proc(std::uint32_t pid, WorkerState& ws) {
    Process& p = *procs_[pid];
    if (p.fault_stall_round >= 0 && !p.fault_stall_served) {
      // Injected stall, deferred at claim time: the process is held by
      // this worker (its bit stays claimed) and re-published after
      // `duration` worker-local loop iterations.
      p.fault_stall_served = true;
      if (injector_ != nullptr) {
        injector_->record(FaultKind::Stall, p.name, p.fault_stall_duration);
      }
      deferred_.fetch_add(1, std::memory_order_acq_rel);
      ws.stalled.emplace_back(
          ws.iter + static_cast<std::uint64_t>(
                        std::max<Int>(1, p.fault_stall_duration)),
          pid);
      return;
    }
    ws.tasks.fetch_add(1, std::memory_order_relaxed);
    tl_suspended = false;
    p.handle.resume();
    if (tl_suspended) {
      // The frame suspended and was offered to the network: ownership has
      // escaped, and the process may already be running — or finished —
      // on another worker. Touching p.handle/p.error here would race (the
      // classic symptom: both workers observe done() and double-count
      // finish_one, underflowing the termination counter).
      return;
    }
    if (p.error) {
      if (p.killed) {
        // An injected kill unwound the coroutine: the process is dead
        // but the run continues, so the rest of the network's failure
        // can be observed and diagnosed (usually as a deadlock).
        p.error = nullptr;
        p.finished = true;
        finish_one();
        return;
      }
      {
        std::lock_guard<std::mutex> lock(error_mu_);
        errors_.push_back(p.error);
      }
      abort_.store(true, std::memory_order_release);
      return;
    }
    if (p.handle.done()) {
      p.finished = true;
      finish_one();
    }
  }

  void finish_one() {
    unfinished_.fetch_sub(1, std::memory_order_acq_rel);
  }

  void service_stalls(WorkerState& ws) {
    for (std::size_t i = 0; i < ws.stalled.size();) {
      if (ws.stalled[i].first <= ws.iter) {
        const std::uint32_t pid = ws.stalled[i].second;
        ws.stalled[i] = ws.stalled.back();
        ws.stalled.pop_back();
        deferred_.fetch_sub(1, std::memory_order_acq_rel);
        publish(pid);
      } else {
        ++i;
      }
    }
  }

  [[nodiscard]] Int total_tasks() const {
    Int total = 0;
    for (const WorkerState& ws : workers_) {
      total += ws.tasks.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Only meaningful when the calling worker is idle. Claims only happen
  /// after a worker un-idles (see the worker loop), so idle == started
  /// means no claim or completion is in flight; an empty bitmap with no
  /// deferred stall and unfinished processes is then a genuine deadlock.
  /// Comparing against STARTED workers (not nworkers_) keeps detection
  /// reachable when a borrowed pool delivers fewer participants than
  /// requested: a worker that never started holds no claims, and one that
  /// starts mid-detection either goes idle (idle_ changes) or can claim
  /// nothing from an empty bitmap. The progress epoch is double-sampled
  /// for stale-read paranoia.
  bool detect_deadlock() {
    if (idle_.load(std::memory_order_acquire) !=
        started_.load(std::memory_order_acquire)) {
      return false;
    }
    if (deferred_.load(std::memory_order_acquire) != 0) return false;
    if (!bitmap_empty()) return false;
    const std::uint64_t epoch = progress_.load(std::memory_order_acquire);
    std::this_thread::yield();
    if (idle_.load(std::memory_order_acquire) !=
        started_.load(std::memory_order_acquire)) {
      return false;
    }
    if (deferred_.load(std::memory_order_acquire) != 0) return false;
    if (!bitmap_empty()) return false;
    if (progress_.load(std::memory_order_acquire) != epoch) return false;
    if (unfinished_.load(std::memory_order_acquire) == 0) return false;
    stalled_.store(true, std::memory_order_release);
    abort_.store(true, std::memory_order_release);
    return true;
  }

  void worker(unsigned w) {
    tl_worker = w;
    started_.fetch_add(1, std::memory_order_acq_rel);
    WorkerState& ws = workers_[w];
    for (;;) {
      ++ws.iter;
      if (abort_.load(std::memory_order_acquire)) break;
      if (watchdog_.cancel != nullptr &&
          watchdog_.cancel->load(std::memory_order_relaxed)) {
        cancelled_.store(true, std::memory_order_release);
        abort_.store(true, std::memory_order_release);
        break;
      }
      service_stalls(ws);
      if (max_total_tasks_ > 0 && (ws.iter & 255) == 0 &&
          total_tasks() > max_total_tasks_) {
        timed_out_.store(true, std::memory_order_release);
        abort_.store(true, std::memory_order_release);
        break;
      }
      // Cheap work-visibility probe BEFORE un-idling: the deadlock
      // detector's idle==nworkers test is only sound if a worker never
      // claims while flagged idle, so the flag must drop first — but
      // dropping it every iteration would make idleness unobservable.
      bool maybe_work = !ws.queue.empty() || !bitmap_empty();
      if (!maybe_work) {
        for (unsigned k = 1; k < nworkers_ && !maybe_work; ++k) {
          maybe_work = !workers_[(w + k) % nworkers_].queue.empty();
        }
      }
      if (!maybe_work) {
        if (unfinished_.load(std::memory_order_acquire) == 0) break;
        if (!ws.idle_flag) {
          ws.idle_flag = true;
          ws.idle_since = now_ns();
          idle_.fetch_add(1, std::memory_order_acq_rel);
        }
        if (w == 0 && detect_deadlock()) break;
        std::this_thread::yield();
        continue;
      }
      if (ws.idle_flag) {
        ws.idle_flag = false;
        ws.idle_ns += now_ns() - ws.idle_since;
        idle_.fetch_sub(1, std::memory_order_acq_rel);
      }
      std::uint32_t pid = 0;
      bool got = false;
      while (ws.queue.pop(pid)) {
        if (claim(pid)) {
          got = true;
          break;
        }
      }
      if (!got) {
        for (unsigned k = 1; k < nworkers_ && !got; ++k) {
          HintQueue& victim = workers_[(w + k) % nworkers_].queue;
          while (victim.pop(pid)) {
            if (claim(pid)) {
              got = true;
              ++ws.steals;
              break;
            }
            ++ws.failed_steals;
          }
        }
      }
      if (!got && scan_claim(w, pid)) {
        got = true;
        if (pid / block_size_ != w) ++ws.steals;
      }
      if (got) {
        run_proc(pid, ws);
        progress_.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    if (ws.idle_flag) {
      ws.idle_flag = false;
      ws.idle_ns += now_ns() - ws.idle_since;
      idle_.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  [[nodiscard]] DeadlockReport build_report(std::string reason) const;
  [[noreturn]] void raise_report(std::string reason, ErrorKind kind) const {
    DeadlockReport report = build_report(std::move(reason));
    raise(kind, report.to_string(), report.to_json());
  }

  const NetworkPlan& plan_;
  const Value* in_values_;
  Value* out_values_;
  FaultInjector* injector_;
  WorkerPool* pool_;
  WatchdogConfig watchdog_;
  unsigned nworkers_ = 1;
  std::uint32_t block_size_ = 1;  ///< ids per worker in the initial seed
  Int max_total_tasks_ = 0;

  Scheduler sched_;
  std::vector<Process*> procs_;             ///< by plan process id
  std::vector<std::atomic<CommOp*>> mail_;  ///< by plan channel id
  std::vector<Int> chan_transfers_;         ///< by plan channel id
  std::vector<std::atomic<std::uint64_t>> bits_;
  std::deque<WorkerState> workers_;  ///< deque: stable, non-movable elems

  std::atomic<std::size_t> unfinished_{0};
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<unsigned> started_{0};
  std::atomic<unsigned> idle_{0};
  std::atomic<Int> deferred_{0};
  std::atomic<bool> abort_{false};
  std::atomic<bool> stalled_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> timed_out_{false};
  std::mutex error_mu_;
  std::vector<std::exception_ptr> errors_;
};

DeadlockReport ShardExec::build_report(std::string reason) const {
  DeadlockReport report;
  report.reason = std::move(reason);

  // Wait-for graph over dense plan ids: an unfinished process with undone
  // par ops waits, per op, on the plan-declared counterpart of that op's
  // channel — the structural ids cover counterparts that never reached
  // the channel at all.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj(
      procs_.size());  // edges: (to pid, via channel id)
  std::vector<bool> blocked(procs_.size(), false);

  std::vector<std::uint32_t> stall_held;
  for (const WorkerState& ws : workers_) {
    for (const auto& [release, pid] : ws.stalled) {
      (void)release;
      stall_held.push_back(pid);
    }
  }

  for (std::uint32_t pid = 0; pid < procs_.size(); ++pid) {
    const Process& p = *procs_[pid];
    if (p.finished) continue;
    bool held = false;
    for (std::uint32_t s : stall_held) held = held || s == pid;
    if (held) {
      report.blocked.push_back(
          BlockedOpState{p.name, "", "stalled", p.time(), p.statements});
      continue;
    }
    if (p.ws_ops == nullptr) continue;  // never suspended (aborted early)
    for (std::uint32_t i = 0; i < p.ws_count; ++i) {
      const CommOp& op = p.ws_ops[i];
      if (op.done) continue;
      const auto cid = static_cast<std::size_t>(op.chan->shard_tag());
      const NetworkPlan::ChannelSpec& spec = plan_.channels[cid];
      report.blocked.push_back(BlockedOpState{p.name, spec.name,
                                              op.is_send ? "send" : "recv",
                                              p.time(), p.statements});
      blocked[pid] = true;
      const Int cp = op.is_send ? spec.receiver : spec.sender;
      if (cp >= 0 && static_cast<std::uint32_t>(cp) != pid &&
          !procs_[static_cast<std::size_t>(cp)]->finished) {
        adj[pid].emplace_back(static_cast<std::uint32_t>(cp),
                              static_cast<std::uint32_t>(cid));
      }
    }
  }

  // Extract one blocking cycle with the classic three-colour DFS,
  // remembering the channel each hop came in on (same rendering as the
  // sequential forensics in runtime/watchdog.cpp).
  std::vector<int> color(procs_.size(), 0);  // 0 white, 1 gray, 2 black
  struct Frame {
    std::uint32_t pid;
    std::uint32_t via_in;  ///< channel of the edge into pid
    std::size_t next = 0;  ///< next out-edge to explore
  };
  for (std::uint32_t root = 0; root < procs_.size(); ++root) {
    if (color[root] != 0 || adj[root].empty()) continue;
    std::vector<Frame> path;
    path.push_back(Frame{root, 0});
    color[root] = 1;
    while (!path.empty()) {
      Frame& top = path.back();
      if (top.next >= adj[top.pid].size()) {
        color[top.pid] = 2;
        path.pop_back();
        continue;
      }
      const auto [to, via] = adj[top.pid][top.next++];
      if (color[to] == 0) {
        color[to] = 1;
        path.push_back(Frame{to, via});
      } else if (color[to] == 1) {
        // Back edge closes a cycle from `to`'s position down to the top.
        std::size_t start = 0;
        while (path[start].pid != to) ++start;
        for (std::size_t i = start; i < path.size(); ++i) {
          report.cycle.push_back(procs_[path[i].pid]->name);
          const std::uint32_t via_out =
              i + 1 < path.size() ? path[i + 1].via_in : via;
          report.cycle_channels.push_back(plan_.channels[via_out].name);
        }
        return report;
      }
    }
  }
  return report;
}

ShardRunStats ShardExec::run() {
  const std::size_t nprocs = plan_.procs.size();
  const std::size_t nchans = plan_.channels.size();

  sched_.set_shard_exec(this);
  if (injector_ != nullptr) sched_.set_fault_injector(injector_);

  // Build the network single-threaded: channels tagged with their plan id
  // (the mailbox index), then processes in plan order — so injected fault
  // rolls replay bit-identically to a sequential instrumented run.
  mail_ = std::vector<std::atomic<CommOp*>>(nchans);
  chan_transfers_.assign(nchans, 0);
  std::vector<Channel*> chans;
  chans.reserve(nchans);
  for (std::size_t c = 0; c < nchans; ++c) {
    Channel& chan = sched_.make_channel(plan_.channels[c].name,
                                        plan_.channels[c].capacity);
    chan.set_shard_tag(static_cast<Int>(c));
    chans.push_back(&chan);
  }
  PlanBindings bindings;
  bindings.plan = &plan_;
  bindings.in_values = in_values_;
  bindings.out_values = out_values_;
  procs_.reserve(nprocs);
  for (std::uint32_t pi = 0; pi < nprocs; ++pi) {
    Process& p =
        spawn_plan_proc(sched_, pi, chans.data(), nullptr, bindings);
    p.ws_pid = pi;
    procs_.push_back(&p);
  }
  // Spawning queued everything on the sequential ready queue; the bitmap
  // replaces it here.
  for (Process* p : procs_) p->in_ready_queue = false;
  sched_.ready_.clear();

  unfinished_.store(nprocs, std::memory_order_relaxed);
  bits_ = std::vector<std::atomic<std::uint64_t>>((nprocs + 63) / 64);
  for (std::size_t w = 0; w < bits_.size(); ++w) {
    const std::size_t base = w * 64;
    std::uint64_t word = ~std::uint64_t{0};
    if (nprocs - base < 64) word = (std::uint64_t{1} << (nprocs - base)) - 1;
    bits_[w].store(word, std::memory_order_relaxed);
  }
  // Seed each worker's hint queue with a contiguous block of ids: plan
  // order follows the place space, so neighbouring pipeline stages start
  // on the same worker and stealing only kicks in as the load skews.
  workers_ = std::deque<WorkerState>(nworkers_);
  block_size_ = static_cast<std::uint32_t>(
      (nprocs + nworkers_ - 1) / std::max<std::size_t>(1, nworkers_));
  if (block_size_ == 0) block_size_ = 1;
  for (std::uint32_t pid = 0; pid < nprocs; ++pid) {
    workers_[std::min<std::uint32_t>(pid / block_size_, nworkers_ - 1)]
        .queue.push(pid);
  }

  if (pool_ != nullptr) {
    pool_->run(nworkers_, [this](unsigned w) { worker(w); });
  } else if (nworkers_ == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nworkers_ - 1);
    for (unsigned w = 1; w < nworkers_; ++w) {
      threads.emplace_back([this, w] { worker(w); });
    }
    worker(0);
    for (std::thread& t : threads) t.join();
  }

  if (!errors_.empty()) std::rethrow_exception(errors_.front());
  if (cancelled_.load()) {
    raise_report(watchdog_.cancel_reason, watchdog_.cancel_kind);
  }
  if (timed_out_.load()) {
    raise_report("watchdog: round budget of " +
                     std::to_string(watchdog_.max_rounds) +
                     " exhausted (livelock?)",
                 ErrorKind::Timeout);
  }
  if (stalled_.load() || unfinished_.load() != 0) {
    raise_report("deadlock", ErrorKind::Runtime);
  }

  ShardRunStats stats;
  stats.shards = nworkers_;
  stats.channel_transfers = chan_transfers_;
  for (Int t : chan_transfers_) stats.total_transfers += t;
  // Fold transfer counts back into the channels so Scheduler-level
  // accounting (total_transfers) would agree if anyone asks.
  for (std::size_t c = 0; c < nchans; ++c) {
    chans[c]->transfers_ = chan_transfers_[c];
  }
  for (const Process* p : procs_) {
    stats.makespan = std::max(stats.makespan, p->time());
    stats.statements += p->statements;
  }
  stats.workers.reserve(nworkers_);
  for (WorkerState& ws : workers_) {
    WorkerCounters wc;
    wc.steals = ws.steals;
    wc.failed_steals = ws.failed_steals;
    wc.tasks = ws.tasks.load(std::memory_order_relaxed);
    wc.idle_ns = ws.idle_ns;
    stats.workers.push_back(wc);
    stats.rounds = std::max(stats.rounds, wc.tasks);
  }
  return stats;
}

ShardRunStats run_sharded(const NetworkPlan& plan, unsigned threads,
                          const Value* in_values, Value* out_values,
                          const ShardRunOptions& options) {
  ShardExec exec(plan, threads, in_values, out_values, options);
  return exec.run();
}

void shard_suspend(ShardExec& exec, Process& proc, CommOp* ops,
                   std::size_t count) {
  exec.suspend(proc, ops, count);
}

}  // namespace systolize
