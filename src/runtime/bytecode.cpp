#include "runtime/bytecode.hpp"

#include "support/error.hpp"

namespace systolize {

std::size_t BytecodeProgram::memory_bytes() const {
  std::size_t n = sizeof(BytecodeProgram);
  n += code.capacity() * sizeof(Insn);
  n += par.capacity() * sizeof(ParEntry);
  n += procs.capacity() * sizeof(ProcCode);
  n += comps.capacity() * sizeof(CompMeta);
  for (const CompMeta& c : comps) {
    n += c.first_x.comps().capacity() * sizeof(Int);
    n += c.slot_stream.capacity() * sizeof(std::uint32_t);
    n += c.slot_reg.capacity() * sizeof(std::int32_t);
  }
  return n;
}

std::unique_ptr<BytecodeProgram> lower_plan(const NetworkPlan& plan) {
  auto prog_ptr = std::make_unique<BytecodeProgram>();
  BytecodeProgram& prog = *prog_ptr;
  prog.procs.resize(plan.procs.size());

  // Registers are allocated per process: one scratch for every process
  // that relays values (Pass bodies and the comp soak/drain phases reuse
  // it across iterations — a relayed value is dead once sent), plus one
  // persistent slot per computation-process role.
  std::int32_t next_reg = 0;
  auto alloc_reg = [&next_reg] { return next_reg++; };

  using Op = BytecodeProgram::Op;
  auto emit = [&prog](Op op, std::int32_t a, std::int32_t b, std::int32_t c,
                      Int count) {
    prog.code.push_back(BytecodeProgram::Insn{op, a, b, c, count});
  };

  for (std::uint32_t pi = 0; pi < plan.procs.size(); ++pi) {
    const NetworkPlan::ProcSpec& spec = plan.procs[pi];
    prog.procs[pi].begin = static_cast<std::uint32_t>(prog.code.size());
    switch (spec.kind) {
      case NetworkPlan::ProcKind::Input:
        emit(Op::SendIn, spec.chan_out,
             static_cast<std::int32_t>(spec.elem_begin), 0, spec.count);
        break;
      case NetworkPlan::ProcKind::Output:
        emit(Op::RecvOut, spec.chan_in,
             static_cast<std::int32_t>(spec.elem_begin), 0, spec.count);
        break;
      case NetworkPlan::ProcKind::Pass:
        if (spec.count > 0) {
          emit(Op::Pass, spec.chan_in, spec.chan_out, alloc_reg(),
               spec.count);
        }
        break;
      case NetworkPlan::ProcKind::Comp: {
        // The phase order mirrors plan_comp_body (runtime/plan_cache.cpp)
        // exactly — load stationary, soak moving, repeat, drain moving,
        // recover stationary — so the lowered process performs the same
        // communications at the same logical times.
        const std::size_t nroles = spec.role_end - spec.role_begin;
        const std::int32_t scratch = alloc_reg();
        BytecodeProgram::CompMeta meta;
        meta.first_x = spec.first_x;
        meta.slot_stream.reserve(nroles);
        meta.slot_reg.reserve(nroles);
        for (std::size_t i = 0; i < nroles; ++i) {
          const NetworkPlan::RoleSpec& role = plan.roles[spec.role_begin + i];
          meta.slot_stream.push_back(role.stream);
          meta.slot_reg.push_back(alloc_reg());
        }
        auto role_at = [&plan, &spec](std::size_t i)
            -> const NetworkPlan::RoleSpec& {
          return plan.roles[spec.role_begin + i];
        };
        // Prologue: load every stationary stream (first element into its
        // slot, then drain_s loading passes), then soak every moving one.
        for (std::size_t i = 0; i < nroles; ++i) {
          const NetworkPlan::RoleSpec& role = role_at(i);
          if (!role.stationary) continue;
          emit(Op::RecvReg, role.chan_in, 0, meta.slot_reg[i], 0);
          if (role.drain > 0) {
            emit(Op::Pass, role.chan_in, role.chan_out, scratch, role.drain);
          }
        }
        for (std::size_t i = 0; i < nroles; ++i) {
          const NetworkPlan::RoleSpec& role = role_at(i);
          if (role.stationary || role.soak == 0) continue;
          emit(Op::Pass, role.chan_in, role.chan_out, scratch, role.soak);
        }
        // Repeater: par-recv moving slots, compute, par-send.
        if (spec.count > 0) {
          std::int32_t par_off = static_cast<std::int32_t>(prog.par.size());
          std::int32_t moving = 0;
          for (std::size_t i = 0; i < nroles; ++i) {
            const NetworkPlan::RoleSpec& role = role_at(i);
            if (role.stationary) continue;
            prog.par.push_back(BytecodeProgram::ParEntry{
                role.chan_in, meta.slot_reg[i]});
            ++moving;
          }
          // Send table directly after the recv table, same slot order.
          for (std::size_t i = 0; i < nroles; ++i) {
            const NetworkPlan::RoleSpec& role = role_at(i);
            if (role.stationary) continue;
            prog.par.push_back(BytecodeProgram::ParEntry{
                role.chan_out, meta.slot_reg[i]});
          }
          const auto loop_head = static_cast<std::int32_t>(prog.code.size());
          if (moving > 0) emit(Op::ParRecv, par_off, moving, 0, 0);
          emit(Op::Compute, static_cast<std::int32_t>(prog.comps.size()), 0,
               0, 0);
          if (moving > 0) emit(Op::ParSend, par_off + moving, moving, 0, 0);
          const std::int32_t back =
              static_cast<std::int32_t>(prog.code.size()) - loop_head;
          emit(Op::LoopEnd, 0, back, 0, spec.count);
        }
        // Epilogue: drain moving streams, then recover stationary ones.
        for (std::size_t i = 0; i < nroles; ++i) {
          const NetworkPlan::RoleSpec& role = role_at(i);
          if (role.stationary || role.drain == 0) continue;
          emit(Op::Pass, role.chan_in, role.chan_out, scratch, role.drain);
        }
        for (std::size_t i = 0; i < nroles; ++i) {
          const NetworkPlan::RoleSpec& role = role_at(i);
          if (!role.stationary) continue;
          if (role.soak > 0) {
            emit(Op::Pass, role.chan_in, role.chan_out, scratch, role.soak);
          }
          emit(Op::SendReg, role.chan_out, 0, meta.slot_reg[i], 0);
        }
        prog.comps.push_back(std::move(meta));
        break;
      }
    }
    emit(Op::Halt, 0, 0, 0, 0);
    prog.procs[pi].end = static_cast<std::uint32_t>(prog.code.size());
  }
  prog.num_regs = static_cast<std::size_t>(next_reg);
  return prog_ptr;
}

}  // namespace systolize
