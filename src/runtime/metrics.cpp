#include "runtime/metrics.hpp"

#include <sstream>

namespace systolize {

double RunMetrics::utilization() const {
  if (computation_processes == 0 || makespan == 0) return 0.0;
  return static_cast<double>(statements) /
         (static_cast<double>(computation_processes) *
          static_cast<double>(makespan));
}

std::string RunMetrics::to_string() const {
  std::ostringstream os;
  os << "makespan=" << makespan << " transfers=" << total_transfers
     << " statements=" << statements << " processes=" << process_count
     << " (comp=" << computation_processes << " io=" << io_processes
     << " buf=" << buffer_processes << ") channels=" << channel_count
     << " utilization=" << static_cast<int>(utilization() * 100.0) << '%';
  return os.str();
}

}  // namespace systolize
