#include "runtime/metrics.hpp"

#include <cstdio>
#include <sstream>

namespace systolize {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

double RunMetrics::utilization() const {
  if (computation_processes == 0 || makespan == 0) return 0.0;
  return static_cast<double>(statements) /
         (static_cast<double>(computation_processes) *
          static_cast<double>(makespan));
}

std::string RunMetrics::to_string() const {
  std::ostringstream os;
  os << "makespan=" << makespan << " transfers=" << total_transfers
     << " statements=" << statements << " processes=" << process_count
     << " (comp=" << computation_processes << " io=" << io_processes
     << " buf=" << buffer_processes << ") channels=" << channel_count
     << " utilization=" << static_cast<int>(utilization() * 100.0) << '%';
  if (faults_injected > 0) {
    os << " rounds=" << scheduler_rounds << " faults=" << faults_injected;
  }
  if (shards > 0) os << " shards=" << shards;
  if (!workers.empty()) {
    Int steals = 0;
    Int tasks = 0;
    Int idle_ns = 0;
    for (const WorkerCounters& w : workers) {
      steals += w.steals;
      tasks += w.tasks;
      idle_ns += w.idle_ns;
    }
    os << " steals=" << steals << "/" << tasks << " idle_us="
       << idle_ns / 1000;
  }
  if (plan_reused) {
    os << " plan=cached";
  } else if (template_reused) {
    os << " plan=expanded(" << plan_expand_ns << "ns)";
  }
  if (plan_cache_evictions > 0) {
    os << " cache_evictions=" << plan_cache_evictions;
  }
  if (backend != "interp") {
    os << " backend=" << backend << " insns=" << bytecode_instructions;
    if (bytecode_reused) {
      os << " program=cached";
    } else if (bytecode_lower_ns > 0) {
      os << " program=lowered(" << bytecode_lower_ns << "ns)";
    }
  }
  if (batch > 1) os << " batch=" << batch;
  return os.str();
}

std::string RunMetrics::to_json() const {
  std::ostringstream os;
  os << "{\"makespan\":" << makespan
     << ",\"total_transfers\":" << total_transfers
     << ",\"statements\":" << statements
     << ",\"process_count\":" << process_count
     << ",\"channel_count\":" << channel_count
     << ",\"computation_processes\":" << computation_processes
     << ",\"io_processes\":" << io_processes
     << ",\"buffer_processes\":" << buffer_processes
     << ",\"physical_processors\":" << physical_processors
     << ",\"scheduler_rounds\":" << scheduler_rounds
     << ",\"faults_injected\":" << faults_injected
     << ",\"shards\":" << shards
     << ",\"plan_reused\":" << (plan_reused ? "true" : "false")
     << ",\"template_reused\":" << (template_reused ? "true" : "false")
     << ",\"plan_expand_ns\":" << plan_expand_ns
     << ",\"plan_cache_bytes\":" << plan_cache_bytes
     << ",\"plan_cache_evictions\":" << plan_cache_evictions
     << ",\"backend\":\"" << json_escape(backend) << '"'
     << ",\"batch\":" << batch
     << ",\"bytecode_reused\":" << (bytecode_reused ? "true" : "false")
     << ",\"bytecode_lower_ns\":" << bytecode_lower_ns
     << ",\"bytecode_instructions\":" << bytecode_instructions
     << ",\"transfers_per_stream\":{";
  bool first = true;
  for (const auto& [stream, count] : transfers_per_stream) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(stream) << "\":" << count;
  }
  os << "},\"workers\":[";
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const WorkerCounters& w = workers[i];
    if (i != 0) os << ',';
    os << "{\"steals\":" << w.steals
       << ",\"failed_steals\":" << w.failed_steals << ",\"tasks\":" << w.tasks
       << ",\"idle_ns\":" << w.idle_ns << '}';
  }
  os << "]}";
  return os.str();
}

std::string DeadlockReport::to_string() const {
  std::ostringstream os;
  os << reason << ": " << blocked.size() << " blocked op(s)";
  if (!cycle.empty()) {
    os << "; blocking cycle:";
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      os << ' ' << cycle[i] << " -[" << cycle_channels[i] << "]->";
    }
    os << ' ' << cycle.front();
  }
  constexpr std::size_t kMaxShown = 12;
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    if (i == kMaxShown) {
      os << "\n  ... " << (blocked.size() - kMaxShown) << " more";
      break;
    }
    const BlockedOpState& b = blocked[i];
    os << "\n  " << b.process << ": " << b.op;
    if (!b.channel.empty()) os << ' ' << b.channel;
    os << " (t=" << b.time << ", stmts=" << b.statements << ')';
  }
  return os.str();
}

std::string DeadlockReport::to_json() const {
  std::ostringstream os;
  os << "{\"reason\":\"" << json_escape(reason) << "\",\"blocked\":[";
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    const BlockedOpState& b = blocked[i];
    if (i != 0) os << ',';
    os << "{\"process\":\"" << json_escape(b.process) << "\",\"channel\":\""
       << json_escape(b.channel) << "\",\"op\":\"" << json_escape(b.op)
       << "\",\"time\":" << b.time << ",\"statements\":" << b.statements
       << '}';
  }
  os << "],\"cycle\":[";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << json_escape(cycle[i]) << '"';
  }
  os << "],\"cycle_channels\":[";
  for (std::size_t i = 0; i < cycle_channels.size(); ++i) {
    if (i != 0) os << ',';
    os << '"' << json_escape(cycle_channels[i]) << '"';
  }
  os << "]}";
  return os.str();
}

}  // namespace systolize
