// The bytecode VM: threaded-dispatch execution of a lowered NetworkPlan
// (runtime/bytecode.hpp), bit-identical to the coroutine fast path.
//
// Identity argument: the VM replicates the fast scheduler's observable
// semantics op for op —
//   * the same FIFO double-buffered round structure (one round = the
//     ready entries present at round start; initial queue = spawn order),
//   * the same rendezvous clock math (both sides advance to
//     max(issue times) + 1; par sets issue every op at the owner's time
//     before any op is attempted, then attempt in set order),
//   * the same statement tick (+1 after each basic statement),
// so results, makespan, per-channel transfer counts, statement counts AND
// scheduler_rounds all match the interpreted fast path exactly. The
// differential suite (tests/integration/test_bytecode_differential.cpp)
// asserts this across the whole design catalog.
//
// What the VM removes is the per-communication *mechanism*: no coroutine
// frames, no awaiter objects, no parked-op vectors — a channel is two
// single-op park slots (pure rendezvous networks have single writers and
// readers with at most one outstanding op per side), a process is a dozen
// integers of resume state, and dispatch is computed goto over a flat
// instruction array.
//
// SoA multi-instance batching: one VM run executes the same schedule over
// N independent problem instances ("lanes"). Registers and the in/out
// value buffers are instance-major arrays (value of register r in lane l
// at regs[r*stride + l]); a rendezvous copies all lanes at once, while
// every clock, counter and control decision stays scalar — the schedule
// is value-independent, so all lanes share it. This amortizes the entire
// control overhead across the batch. Lanes can additionally be split
// across WorkerPool threads (run_vm_batched): each worker executes the
// full schedule over its own lane chunk with private scalar state, so no
// synchronization is needed beyond the final join.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "runtime/bytecode.hpp"
#include "support/error.hpp"

namespace systolize {

class WorkerPool;

struct VmRunOptions {
  /// Round budget (0 = unbounded); trips Error(Timeout) like the
  /// instrumented scheduler's watchdog.
  Int max_rounds = 0;
  /// External cancellation token, polled at round boundaries.
  const std::atomic<bool>* cancel = nullptr;
  std::string cancel_reason = "externally cancelled";
  ErrorKind cancel_kind = ErrorKind::Cancelled;
};

/// Schedule metrics of one VM run. All fields are schedule properties,
/// identical across lanes (and across lane chunks of a batched run).
struct VmResult {
  Int makespan = 0;
  Int total_transfers = 0;
  Int statements = 0;
  Int rounds = 0;
  std::vector<Int> channel_transfers;  ///< by plan channel id
};

/// Execute `prog` (lowered from `plan`) over lanes [lane_begin, lane_end)
/// of instance-major buffers with `lane_stride` total lanes: element e of
/// lane l lives at in[e * lane_stride + l] / out[e * lane_stride + l],
/// both aligned with plan.elems. Throws Error(Runtime) with a forensic
/// DeadlockReport on stall, Error(Timeout) on budget exhaustion, and
/// `opt.cancel_kind` on cancellation.
[[nodiscard]] VmResult run_vm(const BytecodeProgram& prog,
                              const NetworkPlan& plan, const Value* in,
                              Value* out, std::size_t lane_stride,
                              std::size_t lane_begin, std::size_t lane_end,
                              const VmRunOptions& opt = {});

/// Batched driver: run all `lanes` lanes, splitting them into contiguous
/// chunks across up to `threads` workers (worker 0 is the calling
/// thread). `pool` may be null (threads are spawned per call); with
/// threads <= 1 this is a single run_vm call. Chunk failures are
/// captured and the first is rethrown after every worker returns.
[[nodiscard]] VmResult run_vm_batched(const BytecodeProgram& prog,
                                      const NetworkPlan& plan,
                                      const Value* in, Value* out,
                                      std::size_t lanes, unsigned threads,
                                      WorkerPool* pool,
                                      const VmRunOptions& opt = {});

}  // namespace systolize
