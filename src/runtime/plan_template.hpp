// Size-generic plan templates: the compile-once / specialize-cheaply split.
//
// `build_plan()` re-runs the full symbolic pipeline — piecewise clause
// selection over rational affine expressions, per-point Env copies,
// `std::map<Symbol>` term walks — for every problem size. All of that is
// size-INdependent structure: the paper's derivations (Sects. 6-7) are
// symbolic in the size variables, so they can be lowered exactly once per
// (program, shape) into flat integer coefficient tables and then evaluated
// at any concrete size with overflow-checked integer dot products only.
//
//   stage 1  compile_template(program, nest, shape)  -> PlanTemplate
//            every symbolic derivation runs once: guards and values become
//            LinForms (scaled integer coefficient rows over the template
//            variables), piecewise clauses that are infeasible under the
//            program's standing assumptions are pruned by Fourier-Motzkin,
//            and all name prefixes are pre-assembled.
//   stage 2  expand_template(tmpl, sizes)            -> NetworkPlan
//            pure integer arithmetic: bind the size symbols, enumerate the
//            PS box, evaluate coefficient rows. No symbolic/ calls, no
//            Rational, no Fourier-Motzkin, no Env copies. The result is
//            bit-identical (spawn order, channel order, element slices,
//            names, graph) to build_plan() at the same sizes.
//
// PlanCache (runtime/plan_cache.hpp) builds its two cache levels on this
// split: templates are memoized per (program generation, shape) and plans
// per size vector, so a never-seen size costs one expansion instead of a
// full symbolic derivation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/plan_cache.hpp"

namespace systolize {

/// One affine form lowered to integers: value = (sum of coeff*var +
/// constant) / den with den > 0. Variables are indexed into the template's
/// variable space (process coordinates first, then size symbols); only
/// nonzero coefficients are stored. All arithmetic is overflow-checked.
struct LinForm {
  std::vector<std::pair<std::uint32_t, Int>> terms;  ///< (var, scaled coeff)
  Int constant = 0;  ///< scaled by den
  Int den = 1;       ///< common positive denominator

  /// The scaled numerator sum. Sign-exact: >= 0 iff the rational value is.
  [[nodiscard]] Int eval_scaled(const Int* vars) const;
  /// The exact integer value; throws NotRepresentable when den does not
  /// divide the numerator (scheme values are integral by construction).
  [[nodiscard]] Int eval(const Int* vars) const;
};

/// A lowered guard: conjunction of slack forms, each required >= 0.
struct TemplateGuard {
  std::vector<LinForm> slacks;

  [[nodiscard]] bool holds(const Int* vars) const;
};

/// A lowered Piecewise<AffineExpr>: first clause whose guard holds wins,
/// none -> nullptr (the null case), exactly like Piecewise::select.
struct TemplateExpr {
  struct Piece {
    TemplateGuard guard;
    LinForm value;
  };
  std::vector<Piece> pieces;

  [[nodiscard]] const LinForm* select(const Int* vars) const;
};

/// A lowered Piecewise<AffinePoint>: one LinForm per component.
struct TemplatePoint {
  struct Piece {
    TemplateGuard guard;
    std::vector<LinForm> value;
  };
  std::vector<Piece> pieces;

  [[nodiscard]] const std::vector<LinForm>* select(const Int* vars) const;
  [[nodiscard]] bool covers(const Int* vars) const {
    return select(vars) != nullptr;
  }
};

/// Everything stage 2 needs, with no reference back to the CompiledProgram
/// or LoopNest: coefficient tables for the PS box faces, the computation
/// repeater, per-stream i/o layouts and soak/drain counts, plus the
/// pre-assembled name fragments. Self-contained and immutable after
/// compile_template(), so one template may serve concurrent expansions.
struct PlanTemplate {
  struct StreamTemplate {
    std::string name;
    bool stationary = false;
    IntVec direction;     ///< element travel direction (pipe grouping)
    Int denominator = 1;  ///< flow denominator q (q-1 internal buffers)
    IntVec increment_s;   ///< i/o repeater increment (element identities)
    TemplatePoint first_s;
    TemplateExpr count_s;
    TemplateExpr soak;
    TemplateExpr drain;
    /// Name fragments: stage 2 appends only coordinates / indices.
    std::string pipe_prefix;  ///< "<stream>["
    std::string in_prefix;    ///< "in:<stream>:"
    std::string out_prefix;   ///< "out:<stream>:"
    std::string buf_prefix;   ///< "buf:<stream>:"
    std::string xbuf_prefix;  ///< "xbuf:<stream>:"
  };

  std::string program_name;
  std::uint64_t program_generation = 0;  ///< identity of the source program
  std::size_t depth = 0;                 ///< r
  PlanShape shape;

  /// Template variable space: vars[0 .. ncoords) are the process
  /// coordinates (program.coords order), vars[ncoords + i] is size symbol
  /// size_symbols[i]. Expansion binds the sizes once per call.
  std::size_t ncoords = 0;
  std::vector<std::string> size_symbols;

  IndexedBody body;   ///< the loop-nest basic statement
  IntVec increment;   ///< computation repeater chord increment
  std::vector<LinForm> ps_min;  ///< PS box faces (coord-free forms)
  std::vector<LinForm> ps_max;
  TemplatePoint first;  ///< repeater first (its cover is the CS predicate)
  TemplateExpr count;   ///< repeater iteration count
  std::vector<StreamTemplate> streams;

  /// Approximate heap footprint (coefficient tables + strings).
  [[nodiscard]] std::size_t memory_bytes() const;
};

/// Stage 1: run every symbolic derivation once. Fourier-Motzkin prunes
/// clauses infeasible under the program's standing assumptions; everything
/// else is lowered to integer coefficient rows. The returned template is
/// immutable and independent of the program's lifetime.
[[nodiscard]] std::shared_ptr<const PlanTemplate> compile_template(
    const CompiledProgram& program, const LoopNest& nest,
    const PlanShape& shape);

/// Stage 2: evaluate the template at concrete sizes. Integer arithmetic
/// only; output is bit-identical to build_plan(program, nest, sizes,
/// shape). Throws Error(Validation) when a size symbol is unbound or not
/// an integer.
[[nodiscard]] std::unique_ptr<NetworkPlan> expand_template(
    const PlanTemplate& tmpl, const Env& sizes);

}  // namespace systolize
