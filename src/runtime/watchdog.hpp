// Progress watchdog and deadlock forensics for the scheduler.
//
// The runtime's original deadlock detector fired only when the ready
// queue drained with processes still unfinished, and reported one line.
// This layer adds (a) hard bounds that turn livelock and starvation —
// which never drain the queue — into structured errors, and (b) a
// forensic pass that, on any stall, reconstructs the wait-for graph from
// the parked communication ops, extracts the blocking cycle, and reports
// per-process state both human-readably (the Error message) and as JSON
// (the Error's diagnostic payload).
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "runtime/metrics.hpp"
#include "support/error.hpp"

namespace systolize {

class Scheduler;

/// Progress bounds enforced by the scheduler each round. Zero disables a
/// bound. With both disabled and no cancel token the scheduler behaves
/// exactly as before: stalls are only detected when the ready queue
/// drains.
struct WatchdogConfig {
  /// Abort when the scheduler exceeds this many cooperative rounds
  /// (livelock guard: a finite program on a finite network bounds its
  /// rounds by statements + transfers).
  Int max_rounds = 0;
  /// Abort when a live, runnable-in-principle process has not executed
  /// for this many consecutive rounds while others still run (starvation
  /// guard). Must exceed any injected stall/delay duration, which park a
  /// process legitimately.
  Int max_blocked_rounds = 0;
  /// External cancellation token: when non-null and set, the run aborts
  /// at the next round boundary with Error(cancel_kind) and a full
  /// forensic report of where every process stood. This is how wall-clock
  /// deadlines reach the scheduler — a timer thread sets the flag, the
  /// scheduler notices between rounds (it never blocks inside a round, so
  /// the check granularity is one cooperative round). The pointee must
  /// outlive the run.
  const std::atomic<bool>* cancel = nullptr;
  /// Reason string reported when `cancel` fires (e.g. the deadline that
  /// expired); kind classifies it — Timeout for deadlines (retryable),
  /// Cancelled for shutdown (terminal).
  std::string cancel_reason = "externally cancelled";
  ErrorKind cancel_kind = ErrorKind::Cancelled;
};

/// Reconstruct the stall state: every parked/held op per blocked process,
/// and one blocking cycle of the wait-for graph if there is one. A
/// blocked process waits on the counterpart of each channel it is parked
/// on; the counterpart is whichever live process is parked on — or last
/// used — the channel's other side.
/// (The parallel substrate builds its own report over dense plan ids —
/// see runtime/shard.cpp — with the same rendering.)
[[nodiscard]] DeadlockReport build_deadlock_report(const Scheduler& sched,
                                                   std::string reason);

/// Build the report and raise Error(kind) with the human-readable
/// rendering as the message and the JSON rendering as the diagnostic.
/// Genuine protocol stalls are ErrorKind::Runtime; watchdog budget trips
/// raise Timeout and external cancellation raises the token's kind, so
/// callers (and the service's retry policy) can tell a deadline from a
/// deadlock without string-matching.
[[noreturn]] void raise_stall(const Scheduler& sched, std::string reason,
                              ErrorKind kind = ErrorKind::Runtime);

}  // namespace systolize
