// Execution metrics reported by the simulator.
#pragma once

#include <map>
#include <string>

#include "numeric/checked.hpp"

namespace systolize {

struct RunMetrics {
  Int makespan = 0;          ///< logical parallel time (max local clock)
  Int total_transfers = 0;   ///< messages moved across all channels
  Int statements = 0;        ///< basic statements executed
  std::size_t process_count = 0;
  std::size_t channel_count = 0;
  std::size_t computation_processes = 0;
  std::size_t io_processes = 0;
  std::size_t buffer_processes = 0;  ///< external + internal
  /// Physical processors after partitioning (== process_count when
  /// unpartitioned).
  std::size_t physical_processors = 0;
  std::map<std::string, Int> transfers_per_stream;

  /// Fraction of computation-process time spent executing statements:
  /// statements / (computation processes * makespan). D.1's processes all
  /// run n+1 statements (high utilization); D.2 trades utilization for
  /// array length (each process runs at most n+1 of 2n+1 possible).
  [[nodiscard]] double utilization() const;

  [[nodiscard]] std::string to_string() const;
};

}  // namespace systolize
