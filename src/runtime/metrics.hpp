// Execution metrics and forensic reports produced by the simulator.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "numeric/checked.hpp"

namespace systolize {

/// What one worker of the work-stealing substrate did during a parallel
/// run (runtime/shard). All counters are exact; `idle_ns` is wall time
/// the worker spent with no claimable process (spinning/yielding), the
/// direct measure of load imbalance.
struct WorkerCounters {
  Int steals = 0;        ///< processes claimed off another worker's queue
  Int failed_steals = 0; ///< steal attempts that lost the claim race
  Int tasks = 0;         ///< process resumptions executed
  Int idle_ns = 0;       ///< wall nanoseconds spent idle
};

struct RunMetrics {
  Int makespan = 0;          ///< logical parallel time (max local clock)
  Int total_transfers = 0;   ///< messages moved across all channels
  Int statements = 0;        ///< basic statements executed
  std::size_t process_count = 0;
  std::size_t channel_count = 0;
  std::size_t computation_processes = 0;
  std::size_t io_processes = 0;
  std::size_t buffer_processes = 0;  ///< external + internal
  /// Physical processors after partitioning (== process_count when
  /// unpartitioned).
  std::size_t physical_processors = 0;
  Int scheduler_rounds = 0;  ///< cooperative rounds the run took; on a
                             ///< sharded run, the max over the shards'
                             ///< counters (not schedule-invariant)
  Int faults_injected = 0;   ///< faults that actually fired (0 = clean run)
  std::size_t shards = 0;    ///< worker shards of a parallel run (0 = seq.)
  bool plan_reused = false;  ///< network plan came from a PlanCache hit
  /// Plan came from a cached PlanTemplate (compile-once stage skipped);
  /// true on every cache interaction after the first for a (program,
  /// shape), including plan-level hits.
  bool template_reused = false;
  /// Nanoseconds spent expanding the template into this run's plan
  /// (0 on a plan-level cache hit or when no cache is attached).
  Int plan_expand_ns = 0;
  /// PlanCache occupancy and cumulative LRU evictions after this run's
  /// lookup (0 when no cache is attached).
  std::size_t plan_cache_bytes = 0;
  std::size_t plan_cache_evictions = 0;
  /// Execution backend that ran the plan: "interp" (the coroutine
  /// scheduler) or "bytecode" (the lowered VM, runtime/vm.hpp).
  std::string backend = "interp";
  /// Problem instances executed by this dispatch (SoA lanes); 1 means an
  /// ordinary single-instance run. All schedule metrics above are per
  /// schedule, not per instance — lanes share one schedule by design.
  std::size_t batch = 1;
  /// Lowered program came from the PlanCache's bytecode level.
  bool bytecode_reused = false;
  /// Nanoseconds spent lowering the plan for this run (0 on a cache hit
  /// or on interp runs).
  Int bytecode_lower_ns = 0;
  /// Instruction count of the lowered program (0 on interp runs).
  std::size_t bytecode_instructions = 0;
  std::map<std::string, Int> transfers_per_stream;
  /// Per-worker substrate counters of a parallel run (empty = sequential).
  std::vector<WorkerCounters> workers;

  /// Fraction of computation-process time spent executing statements:
  /// statements / (computation processes * makespan). D.1's processes all
  /// run n+1 statements (high utilization); D.2 trades utilization for
  /// array length (each process runs at most n+1 of 2n+1 possible).
  [[nodiscard]] double utilization() const;

  [[nodiscard]] std::string to_string() const;
  /// JSON rendering, for the service wire protocol and stats endpoints.
  [[nodiscard]] std::string to_json() const;
};

/// One parked (or fault-held) operation of a blocked process, captured at
/// stall time by the deadlock forensics pass.
struct BlockedOpState {
  std::string process;    ///< process name
  std::string channel;    ///< channel the op is parked on (empty if stalled)
  std::string op;         ///< "send" | "recv" | "stalled" | "delayed-send" | "delayed-recv"
  Int time = 0;           ///< the process's local logical clock
  Int statements = 0;     ///< basic statements the process has executed
};

/// Machine-readable stall forensics: every blocked op, plus one blocking
/// cycle of the wait-for graph when the stall is a rendezvous deadlock.
/// `cycle[i]` waits on `cycle_channels[i]` toward `cycle[(i+1) % n]`.
struct DeadlockReport {
  std::string reason;  ///< "deadlock" or a watchdog description
  std::vector<BlockedOpState> blocked;
  std::vector<std::string> cycle;
  std::vector<std::string> cycle_channels;

  /// Human-readable multi-line rendering (used as the Error message).
  [[nodiscard]] std::string to_string() const;
  /// JSON rendering (the Error's diagnostic payload).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace systolize
