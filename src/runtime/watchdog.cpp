#include "runtime/watchdog.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "runtime/scheduler.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

/// One wait-for edge: the blocked process waits for `to` to take the
/// other side of `via`.
struct WaitEdge {
  const Process* to = nullptr;
  const Channel* via = nullptr;
};

/// Order processes by name, not address: heap layout varies between
/// runs, and pointer-ordered traversal would rotate the reported cycle
/// nondeterministically (two identical runs naming different "first"
/// processes of the same cycle).
struct ByName {
  bool operator()(const Process* a, const Process* b) const {
    return a->name < b->name;
  }
};

using WaitGraph = std::map<const Process*, std::vector<WaitEdge>, ByName>;

/// Extract one cycle from the wait-for graph, if any, into the report.
void find_cycle(const WaitGraph& adj, DeadlockReport& report) {
  // DFS with the classic three colours; the path stack remembers the
  // channel each hop came in on, so the cycle can be reported with the
  // channels that carry it.
  std::map<const Process*, int, ByName> color;  // 0 white, 1 gray, 2 black
  struct PathEntry {
    const Process* proc;
    const Channel* via_in;  ///< channel of the edge into `proc` (null at root)
  };
  std::vector<PathEntry> path;
  bool found = false;

  std::function<void(const Process*)> dfs = [&](const Process* u) {
    color[u] = 1;
    auto it = adj.find(u);
    if (it != adj.end()) {
      for (const WaitEdge& e : it->second) {
        if (found) return;
        if (color[e.to] == 0) {
          path.push_back({e.to, e.via});
          dfs(e.to);
          if (found) return;
          path.pop_back();
        } else if (color[e.to] == 1) {
          // Back edge u -> e.to closes a cycle: it runs from e.to's
          // position in the path down to u, then back via e.via.
          auto start = std::find_if(
              path.begin(), path.end(),
              [&](const PathEntry& pe) { return pe.proc == e.to; });
          for (auto pe = start; pe != path.end(); ++pe) {
            report.cycle.push_back(pe->proc->name);
            auto next = pe + 1;
            report.cycle_channels.push_back(
                next == path.end() ? e.via->name() : next->via_in->name());
          }
          found = true;
          return;
        }
      }
    }
    color[u] = 2;
  };

  for (const auto& [proc, edges] : adj) {
    (void)edges;
    if (found) break;
    if (color[proc] == 0) {
      path.clear();
      path.push_back({proc, nullptr});
      dfs(proc);
    }
  }
}

}  // namespace

DeadlockReport build_deadlock_report(const Scheduler& sched,
                                     std::string reason) {
  DeadlockReport report;
  report.reason = std::move(reason);

  WaitGraph adj;
  auto add_blocked = [&](const Process* p, const Channel* c,
                         const char* opname) {
    report.blocked.push_back(BlockedOpState{
        p->name, c == nullptr ? "" : c->name(), opname, p->time(),
        p->statements});
  };

  for (const Channel& chan : sched.channels()) {
    for (const CommOp* op : chan.parked_senders()) {
      add_blocked(op->proc, &chan, "send");
      Process* cp = chan.known_receiver();
      if (cp != nullptr && cp != op->proc && !cp->finished) {
        adj[op->proc].push_back(WaitEdge{cp, &chan});
      }
    }
    for (const CommOp* op : chan.parked_receivers()) {
      add_blocked(op->proc, &chan, "recv");
      Process* cp = chan.known_sender();
      if (cp != nullptr && cp != op->proc && !cp->finished) {
        adj[op->proc].push_back(WaitEdge{cp, &chan});
      }
    }
  }
  // Ops and processes held by injected faults are blocked on the fault
  // clock, not on a partner: report them without wait-for edges.
  for (const auto& [release, op] : sched.delayed_ops()) {
    (void)release;
    add_blocked(op->proc, op->chan,
                op->is_send ? "delayed-send" : "delayed-recv");
  }
  for (const auto& [release, proc] : sched.stalled_processes()) {
    (void)release;
    add_blocked(proc, nullptr, "stalled");
  }

  find_cycle(adj, report);
  return report;
}

void raise_stall(const Scheduler& sched, std::string reason, ErrorKind kind) {
  DeadlockReport report = build_deadlock_report(sched, std::move(reason));
  raise(kind, report.to_string(), report.to_json());
}

}  // namespace systolize
