#include "runtime/host.hpp"

namespace systolize {

Value IndexedStore::get(const std::string& var, const IntVec& index) const {
  auto it = vars_.find(var);
  if (it == vars_.end()) return 0;
  auto jt = it->second.find(index);
  return jt == it->second.end() ? 0 : jt->second;
}

void IndexedStore::set(const std::string& var, const IntVec& index,
                       Value value) {
  vars_[var][index] = value;
}

void IndexedStore::gather(const std::string& var, const IntVec* indices,
                          std::size_t count, Value* out) const {
  auto it = vars_.find(var);
  if (it == vars_.end()) {
    for (std::size_t i = 0; i < count; ++i) out[i] = 0;
    return;
  }
  const ElementMap& elems = it->second;
  for (std::size_t i = 0; i < count; ++i) {
    auto jt = elems.find(indices[i]);
    out[i] = jt == elems.end() ? 0 : jt->second;
  }
}

void IndexedStore::scatter(const std::string& var, const IntVec* indices,
                           std::size_t count, const Value* values) {
  ElementMap& elems = vars_[var];
  for (std::size_t i = 0; i < count; ++i) {
    elems[indices[i]] = values[i];
  }
}

const IndexedStore::ElementMap& IndexedStore::elements(
    const std::string& var) const {
  auto it = vars_.find(var);
  if (it == vars_.end()) {
    raise(ErrorKind::Validation, "no variable '" + var + "' in store");
  }
  return it->second;
}

bool IndexedStore::has(const std::string& var) const {
  return vars_.contains(var);
}

std::vector<IntVec> IndexedStore::domain(const Stream& s, const Env& env) {
  std::vector<std::pair<Int, Int>> bounds;
  for (const VarDim& d : s.dims()) {
    Int lo = d.lower.evaluate(env).to_integer();
    Int hi = d.upper.evaluate(env).to_integer();
    if (lo > hi) {
      raise(ErrorKind::Validation,
            "variable '" + s.name() + "' has an empty dimension");
    }
    bounds.emplace_back(lo, hi);
  }
  std::vector<IntVec> points;
  IntVec x(bounds.size());
  for (std::size_t i = 0; i < bounds.size(); ++i) x[i] = bounds[i].first;
  for (;;) {
    points.push_back(x);
    std::size_t i = bounds.size();
    while (i > 0) {
      --i;
      if (++x[i] <= bounds[i].second) break;
      x[i] = bounds[i].first;
      if (i == 0) return points;
    }
  }
}

void IndexedStore::fill(const Stream& s, const Env& env,
                        const std::function<Value(const IntVec&)>& init) {
  for (const IntVec& p : domain(s, env)) set(s.name(), p, init(p));
}

}  // namespace systolize
