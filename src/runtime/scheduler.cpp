#include "runtime/scheduler.hpp"

#include <limits>
#include <sstream>

#include "runtime/faults.hpp"
#include "support/error.hpp"

namespace systolize {

void Task::promise_type::unhandled_exception() noexcept {
  if (proc != nullptr) proc->error = std::current_exception();
}

// ---------------------------------------------------------------- Channel
//
// The fast-path machinery (try_complete, park, complete_counterpart and
// the after_transfer shell) is defined inline in scheduler.hpp; this file
// keeps only the slow halves that run with faults or a watchdog attached.

namespace {

/// FIFO pop from the front of a flat parked-op vector. Parked queues are
/// almost always length 0 or 1 (a rendezvous parks at most one side), so
/// the O(n) erase never sees a meaningful n.
CommOp* pop_front(std::vector<CommOp*>& q) {
  CommOp* op = q.front();
  q.erase(q.begin());
  return op;
}

}  // namespace

void Channel::after_transfer_slow(Value v, Int time) {
  if (sched_->injector()->roll_duplicate(*this, transfers_ - 1)) {
    // Ghost delivery: the value re-enters the channel as if sent a second
    // time. The next receive consumes it, shifting the stream — the
    // protocol breakage the resilience harness must then catch.
    buffer_push(Stamped{v, time});
  }
}

void Channel::match_parked() {
  // Only injected delays can park both sides of a channel simultaneously
  // (an arriving op always matches a parked counterpart in try_complete),
  // so this runs only when a delayed op is finally released.
  for (bool progress = true; progress;) {
    progress = false;
    // Parked receivers drain buffered values first (FIFO order).
    while (!receivers_.empty() && !buffer_empty()) {
      CommOp* r = pop_front(receivers_);
      Stamped s = buffer_pop();
      complete_counterpart(*r, s.value, std::max(r->issue_time + 1, s.time));
      progress = true;
    }
    // Direct rendezvous between mutually parked ops.
    while (!senders_.empty() && !receivers_.empty()) {
      CommOp* snd = pop_front(senders_);
      CommOp* r = pop_front(receivers_);
      Int t = std::max(snd->issue_time, r->issue_time) + 1;
      ++transfers_;
      Value v = snd->value;
      complete_counterpart(*snd, v, t);
      complete_counterpart(*r, v, t);
      after_transfer(v, t);
      progress = true;
    }
    // A parked sender moves into free buffer space.
    while (!senders_.empty() && buffer_size() < capacity_) {
      CommOp* snd = pop_front(senders_);
      Int t = snd->issue_time + 1;
      buffer_push(Stamped{snd->value, t});
      ++transfers_;
      complete_counterpart(*snd, snd->value, t);
      after_transfer(snd->value, t);
      progress = true;
    }
  }
}

// ----------------------------------------------------------- CommAwaiter

bool CommAwaiter::ready_instrumented() {
  // Ops were already issued by the inline await_ready. Roll injected
  // transfer delays once per issued op; a delayed op is forced to suspend
  // and is offered to its channel only after the delay elapses
  // (await_suspend hands it to the scheduler).
  Process& p = ctx_.process();
  FaultInjector* inj = p.sched->injector();
  for (std::size_t i = 0; i < count_; ++i) {
    ops_[i].fault_delay = inj->roll_delay(*ops_[i].chan);
  }
  bool all = true;
  for (std::size_t i = 0; i < count_; ++i) {
    CommOp& op = ops_[i];
    if (op.fault_delay > 0) {
      all = false;
      continue;
    }
    if (!op.chan->try_complete(op)) all = false;
  }
  return all;
}

void CommAwaiter::suspend_instrumented() {
  Process& p = ctx_.process();
  Scheduler* sched = p.sched;
  p.pending = 0;
  std::ostringstream blocked;
  for (std::size_t i = 0; i < count_; ++i) {
    CommOp& op = ops_[i];
    if (op.done) continue;
    ++p.pending;
    if (p.pending > 1) blocked << ", ";
    blocked << (op.is_send ? "send " : "recv ") << op.chan->name();
    if (op.fault_delay > 0) {
      blocked << " (delayed)";
      sched->defer_op(op, op.fault_delay);
    } else {
      op.chan->park(op);
    }
  }
  p.blocked_on = blocked.str();
  // Transfers completed after parking (by partners) decrement `pending`;
  // the partner's completion path re-queues this process at zero.
}

void Ctx::tick_kill() {
  proc_->killed = true;
  if (sched_->injector() != nullptr) {
    sched_->injector()->record(FaultKind::Kill, proc_->name,
                               proc_->statements);
  }
  throw ProcessKilledSignal{};
}

// ------------------------------------------------------------- Scheduler

Scheduler::~Scheduler() {
  for (Process& p : processes_) {
    if (p.handle) p.handle.destroy();
  }
}

void Scheduler::finish_spawn(Process& ref) {
  if (injector_ != nullptr) injector_->on_spawn(ref);
  make_ready(ref);
}

Channel& Scheduler::make_channel(std::string name, Int capacity) {
  return channels_.emplace_back(std::move(name), this, capacity);
}

void Scheduler::defer_op(CommOp& op, Int delay) {
  delayed_.emplace(round_ + delay, &op);
}

void Scheduler::release_due() {
  while (!stalled_.empty() && stalled_.begin()->first <= round_) {
    Process* proc = stalled_.begin()->second;
    stalled_.erase(stalled_.begin());
    // Still flagged in_ready_queue (it was queued the whole time, just
    // elsewhere), so re-insert directly.
    ready_.push_back(proc);
  }
  while (!delayed_.empty() && delayed_.begin()->first <= round_) {
    CommOp* op = delayed_.begin()->second;
    delayed_.erase(delayed_.begin());
    op->chan->park(*op);
    // Its partner may have parked in the meantime: pair them up now.
    op->chan->match_parked();
  }
}

void Scheduler::check_starvation() {
  for (const Process& p : processes_) {
    if (p.finished || p.in_ready_queue) continue;
    if (round_ - p.last_active_round > watchdog_.max_blocked_rounds) {
      raise_stall(*this, "watchdog: process '" + p.name +
                             "' blocked for more than " +
                             std::to_string(watchdog_.max_blocked_rounds) +
                             " rounds (starvation)",
                  ErrorKind::Timeout);
    }
  }
}

void Scheduler::run_fast() {
  // The zero-overhead loop: no fault release, no stall service, no
  // watchdog, no blocked-on bookkeeping. Rounds are still counted with
  // the same batch boundaries as the instrumented loop (one round = the
  // ready entries present at round start), so a clean run reports the
  // same scheduler_rounds on either path.
  while (!ready_.empty()) {
    std::swap(ready_, batch_);
    for (Process* proc : batch_) {
      if (proc->finished) {
        proc->in_ready_queue = false;
        continue;
      }
      proc->in_ready_queue = false;
      proc->handle.resume();
      if (proc->error) std::rethrow_exception(proc->error);
      if (proc->handle.done()) proc->finished = true;
    }
    batch_.clear();
    ++round_;
  }
}

void Scheduler::run_instrumented() {
  for (;;) {
    // External cancellation (wall-clock deadline, shutdown): checked at
    // every round boundary, including the fault fast-forward path below,
    // so a cancelled run aborts within one round with full forensics.
    if (watchdog_.cancel != nullptr &&
        watchdog_.cancel->load(std::memory_order_relaxed)) {
      raise_stall(*this, watchdog_.cancel_reason, watchdog_.cancel_kind);
    }
    release_due();
    if (ready_.empty()) {
      if (stalled_.empty() && delayed_.empty()) break;
      // Nothing runnable, but injected faults hold work: jump to the
      // next release round (fault durations are finite, so this always
      // terminates).
      Int next = std::numeric_limits<Int>::max();
      if (!stalled_.empty()) next = std::min(next, stalled_.begin()->first);
      if (!delayed_.empty()) next = std::min(next, delayed_.begin()->first);
      round_ = next;
      continue;
    }
    if (watchdog_.max_rounds > 0 && round_ >= watchdog_.max_rounds) {
      raise_stall(*this, "watchdog: round budget of " +
                             std::to_string(watchdog_.max_rounds) +
                             " exhausted (livelock?)",
                  ErrorKind::Timeout);
    }
    // One round = the ready entries present at round start; processes
    // made ready during the round run in the next one. The order is the
    // same FIFO order as before rounds existed — the boundary only
    // defines the time base for stalls, delays and the watchdog.
    std::swap(ready_, batch_);
    for (std::size_t i = 0; i < batch_.size(); ++i) {
      Process* proc = batch_[i];
      if (proc->finished) {
        proc->in_ready_queue = false;
        continue;
      }
      if (proc->fault_stall_round >= 0 && !proc->fault_stall_served &&
          round_ >= proc->fault_stall_round) {
        // Injected stall: hold the process out of the queue for its
        // duration; in_ready_queue stays set (it is queued, elsewhere).
        proc->fault_stall_served = true;
        if (injector_ != nullptr) {
          injector_->record(FaultKind::Stall, proc->name,
                            proc->fault_stall_duration);
        }
        stalled_.emplace(round_ + proc->fault_stall_duration, proc);
        continue;
      }
      proc->in_ready_queue = false;
      proc->last_active_round = round_;
      proc->handle.resume();
      if (proc->error) {
        if (proc->killed) {
          // An injected kill unwound the coroutine with a private
          // signal: the process is dead but the run continues, so the
          // rest of the network's failure can be observed and diagnosed.
          proc->error = nullptr;
          proc->finished = true;
          continue;
        }
        std::rethrow_exception(proc->error);
      }
      if (proc->handle.done()) proc->finished = true;
    }
    batch_.clear();
    if (watchdog_.max_blocked_rounds > 0) check_starvation();
    ++round_;
  }
}

void Scheduler::run() {
  round_ = 0;
  if (instrumented_) {
    run_instrumented();
  } else {
    run_fast();
  }
  // All ready work drained: either everything finished or we deadlocked.
  for (const Process& p : processes_) {
    if (!p.finished) raise_stall(*this, "deadlock");
  }
}

Int Scheduler::total_transfers() const {
  Int total = 0;
  for (const Channel& c : channels_) total += c.transfers();
  return total;
}

Int Scheduler::makespan() const {
  Int m = 0;
  for (const Process& p : processes_) m = std::max(m, p.time());
  return m;
}

}  // namespace systolize
