#include "runtime/scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace systolize {

void Task::promise_type::unhandled_exception() noexcept {
  if (proc != nullptr) proc->error = std::current_exception();
}

// ---------------------------------------------------------------- Channel

void Channel::complete_counterpart(CommOp& op, Value v, Int time) {
  // `op` is a *parked* op of another process: finish it at logical time
  // `time` and wake its owner when its whole par set is done.
  if (!op.is_send) {
    op.value = v;
    if (op.out != nullptr) *op.out = v;
  }
  Process& p = *op.proc;
  p.advance_to(time);
  op.done = true;
  if (op.is_send) {
    ++p.sends;
  } else {
    ++p.recvs;
  }
  if (--p.pending == 0) p.sched->make_ready(p);
}

bool Channel::try_complete(CommOp& op) {
  Process& self = *op.proc;
  if (op.is_send) {
    if (!receivers_.empty()) {
      CommOp* r = receivers_.front();
      receivers_.pop_front();
      // Rendezvous: both sides advance to max(issue times) + 1.
      Int t = std::max(op.issue_time, r->issue_time) + 1;
      self.advance_to(t);
      ++self.sends;
      ++transfers_;
      op.done = true;
      complete_counterpart(*r, op.value, t);
      return true;
    }
    if (static_cast<Int>(buffer_.size()) < capacity_) {
      // Buffered hand-off: the value leaves the sender one step later.
      self.advance_to(op.issue_time + 1);
      buffer_.push_back(Stamped{op.value, self.time()});
      ++self.sends;
      ++transfers_;
      op.done = true;
      return true;
    }
    return false;
  }
  // Receive.
  if (!buffer_.empty()) {
    Stamped s = buffer_.front();
    buffer_.pop_front();
    op.value = s.value;
    if (op.out != nullptr) *op.out = s.value;
    self.advance_to(std::max(op.issue_time + 1, s.time));
    ++self.recvs;
    op.done = true;
    // A parked sender may now fit into the freed buffer slot.
    if (!senders_.empty() && static_cast<Int>(buffer_.size()) < capacity_) {
      CommOp* snd = senders_.front();
      senders_.pop_front();
      Int t = snd->issue_time + 1;
      buffer_.push_back(Stamped{snd->value, t});
      ++transfers_;
      complete_counterpart(*snd, snd->value, t);
    }
    return true;
  }
  if (!senders_.empty()) {
    CommOp* snd = senders_.front();
    senders_.pop_front();
    Int t = std::max(op.issue_time, snd->issue_time) + 1;
    op.value = snd->value;
    if (op.out != nullptr) *op.out = snd->value;
    self.advance_to(t);
    ++self.recvs;
    op.done = true;
    ++transfers_;
    complete_counterpart(*snd, snd->value, t);
    return true;
  }
  return false;
}

void Channel::park(CommOp& op) {
  (op.is_send ? senders_ : receivers_).push_back(&op);
}

// ------------------------------------------------------------------- Ctx

CommAwaiter::CommAwaiter(Ctx ctx, std::vector<CommOp> ops)
    : ctx_(ctx), ops_(std::move(ops)) {}

bool CommAwaiter::await_ready() {
  Process& p = ctx_.process();
  for (CommOp& op : ops_) {
    op.proc = &p;
    op.issue_time = p.time();
  }
  bool all = true;
  for (CommOp& op : ops_) {
    if (!op.chan->try_complete(op)) all = false;
  }
  if (all) return true;
  return false;
}

void CommAwaiter::await_suspend(std::coroutine_handle<> h) {
  (void)h;  // the scheduler resumes via the process handle
  Process& p = ctx_.process();
  p.pending = 0;
  std::ostringstream blocked;
  for (CommOp& op : ops_) {
    if (op.done) continue;
    ++p.pending;
    op.chan->park(op);
    if (p.pending > 1) blocked << ", ";
    blocked << (op.is_send ? "send " : "recv ") << op.chan->name();
  }
  p.blocked_on = blocked.str();
  // Transfers completed after parking (by partners) decrement `pending`;
  // the partner's completion path re-queues this process at zero.
}

void CommAwaiter::await_resume() {
  Process& p = ctx_.process();
  p.blocked_on.clear();
  // A par set completes only when its slowest member does.
  for (const CommOp& op : ops_) {
    (void)op;  // times were already folded into the process clock per op
  }
}

CommAwaiter Ctx::send(Channel& chan, Value v) {
  return CommAwaiter(*this, {send_op(chan, v)});
}

CommAwaiter Ctx::recv(Channel& chan, Value& out) {
  return CommAwaiter(*this, {recv_op(chan, out)});
}

CommAwaiter Ctx::par(std::vector<CommOp> ops) {
  return CommAwaiter(*this, std::move(ops));
}

CommOp Ctx::send_op(Channel& chan, Value v) const {
  CommOp op;
  op.chan = &chan;
  op.is_send = true;
  op.value = v;
  op.proc = proc_;
  return op;
}

CommOp Ctx::recv_op(Channel& chan, Value& out) const {
  CommOp op;
  op.chan = &chan;
  op.is_send = false;
  op.out = &out;
  op.proc = proc_;
  return op;
}

void Ctx::tick_statement() {
  ++proc_->clock->time;
  ++proc_->statements;
}

// ------------------------------------------------------------- Scheduler

Scheduler::~Scheduler() {
  for (auto& p : processes_) {
    if (p->handle) p->handle.destroy();
  }
}

Process& Scheduler::spawn(std::string name,
                          const std::function<Task(Ctx)>& body,
                          Clock* clock) {
  auto proc = std::make_unique<Process>();
  proc->name = std::move(name);
  proc->sched = this;
  if (clock != nullptr) proc->clock = clock;
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  Task task = body(Ctx(this, &ref));
  ref.handle = task.handle;
  task.handle.promise().proc = &ref;
  make_ready(ref);
  return ref;
}

Channel& Scheduler::make_channel(std::string name, Int capacity) {
  channels_.push_back(
      std::make_unique<Channel>(std::move(name), this, capacity));
  return *channels_.back();
}

void Scheduler::make_ready(Process& proc) {
  if (proc.finished || proc.in_ready_queue) return;
  proc.in_ready_queue = true;
  ready_.push_back(&proc);
}

void Scheduler::run() {
  while (!ready_.empty()) {
    Process* proc = ready_.front();
    ready_.pop_front();
    proc->in_ready_queue = false;
    if (proc->finished) continue;
    proc->handle.resume();
    if (proc->error) std::rethrow_exception(proc->error);
    if (proc->handle.done()) proc->finished = true;
  }
  // All ready work drained: either everything finished or we deadlocked.
  std::vector<const Process*> stuck;
  for (const auto& p : processes_) {
    if (!p->finished) stuck.push_back(p.get());
  }
  if (stuck.empty()) return;
  std::ostringstream os;
  os << "deadlock: " << stuck.size() << " process(es) blocked";
  std::size_t shown = 0;
  for (const Process* p : stuck) {
    if (shown++ == 8) {
      os << "; ...";
      break;
    }
    os << "; " << p->name << " on [" << p->blocked_on << "]";
  }
  raise(ErrorKind::Runtime, os.str());
}

Int Scheduler::total_transfers() const {
  Int total = 0;
  for (const auto& c : channels_) total += c->transfers();
  return total;
}

Int Scheduler::makespan() const {
  Int m = 0;
  for (const auto& p : processes_) m = std::max(m, p->time());
  return m;
}

}  // namespace systolize
