// Instantiation: bind a compiled (symbolic) systolic program at a concrete
// problem size and execute it on the message-passing substrate.
//
// The process network mirrors the paper's final programs: per-stream input
// and output processes at the pipeline ends, q-1 internal buffer processes
// per hop for a stream with flow denominator q, per-stream external buffer
// processes at the points of PS \ CS, and one computation process per
// point of CS. Computation processes never see element identities — a
// stream element consists only of its value (Sect. 4.2); all loop counts
// come from the symbolic repeaters evaluated at the process coordinates.
#pragma once

#include "runtime/faults.hpp"
#include "runtime/host.hpp"
#include "runtime/network.hpp"
#include "runtime/metrics.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/trace.hpp"
#include "runtime/watchdog.hpp"
#include "scheme/types.hpp"

namespace systolize {

class WorkerPool;

/// Which engine executes the expanded plan.
///
///   * Auto — single-instance runs take the coroutine scheduler exactly
///     as before; batched runs (execute_batch with batch > 1) take the
///     bytecode VM when the options are eligible and fall back to a
///     sequential per-instance interp loop otherwise.
///   * Interp — force the coroutine scheduler (batched runs loop over
///     instances sequentially; the baseline the batching benchmarks
///     compare against).
///   * Bytecode — force the lowered VM (runtime/bytecode + runtime/vm);
///     incompatible options raise Error(Validation). Bit-identical to
///     the interpreted fast path via the dataflow clocks.
enum class Backend { Auto, Interp, Bytecode };

struct InstantiateOptions {
  /// Rendezvous (0) by default; larger values add slack per channel.
  Int channel_capacity = 0;
  /// Ablation (Sect. 7.6 remark "buffers ... may be incorporated into the
  /// computation processes in a later compilation step"): realize internal
  /// buffers as channel capacity instead of separate processes.
  bool merge_internal_buffers = false;
  /// When non-null, every basic-statement execution is appended here.
  Trace* trace = nullptr;
  /// When non-null, the instantiated topology (processes and channels) is
  /// recorded here for inspection / Graphviz export.
  NetworkGraph* network = nullptr;
  /// Partitioning (the paper's Sect.-8 extension via its ref. [23]):
  /// number of physical processors per process-space dimension. Empty
  /// means one processor per process. Processes in the same block are
  /// multiplexed onto one physical processor and share its logical clock,
  /// so the makespan reflects the serialization; results are unchanged.
  IntVec partition_grid;
  /// Deterministic fault injection: when non-null (and non-empty), the
  /// plan's stalls/kills/delays/duplicates are injected into the run;
  /// a given (plan, program, sizes) triple replays bit-identically. The
  /// plan must outlive the call.
  const FaultPlan* faults = nullptr;
  /// Progress watchdog: bounds on scheduler rounds and per-process
  /// blocked time (0 = disabled). Turns livelock/starvation into a
  /// structured Error(Runtime) with a forensic report.
  WatchdogConfig watchdog;
  /// Parallel execution on the work-stealing substrate: number of worker
  /// threads (0 or 1 = sequential). Results, makespan and transfer counts
  /// are bit-identical to a sequential run (see runtime/shard.hpp for the
  /// determinism argument). Requires pure rendezvous channels and no
  /// partitioning or tracing; round budgets (`watchdog.max_rounds`),
  /// cancel tokens, and stall/kill fault injection are supported, but
  /// starvation bounds (`max_blocked_rounds`) and transfer-time faults
  /// (delay/duplicate) are sequential-only — incompatible combinations
  /// raise Error(Validation).
  unsigned threads = 0;
  /// Thread pool for parallel runs; when null, each run spawns its own
  /// threads. The service layer shares one pool across requests so warm
  /// traffic skips per-run thread creation. Must outlive the call.
  WorkerPool* worker_pool = nullptr;
  /// When non-null, plans are served from this two-level cache: the
  /// symbolic derivation is compiled once per (program, shape) into a
  /// PlanTemplate, and per-size NetworkPlans are expanded from it in pure
  /// integer arithmetic (and memoized under an LRU byte budget). The
  /// cache must outlive the call.
  PlanCache* plan_cache = nullptr;
  /// Run the static verifier (src/analysis) on the program and the
  /// interned plan before spawning anything; error findings raise
  /// Error(Validation) with the verify report as message and its JSON as
  /// the diagnostic payload. Costs zero scheduler rounds.
  bool verify_plan = false;
  /// Execution engine selection (see Backend). The bytecode VM requires
  /// pure rendezvous channels (capacity 0, unmerged buffers), no
  /// partitioning, no tracing, no fault injection and no starvation
  /// bound; round budgets and cancel tokens are supported.
  Backend backend = Backend::Auto;
};

/// Execute the program at the problem size bound in `sizes`, reading
/// injected stream values from `store` and writing extracted ones back.
/// Throws Error(Runtime) on protocol failure (e.g. deadlock).
[[nodiscard]] RunMetrics execute(const CompiledProgram& program,
                                 const LoopNest& nest, const Env& sizes,
                                 IndexedStore& store,
                                 const InstantiateOptions& options = {});

/// Execute `batch` independent problem instances through ONE expanded
/// plan: stores[0..batch) each hold one instance's inputs and receive its
/// outputs. All instances share the schedule (it is value-independent),
/// so on the bytecode backend the whole batch runs as SoA lanes of a
/// single VM dispatch — plan expansion, lowering and all per-transfer
/// control cost are paid once for the batch. Backend::Interp (or an
/// ineligible Auto) degrades to a sequential per-instance loop with
/// identical results. The returned metrics describe the shared schedule
/// (identical for every instance) with `batch` set.
///
/// Fault injection is per-instance by nature (a kill produces a verdict
/// for one instance, not the batch), so `options.faults` must be empty —
/// callers wanting faulted batches run instances individually through
/// execute(). Throws Error(Validation) otherwise.
[[nodiscard]] RunMetrics execute_batch(const CompiledProgram& program,
                                       const LoopNest& nest, const Env& sizes,
                                       IndexedStore* stores,
                                       std::size_t batch,
                                       const InstantiateOptions& options = {});

}  // namespace systolize
