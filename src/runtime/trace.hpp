// Execution tracing: per-statement logical timestamps.
//
// The paper's correctness argument leans on a theorem (its ref. [20]) that
// relaxing the systolic array's lock-step execution to asynchronous
// processes with synchronous channels does not change the computation.
// The trace makes that checkable: each basic-statement execution is
// recorded with its process, iteration number and logical time, and a
// checker maps iterations back to index-space points via the repeater
// (x = first.y + iteration * increment) to verify that any two statements
// sharing a stream element execute in step order.
#pragma once

#include <vector>

#include "numeric/int_vec.hpp"

namespace systolize {

struct StatementEvent {
  IntVec process;     ///< process-space coordinates
  Int iteration = 0;  ///< 0-based position within the process's repeater
  Int time = 0;       ///< logical time immediately after the statement
};

struct Trace {
  std::vector<StatementEvent> statements;
};

}  // namespace systolize
