// A persistent pool of worker threads for parallel substrate runs.
//
// The work-stealing executor (runtime/shard) is driven by N symmetric
// workers per run. Spawning N-1 std::threads per request costs ~100µs
// each — visible on warm-serve latencies — so the service layer keeps one
// WorkerPool alive across requests and every run borrows threads from it.
//
// The pool is deliberately dumb: a mutex-protected queue of (job, index)
// tasks and lazily spawned threads. All the lock-free machinery lives in
// the substrate itself; the pool only has to hand each run its extra
// workers, and its locks are touched twice per run, not per task.
//
// run(n, job) executes job(0..n-1) with the *calling* thread running
// job(0). That guarantees every run owns at least one worker even when
// the pool is saturated by concurrent runs — and because any single
// substrate worker can finish a whole run by itself (work stealing), a
// run never waits on pool capacity for correctness, only for speed.
// Queued participants that no thread has claimed by the time the run
// completes are simply cancelled.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace systolize {

class WorkerPool {
 public:
  /// `max_threads` bounds the pool (0 = hardware concurrency).
  explicit WorkerPool(unsigned max_threads = 0);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  /// Run job(0), job(1), ..., job(n-1) and return when every started
  /// participant has returned. job(0) runs on the calling thread; the
  /// rest are offered to pool threads (spawned lazily up to the cap).
  /// Participants still unclaimed when the caller's own job returns are
  /// cancelled, so `job` must tolerate any subset of indices 1..n-1
  /// never running. Safe to call from multiple threads concurrently.
  void run(unsigned n, const std::function<void(unsigned)>& job);

  [[nodiscard]] unsigned capacity() const noexcept { return max_threads_; }
  /// Threads actually spawned so far (monotonic; for stats).
  [[nodiscard]] unsigned spawned() const;

 private:
  /// One parallel run's shared state; lives on the caller's stack.
  struct Batch {
    const std::function<void(unsigned)>* job = nullptr;
    unsigned outstanding = 0;  ///< queued-or-running participants
    std::condition_variable done;
  };
  struct Task {
    Batch* batch = nullptr;
    unsigned index = 0;
  };

  void worker_loop();

  unsigned max_threads_ = 0;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace systolize
