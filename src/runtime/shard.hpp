// Opt-in parallel execution: the interned network partitioned into shards
// by place-space locality, one worker thread per shard, lock-free SPSC
// rings for cross-shard communication.
//
// Determinism argument (why parallel results are bit-identical to the
// sequential schedule): logical clocks are driven purely by the dataflow
// — a rendezvous completes at max(issue times) + 1 and a basic statement
// adds 1 — never by scheduling order. Every channel of a plan network has
// exactly one sending and one receiving process, and a process has at
// most one outstanding op per channel (it suspends until its par set
// completes), so the k-th send on a channel always pairs with the k-th
// receive no matter how shard execution interleaves. By induction over
// the dataflow DAG, every transfer gets the same timestamp, every process
// the same final clock, and every channel the same transfer count as the
// sequential run. Results are committed through per-element slots that
// only the owning output process writes. What is NOT schedule-invariant
// is the cooperative round count (each shard counts its own rounds) and
// anything arrival-order dependent — which is why sharded execution is
// restricted to pure rendezvous networks (capacity 0, no merged buffers)
// and refuses fault injection, watchdogs, tracing and partitioning
// (instantiate.cpp validates; those modes run sequentially).
//
// Protocol: every channel is owned by the shard of its receiving process.
// A suspending process offers each op of its par set to the op's channel
// — directly when the channel is local, else as an Offer message on the
// owner's ring. The owner matches offers rendezvous-style and routes each
// completion back to the op's process — directly when local, else as a
// Complete message. All Process-field mutation (clock, counters, pending,
// ready queue) happens on the process-owner thread; all Channel-field
// mutation happens on the channel-owner thread. Ring capacity is bounded
// by the plan's total par width (each op contributes at most one in-flight
// message per ring), so pushes cannot overflow in steady state.
//
// Termination: a global count of unfinished processes; when it reaches
// zero no message can be in flight (a process finishes only after all its
// ops completed) and workers exit. Deadlock: when every worker is idle,
// every ring is empty and unfinished processes remain, shard 0 trips the
// abort flag after a double sample of the progress epoch, and the caller
// raises the same forensic report as a sequential stall, merged across
// all shards.
#pragma once

#include <vector>

#include "numeric/checked.hpp"
#include "runtime/plan_cache.hpp"

namespace systolize {

/// What a sharded run reports back for metrics. `rounds` is the maximum
/// over the shards' cooperative round counters — unlike every other field
/// it is NOT comparable to a sequential run's value.
struct ShardRunStats {
  Int makespan = 0;
  Int statements = 0;
  Int total_transfers = 0;
  Int rounds = 0;
  unsigned shards = 0;
  std::vector<Int> channel_transfers;  ///< by plan channel id
};

/// Execute the plan's network across `threads` worker shards (clamped to
/// the place-space extent). Inputs are read from `in_values` and outputs
/// written to `out_values`, both aligned with plan.elems. Throws
/// Error(Runtime) with a merged forensic report on deadlock and rethrows
/// the first process exception (by shard id) on failure.
[[nodiscard]] ShardRunStats run_sharded(const NetworkPlan& plan,
                                        unsigned threads,
                                        const Value* in_values,
                                        Value* out_values);

}  // namespace systolize
