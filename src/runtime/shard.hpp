// Opt-in parallel execution: the plan's network run by a crew of
// symmetric work-stealing workers over one shared arena — per-worker
// ready queues with an atomic claim loop for stealing, a bitmap-based
// ready tracker over the dense plan process ids, and allocation-free
// channel hand-off through preallocated single-slot atomic mailboxes.
//
// Determinism argument (why parallel results are bit-identical to the
// sequential schedule): logical clocks are driven purely by the dataflow
// — a rendezvous completes at max(issue times) + 1 and a basic statement
// adds 1 — never by scheduling order. Every channel of a plan network has
// exactly one sending and one receiving process (the static verifier's
// single-writer/single-reader property), and a process has at most one
// outstanding op per channel (it suspends until its par set completes),
// so the k-th send on a channel always pairs with the k-th receive no
// matter which workers execute the two sides or in what order processes
// are claimed and stolen. By induction over the dataflow DAG, every
// transfer gets the same timestamp, every process the same final clock,
// and every channel the same transfer count as the sequential run.
// Results are committed through per-element slots that only the owning
// output process writes. What is NOT schedule-invariant is anything
// arrival-order dependent — which is why parallel execution is
// restricted to pure rendezvous networks (capacity 0, no merged buffers,
// no partitioning) and to faults whose randomness is consumed at spawn
// time (stall/kill); transfer-time faults (delay/duplicate) and tracing
// run sequentially (instantiate.cpp validates).
//
// The same single-writer/single-reader property is what proves a
// depth-1 mailbox per channel suffices: at most two ops — the sender's
// and the receiver's current one — can reference a channel concurrently,
// and the rendezvous completer clears the slot before either side can
// issue its next op. See shard.cpp for the full protocol.
#pragma once

#include <vector>

#include "numeric/checked.hpp"
#include "runtime/metrics.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/watchdog.hpp"

namespace systolize {

class FaultInjector;
class WorkerPool;

/// What a parallel run reports back for metrics. `rounds` is the maximum
/// number of process resumptions any single worker executed — the closest
/// parallel analog of a cooperative round count; unlike every other field
/// it is NOT comparable to a sequential run's value.
struct ShardRunStats {
  Int makespan = 0;
  Int statements = 0;
  Int total_transfers = 0;
  Int rounds = 0;
  unsigned shards = 0;  ///< workers the run actually used
  std::vector<Int> channel_transfers;    ///< by plan channel id
  std::vector<WorkerCounters> workers;   ///< by worker index
};

/// Robustness attachments for a parallel run. All optional; pointees must
/// outlive the call.
struct ShardRunOptions {
  /// `max_rounds` bounds total process resumptions at max_rounds *
  /// process-count (a sequential round resumes at most every process
  /// once, so any budget that admits the sequential run admits the
  /// parallel one); checked periodically, so the trip is approximate.
  /// `cancel` is polled by every worker each loop iteration.
  /// `max_blocked_rounds` is a sequential-round notion and must be 0
  /// (instantiate.cpp validates).
  WatchdogConfig watchdog;
  /// Stall/kill injection (spawn-time rolls — deterministic under any
  /// steal order). Plans with delay/duplicate faults are rejected
  /// upstream: their PRNG state is consumed in schedule order.
  FaultInjector* injector = nullptr;
  /// Thread pool to borrow workers from; nullptr spawns plain threads
  /// for this run. The calling thread always participates as worker 0.
  WorkerPool* pool = nullptr;
};

/// Execute the plan's network on `threads` work-stealing workers (clamped
/// to the process count). Inputs are read from `in_values` and outputs
/// written to `out_values`, both aligned with plan.elems. Throws
/// Error(Runtime) with a forensic deadlock report on stall, Error with
/// the watchdog's kind on budget/cancel trips, and rethrows the first
/// process exception on failure.
[[nodiscard]] ShardRunStats run_sharded(const NetworkPlan& plan,
                                        unsigned threads,
                                        const Value* in_values,
                                        Value* out_values,
                                        const ShardRunOptions& options = {});

}  // namespace systolize
