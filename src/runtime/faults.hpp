// Deterministic fault injection for the process-network runtime.
//
// A FaultPlan describes which faults to inject into a run: stalling a
// process for k scheduler rounds, killing a process at its n-th statement,
// and delaying or duplicate-delivering a channel transfer. Faults are
// either explicit (named process/channel) or probabilistic, rolled from a
// seeded PRNG. Because the scheduler is deterministic and the PRNG is
// consumed in scheduler order, a given (plan, program, sizes) triple
// replays bit-identically: the same faults fire at the same points, the
// same diagnostics come out. That is what makes an injected failure
// debuggable instead of a heisenbug.
//
// Stalls and delays perturb only the *scheduling order*; logical clocks
// are driven by the dataflow, so a survivable fault leaves both the
// results and the makespan unchanged (asserted by the resilience harness
// in tests/integration). Kills and duplicates break the communication
// protocol; the runtime's job is then to convert the breakage into a
// structured diagnostic — never a hang, never a silent wrong answer.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "numeric/checked.hpp"

namespace systolize {

class Channel;
struct CommOp;
struct Process;

enum class FaultKind {
  Stall,      ///< hold a runnable process out of the ready queue
  Kill,       ///< terminate a process at its n-th statement
  Delay,      ///< hold a channel transfer for k scheduler rounds
  Duplicate,  ///< deliver one channel transfer twice
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// One explicit fault. Which fields matter depends on `kind`:
///   Stall     target=process  at=round the stall begins   duration=rounds
///   Kill      target=process  at=statement index (1-based)
///   Delay     target=channel  at=transfer index (0-based)  duration=rounds
///   Duplicate target=channel  at=transfer index (0-based)
struct FaultSpec {
  FaultKind kind = FaultKind::Stall;
  std::string target;
  Int at = 0;
  Int duration = 1;

  [[nodiscard]] std::string to_string() const;
};

/// Probabilistic fault profile: each spawned process / issued transfer
/// rolls against these rates on the plan's PRNG.
struct FaultProfile {
  double stall_probability = 0.0;
  Int max_stall_rounds = 0;       ///< stall duration rolled in [1, max]
  double delay_probability = 0.0;
  Int max_delay_rounds = 0;       ///< delay rolled in [1, max]
  double duplicate_probability = 0.0;
  double kill_probability = 0.0;
  Int max_kill_statement = 0;     ///< kill statement rolled in [1, max]

  [[nodiscard]] bool empty() const noexcept {
    return stall_probability <= 0.0 && delay_probability <= 0.0 &&
           duplicate_probability <= 0.0 && kill_probability <= 0.0;
  }
};

/// The full, reproducible description of what to inject.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  void add(FaultSpec spec) { specs_.push_back(std::move(spec)); }
  void set_profile(FaultProfile profile) { profile_ = profile; }
  void set_seed(std::uint64_t seed) { seed_ = seed; }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const noexcept {
    return specs_;
  }
  [[nodiscard]] const FaultProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return specs_.empty() && profile_.empty();
  }

  /// Parse the CLI's `--inject=` syntax: ';'-separated directives.
  ///   seed=N
  ///   stall=P:K      every process stalls with probability P, 1..K rounds
  ///   delay=P:K      every transfer is delayed with probability P
  ///   dup=P          every transfer is duplicated with probability P
  ///   kill=P:N       every process dies with probability P at stmt 1..N
  ///   stall@NAME=R:K stall process NAME at round R for K rounds
  ///   kill@NAME=N    kill process NAME at its N-th statement
  ///   delay@CHAN=T:K delay transfer index T on channel CHAN by K rounds
  ///   dup@CHAN=T     duplicate transfer index T on channel CHAN
  /// Throws Error(Validation) on malformed input.
  [[nodiscard]] static FaultPlan parse(const std::string& text);

  [[nodiscard]] std::string to_string() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultSpec> specs_;
  FaultProfile profile_;
};

/// SplitMix64: tiny, high-quality, platform-independent PRNG. Using our
/// own generator (not <random>) keeps fault rolls identical across
/// standard libraries, which the replay guarantee depends on.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() noexcept;
  /// Uniform double in [0, 1).
  double next_unit() noexcept;
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  Int next_int(Int lo, Int hi) noexcept;

 private:
  std::uint64_t state_;
};

/// Per-run injector: owns the PRNG state and the decisions derived from a
/// FaultPlan. The scheduler queries it at spawn time (stall/kill), at
/// communication issue time (delay), and at transfer completion
/// (duplicate). Every fired fault is appended to `log()` so tests can
/// assert replay identity.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// Roll spawn-scoped faults for a new process; fills the process's
  /// fault_* fields (stall round/duration, kill statement).
  void on_spawn(Process& proc);

  /// Scheduler-round delay for a communication op about to be offered on
  /// `chan` (0 = no delay). Consumes PRNG state, so the scheduler calls it
  /// exactly once per issued op.
  [[nodiscard]] Int roll_delay(const Channel& chan);

  /// Whether the transfer that just completed as `transfer_index` on
  /// `chan` should be delivered a second time.
  [[nodiscard]] bool roll_duplicate(const Channel& chan, Int transfer_index);

  /// Record a fault that actually fired (scheduler calls this).
  /// Thread-safe: on the work-stealing substrate, stall and kill faults
  /// fire on whichever worker claimed the process. The PRNG itself is
  /// only touched single-threaded (spawn-time rolls; delay/duplicate
  /// rolls are rejected for parallel runs).
  void record(FaultKind kind, const std::string& target, Int detail);

  [[nodiscard]] const std::vector<std::string>& log() const noexcept {
    return log_;
  }
  [[nodiscard]] Int injected() const noexcept {
    return static_cast<Int>(log_.size());
  }

 private:
  const FaultPlan& plan_;
  SplitMix64 rng_;
  std::vector<bool> fired_;  ///< explicit specs that already fired
  std::mutex log_mu_;        ///< guards log_ (see record)
  std::vector<std::string> log_;
};

/// Private signal thrown through a coroutine body to realize an injected
/// kill: the frame unwinds, the scheduler marks the process dead, and the
/// run continues so the rest of the network's failure can be observed.
struct ProcessKilledSignal {};

}  // namespace systolize
