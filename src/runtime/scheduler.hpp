// The distributed-memory substrate: asynchronously composed sequential
// processes with synchronous (rendezvous) channels — the execution model
// of Sect. 4, substituting for the paper's transputer networks.
//
// Processes are C++20 coroutines driven by a deterministic cooperative
// scheduler (FIFO ready queue). A logical clock assigns every rendezvous
// max(t_sender, t_receiver) + 1 and every basic statement +1, so the final
// maximum over all processes is the parallel makespan in systolic steps.
//
// The scheduler additionally counts cooperative *rounds* (one round =
// draining the ready entries present at round start). Rounds are the time
// base of the robustness layer: fault injection (runtime/faults) stalls
// processes and delays transfers in rounds, and the watchdog
// (runtime/watchdog) bounds rounds and per-process blocked time. Logical
// clocks are driven purely by the dataflow, so round-level perturbations
// never change results or makespan — only the interleaving.
//
// Execution takes one of two paths through run():
//   * the FAST path, taken when no fault injector and no watchdog are
//     configured: a tight resume loop with no fault hooks, no blocked-on
//     diagnostics strings and no stall/delay bookkeeping. Single sends and
//     receives keep their CommOp inline in the awaiter (inside the
//     coroutine frame — no heap allocation per communication), and par
//     sets can reuse caller-owned op storage across awaits.
//   * the INSTRUMENTED path, taken whenever faults or a watchdog are
//     attached: behaviourally identical to the pre-fast-path scheduler,
//     with per-round fault release, stall service, starvation checks and
//     human-readable blocked-on state for the forensics layer.
// Both paths count rounds with the same batch boundaries, so a clean run
// reports the same round count on either path.
//
// A third, opt-in mode runs the network sharded across worker threads
// (runtime/shard): each shard owns a Scheduler and the awaiters route
// cross-shard communications through the shard executor instead of
// completing them synchronously. Logical clocks are dataflow-driven, so
// sharded results and makespans are bit-identical to sequential runs.
#pragma once

#include <algorithm>
#include <coroutine>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "loopnest/loop_nest.hpp"
#include "runtime/watchdog.hpp"

namespace systolize {

class Scheduler;
class Channel;
class FaultInjector;
class ShardExec;  // runtime/shard — drives one shard of a parallel run
struct Process;

/// One pending communication of a par set. Lives in the awaiter inside the
/// suspended coroutine frame (or in caller-owned frame storage for reused
/// par sets), so its address is stable while parked.
struct CommOp {
  Channel* chan = nullptr;
  bool is_send = false;
  Value value = 0;     ///< payload (send) or received value (recv)
  Value* out = nullptr;///< where a recv deposits its value (may be null)
  Process* proc = nullptr;
  Int issue_time = 0;  ///< owner's local time when the op was issued
  bool done = false;
  Int fault_delay = 0; ///< injected delay in rounds (0 = none)
};

/// Coroutine return object for process bodies.
class Task {
 public:
  struct promise_type {
    Process* proc = nullptr;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept;
  };

  explicit Task(std::coroutine_handle<promise_type> h) : handle(h) {}
  std::coroutine_handle<promise_type> handle;
};

/// A logical clock. By default every process owns one; when several
/// processes are multiplexed onto one physical processor (partitioning,
/// the paper's Sect.-8 extension via its ref. [23]) they share a clock, so
/// their events serialize in the makespan model.
struct Clock {
  Int time = 0;
};

struct Process {
  std::string name;
  std::coroutine_handle<Task::promise_type> handle;
  Scheduler* sched = nullptr;
  Clock own_clock;
  Clock* clock = &own_clock;
  Int pending = 0;  ///< outstanding ops of the current par set
  bool finished = false;
  bool in_ready_queue = false;
  std::exception_ptr error;
  /// What the process is blocked on, for deadlock diagnostics
  /// (instrumented path only; the fast path leaves it empty).
  std::string blocked_on;
  Int sends = 0;
  Int recvs = 0;
  Int statements = 0;
  /// Round the process last executed in (starvation watchdog).
  Int last_active_round = 0;
  // Injected-fault state, set by FaultInjector::on_spawn (-1 = no fault).
  Int fault_stall_round = -1;    ///< round the stall triggers at
  Int fault_stall_duration = 0;  ///< rounds the stall lasts
  bool fault_stall_served = false;
  Int fault_kill_at = -1;        ///< die at this (1-based) statement
  bool killed = false;           ///< terminated by an injected kill

  [[nodiscard]] Int time() const noexcept { return clock->time; }
  void advance_to(Int t) noexcept { clock->time = std::max(clock->time, t); }
};

class CommAwaiter;

/// Handle passed to process bodies: communication and clock primitives.
class Ctx {
 public:
  Ctx() = default;
  Ctx(Scheduler* sched, Process* proc) : sched_(sched), proc_(proc) {}

  [[nodiscard]] CommAwaiter send(Channel& chan, Value v);
  [[nodiscard]] CommAwaiter recv(Channel& chan, Value& out);
  /// Par composition of communications (the paper's `par` around the basic
  /// statement's receives/sends).
  [[nodiscard]] CommAwaiter par(std::vector<CommOp> ops);
  /// Par composition over caller-owned ops (typically locals of the
  /// calling coroutine, rebuilt or refreshed between awaits). Avoids the
  /// per-await vector allocation of the owning overload; the storage must
  /// stay alive until the await completes.
  [[nodiscard]] CommAwaiter par(CommOp* ops, std::size_t count);

  [[nodiscard]] CommOp send_op(Channel& chan, Value v) const;
  [[nodiscard]] CommOp recv_op(Channel& chan, Value& out) const;

  /// Advance the local clock by one step (a basic-statement execution).
  /// Fires an injected kill when the process reaches its doomed statement.
  void tick_statement();

  [[nodiscard]] Process& process() const { return *proc_; }

 private:
  Scheduler* sched_ = nullptr;
  Process* proc_ = nullptr;
};

/// Awaitable performing a whole par set of sends/receives; completes when
/// every op has transferred. A single-element set is an ordinary
/// synchronous send or receive and keeps its op inline (no allocation).
class CommAwaiter {
 public:
  /// Single send/receive; the op lives inside the awaiter.
  CommAwaiter(Ctx ctx, const CommOp& op)
      : ctx_(ctx), single_(op), ops_(&single_), count_(1) {}
  /// Par set over caller-owned storage (not copied).
  CommAwaiter(Ctx ctx, CommOp* ops, std::size_t count)
      : ctx_(ctx), ops_(ops), count_(count) {}
  /// Par set owning its ops.
  CommAwaiter(Ctx ctx, std::vector<CommOp> ops)
      : ctx_(ctx),
        owned_(std::move(ops)),
        ops_(owned_.data()),
        count_(owned_.size()) {}

  // The awaiter hands out pointers into itself (ops_ may alias single_),
  // so it must be awaited where it was materialized.
  CommAwaiter(const CommAwaiter&) = delete;
  CommAwaiter& operator=(const CommAwaiter&) = delete;

  [[nodiscard]] bool await_ready();
  void await_suspend(std::coroutine_handle<> h);
  void await_resume();

 private:
  Ctx ctx_;
  std::vector<CommOp> owned_;
  CommOp single_;
  CommOp* ops_ = nullptr;
  std::size_t count_ = 0;
};

/// Synchronous channel (optionally with a small FIFO buffer when
/// `capacity > 0`; the paper's model is capacity 0 — pure rendezvous).
class Channel {
 public:
  Channel(std::string name, Scheduler* sched, Int capacity = 0)
      : name_(std::move(name)), sched_(sched), capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Int transfers() const noexcept { return transfers_; }
  [[nodiscard]] Scheduler* scheduler() const noexcept { return sched_; }

  /// Opaque routing tag for sharded runs (the plan channel id, used to
  /// look up the owning shard); -1 outside sharded execution.
  void set_shard_tag(Int tag) noexcept { shard_tag_ = tag; }
  [[nodiscard]] Int shard_tag() const noexcept { return shard_tag_; }

  /// Attempt the op now; true if it completed without parking.
  bool try_complete(CommOp& op);
  /// Park the op until a partner arrives.
  void park(CommOp& op);
  /// Pair mutually-parked ops (and drain the buffer into parked
  /// receivers). Only injected delays can leave both sides parked, so
  /// this is a no-op on fault-free runs.
  void match_parked();

  // --- forensic access (deadlock reports) ---
  [[nodiscard]] const std::vector<CommOp*>& parked_senders() const noexcept {
    return senders_;
  }
  [[nodiscard]] const std::vector<CommOp*>& parked_receivers() const noexcept {
    return receivers_;
  }
  /// Last process seen on each side (the wait-for counterpart even when
  /// that side is not currently parked).
  [[nodiscard]] Process* known_sender() const noexcept {
    return known_sender_;
  }
  [[nodiscard]] Process* known_receiver() const noexcept {
    return known_receiver_;
  }
  /// Declare the process that will sit on a side of this channel, so the
  /// deadlock forensics can follow wait-for edges through processes that
  /// have not yet touched the channel (in a rendezvous cycle, the
  /// counterpart of a parked op typically never reached it). The
  /// instantiation layer declares both endpoints of every channel;
  /// hand-built networks may skip this — forensics then falls back to
  /// observed use, and the cycle may be reported empty.
  void declare_sender(Process& p) noexcept { known_sender_ = &p; }
  void declare_receiver(Process& p) noexcept { known_receiver_ = &p; }

 private:
  friend class ShardExec;  // sharded offer/match runs on the owner shard

  struct Stamped {
    Value value;
    Int time;
  };

  void complete_counterpart(CommOp& op, Value v, Int time);
  /// Post-transfer fault hook: may ghost-deliver the value a second time.
  void after_transfer(Value v, Int time);

  std::string name_;
  Scheduler* sched_;
  Int capacity_;
  std::deque<Stamped> buffer_;
  std::vector<CommOp*> senders_;
  std::vector<CommOp*> receivers_;
  Int transfers_ = 0;
  Int shard_tag_ = -1;
  Process* known_sender_ = nullptr;
  Process* known_receiver_ = nullptr;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Create a process; `body` is called immediately to build the coroutine
  /// (suspended until run()). When `clock` is non-null the process shares
  /// it (processor multiplexing); it must outlive the scheduler run.
  /// Processes live in a chunked arena (a deque), so their addresses are
  /// stable and spawning performs no per-process allocation beyond the
  /// coroutine frame itself.
  template <class Body>
  Process& spawn(std::string name, const Body& body, Clock* clock = nullptr) {
    Process& ref = processes_.emplace_back();
    ref.name = std::move(name);
    ref.sched = this;
    if (clock != nullptr) ref.clock = clock;
    Task task = body(Ctx(this, &ref));
    ref.handle = task.handle;
    task.handle.promise().proc = &ref;
    finish_spawn(ref);
    return ref;
  }

  /// Create a channel owned by the scheduler (same chunked-arena storage
  /// as processes: stable addresses, no per-channel heap node).
  Channel& make_channel(std::string name, Int capacity = 0);

  /// Run to completion. Throws Error(Runtime) with a forensic deadlock
  /// report on stall or watchdog expiry, and rethrows the first process
  /// exception.
  void run();

  void make_ready(Process& proc);

  /// Attach a fault injector for the next run (nullptr = none). The
  /// injector must outlive the run.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
    refresh_mode();
  }
  [[nodiscard]] FaultInjector* injector() const noexcept { return injector_; }

  void set_watchdog(const WatchdogConfig& config) noexcept {
    watchdog_ = config;
    refresh_mode();
  }

  /// True when faults or a watchdog are attached: run() then takes the
  /// instrumented path and awaiters record blocked-on diagnostics.
  [[nodiscard]] bool instrumented() const noexcept { return instrumented_; }

  /// Attach/detach the shard executor driving this scheduler as one shard
  /// of a parallel run (runtime/shard). While attached, awaiters route
  /// every communication through the executor.
  void set_shard_exec(ShardExec* exec) noexcept { shard_ = exec; }
  [[nodiscard]] ShardExec* shard_exec() const noexcept { return shard_; }
  [[nodiscard]] bool sharded() const noexcept { return shard_ != nullptr; }

  /// Hold a parked-to-be op out of its channel for `delay` rounds
  /// (injected transfer delay); called from the comm awaiter.
  void defer_op(CommOp& op, Int delay);

  [[nodiscard]] Int round() const noexcept { return round_; }

  [[nodiscard]] const std::deque<Process>& processes() const noexcept {
    return processes_;
  }
  [[nodiscard]] std::size_t channel_count() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] const std::deque<Channel>& channels() const noexcept {
    return channels_;
  }
  /// Ops currently held by an injected delay (forensic access).
  [[nodiscard]] const std::multimap<Int, CommOp*>& delayed_ops()
      const noexcept {
    return delayed_;
  }
  /// Processes currently held by an injected stall (forensic access).
  [[nodiscard]] const std::multimap<Int, Process*>& stalled_processes()
      const noexcept {
    return stalled_;
  }
  [[nodiscard]] Int total_transfers() const;
  [[nodiscard]] Int makespan() const;

 private:
  friend class ShardExec;  // shard workers drive ready_/batch_ directly

  /// Injector spawn hook + initial enqueue (out-of-line half of spawn).
  void finish_spawn(Process& ref);
  void refresh_mode() noexcept {
    instrumented_ = injector_ != nullptr || watchdog_.max_rounds > 0 ||
                    watchdog_.max_blocked_rounds > 0 ||
                    watchdog_.cancel != nullptr;
  }
  /// The zero-overhead resume loop (no faults, no watchdog).
  void run_fast();
  /// The fully instrumented loop (fault release, stall service, watchdog).
  void run_instrumented();
  /// Re-queue stalled processes and re-offer delayed ops whose release
  /// round has arrived.
  void release_due();
  /// Starvation watchdog: trip when a blocked process has been inactive
  /// for more than max_blocked_rounds while the scheduler still turns.
  void check_starvation();

  std::deque<Process> processes_;
  std::deque<Channel> channels_;
  /// Double-buffered flat ready queue: make_ready appends to ready_; a
  /// round swaps it into batch_ and drains the batch, so "one round = the
  /// entries present at round start" with no deque churn.
  std::vector<Process*> ready_;
  std::vector<Process*> batch_;
  std::multimap<Int, Process*> stalled_;  ///< release round -> process
  std::multimap<Int, CommOp*> delayed_;   ///< release round -> held op
  FaultInjector* injector_ = nullptr;
  WatchdogConfig watchdog_;
  ShardExec* shard_ = nullptr;
  bool instrumented_ = false;
  Int round_ = 0;
};

/// Route a suspending par set through the shard executor (defined in
/// runtime/shard.cpp; never called on sequential runs).
void shard_suspend(ShardExec& exec, Process& proc, CommOp* ops,
                   std::size_t count);

}  // namespace systolize
